#!/bin/sh
# CI gate: formatting, build (including examples), vet, then the full test
# suite under the race detector. The scheduler's cancellable timers, the
# loader's timeout/response race, and the websliced worker pool are exactly
# the code -race exists to check.
set -eux
cd "$(dirname "$0")"
unformatted=$(gofmt -l cmd internal examples bench_test.go)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" "$unformatted" >&2
	exit 1
fi
go build ./...
go build ./examples/...
go vet ./...
go test -race ./...

# Coverage ratchet on the correctness-critical packages: the slicing engine,
# the control dependence graph, and the replay/invariant oracles. Floors only
# go up — raise them when coverage improves, never lower them to merge.
check_cover() {
	pkg=$1
	floor=$2
	pct=$(go test -cover "$pkg" | awk '{for (i=1; i<=NF; i++) if ($i == "coverage:") {sub(/%/, "", $(i+1)); print $(i+1)}}')
	if [ -z "$pct" ]; then
		echo "no coverage reported for $pkg" >&2
		exit 1
	fi
	if awk -v p="$pct" -v f="$floor" 'BEGIN{exit !(p < f)}'; then
		echo "coverage ratchet: $pkg at ${pct}%, floor is ${floor}%" >&2
		exit 1
	fi
	echo "coverage: $pkg ${pct}% (floor ${floor}%)"
}
check_cover ./internal/slicer 85
check_cover ./internal/cdg 85
check_cover ./internal/replay 82

# Robustness gate: vet + race over the durability-critical service package
# (journal, retry, quarantine) is already covered by the full -race run
# above; on top of that, a short deterministic chaos smoke — seeded
# kill/restart/IO-fault/panic schedules must lose no acknowledged job —
# and a fuzz smoke of the journal's replay path.
go test -race -count=1 -run 'TestChaos' ./internal/service/chaostest
go test -run '^$' -fuzz FuzzJournalReplayNeverPanics -fuzztime 5s ./internal/service

# Fuzz smoke: a few seconds per target so a crashing input or a slice that
# fails to replay is caught in CI, not only by long offline fuzzing runs.
go test -run '^$' -fuzz FuzzSliceNeverPanics -fuzztime 5s ./internal/slicer
go test -run '^$' -fuzz FuzzReplayAgreesWithSlice -fuzztime 5s ./internal/replay
go test -run '^$' -fuzz FuzzSegmentedAgreesWithSlice -fuzztime 5s ./internal/slicer
go test -run '^$' -fuzz FuzzV3RoundTrip -fuzztime 5s ./internal/trace
go test -run '^$' -fuzz FuzzV3DecodeNeverPanics -fuzztime 5s ./internal/trace

# Segmented backward pass: the equivalence sweep (handcrafted boundaries in
# the slicer, rendered property sites in experiments) must hold under the
# race detector with real parallelism, and on a multi-core machine the
# segmented pass must not regress >20% vs the sequential walk. The perf
# gate skips itself when GOMAXPROCS < 2: without a second core the
# segmented schedule pays its stitch overhead with no scan parallelism.
GOMAXPROCS=4 go test -race -count=1 -run 'TestSegmented|TestPlanSegments|TestResolveSegments|TestExecuteBackward' ./internal/slicer ./internal/experiments
WEBSLICE_BENCH_GATE=1 go test -count=1 -run TestSegmentedBackwardPerfGate ./internal/slicer

# Observability smoke: a job through the HTTP API must produce one
# causally-linked span tree (correct names and parent links), with its
# trace ID joining the structured log, the /metrics exemplars, and
# /debug/spans; the cluster variant pins the same property across the
# coordinator->worker HTTP hop on an in-process 3-node ring.
go test -count=1 -run 'TestSpansSmoke' ./internal/service
go test -count=1 -run 'TestClusterTracePropagation' ./internal/cluster

# The full validation sweep: golden corpus digests, then replay, naive-
# differential, and invariant oracles over 50 property-generated sites.
go run ./cmd/webslice verify -exp all

# Cluster smoke with real processes: a coordinator fronting two workers on
# loopback ports runs the golden corpus, one worker is SIGKILLed mid-batch,
# and every acked job must still finish with its pinned slice digest.
WEBSLICE_CLUSTER_SMOKE=1 go test -count=1 -run TestMultiNodeSmoke ./cmd/websliced

# Bench smoke: every benchmark must still run (one iteration at a small
# scale) so perf harness rot is caught in CI, not at measurement time.
WEBSLICE_SCALE=0.05 go test -bench=. -benchtime=1x -run '^$' ./...
