#!/bin/sh
# CI gate: formatting, build (including examples), vet, then the full test
# suite under the race detector. The scheduler's cancellable timers, the
# loader's timeout/response race, and the websliced worker pool are exactly
# the code -race exists to check.
set -eux
cd "$(dirname "$0")"
unformatted=$(gofmt -l cmd internal examples bench_test.go)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" "$unformatted" >&2
	exit 1
fi
go build ./...
go build ./examples/...
go vet ./...
go test -race ./...
# Bench smoke: every benchmark must still run (one iteration at a small
# scale) so perf harness rot is caught in CI, not at measurement time.
WEBSLICE_SCALE=0.05 go test -bench=. -benchtime=1x -run '^$' ./...
