// Circuit breaker over the store's disk layer. The store is a cache: when
// the disk underneath it starts erroring (a failing device, a full
// filesystem, a flaky network mount), the correct degradation is to stop
// touching the disk and serve from memory — compute-without-cache — rather
// than to fail every job on cache bookkeeping. The breaker counts
// consecutive disk I/O errors, opens after a threshold, sheds all disk
// traffic for a cooldown, and then half-opens to let a single probe
// operation test whether the disk recovered.
package store

import (
	"sync"
	"time"
)

// BreakerState enumerates the circuit breaker's states.
type BreakerState int32

const (
	// BreakerClosed: disk I/O flows normally.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown elapsed; one probe operation is allowed
	// through to test the disk. Success closes the breaker, failure re-opens.
	BreakerHalfOpen
	// BreakerOpen: disk I/O is shed entirely until the cooldown elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "breaker?"
	}
}

// Breaker defaults: five consecutive disk errors open the circuit, probes
// resume after five seconds.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 5 * time.Second
)

type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
	trips    int64     // closed->open transitions
	shed     int64     // disk operations skipped because the breaker was open
	errors   int64     // disk I/O errors observed (all states)
}

func newBreaker() *breaker {
	return &breaker{threshold: DefaultBreakerThreshold, cooldown: DefaultBreakerCooldown, now: time.Now}
}

// allow reports whether a disk operation may proceed. In the half-open
// state exactly one caller wins the probe slot; everyone else is shed until
// the probe's outcome is recorded.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.shed++
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			b.shed++
			return false
		}
		b.probing = true
		return true
	}
}

// record feeds one disk operation's outcome back. ok means the operation
// reached the disk and came back without an I/O error (a clean miss counts
// as success — the disk worked).
func (b *breaker) record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !ok {
		b.errors++
	}
	switch b.state {
	case BreakerClosed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.trips++
		}
	case BreakerHalfOpen:
		b.probing = false
		if ok {
			b.state = BreakerClosed
			b.failures = 0
		} else {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.trips++
		}
	case BreakerOpen:
		// A straggler from before the trip finished; its outcome is stale.
	}
}

func (b *breaker) snapshot() (state BreakerState, trips, shed, errs int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips, b.shed, b.errors
}

// ConfigureBreaker tunes the disk circuit breaker: threshold consecutive
// I/O errors open it, cooldown is how long it sheds before probing. Zero
// values keep the current setting.
func (s *Store) ConfigureBreaker(threshold int, cooldown time.Duration) {
	s.br.mu.Lock()
	defer s.br.mu.Unlock()
	if threshold > 0 {
		s.br.threshold = threshold
	}
	if cooldown > 0 {
		s.br.cooldown = cooldown
	}
}

// BreakerState returns the disk breaker's current state.
func (s *Store) BreakerState() BreakerState {
	st, _, _, _ := s.br.snapshot()
	return st
}
