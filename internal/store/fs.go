// FS abstracts the handful of file operations the store performs so that
// fault-injection tests (internal/service/chaostest) can interpose seeded
// I/O errors between the store and the real filesystem. Production code
// always runs on OSFS; the indirection costs one interface call per disk
// operation, which the store performs at most once per artifact miss.
package store

import (
	"io"
	"os"
)

// File is the writable handle CreateTemp returns: enough surface for the
// store's atomic write protocol (write, close, rename by name).
type File interface {
	io.Writer
	Close() error
	Name() string
}

// FS is the filesystem the store's disk layer runs on.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadFile(name string) ([]byte, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (os.FileInfo, error)
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OSFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OSFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error                     { return os.Remove(name) }
func (OSFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

func (OSFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}
