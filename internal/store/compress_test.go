package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// incompressible returns n bytes of xorshift noise — deflate can't shrink
// it, so its sealed size tracks its logical size.
func incompressible(n int) []byte {
	out := make([]byte, n)
	x := uint32(0x9E3779B9)
	for i := range out {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		out[i] = byte(x)
	}
	return out
}

func TestBlobCompressedAtRest(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 0)
	payload := bytes.Repeat([]byte("unnecessary computation "), 4096) // ~96KB, highly compressible
	if err := s.Put("cdg", "big", payload); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, "cdg-big.wsab"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= int64(len(payload))/4 {
		t.Fatalf("disk blob is %d bytes for a %d-byte compressible payload — not compressed at rest", fi.Size(), len(payload))
	}
	if s.MemBytes() != fi.Size() {
		t.Fatalf("MemBytes = %d, want the on-disk size %d", s.MemBytes(), fi.Size())
	}
	got, ok, err := s.Get("cdg", "big")
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get after compression: ok=%v err=%v equal=%v", ok, err, bytes.Equal(got, payload))
	}
	// Cold reopen: the disk blob inflates back too.
	cold, _ := Open(dir, 0)
	got, ok, err = cold.Get("cdg", "big")
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("cold Get after compression: ok=%v err=%v equal=%v", ok, err, bytes.Equal(got, payload))
	}
	if cold.MemBytes() != fi.Size() {
		t.Fatalf("promotion put %d bytes in the LRU, want the sealed size %d", cold.MemBytes(), fi.Size())
	}
}

// sealV1 reproduces the legacy uncompressed envelope so the back-compat
// test doesn't depend on the current seal.
func sealV1(payload []byte) []byte {
	out := make([]byte, 0, headerSize+len(payload)+trailerSize)
	out = append(out, blobMagic[:]...)
	out = append(out, blobVersionRaw)
	out = append(out, payload...)
	crc := crc32.ChecksumIEEE(out)
	out = append(out, trailerMagic[:]...)
	return binary.LittleEndian.AppendUint32(out, crc)
}

func TestLegacyV1BlobStillReadable(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("artifact written before compression-at-rest")
	if err := os.WriteFile(filepath.Join(dir, "cdg-old.wsab"), sealV1(payload), 0o644); err != nil {
		t.Fatal(err)
	}
	s, _ := Open(dir, 0)
	got, ok, err := s.Get("cdg", "old")
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("v1 Get = %q ok=%v err=%v", got, ok, err)
	}
	// The promoted copy (still in its v1 envelope) serves from memory too.
	got, ok, err = s.Get("cdg", "old")
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("promoted v1 Get = %q ok=%v err=%v", got, ok, err)
	}
	if st := s.Stats(); st.MemHits != 1 || st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want 1 disk hit then 1 mem hit", st)
	}
	// A corrupted v1 blob is still caught by the trailer CRC.
	blob := sealV1(payload)
	blob[headerSize+3] ^= 0x40
	if _, err := unseal(blob); err == nil {
		t.Fatal("unseal accepted a corrupted v1 blob")
	}
}

// TestEvictionUsesCompressedSizes is the regression test for the byte
// gauge: when compressed and logical sizes diverge, both the budget check
// and the eviction accounting must use the sealed sizes. A 32KB-logical
// artifact that seals to a few dozen bytes must NOT push anything out of a
// 3KB budget, and evictions must free exactly the sealed bytes.
func TestEvictionUsesCompressedSizes(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 3<<10)
	zeros := make([]byte, 32<<10) // logical 32KB >> budget; seals tiny
	rand1 := incompressible(2 << 10)
	if err := s.Put("slice", "zeros", zeros); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Evicted != 0 {
		t.Fatalf("putting a 32KB-logical/tiny-sealed artifact evicted %d entries under a 3KB budget", st.Evicted)
	}
	sealedZeros := s.MemBytes()
	if sealedZeros >= 1<<10 {
		t.Fatalf("sealed size of zeros is %d bytes — gauge appears to track logical size", sealedZeros)
	}
	if err := s.Put("slice", "rand1", rand1); err != nil {
		t.Fatal(err)
	}
	// Under logical accounting (32KB + 2KB > 3KB) zeros would have been
	// evicted here. Under at-rest accounting both fit.
	if st := s.Stats(); st.Evicted != 0 {
		t.Fatalf("stats = %+v: eviction fired even though both sealed blobs fit the budget", st)
	}
	if _, ok, err := s.Get("slice", "zeros"); !ok || err != nil {
		t.Fatalf("zeros fell out of memory: ok=%v err=%v", ok, err)
	}
	if st := s.Stats(); st.MemHits != 1 {
		t.Fatalf("stats = %+v, want zeros served from the LRU layer", st)
	}

	// A second incompressible 2KB artifact overflows the budget. The Get
	// above made zeros most-recent, so eviction (from the LRU back) must
	// drop rand1 — and afterwards the gauge must equal the surviving
	// sealed sizes exactly.
	if err := s.Put("slice", "rand2", incompressible(2<<10)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Evicted == 0 {
		t.Fatalf("stats = %+v, want an eviction after overflowing the budget", st)
	}
	if _, ok, _ := s.Get("slice", "zeros"); !ok {
		t.Fatal("eviction dropped the most-recently-used tiny artifact instead of the LRU back")
	}
	if st := s.Stats(); st.MemHits != 2 {
		t.Fatalf("stats = %+v, want zeros still in memory after the eviction round", st)
	}
	if s.MemBytes() > 3<<10 {
		t.Fatalf("MemBytes = %d, over the 3KB budget", s.MemBytes())
	}
	// rand1 was evicted but survives on disk.
	got, ok, err := s.Get("slice", "rand1")
	if err != nil || !ok || !bytes.Equal(got, rand1) {
		t.Fatalf("evicted rand1 not recovered from disk: ok=%v err=%v", ok, err)
	}
}

func TestUnsealRejectsLengthLies(t *testing.T) {
	payload := []byte("short")
	blob := seal(payload)
	// Rewrite the logical-length varint to lie (5 -> 4) and fix up the CRC
	// so only the length check can object.
	body := append([]byte(nil), blob[:len(blob)-trailerSize]...)
	if body[headerSize] != 5 {
		t.Fatalf("test assumes a one-byte varint of 5, got %d", body[headerSize])
	}
	body[headerSize] = 4
	crc := crc32.ChecksumIEEE(body)
	forged := append(body, trailerMagic[:]...)
	forged = binary.LittleEndian.AppendUint32(forged, crc)
	if _, err := unseal(forged); err == nil {
		t.Fatal("unseal accepted a blob whose deflate stream outruns its declared length")
	}
	// And the other direction: declared length longer than the stream.
	body[headerSize] = 6
	crc = crc32.ChecksumIEEE(body)
	forged = append(body[:len(body):len(body)], trailerMagic[:]...)
	forged = binary.LittleEndian.AppendUint32(forged, crc)
	if _, err := unseal(forged); err == nil {
		t.Fatal("unseal accepted a blob whose declared length outruns its deflate stream")
	}
}
