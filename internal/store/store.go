// Package store is the content-addressed artifact store behind the slicing
// service. Artifacts — forward-pass products (control dependence graphs)
// and finished slice results — are keyed by the SHA-256 of the encoded
// trace they derive from, so a repeat analysis of an identical trace is a
// lookup instead of a recomputation (the paper stores its forward pass "in
// stable storage" for exactly this reuse; see DESIGN.md).
//
// Blobs live in a byte-bounded in-memory LRU layer over optional disk
// persistence. Blobs are compressed at rest: the envelope deflates the
// payload on Put and both layers hold the sealed (compressed) bytes, so
// the LRU byte gauge measures exactly what an eviction frees and what a
// disk blob occupies. Gets inflate on the way out — artifacts are read
// once per analysis, so the cache trades a little decode CPU for holding
// 2x+ more artifacts in the same budget. Disk blobs carry the trace
// format's CRC32 integrity trailer, are written atomically (temp file +
// rename), and a corrupt blob is reported and deleted rather than decoded
// into garbage.
//
// The store is a cache, and it degrades like one: a circuit breaker (see
// breaker.go) watches disk I/O errors and, once the disk is demonstrably
// erroring, sheds all disk traffic — reads become memory-layer lookups,
// writes become memory-only — until a half-open probe finds the disk
// healthy again. Callers never fail a computation because the cache
// under them is failing.
package store

import (
	"bytes"
	"compress/flate"
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// Blob envelope: magic, one version byte, body, then the same trailer
// shape as the trace format ("WSCK" + little-endian CRC32 of everything
// before it). Version 2 bodies are uvarint(logical length) followed by the
// deflate stream of the payload; version 1 bodies are the raw payload and
// remain readable so a store directory written before compression-at-rest
// keeps serving.
var (
	blobMagic    = [4]byte{'W', 'S', 'A', 'B'}
	trailerMagic = [4]byte{'W', 'S', 'C', 'K'}
)

const (
	blobVersion    = 2 // compressed body
	blobVersionRaw = 1 // legacy uncompressed body
	headerSize     = 5 // magic + version
	trailerSize    = 8 // trailer magic + CRC32

	// maxLogicalBytes caps the declared decompressed size of a blob, so a
	// damaged or hostile length field can't become an allocation bomb.
	maxLogicalBytes = 1 << 30
)

// ErrCorrupt reports a blob whose checksum or framing failed verification.
// The damaged file is removed so the next Get is a clean miss.
var ErrCorrupt = errors.New("store: corrupt artifact")

// Stats is a point-in-time snapshot of store activity.
type Stats struct {
	Hits         int64 // Gets served (memory or disk)
	Misses       int64 // Gets that found nothing
	MemHits      int64 // Gets served from the LRU layer
	DiskHits     int64 // Gets that had to read the disk layer
	Puts         int64 // artifacts written
	Evicted      int64 // entries pushed out of the LRU layer
	Corrupt      int64 // blobs that failed CRC or framing checks
	DiskErrors   int64 // disk operations that failed with an I/O error
	BreakerState int64 // disk breaker state (0 closed, 1 half-open, 2 open)
	BreakerTrips int64 // times the breaker opened
	BreakerShed  int64 // disk operations skipped while the breaker was open
}

// Store is a content-addressed artifact store with an in-memory LRU layer
// and optional disk persistence. All methods are safe for concurrent use.
type Store struct {
	dir    string // "" = memory only
	maxMem int64  // LRU byte budget
	fsys   FS     // disk operations (OSFS in production)
	br     *breaker

	mu       sync.Mutex
	mem      map[string]*list.Element // artifact name -> LRU element
	lru      *list.List               // front = most recently used
	memBytes int64

	hits, misses, memHits, diskHits, puts, evicted, corrupt atomic.Int64
}

// memEntry holds one sealed (compressed) blob; the LRU byte gauge sums
// len(data) over entries, i.e. at-rest sizes, never logical sizes.
type memEntry struct {
	name string
	data []byte
}

// DefaultMemBytes is the LRU budget used when Open is given maxMem <= 0.
const DefaultMemBytes = 64 << 20

// Open returns a store rooted at dir, creating it if needed. An empty dir
// yields a memory-only store (artifacts vanish when evicted). maxMem
// bounds the in-memory layer in bytes; <= 0 selects DefaultMemBytes.
func Open(dir string, maxMem int64) (*Store, error) {
	return OpenFS(dir, maxMem, OSFS{})
}

// OpenFS is Open over an explicit filesystem — the seam fault-injection
// tests use to exercise the disk breaker and corruption paths.
func OpenFS(dir string, maxMem int64, fsys FS) (*Store, error) {
	if maxMem <= 0 {
		maxMem = DefaultMemBytes
	}
	if fsys == nil {
		fsys = OSFS{}
	}
	if dir != "" {
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{
		dir:    dir,
		fsys:   fsys,
		br:     newBreaker(),
		maxMem: maxMem, mem: make(map[string]*list.Element), lru: list.New(),
	}, nil
}

// Dir returns the disk root ("" for a memory-only store).
func (s *Store) Dir() string { return s.dir }

// name builds the artifact identity from a kind and a content key. Both
// must stay within [a-zA-Z0-9._-]; anything else is replaced so the name
// is always a safe single path component.
func name(kind, key string) string {
	return sanitize(kind) + "-" + sanitize(key)
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, s)
}

func (s *Store) path(name string) string { return filepath.Join(s.dir, name+".wsab") }

// Put stores an artifact under (kind, key), overwriting any previous
// version, in both the LRU layer and (if configured) on disk. The disk
// write is atomic: a temp file in the same directory renamed into place.
// A disk I/O failure does not fail the Put: the artifact degrades to
// memory-only and the error feeds the disk circuit breaker, which sheds
// further disk writes once the disk is demonstrably erroring.
func (s *Store) Put(kind, key string, data []byte) error {
	n := name(kind, key)
	// Seal once — the same compressed blob goes to disk and into the LRU,
	// so the memory layer holds exactly the at-rest bytes (and, since seal
	// copies, later caller mutations can't alias in).
	blob := seal(data)
	if s.dir != "" && s.br.allow() {
		s.br.record(s.diskWrite(n, blob) == nil)
	}
	s.memInsert(n, blob)
	s.puts.Add(1)
	return nil
}

// diskWrite performs the atomic temp-file-and-rename protocol.
func (s *Store) diskWrite(n string, blob []byte) error {
	tmp, err := s.fsys.CreateTemp(s.dir, ".tmp-"+n+"-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = s.fsys.Rename(tmp.Name(), s.path(n))
	}
	if werr != nil {
		s.fsys.Remove(tmp.Name())
		return werr
	}
	return nil
}

// Get fetches the artifact stored under (kind, key). The second return is
// false on a miss. A corrupt disk blob yields (nil, false, ErrCorrupt-
// wrapped error) and the damaged file is removed.
func (s *Store) Get(kind, key string) ([]byte, bool, error) {
	n := name(kind, key)
	s.mu.Lock()
	if el, ok := s.mem[n]; ok {
		s.lru.MoveToFront(el)
		blob := el.Value.(*memEntry).data
		s.mu.Unlock()
		data, err := unseal(blob)
		if err != nil {
			// Only reachable if the process's own memory was scribbled on;
			// treat it like any other corrupt artifact.
			s.dropCorrupt(kind, key)
			return nil, false, fmt.Errorf("store: get %s: %w", n, err)
		}
		s.memHits.Add(1)
		s.hits.Add(1)
		return data, true, nil
	}
	s.mu.Unlock()
	if s.dir == "" || !s.br.allow() {
		s.misses.Add(1)
		return nil, false, nil
	}
	blob, err := s.fsys.ReadFile(s.path(n))
	if errors.Is(err, fs.ErrNotExist) {
		s.br.record(true) // the disk answered; the artifact just isn't there
		s.misses.Add(1)
		return nil, false, nil
	}
	if err != nil {
		s.br.record(false)
		s.misses.Add(1)
		return nil, false, fmt.Errorf("store: get %s: %w", n, err)
	}
	s.br.record(true)
	data, err := unseal(blob)
	if err != nil {
		s.corrupt.Add(1)
		s.fsys.Remove(s.path(n))
		return nil, false, fmt.Errorf("store: get %s: %w", n, err)
	}
	// Promote the sealed bytes, not the inflated payload — the memory layer
	// always accounts at-rest sizes.
	s.memPromote(n, blob)
	s.diskHits.Add(1)
	s.hits.Add(1)
	return data, true, nil
}

// Has reports whether the artifact exists without promoting it in the LRU
// or counting a hit/miss.
func (s *Store) Has(kind, key string) bool {
	n := name(kind, key)
	s.mu.Lock()
	_, ok := s.mem[n]
	s.mu.Unlock()
	if ok || s.dir == "" || !s.br.allow() {
		return ok
	}
	_, err := s.fsys.Stat(s.path(n))
	s.br.record(err == nil || errors.Is(err, fs.ErrNotExist))
	return err == nil
}

// Stats returns a snapshot of the activity counters.
func (s *Store) Stats() Stats {
	brState, brTrips, brShed, brErrs := s.br.snapshot()
	return Stats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		MemHits:      s.memHits.Load(),
		DiskHits:     s.diskHits.Load(),
		Puts:         s.puts.Load(),
		Evicted:      s.evicted.Load(),
		Corrupt:      s.corrupt.Load(),
		DiskErrors:   brErrs,
		BreakerState: int64(brState),
		BreakerTrips: brTrips,
		BreakerShed:  brShed,
	}
}

// MemBytes returns the bytes currently held by the LRU layer. Entries are
// stored sealed, so this is compressed (at-rest) size — the same quantity
// the maxMem budget bounds and an eviction frees — not the logical payload
// size callers see from Get.
func (s *Store) MemBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memBytes
}

func (s *Store) memInsert(n string, data []byte) {
	s.memStore(n, data, true)
}

// memStore is the shared LRU insertion; overwrite=false drops the write if
// the key already has an entry (the check and the insert happen under one
// lock acquisition — see memPromote for why that atomicity matters).
func (s *Store) memStore(n string, data []byte, overwrite bool) {
	s.mu.Lock()
	if el, ok := s.mem[n]; ok {
		if !overwrite {
			s.lru.MoveToFront(el)
			s.mu.Unlock()
			return
		}
		s.memBytes += int64(len(data)) - int64(len(el.Value.(*memEntry).data))
		el.Value.(*memEntry).data = data
		s.lru.MoveToFront(el)
	} else {
		s.mem[n] = s.lru.PushFront(&memEntry{name: n, data: data})
		s.memBytes += int64(len(data))
	}
	// Evict from the back until within budget; always keep the newest entry
	// so a single oversized artifact still caches.
	for s.memBytes > s.maxMem && s.lru.Len() > 1 {
		el := s.lru.Back()
		e := el.Value.(*memEntry)
		s.lru.Remove(el)
		delete(s.mem, e.name)
		s.memBytes -= int64(len(e.data))
		s.evicted.Add(1)
	}
	s.mu.Unlock()
}

// memPromote inserts a blob read from disk into the LRU layer only if the
// key is still absent. A plain memInsert here would race with a concurrent
// Put: Put writes fresher bytes to disk and memory between this goroutine's
// disk read and its promotion, and overwriting them with what was just read
// would pin stale data in the memory layer (where every later Get finds it
// first). Losing the promotion is harmless — the next miss re-reads disk.
func (s *Store) memPromote(n string, data []byte) {
	s.memStore(n, data, false)
}

// dropCorrupt evicts an artifact whose payload failed decoding from both
// layers, so the next Get is a clean miss instead of re-serving poison. The
// memory eviction decrements the LRU byte gauge — leaving memBytes inflated
// here would permanently shrink the effective budget with every corrupt blob.
func (s *Store) dropCorrupt(kind, key string) {
	n := name(kind, key)
	s.mu.Lock()
	if el, ok := s.mem[n]; ok {
		e := el.Value.(*memEntry)
		s.lru.Remove(el)
		delete(s.mem, n)
		s.memBytes -= int64(len(e.data))
		s.evicted.Add(1)
	}
	s.mu.Unlock()
	s.corrupt.Add(1)
	if s.dir != "" {
		s.fsys.Remove(s.path(n))
	}
}

// seal wraps payload in the v2 blob envelope: header, logical length,
// deflated payload, CRC trailer.
func seal(payload []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(headerSize + binary.MaxVarintLen64 + len(payload)/2 + trailerSize)
	buf.Write(blobMagic[:])
	buf.WriteByte(blobVersion)
	var lenBuf [binary.MaxVarintLen64]byte
	buf.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(payload)))])
	zw, _ := flate.NewWriter(&buf, flate.DefaultCompression)
	zw.Write(payload) // Buffer writes cannot fail
	zw.Close()
	crc := crc32.ChecksumIEEE(buf.Bytes())
	out := append(buf.Bytes(), trailerMagic[:]...)
	return binary.LittleEndian.AppendUint32(out, crc)
}

// unseal verifies the envelope and returns the (inflated) payload.
func unseal(blob []byte) ([]byte, error) {
	if len(blob) < headerSize+trailerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the envelope", ErrCorrupt, len(blob))
	}
	if [4]byte(blob[:4]) != blobMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	ver := blob[4]
	if ver != blobVersion && ver != blobVersionRaw {
		return nil, fmt.Errorf("%w: unsupported blob version %d", ErrCorrupt, ver)
	}
	body, tr := blob[:len(blob)-trailerSize], blob[len(blob)-trailerSize:]
	if [4]byte(tr[:4]) != trailerMagic {
		return nil, fmt.Errorf("%w: checksum trailer missing", ErrCorrupt)
	}
	want := binary.LittleEndian.Uint32(tr[4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (file says %08x, contents hash to %08x)", ErrCorrupt, want, got)
	}
	if ver == blobVersionRaw {
		return body[headerSize:], nil
	}
	rest := body[headerSize:]
	logical, k := binary.Uvarint(rest)
	if k <= 0 {
		return nil, fmt.Errorf("%w: truncated logical length", ErrCorrupt)
	}
	if logical > maxLogicalBytes {
		return nil, fmt.Errorf("%w: declared payload of %d bytes exceeds the %d cap", ErrCorrupt, logical, int64(maxLogicalBytes))
	}
	zr := flate.NewReader(bytes.NewReader(rest[k:]))
	out := make([]byte, logical)
	if _, err := io.ReadFull(zr, out); err != nil {
		return nil, fmt.Errorf("%w: payload inflate: %v", ErrCorrupt, err)
	}
	var extra [1]byte
	if n, _ := zr.Read(extra[:]); n != 0 {
		return nil, fmt.Errorf("%w: payload longer than its declared %d bytes", ErrCorrupt, logical)
	}
	zr.Close()
	return out, nil
}
