// Deterministic codecs for the artifacts the store holds. Both codecs sort
// every map before writing so that encoding the same logical artifact
// always yields the same bytes — the property that makes content-addressed
// caching and the determinism tests meaningful (gob, by contrast, walks
// maps in random order).
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"

	"webslice/internal/cdg"
	"webslice/internal/slicer"
	"webslice/internal/trace"
)

// Artifact kinds. Slice artifacts append a variant (criteria + options
// fingerprint) via SliceVariant.
const (
	KindDeps  = "cdg"
	KindSlice = "slice"
)

// TraceKey returns the content address of a trace: the hex SHA-256 of its
// canonical serialization (trace.Write). Decoding and re-encoding a trace
// reproduces the same bytes, so the key survives a round trip through the
// wire format — the invariant the determinism tests pin down.
func TraceKey(t *trace.Trace) (string, error) {
	h := sha256.New()
	if err := t.Write(h); err != nil {
		return "", fmt.Errorf("store: hashing trace: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// TraceKeyV3 returns the content address of a block-compressed (v3) trace
// WITHOUT materializing its records: the key is defined over the canonical
// v2 serialization, which BlockReader.WriteV2 reproduces byte-for-byte, so
// the same trace gets the same address whichever format carried it.
func TraceKeyV3(br *trace.BlockReader) (string, error) {
	h := sha256.New()
	if err := br.WriteV2(h); err != nil {
		return "", fmt.Errorf("store: hashing trace: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// KeyBytes returns the hex SHA-256 of raw bytes (for hashing an already-
// encoded trace without decoding it).
func KeyBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// SliceVariant fingerprints a slice computation: criteria name plus every
// option that changes the result. Two calls agree iff the slice bytes
// would agree.
func SliceVariant(criteria string, opts slicer.Options) string {
	v := fmt.Sprintf("%s-%s-pp%d-mt%d", KindSlice, criteria, opts.ProgressPoints, opts.MainThread)
	if opts.NoControlDeps {
		v += "-nocdg"
	}
	return v
}

// --- cdg.Deps codec ---

// EncodeDeps serializes a control dependence graph: entry count, then per
// PC (ascending) the PC, its dependence count, and the sorted branch PCs.
func EncodeDeps(d *cdg.Deps) []byte {
	pcs := make([]uint32, 0, len(d.ByPC))
	for pc := range d.ByPC {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	out := binary.AppendUvarint(nil, uint64(len(pcs)))
	for _, pc := range pcs {
		deps := d.ByPC[pc]
		out = binary.AppendUvarint(out, uint64(pc))
		out = binary.AppendUvarint(out, uint64(len(deps)))
		for _, b := range deps {
			out = binary.AppendUvarint(out, uint64(b))
		}
	}
	return out
}

// byteReader walks an encoded artifact with bounds-checked varint reads.
type byteReader struct {
	buf []byte
	pos int
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("store: bad or truncated uvarint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) u32() (uint32, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > 0xFFFFFFFF {
		return 0, fmt.Errorf("store: value %d overflows uint32 at offset %d", v, r.pos)
	}
	return uint32(v), nil
}

// count reads an element count, rejecting values that cannot fit in the
// remaining bytes at minBytes per element (mirrors the trace decoder).
func (r *byteReader) count(minBytes int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if minBytes > 0 && v > uint64((len(r.buf)-r.pos)/minBytes) {
		return 0, fmt.Errorf("store: count %d impossible: %d bytes remain", v, len(r.buf)-r.pos)
	}
	return int(v), nil
}

// DecodeDeps reverses EncodeDeps.
func DecodeDeps(b []byte) (*cdg.Deps, error) {
	r := &byteReader{buf: b}
	n, err := r.count(2)
	if err != nil {
		return nil, err
	}
	d := &cdg.Deps{ByPC: make(map[uint32][]uint32, n)}
	for i := 0; i < n; i++ {
		pc, err := r.u32()
		if err != nil {
			return nil, err
		}
		nd, err := r.count(1)
		if err != nil {
			return nil, err
		}
		deps := make([]uint32, nd)
		for j := range deps {
			if deps[j], err = r.u32(); err != nil {
				return nil, err
			}
		}
		d.ByPC[pc] = deps
	}
	return d, nil
}

// --- slicer.Result codec ---

// EncodeResult serializes a slice result with every statistic the service
// reports: the bitset, per-thread and per-function counts (sorted by key),
// the progress curve, and the pending-branch residue.
func EncodeResult(r *slicer.Result) []byte {
	out := binary.AppendUvarint(nil, uint64(len(r.Criteria)))
	out = append(out, r.Criteria...)
	out = binary.AppendUvarint(out, uint64(r.Total))
	out = binary.AppendUvarint(out, uint64(r.SliceCount))
	out = binary.AppendUvarint(out, uint64(r.PendingLeft))

	out = binary.AppendUvarint(out, uint64(len(r.InSlice)))
	for _, w := range r.InSlice {
		out = binary.LittleEndian.AppendUint64(out, w)
	}

	out = appendThreadMap(out, r.ByThread)
	out = appendThreadMap(out, r.SliceByThread)
	out = appendFuncMap(out, r.ByFunc)
	out = appendFuncMap(out, r.SliceByFunc)

	out = binary.AppendUvarint(out, uint64(len(r.Progress)))
	for _, p := range r.Progress {
		out = binary.AppendUvarint(out, uint64(p.Processed))
		out = binary.AppendUvarint(out, uint64(p.Sliced))
		out = binary.AppendUvarint(out, uint64(p.MainProcessed))
		out = binary.AppendUvarint(out, uint64(p.MainSliced))
	}
	return out
}

func appendThreadMap(out []byte, m map[uint8]int) []byte {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	out = binary.AppendUvarint(out, uint64(len(keys)))
	for _, k := range keys {
		out = binary.AppendUvarint(out, uint64(k))
		out = binary.AppendUvarint(out, uint64(m[uint8(k)]))
	}
	return out
}

func appendFuncMap(out []byte, m map[trace.FuncID]int) []byte {
	keys := make([]uint32, 0, len(m))
	for k := range m {
		keys = append(keys, uint32(k))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out = binary.AppendUvarint(out, uint64(len(keys)))
	for _, k := range keys {
		out = binary.AppendUvarint(out, uint64(k))
		out = binary.AppendUvarint(out, uint64(m[trace.FuncID(k)]))
	}
	return out
}

// DecodeResult reverses EncodeResult.
func DecodeResult(b []byte) (*slicer.Result, error) {
	r := &byteReader{buf: b}
	nameLen, err := r.count(1)
	if err != nil {
		return nil, err
	}
	if r.pos+nameLen > len(b) {
		return nil, errors.New("store: criteria name overruns the artifact")
	}
	res := &slicer.Result{Criteria: string(b[r.pos : r.pos+nameLen])}
	r.pos += nameLen

	total, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	res.Total = int(total)
	sc, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	res.SliceCount = int(sc)
	pl, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	res.PendingLeft = int(pl)

	nw, err := r.count(8)
	if err != nil {
		return nil, err
	}
	res.InSlice = make(slicer.Bitset, nw)
	for i := range res.InSlice {
		if r.pos+8 > len(b) {
			return nil, errors.New("store: bitset truncated")
		}
		res.InSlice[i] = binary.LittleEndian.Uint64(b[r.pos:])
		r.pos += 8
	}

	if res.ByThread, err = readThreadMap(r); err != nil {
		return nil, err
	}
	if res.SliceByThread, err = readThreadMap(r); err != nil {
		return nil, err
	}
	if res.ByFunc, err = readFuncMap(r); err != nil {
		return nil, err
	}
	if res.SliceByFunc, err = readFuncMap(r); err != nil {
		return nil, err
	}

	np, err := r.count(4)
	if err != nil {
		return nil, err
	}
	if np > 0 {
		res.Progress = make([]slicer.ProgressPoint, np)
	}
	for i := range res.Progress {
		vals := [4]uint64{}
		for j := range vals {
			if vals[j], err = r.uvarint(); err != nil {
				return nil, err
			}
		}
		res.Progress[i] = slicer.ProgressPoint{
			Processed: int(vals[0]), Sliced: int(vals[1]),
			MainProcessed: int(vals[2]), MainSliced: int(vals[3]),
		}
	}
	return res, nil
}

func readThreadMap(r *byteReader) (map[uint8]int, error) {
	n, err := r.count(2)
	if err != nil {
		return nil, err
	}
	m := make(map[uint8]int, n)
	for i := 0; i < n; i++ {
		k, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if k > 255 {
			return nil, fmt.Errorf("store: thread id %d out of range", k)
		}
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		m[uint8(k)] = int(v)
	}
	return m, nil
}

func readFuncMap(r *byteReader) (map[trace.FuncID]int, error) {
	n, err := r.count(2)
	if err != nil {
		return nil, err
	}
	m := make(map[trace.FuncID]int, n)
	for i := 0; i < n; i++ {
		k, err := r.u32()
		if err != nil {
			return nil, err
		}
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		m[trace.FuncID(k)] = int(v)
	}
	return m, nil
}

// --- typed store helpers ---

// PutDeps stores a control dependence graph under the trace key.
func (s *Store) PutDeps(traceKey string, d *cdg.Deps) error {
	return s.Put(KindDeps, traceKey, EncodeDeps(d))
}

// GetDeps fetches the control dependence graph cached for a trace.
func (s *Store) GetDeps(traceKey string) (*cdg.Deps, bool, error) {
	b, ok, err := s.Get(KindDeps, traceKey)
	if !ok || err != nil {
		return nil, false, err
	}
	d, err := DecodeDeps(b)
	if err != nil {
		// The envelope checksum passed but the payload doesn't decode: evict
		// it (both layers) so the caller recomputes instead of failing again.
		s.dropCorrupt(KindDeps, traceKey)
		return nil, false, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return d, true, nil
}

// PutSlice stores a slice result under (variant, trace key). Use
// SliceVariant to build the variant string.
func (s *Store) PutSlice(traceKey, variant string, r *slicer.Result) error {
	return s.Put(variant, traceKey, EncodeResult(r))
}

// GetSlice fetches a cached slice result.
func (s *Store) GetSlice(traceKey, variant string) (*slicer.Result, bool, error) {
	b, ok, err := s.Get(variant, traceKey)
	if !ok || err != nil {
		return nil, false, err
	}
	r, err := DecodeResult(b)
	if err != nil {
		s.dropCorrupt(variant, traceKey)
		return nil, false, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return r, true, nil
}
