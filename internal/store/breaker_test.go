package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webslice/internal/cdg"
)

// flakyFS wraps OSFS and fails selected operations with a synthetic I/O
// error while `failing` is set.
type flakyFS struct {
	OSFS
	failing atomic.Bool
	ops     atomic.Int64 // disk ops attempted while failing
}

var errInjected = errors.New("injected I/O error")

func (f *flakyFS) ReadFile(name string) ([]byte, error) {
	if f.failing.Load() {
		f.ops.Add(1)
		return nil, fmt.Errorf("read %s: %w", name, errInjected)
	}
	return f.OSFS.ReadFile(name)
}

func (f *flakyFS) CreateTemp(dir, pattern string) (File, error) {
	if f.failing.Load() {
		f.ops.Add(1)
		return nil, fmt.Errorf("createtemp: %w", errInjected)
	}
	return f.OSFS.CreateTemp(dir, pattern)
}

func TestBreakerOpensShedsAndRecovers(t *testing.T) {
	fsys := &flakyFS{}
	s, err := OpenFS(t.TempDir(), 0, fsys)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	s.br.now = func() time.Time { return now }
	s.ConfigureBreaker(3, time.Second)

	// Healthy disk: a put lands on disk and a cold read works.
	if err := s.Put("cdg", "k0", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.BreakerState != int64(BreakerClosed) || st.DiskErrors != 0 {
		t.Fatalf("stats after healthy put = %+v", st)
	}

	// Disk starts erroring: three failing operations trip the breaker.
	fsys.failing.Store(true)
	for i := 0; i < 3; i++ {
		if err := s.Put("cdg", fmt.Sprintf("fail%d", i), []byte("x")); err != nil {
			t.Fatalf("Put during disk failure must shed, not error: %v", err)
		}
	}
	if st := s.Stats(); st.BreakerState != int64(BreakerOpen) || st.BreakerTrips != 1 || st.DiskErrors != 3 {
		t.Fatalf("stats after trip = %+v, want open/1 trip/3 errors", st)
	}

	// Open breaker: disk is not touched at all, memory still serves.
	opsBefore := fsys.ops.Load()
	if err := s.Put("cdg", "shed", []byte("mem-only")); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := s.Get("cdg", "shed"); !ok || err != nil || string(got) != "mem-only" {
		t.Fatalf("memory layer broken while breaker open: %q %v %v", got, ok, err)
	}
	if _, ok, err := s.Get("cdg", "never-stored"); ok || err != nil {
		t.Fatalf("shed Get = %v, %v, want clean miss", ok, err)
	}
	if fsys.ops.Load() != opsBefore {
		t.Fatalf("breaker open but %d disk ops ran", fsys.ops.Load()-opsBefore)
	}
	if st := s.Stats(); st.BreakerShed == 0 {
		t.Fatalf("stats = %+v, want shed operations counted", st)
	}

	// Cooldown elapses but the disk is still bad: the half-open probe fails
	// and the breaker re-opens.
	now = now.Add(2 * time.Second)
	if err := s.Put("cdg", "probe1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.BreakerState != int64(BreakerOpen) || st.BreakerTrips != 2 {
		t.Fatalf("stats after failed probe = %+v, want re-opened/2 trips", st)
	}

	// Disk recovers: after the next cooldown the probe succeeds and the
	// breaker closes; disk persistence resumes.
	fsys.failing.Store(false)
	now = now.Add(2 * time.Second)
	if err := s.Put("cdg", "probe2", []byte("back")); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.BreakerState != int64(BreakerClosed) {
		t.Fatalf("stats after successful probe = %+v, want closed", st)
	}
	cold, _ := Open(s.Dir(), 0)
	if got, ok, _ := cold.Get("cdg", "probe2"); !ok || string(got) != "back" {
		t.Fatalf("post-recovery artifact not on disk: %q %v", got, ok)
	}
}

func TestBreakerHalfOpenAdmitsSingleProbe(t *testing.T) {
	b := newBreaker()
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }
	b.threshold, b.cooldown = 1, time.Second
	b.record(false) // trip
	if st, _, _, _ := b.snapshot(); st != BreakerOpen {
		t.Fatalf("state = %v, want open", st)
	}
	now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("first caller after cooldown must win the probe slot")
	}
	for i := 0; i < 4; i++ {
		if b.allow() {
			t.Fatal("second caller admitted while a probe is in flight")
		}
	}
	b.record(true)
	if st, _, _, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("state after good probe = %v, want closed", st)
	}
}

// TestDiskGetDoesNotClobberFresherPut pins the LRU stale-promotion fix: a
// Get that read version-1 bytes from disk must not overwrite the memory
// entry a concurrent Put stored for the same key in the meantime.
func TestDiskGetDoesNotClobberFresherPut(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 0)
	if err := s.Put("cdg", "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Simulate the interleaving deterministically: the disk reader has
	// already fetched v1's blob and is about to promote it when the Put of
	// v2 lands.
	v1 := []byte("v1")
	if err := s.Put("cdg", "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	s.memPromote(name("cdg", "k"), v1) // the late promotion must lose
	got, ok, err := s.Get("cdg", "k")
	if !ok || err != nil || string(got) != "v2" {
		t.Fatalf("Get after late promotion = %q, %v, %v; stale v1 clobbered fresher v2", got, ok, err)
	}
}

// TestConcurrentGetPutEvictStress hammers overlapping Get/Put/corrupt-Get
// traffic on a tiny LRU so eviction, promotion, and corruption cleanup all
// interleave — run under -race (ci.sh does) this is the satellite audit of
// the eviction/Get window.
func TestConcurrentGetPutEvictStress(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 2048) // tiny budget: constant eviction
	keys := []string{"a", "b", "c", "d", "e"}
	payload := func(k string, v int) []byte {
		return bytes.Repeat([]byte(fmt.Sprintf("%s%d", k, v)), 100)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[(g+i)%len(keys)]
				switch i % 3 {
				case 0:
					if err := s.Put("slice", k, payload(k, i)); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if data, ok, err := s.Get("slice", k); err != nil {
						t.Errorf("Get %s: %v", k, err)
						return
					} else if ok && len(data) == 0 {
						t.Errorf("Get %s returned empty data", k)
						return
					}
				case 2:
					s.Has("slice", k)
				}
			}
		}(g)
	}
	// Meanwhile, a goroutine repeatedly plants junk deps artifacts and reads
	// them back: every read trips the corrupt-eviction path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		junk := bytes.Repeat([]byte{0xFF}, 64)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.PutDeps("poison", &cdg.Deps{ByPC: map[uint32][]uint32{1: {2}}}); err != nil {
				t.Error(err)
				return
			}
			s.Put(KindDeps, "poison", junk)
			s.GetDeps("poison")
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if s.MemBytes() < 0 {
		t.Fatalf("MemBytes went negative: %d", s.MemBytes())
	}
	if s.MemBytes() > 2048+1024 {
		t.Fatalf("MemBytes = %d, far over the 2048 budget", s.MemBytes())
	}
	// No temp files left behind by the concurrent writers.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if len(e.Name()) > 4 && e.Name()[:5] == ".tmp-" {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}
