package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webslice/internal/cdg"
	"webslice/internal/slicer"
	"webslice/internal/trace"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("forward-pass artifact")
	if err := s.Put("cdg", "abc123", data); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("cdg", "abc123")
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v, %v", got, ok, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get returned %q, want %q", got, data)
	}
	if _, ok, _ := s.Get("cdg", "missing"); ok {
		t.Fatal("Get of a missing key reported ok")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.MemHits != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 mem hit / 1 put", st)
	}
}

func TestDiskPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, _ := Open(dir, 0)
	if err := s1.Put("slice", "k1", []byte("result bytes")); err != nil {
		t.Fatal(err)
	}
	// A second store over the same directory — cold memory layer — must
	// serve the artifact from disk.
	s2, _ := Open(dir, 0)
	got, ok, err := s2.Get("slice", "k1")
	if err != nil || !ok || string(got) != "result bytes" {
		t.Fatalf("reopened Get = %q, %v, %v", got, ok, err)
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.MemHits != 0 {
		t.Fatalf("stats = %+v, want the hit to come from disk", st)
	}
	// And now it is promoted into memory.
	if _, ok, _ := s2.Get("slice", "k1"); !ok {
		t.Fatal("promoted Get missed")
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Fatalf("stats = %+v, want a mem hit after promotion", st)
	}
}

func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 0)
	if err := s.Put("cdg", "victim", bytes.Repeat([]byte{0xAA}, 256)); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit on disk, then read through a cold store.
	path := filepath.Join(dir, "cdg-victim.wsab")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x01
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	cold, _ := Open(dir, 0)
	_, ok, err := cold.Get("cdg", "victim")
	if ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get of corrupt blob = ok=%v err=%v, want ErrCorrupt", ok, err)
	}
	if st := cold.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt", st)
	}
	// The damaged file was removed: the next Get is a clean miss.
	if _, ok, err := cold.Get("cdg", "victim"); ok || err != nil {
		t.Fatalf("Get after corruption cleanup = ok=%v err=%v, want clean miss", ok, err)
	}
}

func TestCorruptPayloadEvictionDecrementsMemBytes(t *testing.T) {
	// A blob whose envelope checksum passes but whose payload doesn't decode
	// (e.g. written by a buggy encoder) must be evicted from the LRU layer
	// with its bytes subtracted from the gauge — not left poisoning the cache
	// while permanently consuming budget.
	dir := t.TempDir()
	s, _ := Open(dir, 0)
	junk := bytes.Repeat([]byte{0xFF}, 512) // valid envelope, undecodable payload
	if err := s.Put(KindDeps, "poisoned", junk); err != nil {
		t.Fatal(err)
	}
	if want := int64(len(seal(junk))); s.MemBytes() != want {
		t.Fatalf("MemBytes = %d after put, want the sealed size %d", s.MemBytes(), want)
	}
	_, ok, err := s.GetDeps("poisoned")
	if ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("GetDeps of junk = ok=%v err=%v, want ErrCorrupt", ok, err)
	}
	if s.MemBytes() != 0 {
		t.Fatalf("MemBytes = %d after corrupt eviction, want 0", s.MemBytes())
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Evicted != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt / 1 evicted", st)
	}
	// Both layers dropped it: the next typed get is a clean miss.
	if _, ok, err := s.GetDeps("poisoned"); ok || err != nil {
		t.Fatalf("GetDeps after eviction = ok=%v err=%v, want clean miss", ok, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cdg-poisoned.wsab")); !os.IsNotExist(err) {
		t.Fatalf("disk blob still present after corrupt eviction (stat err = %v)", err)
	}

	// Same accounting for slice artifacts.
	if err := s.Put(SliceVariant("pixels", slicer.Options{}), "poisoned", junk); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.GetSlice("poisoned", SliceVariant("pixels", slicer.Options{})); ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("GetSlice of junk = ok=%v err=%v, want ErrCorrupt", ok, err)
	}
	if s.MemBytes() != 0 {
		t.Fatalf("MemBytes = %d after slice eviction, want 0", s.MemBytes())
	}
}

func TestAtomicWriteLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 0)
	for i := 0; i < 10; i++ {
		if err := s.Put("cdg", "k", bytes.Repeat([]byte{byte(i)}, 128)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries, want exactly the artifact", len(entries))
	}
}

func TestLRUEvictionFallsBackToDisk(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 1024) // tiny memory budget
	// Incompressible payloads, so each seals to ~its logical size and two
	// of them genuinely overflow the budget at rest.
	big := incompressible(700)
	if err := s.Put("slice", "old", big); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("slice", "new", big); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Evicted == 0 {
		t.Fatalf("stats = %+v, want evictions under a 1KB budget", st)
	}
	if s.MemBytes() > 1024 {
		t.Fatalf("mem layer holds %d bytes, budget is 1024", s.MemBytes())
	}
	// The evicted artifact is still served — from disk.
	got, ok, err := s.Get("slice", "old")
	if err != nil || !ok || !bytes.Equal(got, big) {
		t.Fatalf("evicted artifact not recovered from disk: ok=%v err=%v", ok, err)
	}
	if st := s.Stats(); st.DiskHits == 0 {
		t.Fatalf("stats = %+v, want a disk hit for the evicted artifact", st)
	}
}

func TestMemoryOnlyStore(t *testing.T) {
	s, err := Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("cdg", "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := s.Get("cdg", "k"); !ok || string(got) != "x" {
		t.Fatalf("memory-only Get = %q, %v", got, ok)
	}
}

func TestNameSanitization(t *testing.T) {
	s, _ := Open(t.TempDir(), 0)
	// Criteria-derived kinds contain characters that must not escape the
	// store directory or break file names.
	kind := "slice-union(pixels+syscalls)[<42]"
	if err := s.Put(kind, "k/../../evil", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(kind, "k/../../evil"); !ok || err != nil {
		t.Fatalf("sanitized Get = %v, %v", ok, err)
	}
	entries, _ := os.ReadDir(s.Dir())
	if len(entries) != 1 || strings.ContainsAny(entries[0].Name(), "/()[]<>+") {
		t.Fatalf("unexpected store contents: %v", entries)
	}
}

func TestDepsCodecDeterministicRoundTrip(t *testing.T) {
	d := &cdg.Deps{ByPC: map[uint32][]uint32{
		0x10003: {0x10001, 0x10002},
		0x20001: {0x20000},
		0x00005: nil,
	}}
	b1 := EncodeDeps(d)
	b2 := EncodeDeps(d)
	if !bytes.Equal(b1, b2) {
		t.Fatal("EncodeDeps is not deterministic")
	}
	got, err := DecodeDeps(b1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.ByPC) != len(d.ByPC) {
		t.Fatalf("decoded %d entries, want %d", len(got.ByPC), len(d.ByPC))
	}
	for pc, deps := range d.ByPC {
		gd := got.ByPC[pc]
		if len(gd) != len(deps) {
			t.Fatalf("pc %#x: decoded %v, want %v", pc, gd, deps)
		}
		for i := range deps {
			if gd[i] != deps[i] {
				t.Fatalf("pc %#x: decoded %v, want %v", pc, gd, deps)
			}
		}
	}
	if !bytes.Equal(EncodeDeps(got), b1) {
		t.Fatal("re-encoding the decoded deps changed the bytes")
	}
	if _, err := DecodeDeps(b1[:len(b1)/2]); err == nil {
		t.Fatal("decoding a truncated deps artifact succeeded")
	}
}

func TestResultCodecRoundTrip(t *testing.T) {
	in := &slicer.Result{
		Criteria:      "pixels",
		Total:         130,
		SliceCount:    57,
		PendingLeft:   2,
		InSlice:       slicer.Bitset{0xDEADBEEF, 0x0102030405060708, 0x3},
		ByThread:      map[uint8]int{0: 100, 3: 30},
		SliceByThread: map[uint8]int{0: 50, 3: 7},
		ByFunc:        map[trace.FuncID]int{1: 60, 9: 70},
		SliceByFunc:   map[trace.FuncID]int{1: 20, 9: 37},
		Progress: []slicer.ProgressPoint{
			{Processed: 65, Sliced: 30, MainProcessed: 50, MainSliced: 25},
			{Processed: 130, Sliced: 57, MainProcessed: 100, MainSliced: 50},
		},
	}
	b1 := EncodeResult(in)
	if !bytes.Equal(b1, EncodeResult(in)) {
		t.Fatal("EncodeResult is not deterministic")
	}
	out, err := DecodeResult(b1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeResult(out), b1) {
		t.Fatal("round trip changed the encoded bytes")
	}
	if out.Criteria != in.Criteria || out.Total != in.Total || out.SliceCount != in.SliceCount ||
		out.PendingLeft != in.PendingLeft || len(out.Progress) != len(in.Progress) {
		t.Fatalf("decoded result %+v differs from input", out)
	}
	for i := 0; i < in.Total; i++ {
		if in.InSlice.Get(i) != out.InSlice.Get(i) {
			t.Fatalf("bitset differs at %d", i)
		}
	}
	if out.ByThread[3] != 30 || out.SliceByFunc[9] != 37 {
		t.Fatal("decoded maps differ")
	}
	if _, err := DecodeResult(b1[:10]); err == nil {
		t.Fatal("decoding a truncated result artifact succeeded")
	}
}

func TestSliceVariantFingerprintsOptions(t *testing.T) {
	a := SliceVariant("pixels", slicer.Options{ProgressPoints: 160})
	b := SliceVariant("pixels", slicer.Options{ProgressPoints: 100})
	c := SliceVariant("pixels", slicer.Options{ProgressPoints: 160, NoControlDeps: true})
	d := SliceVariant("syscalls", slicer.Options{ProgressPoints: 160})
	if a == b || a == c || a == d || b == c {
		t.Fatalf("variants collide: %q %q %q %q", a, b, c, d)
	}
}
