// Package refslicer is a deliberately naive reference implementation of the
// backward slicing pass, used as a differential oracle against the optimized
// internal/slicer. It is a direct transcription of §III-B of the paper with
// none of the production engine's machinery: no criteria fusion, no pooled
// frame stacks, no dense tallies, no word-packed live-memory sets — just
// maps everywhere and one O(n·m) reverse walk per criterion. Slow and
// obviously correct is the whole point: if slicer.Slice and refslicer.Slice
// ever disagree on a trace, one of them has a bug, and this one is the
// easier to audit.
package refslicer

import (
	"fmt"

	"webslice/internal/cdg"
	"webslice/internal/isa"
	"webslice/internal/slicer"
	"webslice/internal/trace"
	"webslice/internal/vmem"
)

// Result is the naive slicer's output: which record indices are in the
// slice, plus the two scalars the optimized Result also reports.
type Result struct {
	InSlice     []bool
	SliceCount  int
	PendingLeft int
}

// threadState mirrors the optimized slicer's per-thread backward-walk state,
// but with the nested-maps representation the optimized version abandoned
// for performance: pending branch PCs and frame contribution are maps keyed
// by call depth (which may go negative for traces that open mid-function).
type threadState struct {
	depth   int
	pending map[int]map[uint32]bool
	contrib map[int]bool
}

type state struct {
	t     *trace.Trace
	deps  *cdg.Deps
	crit  slicer.Criteria
	noCDG bool

	res     *Result
	regs    map[isa.Reg]bool
	liveMem map[vmem.Addr]bool
	threads map[uint8]*threadState
}

// Slice runs one naive backward pass over t for a single criterion. noCDG
// disables the pending-branch mechanism (the data-dependence-only ablation).
func Slice(t *trace.Trace, deps *cdg.Deps, c slicer.Criteria, noCDG bool) (*Result, error) {
	if c == nil {
		return nil, fmt.Errorf("refslicer: nil criteria")
	}
	if deps == nil && !noCDG {
		return nil, fmt.Errorf("refslicer: control dependences required")
	}
	s := &state{
		t:     t,
		deps:  deps,
		crit:  c,
		noCDG: noCDG,
		res: &Result{
			InSlice: make([]bool, len(t.Recs)),
		},
		regs:    make(map[isa.Reg]bool),
		liveMem: make(map[vmem.Addr]bool),
		threads: make(map[uint8]*threadState),
	}
	for i := len(t.Recs) - 1; i >= 0; i-- {
		s.step(i, &t.Recs[i])
	}
	for _, th := range s.threads {
		for _, set := range th.pending {
			s.res.PendingLeft += len(set)
		}
	}
	return s.res, nil
}

func (s *state) thread(tid uint8) *threadState {
	th := s.threads[tid]
	if th == nil {
		th = &threadState{
			pending: make(map[int]map[uint32]bool),
			contrib: make(map[int]bool),
		}
		s.threads[tid] = th
	}
	return th
}

func (s *state) step(i int, r *trace.Rec) {
	th := s.thread(r.TID)

	if mem, anchor := s.crit.At(i, r, s.t); len(mem) > 0 || anchor {
		for _, rg := range mem {
			s.addMem(rg)
		}
		if anchor {
			s.mark(i, r, th)
			s.setReg(r.Src1)
			s.setReg(r.Src2)
		}
	}

	switch r.Kind {
	case isa.KindConst:
		if s.killReg(r.Dst) {
			s.mark(i, r, th)
		}
	case isa.KindOp:
		if s.killReg(r.Dst) {
			s.mark(i, r, th)
			s.setReg(r.Src1)
			s.setReg(r.Src2)
		}
	case isa.KindLoad:
		if s.killReg(r.Dst) {
			s.mark(i, r, th)
			s.addMem(r.MemRange())
			s.setReg(r.Src2)
		}
	case isa.KindStore:
		if s.killMem(r.MemRange()) {
			s.mark(i, r, th)
			s.setReg(r.Src1)
			s.setReg(r.Src2)
		}
	case isa.KindBranch:
		if !s.noCDG && th.pending[th.depth][r.PC] {
			delete(th.pending[th.depth], r.PC)
			s.mark(i, r, th)
			s.setReg(r.Src1)
		}
	case isa.KindRet:
		th.depth++
		delete(th.pending, th.depth)
		delete(th.contrib, th.depth)
	case isa.KindCall:
		contributed := th.contrib[th.depth]
		s.res.PendingLeft += len(th.pending[th.depth])
		delete(th.pending, th.depth)
		delete(th.contrib, th.depth)
		th.depth--
		if contributed {
			s.mark(i, r, th)
		}
	case isa.KindSyscall:
		if eff := s.t.Sys[i]; eff != nil {
			hit := false
			for _, w := range eff.Writes {
				if s.killMem(w) {
					hit = true
				}
			}
			if s.killReg(r.Dst) {
				hit = true
			}
			if hit {
				s.mark(i, r, th)
				for _, rd := range eff.Reads {
					s.addMem(rd)
				}
			}
		}
	case isa.KindMarker, isa.KindNop:
	}
}

func (s *state) mark(i int, r *trace.Rec, th *threadState) {
	if s.res.InSlice[i] {
		return
	}
	s.res.InSlice[i] = true
	s.res.SliceCount++
	th.contrib[th.depth] = true
	if s.noCDG || s.deps == nil {
		return
	}
	for _, bpc := range s.deps.Of(r.PC) {
		set := th.pending[th.depth]
		if set == nil {
			set = make(map[uint32]bool)
			th.pending[th.depth] = set
		}
		set[bpc] = true
	}
}

func (s *state) setReg(r isa.Reg) {
	if r != isa.RegNone {
		s.regs[r] = true
	}
}

func (s *state) killReg(r isa.Reg) bool {
	if r == isa.RegNone {
		return false
	}
	was := s.regs[r]
	delete(s.regs, r)
	return was
}

func (s *state) addMem(rg vmem.Range) {
	for off := uint64(0); off < uint64(rg.Size); off++ {
		s.liveMem[rg.Addr+vmem.Addr(off)] = true
	}
}

func (s *state) killMem(rg vmem.Range) bool {
	hit := false
	for off := uint64(0); off < uint64(rg.Size); off++ {
		a := rg.Addr + vmem.Addr(off)
		if s.liveMem[a] {
			hit = true
		}
		delete(s.liveMem, a)
	}
	return hit
}

// Equal reports whether the naive result agrees exactly with the optimized
// slicer's, naming the first differing record index when it does not.
func Equal(ref *Result, got *slicer.Result) error {
	if got.Total != len(ref.InSlice) {
		return fmt.Errorf("refslicer: total mismatch: ref %d vs got %d", len(ref.InSlice), got.Total)
	}
	for i, in := range ref.InSlice {
		if got.InSlice.Get(i) != in {
			return fmt.Errorf("refslicer: first disagreement at record %d: ref in-slice=%v, optimized=%v", i, in, got.InSlice.Get(i))
		}
	}
	if got.SliceCount != ref.SliceCount {
		return fmt.Errorf("refslicer: slice count mismatch: ref %d vs got %d", ref.SliceCount, got.SliceCount)
	}
	if got.PendingLeft != ref.PendingLeft {
		return fmt.Errorf("refslicer: pending residue mismatch: ref %d vs got %d", ref.PendingLeft, got.PendingLeft)
	}
	return nil
}
