package refslicer

import (
	"testing"

	"webslice/internal/cdg"
	"webslice/internal/cfg"
	"webslice/internal/isa"
	"webslice/internal/slicer"
	"webslice/internal/trace"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

func forward(t *testing.T, tr *trace.Trace) *cdg.Deps {
	t.Helper()
	f, err := cfg.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	return cdg.Compute(f)
}

// workload exercises every record kind: loops, calls, cross-thread flow,
// dead bookkeeping, input and output syscalls, and pixel markers.
func workload() *vm.Machine {
	m := vm.New()
	m.Thread(0, "main")
	m.Thread(1, "worker")
	tile := m.Tile.Alloc(64)
	net := m.IOb.Alloc(32)
	inbuf := m.IOb.Alloc(16)
	stats := m.Heap.Alloc(16)

	m.Syscall(isa.SysRecvfrom, isa.RegNone, isa.RegNone, nil,
		[]vmem.Range{{Addr: inbuf, Size: 8}}, []byte("RESPONSE"))

	render := m.Func("render", "gfx")
	m.Call(render, func() {
		seed := m.LoadU32(inbuf)
		m.Loop("rows", 8, func(i int) {
			v := m.AddImm(seed, uint64(i))
			m.StoreU32(tile+vmem.Addr(4*(i%16)), v)
		})
	})
	m.Bookkeep(stats, 12)

	m.Switch(1)
	b := m.Const(7)
	m.StoreU32(net, b)
	m.Syscall(isa.SysSendto, isa.RegNone, isa.RegNone,
		[]vmem.Range{{Addr: net, Size: 4}}, nil, nil)
	m.Switch(0)

	m.MarkPixels(vmem.Range{Addr: tile, Size: 32})
	m.Syscall(isa.SysIoctl, isa.RegNone, isa.RegNone,
		[]vmem.Range{{Addr: tile, Size: 32}}, nil, nil)
	return m
}

func TestNaiveAgreesWithOptimized(t *testing.T) {
	m := workload()
	deps := forward(t, m.Tr)
	criteria := []slicer.Criteria{
		slicer.PixelCriteria{},
		slicer.SyscallCriteria{},
		slicer.Union{slicer.PixelCriteria{}, slicer.SyscallCriteria{}},
		slicer.Window{Inner: slicer.SyscallCriteria{}, Limit: len(m.Tr.Recs) / 2},
	}
	for _, noCDG := range []bool{false, true} {
		for _, c := range criteria {
			ref, err := Slice(m.Tr, deps, c, noCDG)
			if err != nil {
				t.Fatalf("refslicer %s noCDG=%v: %v", c.Name(), noCDG, err)
			}
			got, err := slicer.Slice(m.Tr, deps, c, slicer.Options{NoControlDeps: noCDG})
			if err != nil {
				t.Fatalf("slicer %s noCDG=%v: %v", c.Name(), noCDG, err)
			}
			if err := Equal(ref, got); err != nil {
				t.Errorf("%s noCDG=%v: %v", c.Name(), noCDG, err)
			}
			if !noCDG && c.Name() == "pixels" && ref.SliceCount == 0 {
				t.Error("degenerate workload: empty pixel slice")
			}
		}
	}
}

func TestEqualNamesFirstDivergence(t *testing.T) {
	m := workload()
	deps := forward(t, m.Tr)
	ref, err := Slice(m.Tr, deps, slicer.PixelCriteria{}, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := slicer.Slice(m.Tr, deps, slicer.PixelCriteria{}, slicer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit: Equal must report that exact index.
	for i := range ref.InSlice {
		if ref.InSlice[i] {
			ref.InSlice[i] = false
			break
		}
	}
	if err := Equal(ref, got); err == nil {
		t.Error("Equal accepted a perturbed reference result")
	}
}

func TestSliceValidation(t *testing.T) {
	m := workload()
	if _, err := Slice(m.Tr, nil, slicer.PixelCriteria{}, false); err == nil {
		t.Error("nil deps without noCDG should be rejected")
	}
	if _, err := Slice(m.Tr, nil, nil, true); err == nil {
		t.Error("nil criteria should be rejected")
	}
	if _, err := Slice(m.Tr, nil, slicer.PixelCriteria{}, true); err != nil {
		t.Errorf("noCDG run without deps should work: %v", err)
	}
}
