package experiments

// The parallel experiment runner must be a pure scheduling change: running
// the Table II sites across a worker pool has to produce the same runs, in
// the same order, with byte-identical slice artifacts, as the sequential
// loop. Errors must also surface deterministically (lowest unit index wins).

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"

	"webslice/internal/store"
)

func TestParallelTableIIMatchesSequential(t *testing.T) {
	seq, err := ExecuteTableIIWith(Config{Scale: 0.05, Workers: 1, Syscalls: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ExecuteTableIIWith(Config{Scale: 0.05, Workers: 4, Syscalls: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("run counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Bench.Site.Name != par[i].Bench.Site.Name {
			t.Fatalf("result order changed at %d: %s vs %s", i, seq[i].Bench.Site.Name, par[i].Bench.Site.Name)
		}
		if !bytes.Equal(store.EncodeResult(seq[i].Pixel), store.EncodeResult(par[i].Pixel)) {
			t.Errorf("%s: pixel slice bytes differ between sequential and parallel runs", seq[i].Bench.Site.Name)
		}
		if !bytes.Equal(store.EncodeResult(seq[i].Syscall), store.EncodeResult(par[i].Syscall)) {
			t.Errorf("%s: syscall slice bytes differ between sequential and parallel runs", seq[i].Bench.Site.Name)
		}
		if par[i].Timing.RenderMs < 0 || par[i].Timing.ForwardMs < 0 || par[i].Timing.SliceMs < 0 {
			t.Errorf("%s: negative stage timing %+v", par[i].Bench.Site.Name, par[i].Timing)
		}
	}
}

func TestForEachDeterministicError(t *testing.T) {
	first := errors.New("unit 1 failed")
	later := errors.New("unit 5 failed")
	for _, workers := range []int{1, 4} {
		err := forEach(workers, 8, func(i int) error {
			switch i {
			case 1:
				return first
			case 5:
				return later
			}
			return nil
		})
		if !errors.Is(err, first) {
			t.Errorf("workers=%d: got %v, want the lowest-index error", workers, err)
		}
	}
}

func TestForEachVisitsEveryUnitOnce(t *testing.T) {
	var counts [100]atomic.Int32
	if err := forEach(7, len(counts), func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Errorf("unit %d ran %d times", i, n)
		}
	}
}
