package experiments

// The backward-pass scaling experiment: one rendered session, one forward
// pass, then the same fused multi-criteria slice computed twice — forced
// sequential and segmented with cfg.Workers workers — with the results
// compared field-for-field. This is the measurement behind the
// "Parallel backward pass" section of EXPERIMENTS.md and the `backward`
// unit of `webslice repro`.

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"webslice/internal/browser"
	"webslice/internal/core"
	"webslice/internal/sites"
	"webslice/internal/slicer"
)

// BackwardResult is one measured sequential-vs-segmented comparison.
type BackwardResult struct {
	Site    string `json:"site"`
	Records int    `json:"records"`
	Workers int    `json:"workers"`

	SequentialMs float64 `json:"sequential_ms"`
	SegmentedMs  float64 `json:"segmented_ms"`
	// Speedup is SequentialMs / SegmentedMs (>1 means segmented wins).
	Speedup float64 `json:"speedup"`

	// Per-phase wall time of the segmented pass.
	Segments int     `json:"segments"`
	ScanMs   float64 `json:"scan_ms"`
	StitchMs float64 `json:"stitch_ms"`
	TallyMs  float64 `json:"tally_ms"`

	// Match reports that the segmented results were identical to the
	// sequential ones in every field. ExecuteBackward errors when false;
	// the field is recorded so BENCH_repro.json carries the evidence.
	Match bool `json:"match"`
}

// backwardReps: each mode is timed this many times and the best run is
// kept, shielding the recorded speedup from scheduler noise.
const backwardReps = 3

// ExecuteBackward renders the Amazon desktop load-and-browse session at
// cfg.Scale and measures the fused pixel+syscall backward pass forced
// sequential vs segmented with cfg.Workers workers (<= 0 means GOMAXPROCS).
func ExecuteBackward(cfg Config) (BackwardResult, error) {
	bench := sites.AmazonDesktop(sites.Options{Scale: cfg.Scale, Browse: true})
	br := browser.New(bench.Site, bench.Profile)
	br.RunSession()
	if len(br.Errors) > 0 {
		return BackwardResult{}, fmt.Errorf("experiments: backward: %v", br.Errors[0])
	}
	p := core.NewProfiler(br.M.Tr)
	p.Opts.ProgressPoints = 160
	p.Opts.MainThread = browser.MainThread
	if err := p.Forward(); err != nil {
		return BackwardResult{}, fmt.Errorf("experiments: backward: %w", err)
	}
	crits := []slicer.Criteria{slicer.PixelCriteria{}, slicer.SyscallCriteria{}}

	out := BackwardResult{Site: bench.Name, Records: len(br.M.Tr.Recs), Workers: cfg.Workers}

	seqOpts := p.Opts
	seqOpts.Segments = 1
	want, seqMs, _, err := timeSlice(p, crits, seqOpts)
	if err != nil {
		return out, fmt.Errorf("experiments: backward sequential: %w", err)
	}
	out.SequentialMs = seqMs

	segOpts := p.Opts
	segOpts.Workers = cfg.Workers
	// Force segmentation even when the scaled trace is below the automatic
	// threshold: the experiment exists to measure the segmented path.
	segOpts.Segments = segCount(segOpts, len(br.M.Tr.Recs))
	got, segMs, stats, err := timeSlice(p, crits, segOpts)
	if err != nil {
		return out, fmt.Errorf("experiments: backward segmented: %w", err)
	}
	out.SegmentedMs = segMs
	out.Segments = stats.Segments
	out.ScanMs = stats.ScanMs
	out.StitchMs = stats.StitchMs
	out.TallyMs = stats.TallyMs
	if segMs > 0 {
		out.Speedup = seqMs / segMs
	}

	out.Match = true
	for k := range crits {
		if !reflect.DeepEqual(want[k], got[k]) {
			out.Match = false
			return out, fmt.Errorf("experiments: backward: segmented %s slice differs from sequential", crits[k].Name())
		}
	}
	return out, nil
}

// segCount mirrors the slicer's automatic segment choice (workers × 4)
// without its minimum-trace-size gate.
func segCount(opts slicer.Options, n int) int {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return workers * 4
}

// timeSlice runs the fused pass backwardReps times with opts, returning the
// results of the last run, the best wall time, and that run's phase stats.
func timeSlice(p *core.Profiler, crits []slicer.Criteria, opts slicer.Options) ([]*slicer.Result, float64, slicer.PassStats, error) {
	var best slicer.PassStats
	bestMs := 0.0
	var rs []*slicer.Result
	for rep := 0; rep < backwardReps; rep++ {
		var stats slicer.PassStats
		opts.Stats = &stats
		start := time.Now()
		out, err := p.SliceMultiOpts(crits, opts)
		if err != nil {
			return nil, 0, best, err
		}
		elapsed := ms(time.Since(start))
		if rep == 0 || elapsed < bestMs {
			bestMs, best = elapsed, stats
		}
		rs = out
	}
	return rs, bestMs, best, nil
}
