package experiments

import (
	"strings"
	"testing"

	"webslice/internal/analysis"
	"webslice/internal/sites"
)

// TestFaultyLoadDegradesGracefully is the experiment's core guarantee: a load
// that loses its stylesheet and an image permanently still completes,
// composites, and produces a non-empty pixel slice, with the failures
// surfaced in Degraded rather than Errors.
func TestFaultyLoadDegradesGracefully(t *testing.T) {
	b := sites.FaultyVariant(sites.AmazonDesktop(sites.Options{Scale: 0.05}), 7)
	if b.Faults == nil || b.Faults.Len() == 0 {
		t.Fatal("FaultyVariant attached no fault plan")
	}
	r, err := Execute(b)
	if err != nil {
		t.Fatalf("faulty load must complete, got: %v", err)
	}
	if len(r.Browser.Errors) != 0 {
		t.Fatalf("degradation must not surface as errors: %v", r.Browser.Errors)
	}
	var sawSheet, sawImage bool
	for _, d := range r.Browser.Degraded {
		if strings.HasPrefix(d, "stylesheet ") {
			sawSheet = true
		}
		if strings.HasPrefix(d, "image ") {
			sawImage = true
		}
	}
	if !sawSheet || !sawImage {
		t.Errorf("expected a degraded stylesheet and image, got: %v", r.Browser.Degraded)
	}
	if r.Pixel.Total == 0 || r.Pixel.Percent() <= 0 {
		t.Fatalf("faulty load must still produce a non-empty pixel slice, got %.1f%% of %d",
			r.Pixel.Percent(), r.Pixel.Total)
	}
	w := analysis.FaultWaste(r.Trace, r.Pixel)
	if w.ErrorPathInstr == 0 {
		t.Error("a faulty run must emit net/error instructions")
	}
	if w.OutOfSlice == 0 {
		t.Error("retry/timeout work should fall outside the pixel slice")
	}
	if l := r.Browser.Loader; l.Retries == 0 || l.Failures == 0 {
		t.Errorf("loader stats missing: retries=%d failures=%d", l.Retries, l.Failures)
	}
}

// TestCleanRunHasNoErrorPath pins the baseline: without a fault plan the
// net/error namespace stays empty, so the faults table's clean column is a
// true zero.
func TestCleanRunHasNoErrorPath(t *testing.T) {
	r, err := Execute(sites.AmazonDesktop(sites.Options{Scale: 0.05}))
	if err != nil {
		t.Fatal(err)
	}
	if w := analysis.FaultWaste(r.Trace, r.Pixel); w.ErrorPathInstr != 0 {
		t.Errorf("clean load emitted %d net/error instructions", w.ErrorPathInstr)
	}
	if len(r.Browser.Degraded) != 0 {
		t.Errorf("clean load degraded: %v", r.Browser.Degraded)
	}
}
