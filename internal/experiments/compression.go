package experiments

// The trace-compression experiment: render each of the paper's four Table II
// benchmarks, encode the session trace in the flat v2 format and the
// block-compressed v3 format, and measure size and encode/decode wall time
// for both. Every measurement is guarded by the migration safety check —
// the v3 bytes must transcode back to the exact canonical v2 bytes — so a
// recorded ratio always describes a lossless encoding. This backs the
// "Trace compression" section of EXPERIMENTS.md and the `compression` unit
// of `webslice repro`.

import (
	"bytes"
	"fmt"
	"time"

	"webslice/internal/browser"
	"webslice/internal/sites"
	"webslice/internal/trace"
)

// CompressionResult is one site's measured v2-vs-v3 encoding comparison.
type CompressionResult struct {
	Site    string `json:"site"`
	Records int    `json:"records"`
	Blocks  int    `json:"blocks"`

	V2Bytes int `json:"v2_bytes"`
	V3Bytes int `json:"v3_bytes"`
	// Ratio is V2Bytes / V3Bytes (>1 means v3 is smaller).
	Ratio float64 `json:"ratio"`

	EncodeV2Ms float64 `json:"encode_v2_ms"`
	EncodeV3Ms float64 `json:"encode_v3_ms"`
	DecodeV2Ms float64 `json:"decode_v2_ms"`
	DecodeV3Ms float64 `json:"decode_v3_ms"`

	// RoundTrip reports that OpenV3(v3).WriteV2 reproduced the canonical
	// v2 bytes exactly. ExecuteCompression errors when false; the field is
	// recorded so BENCH_repro.json carries the evidence.
	RoundTrip bool `json:"round_trip"`
}

// compressionReps: each codec direction is timed this many times and the
// best run is kept, shielding the recorded wall times from scheduler noise.
const compressionReps = 3

// ExecuteCompression renders the four Table II benchmarks at cfg.Scale and
// measures both trace encodings for each. Sessions render over a
// cfg.Workers-bounded pool; results come back in site-list order.
func ExecuteCompression(cfg Config) ([]CompressionResult, error) {
	benches := sites.TableII(cfg.Scale)
	out := make([]CompressionResult, len(benches))
	err := forEach(cfg.Workers, len(benches), func(i int) error {
		r, err := measureCompression(benches[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	return out, err
}

func measureCompression(b sites.Benchmark) (CompressionResult, error) {
	br := browser.New(b.Site, b.Profile)
	br.RunSession()
	if len(br.Errors) > 0 {
		return CompressionResult{}, fmt.Errorf("experiments: compression: %s: %v", b.Name, br.Errors[0])
	}
	tr := br.M.Tr
	res := CompressionResult{Site: b.Name, Records: len(tr.Recs)}

	var v2, v3 bytes.Buffer
	var err error
	res.EncodeV2Ms, err = bestOf(compressionReps, func() error {
		v2.Reset()
		return tr.Write(&v2)
	})
	if err != nil {
		return res, fmt.Errorf("experiments: compression: %s: encode v2: %w", b.Name, err)
	}
	res.EncodeV3Ms, err = bestOf(compressionReps, func() error {
		v3.Reset()
		return tr.WriteV3Blocks(&v3, trace.DefaultBlockRecs)
	})
	if err != nil {
		return res, fmt.Errorf("experiments: compression: %s: encode v3: %w", b.Name, err)
	}
	res.V2Bytes, res.V3Bytes = v2.Len(), v3.Len()
	if res.V3Bytes > 0 {
		res.Ratio = float64(res.V2Bytes) / float64(res.V3Bytes)
	}

	res.DecodeV2Ms, err = bestOf(compressionReps, func() error {
		_, err := trace.Read(bytes.NewReader(v2.Bytes()))
		return err
	})
	if err != nil {
		return res, fmt.Errorf("experiments: compression: %s: decode v2: %w", b.Name, err)
	}
	var rt bytes.Buffer
	res.DecodeV3Ms, err = bestOf(compressionReps, func() error {
		br3, err := trace.OpenV3(v3.Bytes())
		if err != nil {
			return err
		}
		rt.Reset()
		return br3.WriteV2(&rt)
	})
	if err != nil {
		return res, fmt.Errorf("experiments: compression: %s: decode v3: %w", b.Name, err)
	}
	res.Blocks = (res.Records + trace.DefaultBlockRecs - 1) / trace.DefaultBlockRecs

	if !bytes.Equal(rt.Bytes(), v2.Bytes()) {
		return res, fmt.Errorf("experiments: compression: %s: v3 transcode is not byte-identical to v2", b.Name)
	}
	res.RoundTrip = true
	return res, nil
}

// bestOf runs fn reps times, returning the best wall time in milliseconds.
func bestOf(reps int, fn func() error) (float64, error) {
	best := 0.0
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		elapsed := ms(time.Since(start))
		if rep == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}
