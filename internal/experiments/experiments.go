// Package experiments regenerates every table and figure of the paper's
// evaluation: Table I (unused JS/CSS bytes), Table II (pixel-slice
// percentages per thread), Figure 2 (main-thread CPU utilization while
// browsing), Figure 4 (slicing percentage over the backward pass), Figure 5
// (categorization of unnecessary computations), plus the §V-A Bing
// partial-slice experiment and the pixel-vs-syscall criteria comparison.
// cmd/webslice and the repository benchmarks both call these entry points.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"webslice/internal/analysis"
	"webslice/internal/browser"
	"webslice/internal/core"
	"webslice/internal/report"
	"webslice/internal/sites"
	"webslice/internal/slicer"
	"webslice/internal/trace"
)

// Config tunes how a batch of experiment sessions executes.
type Config struct {
	// Scale is the workload scale (1.0 = calibrated benchmark size).
	Scale float64
	// Workers bounds how many site sessions render and slice concurrently;
	// <= 0 means GOMAXPROCS. Sessions are independent, and results are
	// collected in deterministic (site-list) order regardless of the value.
	Workers int
	// Syscalls additionally computes the syscall slice in the same fused
	// backward pass as the pixel slice (for the criteria comparison).
	Syscalls bool
}

// Timing is the per-stage wall clock of one executed benchmark. The slice
// stage is further broken into the backward pass's phases (parallel
// segment scan, sequential stitch, parallel tally); on the sequential path
// the whole walk is reported as scan and SliceSegments is 1.
type Timing struct {
	RenderMs  float64 `json:"render_ms"`
	ForwardMs float64 `json:"forward_ms"`
	SliceMs   float64 `json:"slice_ms"`

	SliceScanMs   float64 `json:"slice_scan_ms"`
	SliceStitchMs float64 `json:"slice_stitch_ms"`
	SliceTallyMs  float64 `json:"slice_tally_ms"`
	SliceSegments int     `json:"slice_segments"`
}

// Run is one executed benchmark: the browser after its session, the trace,
// and the pixel-based slice.
type Run struct {
	Bench   sites.Benchmark
	Browser *browser.Browser
	Trace   *trace.Trace
	Pixel   *slicer.Result
	// Syscall is the syscall-criteria slice, computed in the same fused
	// backward pass as Pixel when Config.Syscalls (or ExecuteCriteria's
	// withSyscalls) asked for it; nil otherwise.
	Syscall *slicer.Result
	Prof    *core.Profiler
	Timing  Timing
}

// Execute runs a benchmark's session and computes its pixel slice.
func Execute(b sites.Benchmark) (*Run, error) { return ExecuteCriteria(b, false) }

// ExecuteCriteria runs a benchmark's session and computes its pixel slice;
// withSyscalls also computes the syscall slice in the same fused backward
// pass, so the criteria comparison costs one trace walk instead of two.
func ExecuteCriteria(b sites.Benchmark, withSyscalls bool) (*Run, error) {
	start := time.Now()
	br := browser.New(b.Site, b.Profile)
	if b.Faults != nil {
		br.Loader.SetFaults(b.Faults)
	}
	br.RunSession()
	if len(br.Errors) > 0 {
		return nil, fmt.Errorf("experiments: %s: %v", b.Name, br.Errors[0])
	}
	renderDone := time.Now()
	p := core.NewProfiler(br.M.Tr)
	p.Opts.ProgressPoints = 160
	if err := p.Forward(); err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", b.Name, err)
	}
	forwardDone := time.Now()
	crits := []slicer.Criteria{slicer.PixelCriteria{}}
	if withSyscalls {
		crits = append(crits, slicer.SyscallCriteria{})
	}
	var stats slicer.PassStats
	p.Opts.Stats = &stats
	rs, err := p.SliceMulti(crits)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", b.Name, err)
	}
	end := time.Now()
	run := &Run{
		Bench: b, Browser: br, Trace: br.M.Tr, Pixel: rs[0], Prof: p,
		Timing: Timing{
			RenderMs:  ms(renderDone.Sub(start)),
			ForwardMs: ms(forwardDone.Sub(renderDone)),
			SliceMs:   ms(end.Sub(forwardDone)),

			SliceScanMs:   stats.ScanMs,
			SliceStitchMs: stats.StitchMs,
			SliceTallyMs:  stats.TallyMs,
			SliceSegments: stats.Segments,
		},
	}
	if withSyscalls {
		run.Syscall = rs[1]
	}
	return run, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// forEach runs fn(0..n-1) over a bounded worker pool. Every index runs even
// if an earlier one fails; the lowest-index error is returned so parallel
// runs fail deterministically.
func forEach(workers, n int, fn func(int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ExecuteTableII runs the four Table II benchmarks sequentially.
func ExecuteTableII(scale float64) ([]*Run, error) {
	return ExecuteTableIIWith(Config{Scale: scale, Workers: 1})
}

// ExecuteTableIIWith runs the Table II benchmarks over cfg's worker pool,
// returning runs in the site-list order.
func ExecuteTableIIWith(cfg Config) ([]*Run, error) {
	benches := sites.TableII(cfg.Scale)
	out := make([]*Run, len(benches))
	err := forEach(cfg.Workers, len(benches), func(i int) error {
		r, err := ExecuteCriteria(benches[i], cfg.Syscalls)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// threadRow describes one Table II thread row.
type threadRow struct {
	label  string
	thread uint8
	nth    int // for rasterizers: 1-based worker index, 0 otherwise
}

// TableII renders the paper's Table II from executed runs: pixel-slice
// percentage and total instructions for all threads and for the main,
// compositor, and rasterizer threads.
func TableII(runs []*Run) *report.Table {
	t := &report.Table{
		Title:   "Table II: Slicing statistics of pixel-based approach (per thread)",
		Headers: []string{"Threads"},
	}
	for _, r := range runs {
		t.Headers = append(t.Headers, r.Bench.Name+" [pixels]", "[total]")
	}
	maxRaster := 0
	for _, r := range runs {
		if n := r.Bench.Profile.RasterWorkers; n > maxRaster {
			maxRaster = n
		}
	}
	rows := []threadRow{
		{"All", 0, -1},
		{"Main", browser.MainThread, 0},
		{"Compositor", browser.CompositorThread, 0},
	}
	for i := 0; i < maxRaster; i++ {
		rows = append(rows, threadRow{fmt.Sprintf("Rasterizer %d", i+1), browser.RasterThreadBase + uint8(i), i + 1})
	}
	for _, row := range rows {
		cells := []string{row.label}
		for _, r := range runs {
			if row.nth == -1 {
				cells = append(cells, report.Pct(r.Pixel.Percent()), report.MInstr(r.Pixel.Total))
				continue
			}
			if row.nth > 0 && row.nth > r.Bench.Profile.RasterWorkers {
				cells = append(cells, "-", "-")
				continue
			}
			cells = append(cells,
				report.Pct(r.Pixel.ThreadPercent(row.thread)),
				report.MInstr(r.Pixel.ByThread[row.thread]))
		}
		t.AddRow(cells...)
	}
	return t
}

// TableIRow is one website's Table I measurements.
type TableIRow struct {
	Name          string
	Load          analysis.ByteUsage
	LoadAndBrowse analysis.ByteUsage
}

// ExecuteTableI runs the Table I site set (load and load+browse sessions)
// sequentially and measures unused JS/CSS bytes.
func ExecuteTableI(scale float64) ([]TableIRow, error) {
	return ExecuteTableIWith(Config{Scale: scale, Workers: 1})
}

// ExecuteTableIWith runs the Table I sessions over cfg's worker pool. Each
// pair's load and load+browse sessions are independent units, so a pool of
// W workers keeps W sessions rendering at once; rows come back in site-list
// order.
func ExecuteTableIWith(cfg Config) ([]TableIRow, error) {
	pairs := sites.TableI(cfg.Scale)
	usages := make([]analysis.ByteUsage, 2*len(pairs))
	err := forEach(cfg.Workers, 2*len(pairs), func(i int) error {
		pair := pairs[i/2]
		bench, label := pair.Load, "load"
		if i%2 == 1 {
			bench, label = pair.LoadAndBrowse, "browse"
		}
		br := browser.New(bench.Site, bench.Profile)
		br.RunSession()
		if len(br.Errors) > 0 {
			return fmt.Errorf("experiments: table1 %s %s: %v", pair.Name, label, br.Errors[0])
		}
		usages[i] = analysis.UnusedBytes(br)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]TableIRow, len(pairs))
	for i, pair := range pairs {
		out[i] = TableIRow{Name: pair.Name, Load: usages[2*i], LoadAndBrowse: usages[2*i+1]}
	}
	return out, nil
}

// TableI renders the unused-bytes table.
func TableI(rows []TableIRow) *report.Table {
	t := &report.Table{
		Title:   "Table I: Unused JavaScript and CSS code bytes",
		Headers: []string{"Website", "Session", "Unused bytes", "Total bytes", "Percentage"},
	}
	for _, r := range rows {
		t.AddRow(r.Name, "Only Load", report.KB(r.Load.UnusedBytes), report.KB(r.Load.TotalBytes), report.Pct(r.Load.Percent()))
		t.AddRow("", "Load and Browse", report.KB(r.LoadAndBrowse.UnusedBytes), report.KB(r.LoadAndBrowse.TotalBytes), report.Pct(r.LoadAndBrowse.Percent()))
	}
	return t
}

// Figure2 runs the Amazon desktop load-and-browse session and charts the
// main thread's CPU utilization over virtual time.
func Figure2(scale float64) (*report.Chart, error) {
	bench := sites.AmazonDesktop(sites.Options{Scale: scale, Browse: true})
	br := browser.New(bench.Site, bench.Profile)
	br.RunSession()
	if len(br.Errors) > 0 {
		return nil, fmt.Errorf("experiments: fig2: %v", br.Errors[0])
	}
	points := analysis.CPUTimeline(br.M.Tr, browser.MainThread, 100)
	series := make([]float64, len(points))
	for i, p := range points {
		series[i] = p.UtilizationPct
	}
	endMs := uint64(0)
	if len(points) > 0 {
		endMs = points[len(points)-1].TimeMs
	}
	return &report.Chart{
		Title:   "Figure 2: CPU utilization of the main thread while browsing amazon (load, scroll, photo roll, menu)",
		Height:  12,
		Width:   90,
		SeriesA: series,
		ALegend: fmt.Sprintf("main-thread utilization per 100ms window, 0..%d ms", endMs),
	}, nil
}

// Figure4 renders the backward-pass slicing-percentage curves for one run:
// all threads and main thread, x advancing from the end of the trace to its
// beginning, as in the paper's subplots.
func Figure4(r *Run) *report.Chart {
	curve := analysis.BackwardCurve(r.Pixel)
	all := make([]float64, len(curve))
	main := make([]float64, len(curve))
	for i, p := range curve {
		all[i] = p.AllPct
		main[i] = p.MainPct
	}
	var endX float64
	if len(curve) > 0 {
		endX = curve[len(curve)-1].XMInstr
	}
	return &report.Chart{
		Title:   fmt.Sprintf("Figure 4: slicing %% over the backward pass — %s", r.Bench.Name),
		Height:  12,
		Width:   90,
		SeriesA: all,
		SeriesB: main,
		ALegend: fmt.Sprintf("all threads (x: 0..%.1f M instructions from trace end)", endX),
		BLegend: "main thread",
	}
}

// Figure5 renders the categorization of potentially unnecessary
// computations for the executed runs.
func Figure5(runs []*Run) *report.Table {
	t := &report.Table{
		Title:   "Figure 5: categorization of potentially unnecessary computations (share of categorized non-slice instructions)",
		Headers: append([]string{"Benchmark"}, append(append([]string{}, analysis.Categories...), "Categorized")...),
	}
	for _, r := range runs {
		d := analysis.Categorize(r.Trace, r.Pixel)
		cells := []string{r.Bench.Name}
		for _, c := range analysis.Categories {
			cells = append(cells, report.Pct1(100*d.Share[c]))
		}
		cells = append(cells, report.Pct(d.CoveragePct))
		t.AddRow(cells...)
	}
	return t
}

// BingPartial reproduces the §V-A experiment: slice the Bing trace with
// criteria restricted to the load phase (backward from the page-loaded
// point), and compare against the full-session slice restricted to load-time
// instructions. The paper measured 49.8% vs 50.6% — browsing makes only ~1%
// more of the load-time work useful.
type BingPartialResult struct {
	LoadInstr        int
	LoadOnlyPct      float64 // slicing from the loaded point backward
	FullSessionPct   float64 // full-session slice, counted over load instructions
	FullSessionTotal int
}

// ExecuteBingPartial runs the experiment on an executed Bing run.
func ExecuteBingPartial(r *Run) (BingPartialResult, error) {
	cut := r.Browser.LoadedIndex
	res := BingPartialResult{LoadInstr: cut, FullSessionTotal: r.Pixel.Total}
	partial, err := r.Prof.Slice(slicer.Window{Inner: slicer.PixelCriteria{}, Limit: cut})
	if err != nil {
		return res, err
	}
	res.LoadOnlyPct = partial.RangePercent(0, cut)
	res.FullSessionPct = r.Pixel.RangePercent(0, cut)
	return res, nil
}

// CriteriaComparison computes the pixel vs syscall slice sizes for a run
// (§IV-C / §V: the two criteria yield almost the same slice, with the
// syscall slice a strict superset).
type CriteriaComparisonResult struct {
	PixelPct, SyscallPct float64
	PixelOnly            int // pixel-slice records missing from syscall slice (must be 0)
	ExtraSyscall         int // syscall-slice records beyond the pixel slice
}

// ExecuteCriteriaComparison computes both slices for a run. A run executed
// with the fused syscall criterion (ExecuteCriteria withSyscalls, or
// Config.Syscalls) already carries the syscall slice and pays no extra
// trace walk here.
func ExecuteCriteriaComparison(r *Run) (CriteriaComparisonResult, error) {
	sys := r.Syscall
	if sys == nil {
		var err error
		sys, err = r.Prof.SyscallSlice()
		if err != nil {
			return CriteriaComparisonResult{}, err
		}
	}
	out := CriteriaComparisonResult{
		PixelPct:   r.Pixel.Percent(),
		SyscallPct: sys.Percent(),
	}
	for i := 0; i < r.Pixel.Total; i++ {
		inP, inS := r.Pixel.InSlice.Get(i), sys.InSlice.Get(i)
		if inP && !inS {
			out.PixelOnly++
		}
		if inS && !inP {
			out.ExtraSyscall++
		}
	}
	return out, nil
}
