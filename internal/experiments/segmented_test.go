package experiments

// Byte-equivalence of the segmented backward pass on real rendered
// workloads: property sites (random seeds) and a golden-corpus entry,
// compared digest-for-digest against the sequential walk. The slicer's own
// unit tests cover handcrafted boundary cases; this suite covers the
// browser-shaped traces the profiler actually sees.

import (
	"testing"

	"webslice/internal/sites"
	"webslice/internal/slicer"
)

func TestSegmentedDigestsMatchSequential(t *testing.T) {
	benches := []sites.Benchmark{
		sites.Random(11),
		sites.Random(1212),
		sites.AmazonDesktop(sites.Options{Scale: 0.05, Browse: true}),
	}
	for _, b := range benches {
		v, err := runVerified(b) // sequential: verifyOpts has no Workers/Segments
		if err != nil {
			t.Fatal(err)
		}
		for _, segs := range []int{3, 8} {
			opts := verifyOpts
			opts.Segments = segs
			opts.Workers = 4
			var stats slicer.PassStats
			opts.Stats = &stats
			rs, err := slicer.SliceMulti(v.tr, v.deps, []slicer.Criteria{
				slicer.PixelCriteria{},
				slicer.SyscallCriteria{},
				slicer.Union{slicer.PixelCriteria{}, slicer.SyscallCriteria{}},
			}, opts)
			if err != nil {
				t.Fatalf("%s k=%d: %v", b.Name, segs, err)
			}
			for i, want := range []*slicer.Result{v.pix, v.sys, v.uni} {
				if wd, gd := SliceDigest(want), SliceDigest(rs[i]); wd != gd {
					t.Errorf("%s k=%d criterion %s: segmented digest %s != sequential %s",
						b.Name, segs, want.Criteria, gd, wd)
				}
			}
			if stats.Sequential && len(v.tr.Recs) >= 2*64 {
				t.Errorf("%s k=%d: pass unexpectedly ran sequentially", b.Name, segs)
			}
		}
	}
}

func TestExecuteBackward(t *testing.T) {
	res, err := ExecuteBackward(Config{Scale: 0.05, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match {
		t.Fatal("segmented slice did not match sequential")
	}
	if res.Segments < 2 {
		t.Errorf("segments = %d, want forced segmentation", res.Segments)
	}
	if res.SequentialMs <= 0 || res.SegmentedMs <= 0 || res.Speedup <= 0 {
		t.Errorf("degenerate timing: %+v", res)
	}
}
