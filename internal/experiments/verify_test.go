package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webslice/internal/sites"
)

const goldenPath = "../../examples/golden/corpus.json"

// TestGoldenCorpus re-runs every committed golden site and demands the slice
// digests match byte-for-byte, then replays and invariant-checks each slice.
// A mismatch here means slicing behavior changed: if that was intended,
// regenerate with `webslice verify -exp golden -update`.
func TestGoldenCorpus(t *testing.T) {
	st, err := ExecuteVerify("golden", VerifyConfig{GoldenPath: goldenPath})
	if err != nil {
		t.Fatal(err)
	}
	if st.GoldenSites < 8 {
		t.Errorf("golden corpus has %d sites, want >= 8", st.GoldenSites)
	}
	if st.Replays != 3*st.GoldenSites {
		t.Errorf("replayed %d slices for %d sites, want 3 per site", st.Replays, st.GoldenSites)
	}
}

// TestGoldenCorpusCrossFormat re-encodes every golden site as block-compressed
// v3 and demands the streaming profiler reproduce the exact pinned digests,
// Table II percentages, and Figure 5 category distribution that the
// materialized v2 pipeline produces. This is the migration safety gate for
// the v3 trace format: if it fails, v3 slicing diverged from v2.
func TestGoldenCorpusCrossFormat(t *testing.T) {
	st, err := ExecuteVerify("crossformat", VerifyConfig{GoldenPath: goldenPath})
	if err != nil {
		t.Fatal(err)
	}
	if st.CrossFormat < 8 {
		t.Errorf("cross-format phase covered %d sites, want >= 8", st.CrossFormat)
	}
	if st.Replays != 3*st.CrossFormat {
		t.Errorf("replayed %d slices for %d sites, want 3 per site", st.Replays, st.CrossFormat)
	}
}

// TestGoldenCorpusDigestsPinned guards the corpus file itself: every entry
// must carry non-empty digests (an empty digest would make the golden phase
// vacuously "pass" after a careless regeneration).
func TestGoldenCorpusDigestsPinned(t *testing.T) {
	c, err := LoadGolden(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range c.Sites {
		if len(e.Pixels) != 64 || len(e.Syscalls) != 64 {
			t.Errorf("golden %s: digests not pinned (pixels %q, syscalls %q)", e.Label(), e.Pixels, e.Syscalls)
		}
	}
}

// TestVerifyDetectsDigestDrift corrupts one digest in a copy of the corpus
// and demands the golden phase fails naming the site.
func TestVerifyDetectsDigestDrift(t *testing.T) {
	c, err := LoadGolden(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	// Keep only the cheapest entry (a property seed) and break its digest.
	var entry *GoldenEntry
	for i := range c.Sites {
		if c.Sites[i].Seed != 0 {
			entry = &c.Sites[i]
			break
		}
	}
	if entry == nil {
		t.Fatal("no seed entry in corpus")
	}
	entry.Pixels = strings.Repeat("0", 64)
	bad := filepath.Join(t.TempDir(), "corpus.json")
	writeGoldenFor(t, bad, &GoldenCorpus{Sites: []GoldenEntry{*entry}})
	_, err = ExecuteVerify("golden", VerifyConfig{GoldenPath: bad})
	if err == nil {
		t.Fatal("golden phase accepted a corrupted digest")
	}
	if !strings.Contains(err.Error(), entry.Label()) {
		t.Errorf("error does not name the drifted site: %v", err)
	}
}

func writeGoldenFor(t *testing.T, path string, c *GoldenCorpus) {
	t.Helper()
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyPropertySites pushes randomized mini-sites through the full
// slice→replay→diff→invariants pipeline. The count is kept modest here so
// the suite stays fast under -race; `webslice verify -exp all` (run by
// ci.sh) covers the full 50-site sweep.
func TestVerifyPropertySites(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 4
	}
	st, err := ExecuteVerify("all", VerifyConfig{PropertyCount: n, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	if st.PropertySites != n || st.Replays != 3*n || st.Differentials != 3*n || st.Invariants != n {
		t.Errorf("unexpected stats: %+v", st)
	}
}

// TestVerifyRejectsUnknownPhase pins the phase whitelist.
func TestVerifyRejectsUnknownPhase(t *testing.T) {
	if _, err := ExecuteVerify("bogus", VerifyConfig{}); err == nil {
		t.Fatal("unknown phase accepted")
	}
}

// TestRandomSitesAreDeterministic: the same seed must produce the same trace
// bytes (and hence the same digests) forever — a property failure reported by
// seed has to reproduce.
func TestRandomSitesAreDeterministic(t *testing.T) {
	a, err := runVerified(sites.Random(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := runVerified(sites.Random(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.tr.Recs) != len(b.tr.Recs) {
		t.Fatalf("seed 42 traced %d then %d records", len(a.tr.Recs), len(b.tr.Recs))
	}
	if SliceDigest(a.pix) != SliceDigest(b.pix) || SliceDigest(a.sys) != SliceDigest(b.sys) {
		t.Error("seed 42 produced different slice digests across runs")
	}
}

// TestDiffCatchesABrokenOptimizedResult makes sure the differential path is
// live: perturbing the optimized slice must trip refslicer.Equal.
func TestDiffCatchesABrokenOptimizedResult(t *testing.T) {
	v, err := runVerified(sites.Random(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := v.diffAll(); err != nil {
		t.Fatalf("intact run failed differential: %v", err)
	}
	// Flip the first in-slice record out.
	for i := 0; i < v.pix.Total; i++ {
		if v.pix.InSlice.Get(i) {
			v.pix.InSlice[i>>6] &^= 1 << (uint(i) & 63)
			v.pix.SliceCount--
			break
		}
	}
	if err := v.diffAll(); err == nil {
		t.Error("differential accepted a perturbed optimized slice")
	}
}
