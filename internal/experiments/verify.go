package experiments

// The verify experiment is the correctness tooling for the slicing engine:
// every oracle in the validation hierarchy (TESTING.md) wired behind
// `webslice verify`. Phases:
//
//   - golden:       re-run the committed golden corpus (examples/golden/)
//                   and compare slice digests byte-for-byte, then replay
//                   and invariant-check every corpus slice;
//   - crossformat:  re-run the golden corpus through the block-compressed
//                   (v3) trace format: encode each trace to v3, slice it
//                   with the streaming profiler, and demand the same pinned
//                   digests, the same Table II numbers, and the same
//                   replay-oracle verdicts as the flat (v2) pipeline;
//   - replay:       re-execute property-generated sites' slices with all
//                   out-of-slice instructions elided, asserting criterion
//                   bytes reproduce;
//   - differential: run the deliberately naive reference slicer against
//                   slicer.Slice/SliceMulti on property-generated sites;
//   - invariants:   structural oracles (closure, subset, union
//                   monotonicity) on property-generated sites;
//   - all:          everything above.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"webslice/internal/analysis"
	"webslice/internal/browser"
	"webslice/internal/cdg"
	"webslice/internal/core"
	"webslice/internal/refslicer"
	"webslice/internal/replay"
	"webslice/internal/sites"
	"webslice/internal/slicer"
	"webslice/internal/store"
	"webslice/internal/trace"
	"webslice/internal/vm"
)

// VerifyConfig tunes the verify experiment.
type VerifyConfig struct {
	// Scale applies to named golden-corpus sites (property sites are
	// fixed-size minis).
	Scale float64
	// Workers bounds concurrent site sessions (<= 0 means GOMAXPROCS).
	Workers int
	// PropertyCount is how many randomized property sites the replay,
	// differential, and invariants phases generate.
	PropertyCount int
	// Seed is the first property-site seed; site k uses Seed+k.
	Seed uint64
	// GoldenPath locates the golden corpus JSON; empty skips the golden
	// phase.
	GoldenPath string
	// Update rewrites the golden corpus digests instead of comparing.
	Update bool
}

// VerifyStats summarizes what a verify run checked.
type VerifyStats struct {
	GoldenSites   int
	PropertySites int
	Replays       int
	Differentials int
	Invariants    int
	Updated       int
	// CrossFormat counts golden sites whose v3 (streaming) slices were
	// checked against the pinned v2 digests and replay verdicts.
	CrossFormat int
}

// verifyOpts are the slicing options every verify phase uses. No progress
// sampling: golden digests must not depend on a sampling knob.
var verifyOpts = slicer.Options{MainThread: browser.MainThread}

// verifiedRun is one site rendered with a tape attached and sliced under
// all three criteria.
type verifiedRun struct {
	bench         sites.Benchmark
	tr            *trace.Trace
	tape          *vm.Tape
	deps          *cdg.Deps
	pix, sys, uni *slicer.Result
}

// runVerified renders a benchmark with capture enabled and computes the
// pixel, syscall, and union slices in one fused pass.
func runVerified(b sites.Benchmark) (*verifiedRun, error) {
	br := browser.New(b.Site, b.Profile)
	tape := br.M.Capture()
	br.RunSession()
	br.M.SealTape()
	if len(br.Errors) > 0 {
		return nil, fmt.Errorf("verify: %s: %v", b.Name, br.Errors[0])
	}
	p := core.NewProfiler(br.M.Tr)
	p.Opts = verifyOpts
	if err := p.Forward(); err != nil {
		return nil, fmt.Errorf("verify: %s: %w", b.Name, err)
	}
	rs, err := p.SliceMulti([]slicer.Criteria{
		slicer.PixelCriteria{},
		slicer.SyscallCriteria{},
		slicer.Union{slicer.PixelCriteria{}, slicer.SyscallCriteria{}},
	})
	if err != nil {
		return nil, fmt.Errorf("verify: %s: %w", b.Name, err)
	}
	return &verifiedRun{
		bench: b, tr: br.M.Tr, tape: tape, deps: p.Deps(),
		pix: rs[0], sys: rs[1], uni: rs[2],
	}, nil
}

// replayAll re-executes all three slices of a run against its tape.
func (v *verifiedRun) replayAll() error {
	checks := []struct {
		res *slicer.Result
		cfg replay.Config
	}{
		{v.pix, replay.Config{CheckPixels: true}},
		{v.sys, replay.Config{CheckSyscalls: true}},
		{v.uni, replay.Config{CheckPixels: true, CheckSyscalls: true}},
	}
	for _, c := range checks {
		if d := replay.Replay(v.tr, v.tape, c.res, c.cfg); d != nil {
			return fmt.Errorf("verify: %s: slice %q: %w", v.bench.Name, c.res.Criteria, d)
		}
	}
	return nil
}

// diffAll runs the naive reference slicer per criterion and demands exact
// agreement with the optimized results — against the fused SliceMulti
// output for both criteria, and against a solo Slice run for pixels (one
// naive walk oracles both optimized APIs; the union criterion is covered by
// the monotonicity invariant and the union replay).
func (v *verifiedRun) diffAll() error {
	refPix, err := refslicer.Slice(v.tr, v.deps, slicer.PixelCriteria{}, false)
	if err != nil {
		return fmt.Errorf("verify: %s: %w", v.bench.Name, err)
	}
	if err := refslicer.Equal(refPix, v.pix); err != nil {
		return fmt.Errorf("verify: %s: criterion \"pixels\" (fused): %w", v.bench.Name, err)
	}
	solo, err := slicer.Slice(v.tr, v.deps, slicer.PixelCriteria{}, verifyOpts)
	if err != nil {
		return fmt.Errorf("verify: %s: %w", v.bench.Name, err)
	}
	if err := refslicer.Equal(refPix, solo); err != nil {
		return fmt.Errorf("verify: %s: criterion \"pixels\" (solo): %w", v.bench.Name, err)
	}
	refSys, err := refslicer.Slice(v.tr, v.deps, slicer.SyscallCriteria{}, false)
	if err != nil {
		return fmt.Errorf("verify: %s: %w", v.bench.Name, err)
	}
	if err := refslicer.Equal(refSys, v.sys); err != nil {
		return fmt.Errorf("verify: %s: criterion \"syscalls\" (fused): %w", v.bench.Name, err)
	}
	return nil
}

// invariantsAll runs the structural oracles over a run's slices.
func (v *verifiedRun) invariantsAll() error {
	for _, res := range []*slicer.Result{v.pix, v.sys, v.uni} {
		if err := replay.CheckInvariants(v.tr, v.deps, res); err != nil {
			return fmt.Errorf("verify: %s: slice %q: %w", v.bench.Name, res.Criteria, err)
		}
	}
	if err := replay.CheckMonotonic(v.uni, v.pix, v.sys); err != nil {
		return fmt.Errorf("verify: %s: %w", v.bench.Name, err)
	}
	return nil
}

// SliceDigest is the content digest of a slice result: hex SHA-256 over the
// store's deterministic encoding.
func SliceDigest(r *slicer.Result) string {
	sum := sha256.Sum256(store.EncodeResult(r))
	return hex.EncodeToString(sum[:])
}

// GoldenEntry pins one golden-corpus site: a named benchmark at a scale, or
// a property seed, with the expected slice digests.
type GoldenEntry struct {
	Name     string  `json:"name,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	Seed     uint64  `json:"seed,omitempty"`
	Pixels   string  `json:"pixels"`
	Syscalls string  `json:"syscalls"`
}

// GoldenCorpus is the committed golden-corpus file format
// (examples/golden/corpus.json).
type GoldenCorpus struct {
	Comment string        `json:"comment,omitempty"`
	Sites   []GoldenEntry `json:"sites"`
}

// Bench materializes the entry's benchmark.
func (e *GoldenEntry) Bench() (sites.Benchmark, error) {
	if e.Name != "" {
		return sites.ByName(e.Name, sites.Options{Scale: e.Scale})
	}
	return sites.Random(e.Seed), nil
}

// Label names the entry in reports.
func (e *GoldenEntry) Label() string {
	if e.Name != "" {
		return fmt.Sprintf("%s@%g", e.Name, e.Scale)
	}
	return fmt.Sprintf("rand-%d", e.Seed)
}

// LoadGolden reads a golden corpus file.
func LoadGolden(path string) (*GoldenCorpus, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("verify: golden corpus: %w", err)
	}
	var c GoldenCorpus
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("verify: golden corpus %s: %w", path, err)
	}
	if len(c.Sites) == 0 {
		return nil, fmt.Errorf("verify: golden corpus %s: no sites", path)
	}
	return &c, nil
}

// ExecuteVerify runs one verify phase ("golden", "replay", "differential",
// "invariants") or "all".
func ExecuteVerify(phase string, cfg VerifyConfig) (*VerifyStats, error) {
	if cfg.PropertyCount <= 0 {
		cfg.PropertyCount = 50
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	stats := &VerifyStats{}
	switch phase {
	case "golden":
		return stats, verifyGolden(cfg, stats)
	case "crossformat":
		return stats, verifyCrossFormat(cfg, stats)
	case "replay", "differential", "invariants":
		return stats, verifyProperty(phase, cfg, stats)
	case "all":
		if err := verifyGolden(cfg, stats); err != nil {
			return stats, err
		}
		if err := verifyCrossFormat(cfg, stats); err != nil {
			return stats, err
		}
		return stats, verifyProperty("all", cfg, stats)
	default:
		return nil, fmt.Errorf("verify: unknown phase %q (want golden, crossformat, replay, differential, invariants, or all)", phase)
	}
}

// verifyGolden checks (or, with cfg.Update, regenerates) the golden corpus:
// slice digests must match byte-for-byte, and every corpus slice must
// replay and satisfy the invariants.
func verifyGolden(cfg VerifyConfig, stats *VerifyStats) error {
	if cfg.GoldenPath == "" {
		return nil
	}
	corpus, err := LoadGolden(cfg.GoldenPath)
	if err != nil {
		return err
	}
	var updated atomic.Int64
	err = forEach(cfg.Workers, len(corpus.Sites), func(i int) error {
		e := &corpus.Sites[i]
		b, err := e.Bench()
		if err != nil {
			return fmt.Errorf("verify: golden %s: %w", e.Label(), err)
		}
		v, err := runVerified(b)
		if err != nil {
			return err
		}
		pixD, sysD := SliceDigest(v.pix), SliceDigest(v.sys)
		if cfg.Update {
			if e.Pixels != pixD || e.Syscalls != sysD {
				updated.Add(1)
			}
			e.Pixels, e.Syscalls = pixD, sysD
		} else {
			if e.Pixels != pixD {
				return fmt.Errorf("verify: golden %s: pixel slice digest %s, expected %s (slice behavior changed — run `webslice verify -update` if intended)",
					e.Label(), pixD, e.Pixels)
			}
			if e.Syscalls != sysD {
				return fmt.Errorf("verify: golden %s: syscall slice digest %s, expected %s (slice behavior changed — run `webslice verify -update` if intended)",
					e.Label(), sysD, e.Syscalls)
			}
		}
		if err := v.replayAll(); err != nil {
			return err
		}
		return v.invariantsAll()
	})
	if err != nil {
		return err
	}
	stats.GoldenSites = len(corpus.Sites)
	stats.Replays += 3 * len(corpus.Sites)
	stats.Invariants += len(corpus.Sites)
	stats.Updated = int(updated.Load())
	if cfg.Update {
		out, err := json.MarshalIndent(corpus, "", "  ")
		if err != nil {
			return err
		}
		if err := os.MkdirAll(filepath.Dir(cfg.GoldenPath), 0o755); err != nil {
			return err
		}
		return os.WriteFile(cfg.GoldenPath, append(out, '\n'), 0o644)
	}
	return nil
}

// verifyCrossFormat re-runs the golden corpus through the block-compressed
// pipeline: each site's trace is transcoded to v3 and sliced by the
// streaming profiler (shell trace, block-at-a-time backward pass). Every
// pinned digest must reproduce, every slice must still satisfy the replay
// oracle against the original tape, and the derived paper numbers — the
// Table II slice percentages and the Figure 5 category distribution — must
// be identical to the materialized run's.
func verifyCrossFormat(cfg VerifyConfig, stats *VerifyStats) error {
	if cfg.GoldenPath == "" {
		return nil
	}
	corpus, err := LoadGolden(cfg.GoldenPath)
	if err != nil {
		return err
	}
	err = forEach(cfg.Workers, len(corpus.Sites), func(i int) error {
		e := &corpus.Sites[i]
		b, err := e.Bench()
		if err != nil {
			return fmt.Errorf("verify: crossformat %s: %w", e.Label(), err)
		}
		v, err := runVerified(b)
		if err != nil {
			return err
		}
		var enc bytes.Buffer
		if err := v.tr.WriteV3Blocks(&enc, trace.DefaultBlockRecs); err != nil {
			return fmt.Errorf("verify: crossformat %s: encode: %w", e.Label(), err)
		}
		br, err := trace.OpenV3(enc.Bytes())
		if err != nil {
			return fmt.Errorf("verify: crossformat %s: open: %w", e.Label(), err)
		}
		p := core.NewProfilerStream(br)
		p.Opts = verifyOpts
		rs, err := p.SliceMulti([]slicer.Criteria{
			slicer.PixelCriteria{},
			slicer.SyscallCriteria{},
			slicer.Union{slicer.PixelCriteria{}, slicer.SyscallCriteria{}},
		})
		if err != nil {
			return fmt.Errorf("verify: crossformat %s: %w", e.Label(), err)
		}
		if d := SliceDigest(rs[0]); d != e.Pixels {
			return fmt.Errorf("verify: crossformat %s: v3 pixel slice digest %s, pinned v2 digest %s", e.Label(), d, e.Pixels)
		}
		if d := SliceDigest(rs[1]); d != e.Syscalls {
			return fmt.Errorf("verify: crossformat %s: v3 syscall slice digest %s, pinned v2 digest %s", e.Label(), d, e.Syscalls)
		}
		// Table II: the slice percentages must agree exactly.
		for k, pair := range []struct{ v2, v3 *slicer.Result }{{v.pix, rs[0]}, {v.sys, rs[1]}, {v.uni, rs[2]}} {
			if pair.v2.Percent() != pair.v3.Percent() || pair.v2.Total != pair.v3.Total {
				return fmt.Errorf("verify: crossformat %s: slice %d percentage diverges: v2 %.4f%% (%d recs), v3 %.4f%% (%d recs)",
					e.Label(), k, pair.v2.Percent(), pair.v2.Total, pair.v3.Percent(), pair.v3.Total)
			}
		}
		// Figure 5: the category distribution computed from the v3 shell
		// trace must match the one from the materialized trace.
		d2, d3 := analysis.Categorize(v.tr, v.pix), analysis.Categorize(p.T, rs[0])
		if d2.UnnecessaryTotal != d3.UnnecessaryTotal || d2.CoveragePct != d3.CoveragePct || len(d2.Share) != len(d3.Share) {
			return fmt.Errorf("verify: crossformat %s: category distribution diverges: v2 %+v, v3 %+v", e.Label(), d2, d3)
		}
		for cat, share := range d2.Share {
			if d3.Share[cat] != share {
				return fmt.Errorf("verify: crossformat %s: category %q share diverges: v2 %v, v3 %v", e.Label(), cat, share, d3.Share[cat])
			}
		}
		// Replay-oracle verdicts: slices computed by the streaming pass must
		// reproduce the criterion bytes on the original tape.
		w := &verifiedRun{bench: v.bench, tr: v.tr, tape: v.tape, deps: p.Deps(), pix: rs[0], sys: rs[1], uni: rs[2]}
		if err := w.replayAll(); err != nil {
			return fmt.Errorf("verify: crossformat: %w", err)
		}
		return w.invariantsAll()
	})
	if err != nil {
		return err
	}
	stats.CrossFormat = len(corpus.Sites)
	stats.Replays += 3 * len(corpus.Sites)
	stats.Invariants += len(corpus.Sites)
	return nil
}

// verifyProperty pushes PropertyCount randomized mini-sites through the
// full pipeline and applies the requested oracle to each.
func verifyProperty(phase string, cfg VerifyConfig, stats *VerifyStats) error {
	err := forEach(cfg.Workers, cfg.PropertyCount, func(i int) error {
		v, err := runVerified(sites.Random(cfg.Seed + uint64(i)))
		if err != nil {
			return err
		}
		if phase == "replay" || phase == "all" {
			if err := v.replayAll(); err != nil {
				return err
			}
		}
		if phase == "differential" || phase == "all" {
			if err := v.diffAll(); err != nil {
				return err
			}
		}
		if phase == "invariants" || phase == "all" {
			if err := v.invariantsAll(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	stats.PropertySites = cfg.PropertyCount
	if phase == "replay" || phase == "all" {
		stats.Replays += 3 * cfg.PropertyCount
	}
	if phase == "differential" || phase == "all" {
		stats.Differentials += 3 * cfg.PropertyCount
	}
	if phase == "invariants" || phase == "all" {
		stats.Invariants += cfg.PropertyCount
	}
	return nil
}
