package experiments

import (
	"strings"
	"testing"

	"webslice/internal/sites"
)

const testScale = 0.06

func TestExecuteAndTableII(t *testing.T) {
	runs, err := ExecuteTableII(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("want 4 benchmarks, got %d", len(runs))
	}
	for _, r := range runs {
		if r.Pixel.SliceCount == 0 {
			t.Errorf("%s: empty slice", r.Bench.Name)
		}
		pct := r.Pixel.Percent()
		if pct <= 5 || pct >= 95 {
			t.Errorf("%s: slice %.1f%% not interior", r.Bench.Name, pct)
		}
	}
	tab := TableII(runs)
	out := tab.String()
	for _, want := range []string{"All", "Main", "Compositor", "Rasterizer 1", "Rasterizer 3", "Amazon", "Bing"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q:\n%s", want, out)
		}
	}

	// Figure 4 and 5 from the same runs.
	for _, r := range runs {
		chart := Figure4(r)
		if !strings.Contains(chart.String(), "main thread") {
			t.Error("Figure 4 missing main-thread series")
		}
	}
	f5 := Figure5(runs).String()
	if !strings.Contains(f5, "JavaScript") || !strings.Contains(f5, "Compositing") {
		t.Errorf("Figure 5 missing categories:\n%s", f5)
	}
}

func TestTableIExperiment(t *testing.T) {
	rows, err := ExecuteTableI(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 sites, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Load.TotalBytes == 0 || r.Load.UnusedBytes == 0 {
			t.Errorf("%s: degenerate load usage %+v", r.Name, r.Load)
		}
		// Browsing executes more code: the unused fraction must not grow
		// relative to the same session's total for Amazon (the paper's
		// 58% -> 54%); Bing/Maps download more, so compare percentages.
		if r.LoadAndBrowse.Percent() > r.Load.Percent()+2 {
			t.Errorf("%s: browsing should not increase unused%% (load %.0f%%, browse %.0f%%)",
				r.Name, r.Load.Percent(), r.LoadAndBrowse.Percent())
		}
	}
	out := TableI(rows).String()
	if !strings.Contains(out, "Only Load") || !strings.Contains(out, "Load and Browse") {
		t.Errorf("Table I malformed:\n%s", out)
	}
}

func TestFigure2Experiment(t *testing.T) {
	chart, err := Figure2(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart.String(), "utilization") {
		t.Error("Figure 2 missing legend")
	}
}

func TestBingPartialExperiment(t *testing.T) {
	r, err := Execute(sites.Bing(sites.Options{Scale: testScale, Browse: true}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteBingPartial(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.LoadInstr <= 0 || res.LoadInstr >= res.FullSessionTotal {
		t.Fatalf("load boundary out of range: %+v", res)
	}
	// Slicing with more criteria (the full session) can only make more of
	// the load-time instructions useful — the paper found +0.8%.
	if res.FullSessionPct+0.01 < res.LoadOnlyPct {
		t.Errorf("full-session slice (%.1f%%) smaller than load-only (%.1f%%)",
			res.FullSessionPct, res.LoadOnlyPct)
	}
	if res.FullSessionPct-res.LoadOnlyPct > 20 {
		t.Errorf("browsing changed load-phase usefulness too much: %.1f%% -> %.1f%%",
			res.LoadOnlyPct, res.FullSessionPct)
	}
}

func TestCriteriaComparisonExperiment(t *testing.T) {
	r, err := Execute(sites.AmazonMobile(sites.Options{Scale: testScale}))
	if err != nil {
		t.Fatal(err)
	}
	c, err := ExecuteCriteriaComparison(r)
	if err != nil {
		t.Fatal(err)
	}
	if c.PixelOnly != 0 {
		t.Errorf("syscall slice must contain the pixel slice (missing %d records)", c.PixelOnly)
	}
	if c.SyscallPct < c.PixelPct {
		t.Errorf("syscall %.1f%% < pixel %.1f%%", c.SyscallPct, c.PixelPct)
	}
	// §V: the two criteria lead to almost the same slice.
	if c.SyscallPct-c.PixelPct > 15 {
		t.Errorf("criteria diverge too much: pixel %.1f%% vs syscall %.1f%%", c.PixelPct, c.SyscallPct)
	}
}
