package experiments

import (
	"fmt"

	"webslice/internal/analysis"
	"webslice/internal/report"
	"webslice/internal/sites"
)

// FaultPair is one benchmark executed twice: a clean load and the same load
// under the seeded degraded-network profile (sites.FaultyVariant).
type FaultPair struct {
	Name          string
	Clean, Faulty *Run
	CleanWaste    analysis.FaultWasteResult
	FaultyWaste   analysis.FaultWasteResult
}

// ExecuteFaults runs the fault-injection experiment sequentially: for each
// selected site, a clean load is the baseline, then the same site loads
// through a fault plan derived from the seed. Both runs are pixel-sliced and
// the error-path (net/error namespace) instruction counts are split by slice
// membership.
func ExecuteFaults(scale float64, seed uint64) ([]FaultPair, error) {
	return ExecuteFaultsWith(Config{Scale: scale, Workers: 1}, seed)
}

// ExecuteFaultsWith is ExecuteFaults over cfg's worker pool: each site's
// clean and faulty sessions are independent units, collected into pairs in
// site-list order.
func ExecuteFaultsWith(cfg Config, seed uint64) ([]FaultPair, error) {
	benches := []sites.Benchmark{
		sites.AmazonDesktop(sites.Options{Scale: cfg.Scale}),
		sites.Bing(sites.Options{Scale: cfg.Scale}),
	}
	runs := make([]*Run, 2*len(benches))
	wastes := make([]analysis.FaultWasteResult, 2*len(benches))
	err := forEach(cfg.Workers, 2*len(benches), func(i int) error {
		b, label := benches[i/2], "clean"
		if i%2 == 1 {
			b, label = sites.FaultyVariant(b, seed), "faulty"
		}
		r, err := Execute(b)
		if err != nil {
			return fmt.Errorf("faults: %s %s: %w", benches[i/2].Name, label, err)
		}
		runs[i] = r
		wastes[i] = analysis.FaultWaste(r.Trace, r.Pixel)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]FaultPair, len(benches))
	for i, b := range benches {
		out[i] = FaultPair{
			Name:        b.Name,
			Clean:       runs[2*i],
			Faulty:      runs[2*i+1],
			CleanWaste:  wastes[2*i],
			FaultyWaste: wastes[2*i+1],
		}
	}
	return out, nil
}

// FaultsTable renders the experiment: error-path instruction counts with
// their in-slice/out-of-slice split, loader retry statistics, and the pixel
// slice percentage, clean versus faulty.
func FaultsTable(pairs []FaultPair, seed uint64) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Fault injection (seed %d): error-path instructions vs the pixel slice", seed),
		Headers: []string{"Benchmark", "Variant", "Err-path", "In slice", "Out of slice",
			"Wasted", "Of trace", "Retries", "Timeouts", "Failed", "Degraded", "Pixel slice"},
	}
	for _, p := range pairs {
		for _, v := range []struct {
			label string
			run   *Run
			w     analysis.FaultWasteResult
		}{
			{"clean", p.Clean, p.CleanWaste},
			{"faulty", p.Faulty, p.FaultyWaste},
		} {
			l := v.run.Browser.Loader
			t.AddRow(p.Name, v.label,
				fmt.Sprint(v.w.ErrorPathInstr),
				fmt.Sprint(v.w.InSlice),
				fmt.Sprint(v.w.OutOfSlice),
				report.Pct1(v.w.WastedPct()),
				report.Pct1(v.w.ErrorPathPct()),
				fmt.Sprint(l.Retries),
				fmt.Sprint(l.Timeouts),
				fmt.Sprint(l.Failures),
				fmt.Sprint(len(v.run.Browser.Degraded)),
				report.Pct1(v.run.Pixel.Percent()))
		}
	}
	return t
}
