package experiments

import (
	"fmt"

	"webslice/internal/analysis"
	"webslice/internal/report"
	"webslice/internal/sites"
)

// FaultPair is one benchmark executed twice: a clean load and the same load
// under the seeded degraded-network profile (sites.FaultyVariant).
type FaultPair struct {
	Name          string
	Clean, Faulty *Run
	CleanWaste    analysis.FaultWasteResult
	FaultyWaste   analysis.FaultWasteResult
}

// ExecuteFaults runs the fault-injection experiment: for each selected site,
// a clean load is the baseline, then the same site loads through a fault plan
// derived from the seed. Both runs are pixel-sliced and the error-path
// (net/error namespace) instruction counts are split by slice membership.
func ExecuteFaults(scale float64, seed uint64) ([]FaultPair, error) {
	benches := []sites.Benchmark{
		sites.AmazonDesktop(sites.Options{Scale: scale}),
		sites.Bing(sites.Options{Scale: scale}),
	}
	var out []FaultPair
	for _, b := range benches {
		clean, err := Execute(b)
		if err != nil {
			return nil, fmt.Errorf("faults: %s clean: %w", b.Name, err)
		}
		faulty, err := Execute(sites.FaultyVariant(b, seed))
		if err != nil {
			return nil, fmt.Errorf("faults: %s faulty: %w", b.Name, err)
		}
		out = append(out, FaultPair{
			Name:        b.Name,
			Clean:       clean,
			Faulty:      faulty,
			CleanWaste:  analysis.FaultWaste(clean.Trace, clean.Pixel),
			FaultyWaste: analysis.FaultWaste(faulty.Trace, faulty.Pixel),
		})
	}
	return out, nil
}

// FaultsTable renders the experiment: error-path instruction counts with
// their in-slice/out-of-slice split, loader retry statistics, and the pixel
// slice percentage, clean versus faulty.
func FaultsTable(pairs []FaultPair, seed uint64) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Fault injection (seed %d): error-path instructions vs the pixel slice", seed),
		Headers: []string{"Benchmark", "Variant", "Err-path", "In slice", "Out of slice",
			"Wasted", "Of trace", "Retries", "Timeouts", "Failed", "Degraded", "Pixel slice"},
	}
	for _, p := range pairs {
		for _, v := range []struct {
			label string
			run   *Run
			w     analysis.FaultWasteResult
		}{
			{"clean", p.Clean, p.CleanWaste},
			{"faulty", p.Faulty, p.FaultyWaste},
		} {
			l := v.run.Browser.Loader
			t.AddRow(p.Name, v.label,
				fmt.Sprint(v.w.ErrorPathInstr),
				fmt.Sprint(v.w.InSlice),
				fmt.Sprint(v.w.OutOfSlice),
				report.Pct1(v.w.WastedPct()),
				report.Pct1(v.w.ErrorPathPct()),
				fmt.Sprint(l.Retries),
				fmt.Sprint(l.Timeouts),
				fmt.Sprint(l.Failures),
				fmt.Sprint(len(v.run.Browser.Degraded)),
				report.Pct1(v.run.Pixel.Percent()))
		}
	}
	return t
}
