package cluster

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"webslice/internal/obs"
)

// ErrTracingDisabled is returned by JobTrace when no tracer is configured
// on the coordinator (HTTP maps it to 404, matching the single-node API).
var ErrTracingDisabled = errors.New("cluster: tracing disabled")

// JobTrace assembles the one causally-linked trace of a routed job: the
// coordinator's own spans (route, forward attempts, reroutes) merged with
// the owning worker's (queue wait, attempts, render, store lookups, slice
// phases), fetched over the worker's /jobs/{id}/trace endpoint. Worker
// spans are best-effort — an unreachable owner yields the coordinator's
// half alone rather than an error, mirroring how Status degrades to the
// last observed snapshot.
func (c *Coordinator) JobTrace(id string) ([]obs.SpanData, error) {
	if c.tracer == nil {
		return nil, ErrTracingDisabled
	}
	j, ok := c.lookup(id)
	if !ok {
		return nil, ErrUnknownJob
	}
	j.mu.Lock()
	peer, remoteID := j.peer, j.remoteID
	j.mu.Unlock()
	spans := c.tracer.ForTrace(j.traceCtx.Trace)
	var worker []obs.SpanData
	if peer == "" {
		// Local execution: the manager usually shares this tracer (the
		// default wiring), making this a no-op after dedup; with a distinct
		// tracer it contributes the job-side spans.
		worker, _ = c.cfg.Local.JobTrace(remoteID)
	} else {
		worker, _ = c.fetchTrace(peer, remoteID)
	}
	seen := make(map[string]bool, len(spans))
	for _, s := range spans {
		seen[s.ID] = true
	}
	for _, s := range worker {
		if !seen[s.ID] {
			spans = append(spans, s)
		}
	}
	obs.Sort(spans)
	return spans, nil
}

// fetchTrace pulls a worker's recorded spans for one of its jobs.
func (c *Coordinator) fetchTrace(peer, remoteID string) ([]obs.SpanData, error) {
	resp, err := c.client.Get(peer + "/jobs/" + remoteID + "/trace")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, errors.New("cluster: trace fetch failed")
	}
	var spans []obs.SpanData
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&spans); err != nil {
		return nil, err
	}
	return spans, nil
}
