package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// randomDigests generates n deterministic pseudo-random hex digests — the
// shape of real job keys (trace content digests).
func randomDigests(n int) []string {
	out := make([]string, n)
	for i := range out {
		sum := sha256.Sum256([]byte(fmt.Sprintf("trace-%d", i)))
		out[i] = hex.EncodeToString(sum[:])
	}
	return out
}

func ringOf(nodes ...string) *Ring {
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// Ownership must be a pure function of the member set: any construction
// order, and any "restart" that rebuilds the ring from the same peers,
// computes the same owner for every key.
func TestRingDeterministicOwnership(t *testing.T) {
	keys := randomDigests(2000)
	a := ringOf("http://w1", "http://w2", "http://w3")
	b := ringOf("http://w3", "http://w1", "http://w2") // different join order
	c := ringOf("http://w1", "http://w2", "http://w3") // fresh process, same view
	for _, k := range keys {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		oc, _ := c.Owner(k)
		if oa != ob || oa != oc {
			t.Fatalf("owner of %s differs across equivalent rings: %q / %q / %q", k[:12], oa, ob, oc)
		}
	}
}

// Adding a member must move keys only TO the new member, and roughly 1/N
// of them; removing it must restore exactly the old assignment.
func TestRingBoundedMovementOnJoinLeave(t *testing.T) {
	keys := randomDigests(10000)
	nodes := []string{"http://w1", "http://w2", "http://w3", "http://w4"}
	r := ringOf(nodes...)

	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	r.Add("http://w5")
	moved := 0
	for _, k := range keys {
		now, _ := r.Owner(k)
		if now != before[k] {
			moved++
			if now != "http://w5" {
				t.Fatalf("key %s moved %q -> %q, not to the joining node", k[:12], before[k], now)
			}
		}
	}
	// Fair share after the join is 1/5 of the keys; virtual-node jitter is
	// allowed a 2x slack but a join must never reshuffle half the space.
	fair := len(keys) / 5
	if moved == 0 || moved > 2*fair {
		t.Fatalf("join moved %d/%d keys, want (0, %d]", moved, len(keys), 2*fair)
	}

	r.Remove("http://w5")
	for _, k := range keys {
		if now, _ := r.Owner(k); now != before[k] {
			t.Fatalf("leave did not restore key %s: %q != %q", k[:12], now, before[k])
		}
	}
}

// Removing a member must only reassign the keys that member owned.
func TestRingRemoveOnlyMovesOwnedKeys(t *testing.T) {
	keys := randomDigests(5000)
	r := ringOf("http://w1", "http://w2", "http://w3")
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}
	r.Remove("http://w2")
	for _, k := range keys {
		now, _ := r.Owner(k)
		if before[k] == "http://w2" {
			if now == "http://w2" {
				t.Fatalf("key %s still owned by removed node", k[:12])
			}
		} else if now != before[k] {
			t.Fatalf("key %s not owned by removed node moved %q -> %q", k[:12], before[k], now)
		}
	}
}

// With DefaultReplicas virtual nodes, ownership over 10k random digests
// stays within a factor of two of fair share for every member.
func TestRingDistributionSkew(t *testing.T) {
	keys := randomDigests(10000)
	nodes := []string{"http://w1", "http://w2", "http://w3", "http://w4"}
	r := ringOf(nodes...)
	counts := make(map[string]int)
	for _, k := range keys {
		o, ok := r.Owner(k)
		if !ok {
			t.Fatal("no owner on a populated ring")
		}
		counts[o]++
	}
	fair := float64(len(keys)) / float64(len(nodes))
	for _, n := range nodes {
		got := float64(counts[n])
		if got < fair/2 || got > fair*2 {
			t.Fatalf("node %s owns %.0f keys, outside [%.0f, %.0f] (counts=%v)", n, got, fair/2, fair*2, counts)
		}
	}
}

// Owners returns distinct members in failover order, owner first.
func TestRingOwnersFailoverOrder(t *testing.T) {
	r := ringOf("http://w1", "http://w2", "http://w3")
	for _, k := range randomDigests(200) {
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%s, 3) = %v, want 3 distinct members", k[:12], owners)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%s, 3) repeats %q: %v", k[:12], o, owners)
			}
			seen[o] = true
		}
		first, _ := r.Owner(k)
		if owners[0] != first {
			t.Fatalf("Owners[0] = %q, Owner = %q", owners[0], first)
		}
	}
	// Asking for more members than exist caps at the member count.
	if got := r.Owners("k", 10); len(got) != 3 {
		t.Fatalf("Owners(k, 10) = %v, want 3", got)
	}
}

func TestRingEmptyAndNoop(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner("k"); ok {
		t.Fatal("empty ring returned an owner")
	}
	r.Remove("absent") // no-op
	r.Add("http://w1")
	r.Add("http://w1") // duplicate no-op
	if r.Len() != 1 {
		t.Fatalf("Len = %d after duplicate Add, want 1", r.Len())
	}
	if o, ok := r.Owner("k"); !ok || o != "http://w1" {
		t.Fatalf("single-node ring Owner = %q, %v", o, ok)
	}
}
