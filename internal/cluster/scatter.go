package cluster

import (
	"fmt"
	"time"

	"webslice/internal/service"
)

// Scatter admits every spec in order, routing each to its ring owner, and
// returns the coordinator job ids in the same order. It fails atomically
// at admission: if spec i is rejected (validation, backpressure with no
// fallback), the already-admitted jobs 0..i-1 are canceled and the error
// is returned with its index — the caller never has to track a
// half-admitted batch.
func (c *Coordinator) Scatter(specs []service.Spec) ([]string, error) {
	ids := make([]string, 0, len(specs))
	for i, spec := range specs {
		id, err := c.Submit(spec)
		if err != nil {
			for _, prev := range ids {
				c.Cancel(prev)
			}
			return nil, fmt.Errorf("cluster: batch item %d: %w", i, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Gather polls the given jobs until every one is terminal (or maxWait
// expires; <= 0 means no limit) and returns their results in input
// order — the scatter path's deterministic, site-ordered collection. A
// failed/canceled/quarantined job leaves a nil slot and Gather returns
// the error of the lowest such index (the parallel experiment runner's
// convention); jobs that did finish still deliver their results.
func (c *Coordinator) Gather(ids []string, maxWait time.Duration) ([]*service.Result, error) {
	results := make([]*service.Result, len(ids))
	settled := make([]bool, len(ids))
	var firstErr error
	errIndex := len(ids)
	deadline := c.clock.Now().Add(maxWait)
	interval := 20 * time.Millisecond
	for {
		pending := 0
		for i, id := range ids {
			if settled[i] {
				continue
			}
			res, done, err := c.Result(id)
			if err != nil {
				return results, err
			}
			if done {
				results[i], settled[i] = res, true
				continue
			}
			info, err := c.Status(id)
			if err != nil {
				return results, err
			}
			if info.Status.Terminal() && info.Status != service.StatusDone {
				if i < errIndex {
					errIndex = i
					firstErr = fmt.Errorf("cluster: job %s (batch index %d) %s: %s", id, i, info.Status, info.Error)
				}
				settled[i] = true
				continue
			}
			pending++
		}
		if pending == 0 {
			return results, firstErr
		}
		if maxWait > 0 && !c.clock.Now().Before(deadline) {
			return results, fmt.Errorf("cluster: gather: %d job(s) still pending after %v", pending, maxWait)
		}
		c.clock.Sleep(interval, nil)
		if interval *= 2; interval > 500*time.Millisecond {
			interval = 500 * time.Millisecond
		}
	}
}
