// Package cluster turns websliced into a horizontally scalable service: a
// consistent-hash ring assigns every job an owner node, a health-checked
// membership evicts dead workers and re-admits recovered ones, and a
// coordinator routes submissions to their owners over the existing HTTP
// API while transparently proxying status and result polls.
//
// The unit of distribution is the job key — the SHA-256 trace digest for
// submitted traces, a canonical rendering identity for site jobs. Because
// rendering is deterministic and the artifact store is content-addressed
// by that same digest (internal/store), routing a repeat submission to the
// node that ran it before turns the whole forward pass into a cache hit:
// the ring *is* the cache-affinity scheduler.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"
)

// DefaultReplicas is the virtual-node count per member. 128 points per
// node keeps the ownership skew over random SHA-256 keys within a few
// tens of percent of fair share (see ring_test.go's 10k-digest bound).
const DefaultReplicas = 128

// point is one virtual node: a position on the 64-bit hash circle owned
// by a member.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes. Ownership is a pure
// function of the member set — no construction-order or process-lifetime
// state — so every node (and every restart of the same node) that knows
// the same membership computes the same owner for every key. All methods
// are safe for concurrent use.
type Ring struct {
	replicas int

	mu     sync.RWMutex
	nodes  map[string]struct{}
	points []point // sorted by (hash, node)
}

// NewRing returns an empty ring with the given virtual-node count per
// member (<= 0 selects DefaultReplicas).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, nodes: make(map[string]struct{})}
}

// hashPoint places virtual node i of a member on the circle.
func hashPoint(node string, i int) uint64 {
	sum := sha256.Sum256([]byte(node + "#" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// hashKey places a job key on the circle. Keys are usually already hex
// SHA-256 digests; hashing again costs little and keeps non-digest keys
// (site identities) uniformly spread.
func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a member. Adding a present member is a no-op. Only keys
// whose owning arc the new member's virtual nodes split change owner —
// roughly 1/N of them for N members — and they all move *to* the new
// member.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, point{hashPoint(node, i), node})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
}

// Remove deletes a member; only keys it owned change owner. Removing an
// absent member is a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	keep := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			keep = append(keep, p)
		}
	}
	r.points = keep
}

// Has reports membership.
func (r *Ring) Has(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.nodes[node]
	return ok
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes returns the members, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the member owning key: the first virtual node at or after
// the key's position, wrapping around the circle. ok is false on an empty
// ring.
func (r *Ring) Owner(key string) (owner string, ok bool) {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return "", false
	}
	return owners[0], true
}

// Owners returns up to n distinct members in ring order starting from
// key's position — the owner first, then the failover candidates a router
// tries when the owner is unreachable.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}
