package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"webslice/internal/metrics"
	"webslice/internal/obs"
	"webslice/internal/service"
)

// maxTraceBody mirrors the single-node handler's trace upload bound.
const maxTraceBody = 256 << 20

// NewHandler returns the coordinator's HTTP API. It is a superset of the
// single-node websliced API with the same shapes, so the webslice client
// talks to a coordinator exactly as it talks to a worker:
//
//	POST   /jobs             submit a site/seed job (JSON Spec) -> 202 {id}
//	POST   /jobs/trace       submit a binary trace              -> 202 {id}
//	POST   /batch            scatter a JSON array of Specs      -> 202 {ids}
//	GET    /jobs             list routed jobs                   -> 200 [Info]
//	GET    /jobs/{id}        proxied status (owner hint)        -> 200 Info
//	GET    /jobs/{id}/result proxied result                     -> 200 Result
//	DELETE /jobs/{id}        cancel wherever it runs            -> 200
//	GET    /cluster          topology: members, ring, self      -> 200
//	GET    /healthz          coordinator liveness               -> 200
//	GET    /metrics          Prometheus text exposition         -> 200
//
// Peer backpressure propagates: a 429 (with Retry-After) from a job's
// owner is returned as a 429 here.
func NewHandler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec service.Spec
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
			return
		}
		spec.TraceCtx, _ = obs.Extract(r.Header)
		submitRouted(c, w, spec)
	})

	mux.HandleFunc("POST /jobs/trace", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTraceBody))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("reading trace body: %w", err))
			return
		}
		if len(body) == 0 {
			httpError(w, http.StatusBadRequest, errors.New("empty trace body"))
			return
		}
		spec := service.Spec{
			Trace:    body,
			Criteria: r.URL.Query().Get("criteria"),
			Verify:   r.URL.Query().Get("verify") == "1" || r.URL.Query().Get("verify") == "true",
		}
		spec.TraceCtx, _ = obs.Extract(r.Header)
		submitRouted(c, w, spec)
	})

	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, r *http.Request) {
		var specs []service.Spec
		if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&specs); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad batch: %w", err))
			return
		}
		if len(specs) == 0 {
			httpError(w, http.StatusBadRequest, errors.New("empty batch"))
			return
		}
		ids, err := c.Scatter(specs)
		if err != nil {
			writeSubmitError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string][]string{"ids": ids})
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Jobs())
	})

	mux.HandleFunc("GET /jobs/quarantined", func(w http.ResponseWriter, r *http.Request) {
		// Quarantine is node-local state; the coordinator reports its own
		// manager's list (each worker serves its own at this route).
		writeJSON(w, http.StatusOK, c.Local().Quarantined())
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := c.Status(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, info)
	})

	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		res, done, err := c.Result(id)
		if err != nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
			return
		}
		if !done {
			info, _ := c.Status(id)
			httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s, not done", id, info.Status))
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	mux.HandleFunc("GET /jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		spans, err := c.JobTrace(id)
		if err != nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("no trace for job %q: %w", id, err))
			return
		}
		writeJSON(w, http.StatusOK, spans)
	})

	mux.HandleFunc("GET /debug/spans", func(w http.ResponseWriter, r *http.Request) {
		if c.tracer == nil {
			httpError(w, http.StatusNotFound, ErrTracingDisabled)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		obs.WriteJSONL(w, c.tracer.Snapshot())
	})

	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if !c.Cancel(id) {
			httpError(w, http.StatusConflict, fmt.Errorf("job %q unknown or already finished", id))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "canceling"})
	})

	mux.HandleFunc("GET /cluster", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"self":      c.cfg.Self,
			"ring_size": c.Ring().Len(),
			"ring":      c.Ring().Nodes(),
			"members":   c.Members(),
		})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if c.Local().Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining", "role": "coordinator"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "role": "coordinator", "ring_size": c.Ring().Len()})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", metrics.ContentType)
		c.Metrics().WriteText(w)
	})

	return mux
}

// submitRouted routes one spec and writes the 202/error response.
func submitRouted(c *Coordinator, w http.ResponseWriter, spec service.Spec) {
	id, err := c.Submit(spec)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

// writeSubmitError maps routing errors onto the single-node handler's
// status-code contract, propagating a peer's own code (and Retry-After)
// when the owner answered with an application error.
func writeSubmitError(w http.ResponseWriter, err error) {
	var se *statusError
	if errors.As(err, &se) {
		if se.RetryAfter() != "" {
			w.Header().Set("Retry-After", se.RetryAfter())
		}
		httpError(w, se.Code(), err)
		return
	}
	switch {
	case errors.Is(err, service.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, service.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, service.ErrTraceTooLarge):
		httpError(w, http.StatusRequestEntityTooLarge, err)
	default:
		httpError(w, http.StatusBadRequest, err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
