package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"webslice/internal/experiments"
	"webslice/internal/obs"
	"webslice/internal/service"
	"webslice/internal/store"
)

// node is one in-process websliced worker: a manager with its own
// content-addressed store behind the real single-node HTTP handler.
type node struct {
	mgr *service.Manager
	srv *httptest.Server
}

func startNode(t testing.TB) *node {
	t.Helper()
	st, err := store.Open("", 64<<20) // in-memory artifact store
	if err != nil {
		t.Fatal(err)
	}
	// Every in-process node carries a tracer, so the whole cluster suite
	// doubles as race coverage for span recording across goroutines.
	mgr := service.New(service.Config{Workers: 2, QueueDepth: 32, Store: st, Tracer: obs.New(1024, nil)})
	srv := httptest.NewServer(service.NewHandler(mgr))
	n := &node{mgr: mgr, srv: srv}
	t.Cleanup(func() { n.close() })
	return n
}

func (n *node) close() {
	n.srv.Close()
	n.mgr.Kill()
}

// testCluster is a coordinator over k in-process workers. The coordinator
// keeps its own local manager for fallback but is not a ring member, so
// every routed job lands on a worker.
type testCluster struct {
	co      *Coordinator
	local   *service.Manager
	workers []*node
}

func startCluster(t testing.TB, k int, cfg Config) *testCluster {
	t.Helper()
	tc := &testCluster{}
	peers := make([]string, k)
	for i := 0; i < k; i++ {
		n := startNode(t)
		tc.workers = append(tc.workers, n)
		peers[i] = n.srv.URL
	}
	st, err := store.Open("", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	tc.local = service.New(service.Config{Workers: 2, QueueDepth: 32, Store: st, Node: "http://coordinator.test", Tracer: obs.New(1024, nil)})
	t.Cleanup(func() { tc.local.Kill() })
	cfg.Self = "http://coordinator.test"
	cfg.Local = tc.local
	cfg.Peers = peers
	tc.co = New(cfg)
	t.Cleanup(func() { tc.co.Stop() })
	return tc
}

// await polls a coordinator job on real time until it is terminal.
func await(t testing.TB, c *Coordinator, id string) service.Info {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		info, err := c.Status(id)
		if err != nil {
			t.Fatalf("Status(%s): %v", id, err)
		}
		if info.Status.Terminal() {
			return info
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for job %s", id)
	return service.Info{}
}

func mustResult(t testing.TB, c *Coordinator, id string) *service.Result {
	t.Helper()
	res, done, err := c.Result(id)
	if err != nil || !done || res == nil {
		t.Fatalf("Result(%s) = %v, done=%t, err=%v", id, res, done, err)
	}
	return res
}

// The acceptance test for cache-affinity scheduling: submitting the same
// workload twice routes both jobs to the same owner, and the second run is
// an artifact-store hit there (forward pass skipped), counted by the
// cluster_affinity_hits metric.
func TestClusterCacheAffinity(t *testing.T) {
	tc := startCluster(t, 3, Config{FailThreshold: 2})
	spec := service.Spec{Seed: 42, Criteria: "pixels"}

	id1, err := tc.co.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	info1 := await(t, tc.co, id1)
	if info1.Status != service.StatusDone {
		t.Fatalf("job 1: %s (%s)", info1.Status, info1.Error)
	}
	res1 := mustResult(t, tc.co, id1)

	id2, err := tc.co.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	info2 := await(t, tc.co, id2)
	res2 := mustResult(t, tc.co, id2)

	if info1.Node == "" || info1.Node != info2.Node {
		t.Fatalf("identical workloads routed to different owners: %q vs %q", info1.Node, info2.Node)
	}
	if res1.CacheHit {
		t.Fatal("first run of a fresh workload claims a cache hit")
	}
	if !res2.CacheHit {
		t.Fatal("repeat run on the owner was not an artifact-store hit")
	}
	if res1.SliceDigest == "" || res1.SliceDigest != res2.SliceDigest {
		t.Fatalf("digest mismatch across runs: %q vs %q", res1.SliceDigest, res2.SliceDigest)
	}
	if got := tc.co.Metrics().Counter("cluster_affinity_hits").Value(); got < 1 {
		t.Fatalf("cluster_affinity_hits = %d, want >= 1", got)
	}
	if got := tc.co.Metrics().Counter("cluster_jobs_routed").Value(); got != 2 {
		t.Fatalf("cluster_jobs_routed = %d, want 2", got)
	}
}

// The determinism acceptance test: the golden corpus run on one node and
// on a 3-node cluster produces byte-identical slice digests, all matching
// the corpus's pinned values.
func TestClusterSingleVsMultiNodeDigests(t *testing.T) {
	corpus, err := experiments.LoadGolden("../../examples/golden/corpus.json")
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]service.Spec, len(corpus.Sites))
	for i, e := range corpus.Sites {
		specs[i] = service.Spec{Site: e.Name, Scale: e.Scale, Seed: e.Seed, Criteria: "pixels"}
	}

	// Single node: the coordinator's own manager, no peers.
	single := startCluster(t, 0, Config{})
	ids, err := single.co.Scatter(specs)
	if err != nil {
		t.Fatal(err)
	}
	singleRes, err := single.co.Gather(ids, time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	multi := startCluster(t, 3, Config{})
	ids, err = multi.co.Scatter(specs)
	if err != nil {
		t.Fatal(err)
	}
	multiRes, err := multi.co.Gather(ids, time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	for i, e := range corpus.Sites {
		if singleRes[i] == nil || multiRes[i] == nil {
			t.Fatalf("%s: missing result (single=%v multi=%v)", e.Label(), singleRes[i] != nil, multiRes[i] != nil)
		}
		if singleRes[i].SliceDigest != multiRes[i].SliceDigest {
			t.Errorf("%s: single-node digest %s != 3-node digest %s",
				e.Label(), singleRes[i].SliceDigest, multiRes[i].SliceDigest)
		}
		if singleRes[i].SliceDigest != e.Pixels {
			t.Errorf("%s: digest %s does not match pinned golden %s",
				e.Label(), singleRes[i].SliceDigest, e.Pixels)
		}
	}
	// 3 workers, 8 golden workloads: the ring must have spread them.
	nodes := map[string]bool{}
	for _, id := range ids {
		info, err := multi.co.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		nodes[info.Node] = true
	}
	if len(nodes) < 2 {
		t.Fatalf("all %d golden jobs landed on one node: %v", len(ids), nodes)
	}
}

// The failure acceptance test: killing a worker mid-batch loses no acked
// job — the membership evicts it and its jobs re-route to live owners,
// all finishing with correct results.
func TestClusterWorkerDeathReroutes(t *testing.T) {
	tc := startCluster(t, 3, Config{ProbeInterval: 20 * time.Millisecond, FailThreshold: 2})
	tc.co.Start()

	// Enough seed workloads that every worker owns at least one with
	// overwhelming probability; verified below before the kill.
	specs := make([]service.Spec, 12)
	for i := range specs {
		specs[i] = service.Spec{Seed: uint64(9000 + i), Criteria: "pixels"}
	}
	ids, err := tc.co.Scatter(specs)
	if err != nil {
		t.Fatal(err)
	}

	victim := tc.workers[0]
	owned := 0
	for _, id := range ids {
		info, err := tc.co.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Node == victim.srv.URL {
			owned++
		}
	}
	if owned == 0 {
		t.Fatalf("victim %s owns no jobs; seeds need respreading", victim.srv.URL)
	}
	victim.close()

	results, err := tc.co.Gather(ids, time.Minute)
	if err != nil {
		t.Fatalf("gather after worker death: %v", err)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("job %s (seed %d) lost after worker death", ids[i], specs[i].Seed)
		}
		if res.SliceDigest == "" {
			t.Fatalf("job %s finished without a digest", ids[i])
		}
	}
	if tc.co.Ring().Has(victim.srv.URL) {
		t.Fatal("dead worker still in the ring after gather")
	}
	if got := tc.co.Metrics().Counter("cluster_jobs_rerouted").Value(); got < 1 {
		t.Fatalf("cluster_jobs_rerouted = %d, want >= 1 (victim owned %d)", got, owned)
	}
	// Recomputed results must agree with an undisturbed run.
	check := startCluster(t, 0, Config{})
	for i, spec := range specs {
		id, err := check.co.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		await(t, check.co, id)
		ref := mustResult(t, check.co, id)
		if ref.SliceDigest != results[i].SliceDigest {
			t.Fatalf("seed %d: rerouted digest %s != reference %s", spec.Seed, results[i].SliceDigest, ref.SliceDigest)
		}
	}
}

// A 429 from a job's owner is backpressure, not node death: it propagates
// to the coordinator's client with the peer's Retry-After, instead of
// stampeding a colder node.
func TestClusterBackpressurePropagates(t *testing.T) {
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer busy.Close()

	st, _ := store.Open("", 1<<20)
	local := service.New(service.Config{Workers: 1, Store: st})
	defer local.Kill()
	co := New(Config{Self: "http://coordinator.test", Local: local, Peers: []string{busy.URL}})
	defer co.Stop()

	h := NewHandler(co)
	body := strings.NewReader(`{"seed": 5, "criteria": "pixels"}`)
	req := httptest.NewRequest(http.MethodPost, "/jobs", body)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", rw.Code, rw.Body.String())
	}
	if got := rw.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want the peer's own hint \"7\"", got)
	}
	if co.Metrics().Counter("cluster_jobs_local").Value() != 0 {
		t.Fatal("backpressured job fell back to local execution")
	}
}

// JobKey is the distribution identity: traces key by content digest,
// criteria are excluded (both criteria share forward-pass artifacts), and
// site/seed/scale each produce distinct keys.
func TestJobKey(t *testing.T) {
	trace := []byte("fake trace bytes")
	k1 := JobKey(service.Spec{Trace: trace, Criteria: "pixels"})
	k2 := JobKey(service.Spec{Trace: trace, Criteria: "syscalls"})
	if k1 != k2 {
		t.Fatal("criteria changed a trace job's key")
	}
	if len(k1) != 64 {
		t.Fatalf("trace key %q is not a hex sha256", k1)
	}
	keys := map[string]string{
		"site-default-scale": JobKey(service.Spec{Site: "maps"}),
		"site-scale-1":       JobKey(service.Spec{Site: "maps", Scale: 1.0}),
		"site-scale-half":    JobKey(service.Spec{Site: "maps", Scale: 0.5}),
		"other-site":         JobKey(service.Spec{Site: "bing"}),
		"seed":               JobKey(service.Spec{Seed: 7}),
		"other-seed":         JobKey(service.Spec{Seed: 8}),
	}
	if keys["site-default-scale"] != keys["site-scale-1"] {
		t.Fatal("scale 0 and scale 1.0 keyed differently")
	}
	seen := map[string]string{}
	for name, k := range keys {
		if name == "site-scale-1" {
			continue // alias of site-default-scale by design
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("%s and %s share a key", prev, name)
		}
		seen[k] = name
	}
}

// The coordinator's handler exposes the topology and serves metrics with
// the Prometheus content type.
func TestClusterEndpoints(t *testing.T) {
	tc := startCluster(t, 2, Config{})
	h := NewHandler(tc.co)

	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/cluster", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("/cluster: %d", rw.Code)
	}
	var topo struct {
		Self     string        `json:"self"`
		RingSize int           `json:"ring_size"`
		Ring     []string      `json:"ring"`
		Members  []MemberState `json:"members"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &topo); err != nil {
		t.Fatal(err)
	}
	if topo.Self != "http://coordinator.test" || topo.RingSize != 2 || len(topo.Members) != 2 {
		t.Fatalf("topology = %+v", topo)
	}

	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rw.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	if !strings.Contains(rw.Body.String(), "# TYPE cluster_ring_size gauge") {
		t.Fatalf("/metrics missing ring-size gauge:\n%s", rw.Body.String())
	}

	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rw.Code != http.StatusOK || !strings.Contains(rw.Body.String(), "coordinator") {
		t.Fatalf("/healthz = %d %s", rw.Code, rw.Body.String())
	}
}

// benchGolden measures golden-corpus batch throughput through a
// coordinator with k workers (k == 0 runs everything on the local
// manager). The first iteration is the cold render+slice cost; later
// iterations measure the cache-affinity path, where every job is a store
// hit on its owner.
func benchGolden(b *testing.B, k int) {
	corpus, err := experiments.LoadGolden("../../examples/golden/corpus.json")
	if err != nil {
		b.Fatal(err)
	}
	specs := make([]service.Spec, len(corpus.Sites))
	for i, e := range corpus.Sites {
		specs[i] = service.Spec{Site: e.Name, Scale: e.Scale, Seed: e.Seed, Criteria: "pixels"}
	}
	tc := startCluster(b, k, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, err := tc.co.Scatter(specs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tc.co.Gather(ids, time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGoldenBatchSingleNode(b *testing.B) { benchGolden(b, 0) }
func BenchmarkGoldenBatch3Node(b *testing.B)      { benchGolden(b, 3) }
