package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"webslice/internal/obs"
	"webslice/internal/service"
	"webslice/internal/store"
)

// The cross-node propagation acceptance test: a coordinator-routed job on
// a 3-node cluster must yield ONE trace — the coordinator's route/forward
// spans and the owning worker's job/queue/slice spans share a trace ID and
// link parent-to-child across the HTTP hop. Runs under -race with the rest
// of the suite, so concurrent span recording is exercised too.
func TestClusterTracePropagation(t *testing.T) {
	tc := startCluster(t, 3, Config{})
	id, err := tc.co.Submit(service.Spec{Site: "amazon-desktop", Scale: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	info := await(t, tc.co, id)
	if info.Status != service.StatusDone {
		t.Fatalf("job %s: %s (%s)", id, info.Status, info.Error)
	}
	if info.Node == "http://coordinator.test" {
		t.Fatalf("job ran on the coordinator; want a ring worker")
	}

	spans, err := tc.co.JobTrace(id)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.SpanData{}
	for _, s := range spans {
		if s.Trace != spans[0].Trace {
			t.Fatalf("span %s on trace %s, want single trace %s", s.Name, s.Trace, spans[0].Trace)
		}
		byName[s.Name] = s
	}
	for _, want := range []string{"route", "peer.submit", "job", "queue.wait", "attempt", "slice", "slice.scan"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("merged trace missing span %q (have %d spans)", want, len(spans))
		}
	}
	// Parent links across the coordinator/worker boundary: the worker's
	// root "job" span must hang off the coordinator's "route" span — that
	// is the traceparent hop — and the chains on both sides must hold.
	route := byName["route"]
	if route.Parent != "" {
		t.Errorf("route.parent = %q, want root", route.Parent)
	}
	for child, parent := range map[string]string{
		"peer.submit": route.ID,
		"job":         route.ID,
		"queue.wait":  byName["job"].ID,
		"attempt":     byName["job"].ID,
		"slice":       byName["attempt"].ID,
		"slice.scan":  byName["slice"].ID,
	} {
		if got := byName[child].Parent; got != parent {
			t.Errorf("%s.parent = %q, want %q", child, got, parent)
		}
	}

	// The same merged tree must be served over the coordinator's HTTP API.
	h := NewHandler(tc.co)
	req := httptest.NewRequest(http.MethodGet, "/jobs/"+id+"/trace", nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("GET /jobs/%s/trace = %d", id, rw.Code)
	}
	var served []obs.SpanData
	if err := json.NewDecoder(rw.Body).Decode(&served); err != nil {
		t.Fatal(err)
	}
	if len(served) != len(spans) {
		t.Fatalf("HTTP trace has %d spans, JobTrace %d", len(served), len(spans))
	}
}

// A peer's 429 must surface as a span event carrying the Retry-After and
// node hints — backpressure is visible in the trace, not only in the
// client's response headers.
func TestBackpressureSpanEvent(t *testing.T) {
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer busy.Close()

	st, _ := store.Open("", 1<<20)
	local := service.New(service.Config{Workers: 1, Store: st})
	defer local.Kill()
	tr := obs.New(64, nil)
	co := New(Config{Self: "http://coordinator.test", Local: local, Peers: []string{busy.URL}, Tracer: tr})
	defer co.Stop()

	if _, err := co.Submit(service.Spec{Seed: 5}); err == nil ||
		!strings.Contains(err.Error(), "queue full") {
		t.Fatalf("Submit = %v, want the peer's 429 error", err)
	}
	var route *obs.SpanData
	for _, s := range tr.Snapshot() {
		if s.Name == "route" {
			route = &s
			break
		}
	}
	if route == nil {
		t.Fatal("no route span recorded")
	}
	var ev *obs.Event
	for i := range route.Events {
		if route.Events[i].Name == "peer.backpressure" {
			ev = &route.Events[i]
		}
	}
	if ev == nil {
		t.Fatalf("route span has no peer.backpressure event (events: %v)", route.Events)
	}
	attrs := map[string]string{}
	for _, a := range ev.Attrs {
		attrs[a.K] = a.V
	}
	if attrs["retry_after"] != "7" || attrs["peer"] != busy.URL {
		t.Fatalf("backpressure event attrs = %v, want retry_after=7 peer=%s", attrs, busy.URL)
	}
}
