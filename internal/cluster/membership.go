package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"webslice/internal/metrics"
	"webslice/internal/service"
)

// Membership defaults.
const (
	// DefaultProbeInterval is how often every peer's /healthz is probed.
	DefaultProbeInterval = 2 * time.Second
	// DefaultFailThreshold is how many consecutive failed probes (or
	// router-reported forward failures) evict a peer from the ring.
	DefaultFailThreshold = 3
	// defaultProbeTimeout bounds one HTTP health probe.
	defaultProbeTimeout = 2 * time.Second
)

// MemberState is a point-in-time snapshot of one peer.
type MemberState struct {
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
	Fails int    `json:"fails,omitempty"` // consecutive failures so far
}

// MembershipConfig wires a Membership.
type MembershipConfig struct {
	// Peers are the probed members' base URLs (e.g. http://127.0.0.1:8078).
	Peers []string
	// ProbeInterval is the health-check period (default 2s).
	ProbeInterval time.Duration
	// FailThreshold evicts a peer after this many consecutive failures
	// (default 3).
	FailThreshold int
	// Probe checks one peer; nil uses an HTTP GET of url+/healthz that
	// fails on any non-200 (a draining worker answers 503 on purpose, so
	// drain reads as "stop routing here").
	Probe func(url string) error
	// Clock abstracts time so eviction/re-add schedules are testable
	// without real sleeps (the same seam internal/service's retry backoff
	// uses).
	Clock service.Clock
	// OnEvict fires (from the probe goroutine) when a peer crosses the
	// failure threshold and leaves the ring — the router re-routes the
	// peer's pending jobs here.
	OnEvict func(url string)
	// OnJoin fires when an evicted peer passes a probe and rejoins.
	OnJoin func(url string)
	// Metrics receives ring-size/alive gauges and eviction counters; nil
	// creates a private registry.
	Metrics *metrics.Registry
}

// Membership owns the ring's live view: every configured peer starts as a
// member, consecutive probe failures evict it, and a later successful
// probe re-admits it. Peers never leave the probe set — eviction is a
// routing decision, not forgetting the node.
type Membership struct {
	cfg  MembershipConfig
	ring *Ring
	stop chan struct{}
	done chan struct{}

	mu      sync.Mutex
	started bool
	fails   map[string]int
	alive   map[string]bool

	gRing, gAlive         *metrics.Gauge
	cEvicted, cRejoined   *metrics.Counter
	cProbes, cProbeFailed *metrics.Counter
}

// NewMembership builds a membership over ring. Every peer is admitted
// optimistically — routing is deterministic from boot, and a peer that is
// actually down is evicted within FailThreshold probe rounds.
func NewMembership(ring *Ring, cfg MembershipConfig) *Membership {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = DefaultFailThreshold
	}
	if cfg.Probe == nil {
		cfg.Probe = httpProbe
	}
	if cfg.Clock == nil {
		cfg.Clock = service.SystemClock
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	m := &Membership{
		cfg:          cfg,
		ring:         ring,
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		fails:        make(map[string]int),
		alive:        make(map[string]bool),
		gRing:        reg.Gauge("cluster_ring_size"),
		gAlive:       reg.Gauge("cluster_peers_alive"),
		cEvicted:     reg.Counter("cluster_peers_evicted"),
		cRejoined:    reg.Counter("cluster_peers_rejoined"),
		cProbes:      reg.Counter("cluster_probes"),
		cProbeFailed: reg.Counter("cluster_probes_failed"),
	}
	for _, p := range cfg.Peers {
		m.alive[p] = true
		ring.Add(p)
	}
	m.publish()
	return m
}

func httpProbe(url string) error {
	c := &http.Client{Timeout: defaultProbeTimeout}
	resp, err := c.Get(url + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s/healthz: HTTP %d", url, resp.StatusCode)
	}
	return nil
}

// Start launches the periodic probe loop; Stop ends it. Starting twice is
// a no-op.
func (m *Membership) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	go func() {
		defer close(m.done)
		for {
			m.cfg.Clock.Sleep(m.cfg.ProbeInterval, m.stop)
			select {
			case <-m.stop:
				return
			default:
			}
			m.ProbeAll()
		}
	}()
}

// Stop terminates the probe loop and waits for it to exit. Safe to call
// whether or not Start ever ran.
func (m *Membership) Stop() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	m.mu.Lock()
	started := m.started
	m.mu.Unlock()
	if started {
		<-m.done
	}
}

// ProbeAll health-checks every peer once, concurrently, applying the
// eviction/re-add rules. Exported so tests (and a boot sequence that wants
// an immediate view) can drive rounds without waiting out the interval.
func (m *Membership) ProbeAll() {
	var wg sync.WaitGroup
	for _, p := range m.cfg.Peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			m.cProbes.Inc()
			if err := m.cfg.Probe(peer); err != nil {
				m.cProbeFailed.Inc()
				m.ReportFailure(peer)
			} else {
				m.reportSuccess(peer)
			}
		}(p)
	}
	wg.Wait()
}

// ReportFailure counts one failed interaction with a peer — a failed
// health probe, or a router-side forward/poll error — and evicts the peer
// from the ring once the consecutive-failure threshold is crossed. The
// router feeding its failures in here means a dead worker stops receiving
// jobs after FailThreshold failed forwards, not only after the next probe
// round.
func (m *Membership) ReportFailure(peer string) {
	m.mu.Lock()
	if !m.known(peer) {
		m.mu.Unlock()
		return
	}
	m.fails[peer]++
	evict := m.alive[peer] && m.fails[peer] >= m.cfg.FailThreshold
	if evict {
		m.alive[peer] = false
	}
	m.mu.Unlock()
	if !evict {
		return
	}
	m.ring.Remove(peer)
	m.cEvicted.Inc()
	m.publish()
	if m.cfg.OnEvict != nil {
		m.cfg.OnEvict(peer)
	}
}

// reportSuccess clears the failure streak and re-admits an evicted peer.
func (m *Membership) reportSuccess(peer string) {
	m.mu.Lock()
	if !m.known(peer) {
		m.mu.Unlock()
		return
	}
	m.fails[peer] = 0
	rejoin := !m.alive[peer]
	if rejoin {
		m.alive[peer] = true
	}
	m.mu.Unlock()
	if !rejoin {
		return
	}
	m.ring.Add(peer)
	m.cRejoined.Inc()
	m.publish()
	if m.cfg.OnJoin != nil {
		m.cfg.OnJoin(peer)
	}
}

// known reports whether peer is in the configured probe set (mu held).
func (m *Membership) known(peer string) bool {
	for _, p := range m.cfg.Peers {
		if p == peer {
			return true
		}
	}
	return false
}

// Alive reports whether peer is currently a ring member.
func (m *Membership) Alive(peer string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alive[peer]
}

// Members snapshots every configured peer's state, sorted by URL.
func (m *Membership) Members() []MemberState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemberState, 0, len(m.cfg.Peers))
	for _, p := range m.cfg.Peers {
		out = append(out, MemberState{URL: p, Alive: m.alive[p], Fails: m.fails[p]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

func (m *Membership) publish() {
	m.gRing.Set(int64(m.ring.Len()))
	m.mu.Lock()
	alive := 0
	for _, ok := range m.alive {
		if ok {
			alive++
		}
	}
	m.mu.Unlock()
	m.gAlive.Set(int64(alive))
}
