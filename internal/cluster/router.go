package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"webslice/internal/metrics"
	"webslice/internal/obs"
	"webslice/internal/service"
	"webslice/internal/trace"
)

// JobKey is the distribution identity of a job — the value the ring
// hashes to pick an owner. Submitted traces use the hex SHA-256 of the
// trace bytes, which is exactly the content address the artifact store
// keys its CDG/slice blobs under; site and seed jobs use a canonical
// rendering identity, which maps to the same trace digest on every node
// because rendering is deterministic. Criteria are deliberately excluded:
// both criteria of one trace share the forward-pass artifacts, so they
// belong on the same node.
func JobKey(spec service.Spec) string {
	if len(spec.Trace) > 0 {
		// The content address is defined over the canonical v2 bytes, so a
		// block-compressed (v3) submission is transcoded through the
		// streaming writer before hashing — the same trace gets the same
		// owner whichever format carried it, and the key still matches the
		// store's TraceKey. The compressed bytes themselves are what the
		// coordinator forwards; only the hash looks at the v2 form.
		if trace.FormatVersion(spec.Trace) == 3 {
			if br, err := trace.OpenV3(spec.Trace); err == nil {
				h := sha256.New()
				if err := br.WriteV2(h); err == nil {
					return hex.EncodeToString(h.Sum(nil))
				}
			}
			// A malformed v3 body falls through to raw-byte hashing; the
			// owning worker rejects it with the real decode error.
		}
		sum := sha256.Sum256(spec.Trace)
		return hex.EncodeToString(sum[:])
	}
	if spec.Site == "" && spec.Seed != 0 {
		return "seed\x00" + strconv.FormatUint(spec.Seed, 10)
	}
	scale := spec.Scale
	if scale == 0 {
		scale = 1.0
	}
	return "site\x00" + spec.Site + "\x00" + strconv.FormatFloat(scale, 'g', -1, 64)
}

// ErrUnknownJob is returned for ids the coordinator never issued.
var ErrUnknownJob = errors.New("cluster: unknown job")

// Config wires a Coordinator.
type Config struct {
	// Self is this node's advertised base URL. A peer equal to Self is
	// served by the local manager instead of being forwarded over HTTP.
	Self string
	// Local is the coordinator's own manager: the executor for jobs the
	// ring assigns to Self, and the fallback when every remote candidate
	// is unreachable.
	Local *service.Manager
	// Peers are the ring members' base URLs. Self may be included (the
	// coordinator then takes its fair share of the key space); if absent,
	// the coordinator only executes fallback work.
	Peers []string
	// Replicas is the ring's virtual-node count (0 = DefaultReplicas).
	Replicas int
	// ProbeInterval / FailThreshold / Probe configure health checking
	// (see MembershipConfig).
	ProbeInterval time.Duration
	FailThreshold int
	Probe         func(url string) error
	// Clock abstracts time for scatter/gather polling and tests.
	Clock service.Clock
	// Metrics receives the routing counters; nil uses Local's registry.
	Metrics *metrics.Registry
	// HTTPTimeout bounds each forwarded request (default 60s — trace
	// uploads can be large).
	HTTPTimeout time.Duration
	// Tracer records the coordinator's routing spans. Nil inherits the
	// local manager's tracer, so a locally-executed job's route and worker
	// spans land in one ring; if that is also nil, tracing is off.
	Tracer *obs.Tracer
	// Logger receives structured routing logs (routed, rerouted,
	// backpressure, evictions) carrying job and trace IDs. Nil discards.
	Logger *slog.Logger
}

// routedJob is the coordinator's record of one admitted job.
type routedJob struct {
	id   string
	spec service.Spec
	key  string
	// traceCtx is the root "route" span's identity — the trace every later
	// span of this job (worker-side included, via the traceparent header)
	// belongs to. Written once in Submit, before the job is visible.
	traceCtx obs.SpanContext

	mu       sync.Mutex
	peer     string // "" = local manager
	remoteID string
	reroutes int
	// lastInfo is the freshest observed snapshot, served while the owner
	// is unreachable and a re-route is pending.
	lastInfo service.Info
	// result caches the fetched result so a worker dying after the fetch
	// costs nothing; affinity counts once per job.
	result          *service.Result
	terminal        bool
	affinityCounted bool
}

// Coordinator admits jobs, routes each to its ring owner over the
// websliced HTTP API, and proxies status/result polls under its own job
// ids. A worker evicted from the ring has its pending jobs re-routed to
// the keys' new owners — safe because slicing is deterministic and
// idempotent (a re-run of the same trace is at worst a cache miss).
type Coordinator struct {
	cfg     Config
	ring    *Ring
	members *Membership
	client  *http.Client
	clock   service.Clock
	reg     *metrics.Registry
	tracer  *obs.Tracer
	log     *slog.Logger

	mu     sync.Mutex
	jobs   map[string]*routedJob
	nextID int

	cRouted, cLocal, cForwardFailed  *metrics.Counter
	cRerouted, cAffinity, cFallbacks *metrics.Counter
}

// New builds a coordinator and its membership. Call Start to begin health
// probing and Stop on shutdown.
func New(cfg Config) *Coordinator {
	if cfg.Local == nil {
		panic("cluster: Config.Local is required")
	}
	if cfg.HTTPTimeout <= 0 {
		cfg.HTTPTimeout = 60 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = service.SystemClock
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = cfg.Local.Metrics()
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = cfg.Local.Tracer()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	ring := NewRing(cfg.Replicas)
	var remote []string
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			ring.Add(p) // self is always alive; never probed or evicted
			continue
		}
		remote = append(remote, p)
	}
	c := &Coordinator{
		cfg:            cfg,
		ring:           ring,
		client:         &http.Client{Timeout: cfg.HTTPTimeout},
		clock:          cfg.Clock,
		reg:            reg,
		tracer:         tracer,
		log:            logger,
		jobs:           make(map[string]*routedJob),
		cRouted:        reg.Counter("cluster_jobs_routed"),
		cLocal:         reg.Counter("cluster_jobs_local"),
		cForwardFailed: reg.Counter("cluster_forward_failed"),
		cRerouted:      reg.Counter("cluster_jobs_rerouted"),
		cAffinity:      reg.Counter("cluster_affinity_hits"),
		cFallbacks:     reg.Counter("cluster_local_fallbacks"),
	}
	c.members = NewMembership(ring, MembershipConfig{
		Peers:         remote,
		ProbeInterval: cfg.ProbeInterval,
		FailThreshold: cfg.FailThreshold,
		Probe:         cfg.Probe,
		Clock:         cfg.Clock,
		Metrics:       reg,
		OnEvict:       c.handleEvict,
	})
	return c
}

// Start begins periodic health probing.
func (c *Coordinator) Start() { c.members.Start() }

// Stop ends health probing. The local manager is not closed — the caller
// owns its lifecycle.
func (c *Coordinator) Stop() { c.members.Stop() }

// Ring returns the routing ring (all currently-live members, self
// included when configured as a peer).
func (c *Coordinator) Ring() *Ring { return c.ring }

// Members snapshots the probed peers' health states.
func (c *Coordinator) Members() []MemberState { return c.members.Members() }

// Local returns the coordinator's own manager.
func (c *Coordinator) Local() *service.Manager { return c.cfg.Local }

// Metrics returns the registry the coordinator publishes into.
func (c *Coordinator) Metrics() *metrics.Registry { return c.reg }

// peerCounter names a per-peer counter, e.g.
// cluster_routed_peer_http_127_0_0_1_8078.
func (c *Coordinator) peerCounter(kind, peer string) *metrics.Counter {
	return c.reg.Counter("cluster_" + kind + "_peer_" + metrics.SanitizeName(peer))
}

// Submit admits a job: the ring picks the owner for the job's key, the
// spec is forwarded to it (or run on the local manager when the owner is
// Self), and a coordinator-scoped id is returned. Unreachable candidates
// are skipped — their failures feed the membership's eviction counter —
// and when no ring member accepts the job it falls back to local
// execution, so a lone coordinator still makes progress. A 429 from the
// owner is backpressure, not failure: it propagates to the caller rather
// than stampeding a colder node.
func (c *Coordinator) Submit(spec service.Spec) (string, error) {
	key := JobKey(spec)
	c.mu.Lock()
	c.nextID++
	id := fmt.Sprintf("c%06d", c.nextID)
	c.mu.Unlock()
	// The "route" span roots the job's trace (or joins the submitter's, if
	// the request carried a traceparent header); the owner's "job" span
	// parents under it via the forwarded header, so one trace spans the
	// coordinator and the worker.
	rs := c.tracer.Remote(spec.TraceCtx, "route").Set("job", id).Set("key", shortKey(key))
	j := &routedJob{id: id, spec: spec, key: key, traceCtx: rs.Context()}
	err := c.route(j, rs)
	rs.EndErr(err)
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	c.jobs[id] = j
	c.mu.Unlock()
	j.mu.Lock()
	peer := j.peer
	j.mu.Unlock()
	c.log.Info("job routed", "job", id, "trace", rs.TraceID(), "peer", peer)
	return id, nil
}

// shortKey truncates a routing key for span annotation: content hashes are
// 64 hex chars, of which the first 12 identify the job as well as a git
// short hash does. Site/seed keys contain NUL separators; those are kept
// whole but made printable.
func shortKey(key string) string {
	if len(key) > 12 {
		key = key[:12]
	}
	return strconv.Quote(key)
}

// route assigns j to the best live candidate and submits it there. Called
// for initial submission and again (with j.reroutes incremented) when an
// owner dies. s is the span the routing decision is recorded under (the
// root "route" span, or a "reroute" span after an eviction): each skipped
// or refusing candidate becomes an event on it, so the trace shows *why*
// the job landed where it did.
func (c *Coordinator) route(j *routedJob, s *obs.Span) error {
	spec := j.spec
	spec.Origin = c.cfg.Self
	spec.TraceCtx = s.Context()
	for _, peer := range c.ring.Owners(j.key, c.ring.Len()) {
		if peer == c.cfg.Self {
			return c.routeLocal(j, s)
		}
		if !c.members.Alive(peer) {
			s.Event("peer.dead", obs.Attr{K: "peer", V: peer})
			continue
		}
		// "peer.submit", not "forward": the profiler's forward *pass* span
		// already owns that name, and the two meet in one merged trace.
		fs := s.Child("peer.submit").Set("peer", peer)
		remoteID, err := c.forward(peer, spec)
		fs.EndErr(err)
		if err != nil {
			var se *statusError
			if errors.As(err, &se) {
				// The peer answered: this is an application error
				// (backpressure, invalid spec, oversized trace), not a dead
				// node. Propagate it. A 429 gets its own event carrying the
				// peer's Retry-After and the owner hint, so backpressure is
				// visible in the trace, not just in the client's response.
				if se.Code() == http.StatusTooManyRequests {
					s.Event("peer.backpressure",
						obs.Attr{K: "peer", V: peer},
						obs.Attr{K: "retry_after", V: se.RetryAfter()})
					c.log.Warn("peer backpressure", "job", j.id, "trace", s.TraceID(),
						"peer", peer, "retry_after", se.RetryAfter())
				}
				return err
			}
			s.Event("peer.unreachable",
				obs.Attr{K: "peer", V: peer},
				obs.Attr{K: "error", V: err.Error()})
			c.cForwardFailed.Inc()
			c.peerCounter("forward_failed", peer).Inc()
			c.members.ReportFailure(peer)
			continue
		}
		j.mu.Lock()
		j.peer, j.remoteID = peer, remoteID
		j.lastInfo = service.Info{ID: j.id, Status: service.StatusQueued, Site: j.spec.Site, Criteria: j.spec.Criteria, Node: peer}
		j.mu.Unlock()
		c.cRouted.Inc()
		c.peerCounter("routed", peer).Inc()
		return nil
	}
	// No remote candidate took it: run it here.
	c.cFallbacks.Inc()
	s.Event("local.fallback")
	return c.routeLocal(j, s)
}

func (c *Coordinator) routeLocal(j *routedJob, s *obs.Span) error {
	spec := j.spec
	spec.TraceCtx = s.Context()
	localID, err := c.cfg.Local.Submit(spec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.peer, j.remoteID = "", localID
	j.lastInfo = service.Info{ID: j.id, Status: service.StatusQueued, Site: j.spec.Site, Criteria: j.spec.Criteria, Node: c.cfg.Self}
	j.mu.Unlock()
	c.cLocal.Inc()
	return nil
}

// statusError is a non-2xx response from a peer that was alive enough to
// answer; it carries the peer's status code and error payload through to
// the coordinator's own client.
type statusError struct {
	code       int
	msg        string
	retryAfter string
}

func (e *statusError) Error() string { return e.msg }

// Code returns the peer's HTTP status code.
func (e *statusError) Code() int { return e.code }

// RetryAfter returns the peer's Retry-After header value ("" if none).
func (e *statusError) RetryAfter() string { return e.retryAfter }

// forward submits spec to a peer over the existing single-node API and
// returns the remote job id. The spec's trace context travels as the W3C
// traceparent header — never in the body — so the remote job's spans join
// this coordinator's trace.
func (c *Coordinator) forward(peer string, spec service.Spec) (string, error) {
	var req *http.Request
	var err error
	if len(spec.Trace) > 0 {
		q := url.Values{}
		if spec.Criteria != "" {
			q.Set("criteria", spec.Criteria)
		}
		if spec.Verify {
			q.Set("verify", "1")
		}
		if spec.Origin != "" {
			q.Set("origin", spec.Origin)
		}
		req, err = http.NewRequest(http.MethodPost, peer+"/jobs/trace?"+q.Encode(), bytes.NewReader(spec.Trace))
		if err != nil {
			return "", err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
	} else {
		body, merr := json.Marshal(spec)
		if merr != nil {
			return "", merr
		}
		req, err = http.NewRequest(http.MethodPost, peer+"/jobs", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		req.Header.Set("Content-Type", "application/json")
	}
	obs.InjectContext(req.Header, spec.TraceCtx)
	resp, err := c.client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", err
	}
	var out struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if resp.StatusCode != http.StatusAccepted {
		msg := fmt.Sprintf("cluster: %s: HTTP %d", peer, resp.StatusCode)
		if json.Unmarshal(data, &out) == nil && out.Error != "" {
			msg = out.Error
		}
		return "", &statusError{code: resp.StatusCode, msg: msg, retryAfter: resp.Header.Get("Retry-After")}
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return "", fmt.Errorf("cluster: %s: decoding submit response: %w", peer, err)
	}
	return out.ID, nil
}

// handleEvict re-routes every non-terminal job owned by the evicted peer.
// Acked jobs survive a worker death the same way they survive a worker
// panic: by being run again somewhere else.
func (c *Coordinator) handleEvict(peer string) {
	c.mu.Lock()
	var pending []*routedJob
	for _, j := range c.jobs {
		j.mu.Lock()
		// A job is lost with its worker unless its result already reached
		// the coordinator. That includes jobs observed Done there: the
		// result died with the node, so the job must run again. Jobs that
		// terminally failed/canceled keep that outcome — re-running them
		// would not change it.
		stranded := j.result == nil && (!j.terminal || j.lastInfo.Status == service.StatusDone)
		if j.peer == peer && stranded {
			pending = append(pending, j)
		}
		j.mu.Unlock()
	}
	c.mu.Unlock()
	for _, j := range pending {
		j.mu.Lock()
		j.reroutes++
		reroutes := j.reroutes
		j.terminal = false
		j.mu.Unlock()
		c.cRerouted.Inc()
		c.peerCounter("rerouted_from", peer).Inc()
		// The reroute span joins the job's existing trace (parented on the
		// original route span), so a job that survives a worker death shows
		// the whole odyssey in one tree.
		rs := c.tracer.Remote(j.traceCtx, "reroute").
			Set("job", j.id).Set("from", peer).Set("n", strconv.Itoa(reroutes))
		c.log.Warn("job rerouted", "job", j.id, "trace", rs.TraceID(), "from", peer, "reroutes", reroutes)
		err := c.route(j, rs)
		rs.EndErr(err)
		if err != nil {
			// Every candidate (including local) refused — typically local
			// backpressure. Surface it as a failed job rather than losing it
			// silently.
			j.mu.Lock()
			j.lastInfo = service.Info{ID: j.id, Status: service.StatusFailed, Site: j.spec.Site,
				Criteria: j.spec.Criteria, Error: fmt.Sprintf("re-route after %s died: %v", peer, err)}
			j.terminal = true
			j.mu.Unlock()
		}
	}
}

// lookup finds a routed job.
func (c *Coordinator) lookup(id string) (*routedJob, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

// Status returns a job snapshot under the coordinator's id, with the
// executing node as the owner hint. While the owner is unreachable the
// last observed snapshot is served; the job itself is re-routed when the
// membership evicts the owner.
func (c *Coordinator) Status(id string) (service.Info, error) {
	j, ok := c.lookup(id)
	if !ok {
		return service.Info{}, ErrUnknownJob
	}
	j.mu.Lock()
	peer, remoteID := j.peer, j.remoteID
	last := j.lastInfo
	j.mu.Unlock()
	if peer == "" {
		info, ok := c.cfg.Local.Info(remoteID)
		if !ok {
			return service.Info{}, ErrUnknownJob
		}
		return c.publishInfo(j, info, c.cfg.Self), nil
	}
	info, err := c.fetchInfo(peer, remoteID)
	if err != nil {
		c.members.ReportFailure(peer)
		return last, nil // stale-but-available; eviction will re-route
	}
	return c.publishInfo(j, info, peer), nil
}

// publishInfo rewrites a node-local snapshot into the coordinator's
// namespace and records it as the job's freshest view.
func (c *Coordinator) publishInfo(j *routedJob, info service.Info, node string) service.Info {
	info.ID = j.id
	if info.Node == "" {
		info.Node = node
	}
	j.mu.Lock()
	info.Reroutes = j.reroutes
	j.lastInfo = info
	if info.Status.Terminal() {
		j.terminal = true
	}
	j.mu.Unlock()
	return info
}

func (c *Coordinator) fetchInfo(peer, remoteID string) (service.Info, error) {
	resp, err := c.client.Get(peer + "/jobs/" + remoteID)
	if err != nil {
		return service.Info{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return service.Info{}, fmt.Errorf("cluster: %s: status HTTP %d", peer, resp.StatusCode)
	}
	var info service.Info
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&info); err != nil {
		return service.Info{}, err
	}
	return info, nil
}

// Result returns a finished job's result. The first successful fetch is
// cached on the coordinator, so the result survives the worker dying
// afterwards; a worker dying *before* the fetch re-routes the job and the
// result is recomputed (deterministically, usually as a store hit on
// re-render). ok is false while the job is not done.
func (c *Coordinator) Result(id string) (*service.Result, bool, error) {
	j, ok := c.lookup(id)
	if !ok {
		return nil, false, ErrUnknownJob
	}
	j.mu.Lock()
	if j.result != nil {
		res := j.result
		j.mu.Unlock()
		return res, true, nil
	}
	peer, remoteID := j.peer, j.remoteID
	j.mu.Unlock()
	var res *service.Result
	if peer == "" {
		res, ok = c.cfg.Local.Result(remoteID)
		if !ok {
			return nil, false, nil
		}
	} else {
		var err error
		res, err = c.fetchResult(peer, remoteID)
		if err != nil {
			c.members.ReportFailure(peer)
			return nil, false, nil
		}
		if res == nil {
			return nil, false, nil
		}
	}
	j.mu.Lock()
	j.result = res
	j.terminal = true
	count := res.CacheHit && !j.affinityCounted
	j.affinityCounted = true
	j.mu.Unlock()
	if count {
		// The ring sent this key to a node that already held its
		// artifacts: the affinity scheduler did its job.
		c.cAffinity.Inc()
	}
	return res, true, nil
}

// fetchResult returns (nil, nil) when the job is simply not done yet.
func (c *Coordinator) fetchResult(peer, remoteID string) (*service.Result, error) {
	resp, err := c.client.Get(peer + "/jobs/" + remoteID + "/result")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var res service.Result
		if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&res); err != nil {
			return nil, err
		}
		return &res, nil
	case http.StatusConflict: // known but not done
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	default:
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("cluster: %s: result HTTP %d", peer, resp.StatusCode)
	}
}

// Cancel cancels a job wherever it runs.
func (c *Coordinator) Cancel(id string) bool {
	j, ok := c.lookup(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	peer, remoteID := j.peer, j.remoteID
	j.mu.Unlock()
	if peer == "" {
		return c.cfg.Local.Cancel(remoteID)
	}
	req, err := http.NewRequest(http.MethodDelete, peer+"/jobs/"+remoteID, nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.members.ReportFailure(peer)
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// Jobs snapshots every admitted job, sorted by id.
func (c *Coordinator) Jobs() []service.Info {
	c.mu.Lock()
	ids := make([]string, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	sort.Strings(ids)
	out := make([]service.Info, 0, len(ids))
	for _, id := range ids {
		if info, err := c.Status(id); err == nil {
			out = append(out, info)
		}
	}
	return out
}
