package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced service.Clock (the same pattern as
// internal/service's robustness tests): Sleep blocks on a waiter that
// Advance releases, so probe schedules run without real time passing.
type fakeClock struct {
	mu      sync.Mutex
	now     time.Time
	sleeps  []time.Duration
	waiters []fakeWaiter
}

type fakeWaiter struct {
	deadline time.Time
	ch       chan struct{}
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1700000000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(d time.Duration, stop <-chan struct{}) {
	c.mu.Lock()
	c.sleeps = append(c.sleeps, d)
	if d <= 0 {
		c.mu.Unlock()
		return
	}
	w := fakeWaiter{deadline: c.now.Add(d), ch: make(chan struct{})}
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()
	select {
	case <-w.ch:
	case <-stop:
	}
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	keep := c.waiters[:0]
	for _, w := range c.waiters {
		if w.deadline.After(c.now) {
			keep = append(keep, w)
		} else {
			close(w.ch)
		}
	}
	c.waiters = keep
}

// flakyProbe simulates per-peer health that tests flip at will.
type flakyProbe struct {
	mu   sync.Mutex
	down map[string]bool
}

func (f *flakyProbe) set(peer string, isDown bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down == nil {
		f.down = make(map[string]bool)
	}
	f.down[peer] = isDown
}

func (f *flakyProbe) probe(url string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[url] {
		return errors.New("probe: connection refused")
	}
	return nil
}

func TestMembershipEvictionAndRejoin(t *testing.T) {
	ring := NewRing(0)
	probes := &flakyProbe{}
	var mu sync.Mutex
	var evicted, joined []string
	m := NewMembership(ring, MembershipConfig{
		Peers:         []string{"http://w1", "http://w2"},
		FailThreshold: 3,
		Probe:         probes.probe,
		Clock:         newFakeClock(),
		OnEvict:       func(u string) { mu.Lock(); evicted = append(evicted, u); mu.Unlock() },
		OnJoin:        func(u string) { mu.Lock(); joined = append(joined, u); mu.Unlock() },
	})

	// Optimistic admission: both peers are ring members before any probe.
	if ring.Len() != 2 || !m.Alive("http://w1") || !m.Alive("http://w2") {
		t.Fatalf("peers not admitted optimistically: ring=%v", ring.Nodes())
	}

	probes.set("http://w2", true)
	m.ProbeAll()
	m.ProbeAll()
	if !m.Alive("http://w2") {
		t.Fatal("peer evicted before the failure threshold")
	}
	m.ProbeAll() // third consecutive failure crosses the threshold
	if m.Alive("http://w2") || ring.Has("http://w2") {
		t.Fatal("peer not evicted at the failure threshold")
	}
	mu.Lock()
	if len(evicted) != 1 || evicted[0] != "http://w2" {
		t.Fatalf("OnEvict calls = %v, want [http://w2]", evicted)
	}
	mu.Unlock()
	if ring.Len() != 1 {
		t.Fatalf("ring size after eviction = %d, want 1", ring.Len())
	}

	// An eviction is a routing decision, not amnesia: one good probe
	// re-admits the peer.
	probes.set("http://w2", false)
	m.ProbeAll()
	if !m.Alive("http://w2") || !ring.Has("http://w2") {
		t.Fatal("recovered peer not re-admitted")
	}
	mu.Lock()
	if len(joined) != 1 || joined[0] != "http://w2" {
		t.Fatalf("OnJoin calls = %v, want [http://w2]", joined)
	}
	mu.Unlock()
}

// Router-reported forward failures count toward the same threshold as
// probes: a dead worker stops receiving jobs after FailThreshold failed
// forwards, without waiting for the next probe round.
func TestMembershipReportFailureEvicts(t *testing.T) {
	ring := NewRing(0)
	m := NewMembership(ring, MembershipConfig{
		Peers:         []string{"http://w1"},
		FailThreshold: 2,
		Probe:         func(string) error { return nil },
		Clock:         newFakeClock(),
	})
	m.ReportFailure("http://w1")
	if !m.Alive("http://w1") {
		t.Fatal("evicted below threshold")
	}
	m.ReportFailure("http://w1")
	if m.Alive("http://w1") || ring.Has("http://w1") {
		t.Fatal("not evicted at threshold")
	}
	// Unknown peers are ignored rather than tracked.
	m.ReportFailure("http://stranger")

	// A success resets the streak: two below-threshold failures with a
	// success between them never evict.
	m.reportSuccess("http://w1")
	if !m.Alive("http://w1") {
		t.Fatal("success did not re-admit")
	}
	m.ReportFailure("http://w1")
	m.reportSuccess("http://w1")
	m.ReportFailure("http://w1")
	if !m.Alive("http://w1") {
		t.Fatal("interleaved success did not reset the failure streak")
	}
}

// The probe loop runs on the injectable clock: advancing it by the probe
// interval triggers a round; Stop halts the loop.
func TestMembershipProbeLoopOnClock(t *testing.T) {
	ring := NewRing(0)
	clock := newFakeClock()
	var mu sync.Mutex
	probed := 0
	m := NewMembership(ring, MembershipConfig{
		Peers:         []string{"http://w1"},
		ProbeInterval: time.Second,
		Probe:         func(string) error { mu.Lock(); probed++; mu.Unlock(); return nil },
		Clock:         clock,
	})
	m.Start()
	defer m.Stop()
	waitSleepers(t, clock, 1)
	clock.Advance(time.Second)
	waitProbes(t, &mu, &probed, 1)
	waitSleepers(t, clock, 1)
	clock.Advance(time.Second)
	waitProbes(t, &mu, &probed, 2)
}

func waitSleepers(t *testing.T, c *fakeClock, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		got := len(c.waiters)
		c.mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %d clock sleeper(s)", n)
}

func waitProbes(t *testing.T, mu *sync.Mutex, probed *int, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		got := *probed
		mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %d probe round(s)", n)
}
