// Package postdom computes postdominator trees for control-flow graphs: a
// node n postdominates m iff every path from m to the exit node passes
// through n. Postdominators are the standard ingredient for control
// dependence (Ferrante–Ottenstein–Warren), which the paper's forward pass
// derives "from basic compiler books and articles".
//
// The implementation is the Cooper–Harvey–Kennedy iterative dominator
// algorithm run on the reverse CFG.
package postdom

import (
	"fmt"

	"webslice/internal/cfg"
)

// Tree holds the immediate-postdominator relation for one graph. IPDom[n] is
// the immediate postdominator node index, with IPDom[exit] == -1.
type Tree struct {
	IPDom []int32
}

// Compute builds the postdominator tree of g. Every node of a well-formed
// graph (cfg.Forest.Validate) reaches exit, so every node gets an immediate
// postdominator except exit itself.
func Compute(g *cfg.Graph) *Tree {
	n := g.NumNodes()
	// Post-order of the *reverse* graph starting at Exit, i.e. predecessors
	// become successors. Walking post in reverse yields the RPO sequence, so
	// no separate order slice is materialized.
	rpoNum := make([]int32, n) // node -> RPO position, -1 if unreachable
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	visited := make([]bool, n)
	// Iterative post-order DFS on reverse graph.
	type dfsFrame struct {
		node int32
		next int
	}
	post := make([]int32, 0, n)
	stack := []dfsFrame{{cfg.Exit, 0}}
	visited[cfg.Exit] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		preds := g.Preds[top.node]
		if top.next < len(preds) {
			v := preds[top.next]
			top.next++
			if !visited[v] {
				visited[v] = true
				stack = append(stack, dfsFrame{v, 0})
			}
			continue
		}
		post = append(post, top.node)
		stack = stack[:len(stack)-1]
	}
	for i, u := range post {
		rpoNum[u] = int32(len(post) - 1 - i)
	}

	ipdom := make([]int32, n)
	for i := range ipdom {
		ipdom[i] = -1
	}
	ipdom[cfg.Exit] = cfg.Exit // temporary self-link for the intersect step

	intersect := func(a, b int32) int32 {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = ipdom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = ipdom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for i := len(post) - 1; i >= 0; i-- { // RPO of the reverse graph
			u := post[i]
			if u == cfg.Exit {
				continue
			}
			// "Predecessors" in the reverse graph are g.Succs[u].
			var newIdom int32 = -1
			for _, v := range g.Succs[u] {
				if ipdom[v] == -1 && v != cfg.Exit {
					continue
				}
				if newIdom == -1 {
					newIdom = v
				} else {
					newIdom = intersect(newIdom, v)
				}
			}
			if newIdom != -1 && ipdom[u] != newIdom {
				ipdom[u] = newIdom
				changed = true
			}
		}
	}
	ipdom[cfg.Exit] = -1
	return &Tree{IPDom: ipdom}
}

// PostDominates reports whether a postdominates b (including a == b).
func (t *Tree) PostDominates(a, b int32) bool {
	for b != -1 {
		if a == b {
			return true
		}
		b = t.IPDom[b]
	}
	return false
}

// Validate checks tree sanity against its graph: exit has no postdominator,
// every other node's ipdom is a valid node, and the definition holds on a
// sample: each node's immediate postdominator postdominates all its
// successors.
func (t *Tree) Validate(g *cfg.Graph) error {
	if len(t.IPDom) != g.NumNodes() {
		return fmt.Errorf("postdom: size mismatch %d vs %d nodes", len(t.IPDom), g.NumNodes())
	}
	if t.IPDom[cfg.Exit] != -1 {
		return fmt.Errorf("postdom: exit has ipdom %d", t.IPDom[cfg.Exit])
	}
	for u := range t.IPDom {
		if u == cfg.Exit {
			continue
		}
		ip := t.IPDom[u]
		if ip < 0 || int(ip) >= g.NumNodes() {
			return fmt.Errorf("postdom: node %d has invalid ipdom %d", u, ip)
		}
		for _, v := range g.Succs[u] {
			if !t.PostDominates(ip, v) {
				return fmt.Errorf("postdom: ipdom(%d)=%d does not postdominate successor %d", u, ip, v)
			}
		}
	}
	return nil
}
