package postdom

import (
	"testing"

	"webslice/internal/cfg"
	"webslice/internal/trace"
	"webslice/internal/vm"
)

// graphsFromMachine builds CFGs from a freshly traced machine.
func graphsFromMachine(t *testing.T, m *vm.Machine) *cfg.Forest {
	t.Helper()
	f, err := cfg.Build(m.Tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	return f
}

func diamondGraph(t *testing.T) (*cfg.Graph, trace.FuncID) {
	t.Helper()
	m := vm.New()
	m.Thread(0, "main")
	fn := m.Func("diamond", "test")
	run := func(v uint64) {
		m.Call(fn, func() {
			m.At("head")
			c := m.Const(v)
			if m.Branch(c) {
				m.At("then")
				m.Const(1)
			} else {
				m.At("else")
				m.Const(2)
			}
			m.At("join")
			m.Const(3)
		})
	}
	run(1)
	run(0)
	f := graphsFromMachine(t, m)
	return f.Graphs[fn.ID], fn.ID
}

func TestDiamondPostdominators(t *testing.T) {
	g, _ := diamondGraph(t)
	pd := Compute(g)
	if err := pd.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Locate the branch and its successors (then/else arms) and the join.
	var branch int32 = -1
	for n := int32(0); int(n) < g.NumNodes(); n++ {
		if g.IsBranch[n] {
			branch = n
		}
	}
	if branch < 0 {
		t.Fatal("no branch node")
	}
	succs := g.Succs[branch]
	if len(succs) != 2 {
		t.Fatalf("branch successors = %d", len(succs))
	}
	// The immediate postdominator of the branch must be the join node —
	// neither arm — and must postdominate both arms.
	join := pd.IPDom[branch]
	for _, s := range succs {
		if join == s {
			t.Errorf("ipdom of branch is an arm (%d); arms do not postdominate the branch", s)
		}
		if !pd.PostDominates(join, s) {
			t.Errorf("join %d should postdominate arm %d", join, s)
		}
	}
	// Arms do not postdominate the branch.
	for _, s := range succs {
		if pd.PostDominates(s, branch) {
			t.Errorf("arm %d must not postdominate branch", s)
		}
	}
}

func TestExitPostdominatesEverything(t *testing.T) {
	g, _ := diamondGraph(t)
	pd := Compute(g)
	for n := int32(0); int(n) < g.NumNodes(); n++ {
		if !pd.PostDominates(cfg.Exit, n) {
			t.Errorf("exit must postdominate node %d", n)
		}
	}
	if pd.PostDominates(cfg.Entry, cfg.Exit) {
		t.Error("entry must not postdominate exit")
	}
}

func TestStraightLineChain(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	fn := m.Func("straight", "test")
	m.Call(fn, func() {
		m.Const(1)
		m.Const(2)
		m.Const(3)
	})
	f := graphsFromMachine(t, m)
	g := f.Graphs[fn.ID]
	pd := Compute(g)
	if err := pd.Validate(g); err != nil {
		t.Fatal(err)
	}
	// In a straight line every node's ipdom is its unique successor.
	for n := int32(0); int(n) < g.NumNodes(); n++ {
		if n == cfg.Exit || len(g.Succs[n]) != 1 {
			continue
		}
		if pd.IPDom[n] != g.Succs[n][0] {
			t.Errorf("node %d ipdom %d, want unique successor %d", n, pd.IPDom[n], g.Succs[n][0])
		}
	}
}

func TestLoopPostdominators(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	fn := m.Func("loop", "test")
	m.Call(fn, func() {
		for i := 0; i < 4; i++ {
			m.At("cond")
			var c = m.Imm(1)
			if i == 3 {
				m.At("exitcond")
				c = m.Imm(0)
			}
			m.At("branchsite")
			if !m.Branch(c) {
				break
			}
			m.At("body")
			m.Const(9)
		}
		m.At("after")
		m.Const(10)
	})
	f := graphsFromMachine(t, m)
	g := f.Graphs[fn.ID]
	pd := Compute(g)
	if err := pd.Validate(g); err != nil {
		t.Fatal(err)
	}
	// The after-loop node postdominates the loop body.
	var after, body int32 = -1, -1
	for n := int32(2); int(n) < g.NumNodes(); n++ {
		// after is the node whose successor chain avoids the branch; find
		// it structurally: a non-branch node whose only successor is a Ret
		// or exit-pointing node. Simplest: the node directly preceding exit.
		for _, s := range g.Succs[n] {
			if s == cfg.Exit {
				after = n
			}
		}
		if g.IsBranch[n] {
			for _, s := range g.Succs[n] {
				if s != n && len(g.Preds[s]) >= 1 && !g.IsBranch[s] {
					// candidate arm; the body loops back
					for _, ss := range g.Succs[s] {
						if ss < s && ss != cfg.Exit {
							body = s
						}
					}
				}
			}
		}
	}
	if after < 0 {
		t.Fatal("no exit-adjacent node")
	}
	if body >= 0 && !pd.PostDominates(after, body) {
		t.Errorf("after-loop node %d should postdominate loop body %d", after, body)
	}
}

// TestPostdomOnAllGraphsOfBigTrace validates the postdominator definition on
// every function of a larger mixed trace (property-style structural check).
func TestPostdomOnAllGraphsOfBigTrace(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	helper := m.Func("helper", "test")
	top := m.Func("top", "test")
	for round := 0; round < 5; round++ {
		m.Call(top, func() {
			m.At("r")
			c := m.Const(uint64(round % 2))
			if m.Branch(c) {
				m.At("odd")
				m.Call(helper, func() {
					m.At("h")
					for j := 0; j < round+1; j++ {
						m.At("hl")
						cc := m.OpImm(0 /* add */, m.Const(uint64(j)), 1)
						_ = cc
					}
				})
			} else {
				m.At("even")
				m.Const(4)
			}
			m.At("tail")
		})
	}
	f := graphsFromMachine(t, m)
	for fnID, g := range f.Graphs {
		pd := Compute(g)
		if err := pd.Validate(g); err != nil {
			t.Errorf("fn %d: %v", fnID, err)
		}
	}
}
