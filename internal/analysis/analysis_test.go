package analysis

import (
	"testing"

	"webslice/internal/browser/ns"
	"webslice/internal/core"
	"webslice/internal/isa"
	"webslice/internal/slicer"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

func TestCategoryMapping(t *testing.T) {
	cases := map[string]string{
		ns.V8:        "JavaScript",
		ns.Debug:     "Debugging",
		ns.IPC:       "IPC",
		ns.Threading: "Multi-threading",
		ns.CC:        "Compositing",
		ns.Skia:      "Graphics",
		ns.CSS:       "CSS",
		ns.Layout:    "CSS",
		ns.Loop:      "Other",
		ns.Net:       "Other",
		"":           "",
		"mystery":    "",
	}
	for in, want := range cases {
		if got := CategoryOf(in); got != want {
			t.Errorf("CategoryOf(%q) = %q, want %q", in, got, want)
		}
	}
	if len(Categories) != 8 {
		t.Errorf("the paper has 8 categories, got %d", len(Categories))
	}
}

// traceWithWaste builds a machine with one useful and two wasted functions
// in different namespaces.
func traceWithWaste(t *testing.T) (*vm.Machine, *slicer.Result) {
	t.Helper()
	m := vm.New()
	m.Thread(0, "main")
	tile := m.Tile.Alloc(64)
	useful := m.Func("paint", ns.Skia)
	wasteJS := m.Func("compile", ns.V8)
	wasteNone := m.Func("helper", ns.None)
	m.Call(useful, func() {
		v := m.Const(5)
		m.StoreU32(tile, v)
	})
	m.Call(wasteJS, func() {
		for i := 0; i < 10; i++ {
			m.At("w")
			m.Const(uint64(i))
		}
	})
	m.Call(wasteNone, func() {
		for i := 0; i < 10; i++ {
			m.At("w")
			m.Const(uint64(i))
		}
	})
	m.MarkPixels(vmem.Range{Addr: tile, Size: 4})
	p := core.NewProfiler(m.Tr)
	res, err := p.PixelSlice()
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func TestCategorize(t *testing.T) {
	m, res := traceWithWaste(t)
	d := Categorize(m.Tr, res)
	if d.UnnecessaryTotal == 0 {
		t.Fatal("no unnecessary instructions found")
	}
	if d.Share["JavaScript"] <= 0 {
		t.Error("JS waste not categorized")
	}
	if d.CoveragePct >= 100 {
		t.Error("namespace-less waste should make coverage < 100%")
	}
	var sum float64
	for _, c := range Categories {
		sum += d.Share[c]
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("category shares must sum to 1, got %v", sum)
	}
}

func TestTopWasted(t *testing.T) {
	m, res := traceWithWaste(t)
	top := TopWasted(m.Tr, res, 2)
	if len(top) != 2 {
		t.Fatalf("want 2 rows, got %d", len(top))
	}
	if top[0].Wasted < top[1].Wasted {
		t.Error("rows must be sorted by waste")
	}
	for _, fw := range top {
		if fw.Name == "paint" && fw.Wasted > 1 {
			t.Error("useful function should not lead the waste list")
		}
	}
}

func TestCPUTimeline(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	m.Thread(1, "other")
	// 100 instructions, idle 100k cycles, 100 more on the other thread.
	for i := 0; i < 100; i++ {
		m.Const(1)
	}
	m.Idle(100_000)
	m.Switch(1)
	for i := 0; i < 100; i++ {
		m.Const(1)
	}
	points := CPUTimeline(m.Tr, 0, 10)
	if len(points) == 0 {
		t.Fatal("no samples")
	}
	if points[0].UtilizationPct <= 0 {
		t.Error("first window should show main-thread activity")
	}
	// Windows in the idle gap must be 0 for thread 0.
	mid := points[len(points)/2]
	if mid.UtilizationPct != 0 {
		t.Errorf("idle window shows %.1f%% utilization", mid.UtilizationPct)
	}
	for _, p := range points {
		if p.UtilizationPct < 0 || p.UtilizationPct > 100 {
			t.Errorf("utilization out of range: %v", p)
		}
	}
}

func TestBackwardCurve(t *testing.T) {
	res := &slicer.Result{
		Progress: []slicer.ProgressPoint{
			{Processed: 1000, Sliced: 500, MainProcessed: 400, MainSliced: 100},
			{Processed: 2000, Sliced: 800, MainProcessed: 900, MainSliced: 450},
		},
	}
	curve := BackwardCurve(res)
	if len(curve) != 2 {
		t.Fatalf("len = %d", len(curve))
	}
	if curve[0].AllPct != 50 || curve[1].AllPct != 40 {
		t.Errorf("all pct wrong: %+v", curve)
	}
	if curve[1].MainPct != 50 {
		t.Errorf("main pct wrong: %+v", curve)
	}
}

func TestByteUsagePercent(t *testing.T) {
	u := ByteUsage{UnusedBytes: 58, TotalBytes: 100}
	if u.Percent() != 58 {
		t.Errorf("Percent = %v", u.Percent())
	}
	if (ByteUsage{}).Percent() != 0 {
		t.Error("empty usage should be 0%")
	}
}

var _ = isa.KindNop
