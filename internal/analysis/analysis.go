// Package analysis post-processes traces, slices, and engine state into the
// paper's reported quantities: the namespace categorization of unnecessary
// computations (Figure 5), unused JS/CSS bytes (Table I), main-thread CPU
// utilization over a session (Figure 2), and backward-pass slicing-percentage
// curves (Figure 4).
package analysis

import (
	"sort"

	"webslice/internal/browser"
	"webslice/internal/browser/ns"
	"webslice/internal/slicer"
	"webslice/internal/trace"
)

// Categories in the paper's Figure 5 order.
var Categories = []string{
	"JavaScript", "Debugging", "IPC", "Multi-threading",
	"Compositing", "Graphics", "CSS", "Other",
}

// CategoryOf maps a function namespace to a Figure 5 category ("" means the
// instruction cannot be categorized, like the paper's 26-47% of functions
// without a usable namespace).
func CategoryOf(namespace string) string {
	switch namespace {
	case ns.V8:
		return "JavaScript"
	case ns.Debug:
		return "Debugging"
	case ns.IPC:
		return "IPC"
	case ns.Threading:
		return "Multi-threading"
	case ns.CC:
		return "Compositing"
	case ns.Skia:
		return "Graphics"
	case ns.CSS, ns.Layout:
		return "CSS"
	case ns.Loop, ns.Net, ns.NetError:
		return "Other"
	default:
		return ""
	}
}

// CategoryDist is the distribution of potentially unnecessary instructions.
type CategoryDist struct {
	// Share maps category -> fraction (0..1) of the *categorized*
	// unnecessary instructions, as Figure 5 normalizes.
	Share map[string]float64
	// CoveragePct is how many unnecessary instructions had a namespace at
	// all (the paper: 74/59/53/61%).
	CoveragePct float64
	// UnnecessaryTotal counts instructions outside the slice.
	UnnecessaryTotal int
}

// Categorize groups the non-slice instructions by namespace category. It
// works from the result's per-function tallies rather than a record walk —
// a record's category is a function of its FuncID alone, so summing
// ByFunc−SliceByFunc per function is arithmetically identical to visiting
// every non-slice record, and it keeps working against the shell trace of a
// streaming (v3) slice, where no record slice is materialized.
func Categorize(t *trace.Trace, res *slicer.Result) CategoryDist {
	counts := make(map[string]int)
	total, categorized := 0, 0
	for fn, n := range res.ByFunc {
		unnecessary := n - res.SliceByFunc[fn]
		if unnecessary <= 0 {
			continue
		}
		total += unnecessary
		cat := CategoryOf(t.Namespace(fn))
		if cat == "" {
			continue
		}
		categorized += unnecessary
		counts[cat] += unnecessary
	}
	d := CategoryDist{Share: make(map[string]float64), UnnecessaryTotal: total}
	if categorized > 0 {
		for c, n := range counts {
			d.Share[c] = float64(n) / float64(categorized)
		}
	}
	if total > 0 {
		d.CoveragePct = 100 * float64(categorized) / float64(total)
	}
	return d
}

// ByteUsage is the Table I accounting for one session.
type ByteUsage struct {
	UnusedBytes int
	TotalBytes  int
}

// Percent is the unused fraction in percent.
func (u ByteUsage) Percent() float64 {
	if u.TotalBytes == 0 {
		return 0
	}
	return 100 * float64(u.UnusedBytes) / float64(u.TotalBytes)
}

// UnusedBytes measures unused JS+CSS code bytes after a session, the way the
// paper's Table I does with DevTools coverage: bytes of never-executed
// function declarations plus bytes of never-matched style rules. Top-level
// script code and stylesheet overhead count as used (the engine consumed
// them to build the page).
func UnusedBytes(b *browser.Browser) ByteUsage {
	var u ByteUsage
	u.TotalBytes = b.JS.TotalSrcBytes
	for _, f := range b.JS.Funcs {
		if isToplevel(f.Name) {
			continue
		}
		if !f.Executed {
			u.UnusedBytes += f.SrcBytes()
		}
	}
	for _, sh := range b.CSS.Sheets {
		u.TotalBytes += sh.Bytes
		for _, r := range sh.Rules {
			if !r.Used {
				u.UnusedBytes += r.SrcBytes
			}
		}
	}
	return u
}

func isToplevel(name string) bool {
	const suffix = "::toplevel"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}

// FaultWasteResult measures the error-handling work of one run: instructions
// attributed to the net/error namespace (timeouts, retries, backoff
// computation, partial-body scans, stale-response discards, failure
// bookkeeping), split by whether the pixel slice needed them. Error-path work
// is almost entirely waste by the paper's criterion — it produced no pixels —
// and this quantifies how much a degraded network inflates the unnecessary
// fraction relative to a clean load.
type FaultWasteResult struct {
	// ErrorPathInstr counts net/error-namespace instructions.
	ErrorPathInstr int
	// InSlice / OutOfSlice split ErrorPathInstr by pixel-slice membership.
	InSlice, OutOfSlice int
	// Total is the whole trace length, for fractions.
	Total int
}

// ErrorPathPct is the error-path share of the whole trace, in percent.
func (f FaultWasteResult) ErrorPathPct() float64 {
	if f.Total == 0 {
		return 0
	}
	return 100 * float64(f.ErrorPathInstr) / float64(f.Total)
}

// WastedPct is the fraction of error-path instructions outside the slice.
func (f FaultWasteResult) WastedPct() float64 {
	if f.ErrorPathInstr == 0 {
		return 0
	}
	return 100 * float64(f.OutOfSlice) / float64(f.ErrorPathInstr)
}

// FaultWaste scans a trace for net/error-namespace instructions and splits
// them by pixel-slice membership.
func FaultWaste(t *trace.Trace, res *slicer.Result) FaultWasteResult {
	out := FaultWasteResult{Total: t.Len()}
	for i := range t.Recs {
		if t.Namespace(t.Recs[i].Func()) != ns.NetError {
			continue
		}
		out.ErrorPathInstr++
		if res.InSlice.Get(i) {
			out.InSlice++
		} else {
			out.OutOfSlice++
		}
	}
	return out
}

// CPUPoint is one utilization sample.
type CPUPoint struct {
	TimeMs         uint64
	UtilizationPct float64
}

// CPUTimeline computes per-window CPU utilization of one thread over the
// session (Figure 2): busy cycles of that thread per window divided by the
// window length, on the virtual clock.
func CPUTimeline(t *trace.Trace, tid uint8, windowMs uint64) []CPUPoint {
	const cyclesPerMs = 1000
	window := windowMs * cyclesPerMs
	if window == 0 || t.Len() == 0 {
		return nil
	}
	end := t.EndCycle()
	buckets := make([]uint64, end/window+1)
	for i := range t.Recs {
		if t.Recs[i].TID != tid {
			continue
		}
		c := t.CycleAt(i)
		buckets[c/window]++
	}
	out := make([]CPUPoint, len(buckets))
	for i, busy := range buckets {
		pct := 100 * float64(busy) / float64(window)
		if pct > 100 {
			pct = 100
		}
		out[i] = CPUPoint{TimeMs: uint64(i) * windowMs, UtilizationPct: pct}
	}
	return out
}

// CurvePoint is one Figure 4 sample: x is millions of instructions processed
// by the backward pass (x=0 is the end of the trace), with the cumulative
// slice percentage for all threads and for the main thread.
type CurvePoint struct {
	XMInstr float64
	AllPct  float64
	MainPct float64
}

// BackwardCurve converts a slice result's progress samples into the
// Figure 4 series.
func BackwardCurve(res *slicer.Result) []CurvePoint {
	out := make([]CurvePoint, 0, len(res.Progress))
	for _, p := range res.Progress {
		cp := CurvePoint{XMInstr: float64(p.Processed) / 1e6}
		if p.Processed > 0 {
			cp.AllPct = 100 * float64(p.Sliced) / float64(p.Processed)
		}
		if p.MainProcessed > 0 {
			cp.MainPct = 100 * float64(p.MainSliced) / float64(p.MainProcessed)
		}
		out = append(out, cp)
	}
	return out
}

// TopWastedFunctions lists the functions contributing the most non-slice
// instructions (a diagnostic beyond the paper's tables, used by the deadcode
// example and the categorize command).
type FunctionWaste struct {
	Name      string
	Namespace string
	Wasted    int
	Total     int
}

// TopWasted returns the n functions with the most instructions outside the
// slice.
func TopWasted(t *trace.Trace, res *slicer.Result, n int) []FunctionWaste {
	var out []FunctionWaste
	for fn, total := range res.ByFunc {
		wasted := total - res.SliceByFunc[fn]
		if wasted == 0 {
			continue
		}
		out = append(out, FunctionWaste{
			Name:      t.FuncName(fn),
			Namespace: t.Namespace(fn),
			Wasted:    wasted,
			Total:     total,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Wasted > out[j].Wasted })
	if len(out) > n {
		out = out[:n]
	}
	return out
}
