package sites

import (
	"fmt"

	"webslice/internal/browser"
	"webslice/internal/content"
)

// rng is a splitmix64 generator: tiny, stateless between sites, and — unlike
// math/rand's default source — guaranteed stable across Go releases, so a
// property-test failure reported by seed reproduces forever.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// between returns a value in [lo, hi].
func (r *rng) between(lo, hi int) int { return lo + r.intn(hi-lo+1) }

func (r *rng) chance(pct int) bool { return r.intn(100) < pct }

// Random synthesizes a deterministic mini-site from a seed: a small page
// with randomized DOM shape (sections, images, panes, occluded layers),
// unused CSS/JS fractions, heartbeat timers, and browser profile, optionally
// followed by a randomized browse session over the handlers that exist. The
// sites run the full real browser pipeline in well under a second each, so
// the property-test harness can push dozens of structurally diverse traces
// through slice→replay→diff per run. The same seed always builds the same
// site (and hence the same trace bytes).
func Random(seed uint64) Benchmark {
	r := &rng{s: seed * 0x9e3779b97f4a7c15}
	name := fmt.Sprintf("rand-%d", seed)

	spec := pageSpec{
		name: name, host: fmt.Sprintf("rand%d.example", seed),
		vw: 320 + 64*r.intn(3), vh: 240 + 80*r.intn(3),
		sections:        r.intn(3),
		itemsPerSection: r.between(1, 2),
		images:          r.intn(3),
		imageKB:         r.between(1, 2),
		imgW:            64 + 32*r.intn(3), imgH: 48 + 32*r.intn(3),
		imgLatencyMs: 40 * r.between(1, 4),
		promoLayer:   r.chance(40),
		newsPane:     r.chance(35),
		searchBox:    r.chance(50),
		canvasPane:   r.chance(20),
		cssUnused:    r.intn(10),
		cssDecls:     r.between(2, 4),
		heartbeats:   r.intn(2),
		hbPeriodMs:   100 * r.between(2, 8),
		usedIters:    r.between(5, 20),
	}
	if spec.sections > 0 {
		spec.sectionMinHeight = 80 + 40*r.intn(4)
	}
	for li, n := 0, r.between(1, 2); li < n; li++ {
		spec.libs = append(spec.libs, libSpec{
			name:       fmt.Sprintf("r%dl%d", seed%1000, li),
			used:       r.between(1, 3),
			browse:     r.intn(3),
			dead:       r.intn(5),
			bytesPerFn: 60 * r.between(1, 3),
			iters:      r.between(5, 20),
			late:       30 * r.between(1, 4),
		})
	}

	site := build(spec, Options{Scale: 1})
	if r.chance(50) {
		site.Session = randomSession(r, spec)
	}

	p := browser.DefaultProfile()
	p.RasterWorkers = r.between(1, 3)
	p.PoolWorkers = r.between(1, 2)
	p.DebugVerbosity = r.intn(5)
	p.IPCPayload = 256 * r.between(1, 4)
	p.FrameOverhead = r.between(1, 3)
	p.PrepaintFactor = 1
	p.IdleFrames = r.intn(8)
	p.NetWastePasses = r.intn(2)
	p.DecodeWastePasses = r.intn(2)
	p.GCSweeps = r.intn(4)
	return Benchmark{Name: name, Site: site, Profile: p}
}

// randomSession scripts a short randomized interaction over the handlers the
// page actually wired (menu and photo-roll always exist; news/search/zoom
// only with their panes).
func randomSession(r *rng, spec pageSpec) []content.Action {
	targets := []string{"menu-btn", "roll-next"}
	if spec.newsPane {
		targets = append(targets, "news-next")
	}
	if spec.canvasPane {
		targets = append(targets, "zoom-in")
	}
	var acts []content.Action
	for i, n := 0, r.between(1, 4); i < n; i++ {
		think := 200 * r.between(1, 6)
		switch k := r.intn(4); {
		case k == 0 && spec.searchBox:
			acts = append(acts, content.Action{Kind: content.TypeText, Text: "abc"[:r.between(1, 3)], ThinkMs: think})
		case k == 1:
			acts = append(acts, content.Action{Kind: content.Scroll, DeltaY: 60 * r.between(-4, 8), ThinkMs: think})
		case k == 2:
			acts = append(acts, content.Action{Kind: content.Wait, ThinkMs: think})
		default:
			acts = append(acts, content.Action{Kind: content.Click, TargetID: targets[r.intn(len(targets))], ThinkMs: think})
		}
	}
	return acts
}
