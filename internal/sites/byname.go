package sites

import "fmt"

// ByName returns the named benchmark — the lookup the CLI and the slicing
// service share. Bing is always a load-and-browse session (its definition
// depends on the browse actions), the other sites honor o.Browse.
func ByName(name string, o Options) (Benchmark, error) {
	switch name {
	case "amazon-desktop":
		return AmazonDesktop(o), nil
	case "amazon-mobile":
		return AmazonMobile(o), nil
	case "maps":
		return GoogleMaps(o), nil
	case "bing":
		o.Browse = true
		return Bing(o), nil
	default:
		return Benchmark{}, fmt.Errorf("unknown site %q (want one of %v)", name, Names())
	}
}

// Names lists the benchmark names ByName accepts.
func Names() []string {
	return []string{"amazon-desktop", "amazon-mobile", "maps", "bing"}
}
