package sites

import "testing"

func TestPickURLVariesWithSeed(t *testing.T) {
	urls := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	seen := map[string]bool{}
	for seed := uint64(0); seed < 64; seed++ {
		seen[pickURL(urls, seed, 1)] = true
	}
	if len(seen) < 4 {
		t.Errorf("pickURL barely varies with the seed: hit only %d of 8 urls", len(seen))
	}
}
