package sites

import (
	"webslice/internal/browser"
	"webslice/internal/content"
)

// The numbers below are the calibration result: at Scale=1 each benchmark's
// trace length, per-thread shares, slice percentages, and unused-byte
// fractions land near the paper's Table I/II values (see EXPERIMENTS.md for
// the measured comparison).

// AmazonDesktop is the content-rich desktop storefront: many product
// sections, large JS libraries mostly unused at load, ~30 images, and a
// fixed header that fully occludes a promo layer.
func AmazonDesktop(o Options) Benchmark {
	spec := pageSpec{
		name: "amazon-desktop", host: "amazon.example",
		vw: 1280, vh: 720,
		sections: o.scaleInt(26), itemsPerSection: 8, sectionMinHeight: 260,
		images: o.scaleInt(24), imageKB: 24, imgW: 160, imgH: 140, imgLatencyMs: 350,
		promoLayer: true,
		libs: []libSpec{
			{"jq", 10, 4, 34, 2100, 160, 120},     // jQuery-like: mostly dead weight
			{"ux", 8, 4, 40, 2100, 160, 160},      // UI framework
			{"rec", 6, 2, 28, 2100, 200, 200},     // recommendations
			{"metrics", 3, 2, 18, 2100, 120, 140}, // analytics
		},
		cssUnused: 170, cssDecls: 5,
		heartbeats: 2, hbPeriodMs: 900, usedIters: 150,
	}
	site := build(spec, o)
	if o.Browse {
		site.Session = amazonSession()
	}
	p := browser.DefaultProfile()
	p.RasterWorkers = 3
	p.PoolWorkers = 2
	p.DebugVerbosity = 9
	p.IPCPayload = 1400
	p.FrameOverhead = 3
	p.PrepaintFactor = 1
	p.IdleFrames = o.scaleInt(260)
	if o.Browse {
		p.IdleFrames = o.scaleInt(900)
	}
	p.NetWastePasses = 2
	p.DecodeWastePasses = 2
	p.GCSweeps = 6
	return Benchmark{Name: "Amazon (desktop view): Load", Site: site, Profile: p}
}

func amazonSession() []content.Action {
	return []content.Action{
		{Kind: content.Scroll, DeltaY: 600, ThinkMs: 2600},
		{Kind: content.Scroll, DeltaY: 500, ThinkMs: 1800},
		{Kind: content.Scroll, DeltaY: -1100, ThinkMs: 2200},
		{Kind: content.Click, TargetID: "roll-next", ThinkMs: 3400},
		{Kind: content.Click, TargetID: "roll-next", ThinkMs: 2800},
		{Kind: content.Click, TargetID: "menu-btn", ThinkMs: 3600},
		{Kind: content.Wait, ThinkMs: 2400},
	}
}

// AmazonMobile is the same storefront in the emulated 360×640 mobile view:
// a much simpler first view, a long narrow page (most raster work lands
// below the fold, giving the paper's very low mobile rasterizer slice), and
// a smaller mobile JS bundle.
func AmazonMobile(o Options) Benchmark {
	spec := pageSpec{
		name: "amazon-mobile", host: "m.amazon.example",
		vw: 360, vh: 640,
		sections: o.scaleInt(22), itemsPerSection: 4, sectionMinHeight: 300,
		images: o.scaleInt(20), imageKB: 26, imgW: 360, imgH: 330, imgLatencyMs: 420,
		promoLayer: true,
		libs: []libSpec{
			{"mjq", 8, 3, 26, 800, 130, 120},
			{"mux", 6, 3, 30, 800, 130, 170},
			{"mmetrics", 3, 2, 14, 800, 110, 140},
		},
		cssUnused: 110, cssDecls: 5,
		heartbeats: 2, hbPeriodMs: 800, usedIters: 120,
	}
	site := build(spec, o)
	if o.Browse {
		site.Session = amazonSession()
	}
	p := browser.DefaultProfile()
	p.RasterWorkers = 2
	p.PoolWorkers = 2
	p.DebugVerbosity = 8
	p.IPCPayload = 1200
	p.FrameOverhead = 3
	p.PrepaintFactor = 1 // tiny viewport: most of the tall page is never rastered
	p.IdleFrames = o.scaleInt(250)
	p.NetWastePasses = 2
	p.DecodeWastePasses = 3
	p.GCSweeps = 5
	return Benchmark{Name: "Amazon (mobile view): Load", Site: site, Profile: p}
}

// GoogleMaps is the JS-heavy application: a very large script payload (the
// paper measured 3.9 MB of JS+CSS, about half unused), a viewport-sized
// tile pane of map images, many small layers, and little rasterizer work.
func GoogleMaps(o Options) Benchmark {
	spec := pageSpec{
		name: "maps", host: "maps.example",
		vw: 1280, vh: 720,
		sections: 0, itemsPerSection: 0, sectionMinHeight: 0,
		images: o.scaleInt(15), imageKB: 30, imgW: 256, imgH: 256, imgLatencyMs: 300,
		canvasPane: true, searchBox: true,
		libs: []libSpec{
			{"gl", 16, 4, 48, 1700, 240, 150},    // renderer core
			{"geo", 10, 3, 44, 1700, 200, 200},   // geometry/projection
			{"places", 4, 3, 40, 1700, 160, 260}, // places/search, mostly deferred
			{"gmx", 3, 2, 30, 1700, 140, 180},    // metrics/experiments
		},
		cssUnused: 150, cssDecls: 5,
		heartbeats: 3, hbPeriodMs: 700, usedIters: 260,
	}
	site := build(spec, o)
	if o.Browse {
		site.Session = []content.Action{
			{Kind: content.Scroll, DeltaY: 256, ThinkMs: 2500}, // pan
			{Kind: content.Scroll, DeltaY: 256, ThinkMs: 2000},
			{Kind: content.Click, TargetID: "zoom-in", ThinkMs: 2600},
			{Kind: content.Scroll, DeltaY: -512, ThinkMs: 2400},
			{Kind: content.Wait, ThinkMs: 3000},
		}
		site.BrowseResources = mapsBrowseResources(o)
	}
	p := browser.DefaultProfile()
	p.RasterWorkers = 2
	p.PoolWorkers = 2
	p.DebugVerbosity = 9
	p.IPCPayload = 1400
	p.FrameOverhead = 5
	p.PrepaintFactor = 1
	p.IdleFrames = o.scaleInt(300)
	if o.Browse {
		p.IdleFrames = o.scaleInt(900)
	}
	p.NetWastePasses = 2
	p.DecodeWastePasses = 2
	p.GCSweeps = 8
	return Benchmark{Name: "Google Maps: Load", Site: site, Profile: p}
}

func mapsBrowseResources(o Options) []*content.Resource {
	// Panning pulls a second code bundle, most of which does run (the paper
	// measured maps' unused fraction dropping from 49% to 43% while total
	// bytes grew).
	lib := genJSLib("pan", o.scaleInt(22), 0, o.scaleInt(5), 1700, 180)
	src := lib.Source + callAll(lib.UsedFns)
	return []*content.Resource{
		{URL: "https://maps.example/lib/pan.js", Type: content.JS, Body: []byte(src), LatencyMs: 180},
	}
}

// Bing is the load-and-browse benchmark: a lighter page but a 30-second
// session — open/close the top-right menu, roll the news pane, type a search
// term — whose interactions dominate the trace, as in the paper (10.5 B
// instructions vs 1.7 B for the load alone).
func Bing(o Options) Benchmark {
	spec := pageSpec{
		name: "bing", host: "bing.example",
		vw: 1280, vh: 720,
		sections: o.scaleInt(3), itemsPerSection: 4, sectionMinHeight: 220,
		images: o.scaleInt(8), imageKB: 18, imgW: 200, imgH: 150, imgLatencyMs: 280,
		newsPane: true, searchBox: true, promoLayer: true,
		libs: []libSpec{
			{"bx", 6, 5, 14, 700, 150, 110},
			{"bnews", 3, 4, 10, 700, 150, 150},
		},
		cssUnused: 55, cssDecls: 4,
		heartbeats: 46, hbPeriodMs: 640, usedIters: 220,
	}
	if !o.Browse {
		spec.heartbeats = 4
	}
	site := build(spec, o)
	site.Session = nil
	if o.Browse {
		site.Session = []content.Action{
			{Kind: content.Click, TargetID: "menu-btn", ThinkMs: 3200},
			{Kind: content.Click, TargetID: "menu-btn", ThinkMs: 2600},
			{Kind: content.Click, TargetID: "news-next", ThinkMs: 4200},
			{Kind: content.TypeText, Text: "weather", ThinkMs: 5200},
			{Kind: content.Wait, ThinkMs: 6000},
		}
		site.BrowseResources = []*content.Resource{
			func() *content.Resource {
				lib := genJSLib("bsuggest", o.scaleInt(5), 0, o.scaleInt(4), 700, 160)
				src := lib.Source + callAll(lib.UsedFns)
				return &content.Resource{URL: "https://bing.example/lib/bsuggest.js", Type: content.JS, Body: []byte(src), LatencyMs: 150}
			}(),
		}
	}
	p := browser.DefaultProfile()
	p.RasterWorkers = 2
	p.PoolWorkers = 2
	p.DebugVerbosity = 8
	p.IPCPayload = 1200
	p.FrameOverhead = 3
	p.PrepaintFactor = 2
	p.IdleFrames = o.scaleInt(1500)
	if !o.Browse {
		p.IdleFrames = o.scaleInt(140)
	}
	p.NetWastePasses = 2
	p.DecodeWastePasses = 2
	p.GCSweeps = 10
	return Benchmark{Name: "Bing: Load + Browse", Site: site, Profile: p}
}

// TableII returns the paper's four Table II benchmarks at the given scale.
func TableII(scale float64) []Benchmark {
	return []Benchmark{
		AmazonDesktop(Options{Scale: scale}),
		AmazonMobile(Options{Scale: scale}),
		GoogleMaps(Options{Scale: scale}),
		Bing(Options{Scale: scale, Browse: true}),
	}
}

// TableI returns the Table I site set: Amazon (desktop), Bing, and Google
// Maps, in load-only and load+browse variants.
func TableI(scale float64) []struct {
	Name                string
	Load, LoadAndBrowse Benchmark
} {
	return []struct {
		Name                string
		Load, LoadAndBrowse Benchmark
	}{
		{"Amazon", AmazonDesktop(Options{Scale: scale}), AmazonDesktop(Options{Scale: scale, Browse: true})},
		{"Bing", Bing(Options{Scale: scale}), Bing(Options{Scale: scale, Browse: true})},
		{"Google Maps", GoogleMaps(Options{Scale: scale}), GoogleMaps(Options{Scale: scale, Browse: true})},
	}
}
