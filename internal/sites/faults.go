package sites

import (
	"sort"
	"strings"

	"webslice/internal/browser/net"
	"webslice/internal/content"
)

// FaultyVariant returns the benchmark with a deterministic degraded-network
// profile attached: one stylesheet fails permanently, one image fails
// permanently, one library script suffers a transient connection reset, one
// image suffers a transient 503, and one resource gets a latency spike that
// outlasts the request timeout. The choices depend only on the seed and the
// site's sorted URL list, so the same seed reproduces the same trace.
func FaultyVariant(b Benchmark, seed uint64) Benchmark {
	plan := net.NewFaultPlan(seed)
	css := urlsOfType(b.Site, content.CSS)
	imgs := urlsOfType(b.Site, content.Image)
	// Scripts other than the wiring script, which registers the session's
	// event handlers: dropping it would change what the session can do, and
	// the experiment wants a degraded render, not a different session.
	var libs []string
	for _, u := range urlsOfType(b.Site, content.JS) {
		if !strings.HasSuffix(u, "/wire.js") {
			libs = append(libs, u)
		}
	}

	if len(css) > 0 {
		plan.Set(pickURL(css, seed, 0), net.Fault{Kind: net.FaultDrop, Times: -1})
	}
	if len(imgs) > 0 {
		plan.Set(pickURL(imgs, seed, 1), net.Fault{Kind: net.Fault5xx, Times: -1})
	}
	if len(libs) > 0 {
		plan.Set(pickURL(libs, seed, 2), net.Fault{Kind: net.FaultReset, Times: 1})
	}
	if len(imgs) > 1 {
		plan.Set(pickDistinct(imgs, seed, 3, pickURL(imgs, seed, 1)),
			net.Fault{Kind: net.Fault5xx, Times: 1})
	}
	if len(imgs) > 2 {
		used := map[string]bool{
			pickURL(imgs, seed, 1):                              true,
			pickDistinct(imgs, seed, 3, pickURL(imgs, seed, 1)): true,
		}
		for _, u := range imgs {
			if !used[u] {
				// A latency spike beyond the request timeout: the first
				// attempt is abandoned, its late response discarded as stale.
				plan.Set(u, net.Fault{Kind: net.FaultSlow, Times: 1, ExtraLatencyMs: 2500})
				break
			}
		}
	}
	b.Name += " [faulty]"
	b.Faults = plan
	return b
}

// urlsOfType lists a site's resource URLs of one type, sorted (map iteration
// order must not leak into the fault plan).
func urlsOfType(s *content.Site, t content.ResourceType) []string {
	var out []string
	for u, r := range s.Resources {
		if r.Type == t && u != s.URL {
			out = append(out, u)
		}
	}
	sort.Strings(out)
	return out
}

// pickURL chooses one URL from a sorted list, deterministically in the seed
// and a per-slot salt.
func pickURL(urls []string, seed uint64, slot uint64) string {
	h := net.HashURL("slot") ^ (seed + 0x9e3779b97f4a7c15*(slot+1))
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return urls[h%uint64(len(urls))]
}

// pickDistinct is pickURL avoiding one already-chosen URL.
func pickDistinct(urls []string, seed uint64, slot uint64, avoid string) string {
	u := pickURL(urls, seed, slot)
	if u != avoid {
		return u
	}
	for _, v := range urls {
		if v != avoid {
			return v
		}
	}
	return u
}
