package sites

import (
	"strings"
	"testing"

	"webslice/internal/browser"
	"webslice/internal/browser/js"
	"webslice/internal/content"
)

const testScale = 0.06

func TestAllBenchmarksRender(t *testing.T) {
	for _, bm := range TableII(testScale) {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			b := browser.New(bm.Site, bm.Profile)
			b.RunSession()
			for _, err := range b.Errors {
				t.Fatalf("pipeline error: %v", err)
			}
			if b.DOM.Count() < 10 {
				t.Errorf("DOM too small: %d nodes", b.DOM.Count())
			}
			if b.Raster.MarkedTiles == 0 {
				t.Error("no pixel markers")
			}
			if b.LoadedIndex == 0 {
				t.Error("load never completed")
			}
			if err := b.M.Tr.Validate(); err != nil {
				t.Errorf("invalid trace: %v", err)
			}
			sum := b.M.Tr.Summarize()
			// All declared threads must execute work.
			threads := 3 + bm.Profile.RasterWorkers + bm.Profile.PoolWorkers
			if sum.Threads != threads {
				t.Errorf("threads = %d, want %d", sum.Threads, threads)
			}
		})
	}
}

func TestGeneratedJSParses(t *testing.T) {
	lib := genJSLib("x", 3, 2, 4, 1200, 50, "sec0", "hdr")
	src := lib.Source + callAll(lib.UsedFns)
	if _, err := js.ParseScript(src); err != nil {
		t.Fatalf("generated library does not parse: %v\n%s", err, src[:min(400, len(src))])
	}
	if len(lib.UsedFns) != 3 || len(lib.BrowseFns) != 2 {
		t.Errorf("function counts wrong: %v %v", lib.UsedFns, lib.BrowseFns)
	}
	// Byte mass should be near the target.
	if len(lib.Source) < 9*800 {
		t.Errorf("library too small: %d bytes", len(lib.Source))
	}
}

func TestBingVariants(t *testing.T) {
	loadOnly := Bing(Options{Scale: testScale})
	if len(loadOnly.Site.Session) != 0 {
		t.Error("load-only Bing must have no session")
	}
	browse := Bing(Options{Scale: testScale, Browse: true})
	if len(browse.Site.Session) == 0 {
		t.Error("browse Bing must have a session")
	}
	hasType := false
	for _, a := range browse.Site.Session {
		if a.Kind == content.TypeText {
			hasType = true
		}
	}
	if !hasType {
		t.Error("Bing session must type a search term")
	}
	if len(browse.Site.BrowseResources) == 0 {
		t.Error("Bing browse must download extra resources (Table I)")
	}
}

func TestViewports(t *testing.T) {
	d := AmazonDesktop(Options{Scale: testScale})
	m := AmazonMobile(Options{Scale: testScale})
	if d.Site.ViewportW != 1280 || d.Site.ViewportH != 720 {
		t.Errorf("desktop viewport %dx%d", d.Site.ViewportW, d.Site.ViewportH)
	}
	if m.Site.ViewportW != 360 || m.Site.ViewportH != 640 {
		t.Errorf("mobile viewport %dx%d (paper: emulated 360x640)", m.Site.ViewportW, m.Site.ViewportH)
	}
	if m.Profile.RasterWorkers != 2 || d.Profile.RasterWorkers != 3 {
		t.Error("paper: 3 rasterizers for Amazon desktop, 2 elsewhere")
	}
}

func TestSiteResourcesWellFormed(t *testing.T) {
	for _, bm := range TableII(testScale) {
		doc, ok := bm.Site.Get(bm.Site.URL)
		if !ok || doc.Type != content.HTML {
			t.Fatalf("%s: missing main document", bm.Name)
		}
		// Every script/link URL referenced in the document must resolve.
		body := string(doc.Body)
		for _, r := range bm.Site.Resources {
			if r.Type == content.JS || r.Type == content.CSS {
				if !strings.Contains(body, r.URL) {
					t.Errorf("%s: resource %s not referenced by the document", bm.Name, r.URL)
				}
			}
		}
	}
}

func TestTableISetComposition(t *testing.T) {
	set := TableI(testScale)
	if len(set) != 3 {
		t.Fatalf("Table I covers 3 sites, got %d", len(set))
	}
	for _, pair := range set {
		if len(pair.Load.Site.Session) != 0 {
			t.Errorf("%s: load variant must not browse", pair.Name)
		}
		if pair.Name != "Bing" && len(pair.LoadAndBrowse.Site.Session) == 0 {
			t.Errorf("%s: browse variant must have a session", pair.Name)
		}
	}
}
