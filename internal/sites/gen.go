// Package sites defines the four benchmark workloads of the paper's
// evaluation: Amazon in desktop view, Amazon in emulated mobile view
// (360×640), Google Maps, and Bing with a browse session (menu, news pane,
// typing a search term). The sites are synthetic — the paper's exact pages
// cannot be fetched offline — but their *composition* is calibrated to the
// paper's measurements: resource byte masses with the Table I unused
// fractions, layer structure and below-fold content giving the Table II
// per-thread slice percentages, and session scripts reproducing the Figure 2
// and Figure 4 shapes. Byte masses are scaled 1/8 from the paper's KB counts
// (ratios preserved) to match the 1/1000 instruction-count scale.
package sites

import (
	"fmt"
	"strings"

	"webslice/internal/browser"
	"webslice/internal/browser/net"
	"webslice/internal/content"
)

// Options selects the workload variant.
type Options struct {
	// Scale shrinks the workload (content sizes, session length). 1.0 is
	// the calibrated benchmark scale; tests use ~0.05.
	Scale float64
	// Browse appends the site's interaction session (Table I load+browse
	// rows; Bing always browses in Table II).
	Browse bool
}

// Benchmark couples a site with its calibrated browser profile.
type Benchmark struct {
	Name    string
	Site    *content.Site
	Profile browser.Profile
	// Faults, when non-nil, is installed on the loader before the session
	// runs (the faults experiment's degraded-network profile).
	Faults *net.FaultPlan
}

func (o Options) scaleInt(n int) int {
	if o.Scale <= 0 || o.Scale == 1 {
		return n
	}
	v := int(float64(n) * o.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// jsFunc renders one synthetic function of roughly `bytes` source bytes.
// Used functions do real loop work; everything is valid engine JS.
func jsFunc(name string, params string, bytes int, loopIters int, body string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "function %s(%s) {\n", name, params)
	fmt.Fprintf(&b, "  var acc = 0;\n")
	fmt.Fprintf(&b, "  for (var i = 0; i < %d; i = i + 1) { acc = acc + i * 7 - (acc %% 13); }\n", loopIters)
	if body != "" {
		b.WriteString(body)
	}
	// Pad with comment ballast to reach the target byte mass (libraries are
	// mostly code the engine still has to scan and compile).
	pad := bytes - b.Len() - 16
	for pad > 0 {
		line := "  // lib code path: branch table entry, feature detect, polyfill shim;\n"
		if pad < len(line) {
			line = strings.Repeat(" ", pad)
		}
		b.WriteString(line)
		pad -= len(line)
	}
	b.WriteString("  return acc;\n}\n")
	return b.String()
}

// jsLibrary builds one library file: nUsed functions invoked by the
// top-level init, nBrowse functions reachable only from handlers (wired by
// the caller), and nUnused functions never referenced.
type jsLibrary struct {
	Name      string
	UsedFns   []string
	BrowseFns []string
	Source    string
}

func genJSLib(name string, nUsed, nBrowse, nUnused, bytesPerFn, usedIters int, domTargets ...string) *jsLibrary {
	lib := &jsLibrary{Name: name}
	var b strings.Builder
	// Used (and handler-reachable) functions are larger than dead ones:
	// real libraries' hot paths are the substantial code, while the dead
	// weight is many small unreferenced helpers. The ratio calibrates the
	// Table I unused-byte fractions.
	usedBytes := bytesPerFn * 4
	for i := 0; i < nUsed; i++ {
		fn := fmt.Sprintf("%s_used%d", name, i)
		lib.UsedFns = append(lib.UsedFns, fn)
		body := ""
		if len(domTargets) > 0 && i%3 != 2 {
			// Half the used functions do real page work: fetch an element
			// and set a style derived from the computed accumulator, so
			// their execution feeds the pixels (the other half compute
			// results nothing consumes — deferrable work).
			salt := 0
			for _, ch := range name {
				salt += int(ch)
			}
			tgt := domTargets[(i*3+salt)%len(domTargets)]
			body = fmt.Sprintf("  var el = document.getElementById('%s');\n  el.style.background = 4278190080 + (acc %% 255);\n", tgt)
		}
		b.WriteString(jsFunc(fn, "x", usedBytes, usedIters, body))
	}
	for i := 0; i < nBrowse; i++ {
		fn := fmt.Sprintf("%s_browse%d", name, i)
		lib.BrowseFns = append(lib.BrowseFns, fn)
		b.WriteString(jsFunc(fn, "el", bytesPerFn, usedIters, ""))
	}
	for i := 0; i < nUnused; i++ {
		fn := fmt.Sprintf("%s_dead%d", name, i)
		b.WriteString(jsFunc(fn, "a, b", bytesPerFn, 50, ""))
	}
	lib.Source = b.String()
	return lib
}

// callAll renders top-level invocations of the given functions.
func callAll(fns []string) string {
	var b strings.Builder
	for _, f := range fns {
		fmt.Fprintf(&b, "var r_%s = %s(3);\n", f, f)
	}
	return b.String()
}

// genCSS builds a stylesheet: rules targeting real page classes (they will
// match) plus rules for classes no element carries (parse-only waste).
func genCSS(usedSelectors []string, declsPerRule int, nUnused int, unusedPrefix string) string {
	var b strings.Builder
	decls := []string{
		"color: #333333", "background: #f7f7f7", "margin: 4px", "padding: 6px",
		"font-size: 14px", "width: 200px", "height: 40px", "border-width: 1px",
	}
	writeRule := func(sel string, seed int) {
		b.WriteString(sel)
		b.WriteString(" { ")
		for d := 0; d < declsPerRule; d++ {
			b.WriteString(decls[(seed+d)%len(decls)])
			b.WriteString("; ")
		}
		b.WriteString("}\n")
	}
	for i, sel := range usedSelectors {
		writeRule(sel, i)
	}
	for i := 0; i < nUnused; i++ {
		writeRule(fmt.Sprintf(".%s-%d", unusedPrefix, i), i+3)
	}
	return b.String()
}

// imageBody synthesizes a compressed image payload.
func imageBody(seed, size int) []byte {
	b := make([]byte, size)
	x := uint32(seed)*2654435761 + 12345
	for i := range b {
		x = x*1664525 + 1013904223
		b[i] = byte(x >> 24)
	}
	return b
}
