package sites

import (
	"fmt"
	"strings"

	"webslice/internal/content"
)

// pageSpec drives the shared page builder.
type pageSpec struct {
	name, host string
	vw, vh     int

	sections, itemsPerSection int
	sectionMinHeight          int
	images                    int
	imageKB                   int
	imgW, imgH                int
	imgLatencyMs              int

	promoLayer bool // an absolutely-positioned layer fully occluded by the header
	newsPane   bool // bottom news pane with a roll button (Bing)
	searchBox  bool
	canvasPane bool // Maps: large tile-pane instead of item sections

	libs       []libSpec
	cssUnused  int
	cssDecls   int
	heartbeats int // JS analytics timer firings
	hbPeriodMs int
	usedIters  int
}

type libSpec struct {
	name                    string
	used, browse, dead      int
	bytesPerFn, iters, late int // late = fetch latency ms
}

// build assembles the HTML, resources, and wiring script for a spec.
func build(spec pageSpec, o Options) *content.Site {
	site := &content.Site{
		Name:      spec.name,
		URL:       fmt.Sprintf("https://%s/", spec.host),
		ViewportW: spec.vw,
		ViewportH: spec.vh,
	}
	var head, body strings.Builder
	classes := []string{"page", "topbar", "menu-btn", "mpanel", "hero", "sec", "item", "thumb", "cap", "foot"}

	// Stylesheet.
	cssURL := site.URL + "styles.css"
	var css strings.Builder
	css.WriteString(".page { background: #ffffff; margin: 0; }\n")
	css.WriteString(fmt.Sprintf(".topbar { position: fixed; top: 0px; left: 0px; height: 56px; width: %dpx; background: #131921; z-index: 10; color: white; padding: 8px; }\n", spec.vw))
	css.WriteString(".menu-btn { width: 64px; height: 32px; background: #febd69; }\n")
	css.WriteString(fmt.Sprintf(".mpanel { position: absolute; top: 56px; left: 0px; width: 300px; height: %dpx; background: #f3f3f3; z-index: 20; display: none; }\n", spec.vh-100))
	css.WriteString(fmt.Sprintf(".hero { height: %dpx; background: #e3e6e6; padding: 10px; }\n", spec.vh/3))
	css.WriteString(fmt.Sprintf(".sec { padding: 12px; margin: 8px; background: #fafafa; height: %dpx; }\n", spec.sectionMinHeight))
	css.WriteString(".item { width: 180px; height: 220px; background: #ffffff; margin: 6px; padding: 4px; border-width: 1px; }\n")
	css.WriteString(".thumb { width: 160px; height: 140px; }\n")
	css.WriteString(".cap { font-size: 13px; color: #0f1111; }\n")
	css.WriteString(".foot { height: 800px; background: #232f3e; color: white; padding: 20px; }\n")
	if spec.promoLayer {
		css.WriteString(fmt.Sprintf(".promo { position: absolute; top: 0px; left: 0px; height: 56px; width: %dpx; background: #cc0c39; z-index: 2; }\n", spec.vw))
	}
	if spec.newsPane {
		css.WriteString(fmt.Sprintf(".newsbox { position: absolute; top: %dpx; left: 40px; width: %dpx; height: 150px; background: #eef3f8; z-index: 5; }\n", spec.vh-170, spec.vw-300))
		css.WriteString(".news-item { width: 220px; height: 130px; background: #ffffff; margin: 4px; }\n")
	}
	if spec.searchBox {
		css.WriteString(fmt.Sprintf(".searchbox { width: %dpx; height: 36px; background: #ffffff; border-width: 2px; margin: 10px; }\n", spec.vw/2))
	}
	if spec.canvasPane {
		css.WriteString(fmt.Sprintf(".maptile { width: 256px; height: 256px; margin: 0px; padding: 0px; }\n"))
		css.WriteString(fmt.Sprintf(".mappane { width: %dpx; height: %dpx; background: #aadaff; padding: 0px; margin: 0px; }\n", spec.vw, spec.vh*2))
		css.WriteString(".zoombar { position: fixed; top: 80px; left: 20px; width: 40px; height: 90px; background: #ffffff; z-index: 15; }\n")
		classes = append(classes, "maptile", "mappane", "zoombar")
	}
	// Used generated rules: per-section id rules plus class variants that all
	// match (the cascade applies them in order), sized so the used/unused
	// byte split lands near Table I.
	var usedSel []string
	for sIdx := 0; sIdx < spec.sections; sIdx++ {
		usedSel = append(usedSel, fmt.Sprintf("#sec%d", sIdx))
	}
	for v := 0; v < 3; v++ {
		usedSel = append(usedSel, ".item", ".cap", ".thumb", ".sec")
	}
	css.WriteString(genCSS(usedSel, spec.cssDecls, o.scaleInt(spec.cssUnused), "sx"))
	site.Add(&content.Resource{URL: cssURL, Type: content.CSS, Body: []byte(css.String()), LatencyMs: 70})
	head.WriteString(fmt.Sprintf("<link rel=\"stylesheet\" href=\"%s\">\n", cssURL))

	// Libraries.
	var domTargets []string
	for sIdx := 0; sIdx < spec.sections; sIdx++ {
		domTargets = append(domTargets, fmt.Sprintf("sec%d", sIdx))
	}
	domTargets = append(domTargets, "hdr", "hero", "roll-cap")
	var allBrowseFns []string
	maxLate := 0
	for _, ls := range spec.libs {
		lib := genJSLib(ls.name, o.scaleInt(ls.used), ls.browse, o.scaleInt(ls.dead), ls.bytesPerFn, ls.iters, domTargets...)
		src := lib.Source + callAll(lib.UsedFns)
		url := fmt.Sprintf("%slib/%s.js", site.URL, ls.name)
		site.Add(&content.Resource{URL: url, Type: content.JS, Body: []byte(src), LatencyMs: ls.late})
		head.WriteString(fmt.Sprintf("<script src=\"%s\"></script>\n", url))
		allBrowseFns = append(allBrowseFns, lib.BrowseFns...)
		if ls.late > maxLate {
			maxLate = ls.late
		}
	}

	// Body.
	body.WriteString("<div id=\"hdr\" class=\"topbar\"><button id=\"menu-btn\" class=\"menu-btn\">Menu</button><span>Sign in · Orders · Cart</span></div>\n")
	if spec.promoLayer {
		body.WriteString("<div id=\"promo\" class=\"promo\">Limited time deal banner that the header covers</div>\n")
	}
	body.WriteString("<div id=\"menu-panel\" class=\"mpanel\"><ul><li>Departments</li><li>Settings</li><li>Help</li></ul></div>\n")
	if spec.searchBox {
		body.WriteString("<input id=\"q\" class=\"searchbox\">\n")
	}
	imgIdx := 0
	img := func(cls string) string {
		if imgIdx >= spec.images {
			return ""
		}
		u := fmt.Sprintf("%simg/i%d.jpg", site.URL, imgIdx)
		site.Add(&content.Resource{
			URL: u, Type: content.Image, Body: imageBody(imgIdx, spec.imageKB*1024),
			W: spec.imgW, H: spec.imgH, LatencyMs: spec.imgLatencyMs + 37*imgIdx,
		})
		imgIdx++
		return fmt.Sprintf("<img class=\"%s\" src=\"%s\">", cls, u)
	}
	body.WriteString("<div id=\"hero\" class=\"hero\">")
	body.WriteString(img("thumb"))
	body.WriteString("<button id=\"roll-next\" class=\"menu-btn\">Next</button><span id=\"roll-cap\" class=\"cap\">Photo 1 of 8</span></div>\n")
	if spec.canvasPane {
		body.WriteString("<div id=\"zoom\" class=\"zoombar\"><button id=\"zoom-in\" class=\"menu-btn\">+</button></div>\n")
		body.WriteString("<div id=\"map\" class=\"mappane\">\n")
		for imgIdx < spec.images {
			body.WriteString("<div class=\"maptile\">" + img("maptile") + "</div>\n")
		}
		body.WriteString("</div>\n")
	}
	for s := 0; s < spec.sections; s++ {
		fmt.Fprintf(&body, "<section id=\"sec%d\" class=\"sec\"><h2>Recommended row %d</h2>\n", s, s)
		for it := 0; it < spec.itemsPerSection; it++ {
			fmt.Fprintf(&body, "<div class=\"item\">%s<span class=\"cap\">Product %d-%d with a descriptive caption line</span></div>\n", img("thumb"), s, it)
		}
		body.WriteString("</section>\n")
	}
	if spec.newsPane {
		body.WriteString("<div id=\"news\" class=\"newsbox\"><button id=\"news-next\" class=\"menu-btn\">More</button>")
		for n := 0; n < 4; n++ {
			fmt.Fprintf(&body, "<div class=\"news-item\"><span class=\"cap\">Headline item %d with summary text</span></div>", n)
		}
		body.WriteString("</div>\n")
	}
	body.WriteString("<footer id=\"footer\" class=\"foot\">About · Careers · Press · Conditions of use · Privacy</footer>\n")

	// Wiring script: handlers, analytics heartbeat. It must compile after
	// the libraries, so it ships as the slowest script resource.
	var wire strings.Builder
	dispatchBody := func(fns []string) string {
		var d strings.Builder
		for _, f := range fns {
			fmt.Fprintf(&d, "  var v_%s = %s(el);\n", f, f)
		}
		return d.String()
	}
	third := (len(allBrowseFns) + 2) / 3
	wire.WriteString("function onMenuClick(el) {\n  var p = document.getElementById('menu-panel');\n  p.style.display = 1;\n" +
		dispatchBody(pick(allBrowseFns, 0, third)) + "  return 1;\n}\n")
	wire.WriteString("function onRollNext(el) {\n  var c = document.getElementById('roll-cap');\n  c.textContent = 'Photo ' + 2;\n" +
		dispatchBody(pick(allBrowseFns, third, 2*third)) + "  return 1;\n}\n")
	wire.WriteString("function onNewsRoll(el) {\n  var nn = document.getElementById('news');\n  nn.style.background = 15786224;\n" +
		dispatchBody(pick(allBrowseFns, 2*third, len(allBrowseFns))) + "  return 1;\n}\n")
	wire.WriteString("function onKey(el, k) {\n  var c = el.offsetWidth + k;\n  return c;\n}\n")
	if spec.heartbeats > 0 {
		wire.WriteString(fmt.Sprintf("var hb_left = %d;\n", o.scaleInt(spec.heartbeats)))
		wire.WriteString(fmt.Sprintf(`function heartbeat() {
  if (hb_left > 0) {
    hb_left = hb_left - 1;
    var t = performance.now();
    var acc = 0;
    for (var i = 0; i < 30; i = i + 1) { acc = acc + i * t; }
    navigator.sendBeacon('m', 256);
    setTimeout(heartbeat, %d);
  }
  return hb_left;
}
heartbeat();
`, spec.hbPeriodMs))
	}
	wire.WriteString("var mb = document.getElementById('menu-btn');\nmb.addEventListener('click', onMenuClick);\n")
	wire.WriteString("var rn = document.getElementById('roll-next');\nrn.addEventListener('click', onRollNext);\n")
	if spec.newsPane {
		wire.WriteString("var nb = document.getElementById('news-next');\nnb.addEventListener('click', onNewsRoll);\n")
	}
	if spec.searchBox {
		wire.WriteString("var qq = document.getElementById('q');\nqq.addEventListener('keypress', onKey);\n")
	}
	wireURL := site.URL + "wire.js"
	site.Add(&content.Resource{URL: wireURL, Type: content.JS, Body: []byte(wire.String()), LatencyMs: maxLate + 60})
	head.WriteString(fmt.Sprintf("<script src=\"%s\"></script>\n", wireURL))

	doc := "<html><head>\n<title>" + spec.name + "</title>\n" + head.String() + "</head>\n<body class=\"page\">\n" + body.String() + "</body></html>"
	site.Add(&content.Resource{URL: site.URL, Type: content.HTML, Body: []byte(doc), LatencyMs: 90})
	_ = classes
	return site
}

func pick(s []string, lo, hi int) []string {
	if lo > len(s) {
		lo = len(s)
	}
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}
