// Package content defines the workload description consumed by the
// simulated browser: the resources a site serves (HTML, CSS, JavaScript,
// images) and the user-interaction script of a browsing session. The four
// benchmark sites in internal/sites are built from these types.
package content

import "fmt"

// ResourceType classifies a fetched resource.
type ResourceType uint8

const (
	HTML ResourceType = iota
	CSS
	JS
	Image
)

func (t ResourceType) String() string {
	switch t {
	case HTML:
		return "html"
	case CSS:
		return "css"
	case JS:
		return "js"
	case Image:
		return "image"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Resource is one server-delivered file.
type Resource struct {
	URL  string
	Type ResourceType
	Body []byte
	// LatencyMs is the simulated network latency for this resource.
	LatencyMs int
	// W, H are intrinsic pixel dimensions for Image resources.
	W, H int
}

// Site is everything the simulated server knows about one website.
type Site struct {
	Name string
	URL  string
	// Resources by URL; the main document is Resources[URL].
	Resources map[string]*Resource
	// ViewportW/H define the device viewport (e.g. 1280x720 desktop,
	// 360x640 emulated mobile).
	ViewportW, ViewportH int
	// Session is the user-interaction script after load ("Load and Browse"
	// benchmarks); empty for load-only benchmarks.
	Session []Action
	// BrowseResources lists extra resources fetched during the browse
	// session (the paper's Table I notes Bing and Maps download more bytes
	// while browsing).
	BrowseResources []*Resource
}

// Get returns a resource by URL.
func (s *Site) Get(url string) (*Resource, bool) {
	r, ok := s.Resources[url]
	return r, ok
}

// Add registers a resource.
func (s *Site) Add(r *Resource) {
	if s.Resources == nil {
		s.Resources = make(map[string]*Resource)
	}
	s.Resources[r.URL] = r
}

// TotalBytes sums the body sizes of all load-time JS and CSS resources —
// the denominator of the paper's Table I.
func (s *Site) TotalBytes(types ...ResourceType) int {
	want := map[ResourceType]bool{}
	for _, t := range types {
		want[t] = true
	}
	n := 0
	for _, r := range s.Resources {
		if want[r.Type] {
			n += len(r.Body)
		}
	}
	return n
}

// ActionKind enumerates user interactions.
type ActionKind uint8

const (
	// Scroll moves the viewport by DeltaY pixels (handled on the
	// compositor thread, like Chromium).
	Scroll ActionKind = iota
	// Click dispatches a click to the element with the given ID (forwarded
	// from the compositor to the main thread).
	Click
	// TypeText types text into the focused input, one key event per rune.
	TypeText
	// Wait is user think time with no input.
	Wait
)

func (k ActionKind) String() string {
	switch k {
	case Scroll:
		return "scroll"
	case Click:
		return "click"
	case TypeText:
		return "type"
	case Wait:
		return "wait"
	default:
		return fmt.Sprintf("action(%d)", uint8(k))
	}
}

// Action is one step of a browsing session.
type Action struct {
	Kind ActionKind
	// TargetID is the DOM id for Click.
	TargetID string
	// DeltaY is the scroll distance in pixels (positive = down).
	DeltaY int
	// Text is the typed string for TypeText.
	Text string
	// ThinkMs is user think time before the action.
	ThinkMs int
}
