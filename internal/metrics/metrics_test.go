package metrics

import (
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	g := r.Gauge("depth")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if r.Counter("ops") != c {
		t.Fatal("second lookup returned a different counter")
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatalf("SetMax high-water = %d, want 5", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatalf("SetMax high-water = %d, want 9", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{10, 100, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(5) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(500) // third bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if q := h.Quantile(0.5); q <= 0 || q > 10 {
		t.Fatalf("p50 = %v, want within (0, 10]", q)
	}
	if q := h.Quantile(0.99); q <= 100 || q > 1000 {
		t.Fatalf("p99 = %v, want within (100, 1000]", q)
	}
	// Overflow bucket reports the top bound.
	h.Observe(1e9)
	if q := h.Quantile(1.0); q != 1000 {
		t.Fatalf("overflow quantile = %v, want 1000", q)
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_counter").Add(2)
	r.Gauge("a_gauge").Set(7)
	r.Func("c_func", func() int64 { return 42 })
	r.Histogram("lat_ms", LatencyBuckets).Observe(3)
	var sb1, sb2 strings.Builder
	if err := r.WriteText(&sb1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb1.String() != sb2.String() {
		t.Fatal("two expositions of the same registry differ")
	}
	out := sb1.String()
	for _, want := range []string{"a_gauge 7", "b_counter 2", "c_func 42", "lat_ms_count 1", "lat_ms_p50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !sort.StringsAreSorted(lines) {
		t.Fatalf("exposition lines not sorted:\n%s", out)
	}
}
