package metrics

import (
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	g := r.Gauge("depth")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if r.Counter("ops") != c {
		t.Fatal("second lookup returned a different counter")
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatalf("SetMax high-water = %d, want 5", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatalf("SetMax high-water = %d, want 9", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{10, 100, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(5) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(500) // third bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if q := h.Quantile(0.5); q <= 0 || q > 10 {
		t.Fatalf("p50 = %v, want within (0, 10]", q)
	}
	if q := h.Quantile(0.99); q <= 100 || q > 1000 {
		t.Fatalf("p99 = %v, want within (100, 1000]", q)
	}
	// Overflow bucket reports the top bound.
	h.Observe(1e9)
	if q := h.Quantile(1.0); q != 1000 {
		t.Fatalf("overflow quantile = %v, want 1000", q)
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_counter").Add(2)
	r.Gauge("a_gauge").Set(7)
	r.Func("c_func", func() int64 { return 42 })
	r.Histogram("lat_ms", LatencyBuckets).Observe(3)
	var sb1, sb2 strings.Builder
	if err := r.WriteText(&sb1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb1.String() != sb2.String() {
		t.Fatal("two expositions of the same registry differ")
	}
	out := sb1.String()
	for _, want := range []string{
		"# TYPE a_gauge gauge", "a_gauge 7",
		"# TYPE b_counter counter", "b_counter 2",
		"# TYPE c_func gauge", "c_func 42",
		"# TYPE lat_ms histogram",
		`lat_ms_bucket{le="1"} 0`,
		`lat_ms_bucket{le="5"} 1`,
		`lat_ms_bucket{le="+Inf"} 1`,
		"lat_ms_sum 3.000", "lat_ms_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families come out sorted by name.
	var families []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, strings.Fields(line)[2])
		}
	}
	if !sort.StringsAreSorted(families) {
		t.Fatalf("families not sorted: %v", families)
	}
}

func TestWriteTextPrometheusShape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{10, 20})
	h.Observe(5)
	h.Observe(15)
	h.Observe(100) // overflow bucket
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Bucket counts are cumulative and +Inf equals the total count.
	for _, want := range []string{
		`h_bucket{le="10"} 1`,
		`h_bucket{le="20"} 2`,
		`h_bucket{le="+Inf"} 3`,
		"h_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"jobs_done":              "jobs_done",
		"http://127.0.0.1:8078":  "http:__127_0_0_1:8078",
		"9lives":                 "_9lives",
		"":                       "_",
		"a-b.c d":                "a_b_c_d",
		"already:colons_allowed": "already:colons_allowed",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
