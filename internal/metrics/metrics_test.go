package metrics

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	g := r.Gauge("depth")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if r.Counter("ops") != c {
		t.Fatal("second lookup returned a different counter")
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatalf("SetMax high-water = %d, want 5", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatalf("SetMax high-water = %d, want 9", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{10, 100, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(5) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(500) // third bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if q := h.Quantile(0.5); q <= 0 || q > 10 {
		t.Fatalf("p50 = %v, want within (0, 10]", q)
	}
	if q := h.Quantile(0.99); q <= 100 || q > 1000 {
		t.Fatalf("p99 = %v, want within (100, 1000]", q)
	}
	// Overflow bucket reports the top bound.
	h.Observe(1e9)
	if q := h.Quantile(1.0); q != 1000 {
		t.Fatalf("overflow quantile = %v, want 1000", q)
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_counter").Add(2)
	r.Gauge("a_gauge").Set(7)
	r.Func("c_func", func() int64 { return 42 })
	r.Histogram("lat_ms", LatencyBuckets).Observe(3)
	var sb1, sb2 strings.Builder
	if err := r.WriteText(&sb1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb1.String() != sb2.String() {
		t.Fatal("two expositions of the same registry differ")
	}
	out := sb1.String()
	for _, want := range []string{
		"# TYPE a_gauge gauge", "a_gauge 7",
		"# TYPE b_counter counter", "b_counter 2",
		"# TYPE c_func gauge", "c_func 42",
		"# TYPE lat_ms histogram",
		`lat_ms_bucket{le="1"} 0`,
		`lat_ms_bucket{le="5"} 1`,
		`lat_ms_bucket{le="+Inf"} 1`,
		"lat_ms_sum 3.000", "lat_ms_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families come out sorted by name.
	var families []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, strings.Fields(line)[2])
		}
	}
	if !sort.StringsAreSorted(families) {
		t.Fatalf("families not sorted: %v", families)
	}
}

func TestWriteTextPrometheusShape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{10, 20})
	h.Observe(5)
	h.Observe(15)
	h.Observe(100) // overflow bucket
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Bucket counts are cumulative and +Inf equals the total count.
	for _, want := range []string{
		`h_bucket{le="10"} 1`,
		`h_bucket{le="20"} 2`,
		`h_bucket{le="+Inf"} 3`,
		"h_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"jobs_done":              "jobs_done",
		"http://127.0.0.1:8078":  "http:__127_0_0_1:8078",
		"9lives":                 "_9lives",
		"":                       "_",
		"a-b.c d":                "a_b_c_d",
		"already:colons_allowed": "already:colons_allowed",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// The empty-histogram audit (PR 10 satellite): Quantile must never panic
// or divide by zero, whatever the bucket layout or sample count.
func TestQuantileEmptyAndDegenerateHistograms(t *testing.T) {
	// No samples: every quantile is 0.
	h := newHistogram(LatencyBuckets)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	// No buckets at all: used to index bounds[-1] and panic once samples
	// arrived. Pinned: always 0.
	nb := newHistogram(nil)
	if got := nb.Quantile(0.5); got != 0 {
		t.Fatalf("bucketless empty Quantile = %v, want 0", got)
	}
	nb.Observe(7) // lands in the lone overflow bucket
	for _, q := range []float64{0.01, 0.5, 1} {
		if got := nb.Quantile(q); got != 0 {
			t.Fatalf("bucketless Quantile(%v) = %v, want 0", q, got)
		}
	}
	// Out-of-range and NaN q values are defined, not garbage.
	h.Observe(3)
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Fatalf("Quantile(NaN) = %v, want 0", got)
	}
	if got := h.Quantile(17); got != h.Quantile(1) {
		t.Fatalf("Quantile(17) = %v, want clamp to Quantile(1) = %v", got, h.Quantile(1))
	}
	if got := h.Quantile(-2); got <= 0 {
		t.Fatalf("Quantile(-2) = %v, want the first sample's bucket bound", got)
	}
}

// NaN observations are dropped instead of poisoning the sum and the
// overflow bucket.
func TestObserveNaNIgnored(t *testing.T) {
	h := newHistogram([]float64{10})
	h.Observe(math.NaN())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("NaN observation recorded: count=%d sum=%v", h.Count(), h.Sum())
	}
	h.Observe(5)
	if h.Count() != 1 || math.IsNaN(h.Sum()) {
		t.Fatalf("histogram poisoned after NaN: count=%d sum=%v", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.5); math.IsNaN(q) {
		t.Fatal("quantile went NaN")
	}
}

// Exemplars: ObserveExemplar links a bucket to the trace that most
// recently landed in it, and WriteText exposes the linkage as # EXEMPLAR
// comment lines (format-safe: 0.0.4 parsers skip comments).
func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", []float64{10, 100})
	h.ObserveExemplar(5, "aaaa0000aaaa0000aaaa0000aaaa0000")
	h.ObserveExemplar(7, "bbbb0000bbbb0000bbbb0000bbbb0000") // same bucket: latest wins
	h.ObserveExemplar(500, "cccc0000cccc0000cccc0000cccc0000")
	h.Observe(50) // no trace: bucket keeps no exemplar

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`# EXEMPLAR lat_ms_bucket{le="10"} trace_id="bbbb0000bbbb0000bbbb0000bbbb0000" 7`,
		`# EXEMPLAR lat_ms_bucket{le="+Inf"} trace_id="cccc0000cccc0000cccc0000cccc0000" 500`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "aaaa0000") {
		t.Fatal("overwritten exemplar still exposed")
	}
	if strings.Contains(out, `le="100"} trace_id`) {
		t.Fatal("traceless bucket grew an exemplar")
	}
	// Exemplar comments must not disturb the samples themselves.
	if !strings.Contains(out, `lat_ms_bucket{le="+Inf"} 4`) || !strings.Contains(out, "lat_ms_count 4") {
		t.Fatalf("sample lines wrong:\n%s", out)
	}
}
