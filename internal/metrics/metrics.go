// Package metrics is the lightweight instrumentation layer of the slicing
// service: atomic counters and gauges plus fixed-bucket histograms with
// percentile estimation, collected in a named registry that renders a
// deterministic Prometheus text exposition (format version 0.0.4) for the
// /metrics endpoint. It is
// dependency-free on purpose — the service, the store, and the daemon all
// publish through it without pulling in an external metrics stack.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the counter to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can move in both directions.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease) and returns the new
// value.
func (g *Gauge) Add(n int64) int64 { return g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// SetMax raises the gauge to n if n is greater — a lock-free high-water
// mark (used for peak worker concurrency).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// LatencyBuckets are the default histogram bounds for millisecond
// latencies, exponential from 1ms to 10s.
var LatencyBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram counts observations in fixed buckets and estimates quantiles by
// linear interpolation within the bucket that crosses the target rank.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []int64   // len(bounds)+1
	sum    float64
	n      int64
	// exemplars holds the latest trace-linked observation per bucket
	// (len(bounds)+1, lazily allocated) — the span/metric linkage: a
	// latency bucket's exposition carries a trace ID whose span tree shows
	// where that latency went.
	exemplars []Exemplar
}

// Exemplar links one observed value to the trace that produced it.
type Exemplar struct {
	TraceID string
	Value   float64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one sample. NaN samples are dropped: a NaN would land
// in the overflow bucket by accident of comparison order and poison the
// sum (and every later quantile) forever.
func (h *Histogram) Observe(v float64) {
	h.ObserveExemplar(v, "")
}

// ObserveExemplar records one sample and, when traceID is non-empty,
// remembers it as the bucket's exemplar — the most recent trace that
// landed there. WriteText exposes exemplars as `# EXEMPLAR` comment
// lines, so a latency spike in a histogram links straight to the span
// tree that explains it (GET /jobs/{id}/trace).
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	if traceID != "" {
		if h.exemplars == nil {
			h.exemplars = make([]Exemplar, len(h.bounds)+1)
		}
		h.exemplars[i] = Exemplar{TraceID: traceID, Value: v}
	}
	h.mu.Unlock()
}

// Count returns how many samples were observed.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns the bucket bounds with their *cumulative* counts (the
// Prometheus _bucket convention: each count includes every bucket below
// it), plus the sum and total count, all under one lock acquisition.
func (h *Histogram) snapshot() (bounds []float64, cum []int64, sum float64, n int64, ex []Exemplar) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = append([]float64(nil), h.bounds...)
	cum = make([]int64, len(h.bounds))
	var running int64
	for i := range h.bounds {
		running += h.counts[i]
		cum[i] = running
	}
	ex = append([]Exemplar(nil), h.exemplars...)
	return bounds, cum, h.sum, h.n, ex
}

// Quantile estimates the q-th quantile (0 < q <= 1). With no samples — or
// no buckets at all — it returns 0 instead of dividing by zero or indexing
// an empty bounds slice; ranks landing in the overflow bucket report the
// largest bound. A NaN q returns 0, and q is clamped into (0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	// n == 0 guards the rank math; len(bounds) == 0 guards the
	// h.bounds[len(h.bounds)-1] fallbacks (a bucketless histogram used to
	// panic here on its first Quantile call).
	if h.n == 0 || len(h.bounds) == 0 {
		return 0
	}
	if math.IsNaN(q) {
		return 0
	}
	if q > 1 {
		q = 1
	}
	if q <= 0 {
		// Smallest defined rank: the first sample.
		q = math.SmallestNonzeroFloat64
	}
	target := q * float64(h.n)
	var cum int64
	for i, c := range h.counts {
		if float64(cum+c) < target {
			cum += c
			continue
		}
		if i >= len(h.bounds) { // overflow bucket: no upper bound to interpolate to
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		frac := (target - float64(cum)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry is a named collection of metrics. All lookup methods are
// get-or-create and safe for concurrent use; creating a name twice returns
// the same instrument.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Func registers a callback gauge: f is invoked at exposition time. Useful
// for values owned elsewhere (e.g. artifact-store hit counts).
func (r *Registry) Func(name string, f func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = f
}

// ContentType is the Content-Type for WriteText output: Prometheus text
// exposition format, version 0.0.4.
const ContentType = "text/plain; version=0.0.4"

// SanitizeName maps an arbitrary string onto a valid Prometheus metric
// name ([a-zA-Z_:][a-zA-Z0-9_:]*): every invalid character becomes '_',
// and a leading digit is prefixed with '_'. Used both at exposition time
// and by callers deriving metric names from free-form strings (peer URLs).
func SanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatLe renders a bucket upper bound for the le label.
func formatLe(bound float64) string {
	return strconv.FormatFloat(bound, 'g', -1, 64)
}

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4): each metric family gets a `# TYPE` line followed by its
// samples, families sorted by (sanitized) name so the output is
// deterministic. Counters and gauges are single samples; Func callbacks
// export as gauges; histograms expand to cumulative `_bucket{le="..."}`
// series (ending at le="+Inf"), `_sum`, and `_count`.
func (r *Registry) WriteText(w io.Writer) error {
	type family struct {
		name  string
		typ   string
		lines []string
	}
	r.mu.Lock()
	fams := make([]family, 0, len(r.counters)+len(r.gauges)+len(r.funcs)+len(r.hists))
	for name, c := range r.counters {
		n := SanitizeName(name)
		fams = append(fams, family{n, "counter", []string{fmt.Sprintf("%s %d", n, c.Value())}})
	}
	for name, g := range r.gauges {
		n := SanitizeName(name)
		fams = append(fams, family{n, "gauge", []string{fmt.Sprintf("%s %d", n, g.Value())}})
	}
	for name, f := range r.funcs {
		n := SanitizeName(name)
		fams = append(fams, family{n, "gauge", []string{fmt.Sprintf("%s %d", n, f())}})
	}
	for name, h := range r.hists {
		n := SanitizeName(name)
		bounds, cum, sum, count, ex := h.snapshot()
		lines := make([]string, 0, len(bounds)+3)
		for i, b := range bounds {
			lines = append(lines, fmt.Sprintf("%s_bucket{le=%q} %d", n, formatLe(b), cum[i]))
		}
		lines = append(lines,
			fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d", n, count),
			fmt.Sprintf("%s_sum %.3f", n, sum),
			fmt.Sprintf("%s_count %d", n, count))
		// Exemplars ride as comment lines: the 0.0.4 text format has no
		// native exemplar syntax (that is OpenMetrics), and comments are
		// the one extension every parser must skip. Each line links a
		// bucket to the most recent trace that landed in it.
		for i, e := range ex {
			if e.TraceID == "" {
				continue
			}
			le := "+Inf"
			if i < len(bounds) {
				le = formatLe(bounds[i])
			}
			lines = append(lines, fmt.Sprintf("# EXEMPLAR %s_bucket{le=%q} trace_id=%q %g", n, le, e.TraceID, e.Value))
		}
		fams = append(fams, family{n, "histogram", lines})
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var sb strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		for _, l := range f.lines {
			sb.WriteString(l)
			sb.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
