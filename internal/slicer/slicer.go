// Package slicer implements the backward pass of the profiler: dynamic
// backward program slicing over an instruction trace via liveness analysis,
// exactly as §III-B of the paper describes. A set of live variables —
// per-thread live registers plus one shared live memory set — is updated
// from two sources: the slicing criteria (pairs of program point and
// variable set) and the operation of each instruction walked in reverse.
// Control dependences are honored with the paper's pending-branch-list
// mechanism, using the control dependence graph built by the forward pass.
package slicer

import (
	"fmt"

	"webslice/internal/cdg"
	"webslice/internal/isa"
	"webslice/internal/trace"
	"webslice/internal/vmem"
)

// Criteria designates, for each program point the backward pass reaches,
// which variables (memory ranges) become live there — the machine form of
// the paper's (program point, set of variables) pairs.
type Criteria interface {
	// Name identifies the criteria in reports.
	Name() string
	// At is invoked for every record in the backward pass. mem lists memory
	// ranges that become live at this point; anchor reports that the record
	// itself is part of the slice (its register sources become live).
	At(i int, r *trace.Rec, t *trace.Trace) (mem []vmem.Range, anchor bool)
}

// PixelCriteria makes the final pixel values live at every pixel-buffer
// marker: the paper's primary criterion ("the pixels buffer at points where
// it contains the final values of pixels that are going to be put on the
// device display").
type PixelCriteria struct{}

// Name implements Criteria.
func (PixelCriteria) Name() string { return "pixels" }

// At implements Criteria.
func (PixelCriteria) At(i int, r *trace.Rec, t *trace.Trace) ([]vmem.Range, bool) {
	if r.Kind != isa.KindMarker {
		return nil, false
	}
	mk := t.Marks[i]
	if mk == nil || mk.Kind != isa.MarkPixels {
		return nil, false
	}
	return []vmem.Range{mk.Buf}, false
}

// SyscallCriteria makes the values consumed by system calls live: the
// paper's second, broader criterion capturing everything the process
// communicates to the outside world (network, display, audio). Its slice is
// by construction inclusive of the pixel slice when display output flows
// through an output syscall.
type SyscallCriteria struct{}

// Name implements Criteria.
func (SyscallCriteria) Name() string { return "syscalls" }

// At implements Criteria.
func (SyscallCriteria) At(i int, r *trace.Rec, t *trace.Trace) ([]vmem.Range, bool) {
	if r.Kind != isa.KindSyscall {
		return nil, false
	}
	eff := t.Sys[i]
	if eff == nil {
		return nil, true
	}
	return eff.Reads, true
}

// Union combines criteria: a point is live if any member makes it live.
type Union []Criteria

// Name implements Criteria.
func (u Union) Name() string {
	s := "union("
	for i, c := range u {
		if i > 0 {
			s += "+"
		}
		s += c.Name()
	}
	return s + ")"
}

// At implements Criteria.
func (u Union) At(i int, r *trace.Rec, t *trace.Trace) ([]vmem.Range, bool) {
	var mem []vmem.Range
	anchor := false
	for _, c := range u {
		m, a := c.At(i, r, t)
		mem = append(mem, m...)
		anchor = anchor || a
	}
	return mem, anchor
}

// Window restricts criteria to program points at record index < Limit —
// used for the paper's Bing experiment that slices backward starting from
// the moment the page finished loading rather than from the end of the
// browsing session.
type Window struct {
	Inner Criteria
	Limit int
}

// Name implements Criteria.
func (w Window) Name() string { return fmt.Sprintf("%s[<%d]", w.Inner.Name(), w.Limit) }

// At implements Criteria.
func (w Window) At(i int, r *trace.Rec, t *trace.Trace) ([]vmem.Range, bool) {
	if i >= w.Limit {
		return nil, false
	}
	return w.Inner.At(i, r, t)
}

// Options tune a slicing run.
type Options struct {
	// Live selects the live-memory implementation; nil means NewWordSet().
	Live LiveMem
	// NoControlDeps disables the pending-branch mechanism (data-dependence-
	// only slicing) for the ablation study.
	NoControlDeps bool
	// ProgressPoints is how many samples of the backward-progress curve to
	// record (paper Figure 4). 0 disables sampling.
	ProgressPoints int
	// MainThread identifies the thread whose separate progress curve Figure
	// 4 plots (Chromium's CrRendererMain analog).
	MainThread uint8
}

// Result is the computed slice plus the statistics the paper reports.
type Result struct {
	Criteria string
	Total    int
	// InSlice is a bitset over record indices.
	InSlice Bitset
	// SliceCount is the number of records in the slice.
	SliceCount int
	// ByThread and SliceByThread count records per thread.
	ByThread      map[uint8]int
	SliceByThread map[uint8]int
	// ByFunc and SliceByFunc count records per function.
	ByFunc      map[trace.FuncID]int
	SliceByFunc map[trace.FuncID]int
	// Progress samples the backward pass from its start (the end of the
	// trace) to its finish (the beginning), for all threads and for the
	// main thread (paper Figure 4).
	Progress []ProgressPoint
	// PendingLeft counts branch PCs still pending when the pass finished
	// (nonzero only for truncated traces).
	PendingLeft int
}

// ProgressPoint is one sample of the backward pass: after Processed records
// (counted from the end of the trace), Sliced of them were in the slice;
// the Main* fields restrict both counts to the main thread.
type ProgressPoint struct {
	Processed, Sliced         int
	MainProcessed, MainSliced int
}

// Percent returns the slice percentage over all instructions.
func (r *Result) Percent() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.SliceCount) / float64(r.Total)
}

// ThreadPercent returns the slice percentage within one thread.
func (r *Result) ThreadPercent(tid uint8) float64 {
	if r.ByThread[tid] == 0 {
		return 0
	}
	return 100 * float64(r.SliceByThread[tid]) / float64(r.ByThread[tid])
}

// RangePercent returns the slice percentage of records in [lo, hi).
func (r *Result) RangePercent(lo, hi int) float64 {
	n, in := 0, 0
	for i := lo; i < hi && i < r.Total; i++ {
		n++
		if r.InSlice.Get(i) {
			in++
		}
	}
	if n == 0 {
		return 0
	}
	return 100 * float64(in) / float64(n)
}

type threadState struct {
	depth   int
	pending map[int]map[uint32]struct{}
	contrib map[int]bool
}

// Slice runs the backward pass over t with the given criteria, control
// dependences (from the forward pass; may be nil only when
// opts.NoControlDeps is set), and options.
func Slice(t *trace.Trace, deps *cdg.Deps, c Criteria, opts Options) (*Result, error) {
	if c == nil {
		return nil, fmt.Errorf("slicer: nil criteria")
	}
	if deps == nil && !opts.NoControlDeps {
		return nil, fmt.Errorf("slicer: control dependences required (or set NoControlDeps)")
	}
	live := opts.Live
	if live == nil {
		live = NewWordSet()
	}

	n := len(t.Recs)
	res := &Result{
		Criteria:      c.Name(),
		Total:         n,
		InSlice:       NewBitset(n),
		ByThread:      make(map[uint8]int),
		SliceByThread: make(map[uint8]int),
		ByFunc:        make(map[trace.FuncID]int),
		SliceByFunc:   make(map[trace.FuncID]int),
	}

	regs := newBitsetGrow()
	threads := make(map[uint8]*threadState)
	state := func(tid uint8) *threadState {
		s := threads[tid]
		if s == nil {
			s = &threadState{
				pending: make(map[int]map[uint32]struct{}),
				contrib: make(map[int]bool),
			}
			threads[tid] = s
		}
		return s
	}

	var sampleEvery int
	if opts.ProgressPoints > 0 {
		sampleEvery = n / opts.ProgressPoints
		if sampleEvery == 0 {
			sampleEvery = 1
		}
	}
	var processed, sliced, mainProcessed, mainSliced int

	for i := n - 1; i >= 0; i-- {
		r := &t.Recs[i]
		th := state(r.TID)
		res.ByThread[r.TID]++
		res.ByFunc[r.Func()]++

		// Criteria: reaching this program point may make variables live.
		if mem, anchor := c.At(i, r, t); len(mem) > 0 || anchor {
			for _, rg := range mem {
				live.Add(rg)
			}
			if anchor {
				markSlice(res, i, r, th, deps, opts, regs)
				setReg(regs, r.Src1)
				setReg(regs, r.Src2)
			}
		}

		switch r.Kind {
		case isa.KindConst:
			if regs.Kill(uint32(r.Dst)) {
				markSlice(res, i, r, th, deps, opts, regs)
			}
		case isa.KindOp:
			if regs.Kill(uint32(r.Dst)) {
				markSlice(res, i, r, th, deps, opts, regs)
				setReg(regs, r.Src1)
				setReg(regs, r.Src2)
			}
		case isa.KindLoad:
			if regs.Kill(uint32(r.Dst)) {
				markSlice(res, i, r, th, deps, opts, regs)
				live.Add(r.MemRange())
				setReg(regs, r.Src2) // address register
			}
		case isa.KindStore:
			if live.Kill(r.MemRange()) {
				markSlice(res, i, r, th, deps, opts, regs)
				setReg(regs, r.Src1) // value
				setReg(regs, r.Src2) // address register
			}
		case isa.KindBranch:
			if !opts.NoControlDeps {
				if set := th.pending[th.depth]; len(set) > 0 {
					if _, ok := set[r.PC]; ok {
						delete(set, r.PC)
						markSlice(res, i, r, th, deps, opts, regs)
						setReg(regs, r.Src1) // condition
					}
				}
			}
		case isa.KindRet:
			// Walking backward, a return means we are entering the callee's
			// body: deeper frame, fresh pending/contribution scope.
			th.depth++
			th.contrib[th.depth] = false
			delete(th.pending, th.depth)
		case isa.KindCall:
			calleeDepth := th.depth
			contributed := th.contrib[calleeDepth]
			if set := th.pending[calleeDepth]; len(set) > 0 {
				res.PendingLeft += len(set)
			}
			delete(th.contrib, calleeDepth)
			delete(th.pending, calleeDepth)
			th.depth--
			if contributed {
				// Interprocedural control dependence: the call instruction
				// guards everything its instance executed.
				markSlice(res, i, r, th, deps, opts, regs)
			}
		case isa.KindSyscall:
			// A syscall defines the memory it writes (e.g. recvfrom filling
			// the response buffer): if any of that is live, the external
			// input is part of the provenance.
			if eff := t.Sys[i]; eff != nil {
				hit := false
				for _, w := range eff.Writes {
					if live.Kill(w) {
						hit = true
					}
				}
				if regs.Kill(uint32(r.Dst)) {
					hit = true
				}
				if hit {
					markSlice(res, i, r, th, deps, opts, regs)
					for _, rd := range eff.Reads {
						live.Add(rd)
					}
				}
			}
		case isa.KindMarker, isa.KindNop:
			// Criteria handled above; markers are pseudo-instructions and
			// never join the slice themselves.
		}

		processed++
		if res.InSlice.Get(i) {
			sliced++
		}
		if r.TID == opts.MainThread {
			mainProcessed++
			if res.InSlice.Get(i) {
				mainSliced++
			}
		}
		if sampleEvery > 0 && processed%sampleEvery == 0 {
			res.Progress = append(res.Progress, ProgressPoint{processed, sliced, mainProcessed, mainSliced})
		}
	}
	if sampleEvery > 0 && (len(res.Progress) == 0 || res.Progress[len(res.Progress)-1].Processed != processed) {
		res.Progress = append(res.Progress, ProgressPoint{processed, sliced, mainProcessed, mainSliced})
	}
	for _, th := range threads {
		for _, set := range th.pending {
			res.PendingLeft += len(set)
		}
	}
	return res, nil
}

// markSlice adds record i to the slice, credits its thread/function tallies,
// flags its frame as contributing, and schedules its control-dependence
// branches on the pending list.
func markSlice(res *Result, i int, r *trace.Rec, th *threadState, deps *cdg.Deps, opts Options, regs *bitsetGrow) {
	if res.InSlice.Get(i) {
		return
	}
	res.InSlice.Set(i)
	res.SliceCount++
	res.SliceByThread[r.TID]++
	res.SliceByFunc[r.Func()]++
	th.contrib[th.depth] = true
	if opts.NoControlDeps || deps == nil {
		return
	}
	for _, bpc := range deps.Of(r.PC) {
		set := th.pending[th.depth]
		if set == nil {
			set = make(map[uint32]struct{})
			th.pending[th.depth] = set
		}
		set[bpc] = struct{}{}
	}
}

func setReg(regs *bitsetGrow, r isa.Reg) {
	if r != isa.RegNone {
		regs.Set(uint32(r))
	}
}
