// Package slicer implements the backward pass of the profiler: dynamic
// backward program slicing over an instruction trace via liveness analysis,
// exactly as §III-B of the paper describes. A set of live variables —
// per-thread live registers plus one shared live memory set — is updated
// from two sources: the slicing criteria (pairs of program point and
// variable set) and the operation of each instruction walked in reverse.
// Control dependences are honored with the paper's pending-branch-list
// mechanism, using the control dependence graph built by the forward pass.
package slicer

import (
	"errors"
	"fmt"
	"time"

	"webslice/internal/cdg"
	"webslice/internal/isa"
	"webslice/internal/trace"
	"webslice/internal/vmem"
)

// ErrCanceled aborts a backward pass whose Options.Canceled hook fired —
// the caller asked for the work to stop (deadline, shutdown, job cancel).
var ErrCanceled = errors.New("slicer: canceled")

// Criteria designates, for each program point the backward pass reaches,
// which variables (memory ranges) become live there — the machine form of
// the paper's (program point, set of variables) pairs.
type Criteria interface {
	// Name identifies the criteria in reports.
	Name() string
	// At is invoked for every record in the backward pass. mem lists memory
	// ranges that become live at this point; anchor reports that the record
	// itself is part of the slice (its register sources become live).
	At(i int, r *trace.Rec, t *trace.Trace) (mem []vmem.Range, anchor bool)
}

// PixelCriteria makes the final pixel values live at every pixel-buffer
// marker: the paper's primary criterion ("the pixels buffer at points where
// it contains the final values of pixels that are going to be put on the
// device display").
type PixelCriteria struct{}

// Name implements Criteria.
func (PixelCriteria) Name() string { return "pixels" }

// At implements Criteria.
func (PixelCriteria) At(i int, r *trace.Rec, t *trace.Trace) ([]vmem.Range, bool) {
	if r.Kind != isa.KindMarker {
		return nil, false
	}
	mk := t.Marks[i]
	if mk == nil || mk.Kind != isa.MarkPixels {
		return nil, false
	}
	return []vmem.Range{mk.Buf}, false
}

// SyscallCriteria makes the values consumed by system calls live: the
// paper's second, broader criterion capturing everything the process
// communicates to the outside world (network, display, audio). Its slice is
// by construction inclusive of the pixel slice when display output flows
// through an output syscall.
type SyscallCriteria struct{}

// Name implements Criteria.
func (SyscallCriteria) Name() string { return "syscalls" }

// At implements Criteria.
func (SyscallCriteria) At(i int, r *trace.Rec, t *trace.Trace) ([]vmem.Range, bool) {
	if r.Kind != isa.KindSyscall {
		return nil, false
	}
	eff := t.Sys[i]
	if eff == nil {
		return nil, true
	}
	return eff.Reads, true
}

// Union combines criteria: a point is live if any member makes it live.
type Union []Criteria

// Name implements Criteria.
func (u Union) Name() string {
	s := "union("
	for i, c := range u {
		if i > 0 {
			s += "+"
		}
		s += c.Name()
	}
	return s + ")"
}

// At implements Criteria.
func (u Union) At(i int, r *trace.Rec, t *trace.Trace) ([]vmem.Range, bool) {
	var mem []vmem.Range
	anchor := false
	for _, c := range u {
		m, a := c.At(i, r, t)
		mem = append(mem, m...)
		anchor = anchor || a
	}
	return mem, anchor
}

// Window restricts criteria to program points at record index < Limit —
// used for the paper's Bing experiment that slices backward starting from
// the moment the page finished loading rather than from the end of the
// browsing session.
type Window struct {
	Inner Criteria
	Limit int
}

// Name implements Criteria.
func (w Window) Name() string { return fmt.Sprintf("%s[<%d]", w.Inner.Name(), w.Limit) }

// At implements Criteria.
func (w Window) At(i int, r *trace.Rec, t *trace.Trace) ([]vmem.Range, bool) {
	if i >= w.Limit {
		return nil, false
	}
	return w.Inner.At(i, r, t)
}

// Options tune a slicing run.
type Options struct {
	// Live selects the live-memory implementation; nil means NewWordSet().
	// A non-nil Live pins the run to the sequential path (the segmented
	// engine needs one independent live set per segment and cannot clone an
	// arbitrary implementation).
	Live LiveMem
	// NoControlDeps disables the pending-branch mechanism (data-dependence-
	// only slicing) for the ablation study.
	NoControlDeps bool
	// ProgressPoints is how many samples of the backward-progress curve to
	// record (paper Figure 4). 0 disables sampling.
	ProgressPoints int
	// MainThread identifies the thread whose separate progress curve Figure
	// 4 plots (Chromium's CrRendererMain analog).
	MainThread uint8
	// Canceled, when non-nil, is polled every few thousand records of the
	// backward walk; returning true aborts the pass with ErrCanceled. The
	// slicing service uses it to enforce per-job deadlines and cancellation
	// mid-pass instead of only at phase boundaries. It does not change the
	// result and is deliberately excluded from store variant fingerprints.
	// The segmented backward pass polls it from several goroutines at once,
	// so the hook must be safe for concurrent use (ctx.Err-style hooks are).
	Canceled func() bool
	// Segments controls backward-pass segmentation: 0 picks automatically
	// (4 segments per worker on large traces, sequential otherwise), 1
	// forces the sequential walk, and >1 forces a segmented parallel walk
	// with that many segments. The result is byte-identical either way, so
	// Segments is excluded from store variant fingerprints.
	Segments int
	// Workers bounds the worker pool of the segmented pass's parallel
	// phases; <= 0 means GOMAXPROCS. Like Segments it never changes the
	// result, only the schedule.
	Workers int
	// Stats, when non-nil, receives the per-phase wall times and segment
	// count of the backward pass. Purely observational.
	Stats *PassStats
}

// PassStats reports how one backward pass spent its time: the parallel
// per-segment liveness scan, the sequential stitch that threads true live
// state across segment boundaries, and the parallel tally/progress pass.
// A sequential run reports everything under ScanMs with Sequential set.
type PassStats struct {
	Segments   int     `json:"segments"`
	Sequential bool    `json:"sequential"`
	ScanMs     float64 `json:"scan_ms"`
	StitchMs   float64 `json:"stitch_ms"`
	TallyMs    float64 `json:"tally_ms"`
	TotalMs    float64 `json:"total_ms"`
}

// Result is the computed slice plus the statistics the paper reports.
type Result struct {
	Criteria string
	Total    int
	// InSlice is a bitset over record indices.
	InSlice Bitset
	// SliceCount is the number of records in the slice.
	SliceCount int
	// ByThread and SliceByThread count records per thread.
	ByThread      map[uint8]int
	SliceByThread map[uint8]int
	// ByFunc and SliceByFunc count records per function.
	ByFunc      map[trace.FuncID]int
	SliceByFunc map[trace.FuncID]int
	// Progress samples the backward pass from its start (the end of the
	// trace) to its finish (the beginning), for all threads and for the
	// main thread (paper Figure 4).
	Progress []ProgressPoint
	// PendingLeft counts branch PCs still pending when the pass finished
	// (nonzero only for truncated traces).
	PendingLeft int
}

// ProgressPoint is one sample of the backward pass: after Processed records
// (counted from the end of the trace), Sliced of them were in the slice;
// the Main* fields restrict both counts to the main thread.
type ProgressPoint struct {
	Processed, Sliced         int
	MainProcessed, MainSliced int
}

// Percent returns the slice percentage over all instructions.
func (r *Result) Percent() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.SliceCount) / float64(r.Total)
}

// ThreadPercent returns the slice percentage within one thread.
func (r *Result) ThreadPercent(tid uint8) float64 {
	if r.ByThread[tid] == 0 {
		return 0
	}
	return 100 * float64(r.SliceByThread[tid]) / float64(r.ByThread[tid])
}

// RangePercent returns the slice percentage of records in [lo, hi).
func (r *Result) RangePercent(lo, hi int) float64 {
	n, in := 0, 0
	for i := lo; i < hi && i < r.Total; i++ {
		n++
		if r.InSlice.Get(i) {
			in++
		}
	}
	if n == 0 {
		return 0
	}
	return 100 * float64(in) / float64(n)
}

// callFrame is one call-stack level of the backward pass: the branch PCs
// still pending for this frame and whether the frame contributed a slice
// record. Frames live in dense per-depth slices (frameStack) instead of the
// nested map[int]map[uint32]struct{} an earlier version used — the pending
// sets are tiny (a handful of branch PCs), so linear scans over a slice beat
// per-record map allocation and hashing in the hot loop.
type callFrame struct {
	pending []uint32
	contrib bool
}

// addPending schedules a branch PC if not already pending.
func (f *callFrame) addPending(pc uint32) {
	for _, p := range f.pending {
		if p == pc {
			return
		}
	}
	f.pending = append(f.pending, pc)
}

// takePending removes pc from the pending set, reporting whether it was
// there. Order within the set is irrelevant, so removal is a swap-delete.
func (f *callFrame) takePending(pc uint32) bool {
	for i, p := range f.pending {
		if p == pc {
			last := len(f.pending) - 1
			f.pending[i] = f.pending[last]
			f.pending = f.pending[:last]
			return true
		}
	}
	return false
}

// reset clears a frame for re-use at a new depth.
func (f *callFrame) reset() {
	f.pending = f.pending[:0]
	f.contrib = false
}

// frameStack indexes callFrames by call depth. Depth can go negative when
// the trace opens mid-function (a call whose return precedes the window),
// so negative depths get their own slice: depth d < 0 lives at neg[-1-d].
type frameStack struct {
	pos []callFrame
	neg []callFrame
}

// at returns the frame for depth d, growing the stack as needed. The
// returned pointer is only valid until the next at call (append may move
// the backing array).
func (s *frameStack) at(d int) *callFrame {
	if d >= 0 {
		for len(s.pos) <= d {
			s.pos = append(s.pos, callFrame{})
		}
		return &s.pos[d]
	}
	i := -1 - d
	for len(s.neg) <= i {
		s.neg = append(s.neg, callFrame{})
	}
	return &s.neg[i]
}

// pendingLeft sums the pending branches across every depth ever touched.
func (s *frameStack) pendingLeft() int {
	n := 0
	for i := range s.pos {
		n += len(s.pos[i].pending)
	}
	for i := range s.neg {
		n += len(s.neg[i].pending)
	}
	return n
}

type threadState struct {
	depth  int
	frames frameStack
}

// sliceState is the complete working state of the backward pass for one
// criterion. SliceMulti keeps one per criterion and steps them all per
// record, so N criteria cost one trace walk instead of N. Thread and
// function tallies accumulate in dense slices indexed by TID/FuncID and are
// converted to the Result maps once at the end — two map operations per
// record used to dominate the hot-loop profile.
type sliceState struct {
	t    *trace.Trace
	deps *cdg.Deps
	crit Criteria
	opts Options

	res     *Result
	live    LiveMem
	regs    *regSet
	threads [256]*threadState

	byThread      [256]int
	sliceByThread [256]int
	byFunc        []int
	sliceByFunc   []int

	sampleEvery                                  int
	processed, sliced, mainProcessed, mainSliced int

	// curMarked reports whether the record being stepped joined the slice;
	// records only ever join during their own step, so the progress tail can
	// test this flag instead of re-reading the bitset twice per record.
	curMarked bool
}

func newSliceState(t *trace.Trace, deps *cdg.Deps, c Criteria, opts Options, live LiveMem, maxReg uint32, n int) *sliceState {
	s := &sliceState{
		t:    t,
		deps: deps,
		crit: c,
		opts: opts,
		res: &Result{
			Criteria: c.Name(),
			Total:    n,
			InSlice:  NewBitset(n),
		},
		live:        live,
		regs:        getRegSet(maxReg, n),
		byFunc:      make([]int, len(t.Funcs)),
		sliceByFunc: make([]int, len(t.Funcs)),
	}
	if opts.ProgressPoints > 0 {
		s.sampleEvery = n / opts.ProgressPoints
		if s.sampleEvery == 0 {
			s.sampleEvery = 1
		}
	}
	return s
}

func (s *sliceState) thread(tid uint8) *threadState {
	th := s.threads[tid]
	if th == nil {
		th = getThreadState()
		s.threads[tid] = th
	}
	return th
}

// bumpFunc counts a record against fn, growing the dense tally if the trace
// names more functions than its symbol table (unvalidated traces).
func bumpFunc(tally *[]int, fn trace.FuncID) {
	if int(fn) >= len(*tally) {
		*tally = append(*tally, make([]int, int(fn)+1-len(*tally))...)
	}
	(*tally)[fn]++
}

// step processes record i; it is the whole per-record body of the backward
// pass, identical in effect to the original single-criterion loop.
func (s *sliceState) step(i int, r *trace.Rec) {
	th := s.thread(r.TID)
	s.byThread[r.TID]++
	bumpFunc(&s.byFunc, r.Func())
	s.curMarked = false

	// Criteria: reaching this program point may make variables live.
	if mem, anchor := s.crit.At(i, r, s.t); len(mem) > 0 || anchor {
		for _, rg := range mem {
			s.live.Add(rg)
		}
		if anchor {
			s.markSlice(i, r, th)
			s.setReg(r.Src1)
			s.setReg(r.Src2)
		}
	}

	switch r.Kind {
	case isa.KindConst:
		if s.regs.Kill(uint32(r.Dst)) {
			s.markSlice(i, r, th)
		}
	case isa.KindOp:
		if s.regs.Kill(uint32(r.Dst)) {
			s.markSlice(i, r, th)
			s.setReg(r.Src1)
			s.setReg(r.Src2)
		}
	case isa.KindLoad:
		if s.regs.Kill(uint32(r.Dst)) {
			s.markSlice(i, r, th)
			s.live.Add(r.MemRange())
			s.setReg(r.Src2) // address register
		}
	case isa.KindStore:
		if s.live.Kill(r.MemRange()) {
			s.markSlice(i, r, th)
			s.setReg(r.Src1) // value
			s.setReg(r.Src2) // address register
		}
	case isa.KindBranch:
		if !s.opts.NoControlDeps {
			if th.frames.at(th.depth).takePending(r.PC) {
				s.markSlice(i, r, th)
				s.setReg(r.Src1) // condition
			}
		}
	case isa.KindRet:
		// Walking backward, a return means we are entering the callee's
		// body: deeper frame, fresh pending/contribution scope.
		th.depth++
		th.frames.at(th.depth).reset()
	case isa.KindCall:
		fr := th.frames.at(th.depth)
		contributed := fr.contrib
		s.res.PendingLeft += len(fr.pending)
		fr.reset()
		th.depth--
		if contributed {
			// Interprocedural control dependence: the call instruction
			// guards everything its instance executed.
			s.markSlice(i, r, th)
		}
	case isa.KindSyscall:
		// A syscall defines the memory it writes (e.g. recvfrom filling
		// the response buffer): if any of that is live, the external
		// input is part of the provenance.
		if eff := s.t.Sys[i]; eff != nil {
			hit := false
			for _, w := range eff.Writes {
				if s.live.Kill(w) {
					hit = true
				}
			}
			if s.regs.Kill(uint32(r.Dst)) {
				hit = true
			}
			if hit {
				s.markSlice(i, r, th)
				for _, rd := range eff.Reads {
					s.live.Add(rd)
				}
			}
		}
	case isa.KindMarker, isa.KindNop:
		// Criteria handled above; markers are pseudo-instructions and
		// never join the slice themselves.
	}

	s.processed++
	if s.curMarked {
		s.sliced++
	}
	if r.TID == s.opts.MainThread {
		s.mainProcessed++
		if s.curMarked {
			s.mainSliced++
		}
	}
	if s.sampleEvery > 0 && s.processed%s.sampleEvery == 0 {
		s.res.Progress = append(s.res.Progress, ProgressPoint{s.processed, s.sliced, s.mainProcessed, s.mainSliced})
	}
}

// markSlice adds record i to the slice, credits its thread/function tallies,
// flags its frame as contributing, and schedules its control-dependence
// branches on the pending list.
func (s *sliceState) markSlice(i int, r *trace.Rec, th *threadState) {
	if s.res.InSlice.Get(i) {
		return
	}
	s.res.InSlice.Set(i)
	s.res.SliceCount++
	s.curMarked = true
	s.sliceByThread[r.TID]++
	bumpFunc(&s.sliceByFunc, r.Func())
	fr := th.frames.at(th.depth)
	fr.contrib = true
	if s.opts.NoControlDeps || s.deps == nil {
		return
	}
	for _, bpc := range s.deps.Of(r.PC) {
		fr.addPending(bpc)
	}
}

func (s *sliceState) setReg(r isa.Reg) {
	if r != isa.RegNone {
		s.regs.Set(uint32(r))
	}
}

// finish converts the dense tallies into the Result's maps (nonzero entries
// only, matching what per-record map increments would have produced),
// flushes the progress tail, and totals the pending-branch residue.
func (s *sliceState) finish() *Result {
	res := s.res
	res.ByThread = make(map[uint8]int)
	res.SliceByThread = make(map[uint8]int)
	for tid := 0; tid < 256; tid++ {
		if s.byThread[tid] > 0 {
			res.ByThread[uint8(tid)] = s.byThread[tid]
		}
		if s.sliceByThread[tid] > 0 {
			res.SliceByThread[uint8(tid)] = s.sliceByThread[tid]
		}
	}
	res.ByFunc = make(map[trace.FuncID]int)
	res.SliceByFunc = make(map[trace.FuncID]int)
	for fn, c := range s.byFunc {
		if c > 0 {
			res.ByFunc[trace.FuncID(fn)] = c
		}
	}
	for fn, c := range s.sliceByFunc {
		if c > 0 {
			res.SliceByFunc[trace.FuncID(fn)] = c
		}
	}
	if s.sampleEvery > 0 && (len(res.Progress) == 0 || res.Progress[len(res.Progress)-1].Processed != s.processed) {
		res.Progress = append(res.Progress, ProgressPoint{s.processed, s.sliced, s.mainProcessed, s.mainSliced})
	}
	for _, th := range s.threads {
		if th != nil {
			res.PendingLeft += th.frames.pendingLeft()
		}
	}
	return res
}

// Slice runs the backward pass over t with the given criteria, control
// dependences (from the forward pass; may be nil only when
// opts.NoControlDeps is set), and options.
func Slice(t *trace.Trace, deps *cdg.Deps, c Criteria, opts Options) (*Result, error) {
	rs, err := SliceMulti(t, deps, []Criteria{c}, opts)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// SliceMulti runs the backward pass once for several criteria: the trace is
// walked in reverse a single time, with one live-register set, live-memory
// set, and pending-branch state maintained per criterion. Results come back
// in criteria order and are identical to what len(cs) independent Slice
// calls would produce — one stored forward pass serves many backward
// passes, and now those backward passes share the trace walk too.
//
// On large traces with more than one worker available the reverse walk
// itself runs segmented and parallel (see Options.Segments and segment.go);
// the output is byte-identical to the sequential walk in every field.
func SliceMulti(t *trace.Trace, deps *cdg.Deps, cs []Criteria, opts Options) ([]*Result, error) {
	return SliceMultiSource(TraceSource(t), deps, cs, opts)
}

// SliceMultiSource is SliceMulti over an abstract record source. With a
// StreamSource over a v3 block reader the walks decode one block per walker
// at a time — peak record memory is O(workers × blockRecs) instead of the
// whole trace — and segment boundaries are planned on block bounds so no
// block is decoded by two scan workers. The output is byte-identical to
// slicing the materialized trace.
func SliceMultiSource(src Source, deps *cdg.Deps, cs []Criteria, opts Options) ([]*Result, error) {
	if len(cs) == 0 {
		return nil, fmt.Errorf("slicer: no criteria")
	}
	for _, c := range cs {
		if c == nil {
			return nil, fmt.Errorf("slicer: nil criteria")
		}
	}
	if deps == nil && !opts.NoControlDeps {
		return nil, fmt.Errorf("slicer: control dependences required (or set NoControlDeps)")
	}
	if opts.Live != nil && len(cs) > 1 {
		return nil, fmt.Errorf("slicer: Options.Live is a single instance and cannot be shared across %d fused criteria", len(cs))
	}
	start := time.Now()
	n := src.NumRecs()
	bounds := planSegmentsAligned(n, resolveSegments(opts, n), segmentAlign(src))
	var (
		out []*Result
		err error
	)
	if len(bounds) > 2 {
		out, err = sliceSegmented(src, deps, cs, opts, bounds)
	} else {
		out, err = sliceSequential(src, deps, cs, opts)
		if err == nil && opts.Stats != nil {
			*opts.Stats = PassStats{Segments: 1, Sequential: true, ScanMs: msSince(start)}
		}
	}
	if err == nil && opts.Stats != nil {
		opts.Stats.TotalMs = msSince(start)
	}
	return out, err
}

// segmentAlign is the alignment for interior segment boundaries: block
// bounds for streaming sources (so a block is only ever decoded by one scan
// worker), plain bitset-word alignment otherwise. Block sizes are multiples
// of 64, so block alignment implies word disjointness.
func segmentAlign(src Source) int {
	if b := src.BlockRecs(); b > 0 {
		return b
	}
	return minSegmentRecs
}

// resolveSegments turns Options.Segments into an effective segment count.
func resolveSegments(opts Options, n int) int {
	if opts.Live != nil || opts.Segments == 1 || opts.Segments < 0 {
		return 1
	}
	if opts.Segments > 1 {
		return opts.Segments
	}
	// Automatic: segment only when the trace is big enough to amortize the
	// stitch and more than one worker can actually run.
	workers := opts.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers <= 1 || n < autoSegmentMinRecs {
		return 1
	}
	return workers * segmentsPerWorker
}

// sliceSequential is the single-goroutine reverse walk: the reference
// semantics every other engine must reproduce bit for bit.
func sliceSequential(src Source, deps *cdg.Deps, cs []Criteria, opts Options) ([]*Result, error) {
	t := src.Shell()
	n := src.NumRecs()
	buf := getRecBuf()
	defer putRecBuf(buf)
	maxReg, err := maxRegOfSource(src, 0, n, buf)
	if err != nil {
		return nil, err
	}
	states := make([]*sliceState, len(cs))
	for k, c := range cs {
		live := opts.Live
		if live == nil {
			live = getWordSet()
		}
		states[k] = newSliceState(t, deps, c, opts, live, maxReg, n)
	}
	defer func() {
		for _, s := range states {
			putRegSet(s.regs)
			if opts.Live == nil {
				if ws, ok := s.live.(*WordSet); ok {
					putWordSet(ws)
				}
			}
			for _, th := range s.threads {
				putThreadState(th)
			}
		}
	}()
	canceled := false
	err = reverseWindows(src, 0, n, buf, func(wlo int, recs []trace.Rec) bool {
		for i := wlo + len(recs) - 1; i >= wlo; i-- {
			if opts.Canceled != nil && i&(cancelStride-1) == 0 && opts.Canceled() {
				canceled = true
				return false
			}
			r := &recs[i-wlo]
			for _, s := range states {
				s.step(i, r)
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if canceled {
		return nil, ErrCanceled
	}
	out := make([]*Result, len(states))
	for k, s := range states {
		out[k] = s.finish()
	}
	return out, nil
}

// cancelStride spaces out the Canceled polls: cheap enough to be invisible
// in the hot loop, frequent enough that a deadline or a cancellation lands
// within a few million instructions of being raised.
const cancelStride = 1 << 15

// maxRegOf scans records [lo, hi) for the largest register operand, so the
// live-register bitsets can be presized once instead of grown mid-walk.
func maxRegOf(recs []trace.Rec, lo, hi int) uint32 {
	var max uint32
	for i := lo; i < hi; i++ {
		r := &recs[i]
		if uint32(r.Dst) > max {
			max = uint32(r.Dst)
		}
		if uint32(r.Src1) > max {
			max = uint32(r.Src1)
		}
		if uint32(r.Src2) > max {
			max = uint32(r.Src2)
		}
	}
	return max
}

func msSince(t0 time.Time) float64 { return float64(time.Since(t0)) / float64(time.Millisecond) }
