package slicer

import (
	"bytes"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"unsafe"

	"webslice/internal/isa"
	"webslice/internal/trace"
	"webslice/internal/vmem"
)

// streamOf round-trips tr through the v3 block encoding and returns a
// streaming source over it.
func streamOf(t *testing.T, tr *trace.Trace, blockRecs int) Source {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteV3Blocks(&buf, blockRecs); err != nil {
		t.Fatal(err)
	}
	br, err := trace.OpenV3(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return StreamSource(br)
}

// TestStreamMatchesMaterialized: slicing through a streaming v3 source must
// produce byte-identical Results to slicing the materialized trace — across
// criteria, sequential and segmented engines, and block sizes that do and do
// not divide the trace length (non-aligned final blocks).
func TestStreamMatchesMaterialized(t *testing.T) {
	for _, tc := range segCases() {
		deps := forward(t, tc.m.Tr)
		for _, opts := range []Options{
			{ProgressPoints: 16, MainThread: 1},
			{Segments: 4, Workers: 4, ProgressPoints: 7},
			{Segments: 7, Workers: 2},
			{NoControlDeps: true},
		} {
			want, err := SliceMulti(tc.m.Tr, deps, tc.cs, opts)
			if err != nil {
				t.Fatalf("%s materialized: %v", tc.name, err)
			}
			for _, blockRecs := range []int{64, 192, 1024} {
				src := streamOf(t, tc.m.Tr, blockRecs)
				got, err := SliceMultiSource(src, deps, tc.cs, opts)
				if err != nil {
					t.Fatalf("%s streaming(block=%d) opts %+v: %v", tc.name, blockRecs, opts, err)
				}
				for k := range tc.cs {
					if !reflect.DeepEqual(want[k], got[k]) {
						t.Fatalf("%s streaming(block=%d) opts %+v criterion %s: result differs from materialized",
							tc.name, blockRecs, opts, tc.cs[k].Name())
					}
				}
			}
		}
	}
}

func TestPlanSegmentsAligned(t *testing.T) {
	for _, tc := range []struct{ n, k, align int }{
		{1000, 4, 128},   // n not a multiple of the block size
		{1000, 16, 192},  // non-power-of-two block size, k clamped
		{65536, 7, 4096}, // default v3 block size
		{383, 5, 64},     // tiny trace, k clamped to n/align
		{64, 8, 64},      // degenerate: one segment
		{1 << 20, 32, 256},
	} {
		b := planSegmentsAligned(tc.n, tc.k, tc.align)
		if b[0] != 0 || b[len(b)-1] != tc.n {
			t.Fatalf("n=%d k=%d align=%d: bounds %v do not cover [0,n]", tc.n, tc.k, tc.align, b)
		}
		if len(b)-1 > tc.k {
			t.Fatalf("n=%d k=%d align=%d: %d segments exceed k", tc.n, tc.k, tc.align, len(b)-1)
		}
		for s := 1; s < len(b); s++ {
			if b[s] <= b[s-1] {
				t.Fatalf("n=%d k=%d align=%d: bounds %v not strictly increasing", tc.n, tc.k, tc.align, b)
			}
			if s < len(b)-1 && b[s]%tc.align != 0 {
				t.Fatalf("n=%d k=%d align=%d: interior boundary %d not block-aligned", tc.n, tc.k, tc.align, b[s])
			}
			if s < len(b)-1 && b[s]%minSegmentRecs != 0 {
				t.Fatalf("n=%d k=%d align=%d: boundary %d breaks bitset-word disjointness", tc.n, tc.k, tc.align, b[s])
			}
		}
	}
	// A streaming source's plan must land on its block bounds.
	src := streamOf(t, constTrace(t, 1000), 128)
	if got := segmentAlign(src); got != 128 {
		t.Fatalf("segmentAlign(stream) = %d, want 128", got)
	}
	if got := segmentAlign(TraceSource(constTrace(t, 100))); got != minSegmentRecs {
		t.Fatalf("segmentAlign(materialized) = %d, want %d", got, minSegmentRecs)
	}
}

// constTrace builds an n-record single-function trace of consts with one
// pixel marker at the end — the minimal workload for streaming-path tests.
func constTrace(t *testing.T, n int) *trace.Trace {
	t.Helper()
	tr := trace.New()
	fn, err := tr.AddFunc("f", "gfx")
	if err != nil {
		t.Fatal(err)
	}
	tr.Threads = append(tr.Threads, trace.ThreadInfo{ID: 0, Name: "main"})
	tr.Recs = make([]trace.Rec, n)
	for i := range tr.Recs {
		tr.Recs[i] = trace.Rec{PC: trace.MakePC(fn, uint16(i%100)), Kind: isa.KindConst, Dst: isa.Reg(1 + i%8)}
	}
	tr.Recs[n-1] = trace.Rec{PC: trace.MakePC(fn, 0), Kind: isa.KindMarker, Aux: 1}
	tr.Marks[n-1] = &trace.Mark{ID: 1, Kind: isa.MarkPixels, Buf: vmem.Range{Addr: 0x100, Size: 64}}
	return tr
}

// countingSource wraps a Source, counting LoadRange calls.
type countingSource struct {
	Source
	loads *atomic.Int64
}

func (c countingSource) LoadRange(lo, hi int, buf []trace.Rec) ([]trace.Rec, error) {
	c.loads.Add(1)
	return c.Source.LoadRange(lo, hi, buf)
}

// TestStreamCanceledMidBlock: the Canceled hook fires at record indices that
// are multiples of cancelStride. With a 192-record block size, index 32768
// falls 128 records into a block, so the poll lands mid-block and the walk
// must abort without decoding the blocks below it.
func TestStreamCanceledMidBlock(t *testing.T) {
	n := cancelStride + 232 // walk starts above the poll index, poll mid-block
	tr := constTrace(t, n)
	var loads atomic.Int64
	src := countingSource{Source: streamOf(t, tr, 192), loads: &loads}
	totalBlocks := (n + 191) / 192
	if cancelStride%192 == 0 {
		t.Fatal("test premise broken: poll index is block-aligned")
	}
	_, err := SliceMultiSource(src, nil, []Criteria{PixelCriteria{}}, Options{
		NoControlDeps: true,
		Segments:      1,
		Canceled:      func() bool { return true },
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// The maxReg prescan reads every block once; the walk itself must stop
	// within a couple of blocks of the first mid-block poll instead of
	// decoding the whole trace again.
	walkLoads := loads.Load() - int64(totalBlocks)
	if walkLoads < 1 || walkLoads > 4 {
		t.Fatalf("walk decoded %d blocks before honoring cancellation (total %d)", walkLoads, totalBlocks)
	}
}

// TestStreamDecodeErrorPropagates: a corrupt block surfaces as a typed
// decode error from the slice, not a panic or a silent wrong answer.
func TestStreamDecodeErrorPropagates(t *testing.T) {
	tr := constTrace(t, 1024)
	var buf bytes.Buffer
	if err := tr.WriteV3Blocks(&buf, 64); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	// Open first (open only checks the index), then corrupt a block payload
	// in place so DecodeBlock trips mid-walk.
	br, err := trace.OpenV3(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc[200] ^= 0xFF
	for _, opts := range []Options{{NoControlDeps: true, Segments: 1}, {NoControlDeps: true, Segments: 4, Workers: 2}} {
		_, err = SliceMultiSource(StreamSource(br), nil, []Criteria{PixelCriteria{}}, opts)
		var de *trace.DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("opts %+v: err = %v, want *trace.DecodeError", opts, err)
		}
	}
}

// TestStreamSliceBoundedAllocBytes is the peak-memory regression gate: a
// sequential streaming slice of a 64Ki-record trace must allocate a small
// fraction of what materializing the record slice would cost, proving the
// walk decodes one block window at a time instead of the whole trace.
func TestStreamSliceBoundedAllocBytes(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates TotalAlloc; the byte bound runs without -race")
	}
	n := 1 << 16
	tr := constTrace(t, n)
	src := streamOf(t, tr, 256)
	cs := []Criteria{PixelCriteria{}}
	opts := Options{NoControlDeps: true, Segments: 1}
	run := func() {
		if _, err := SliceMultiSource(src, nil, cs, opts); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the scratch pools
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	run()
	runtime.ReadMemStats(&m1)
	recBytes := uint64(n) * uint64(unsafe.Sizeof(trace.Rec{}))
	delta := m1.TotalAlloc - m0.TotalAlloc
	if delta > recBytes/4 {
		t.Fatalf("streaming slice allocated %d bytes; materializing the records costs %d — the walk must stay block-windowed (limit %d)",
			delta, recBytes, recBytes/4)
	}
}

// TestStreamWindowAllocsSteadyState: after warm-up, the per-window load path
// itself stays allocation-light (pooled inflater, pooled window buffer).
func TestStreamWindowAllocsSteadyState(t *testing.T) {
	tr := constTrace(t, 4096)
	src := streamOf(t, tr, 256)
	buf := getRecBuf()
	defer putRecBuf(buf)
	sink := 0
	avg := testing.AllocsPerRun(20, func() {
		err := reverseWindows(src, 0, src.NumRecs(), buf, func(_ int, recs []trace.Rec) bool {
			sink += len(recs)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	blocks := float64(16)
	if avg > 4*blocks {
		t.Fatalf("reverseWindows averaged %.1f allocs for %g blocks — the decode path must stay pooled", avg, blocks)
	}
}
