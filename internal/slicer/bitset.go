package slicer

// Bitset is a fixed-size bitset over record indices.
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Get reports bit i.
func (b Bitset) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// regSet is the live-register set of the liveness analysis: a dense bitset
// keyed by register ID with destructive test-and-clear. Registers are SSA
// (written once), so Kill at the defining instruction both answers "was this
// value needed?" and retires the register.
//
// The set is presized to the trace's maximum register ID before the walk
// (see maxRegOf), so the hot loop never grows it; Set still grows on demand
// as a safety net for presize caps on adversarial traces. Instances are
// pooled across segments and across service jobs — the parallel segment
// pass multiplies the number of live sets by the segment count, and
// re-zeroing a pooled array is far cheaper than allocating it.
type regSet struct {
	words []uint64
}

// Set marks register id live.
func (b *regSet) Set(id uint32) {
	w := int(id >> 6)
	if w >= len(b.words) {
		grown := make([]uint64, w+w/2+1)
		copy(grown, b.words)
		b.words = grown
	}
	b.words[w] |= 1 << (id & 63)
}

// Get reports whether register id is live.
func (b *regSet) Get(id uint32) bool {
	w := int(id >> 6)
	return w < len(b.words) && b.words[w]&(1<<(id&63)) != 0
}

// Kill clears register id and reports whether it was live.
func (b *regSet) Kill(id uint32) bool {
	w := int(id >> 6)
	if w >= len(b.words) {
		return false
	}
	mask := uint64(1) << (id & 63)
	was := b.words[w]&mask != 0
	b.words[w] &^= mask
	return was
}

// orFrom unions src into b, growing b if src is larger.
func (b *regSet) orFrom(src *regSet) {
	if len(src.words) > len(b.words) {
		grown := make([]uint64, len(src.words))
		copy(grown, b.words)
		b.words = grown
	}
	for i, w := range src.words {
		b.words[i] |= w
	}
}

// presize ensures capacity for register IDs up to maxID without hot-loop
// growth, capped at capBits so a hostile trace naming astronomical register
// IDs cannot force a giant upfront allocation (Set still grows lazily past
// the cap, exactly as an unsized set would).
func (b *regSet) presize(maxID uint32, capBits int) {
	bits := int(maxID) + 1
	if bits > capBits {
		bits = capBits
	}
	w := (bits + 63) / 64
	if w > len(b.words) {
		b.words = make([]uint64, w)
	}
}

// reset zeroes the set for reuse, keeping its capacity.
func (b *regSet) reset() {
	clear(b.words)
}
