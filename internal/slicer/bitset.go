package slicer

// Bitset is a fixed-size bitset over record indices.
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Get reports bit i.
func (b Bitset) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// bitsetGrow is a growable bitset keyed by register ID, with destructive
// test-and-clear: the live-register set of the liveness analysis. Registers
// are SSA (written once), so Kill at the defining instruction both answers
// "was this value needed?" and retires the register.
type bitsetGrow struct {
	words []uint64
}

func newBitsetGrow() *bitsetGrow { return &bitsetGrow{} }

// Set marks register id live.
func (b *bitsetGrow) Set(id uint32) {
	w := int(id >> 6)
	if w >= len(b.words) {
		grown := make([]uint64, w+w/2+1)
		copy(grown, b.words)
		b.words = grown
	}
	b.words[w] |= 1 << (id & 63)
}

// Get reports whether register id is live.
func (b *bitsetGrow) Get(id uint32) bool {
	w := int(id >> 6)
	return w < len(b.words) && b.words[w]&(1<<(id&63)) != 0
}

// Kill clears register id and reports whether it was live.
func (b *bitsetGrow) Kill(id uint32) bool {
	w := int(id >> 6)
	if w >= len(b.words) {
		return false
	}
	mask := uint64(1) << (id & 63)
	was := b.words[w]&mask != 0
	b.words[w] &^= mask
	return was
}
