package slicer

// Micro-benchmarks backing the fused backward pass and the hot-loop
// allocation cuts: the two-criteria fused walk should approach the cost of
// a single walk, and per-record work should be allocation-free (pending
// branches live in reusable frame slices, per-thread/function tallies in
// dense arrays).

import (
	"testing"

	"webslice/internal/cdg"
	"webslice/internal/cfg"
	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// benchWorkload builds a trace of roughly n*14 records with the shapes the
// real renderer produces: nested calls, data-dependent branches, tile
// stores, bookkeeping, and periodic output syscalls.
func benchWorkload(n int) *vm.Machine {
	m := vm.New()
	m.Thread(0, "main")
	tile := m.Tile.Alloc(4096)
	net := m.IOb.Alloc(64)
	stats := m.Heap.Alloc(64)
	render := m.Func("render", "gfx")
	blend := m.Func("blend", "gfx")
	for i := 0; i < n; i++ {
		m.Call(render, func() {
			m.At("head")
			v := m.Const(uint64(i))
			m.Call(blend, func() {
				m.At("body")
				c := m.Const(uint64(i % 2))
				if m.Branch(c) {
					m.At("odd")
					v2 := m.AddImm(v, 1)
					m.StoreU32(tile+vmem.Addr(4*(i%1024)), v2)
				} else {
					m.At("even")
					m.StoreU32(tile+vmem.Addr(4*(i%1024)), v)
				}
			})
			m.Bookkeep(stats, 2)
		})
		if i%64 == 0 {
			b := m.Const(uint64(i))
			m.StoreU32(net, b)
			m.Syscall(isa.SysSendto, isa.RegNone, isa.RegNone,
				[]vmem.Range{{Addr: net, Size: 4}}, nil, nil)
		}
	}
	m.MarkPixels(vmem.Range{Addr: tile, Size: 4096})
	return m
}

func benchDeps(b *testing.B, m *vm.Machine) *cdg.Deps {
	b.Helper()
	f, err := cfg.Build(m.Tr)
	if err != nil {
		b.Fatal(err)
	}
	return cdg.Compute(f)
}

// BenchmarkSliceSingle is the baseline single-criterion walk; watch
// allocs/op to catch per-record allocation regressions.
func BenchmarkSliceSingle(b *testing.B) {
	m := benchWorkload(4096)
	deps := benchDeps(b, m)
	b.ReportAllocs()
	b.SetBytes(int64(len(m.Tr.Recs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Slice(m.Tr, deps, PixelCriteria{}, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTwoCriteria compares two independent walks against one fused
// walk over the same trace — the repro pipeline's pixel+syscall pattern.
func BenchmarkTwoCriteria(b *testing.B) {
	m := benchWorkload(4096)
	deps := benchDeps(b, m)
	for _, mode := range []string{"sequential", "fused"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(m.Tr.Recs)))
			for i := 0; i < b.N; i++ {
				if mode == "sequential" {
					if _, err := Slice(m.Tr, deps, PixelCriteria{}, Options{}); err != nil {
						b.Fatal(err)
					}
					if _, err := Slice(m.Tr, deps, SyscallCriteria{}, Options{}); err != nil {
						b.Fatal(err)
					}
				} else {
					if _, err := SliceMulti(m.Tr, deps,
						[]Criteria{PixelCriteria{}, SyscallCriteria{}}, Options{}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkSliceSequential / BenchmarkSliceSegmented are the benchstat
// pair for the parallel backward pass: identical workload and criteria,
// scheduling forced sequential vs forced segmented. Compare with
//
//	go test -bench 'SliceSe(quential|gmented)' -count 10 | benchstat -
func BenchmarkSliceSequential(b *testing.B) {
	m := benchWorkload(4096)
	deps := benchDeps(b, m)
	cs := []Criteria{PixelCriteria{}, SyscallCriteria{}}
	b.ReportAllocs()
	b.SetBytes(int64(len(m.Tr.Recs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SliceMulti(m.Tr, deps, cs, Options{Segments: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSliceSegmented(b *testing.B) {
	m := benchWorkload(4096)
	deps := benchDeps(b, m)
	cs := []Criteria{PixelCriteria{}, SyscallCriteria{}}
	b.ReportAllocs()
	b.SetBytes(int64(len(m.Tr.Recs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SliceMulti(m.Tr, deps, cs, Options{Segments: defaultWorkers() * segmentsPerWorker}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverlaps measures the splitRange early-exit in the Overlaps
// probes: a query over a large pixel buffer whose very first word is live
// should cost O(1), not a full walk of the range.
func BenchmarkOverlaps(b *testing.B) {
	const bufSize = 1 << 20 // a 1 MiB framebuffer
	full := vmem.Range{Addr: 0, Size: bufSize}
	b.Run("wordset/hit-first", func(b *testing.B) {
		s := NewWordSet()
		s.Add(vmem.Range{Addr: 0, Size: 8})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !s.Overlaps(full) {
				b.Fatal("expected overlap")
			}
		}
	})
	b.Run("wordset/miss", func(b *testing.B) {
		s := NewWordSet()
		s.Add(vmem.Range{Addr: bufSize + 64, Size: 8})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if s.Overlaps(full) {
				b.Fatal("unexpected overlap")
			}
		}
	})
	b.Run("pageset/hit-first", func(b *testing.B) {
		s := NewPageSet()
		s.Add(vmem.Range{Addr: 0, Size: 8})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !s.Overlaps(full) {
				b.Fatal("expected overlap")
			}
		}
	})
}
