package slicer

import (
	"runtime"
	"sync"

	"webslice/internal/trace"
)

// The segmented backward pass multiplies the number of live-register sets,
// live-memory sets, and call-frame stacks by the segment count, and the
// slicing service runs many passes over a process lifetime — all three kinds
// of scratch are pooled here. Pooled objects are reset on Get, never on Put,
// so a stale object can never leak state into a pass.

var regSetPool = sync.Pool{New: func() any { return new(regSet) }}

// regSetPresizeFloor is the smallest presized register set: below this a
// dense allocation is cheap enough to never bother growing lazily.
const regSetPresizeFloor = 1 << 16

// getRegSet returns a cleared register set presized for a trace of n
// records whose largest register operand is maxReg. The presize is capped
// proportional to the trace (a hostile trace naming astronomical register
// IDs falls back to lazy growth in Set, same as an unsized set).
func getRegSet(maxReg uint32, n int) *regSet {
	b := regSetPool.Get().(*regSet)
	b.reset()
	capBits := 4 * n
	if capBits < regSetPresizeFloor {
		capBits = regSetPresizeFloor
	}
	b.presize(maxReg, capBits)
	return b
}

func putRegSet(b *regSet) {
	if b != nil {
		regSetPool.Put(b)
	}
}

var wordSetPool = sync.Pool{New: func() any { return NewWordSet() }}

// getWordSet returns an empty live-memory set, reusing map buckets from a
// previous pass when the pool has one.
func getWordSet() *WordSet {
	s := wordSetPool.Get().(*WordSet)
	s.reset()
	return s
}

func putWordSet(s *WordSet) {
	if s != nil {
		wordSetPool.Put(s)
	}
}

var recBufPool = sync.Pool{New: func() any { return new([]trace.Rec) }}

// getRecBuf returns a record window buffer for streaming walks; its capacity
// grows to the source's block size on first use and is kept across passes.
func getRecBuf() *[]trace.Rec {
	return recBufPool.Get().(*[]trace.Rec)
}

func putRecBuf(b *[]trace.Rec) {
	if b != nil {
		*b = (*b)[:0]
		recBufPool.Put(b)
	}
}

var threadStatePool = sync.Pool{New: func() any { return new(threadState) }}

// getThreadState returns a zero-depth thread state whose frame stack keeps
// the pending-list capacity of its previous life.
func getThreadState() *threadState {
	th := threadStatePool.Get().(*threadState)
	th.depth = 0
	th.frames.resetAll()
	return th
}

func putThreadState(th *threadState) {
	if th != nil {
		threadStatePool.Put(th)
	}
}

// resetAll clears every frame in place, keeping both the per-depth slices
// and each frame's pending capacity for reuse.
func (s *frameStack) resetAll() {
	for i := range s.pos {
		s.pos[i].reset()
	}
	for i := range s.neg {
		s.neg[i].reset()
	}
}

// defaultWorkers is the worker count when Options.Workers is unset.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }
