package slicer

import (
	"webslice/internal/trace"
)

// Source supplies trace records to the backward pass. Two implementations
// exist: TraceSource wraps a fully materialized *trace.Trace (the walks read
// its record slice zero-copy, exactly as before), and StreamSource wraps a
// *trace.BlockReader over a v3 block-compressed trace, decoding one block at
// a time so the pass never holds more than one window per walker in memory.
type Source interface {
	// Shell returns the trace's symbol and side tables. For a streaming
	// source the record slice is nil; criteria evaluation, tallies, and
	// syscall-effect lookups only touch the tables.
	Shell() *trace.Trace
	// NumRecs returns the total record count.
	NumRecs() int
	// Materialized returns the whole record slice when the source is fully
	// in memory, else nil.
	Materialized() []trace.Rec
	// BlockRecs returns the streaming window granularity — a multiple of 64
	// so segment planning on block boundaries preserves the bitset-word
	// disjointness of the parallel scan — or 0 for materialized sources.
	BlockRecs() int
	// LoadRange loads records [lo, hi), which must lie within a single
	// block for streaming sources, reusing buf's backing array when it has
	// capacity. The returned slice indexes record lo+j at position j and is
	// valid until the next LoadRange with the same buf.
	LoadRange(lo, hi int, buf []trace.Rec) ([]trace.Rec, error)
}

// traceSource adapts a materialized trace.
type traceSource struct{ t *trace.Trace }

// TraceSource wraps an in-memory trace as a Source.
func TraceSource(t *trace.Trace) Source { return traceSource{t: t} }

func (s traceSource) Shell() *trace.Trace       { return s.t }
func (s traceSource) NumRecs() int              { return len(s.t.Recs) }
func (s traceSource) Materialized() []trace.Rec { return s.t.Recs }
func (s traceSource) BlockRecs() int            { return 0 }
func (s traceSource) LoadRange(lo, hi int, _ []trace.Rec) ([]trace.Rec, error) {
	return s.t.Recs[lo:hi], nil
}

// streamSource adapts a v3 block reader.
type streamSource struct{ br *trace.BlockReader }

// StreamSource wraps a v3 block reader as a streaming Source. Concurrent
// walkers may call LoadRange with distinct buffers.
func StreamSource(br *trace.BlockReader) Source { return streamSource{br: br} }

func (s streamSource) Shell() *trace.Trace       { return s.br.Shell() }
func (s streamSource) NumRecs() int              { return s.br.NumRecs() }
func (s streamSource) Materialized() []trace.Rec { return nil }
func (s streamSource) BlockRecs() int            { return s.br.BlockRecs() }

func (s streamSource) LoadRange(lo, hi int, buf []trace.Rec) ([]trace.Rec, error) {
	b := s.br.BlockOf(lo)
	recs, err := s.br.DecodeBlock(b, buf)
	if err != nil {
		return nil, err
	}
	start, _ := s.br.BlockBounds(b)
	return recs[lo-start : hi-start], nil
}

// reverseWindows calls fn for successive windows covering [lo, hi), LAST
// window first — the natural order of the backward pass. Each window's slice
// indexes record wlo+j at position j. A materialized source yields the whole
// range as one zero-copy window; a streaming source yields one block-clipped
// window at a time, reusing *buf. fn returning false stops the iteration
// early (no error).
func reverseWindows(src Source, lo, hi int, buf *[]trace.Rec, fn func(wlo int, recs []trace.Rec) bool) error {
	if hi <= lo {
		return nil
	}
	if recs := src.Materialized(); recs != nil {
		fn(lo, recs[lo:hi])
		return nil
	}
	blockRecs := src.BlockRecs()
	for whi := hi; whi > lo; {
		wlo := (whi - 1) / blockRecs * blockRecs // start of the block holding whi-1
		if wlo < lo {
			wlo = lo
		}
		recs, err := src.LoadRange(wlo, whi, *buf)
		if err != nil {
			return err
		}
		*buf = recs[:0]
		if !fn(wlo, recs) {
			return nil
		}
		whi = wlo
	}
	return nil
}

// maxRegOfSource scans records [lo, hi) of src for the largest register
// operand, window by window.
func maxRegOfSource(src Source, lo, hi int, buf *[]trace.Rec) (uint32, error) {
	var max uint32
	err := reverseWindows(src, lo, hi, buf, func(_ int, recs []trace.Rec) bool {
		if m := maxRegOf(recs, 0, len(recs)); m > max {
			max = m
		}
		return true
	})
	return max, err
}
