package slicer

import (
	"testing"
	"testing/quick"

	"webslice/internal/cdg"
	"webslice/internal/cfg"
	"webslice/internal/isa"
	"webslice/internal/trace"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

func forward(t *testing.T, tr *trace.Trace) *cdg.Deps {
	t.Helper()
	f, err := cfg.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	return cdg.Compute(f)
}

func pixelSlice(t *testing.T, m *vm.Machine, opts Options) *Result {
	t.Helper()
	res, err := Slice(m.Tr, forward(t, m.Tr), PixelCriteria{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDeadStoreExcluded: a value stored to memory that never reaches the
// marked buffer must not be in the slice; the chain that does reach it must.
func TestDeadChainExcludedLiveChainIncluded(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	buf := m.Tile.Alloc(64)
	junk := m.Heap.Alloc(64)

	liveIdx := []int{}
	deadIdx := []int{}
	rec := func() int { return len(m.Tr.Recs) - 1 }

	a := m.Const(10)
	liveIdx = append(liveIdx, rec())
	b := m.Const(32)
	liveIdx = append(liveIdx, rec())
	sum := m.Op(isa.OpAdd, a, b)
	liveIdx = append(liveIdx, rec())
	m.StoreU32(buf, sum)
	liveIdx = append(liveIdx, rec())

	x := m.Const(99)
	deadIdx = append(deadIdx, rec())
	y := m.OpImm(isa.OpMul, x, 3)
	deadIdx = append(deadIdx, rec())
	m.StoreU32(junk, y)
	deadIdx = append(deadIdx, rec())

	m.MarkPixels(vmem.Range{Addr: buf, Size: 64})

	res := pixelSlice(t, m, Options{})
	for _, i := range liveIdx {
		if !res.InSlice.Get(i) {
			t.Errorf("record %d (%v) should be in the slice", i, m.Tr.Recs[i].Kind)
		}
	}
	for _, i := range deadIdx {
		if res.InSlice.Get(i) {
			t.Errorf("record %d (%v) should NOT be in the slice", i, m.Tr.Recs[i].Kind)
		}
	}
	if res.Percent() >= 100 || res.Percent() <= 0 {
		t.Errorf("percent = %v", res.Percent())
	}
}

// TestOverwriteKillsLiveness: an overwritten store must not be in the slice;
// only the last writer of the marked bytes counts.
func TestOverwriteKillsLiveness(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	buf := m.Tile.Alloc(8)
	first := m.Const(1)
	m.StoreU32(buf, first)
	firstStore := len(m.Tr.Recs) - 1
	second := m.Const(2)
	m.StoreU32(buf, second)
	secondStore := len(m.Tr.Recs) - 1
	m.MarkPixels(vmem.Range{Addr: buf, Size: 4})

	res := pixelSlice(t, m, Options{})
	if res.InSlice.Get(firstStore) {
		t.Error("overwritten store must be excluded")
	}
	if !res.InSlice.Get(secondStore) {
		t.Error("final store must be included")
	}
}

// TestControlDependenceBranchIncluded: the branch guarding an in-slice store
// joins the slice, and so does its condition's producer.
func TestControlDependence(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	fn := m.Func("f", "test")
	buf := m.Tile.Alloc(8)
	var branchIdx, condIdx, guardedIdx int
	run := func(v uint64, mark bool) {
		m.Call(fn, func() {
			m.At("head")
			c := m.Const(v)
			condIdx = len(m.Tr.Recs) - 1
			bi := len(m.Tr.Recs)
			if m.Branch(c) {
				branchIdx = bi
				m.At("then")
				val := m.Const(7)
				m.StoreU32(buf, val)
				guardedIdx = len(m.Tr.Recs) - 1
			} else {
				m.At("else")
				m.Const(0)
			}
			m.At("join")
		})
		if mark {
			m.MarkPixels(vmem.Range{Addr: buf, Size: 4})
		}
	}
	run(0, false) // cold path so the CFG has both arms
	run(1, true)

	res := pixelSlice(t, m, Options{})
	if !res.InSlice.Get(guardedIdx) {
		t.Fatal("guarded store should be in slice")
	}
	if !res.InSlice.Get(branchIdx) {
		t.Error("guarding branch should be in slice (pending-branch mechanism)")
	}
	if !res.InSlice.Get(condIdx) {
		t.Error("branch condition producer should be in slice")
	}

	// Ablation: with control dependences disabled the branch drops out.
	res2, err := Slice(m.Tr, nil, PixelCriteria{}, Options{NoControlDeps: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.InSlice.Get(branchIdx) {
		t.Error("NoControlDeps should exclude the branch")
	}
	if res2.SliceCount > res.SliceCount {
		t.Error("data-only slice cannot be larger than the full slice")
	}
}

// TestUntakenBranchExcluded: a branch whose guarded code never contributes
// stays out of the slice.
func TestUntakenBranchExcluded(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	fn := m.Func("f", "test")
	buf := m.Tile.Alloc(8)
	var coldBranch int
	m.Call(fn, func() {
		m.At("head")
		// This branch guards only junk.
		c := m.Const(1)
		coldBranch = len(m.Tr.Recs)
		junk := m.Heap.Alloc(8)
		if m.Branch(c) {
			m.At("junk")
			v := m.Const(5)
			m.StoreU32(junk, v)
		}
		m.At("real")
		v := m.Const(6)
		m.StoreU32(buf, v)
	})
	m.MarkPixels(vmem.Range{Addr: buf, Size: 4})
	res := pixelSlice(t, m, Options{})
	if res.InSlice.Get(coldBranch) {
		t.Error("branch guarding only dead code must be excluded")
	}
}

// TestInterproceduralCall: a call whose callee contributes joins the slice;
// a call whose callee is pure waste does not.
func TestInterproceduralCall(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	useful := m.Func("useful", "test")
	waste := m.Func("waste", "test")
	buf := m.Tile.Alloc(8)
	junk := m.Heap.Alloc(8)

	usefulCall := len(m.Tr.Recs)
	m.Call(useful, func() {
		v := m.Const(1)
		m.StoreU32(buf, v)
	})
	wasteCall := len(m.Tr.Recs)
	m.Call(waste, func() {
		v := m.Const(2)
		m.StoreU32(junk, v)
	})
	m.MarkPixels(vmem.Range{Addr: buf, Size: 4})

	res := pixelSlice(t, m, Options{})
	if !res.InSlice.Get(usefulCall) {
		t.Error("call to contributing function should be in slice")
	}
	if res.InSlice.Get(wasteCall) {
		t.Error("call to wasted function should be excluded")
	}
}

// TestCrossThreadDataflow: main thread writes a display item, raster thread
// reads it and writes marked pixels — main's work must land in the slice
// through the shared live-memory set.
func TestCrossThreadDataflow(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	m.Thread(1, "raster")
	item := m.Heap.Alloc(8)
	tile := m.Tile.Alloc(8)

	m.Switch(0)
	color := m.Const(0xFF00FF)
	colorIdx := len(m.Tr.Recs) - 1
	m.StoreU32(item, color)

	m.Switch(1)
	v := m.LoadU32(item)
	m.StoreU32(tile, v)
	m.MarkPixels(vmem.Range{Addr: tile, Size: 4})

	res := pixelSlice(t, m, Options{})
	if !res.InSlice.Get(colorIdx) {
		t.Error("main-thread producer should be in slice via shared memory")
	}
	if res.SliceByThread[0] == 0 || res.SliceByThread[1] == 0 {
		t.Errorf("both threads should contribute: %+v", res.SliceByThread)
	}
}

// TestSyscallAsDefinition: recvfrom writes a buffer whose value flows to the
// pixels — the syscall joins the pixel slice as the definition site.
func TestSyscallAsDefinition(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	buf := m.IOb.Alloc(8)
	tile := m.Tile.Alloc(8)
	sysIdx := len(m.Tr.Recs)
	m.Syscall(isa.SysRecvfrom, isa.RegNone, isa.RegNone, nil,
		[]vmem.Range{{Addr: buf, Size: 8}}, []byte("RESPONSE"))
	v := m.LoadU32(buf)
	m.StoreU32(tile, v)
	m.MarkPixels(vmem.Range{Addr: tile, Size: 4})

	res := pixelSlice(t, m, Options{})
	if !res.InSlice.Get(sysIdx) {
		t.Error("input syscall defining consumed bytes should be in slice")
	}
}

// TestSyscallCriteriaSuperset: on a workload whose pixels flow out through
// an output syscall, the syscall slice contains the pixel slice.
func TestSyscallCriteriaSuperset(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	tile := m.Tile.Alloc(8)
	net := m.IOb.Alloc(8)

	v := m.Const(42)
	m.StoreU32(tile, v)
	m.MarkPixels(vmem.Range{Addr: tile, Size: 4})
	// The frame is also handed to the display via an output syscall.
	m.Syscall(isa.SysIoctl, isa.RegNone, isa.RegNone,
		[]vmem.Range{{Addr: tile, Size: 4}}, nil, nil)
	// Plus an unrelated network send (beacon): only in the syscall slice.
	b := m.Const(7)
	beaconStore := len(m.Tr.Recs)
	m.StoreU32(net, b)
	m.Syscall(isa.SysSendto, isa.RegNone, isa.RegNone,
		[]vmem.Range{{Addr: net, Size: 4}}, nil, nil)

	deps := forward(t, m.Tr)
	pix, err := Slice(m.Tr, deps, PixelCriteria{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Slice(m.Tr, deps, SyscallCriteria{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pix.Total; i++ {
		if pix.InSlice.Get(i) && !sys.InSlice.Get(i) && m.Tr.Recs[i].Kind != isa.KindMarker {
			t.Errorf("record %d in pixel slice but not syscall slice", i)
		}
	}
	if !sys.InSlice.Get(beaconStore) {
		t.Error("beacon store should be in syscall slice")
	}
	if pix.InSlice.Get(beaconStore) {
		t.Error("beacon store should not be in pixel slice")
	}
	if sys.SliceCount <= pix.SliceCount {
		t.Error("syscall slice should be strictly larger here")
	}
}

// TestWindowCriteria: limiting criteria to a prefix reproduces the paper's
// partial-slice experiment (§V-A, Bing load-only slicing).
func TestWindowCriteria(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	tileA := m.Tile.Alloc(8)
	tileB := m.Tile.Alloc(8)
	va := m.Const(1)
	aStore := len(m.Tr.Recs)
	m.StoreU32(tileA, va)
	m.MarkPixels(vmem.Range{Addr: tileA, Size: 4})
	cut := len(m.Tr.Recs) // everything below is "after load"
	vb := m.Const(2)
	bStore := len(m.Tr.Recs)
	m.StoreU32(tileB, vb)
	m.MarkPixels(vmem.Range{Addr: tileB, Size: 4})

	deps := forward(t, m.Tr)
	res, err := Slice(m.Tr, deps, Window{Inner: PixelCriteria{}, Limit: cut}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.InSlice.Get(aStore) {
		t.Error("pre-window store should be sliced")
	}
	if res.InSlice.Get(bStore) {
		t.Error("post-window store must be ignored by windowed criteria")
	}
	if got := res.RangePercent(0, cut); got <= 0 {
		t.Errorf("RangePercent = %v", got)
	}
}

// TestUnionCriteria combines pixel and syscall criteria.
func TestUnionCriteria(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	tile := m.Tile.Alloc(8)
	net := m.IOb.Alloc(8)
	v := m.Const(1)
	m.StoreU32(tile, v)
	m.MarkPixels(vmem.Range{Addr: tile, Size: 4})
	b := m.Const(2)
	m.StoreU32(net, b)
	m.Syscall(isa.SysSendto, isa.RegNone, isa.RegNone, []vmem.Range{{Addr: net, Size: 4}}, nil, nil)

	u := Union{PixelCriteria{}, SyscallCriteria{}}
	if u.Name() != "union(pixels+syscalls)" {
		t.Errorf("Name = %q", u.Name())
	}
	res, err := Slice(m.Tr, forward(t, m.Tr), u, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pix, _ := Slice(m.Tr, forward(t, m.Tr), PixelCriteria{}, Options{})
	sys, _ := Slice(m.Tr, forward(t, m.Tr), SyscallCriteria{}, Options{})
	if res.SliceCount < pix.SliceCount || res.SliceCount < sys.SliceCount {
		t.Error("union slice must contain both member slices")
	}
}

// TestProgressSeries: progress sampling is monotonic and consistent with the
// final counts.
func TestProgressSeries(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	tile := m.Tile.Alloc(64)
	for i := 0; i < 50; i++ {
		v := m.Const(uint64(i))
		if i%2 == 0 {
			m.StoreU32(tile+vmem.Addr(4*(i%16)), v)
		} else {
			m.StoreU32(m.Heap.Alloc(8), v)
		}
	}
	m.MarkPixels(vmem.Range{Addr: tile, Size: 64})
	res := pixelSlice(t, m, Options{ProgressPoints: 10})
	if len(res.Progress) == 0 {
		t.Fatal("no progress samples")
	}
	last := ProgressPoint{}
	for _, p := range res.Progress {
		if p.Processed < last.Processed || p.Sliced < last.Sliced {
			t.Error("progress must be monotonic")
		}
		if p.Sliced > p.Processed || p.MainSliced > p.MainProcessed {
			t.Error("sliced cannot exceed processed")
		}
		last = p
	}
	if last.Processed != res.Total {
		t.Errorf("final processed %d != total %d", last.Processed, res.Total)
	}
	if last.Sliced != res.SliceCount {
		t.Errorf("final sliced %d != count %d", last.Sliced, res.SliceCount)
	}
}

// TestLiveMemImplsAgree: WordSet and PageSet produce identical slices.
func TestLiveMemImplsAgree(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	tile := m.Tile.Alloc(256)
	for i := 0; i < 64; i++ {
		v := m.Const(uint64(i * 3))
		m.Store(tile+vmem.Addr(i*4), 4, v)
		j := m.Const(uint64(i))
		m.StoreU32(m.Heap.Alloc(16), j)
	}
	m.MarkPixels(vmem.Range{Addr: tile, Size: 256})
	deps := forward(t, m.Tr)
	a, err := Slice(m.Tr, deps, PixelCriteria{}, Options{Live: NewWordSet()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Slice(m.Tr, deps, PixelCriteria{}, Options{Live: NewPageSet()})
	if err != nil {
		t.Fatal(err)
	}
	if a.SliceCount != b.SliceCount {
		t.Fatalf("WordSet slice %d != PageSet slice %d", a.SliceCount, b.SliceCount)
	}
	for i := 0; i < a.Total; i++ {
		if a.InSlice.Get(i) != b.InSlice.Get(i) {
			t.Fatalf("disagreement at record %d", i)
		}
	}
}

// TestSliceClosure verifies, forward, that the slice is closed under data
// dependences: every register source of an in-slice record is defined by an
// in-slice record, and the last writer of every byte read by an in-slice
// load is in the slice.
func TestSliceClosure(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	m.Thread(1, "helper")
	tile := m.Tile.Alloc(128)
	stage := m.Heap.Alloc(64)
	// A small pipeline with branches and cross-thread flow.
	fn := m.Func("producer", "test")
	m.Switch(0)
	m.Call(fn, func() {
		for i := 0; i < 8; i++ {
			m.At("loop")
			v := m.Const(uint64(i * 17))
			c := m.OpImm(isa.OpAnd, v, 1)
			if m.Branch(c) {
				m.At("odd")
				m.StoreU32(stage+vmem.Addr(4*i), v)
			} else {
				m.At("even")
				d := m.OpImm(isa.OpMul, v, 2)
				m.StoreU32(stage+vmem.Addr(4*i), d)
			}
		}
	})
	m.Switch(1)
	for i := 0; i < 8; i++ {
		v := m.LoadU32(stage + vmem.Addr(4*i))
		m.StoreU32(tile+vmem.Addr(4*i), v)
	}
	m.MarkPixels(vmem.Range{Addr: tile, Size: 32})

	res := pixelSlice(t, m, Options{})
	verifyClosure(t, m.Tr, res)
	if res.SliceCount == 0 {
		t.Fatal("slice should not be empty")
	}
}

func verifyClosure(t *testing.T, tr *trace.Trace, res *Result) {
	t.Helper()
	defOf := map[isa.Reg]int{}
	lastWriter := map[vmem.Addr]int{} // per byte
	checkReg := func(i int, r isa.Reg) {
		if r == isa.RegNone {
			return
		}
		d, ok := defOf[r]
		if !ok {
			return // defined before trace start (not possible here)
		}
		if !res.InSlice.Get(d) {
			t.Errorf("rec %d in slice uses reg %d defined at %d which is NOT in slice", i, r, d)
		}
	}
	for i := range tr.Recs {
		r := &tr.Recs[i]
		if !res.InSlice.Get(i) {
			// still record definitions
		} else {
			switch r.Kind {
			case isa.KindOp:
				checkReg(i, r.Src1)
				checkReg(i, r.Src2)
			case isa.KindLoad:
				for b := uint32(0); b < uint32(r.Size); b++ {
					if w, ok := lastWriter[r.Addr+vmem.Addr(b)]; ok && !res.InSlice.Get(w) {
						t.Errorf("rec %d (load) reads byte %#x last written by non-slice rec %d", i, uint32(r.Addr)+b, w)
					}
				}
				checkReg(i, r.Src2)
			case isa.KindStore:
				checkReg(i, r.Src1)
				checkReg(i, r.Src2)
			case isa.KindBranch:
				checkReg(i, r.Src1)
			}
		}
		if r.Dst != isa.RegNone {
			defOf[r.Dst] = i
		}
		if r.Kind == isa.KindStore {
			for b := uint32(0); b < uint32(r.Size); b++ {
				lastWriter[r.Addr+vmem.Addr(b)] = i
			}
		}
	}
}

// TestSliceClosureProperty fuzzes small random traced programs and checks
// closure on each.
func TestSliceClosureProperty(t *testing.T) {
	f := func(seed []byte) bool {
		if len(seed) == 0 {
			return true
		}
		m := vm.New()
		m.Thread(0, "main")
		tile := m.Tile.Alloc(64)
		heap := m.Heap.Alloc(64)
		var regs []isa.Reg
		reg := func(i int) isa.Reg {
			if len(regs) == 0 {
				r := m.Const(1)
				regs = append(regs, r)
			}
			return regs[i%len(regs)]
		}
		for i, b := range seed {
			switch b % 6 {
			case 0:
				regs = append(regs, m.Const(uint64(b)))
			case 1:
				regs = append(regs, m.Op(isa.OpAdd, reg(i), reg(i+1)))
			case 2:
				m.StoreU32(tile+vmem.Addr((int(b)*4)%60), reg(i))
			case 3:
				m.StoreU32(heap+vmem.Addr((int(b)*4)%60), reg(i))
			case 4:
				regs = append(regs, m.LoadU32(heap+vmem.Addr((int(b)*4)%60)))
			case 5:
				regs = append(regs, m.LoadU32(tile+vmem.Addr((int(b)*4)%60)))
			}
		}
		m.MarkPixels(vmem.Range{Addr: tile, Size: 64})
		deps := forward(t, m.Tr)
		res, err := Slice(m.Tr, deps, PixelCriteria{}, Options{})
		if err != nil {
			return false
		}
		verifyClosure(t, m.Tr, res)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSliceErrors(t *testing.T) {
	tr := trace.New()
	if _, err := Slice(tr, nil, nil, Options{}); err == nil {
		t.Error("nil criteria should error")
	}
	if _, err := Slice(tr, nil, PixelCriteria{}, Options{}); err == nil {
		t.Error("nil deps without NoControlDeps should error")
	}
	if _, err := Slice(tr, nil, PixelCriteria{}, Options{NoControlDeps: true}); err != nil {
		t.Errorf("empty trace should slice fine: %v", err)
	}
}
