package slicer

// Equivalence of the segmented parallel backward pass against the
// sequential reference walk: every Result field — bitset words, counts,
// per-thread/per-function tallies, progress samples, pending residue —
// must be identical for any segment count, worker count, and boundary
// placement. The golden corpus, the artifact store, and the replay oracle
// all assume a slice's bytes do not depend on how it was scheduled.

import (
	"os"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// spanWorkload builds a trace whose calls and pending branches span long
// record ranges, so any interior segment boundary lands mid-call and
// usually mid-pending-branch: one outer call covers almost the whole
// trace, and each branch guards a store hundreds of records later.
func spanWorkload(n int) *vm.Machine {
	m := vm.New()
	m.Thread(0, "main")
	m.Thread(1, "helper")
	tile := m.Tile.Alloc(4096)
	stats := m.Heap.Alloc(64)
	outer := m.Func("frame", "gfx")
	inner := m.Func("row", "gfx")
	m.Call(outer, func() {
		m.At("head")
		for i := 0; i < n; i++ {
			c := m.Const(uint64(i % 3))
			if m.Branch(c) {
				m.At("taken")
				m.Call(inner, func() {
					m.At("body")
					v := m.Const(uint64(i))
					// Dead bookkeeping between def and use stretches the
					// liveness interval across boundaries.
					m.Bookkeep(stats, 5)
					v2 := m.AddImm(v, 7)
					m.StoreU32(tile+vmem.Addr(4*(i%1024)), v2)
				})
			} else {
				m.At("skipped")
				m.Bookkeep(stats, 3)
			}
			if i%17 == 0 {
				// Cross-thread dataflow through shared memory.
				m.Switch(1)
				w := m.Const(uint64(i))
				m.StoreU32(tile+vmem.Addr(4*((i+13)%1024)), w)
				m.Switch(0)
			}
			if i%29 == 0 {
				// A mid-trace criterion record: markers can land on (or
				// next to) any 64-aligned boundary.
				m.MarkPixels(vmem.Range{Addr: tile, Size: 256})
			}
		}
	})
	m.MarkPixels(vmem.Range{Addr: tile, Size: 4096})
	return m
}

// segCases are the (workload, criteria) combinations every segmentation
// test sweeps.
func segCases() []struct {
	name string
	m    *vm.Machine
	cs   []Criteria
} {
	return []struct {
		name string
		m    *vm.Machine
		cs   []Criteria
	}{
		{"multi", multiWorkload(), []Criteria{PixelCriteria{}, SyscallCriteria{}, Union{PixelCriteria{}, SyscallCriteria{}}}},
		{"bench", benchWorkload(256), []Criteria{PixelCriteria{}, SyscallCriteria{}}},
		{"span", spanWorkload(160), []Criteria{PixelCriteria{}}},
	}
}

func TestSegmentedMatchesSequential(t *testing.T) {
	for _, tc := range segCases() {
		deps := forward(t, tc.m.Tr)
		n := len(tc.m.Tr.Recs)
		for _, opts := range []Options{
			{},
			{ProgressPoints: 16, MainThread: 1},
			{ProgressPoints: 7},
			{NoControlDeps: true},
		} {
			seqOpts := opts
			seqOpts.Segments = 1
			want, err := SliceMulti(tc.m.Tr, deps, tc.cs, seqOpts)
			if err != nil {
				t.Fatalf("%s sequential: %v", tc.name, err)
			}
			for _, segs := range []int{2, 3, 5, 16, n, 1 << 20} {
				for _, workers := range []int{1, 4} {
					segOpts := opts
					segOpts.Segments = segs
					segOpts.Workers = workers
					var stats PassStats
					segOpts.Stats = &stats
					got, err := SliceMulti(tc.m.Tr, deps, tc.cs, segOpts)
					if err != nil {
						t.Fatalf("%s segmented(k=%d,w=%d): %v", tc.name, segs, workers, err)
					}
					for k := range tc.cs {
						if !reflect.DeepEqual(want[k], got[k]) {
							t.Errorf("%s opts %+v k=%d w=%d criterion %s: segmented result differs\nseq: %+v\nseg: %+v",
								tc.name, opts, segs, workers, tc.cs[k].Name(), want[k], got[k])
						}
					}
					if wantSegs := len(planSegments(n, segs)) - 1; stats.Segments != wantSegs {
						t.Errorf("%s k=%d: Stats.Segments = %d, want %d", tc.name, segs, stats.Segments, wantSegs)
					}
				}
			}
		}
	}
}

// TestSegmentedEveryBoundary drives the segmented engine with a handcrafted
// two-segment split at every 64-aligned record index, so boundaries land
// mid-call, mid-pending-branch, and exactly at marker/criterion records —
// the exhaustive edge-case sweep behind the random segment counts above.
func TestSegmentedEveryBoundary(t *testing.T) {
	for _, tc := range segCases() {
		deps := forward(t, tc.m.Tr)
		n := len(tc.m.Tr.Recs)
		opts := Options{ProgressPoints: 11, Segments: 1}
		want, err := SliceMulti(tc.m.Tr, deps, tc.cs, opts)
		if err != nil {
			t.Fatal(err)
		}
		for b := minSegmentRecs; b < n; b += minSegmentRecs {
			got, err := sliceSegmented(TraceSource(tc.m.Tr), deps, tc.cs, opts, []int{0, b, n})
			if err != nil {
				t.Fatalf("%s boundary %d: %v", tc.name, b, err)
			}
			for k := range tc.cs {
				if !reflect.DeepEqual(want[k], got[k]) {
					t.Fatalf("%s boundary %d criterion %s: segmented result differs",
						tc.name, b, tc.cs[k].Name())
				}
			}
		}
		// Three-way splits around a few interesting interior points.
		for _, pair := range [][2]int{{minSegmentRecs, 2 * minSegmentRecs}, {minSegmentRecs, (n / 2) &^ 63}} {
			if pair[1] <= pair[0] || pair[1] >= n {
				continue
			}
			got, err := sliceSegmented(TraceSource(tc.m.Tr), deps, tc.cs, opts, []int{0, pair[0], pair[1], n})
			if err != nil {
				t.Fatal(err)
			}
			for k := range tc.cs {
				if !reflect.DeepEqual(want[k], got[k]) {
					t.Fatalf("%s split %v criterion %s: segmented result differs", tc.name, pair, tc.cs[k].Name())
				}
			}
		}
	}
}

func TestPlanSegments(t *testing.T) {
	if got := planSegments(0, 8); !reflect.DeepEqual(got, []int{0, 0}) {
		t.Errorf("planSegments(0, 8) = %v, want [0 0]", got)
	}
	for _, tt := range []struct {
		n, k     int
		wantSegs int
	}{
		{63, 8, 1},          // below the per-segment minimum
		{1000, 1, 1},        // forced sequential
		{1000, 4, 4},        // normal split
		{1000, 1 << 20, 15}, // K far beyond n/minSegmentRecs clamps to it
		{128, 2, 2},
	} {
		bounds := planSegments(tt.n, tt.k)
		if got := len(bounds) - 1; got != tt.wantSegs {
			t.Errorf("planSegments(%d, %d) = %v: %d segments, want %d", tt.n, tt.k, bounds, got, tt.wantSegs)
		}
		if bounds[0] != 0 || bounds[len(bounds)-1] != tt.n {
			t.Errorf("planSegments(%d, %d) = %v: bad end bounds", tt.n, tt.k, bounds)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Errorf("planSegments(%d, %d) = %v: not strictly increasing", tt.n, tt.k, bounds)
			}
			if i < len(bounds)-1 && bounds[i]%minSegmentRecs != 0 {
				t.Errorf("planSegments(%d, %d) = %v: interior boundary %d not %d-aligned", tt.n, tt.k, bounds, bounds[i], minSegmentRecs)
			}
		}
	}
}

// TestSegmentedCancel: the Canceled hook must abort the parallel scan, the
// stitch, and the tally phases with ErrCanceled, never a partial result.
// The trace spans several cancelStride multiples so the hook genuinely
// fires mid-segment, not just at the walk's start.
func TestSegmentedCancel(t *testing.T) {
	m := benchWorkload(3 * cancelStride / 14)
	deps := forward(t, m.Tr)
	// Fire after a fixed number of polls so each phase gets a chance to be
	// the one that observes the cancellation across reruns. The counter is
	// atomic: segment scans poll concurrently.
	for _, fireAfter := range []int64{0, 1, 3, 5} {
		var polls atomic.Int64
		opts := Options{
			Segments:       8,
			Workers:        4,
			ProgressPoints: 16,
			Canceled: func() bool {
				return polls.Add(1) > fireAfter
			},
		}
		if _, err := SliceMulti(m.Tr, deps, []Criteria{PixelCriteria{}}, opts); err != ErrCanceled {
			t.Fatalf("fireAfter=%d: err = %v, want ErrCanceled", fireAfter, err)
		}
	}
}

// TestSliceScratchPooled is the allocation-count regression gate on the
// pooled scratch path: once the pools are warm, a backward pass must not
// re-allocate its big per-pass scratch (live-register words, live-memory
// buckets, frame stacks) — only the Result itself and its tallies.
func TestSliceScratchPooled(t *testing.T) {
	m := benchWorkload(256)
	deps := forward(t, m.Tr)
	opts := Options{Segments: 1}
	run := func() {
		if _, err := SliceMulti(m.Tr, deps, []Criteria{PixelCriteria{}}, opts); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		run() // warm the pools
	}
	// An unpooled pass allocates the register bitset (~n/16 words), the
	// live-memory map, and a frame stack per thread on every run — several
	// hundred allocations on this workload before pooling. The budget leaves
	// room for the Result, its maps, and pool-miss noise, while failing
	// loudly if the scratch stops being reused.
	const budget = 120
	if got := testing.AllocsPerRun(20, run); got > budget {
		t.Errorf("sequential pass allocates %.0f objects/run, budget %d — pooled scratch regressed", got, budget)
	}
}

// TestSegmentedBackwardPerfGate is the ci.sh bench gate: on a multi-core
// machine the segmented backward pass must not be more than 20% slower than
// the sequential walk on the committed corpus workload (it should be
// faster; the gate bounds the regression, benchstat measures the win).
// Opt-in via WEBSLICE_BENCH_GATE=1 because wall-clock assertions are too
// flaky for the ordinary -race unit run.
func TestSegmentedBackwardPerfGate(t *testing.T) {
	if os.Getenv("WEBSLICE_BENCH_GATE") == "" {
		t.Skip("set WEBSLICE_BENCH_GATE=1 to run the wall-clock gate")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skipf("GOMAXPROCS=%d: the segmented pass cannot beat sequential without a second core", runtime.GOMAXPROCS(0))
	}
	m := benchWorkload(4096)
	deps := forward(t, m.Tr)
	cs := []Criteria{PixelCriteria{}, SyscallCriteria{}}
	best := func(opts Options) time.Duration {
		d := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := SliceMulti(m.Tr, deps, cs, opts); err != nil {
				t.Fatal(err)
			}
			if e := time.Since(start); e < d {
				d = e
			}
		}
		return d
	}
	seq := best(Options{Segments: 1})
	seg := best(Options{})
	t.Logf("sequential %v, segmented %v (%.2fx)", seq, seg, float64(seq)/float64(seg))
	if float64(seg) > 1.2*float64(seq) {
		t.Fatalf("segmented backward pass %v is >20%% slower than sequential %v", seg, seq)
	}
}

// TestResolveSegments pins the automatic-mode decision table.
func TestResolveSegments(t *testing.T) {
	big := autoSegmentMinRecs
	for _, tt := range []struct {
		opts Options
		n    int
		want int
	}{
		{Options{Segments: 1}, big, 1},
		{Options{Segments: -3}, big, 1},
		{Options{Segments: 6}, 100, 6},
		{Options{Live: NewPageSet()}, big, 1}, // custom LiveMem pins sequential
		{Options{Workers: 1}, big, 1},         // one worker: nothing to parallelize
		{Options{Workers: 4}, big - 1, 1},     // too small to amortize the stitch
		{Options{Workers: 4}, big, 4 * segmentsPerWorker},
	} {
		if got := resolveSegments(tt.opts, tt.n); got != tt.want {
			t.Errorf("resolveSegments(%+v, %d) = %d, want %d", tt.opts, tt.n, got, tt.want)
		}
	}
}
