package slicer

// SliceMulti equivalence: the fused multi-criteria backward pass must
// produce results identical — every statistic, bitset word, and progress
// sample — to independent Slice runs per criterion. The repro pipeline and
// the artifact store both rely on this (cached per-variant results must not
// depend on whether they were computed solo or fused).

import (
	"reflect"
	"testing"

	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// multiWorkload builds a trace exercising every record kind the backward
// pass dispatches on: loops (branches), calls, cross-thread dataflow,
// bookkeeping that never reaches the display, input and output syscalls,
// and pixel markers.
func multiWorkload() *vm.Machine {
	m := vm.New()
	m.Thread(0, "main")
	m.Thread(1, "worker")
	tile := m.Tile.Alloc(64)
	net := m.IOb.Alloc(32)
	inbuf := m.IOb.Alloc(16)
	stats := m.Heap.Alloc(16)

	// External input feeding the pixels.
	m.Syscall(isa.SysRecvfrom, isa.RegNone, isa.RegNone, nil,
		[]vmem.Range{{Addr: inbuf, Size: 8}}, []byte("RESPONSE"))

	render := m.Func("render", "gfx")
	m.Call(render, func() {
		seed := m.LoadU32(inbuf)
		m.Loop("rows", 8, func(i int) {
			v := m.AddImm(seed, uint64(i))
			m.StoreU32(tile+vmem.Addr(4*(i%16)), v)
		})
	})
	m.Bookkeep(stats, 12) // dead bookkeeping, must stay out of both slices

	// Worker thread emits a beacon: syscall slice only.
	m.Switch(1)
	b := m.Const(7)
	m.StoreU32(net, b)
	m.Syscall(isa.SysSendto, isa.RegNone, isa.RegNone,
		[]vmem.Range{{Addr: net, Size: 4}}, nil, nil)
	m.Switch(0)

	m.MarkPixels(vmem.Range{Addr: tile, Size: 32})
	m.Syscall(isa.SysIoctl, isa.RegNone, isa.RegNone,
		[]vmem.Range{{Addr: tile, Size: 32}}, nil, nil)
	return m
}

func TestSliceMultiMatchesIndependentRuns(t *testing.T) {
	m := multiWorkload()
	deps := forward(t, m.Tr)
	for _, opts := range []Options{
		{},
		{ProgressPoints: 16, MainThread: 1},
		{NoControlDeps: true},
	} {
		cs := []Criteria{PixelCriteria{}, SyscallCriteria{}, Union{PixelCriteria{}, SyscallCriteria{}}}
		fused, err := SliceMulti(m.Tr, deps, cs, opts)
		if err != nil {
			t.Fatalf("SliceMulti(%+v): %v", opts, err)
		}
		if len(fused) != len(cs) {
			t.Fatalf("SliceMulti returned %d results for %d criteria", len(fused), len(cs))
		}
		for k, c := range cs {
			solo, err := Slice(m.Tr, deps, c, opts)
			if err != nil {
				t.Fatalf("Slice(%s, %+v): %v", c.Name(), opts, err)
			}
			if !reflect.DeepEqual(solo, fused[k]) {
				t.Errorf("opts %+v criterion %s: fused result differs from independent run\nsolo:  %+v\nfused: %+v",
					opts, c.Name(), solo, fused[k])
			}
		}
	}
}

func TestSliceMultiSharesTheWalkNotTheState(t *testing.T) {
	m := multiWorkload()
	deps := forward(t, m.Tr)
	rs, err := SliceMulti(m.Tr, deps, []Criteria{PixelCriteria{}, SyscallCriteria{}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pix, sys := rs[0], rs[1]
	if pix.SliceCount == 0 || sys.SliceCount == 0 {
		t.Fatalf("degenerate workload: pixel=%d syscall=%d slice records", pix.SliceCount, sys.SliceCount)
	}
	// The beacon flow makes the syscall slice strictly larger; if criterion
	// states leaked into each other the sets would collapse together.
	if sys.SliceCount <= pix.SliceCount {
		t.Errorf("syscall slice (%d) should be strictly larger than pixel slice (%d)", sys.SliceCount, pix.SliceCount)
	}
	for i := 0; i < pix.Total; i++ {
		if pix.InSlice.Get(i) && !sys.InSlice.Get(i) && m.Tr.Recs[i].Kind != isa.KindMarker {
			t.Errorf("record %d in pixel slice but missing from syscall slice", i)
		}
	}
}

func TestSliceMultiErrors(t *testing.T) {
	m := multiWorkload()
	deps := forward(t, m.Tr)
	if _, err := SliceMulti(m.Tr, deps, nil, Options{}); err == nil {
		t.Error("no criteria should be rejected")
	}
	if _, err := SliceMulti(m.Tr, deps, []Criteria{PixelCriteria{}, nil}, Options{}); err == nil {
		t.Error("nil criteria entry should be rejected")
	}
	if _, err := SliceMulti(m.Tr, nil, []Criteria{PixelCriteria{}}, Options{}); err == nil {
		t.Error("nil deps without NoControlDeps should be rejected")
	}
	if _, err := SliceMulti(m.Tr, deps, []Criteria{PixelCriteria{}, SyscallCriteria{}},
		Options{Live: NewWordSet()}); err == nil {
		t.Error("a shared Options.Live instance across fused criteria should be rejected")
	}
	if _, err := SliceMulti(m.Tr, deps, []Criteria{PixelCriteria{}}, Options{Live: NewPageSet()}); err != nil {
		t.Errorf("single-criterion run with explicit Live should work: %v", err)
	}
}
