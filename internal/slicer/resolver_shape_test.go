package slicer

import (
	"testing"

	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// Mimics the style resolver: per element, a matcher frame loops candidates
// under a traced counted loop (vm.Loop), branches on a loaded compare, and on
// match calls an apply function that stores to the style record consumed by
// pixels. The loop's explicit exit branch is what makes the apply call
// control-dependent on the match branch (without it the call postdominates
// the branch and FOW correctly reports no dependence).
func TestResolverShapedControlDeps(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	matchFn := m.Func("match", "test")
	applyFn := m.Func("apply", "test")
	style := m.Heap.Alloc(64)
	tile := m.Tile.Alloc(64)

	rules := []struct {
		hash  uint64
		value uint64
	}{{7, 0xAA}, {9, 0xBB}, {7, 0xCC}}
	ruleMem := make([]vmem.Addr, len(rules))
	for i, r := range rules {
		ruleMem[i] = m.Heap.Alloc(16)
		m.StoreU32(ruleMem[i], m.Const(r.hash))
		m.StoreU32(ruleMem[i]+4, m.Const(r.value))
	}
	node := m.Heap.Alloc(8)
	m.StoreU32(node, m.Const(7))

	var branchIdxs []int
	m.Call(matchFn, func() {
		m.Loop("cands", len(rules), func(i int) {
			m.At("check")
			got := m.LoadU32(node)
			want := m.LoadU32(ruleMem[i])
			eq := m.Op(isa.OpCmpEQ, got, want)
			branchIdxs = append(branchIdxs, len(m.Tr.Recs))
			if m.Branch(eq) {
				m.At("matched")
				m.Call(applyFn, func() {
					m.At("decl")
					v := m.LoadU32(ruleMem[i] + 4)
					m.StoreU32(style, v)
				})
			} else {
				m.At("reject")
			}
		})
	})
	// Style flows to pixels.
	v := m.LoadU32(style)
	m.StoreU32(tile, v)
	m.MarkPixels(vmem.Range{Addr: tile, Size: 4})

	res := pixelSlice(t, m, Options{})
	// The final matching rule (index 2) wins; its branch must be in slice.
	if !res.InSlice.Get(branchIdxs[2]) {
		t.Error("winning rule's match branch not in slice")
	}
	// Its condition loads must be in slice.
	found := false
	for i := branchIdxs[2] - 3; i < branchIdxs[2]; i++ {
		if res.InSlice.Get(i) {
			found = true
		}
	}
	if !found {
		t.Error("match condition chain not in slice")
	}
	// The overwritten rule-0 apply must be excluded (its store was killed).
	t.Logf("slice: %d/%d", res.SliceCount, res.Total)
}
