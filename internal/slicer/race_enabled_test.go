//go:build race

package slicer

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation inflates runtime.MemStats.TotalAlloc, so byte-exact
// allocation gates skip themselves under -race (the same suite runs
// without -race in CI's coverage ratchet and benchmark smoke).
const raceEnabled = true
