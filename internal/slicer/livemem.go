package slicer

import (
	"math/bits"

	"webslice/internal/vmem"
)

// LiveMem is the live-memory set of the backward liveness analysis: the set
// of byte addresses whose values are currently needed. One set is shared by
// all threads (threads share the address space; the paper makes the same
// argument), while registers get per-thread treatment.
type LiveMem interface {
	// Add marks every byte of r live.
	Add(r vmem.Range)
	// Kill clears any live bytes inside r (a write defines them) and
	// reports whether any were live.
	Kill(r vmem.Range) bool
	// Overlaps reports whether any byte of r is live, without modifying.
	Overlaps(r vmem.Range) bool
	// Count returns the number of live bytes.
	Count() int
}

// WordSet is the default LiveMem: a hash map from 64-byte-aligned word
// index to a 64-bit occupancy mask. It is memory-proportional to the live
// footprint and fast for the scattered access patterns of real traces.
type WordSet struct {
	words map[uint32]uint64
	count int
}

// NewWordSet returns an empty word-granular live set.
func NewWordSet() *WordSet {
	return &WordSet{words: make(map[uint32]uint64)}
}

// splitRange decomposes a byte range into 64-byte-aligned words and masks.
// The callback reports whether to keep going: returning false stops the
// walk immediately, so probes like Overlaps can bail at the first live word
// instead of visiting every word of a multi-kilobyte pixel-buffer range.
func splitRange(r vmem.Range, f func(word uint32, mask uint64) bool) {
	if r.Size == 0 {
		return
	}
	a := uint32(r.Addr)
	end := a + r.Size // may wrap only if the range is malformed; ranges come from arenas
	for a < end {
		word := a >> 6
		lo := a & 63
		hi := uint32(64)
		if (word<<6)+64 > end {
			hi = end - word<<6
		}
		mask := ^uint64(0)
		if hi-lo < 64 {
			mask = ((uint64(1) << (hi - lo)) - 1) << lo
		}
		if !f(word, mask) {
			return
		}
		a = word<<6 + 64
	}
}

// Add implements LiveMem.
func (s *WordSet) Add(r vmem.Range) {
	splitRange(r, func(w uint32, mask uint64) bool {
		old := s.words[w]
		nw := old | mask
		if nw != old {
			s.count += popcount(nw) - popcount(old)
			s.words[w] = nw
		}
		return true
	})
}

// Kill implements LiveMem.
func (s *WordSet) Kill(r vmem.Range) bool {
	hit := false
	splitRange(r, func(w uint32, mask uint64) bool {
		old, ok := s.words[w]
		if !ok {
			return true
		}
		if old&mask != 0 {
			hit = true
		}
		nw := old &^ mask
		if nw != old {
			s.count -= popcount(old) - popcount(nw)
			if nw == 0 {
				delete(s.words, w)
			} else {
				s.words[w] = nw
			}
		}
		return true
	})
	return hit
}

// Overlaps implements LiveMem.
func (s *WordSet) Overlaps(r vmem.Range) bool {
	found := false
	splitRange(r, func(w uint32, mask uint64) bool {
		if s.words[w]&mask != 0 {
			found = true
			return false
		}
		return true
	})
	return found
}

// Count implements LiveMem.
func (s *WordSet) Count() int { return s.count }

// mergeFrom unions another WordSet into s. The stitch of the segmented
// backward pass uses it to fold each segment's locally generated liveness
// into the delta state flowing toward earlier segments.
func (s *WordSet) mergeFrom(src *WordSet) {
	for w, m := range src.words {
		old := s.words[w]
		nw := old | m
		if nw != old {
			s.count += popcount(nw) - popcount(old)
			s.words[w] = nw
		}
	}
}

// reset empties the set for reuse, keeping the map's allocated buckets.
func (s *WordSet) reset() {
	clear(s.words)
	s.count = 0
}

// PageSet is an alternative LiveMem keeping one bitmap per 4 KiB page. It
// trades memory for fewer map probes on dense footprints (pixel buffers);
// the ablation benchmark compares the two.
type PageSet struct {
	pages map[uint32]*pageBits
	count int
}

type pageBits struct {
	bits [vmem.PageSize / 64]uint64
	live int
}

// NewPageSet returns an empty page-granular live set.
func NewPageSet() *PageSet {
	return &PageSet{pages: make(map[uint32]*pageBits)}
}

// Add implements LiveMem.
func (s *PageSet) Add(r vmem.Range) {
	splitRange(r, func(w uint32, mask uint64) bool {
		page := w >> 6 // 64 words of 64 bytes = 4096 bytes
		pb := s.pages[page]
		if pb == nil {
			pb = &pageBits{}
			s.pages[page] = pb
		}
		slot := w & 63
		old := pb.bits[slot]
		nw := old | mask
		if nw != old {
			d := popcount(nw) - popcount(old)
			pb.bits[slot] = nw
			pb.live += d
			s.count += d
		}
		return true
	})
}

// Kill implements LiveMem.
func (s *PageSet) Kill(r vmem.Range) bool {
	hit := false
	splitRange(r, func(w uint32, mask uint64) bool {
		pb := s.pages[w>>6]
		if pb == nil {
			return true
		}
		slot := w & 63
		old := pb.bits[slot]
		if old&mask != 0 {
			hit = true
		}
		nw := old &^ mask
		if nw != old {
			d := popcount(old) - popcount(nw)
			pb.bits[slot] = nw
			pb.live -= d
			s.count -= d
			if pb.live == 0 {
				delete(s.pages, w>>6)
			}
		}
		return true
	})
	return hit
}

// Overlaps implements LiveMem.
func (s *PageSet) Overlaps(r vmem.Range) bool {
	found := false
	splitRange(r, func(w uint32, mask uint64) bool {
		if pb := s.pages[w>>6]; pb != nil && pb.bits[w&63]&mask != 0 {
			found = true
			return false
		}
		return true
	})
	return found
}

// Count implements LiveMem.
func (s *PageSet) Count() int { return s.count }

func popcount(x uint64) int { return bits.OnesCount64(x) }
