package slicer

// FuzzSliceNeverPanics feeds arbitrary decoded traces through the full
// backward pass (solo and fused, with and without control dependences).
// The slicer must return a result or be rejected upstream — never panic.
// Inputs that would merely allocate absurdly (register indices in the
// millions, gigabyte memory ranges) are skipped: those are resource limits
// for the service layer, not slicer correctness.

import (
	"bytes"
	"reflect"
	"testing"

	"webslice/internal/cdg"
	"webslice/internal/cfg"
	"webslice/internal/trace"
)

const (
	fuzzMaxReg     = 1 << 22
	fuzzMaxRecs    = 1 << 16
	fuzzMaxMemSize = 1 << 20
)

// sliceable rejects traces whose operands would drive huge allocations.
func sliceable(t *trace.Trace) bool {
	if len(t.Recs) > fuzzMaxRecs {
		return false
	}
	for i := range t.Recs {
		r := &t.Recs[i]
		if uint32(r.Dst) > fuzzMaxReg || uint32(r.Src1) > fuzzMaxReg || uint32(r.Src2) > fuzzMaxReg {
			return false
		}
	}
	for _, e := range t.Sys {
		for _, rg := range e.Reads {
			if rg.Size > fuzzMaxMemSize {
				return false
			}
		}
		for _, rg := range e.Writes {
			if rg.Size > fuzzMaxMemSize {
				return false
			}
		}
	}
	for _, m := range t.Marks {
		if m.Buf.Size > fuzzMaxMemSize {
			return false
		}
	}
	return true
}

func FuzzSliceNeverPanics(f *testing.F) {
	// Seed with a real workload covering every record kind, a truncation of
	// it, and bytes that are not a trace at all.
	m := multiWorkload()
	var buf bytes.Buffer
	if err := m.Tr.Write(&buf); err != nil {
		f.Fatal(err)
	}
	enc := buf.Bytes()
	f.Add(enc, byte(0))
	f.Add(enc[:len(enc)*2/3], byte(1))
	f.Add([]byte("WSLT not really"), byte(2))

	f.Fuzz(func(t *testing.T, data []byte, sel byte) {
		tr, err := trace.Read(bytes.NewReader(data))
		if err != nil {
			return // corrupt input is the decoder's concern
		}
		if !sliceable(tr) {
			return
		}
		var deps *cdg.Deps
		opts := Options{MainThread: sel >> 4}
		if forest, err := cfg.Build(tr); err == nil {
			deps = cdg.Compute(forest)
		} else {
			opts.NoControlDeps = true
		}
		var c Criteria
		switch sel % 3 {
		case 0:
			c = PixelCriteria{}
		case 1:
			c = SyscallCriteria{}
		default:
			c = Union{PixelCriteria{}, SyscallCriteria{}}
		}
		if res, err := Slice(tr, deps, c, opts); err == nil && res.SliceCount > res.Total {
			t.Fatalf("slice of %d records from a trace of %d", res.SliceCount, res.Total)
		}
		if rs, err := SliceMulti(tr, deps, []Criteria{PixelCriteria{}, c}, opts); err == nil {
			for _, r := range rs {
				if r.SliceCount > r.Total {
					t.Fatalf("fused slice of %d records from a trace of %d", r.SliceCount, r.Total)
				}
			}
		}
	})
}

// FuzzSegmentedAgreesWithSlice is the differential fuzz target for the
// segmented backward pass: for any decodable trace, a forced-segmented
// SliceMulti must produce exactly the sequential result — same error, same
// bytes in every Result field.
func FuzzSegmentedAgreesWithSlice(f *testing.F) {
	m := multiWorkload()
	var buf bytes.Buffer
	if err := m.Tr.Write(&buf); err != nil {
		f.Fatal(err)
	}
	enc := buf.Bytes()
	f.Add(enc, byte(0))
	f.Add(enc[:len(enc)*2/3], byte(7))
	f.Add([]byte("WSLT not really"), byte(2))

	f.Fuzz(func(t *testing.T, data []byte, sel byte) {
		tr, err := trace.Read(bytes.NewReader(data))
		if err != nil || !sliceable(tr) {
			return
		}
		var deps *cdg.Deps
		opts := Options{MainThread: sel >> 4, ProgressPoints: int(sel % 5 * 3)}
		if forest, err := cfg.Build(tr); err == nil {
			deps = cdg.Compute(forest)
		} else {
			opts.NoControlDeps = true
		}
		cs := []Criteria{PixelCriteria{}, Union{PixelCriteria{}, SyscallCriteria{}}}
		seqOpts := opts
		seqOpts.Segments = 1
		want, seqErr := SliceMulti(tr, deps, cs, seqOpts)
		segOpts := opts
		segOpts.Segments = 2 + int(sel%7)
		segOpts.Workers = 1 + int(sel%4)
		got, segErr := SliceMulti(tr, deps, cs, segOpts)
		if (seqErr == nil) != (segErr == nil) {
			t.Fatalf("error mismatch: sequential %v, segmented %v", seqErr, segErr)
		}
		if seqErr != nil {
			return
		}
		for k := range cs {
			if !reflect.DeepEqual(want[k], got[k]) {
				t.Fatalf("criterion %s (k=%d w=%d): segmented result differs\nseq: %+v\nseg: %+v",
					cs[k].Name(), segOpts.Segments, segOpts.Workers, want[k], got[k])
			}
		}
	})
}
