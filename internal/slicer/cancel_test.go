package slicer

import (
	"errors"
	"testing"

	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// TestCanceledHookAbortsWalk: a Canceled hook that fires aborts the
// backward pass with ErrCanceled instead of returning a partial slice,
// for both the single-criterion and fused entry points.
func TestCanceledHookAbortsWalk(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	buf := m.Tile.Alloc(64)
	v := m.Const(7)
	for i := 0; i < 100; i++ {
		v = m.OpImm(isa.OpAdd, v, 1)
	}
	m.StoreU32(buf, v)
	m.MarkPixels(vmem.Range{Addr: buf, Size: 64})
	deps := forward(t, m.Tr)

	polled := false
	opts := Options{Canceled: func() bool { polled = true; return true }}
	if _, err := Slice(m.Tr, deps, PixelCriteria{}, opts); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Slice with firing Canceled hook: err = %v, want ErrCanceled", err)
	}
	if !polled {
		t.Fatal("Canceled hook was never polled")
	}
	if _, err := SliceMulti(m.Tr, deps, []Criteria{PixelCriteria{}, SyscallCriteria{}}, opts); !errors.Is(err, ErrCanceled) {
		t.Fatalf("SliceMulti with firing Canceled hook: err = %v, want ErrCanceled", err)
	}

	// A hook that never fires must not perturb the result.
	calls := 0
	opts = Options{Canceled: func() bool { calls++; return false }}
	res, err := Slice(m.Tr, deps, PixelCriteria{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	base := pixelSlice(t, m, Options{})
	if res.SliceCount != base.SliceCount {
		t.Fatalf("non-firing Canceled hook changed the slice: %d vs %d records", res.SliceCount, base.SliceCount)
	}
	if calls == 0 {
		t.Fatal("non-firing Canceled hook was never polled")
	}
}
