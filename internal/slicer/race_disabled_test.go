//go:build !race

package slicer

// raceEnabled reports whether the race detector is compiled in; see
// race_enabled_test.go.
const raceEnabled = false
