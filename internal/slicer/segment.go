package slicer

import (
	"sync"
	"sync/atomic"
	"time"

	"webslice/internal/cdg"
	"webslice/internal/isa"
	"webslice/internal/trace"
	"webslice/internal/vmem"
)

// This file implements the segmented parallel backward pass. The trace is
// partitioned into K contiguous segments; three phases reproduce the
// sequential walk bit for bit:
//
//  1. Scan (parallel): each segment runs the ordinary fused liveness walk
//     (sliceState.step, unmodified) with an EMPTY incoming live state. The
//     analysis is monotone in incoming liveness — every kill (register
//     test-and-clear at a def, live-memory clear at a store, pending-branch
//     consumption) happens whether or not the killed entry was live, and
//     gens only ever add liveness — so every mark made under the empty
//     state is a true mark, and the segment's bottom state is exactly the
//     surviving part of the liveness generated inside it. The scan also
//     records which records the criteria anchored (verdict-independent).
//
//  2. Stitch (sequential, last segment → first): threads the liveness the
//     scan could not see — the delta D flowing in from later segments —
//     backward through the earlier segments, maintaining the invariant
//     P ∪ D = T at every record (P: the segment's pass-1 state, T: the true
//     sequential state). D only holds the part of T the local pass missed,
//     so most records fall through with a couple of bitset probes; the
//     stitch also owns the TRUE call-frame state (pending branches,
//     contribution flags), replaying the control effects of records already
//     marked by the scan and resolving the deferred ones D decides.
//
//  3. Tally (parallel): reconstructs the progress curve from the final
//     slice bitset with per-segment scans plus a suffix-sum fix-up.
//
// The last segment's pass-1 run saw the true (empty) end-of-trace state, so
// its verdicts, frames, and pending-call counts are final; the stitch
// adopts its bottom state and starts walking at the second-to-last segment.
const (
	// segmentsPerWorker oversubscribes segments to workers so a segment that
	// happens to be slice-dense cannot straggle the whole scan.
	segmentsPerWorker = 4
	// autoSegmentMinRecs is the smallest trace the automatic mode will
	// segment; below it the stitch overhead outweighs the parallel scan.
	autoSegmentMinRecs = 1 << 14
	// minSegmentRecs keeps forced segment counts sane: segments are at least
	// this long and boundaries are aligned to it so the shared slice bitset
	// is written in goroutine-disjoint 64-bit words.
	minSegmentRecs = 64
)

// planSegments splits n records into at most k contiguous segments and
// returns the k+1 boundary indices. Interior boundaries are 64-aligned so
// concurrent segment scans touch disjoint words of the shared bitsets; k is
// clamped so every segment holds at least minSegmentRecs records.
func planSegments(n, k int) []int { return planSegmentsAligned(n, k, minSegmentRecs) }

// planSegmentsAligned is planSegments with an explicit interior-boundary
// alignment. Streaming sources pass their block size (always a multiple of
// minSegmentRecs) so every segment covers whole blocks and no block is
// decoded by two scan workers; k is clamped so every segment holds at least
// align records, which keeps the boundaries strictly increasing after
// alignment.
func planSegmentsAligned(n, k, align int) []int {
	if maxK := n / align; k > maxK {
		k = maxK
	}
	if k <= 1 {
		return []int{0, n}
	}
	bounds := make([]int, k+1)
	for s := 1; s < k; s++ {
		bounds[s] = n * s / k / align * align
	}
	bounds[k] = n
	return bounds
}

// anchorRecorder wraps a Criteria to record which records it anchored, so
// the stitch can replay anchor control effects in the sequential order
// (anchors fire before the record's own kind switch). Anchoring is
// verdict-independent, so pass-1 observations are final. One instance is
// shared by all segment scans of a criterion: each scan only sets bits of
// its own 64-aligned segment, so the writes are goroutine-disjoint.
type anchorRecorder struct {
	inner Criteria
	bits  Bitset
}

// Name implements Criteria.
func (a *anchorRecorder) Name() string { return a.inner.Name() }

// At implements Criteria.
func (a *anchorRecorder) At(i int, r *trace.Rec, t *trace.Trace) ([]vmem.Range, bool) {
	mem, anchor := a.inner.At(i, r, t)
	if anchor {
		a.bits.Set(i)
	}
	return mem, anchor
}

// sliceSegmented is the segmented parallel engine behind SliceMulti. Its
// output is byte-identical to sliceSequential in every Result field.
func sliceSegmented(src Source, deps *cdg.Deps, cs []Criteria, opts Options, bounds []int) ([]*Result, error) {
	t := src.Shell()
	n := src.NumRecs()
	segs := len(bounds) - 1
	workers := opts.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > segs {
		workers = segs
	}

	start := time.Now()

	// maxReg prescan, split across the same worker pool: presizing the
	// per-segment register sets keeps Set/Kill off the grow path.
	maxReg, err := parallelMaxReg(src, bounds, workers)
	if err != nil {
		return nil, err
	}

	// Shared per-criterion outputs, written goroutine-disjointly by segment.
	anchors := make([]*anchorRecorder, len(cs))
	inSlice := make([]Bitset, len(cs))
	for k, c := range cs {
		anchors[k] = &anchorRecorder{inner: c, bits: NewBitset(n)}
		inSlice[k] = NewBitset(n)
	}

	// Phase 1: parallel per-segment scans. states[s][k] is the pass-1 state
	// of segment s for criterion k.
	states := make([][]*sliceState, segs)
	segErrs := make([]error, segs)
	segOpts := opts
	segOpts.ProgressPoints = 0 // progress is reconstructed by the tally phase
	var canceled atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= segs || canceled.Load() {
					return
				}
				states[s], segErrs[s] = scanSegment(src, deps, anchors, inSlice, segOpts, maxReg, bounds[s], bounds[s+1], &canceled)
			}
		}()
	}
	wg.Wait()
	scanMs := msSince(start)
	if canceled.Load() {
		releaseStates(states, opts)
		// A decode failure also trips the cancellation flag; report the
		// lowest-index segment's error over the generic cancellation.
		for _, e := range segErrs {
			if e != nil {
				return nil, e
			}
		}
		return nil, ErrCanceled
	}

	// Phase 2: sequential stitch.
	stitchStart := time.Now()
	stitches := make([]*stitchCrit, len(cs))
	last := states[segs-1]
	for k := range cs {
		stitches[k] = newStitchCrit(t, deps, opts, inSlice[k], anchors[k].bits, last[k], maxReg, n)
	}
	stitchBuf := getRecBuf()
	stitchCanceled := false
	for s := segs - 2; s >= 0 && err == nil && !stitchCanceled; s-- {
		for k, sc := range stitches {
			sc.mergeBottom(states[s+1][k])
		}
		err = reverseWindows(src, bounds[s], bounds[s+1], stitchBuf, func(wlo int, recs []trace.Rec) bool {
			for i := wlo + len(recs) - 1; i >= wlo; i-- {
				if opts.Canceled != nil && i&(cancelStride-1) == 0 && opts.Canceled() {
					stitchCanceled = true
					return false
				}
				r := &recs[i-wlo]
				for _, sc := range stitches {
					sc.record(i, r)
				}
			}
			return true
		})
	}
	putRecBuf(stitchBuf)
	if err == nil && stitchCanceled {
		err = ErrCanceled
	}
	if err != nil {
		releaseStates(states, opts)
		releaseStitches(stitches)
		return nil, err
	}
	stitchMs := msSince(stitchStart)

	// Phase 3: assemble results and reconstruct the progress curves with
	// parallel per-segment scans of the final slice bitsets.
	tallyStart := time.Now()
	out := make([]*Result, len(cs))
	for k, c := range cs {
		out[k] = assembleResult(t, n, c, states, stitches[k], inSlice[k], k)
	}
	if err := fillProgress(src, opts, bounds, inSlice, out, workers, &canceled); err != nil {
		releaseStates(states, opts)
		releaseStitches(stitches)
		return nil, err
	}
	releaseStates(states, opts)
	releaseStitches(stitches)
	if opts.Stats != nil {
		*opts.Stats = PassStats{
			Segments: segs,
			ScanMs:   scanMs,
			StitchMs: stitchMs,
			TallyMs:  msSince(tallyStart),
		}
	}
	return out, nil
}

// scanSegment runs the unmodified fused liveness walk over records [lo, hi)
// with an empty incoming live state, one sliceState per criterion. Shared
// bitset writes stay inside the segment's 64-aligned word range. Streaming
// sources decode the segment one block at a time into a pooled window; a
// decode failure trips the shared cancellation flag so sibling scans stop.
func scanSegment(src Source, deps *cdg.Deps, anchors []*anchorRecorder, inSlice []Bitset, opts Options, maxReg uint32, lo, hi int, canceled *atomic.Bool) ([]*sliceState, error) {
	t := src.Shell()
	n := src.NumRecs()
	sts := make([]*sliceState, len(anchors))
	for k, a := range anchors {
		sts[k] = &sliceState{
			t:    t,
			deps: deps,
			crit: a,
			opts: opts,
			res: &Result{
				Criteria: a.Name(),
				Total:    n,
				InSlice:  inSlice[k],
			},
			live:        getWordSet(),
			regs:        getRegSet(maxReg, n),
			byFunc:      make([]int, len(t.Funcs)),
			sliceByFunc: make([]int, len(t.Funcs)),
		}
	}
	buf := getRecBuf()
	defer putRecBuf(buf)
	err := reverseWindows(src, lo, hi, buf, func(wlo int, recs []trace.Rec) bool {
		for i := wlo + len(recs) - 1; i >= wlo; i-- {
			if i&(cancelStride-1) == 0 {
				if canceled.Load() {
					return false
				}
				if opts.Canceled != nil && opts.Canceled() {
					canceled.Store(true)
					return false
				}
			}
			r := &recs[i-wlo]
			for _, s := range sts {
				s.step(i, r)
			}
		}
		return true
	})
	if err != nil {
		canceled.Store(true)
		return sts, err
	}
	return sts, nil
}

// releaseStates returns the pooled scratch of pass-1 states. It must run
// after the last read of any state — the stitch adopts the last segment's
// thread states, so this is only called once stitching and assembly are
// fully done (or abandoned).
func releaseStates(states [][]*sliceState, opts Options) {
	for _, segStates := range states {
		for _, s := range segStates {
			if s == nil {
				continue
			}
			putRegSet(s.regs)
			if ws, ok := s.live.(*WordSet); ok {
				putWordSet(ws)
			}
			for _, th := range s.threads {
				putThreadState(th)
			}
		}
	}
}

func releaseStitches(stitches []*stitchCrit) {
	for _, sc := range stitches {
		putRegSet(sc.dregs)
		putWordSet(sc.dlive)
	}
}

// stitchCrit is the per-criterion state of the sequential stitch: the delta
// liveness D (registers + memory the later segments propagate into earlier
// ones beyond what their local scans saw) and the TRUE call-frame state.
// Invariant while walking segment s: P_s ∪ D = T, where P_s is segment s's
// pass-1 state at the same record and T the sequential state. D may hold
// entries also in P_s (always subsets of T), which at worst re-marks an
// already-marked record — verdicts are disjunctions, so duplicates are
// harmless and cheaper than exact set difference.
type stitchCrit struct {
	t       *trace.Trace
	deps    *cdg.Deps
	noCDG   bool
	inSlice Bitset
	anchors Bitset

	dregs   *regSet
	dlive   *WordSet
	threads [256]*threadState

	// Fix-ups for verdict-dependent tallies the scan undercounted.
	newMarks      int
	pendingLeft   int
	sliceByThread [256]int
	sliceByFunc   []int
}

func newStitchCrit(t *trace.Trace, deps *cdg.Deps, opts Options, inSlice, anchors Bitset, last *sliceState, maxReg uint32, n int) *stitchCrit {
	sc := &stitchCrit{
		t:           t,
		deps:        deps,
		noCDG:       opts.NoControlDeps,
		inSlice:     inSlice,
		anchors:     anchors,
		dregs:       getRegSet(maxReg, n),
		dlive:       getWordSet(),
		sliceByFunc: make([]int, len(t.Funcs)),
	}
	// The last segment's scan saw the true end-of-trace state: adopt its
	// call frames (its relative depths ARE absolute — the sequential walk
	// also starts at depth 0 at the end of the trace).
	sc.threads = last.threads
	return sc
}

// mergeBottom folds a finished segment's bottom liveness into the delta:
// crossing the boundary below segment s, everything that survived s's local
// scan becomes incoming liveness for the records before it.
func (sc *stitchCrit) mergeBottom(s *sliceState) {
	sc.dregs.orFrom(s.regs)
	if ws, ok := s.live.(*WordSet); ok {
		sc.dlive.mergeFrom(ws)
	}
}

func (sc *stitchCrit) thread(tid uint8) *threadState {
	th := sc.threads[tid]
	if th == nil {
		th = &threadState{}
		sc.threads[tid] = th
	}
	return th
}

// applyMarkEffects replays the frame side of markSlice for a record in the
// slice: flag the current frame as contributing and schedule the record's
// control-dependence branches. Both are idempotent, so re-applying for a
// record whose effects the delta already produced is harmless.
func (sc *stitchCrit) applyMarkEffects(r *trace.Rec, th *threadState) {
	fr := th.frames.at(th.depth)
	fr.contrib = true
	if sc.noCDG || sc.deps == nil {
		return
	}
	for _, bpc := range sc.deps.Of(r.PC) {
		fr.addPending(bpc)
	}
}

// hit resolves a deferred verdict: record i is in the true slice because of
// liveness flowing in from later segments. Marks it if the local scan did
// not, tallies the correction, and applies the frame effects.
func (sc *stitchCrit) hit(i int, r *trace.Rec, th *threadState) {
	if !sc.inSlice.Get(i) {
		sc.inSlice.Set(i)
		sc.newMarks++
		sc.sliceByThread[r.TID]++
		bumpFunc(&sc.sliceByFunc, r.Func())
	}
	sc.applyMarkEffects(r, th)
}

// record advances the stitch over one record, mirroring sliceState.step
// against the delta state: kills test D, gens (applied only on a hit) feed
// D, and the true frames decide branch/call verdicts. Gen effects are
// applied on every D-hit even for records the scan already marked — an
// anchored record whose local kill missed never ran its gens, and the
// duplicates are harmless (see the stitchCrit invariant).
func (sc *stitchCrit) record(i int, r *trace.Rec) {
	th := sc.thread(r.TID)
	anchored := sc.anchors.Get(i)
	if anchored {
		// Sequentially, criteria anchor a record before its kind switch
		// runs, so a self-dependent branch can consume the pending branch
		// its own anchoring scheduled. Replay in the same order.
		sc.applyMarkEffects(r, th)
	}
	switch r.Kind {
	case isa.KindConst:
		if sc.dregs.Kill(uint32(r.Dst)) {
			sc.hit(i, r, th)
		}
	case isa.KindOp:
		if sc.dregs.Kill(uint32(r.Dst)) {
			sc.hit(i, r, th)
			sc.setReg(r.Src1)
			sc.setReg(r.Src2)
		}
	case isa.KindLoad:
		if sc.dregs.Kill(uint32(r.Dst)) {
			sc.hit(i, r, th)
			sc.dlive.Add(r.MemRange())
			sc.setReg(r.Src2)
		}
	case isa.KindStore:
		if sc.dlive.Kill(r.MemRange()) {
			sc.hit(i, r, th)
			sc.setReg(r.Src1)
			sc.setReg(r.Src2)
		}
	case isa.KindBranch:
		if !sc.noCDG && th.frames.at(th.depth).takePending(r.PC) {
			sc.hit(i, r, th)
			sc.setReg(r.Src1)
		}
	case isa.KindRet:
		th.depth++
		th.frames.at(th.depth).reset()
		return
	case isa.KindCall:
		fr := th.frames.at(th.depth)
		contributed := fr.contrib
		sc.pendingLeft += len(fr.pending)
		fr.reset()
		th.depth--
		if contributed && !anchored {
			// Interprocedural control dependence against the TRUE frame.
			// An anchored call was already marked before its frame closed,
			// which sequentially suppresses the outer-frame effects
			// (markSlice early-returns) — skip them here too.
			sc.hit(i, r, th)
		}
		return
	case isa.KindSyscall:
		if eff := sc.t.Sys[i]; eff != nil {
			hit := false
			for _, w := range eff.Writes {
				if sc.dlive.Kill(w) {
					hit = true
				}
			}
			if sc.dregs.Kill(uint32(r.Dst)) {
				hit = true
			}
			if hit {
				sc.hit(i, r, th)
				for _, rd := range eff.Reads {
					sc.dlive.Add(rd)
				}
			}
		}
	}
	// Records the scan already marked carry control effects (contribution,
	// pending branches) the true frames must see; replay them after the
	// kind switch, exactly where the sequential markSlice ran. Calls and
	// returns are excluded: their frame transitions were fully handled
	// above. Re-applying after a hit in the switch is an idempotent no-op.
	if !anchored && sc.inSlice.Get(i) {
		sc.applyMarkEffects(r, th)
	}
}

func (sc *stitchCrit) setReg(r isa.Reg) {
	if r != isa.RegNone {
		sc.dregs.Set(uint32(r))
	}
}

// finalPendingLeft totals the stitch's true pending residue: branches still
// pending at calls in the stitched segments, the last segment's own final
// pending-call count, and whatever is left on the true frames at the start
// of the trace (truncated traces).
func (sc *stitchCrit) finalPendingLeft(lastSegPending int) int {
	n := sc.pendingLeft + lastSegPending
	for _, th := range sc.threads {
		if th != nil {
			n += th.frames.pendingLeft()
		}
	}
	return n
}

// assembleResult combines the per-segment scan tallies (exact for the
// verdict-independent ones, scan-visible subsets for the rest) with the
// stitch's corrections into the final Result, matching sliceState.finish.
func assembleResult(t *trace.Trace, n int, c Criteria, states [][]*sliceState, sc *stitchCrit, bits Bitset, k int) *Result {
	res := &Result{
		Criteria: c.Name(),
		Total:    n,
		InSlice:  bits,
	}
	var byThread, sliceByThread [256]int
	byFunc := make([]int, len(t.Funcs))
	sliceByFunc := make([]int, len(t.Funcs))
	copy(sliceByThread[:], sc.sliceByThread[:])
	copy(sliceByFunc, sc.sliceByFunc)
	res.SliceCount = sc.newMarks
	for _, segStates := range states {
		s := segStates[k]
		res.SliceCount += s.res.SliceCount
		for tid := 0; tid < 256; tid++ {
			byThread[tid] += s.byThread[tid]
			sliceByThread[tid] += s.sliceByThread[tid]
		}
		for fn, cnt := range s.byFunc {
			if cnt > 0 {
				bumpFuncN(&byFunc, trace.FuncID(fn), cnt)
			}
		}
		for fn, cnt := range s.sliceByFunc {
			if cnt > 0 {
				bumpFuncN(&sliceByFunc, trace.FuncID(fn), cnt)
			}
		}
	}
	res.PendingLeft = sc.finalPendingLeft(states[len(states)-1][k].res.PendingLeft)
	res.ByThread = make(map[uint8]int)
	res.SliceByThread = make(map[uint8]int)
	for tid := 0; tid < 256; tid++ {
		if byThread[tid] > 0 {
			res.ByThread[uint8(tid)] = byThread[tid]
		}
		if sliceByThread[tid] > 0 {
			res.SliceByThread[uint8(tid)] = sliceByThread[tid]
		}
	}
	res.ByFunc = make(map[trace.FuncID]int)
	res.SliceByFunc = make(map[trace.FuncID]int)
	for fn, cnt := range byFunc {
		if cnt > 0 {
			res.ByFunc[trace.FuncID(fn)] = cnt
		}
	}
	for fn, cnt := range sliceByFunc {
		if cnt > 0 {
			res.SliceByFunc[trace.FuncID(fn)] = cnt
		}
	}
	return res
}

// bumpFuncN is bumpFunc for a batch of cnt records.
func bumpFuncN(tally *[]int, fn trace.FuncID, cnt int) {
	if int(fn) >= len(*tally) {
		*tally = append(*tally, make([]int, int(fn)+1-len(*tally))...)
	}
	(*tally)[fn] += cnt
}

// segProgress is one segment's contribution to a criterion's progress
// curve: sample points with segment-local cumulative counts, plus the
// segment totals the suffix fix-up folds into earlier segments' points.
type segProgress struct {
	points                            []ProgressPoint
	sliced, mainProcessed, mainSliced int
}

// fillProgress reconstructs each Result's backward-progress curve (paper
// Figure 4) from the final slice bitsets. Marks only ever happen during a
// record's own step, so the sequential walk's cumulative "sliced" counter
// at record i equals the number of set bits in [i, n) of the FINAL bitset —
// per-segment backward scans plus a sequential suffix-sum fix-up rebuild
// the exact samples the sequential pass would have emitted.
func fillProgress(src Source, opts Options, bounds []int, inSlice []Bitset, out []*Result, workers int, canceled *atomic.Bool) error {
	if opts.ProgressPoints <= 0 {
		return nil
	}
	n := src.NumRecs()
	sampleEvery := n / opts.ProgressPoints
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	segs := len(bounds) - 1
	parts := make([][]segProgress, segs) // parts[s][k]
	segErrs := make([]error, segs)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= segs || canceled.Load() {
					return
				}
				parts[s], segErrs[s] = progressSegment(src, opts, inSlice, bounds[s], bounds[s+1], sampleEvery, canceled)
			}
		}()
	}
	wg.Wait()
	if canceled.Load() {
		for _, e := range segErrs {
			if e != nil {
				return e
			}
		}
		return ErrCanceled
	}
	for k, res := range out {
		// Suffix sums over later segments turn local cumulatives into the
		// global ones; points flow end-of-trace first, like the walk.
		var sufSliced, sufMainProc, sufMainSliced int
		for s := segs - 1; s >= 0; s-- {
			p := parts[s][k]
			for _, pt := range p.points {
				res.Progress = append(res.Progress, ProgressPoint{
					Processed:     pt.Processed,
					Sliced:        pt.Sliced + sufSliced,
					MainProcessed: pt.MainProcessed + sufMainProc,
					MainSliced:    pt.MainSliced + sufMainSliced,
				})
			}
			sufSliced += p.sliced
			sufMainProc += p.mainProcessed
			sufMainSliced += p.mainSliced
		}
		if len(res.Progress) == 0 || res.Progress[len(res.Progress)-1].Processed != n {
			res.Progress = append(res.Progress, ProgressPoint{
				Processed:     n,
				Sliced:        res.SliceCount,
				MainProcessed: res.ByThread[opts.MainThread],
				MainSliced:    res.SliceByThread[opts.MainThread],
			})
		}
	}
	return nil
}

// progressSegment scans records [lo, hi) backward, emitting the criterion
// sample points that fall inside the segment with segment-local cumulative
// counts. The sequential pass samples when its processed counter (n-i after
// stepping record i) hits a multiple of sampleEvery. A decode failure trips
// the shared cancellation flag.
func progressSegment(src Source, opts Options, inSlice []Bitset, lo, hi, sampleEvery int, canceled *atomic.Bool) ([]segProgress, error) {
	n := src.NumRecs()
	parts := make([]segProgress, len(inSlice))
	buf := getRecBuf()
	defer putRecBuf(buf)
	err := reverseWindows(src, lo, hi, buf, func(wlo int, recs []trace.Rec) bool {
		for i := wlo + len(recs) - 1; i >= wlo; i-- {
			if i&(cancelStride-1) == 0 && canceled.Load() {
				return false
			}
			r := &recs[i-wlo]
			main := r.TID == opts.MainThread
			processed := n - i
			for k := range parts {
				p := &parts[k]
				marked := inSlice[k].Get(i)
				if marked {
					p.sliced++
				}
				if main {
					p.mainProcessed++
					if marked {
						p.mainSliced++
					}
				}
				if processed%sampleEvery == 0 {
					p.points = append(p.points, ProgressPoint{processed, p.sliced, p.mainProcessed, p.mainSliced})
				}
			}
		}
		return true
	})
	if err != nil {
		canceled.Store(true)
		return parts, err
	}
	return parts, nil
}

// parallelMaxReg splits the register prescan across the segment bounds.
func parallelMaxReg(src Source, bounds []int, workers int) (uint32, error) {
	segs := len(bounds) - 1
	if workers <= 1 || segs <= 1 {
		buf := getRecBuf()
		defer putRecBuf(buf)
		return maxRegOfSource(src, 0, src.NumRecs(), buf)
	}
	maxes := make([]uint32, segs)
	segErrs := make([]error, segs)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := getRecBuf()
			defer putRecBuf(buf)
			for {
				s := int(next.Add(1)) - 1
				if s >= segs {
					return
				}
				maxes[s], segErrs[s] = maxRegOfSource(src, bounds[s], bounds[s+1], buf)
			}
		}()
	}
	wg.Wait()
	for _, e := range segErrs {
		if e != nil {
			return 0, e
		}
	}
	var max uint32
	for _, m := range maxes {
		if m > max {
			max = m
		}
	}
	return max, nil
}
