package cdg

// Parallel forward-pass equivalence: ComputeParallel fans per-function
// postdominator + control-dependence work across a pool, and because PCs
// embed their FuncID the per-function results merge into disjoint key sets.
// The merged Deps must be indistinguishable — same adjacency, same sorted
// edge order — from the sequential pass, at every pool size.

import (
	"fmt"
	"reflect"
	"testing"

	"webslice/internal/cfg"
	"webslice/internal/trace"
	"webslice/internal/vm"
)

// manyFuncsTrace traces nFuncs distinct functions, each with data-dependent
// branching (both arms exercised) so every function contributes control
// dependences to the merge.
func manyFuncsTrace(tb testing.TB, nFuncs int) *trace.Trace {
	tb.Helper()
	m := vm.New()
	m.Thread(0, "main")
	for f := 0; f < nFuncs; f++ {
		fn := m.Func(fmt.Sprintf("f%03d", f), "test")
		m.Call(fn, func() {
			m.Loop(fmt.Sprintf("l%d", f), 4, func(i int) {
				c := m.Const(uint64((i + f) % 2))
				if m.Branch(c) {
					m.At("then")
					m.Const(1)
				} else {
					m.At("else")
					m.Const(2)
				}
				m.At("tail")
				m.Const(3)
			})
		})
	}
	return m.Tr
}

func TestComputeParallelMatchesSequential(t *testing.T) {
	f, err := cfg.Build(manyFuncsTrace(t, 25))
	if err != nil {
		t.Fatal(err)
	}
	seq := ComputeParallel(f, 1)
	if seq.Len() == 0 {
		t.Fatal("workload produced no control dependences; test is vacuous")
	}
	for _, workers := range []int{0, 2, 4, 9} {
		par := ComputeParallel(f, workers)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: parallel Deps differ from sequential", workers)
		}
	}
	// The default entry point must be the parallel path with identical output.
	if def := Compute(f); !reflect.DeepEqual(seq, def) {
		t.Error("Compute(f) differs from the sequential pass")
	}
}

func BenchmarkComputeSerial(b *testing.B) {
	f, err := cfg.Build(manyFuncsTrace(b, 120))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeParallel(f, 1)
	}
}

func BenchmarkComputeParallel(b *testing.B) {
	f, err := cfg.Build(manyFuncsTrace(b, 120))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeParallel(f, 0)
	}
}
