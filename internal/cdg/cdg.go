// Package cdg computes the control dependence graph of each traced function
// using the Ferrante–Ottenstein–Warren construction over the CFG and its
// postdominator tree: node n is control-dependent on branch b iff b has a
// successor s such that n postdominates s, and n does not postdominate b.
//
// The result — a map from program counter to the branch PCs it depends on —
// is the second half of the profiler's forward pass. As in the paper, it can
// be stored to stable storage and re-used by backward passes with different
// slicing criteria (see Save/Load).
package cdg

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"webslice/internal/cfg"
	"webslice/internal/postdom"
)

// Deps maps each static PC to the set of branch PCs it is directly
// control-dependent on. PCs with no dependences are absent.
type Deps struct {
	ByPC map[uint32][]uint32
}

// Of returns the branch PCs that pc is control-dependent on (nil if none).
func (d *Deps) Of(pc uint32) []uint32 { return d.ByPC[pc] }

// Len returns how many PCs have at least one control dependence.
func (d *Deps) Len() int { return len(d.ByPC) }

// Compute builds control dependences for every function in the forest,
// fanning the per-function work (postdominator tree + FOW walk) across
// GOMAXPROCS workers — each function's CFG is independent, making the
// forward pass embarrassingly parallel, as the paper notes.
func Compute(f *cfg.Forest) *Deps { return ComputeParallel(f, 0) }

// ComputeParallel is Compute with an explicit worker count (<= 0 means
// GOMAXPROCS). PCs embed their FuncID, so per-function results touch
// disjoint keys and merge without conflict: the merged Deps — and hence its
// serialized bytes and store content address — is identical to a sequential
// computation regardless of scheduling.
func ComputeParallel(f *cfg.Forest, workers int) *Deps {
	return compute(f, nil, workers)
}

// ComputeWithTrees is Compute with caller-supplied postdominator trees
// (keyed by function), so the trees can be shared with other analyses.
// Functions missing from trees get theirs computed on the fly.
func ComputeWithTrees(f *cfg.Forest, trees map[uint32]*postdom.Tree) *Deps {
	return compute(f, trees, 0)
}

func compute(f *cfg.Forest, trees map[uint32]*postdom.Tree, workers int) *Deps {
	graphs := make([]*cfg.Graph, 0, len(f.Graphs))
	for _, g := range f.Graphs {
		graphs = append(graphs, g)
	}
	treeFor := func(g *cfg.Graph) *postdom.Tree {
		if t := trees[uint32(g.Fn)]; t != nil {
			return t
		}
		return postdom.Compute(g)
	}
	d := &Deps{ByPC: make(map[uint32][]uint32)}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(graphs) {
		workers = len(graphs)
	}
	if workers <= 1 {
		for _, g := range graphs {
			computeGraph(g, treeFor(g), d.ByPC)
		}
		return d
	}
	parts := make([]map[uint32][]uint32, workers)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make(map[uint32][]uint32)
			for {
				i := int(next.Add(1))
				if i >= len(graphs) {
					break
				}
				computeGraph(graphs[i], treeFor(graphs[i]), local)
			}
			parts[w] = local
		}(w)
	}
	wg.Wait()
	for _, part := range parts {
		for pc, deps := range part {
			d.ByPC[pc] = deps
		}
	}
	return d
}

func computeGraph(g *cfg.Graph, t *postdom.Tree, out map[uint32][]uint32) {
	n := g.NumNodes()
	// touched collects the PCs this graph contributed so only their slices
	// need the determinism sort (a graph never shares PCs with another).
	var touched []uint32
	for b := int32(0); int(b) < n; b++ {
		if !g.Conditional(b) || b == cfg.Entry {
			continue
		}
		bpc := g.PCs[b]
		ipdomB := t.IPDom[b]
		for _, s := range g.Succs[b] {
			// Walk s up the postdominator tree until ipdom(b): every node on
			// the way is control-dependent on b.
			for v := s; v != ipdomB && v != -1; v = t.IPDom[v] {
				if v == cfg.Entry || v == cfg.Exit {
					continue
				}
				pc := g.PCs[v]
				deps := out[pc]
				if !hasDep(deps, bpc) {
					if len(deps) == 0 {
						touched = append(touched, pc)
					}
					out[pc] = append(deps, bpc)
				}
			}
		}
	}
	// Deterministic ordering for serialization and tests.
	for _, pc := range touched {
		deps := out[pc]
		sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
	}
}

func hasDep(deps []uint32, b uint32) bool {
	for _, x := range deps {
		if x == b {
			return true
		}
	}
	return false
}

// Save writes the dependence map to stable storage.
func (d *Deps) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(d.ByPC); err != nil {
		return fmt.Errorf("cdg: encode: %w", err)
	}
	return bw.Flush()
}

// Load reads a dependence map written by Save.
func Load(r io.Reader) (*Deps, error) {
	d := &Deps{}
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&d.ByPC); err != nil {
		return nil, fmt.Errorf("cdg: decode: %w", err)
	}
	if d.ByPC == nil {
		d.ByPC = make(map[uint32][]uint32)
	}
	return d, nil
}
