// Package cdg computes the control dependence graph of each traced function
// using the Ferrante–Ottenstein–Warren construction over the CFG and its
// postdominator tree: node n is control-dependent on branch b iff b has a
// successor s such that n postdominates s, and n does not postdominate b.
//
// The result — a map from program counter to the branch PCs it depends on —
// is the second half of the profiler's forward pass. As in the paper, it can
// be stored to stable storage and re-used by backward passes with different
// slicing criteria (see Save/Load).
package cdg

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"webslice/internal/cfg"
	"webslice/internal/postdom"
)

// Deps maps each static PC to the set of branch PCs it is directly
// control-dependent on. PCs with no dependences are absent.
type Deps struct {
	ByPC map[uint32][]uint32
}

// Of returns the branch PCs that pc is control-dependent on (nil if none).
func (d *Deps) Of(pc uint32) []uint32 { return d.ByPC[pc] }

// Len returns how many PCs have at least one control dependence.
func (d *Deps) Len() int { return len(d.ByPC) }

// Compute builds control dependences for every function in the forest.
func Compute(f *cfg.Forest) *Deps {
	d := &Deps{ByPC: make(map[uint32][]uint32)}
	for _, g := range f.Graphs {
		computeGraph(g, postdom.Compute(g), d)
	}
	return d
}

// ComputeWithTrees is Compute with caller-supplied postdominator trees
// (keyed by function), so the trees can be shared with other analyses.
func ComputeWithTrees(f *cfg.Forest, trees map[uint32]*postdom.Tree) *Deps {
	d := &Deps{ByPC: make(map[uint32][]uint32)}
	for fn, g := range f.Graphs {
		t := trees[uint32(fn)]
		if t == nil {
			t = postdom.Compute(g)
		}
		computeGraph(g, t, d)
	}
	return d
}

func computeGraph(g *cfg.Graph, t *postdom.Tree, d *Deps) {
	n := g.NumNodes()
	for b := int32(0); int(b) < n; b++ {
		if !g.Conditional(b) || b == cfg.Entry {
			continue
		}
		bpc := g.PCs[b]
		ipdomB := t.IPDom[b]
		for _, s := range g.Succs[b] {
			// Walk s up the postdominator tree until ipdom(b): every node on
			// the way is control-dependent on b.
			for v := s; v != ipdomB && v != -1; v = t.IPDom[v] {
				if v == cfg.Entry || v == cfg.Exit {
					continue
				}
				pc := g.PCs[v]
				if !hasDep(d.ByPC[pc], bpc) {
					d.ByPC[pc] = append(d.ByPC[pc], bpc)
				}
			}
		}
	}
	// Deterministic ordering for serialization and tests.
	for pc := range d.ByPC {
		deps := d.ByPC[pc]
		sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
	}
}

func hasDep(deps []uint32, b uint32) bool {
	for _, x := range deps {
		if x == b {
			return true
		}
	}
	return false
}

// Save writes the dependence map to stable storage.
func (d *Deps) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(d.ByPC); err != nil {
		return fmt.Errorf("cdg: encode: %w", err)
	}
	return bw.Flush()
}

// Load reads a dependence map written by Save.
func Load(r io.Reader) (*Deps, error) {
	d := &Deps{}
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&d.ByPC); err != nil {
		return nil, fmt.Errorf("cdg: decode: %w", err)
	}
	if d.ByPC == nil {
		d.ByPC = make(map[uint32][]uint32)
	}
	return d, nil
}
