package cdg

import (
	"bytes"
	"testing"

	"webslice/internal/cfg"
	"webslice/internal/trace"
	"webslice/internal/vm"
)

// diamondTrace traces an if/else both ways and returns the trace plus the
// PCs of interest: branch, then-arm, else-arm, join.
func diamondTrace(t *testing.T) (tr *trace.Trace, branchPC, thenPC, elsePC, joinPC uint32) {
	t.Helper()
	m := vm.New()
	m.Thread(0, "main")
	fn := m.Func("diamond", "test")
	var pcs [4]uint32
	run := func(v uint64) {
		m.Call(fn, func() {
			m.At("head")
			c := m.Const(v)
			_ = c
			before := len(m.Tr.Recs)
			if m.Branch(c) {
				pcs[0] = m.Tr.Recs[before].PC
				m.At("then")
				m.Const(1)
				pcs[1] = m.Tr.Recs[len(m.Tr.Recs)-1].PC
			} else {
				pcs[0] = m.Tr.Recs[before].PC
				m.At("else")
				m.Const(2)
				pcs[2] = m.Tr.Recs[len(m.Tr.Recs)-1].PC
			}
			m.At("join")
			m.Const(3)
			pcs[3] = m.Tr.Recs[len(m.Tr.Recs)-1].PC
		})
	}
	run(1)
	run(0)
	return m.Tr, pcs[0], pcs[1], pcs[2], pcs[3]
}

func TestDiamondControlDependence(t *testing.T) {
	tr, branchPC, thenPC, elsePC, joinPC := diamondTrace(t)
	f, err := cfg.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(f)
	if !depends(d, thenPC, branchPC) {
		t.Errorf("then-arm %#x should be control-dependent on branch %#x; deps=%v", thenPC, branchPC, d.Of(thenPC))
	}
	if !depends(d, elsePC, branchPC) {
		t.Errorf("else-arm %#x should be control-dependent on branch %#x", elsePC, branchPC)
	}
	if depends(d, joinPC, branchPC) {
		t.Errorf("join %#x must not be control-dependent on branch (it postdominates it)", joinPC)
	}
	if len(d.Of(branchPC)) != 0 {
		t.Errorf("branch itself should have no intra-function deps here, got %v", d.Of(branchPC))
	}
}

func TestLoopBodyDependsOnLoopBranch(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	fn := m.Func("loop", "test")
	var branchPC, bodyPC uint32
	m.Call(fn, func() {
		for i := 0; i < 3; i++ {
			m.At("cond")
			c := m.Const(uint64(b2u(i < 2)))
			m.At("branch")
			before := len(m.Tr.Recs)
			taken := m.Branch(c)
			branchPC = m.Tr.Recs[before].PC
			if !taken {
				break
			}
			m.At("body")
			m.Const(5)
			bodyPC = m.Tr.Recs[len(m.Tr.Recs)-1].PC
		}
		m.At("after")
		m.Const(6)
	})
	f, err := cfg.Build(m.Tr)
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(f)
	if !depends(d, bodyPC, branchPC) {
		t.Errorf("loop body should be control-dependent on loop branch; deps=%v", d.Of(bodyPC))
	}
}

func TestNestedBranches(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	fn := m.Func("nested", "test")
	var outerPC, innerPC, innerBodyPC uint32
	run := func(a, b uint64) {
		m.Call(fn, func() {
			m.At("h")
			ca := m.Const(a)
			before := len(m.Tr.Recs)
			if m.Branch(ca) {
				outerPC = m.Tr.Recs[before].PC
				m.At("outer-then")
				cb := m.Const(b)
				bi := len(m.Tr.Recs)
				if m.Branch(cb) {
					innerPC = m.Tr.Recs[bi].PC
					m.At("inner-then")
					m.Const(1)
					innerBodyPC = m.Tr.Recs[len(m.Tr.Recs)-1].PC
				}
				m.At("outer-join")
				m.Const(2)
			}
			m.At("join")
			m.Const(3)
		})
	}
	run(1, 1)
	run(1, 0)
	run(0, 0)
	f, err := cfg.Build(m.Tr)
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(f)
	if !depends(d, innerBodyPC, innerPC) {
		t.Error("inner body should depend on inner branch")
	}
	if !depends(d, innerPC, outerPC) {
		t.Error("inner branch should depend on outer branch")
	}
	if depends(d, innerBodyPC, outerPC) {
		t.Error("direct dependence should be on the nearest branch only (transitive via pending list)")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr, branchPC, thenPC, _, _ := diamondTrace(t)
	f, err := cfg.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(f)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("Len %d != %d", d2.Len(), d.Len())
	}
	if !depends(d2, thenPC, branchPC) {
		t.Error("loaded deps lost the diamond dependence")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("expected decode error")
	}
}

func TestStraightLineHasNoDeps(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	fn := m.Func("straight", "test")
	m.Call(fn, func() {
		m.Const(1)
		m.Const(2)
	})
	f, err := cfg.Build(m.Tr)
	if err != nil {
		t.Fatal(err)
	}
	d := Compute(f)
	if d.Len() != 0 {
		t.Errorf("straight-line code has %d control-dependent PCs, want 0", d.Len())
	}
}

func depends(d *Deps, pc, on uint32) bool {
	for _, b := range d.Of(pc) {
		if b == on {
			return true
		}
	}
	return false
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
