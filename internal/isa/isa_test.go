package isa

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNop:     "nop",
		KindConst:   "const",
		KindOp:      "op",
		KindLoad:    "load",
		KindStore:   "store",
		KindBranch:  "branch",
		KindCall:    "call",
		KindRet:     "ret",
		KindSyscall: "syscall",
		KindMarker:  "marker",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
		if !k.Valid() {
			t.Errorf("Kind %v should be valid", k)
		}
	}
	if Kind(200).Valid() {
		t.Error("Kind(200) should be invalid")
	}
	if Kind(200).String() == "" {
		t.Error("invalid kind should still print")
	}
}

func TestAluOpEvalBasics(t *testing.T) {
	cases := []struct {
		op   AluOp
		a, b uint64
		want uint64
	}{
		{OpAdd, 3, 4, 7},
		{OpSub, 10, 4, 6},
		{OpMul, 5, 6, 30},
		{OpDiv, 42, 6, 7},
		{OpDiv, 42, 0, 0},
		{OpMod, 42, 5, 2},
		{OpMod, 42, 0, 0},
		{OpAnd, 0b1100, 0b1010, 0b1000},
		{OpOr, 0b1100, 0b1010, 0b1110},
		{OpXor, 0b1100, 0b1010, 0b0110},
		{OpShl, 1, 4, 16},
		{OpShr, 16, 4, 1},
		{OpShl, 1, 64, 1}, // shift amount masked to 6 bits
		{OpCmpEQ, 5, 5, 1},
		{OpCmpEQ, 5, 6, 0},
		{OpCmpNE, 5, 6, 1},
		{OpCmpLT, ^uint64(0), 1, 1}, // -1 < 1 signed
		{OpCmpLE, 3, 3, 1},
		{OpCmpGT, 4, 3, 1},
		{OpCmpGE, 3, 4, 0},
		{OpMin, ^uint64(0), 3, ^uint64(0)}, // signed min(-1, 3) = -1
		{OpMax, ^uint64(0), 3, 3},
		{OpMov, 99, 12345, 99},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v.Eval(%d, %d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestAluCompareComplementary(t *testing.T) {
	// Property: EQ/NE, LT/GE, LE/GT are complements for all inputs.
	f := func(a, b uint64) bool {
		return OpCmpEQ.Eval(a, b) != OpCmpNE.Eval(a, b) &&
			OpCmpLT.Eval(a, b) != OpCmpGE.Eval(a, b) &&
			OpCmpLE.Eval(a, b) != OpCmpGT.Eval(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAluAddSubRoundTrip(t *testing.T) {
	f := func(a, b uint64) bool {
		return OpSub.Eval(OpAdd.Eval(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAluMinMaxOrder(t *testing.T) {
	f := func(a, b uint64) bool {
		lo, hi := OpMin.Eval(a, b), OpMax.Eval(a, b)
		return OpCmpLE.Eval(lo, hi) == 1 && (lo == a && hi == b || lo == b && hi == a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSysSpecs(t *testing.T) {
	s, ok := Spec(SysSendto)
	if !ok {
		t.Fatal("sendto should be modeled")
	}
	if !s.Output || s.Input {
		t.Errorf("sendto should be output-only, got %+v", s)
	}
	r, ok := Spec(SysRecvfrom)
	if !ok || !r.Input || r.Output {
		t.Errorf("recvfrom should be input-only, got %+v (ok=%v)", r, ok)
	}
	if _, ok := Spec(Sys(9999)); ok {
		t.Error("unknown syscall should not resolve")
	}
	if SysSendto.String() != "sendto" {
		t.Errorf("SysSendto.String() = %q", SysSendto.String())
	}
	if Sys(9999).String() == "" {
		t.Error("unknown syscall should still print")
	}
	if len(Specs()) < 10 {
		t.Errorf("expected a meaningful syscall table, got %d entries", len(Specs()))
	}
}

func TestAluOpStringAndValid(t *testing.T) {
	for op := OpAdd; op.Valid(); op++ {
		if op.String() == "" {
			t.Errorf("op %d has empty name", op)
		}
	}
	if AluOp(1000).Valid() {
		t.Error("AluOp(1000) should be invalid")
	}
	if OpAdd.String() != "add" || OpCmpLT.String() != "cmplt" {
		t.Error("unexpected op names")
	}
}

func TestMarkKindString(t *testing.T) {
	if MarkPixels.String() != "pixels" || MarkAux.String() != "aux" {
		t.Error("unexpected mark kind names")
	}
	if MarkKind(9).String() == "" {
		t.Error("unknown mark kind should still print")
	}
}
