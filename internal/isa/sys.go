package isa

import "fmt"

// Sys identifies a system call. The numbering follows the Linux x86-64 ABI
// for the calls the paper's Chromium workload actually issued, so traces read
// like the ones the original Pin tool produced.
type Sys uint32

const (
	SysRead         Sys = 0
	SysWrite        Sys = 1
	SysMmap         Sys = 9
	SysIoctl        Sys = 16
	SysWritev       Sys = 20
	SysMadvise      Sys = 28
	SysSendto       Sys = 44
	SysRecvfrom     Sys = 45
	SysSendmsg      Sys = 46
	SysRecvmsg      Sys = 47
	SysFutex        Sys = 202
	SysClockGettime Sys = 228
	SysEpollWait    Sys = 232
)

// SysSpec describes the user-visible semantics of one system call: what it
// is called, whether it moves data into or out of the process, and how many
// argument registers the kernel reads. The exact memory ranges a particular
// dynamic call reads or writes are runtime facts and therefore live in the
// trace's syscall side table; the spec is the static contract, the analog of
// the paper's reading of the Linux kernel manual (e.g. that sendto reads the
// memory pointed to by buf and dest_addr).
type SysSpec struct {
	Num  Sys
	Name string
	// Output reports whether the call transmits process data to the outside
	// world (network, display, disk). Output syscalls anchor the
	// syscall-based slicing criteria.
	Output bool
	// Input reports whether the call writes external data into process
	// memory (it acts as a definition site during liveness analysis).
	Input bool
	// ArgRegs is how many argument registers the kernel reads (per the
	// x86-64 ABI, up to six; the virtual ISA encodes at most two explicit
	// argument registers per record, extra arguments travel through memory).
	ArgRegs int
}

var sysSpecs = map[Sys]SysSpec{
	SysRead:         {SysRead, "read", false, true, 3},
	SysWrite:        {SysWrite, "write", true, false, 3},
	SysMmap:         {SysMmap, "mmap", false, false, 6},
	SysIoctl:        {SysIoctl, "ioctl", true, false, 3},
	SysWritev:       {SysWritev, "writev", true, false, 3},
	SysMadvise:      {SysMadvise, "madvise", false, false, 3},
	SysSendto:       {SysSendto, "sendto", true, false, 6},
	SysRecvfrom:     {SysRecvfrom, "recvfrom", false, true, 6},
	SysSendmsg:      {SysSendmsg, "sendmsg", true, false, 3},
	SysRecvmsg:      {SysRecvmsg, "recvmsg", false, true, 3},
	SysFutex:        {SysFutex, "futex", false, false, 6},
	SysClockGettime: {SysClockGettime, "clock_gettime", false, true, 2},
	SysEpollWait:    {SysEpollWait, "epoll_wait", false, true, 4},
}

// Spec returns the static contract for a syscall number. The second result
// is false for numbers this ISA does not model.
func Spec(n Sys) (SysSpec, bool) {
	s, ok := sysSpecs[n]
	return s, ok
}

// Specs returns all modeled syscall specs (order unspecified).
func Specs() []SysSpec {
	out := make([]SysSpec, 0, len(sysSpecs))
	for _, s := range sysSpecs {
		out = append(out, s)
	}
	return out
}

func (s Sys) String() string {
	if sp, ok := sysSpecs[s]; ok {
		return sp.Name
	}
	return fmt.Sprintf("sys(%d)", uint32(s))
}
