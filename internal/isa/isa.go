// Package isa defines the virtual instruction set architecture used by the
// traced machine (package vm) and analyzed by the slicing profiler.
//
// The profiler in the ISPASS'19 paper works on machine-level (x86-64)
// instruction traces collected with Intel Pin. This repository has no
// hardware tracer, so the browser engine executes on a small virtual ISA
// instead. The ISA deliberately exposes exactly the information the paper's
// Pin tool recorded: the static opcode class of each instruction, the
// registers it reads and writes, the exact memory addresses it accesses, the
// thread it ran on, and — for syscall instructions — the system call number.
package isa

import "fmt"

// Reg identifies a virtual register. Registers are SSA-like: the traced
// machine allocates a fresh register for every value-producing instruction,
// so each register is written exactly once. RegNone (0) means "no register".
//
// Register IDs are unique across the whole trace but are only ever used by
// the thread that created them; cross-thread dataflow must go through memory,
// mirroring how the paper keeps a separate live-register set per thread while
// sharing a single live-memory set.
type Reg uint32

// RegNone is the zero register operand: the instruction does not read or
// write a register in that slot.
const RegNone Reg = 0

// Kind classifies a dynamic instruction record.
type Kind uint8

const (
	// KindNop does nothing. Used for padding and as a safe zero value.
	KindNop Kind = iota
	// KindConst writes an immediate value to Dst. It has no dependencies;
	// it models instructions like `mov $imm, %reg` and `lea`.
	KindConst
	// KindOp computes Dst from Src1 and Src2 (ALU). Aux holds the AluOp.
	KindOp
	// KindLoad reads Size bytes at Addr into Dst. Src1, if non-zero, is the
	// register the effective address was computed into, so index
	// computations participate in the slice (as they do on real hardware,
	// where the address operand registers are read by the load).
	KindLoad
	// KindStore writes Src1 (Size bytes) to Addr. Src2, if non-zero, is the
	// address register (see KindLoad).
	KindStore
	// KindBranch is a conditional branch on Src1. Aux is 1 if taken. The
	// successor is whatever program counter executes next in the same
	// function instance; the CFG builder recovers edges from the dynamic
	// trace, exactly as the paper does for indirect branches.
	KindBranch
	// KindCall transfers control to the function identified by Aux.
	KindCall
	// KindRet returns from the current function.
	KindRet
	// KindSyscall invokes the kernel. Aux is the syscall number; Src1 and
	// Src2 are argument registers read by the call, Dst receives the
	// result. Memory read/write ranges are recorded in the trace's syscall
	// side table, the analog of the paper's per-syscall kernel-manual
	// semantics.
	KindSyscall
	// KindMarker is the slicing-criteria marker, the analog of the paper's
	// `xchg %r13w, %r13w` pseudo-instruction planted in
	// RasterBufferProvider::PlaybackToMemory. Aux is the marker ID; the
	// associated memory range lives in the trace's marker side table (the
	// "external file" of the paper).
	KindMarker
)

var kindNames = [...]string{
	KindNop:     "nop",
	KindConst:   "const",
	KindOp:      "op",
	KindLoad:    "load",
	KindStore:   "store",
	KindBranch:  "branch",
	KindCall:    "call",
	KindRet:     "ret",
	KindSyscall: "syscall",
	KindMarker:  "marker",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is a defined instruction kind.
func (k Kind) Valid() bool { return k <= KindMarker }

// AluOp selects the operation of a KindOp instruction.
type AluOp uint32

const (
	OpAdd AluOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpCmpEQ // 1 if a == b else 0
	OpCmpNE
	OpCmpLT // signed
	OpCmpLE
	OpCmpGT
	OpCmpGE
	OpMin
	OpMax
	OpMov // Dst = Src1 (register move)
	opEnd
)

var aluNames = [...]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpCmpEQ: "cmpeq", OpCmpNE: "cmpne", OpCmpLT: "cmplt", OpCmpLE: "cmple",
	OpCmpGT: "cmpgt", OpCmpGE: "cmpge", OpMin: "min", OpMax: "max", OpMov: "mov",
}

func (o AluOp) String() string {
	if int(o) < len(aluNames) {
		return aluNames[o]
	}
	return fmt.Sprintf("aluop(%d)", uint32(o))
}

// Valid reports whether o is a defined ALU operation.
func (o AluOp) Valid() bool { return o < opEnd }

// Eval applies the ALU operation to two operand values. Division and modulo
// by zero yield zero rather than faulting, like saturating hardware helpers.
func (o AluOp) Eval(a, b uint64) uint64 {
	switch o {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case OpMod:
		if b == 0 {
			return 0
		}
		return a % b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (b & 63)
	case OpShr:
		return a >> (b & 63)
	case OpCmpEQ:
		return b2u(a == b)
	case OpCmpNE:
		return b2u(a != b)
	case OpCmpLT:
		return b2u(int64(a) < int64(b))
	case OpCmpLE:
		return b2u(int64(a) <= int64(b))
	case OpCmpGT:
		return b2u(int64(a) > int64(b))
	case OpCmpGE:
		return b2u(int64(a) >= int64(b))
	case OpMin:
		if int64(a) < int64(b) {
			return a
		}
		return b
	case OpMax:
		if int64(a) > int64(b) {
			return a
		}
		return b
	case OpMov:
		return a
	default:
		return 0
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// MarkKind distinguishes classes of criteria markers.
type MarkKind uint8

const (
	// MarkPixels flags a buffer holding final pixel values headed for the
	// display — the paper's primary slicing criterion.
	MarkPixels MarkKind = iota
	// MarkAux flags any other analyst-chosen criteria buffer.
	MarkAux
)

func (m MarkKind) String() string {
	switch m {
	case MarkPixels:
		return "pixels"
	case MarkAux:
		return "aux"
	default:
		return fmt.Sprintf("mark(%d)", uint8(m))
	}
}
