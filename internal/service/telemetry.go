package service

import (
	"strconv"

	"webslice/internal/obs"
)

// Tracer returns the span recorder the manager publishes into (nil when
// tracing is disabled).
func (m *Manager) Tracer() *obs.Tracer { return m.tracer }

// JobTrace returns the recorded spans of one job's trace, oldest first.
// ok is false when the job is unknown or tracing is disabled. Spans
// evicted from the tracer's bounded ring are simply absent.
func (m *Manager) JobTrace(id string) ([]obs.SpanData, bool) {
	if m.tracer == nil {
		return nil, false
	}
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	return m.tracer.ForTrace(j.span.TraceID()), true
}

// startJobSpan opens the job's root span — or, when the submission carried
// a traceparent header (Spec.TraceCtx), a span parented on the remote
// coordinator's — and annotates it with the job's identity. The span is
// written once here, before the job is visible to any other goroutine,
// and ends in finish/drop.
func (m *Manager) startJobSpan(j *job) {
	if m.tracer == nil {
		return
	}
	s := m.tracer.Remote(j.spec.TraceCtx, "job")
	s.Set("job", j.id).Set("criteria", j.spec.Criteria)
	switch {
	case len(j.spec.Trace) > 0:
		s.Set("trace_bytes", strconv.Itoa(len(j.spec.Trace)))
	case j.spec.Site != "":
		s.Set("site", j.spec.Site)
	default:
		s.Set("seed", strconv.FormatUint(j.spec.Seed, 10))
	}
	if j.spec.Origin != "" {
		s.Set("origin", j.spec.Origin)
	}
	j.span = s
}
