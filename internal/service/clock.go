package service

import "time"

// Clock abstracts time for the manager so retry/backoff schedules are
// testable without real sleeps (see the fake clock in the service tests).
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until stop closes, whichever comes first.
	Sleep(d time.Duration, stop <-chan struct{})
}

// SystemClock is the production Clock, shared by everything that wants
// injectable time (the manager's retry backoff, the cluster's health
// probes, the client's poll loop).
var SystemClock Clock = realClock{}

// realClock is the production Clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(d time.Duration, stop <-chan struct{}) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-stop:
	}
}
