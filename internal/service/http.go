package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"

	"webslice/internal/metrics"
	"webslice/internal/obs"
)

// maxTraceBody bounds an uploaded binary trace (256 MB).
const maxTraceBody = 256 << 20

// NewHandler returns the websliced HTTP API over a manager:
//
//	POST   /jobs            submit a site job (JSON Spec)     -> 202 {id}
//	POST   /jobs/trace      submit a binary trace
//	                        (?criteria, ?verify=1)            -> 202 {id}
//	GET    /jobs            list jobs                         -> 200 [Info]
//	GET    /jobs/quarantined poisoned jobs (2x panicked)      -> 200 [Info]
//	GET    /jobs/{id}        job status                       -> 200 Info
//	GET    /jobs/{id}/result finished job result              -> 200 Result
//	DELETE /jobs/{id}        cancel                           -> 200
//	GET    /jobs/{id}/trace  recorded spans of the job's trace -> 200 [SpanData]
//	GET    /healthz         liveness (503 while draining)     -> 200
//	GET    /metrics         text exposition of the registry   -> 200
//	GET    /debug/spans     every span in the tracer's ring (JSONL)
//
// Backpressure surfaces as HTTP 429 (queue full) and shutdown as 503.
// Submissions carrying a W3C traceparent header join the caller's trace:
// the job's spans parent under the propagated context instead of starting
// a fresh trace (this is how a coordinator-routed job yields one
// causally-linked trace across nodes).
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
			return
		}
		spec.TraceCtx, _ = obs.Extract(r.Header)
		submit(m, w, spec)
	})

	mux.HandleFunc("POST /jobs/trace", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTraceBody))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("reading trace body: %w", err))
			return
		}
		if len(body) == 0 {
			httpError(w, http.StatusBadRequest, errors.New("empty trace body"))
			return
		}
		spec := Spec{
			Trace:    body,
			Criteria: r.URL.Query().Get("criteria"),
			Verify:   r.URL.Query().Get("verify") == "1" || r.URL.Query().Get("verify") == "true",
			Origin:   r.URL.Query().Get("origin"),
		}
		spec.TraceCtx, _ = obs.Extract(r.Header)
		submit(m, w, spec)
	})

	mux.HandleFunc("GET /jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		spans, ok := m.JobTrace(id)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no trace for job %q (unknown job, or tracing disabled)", id))
			return
		}
		writeJSON(w, http.StatusOK, spans)
	})

	mux.HandleFunc("GET /debug/spans", func(w http.ResponseWriter, r *http.Request) {
		t := m.Tracer()
		if t == nil {
			httpError(w, http.StatusNotFound, errors.New("tracing disabled (websliced -trace-spans 0)"))
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		obs.WriteJSONL(w, t.Snapshot())
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := m.Jobs()
		sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
		writeJSON(w, http.StatusOK, jobs)
	})

	mux.HandleFunc("GET /jobs/quarantined", func(w http.ResponseWriter, r *http.Request) {
		// The poisoned-job list: jobs pulled from rotation after panicking
		// twice. The literal route wins over GET /jobs/{id} by specificity.
		writeJSON(w, http.StatusOK, m.Quarantined())
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, ok := m.Info(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, info)
	})

	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		info, ok := m.Info(id)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
			return
		}
		res, ok := m.Result(id)
		if !ok {
			httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s, not done", id, info.Status))
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if !m.Cancel(id) {
			httpError(w, http.StatusConflict, fmt.Errorf("job %q unknown or already finished", id))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "canceling"})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// During drain the instance still answers (running jobs finish) but
		// reports unhealthy so load balancers stop routing new work to it.
		if m.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining", "workers": m.Workers()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "workers": m.Workers()})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", metrics.ContentType)
		m.Metrics().WriteText(w)
	})

	return mux
}

func submit(m *Manager, w http.ResponseWriter, spec Spec) {
	id, err := m.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrTraceTooLarge):
		httpError(w, http.StatusRequestEntityTooLarge, err)
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
