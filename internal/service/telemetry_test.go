package service

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"webslice/internal/obs"
	"webslice/internal/store"
)

// syncBuffer is a mutex-guarded log sink: the manager's workers log from
// their own goroutines (the "job finished" line lands after the terminal
// status is visible), so the test cannot read a bare bytes.Buffer.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestSpansSmoke is the end-to-end tracing smoke (ci.sh runs it by name):
// one golden job through the full pipeline must yield a single trace whose
// tree includes the queue wait, the attempt, the render, the store
// lookups, and the backward pass's scan/stitch/tally phases — all with
// correct parent links — retrievable over GET /jobs/{id}/trace.
func TestSpansSmoke(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var logBuf syncBuffer
	tr := obs.New(256, nil)
	m := New(Config{
		Workers: 1,
		Store:   st,
		Tracer:  tr,
		Logger:  slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"site":"amazon-desktop","scale":0.04}`))
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitStatus(t, m, acc.ID, StatusDone)

	resp, err = http.Get(srv.URL + "/jobs/" + acc.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s/trace = %d", acc.ID, resp.StatusCode)
	}
	var spans []obs.SpanData
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}

	byName := map[string]obs.SpanData{}
	for _, s := range spans {
		if s.Trace != spans[0].Trace {
			t.Fatalf("span %s is on trace %s, want single trace %s", s.Name, s.Trace, spans[0].Trace)
		}
		byName[s.Name] = s
	}
	for _, want := range []string{
		"job", "queue.wait", "attempt", "render",
		"store.get", "forward", "store.put",
		"slice", "slice.scan", "slice.stitch", "slice.tally",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("trace missing span %q (have %v)", want, names(spans))
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	// Parent links: the causal chain job -> attempt -> {render, slice} and
	// slice -> phases must hold exactly.
	jobID := byName["job"].ID
	for child, parent := range map[string]string{
		"queue.wait":   jobID,
		"attempt":      jobID,
		"render":       byName["attempt"].ID,
		"slice":        byName["attempt"].ID,
		"store.get":    byName["attempt"].ID,
		"slice.scan":   byName["slice"].ID,
		"slice.stitch": byName["slice"].ID,
		"slice.tally":  byName["slice"].ID,
	} {
		if got := byName[child].Parent; got != parent {
			t.Errorf("%s.parent = %q, want %q", child, got, parent)
		}
	}
	if byName["job"].Parent != "" {
		t.Errorf("job span has parent %q, want root", byName["job"].Parent)
	}

	// The structured log carries the trace ID, linking log lines to spans.
	if !strings.Contains(logBuf.String(), spans[0].Trace) {
		t.Errorf("log output does not mention trace %s:\n%s", spans[0].Trace, logBuf.String())
	}

	// The latency histograms expose the trace as an exemplar, linking
	// /metrics to /jobs/{id}/trace.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mb bytes.Buffer
	mb.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(mb.String(), "# EXEMPLAR slice_ms_bucket") ||
		!strings.Contains(mb.String(), spans[0].Trace) {
		t.Errorf("/metrics missing slice_ms exemplar for trace %s", spans[0].Trace)
	}

	// /debug/spans serves the whole ring as JSONL.
	resp, err = http.Get(srv.URL + "/debug/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var db bytes.Buffer
	db.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(db.String(), `"name":"job"`) {
		t.Errorf("/debug/spans = %d, body %.200s", resp.StatusCode, db.String())
	}
}

func names(spans []obs.SpanData) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

// A submission carrying a traceparent header must join the caller's trace
// rather than starting its own — the cross-node propagation contract.
func TestSubmitJoinsPropagatedTrace(t *testing.T) {
	tr := obs.New(64, nil)
	m := New(Config{Workers: 1, Tracer: tr})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	const parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req, _ := http.NewRequest("POST", srv.URL+"/jobs", strings.NewReader(`{"seed":7}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.Header, parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&acc)
	resp.Body.Close()
	waitStatus(t, m, acc.ID, StatusDone)

	spans, ok := m.JobTrace(acc.ID)
	if !ok || len(spans) == 0 {
		t.Fatalf("JobTrace = %v, %t", spans, ok)
	}
	for _, s := range spans {
		if s.Trace != "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Fatalf("span %s on trace %s, want the propagated trace", s.Name, s.Trace)
		}
		if s.Name == "job" && s.Parent != "00f067aa0ba902b7" {
			t.Fatalf("job span parent = %q, want the propagated span", s.Parent)
		}
	}
}

// With tracing disabled (nil Tracer) the trace endpoints 404 and the job
// path records nothing — the disabled configuration is first-class, not an
// error state.
func TestTracingDisabledEndpoints(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	id, err := m.Submit(Spec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, id, StatusDone)
	if _, ok := m.JobTrace(id); ok {
		t.Fatal("JobTrace succeeded with tracing disabled")
	}
	for _, path := range []string{"/jobs/" + id + "/trace", "/debug/spans"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}
