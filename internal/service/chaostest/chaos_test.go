package chaostest

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webslice/internal/service"
	"webslice/internal/store"
)

// The chaos schedule: nTags jobs are submitted across chaosIncarnations
// killed daemons, then a final clean incarnation drains everything.
// poisonTag always panics — it must end quarantined, never done.
const (
	nTags             = 30
	tagsPerIncarn     = 6
	chaosIncarnations = 5
	poisonTag         = 4
)

// harness is the state that survives "process" deaths: execution counts,
// which jobs were acknowledged, and what a client observed when.
type harness struct {
	t           *testing.T
	journalPath string
	storeDir    string

	execs [nTags + 2]atomic.Int64 // per-tag runner executions, all incarnations

	mu        sync.Mutex
	st        *store.Store   // current incarnation's (faulty) store
	idTag     map[string]int // acked job id -> tag
	doneExecs map[int]int64  // tag -> exec count when a client first saw done
}

// tagSpec encodes a tag into a Spec the service validates happily: the tag
// rides in Scale (scale is only required to be a positive finite number).
func tagSpec(tag int) service.Spec {
	return service.Spec{Site: "maps", Scale: float64(tag+1) / 1000}
}

func tagOf(spec service.Spec) int {
	return int(math.Round(spec.Scale*1000)) - 1
}

// runner is the chaos workload: the poison tag always panics, tags
// divisible by 3 fail transiently on their first execution (exercising
// retry), and everything touches the fault-injected artifact store.
func (h *harness) runner(ctx context.Context, spec service.Spec) (*service.Result, error) {
	tag := tagOf(spec)
	n := h.execs[tag].Add(1)
	if tag == poisonTag || tag == nTags+1 {
		panic(fmt.Sprintf("poison tag %d (execution %d)", tag, n))
	}
	h.mu.Lock()
	st := h.st
	h.mu.Unlock()
	// Drive the store's disk path and circuit breaker under injected
	// faults; Put degrades to memory-only, Get errors are cache misses.
	key := fmt.Sprintf("chaos-%d", tag)
	st.Put("slice", key, []byte(spec.Site))
	st.Get("slice", key)
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(time.Duration(tag%3) * time.Millisecond):
	}
	if n == 1 && tag%3 == 0 {
		return nil, errors.New("transient chaos failure")
	}
	return &service.Result{Criteria: spec.Criteria, Total: tag + 1, SliceCount: 1}, nil
}

// boot opens the journal and a (possibly faulty) store and starts a
// manager, exactly as a fresh websliced process would.
func (h *harness) boot(seed uint64, permille, workers int) (*service.Manager, []string) {
	h.t.Helper()
	j, pending, err := service.OpenJournal(h.journalPath)
	if err != nil {
		h.t.Fatalf("journal corrupted across crash: %v", err)
	}
	fsys := NewFaultFS(seed, permille)
	st, err := store.OpenFS(h.storeDir, 1<<20, fsys)
	if err != nil {
		h.t.Fatalf("store did not survive crash: %v", err)
	}
	st.ConfigureBreaker(3, 50*time.Millisecond)
	h.mu.Lock()
	h.st = st
	h.mu.Unlock()
	resumed := make([]string, 0, len(pending))
	for _, e := range pending {
		resumed = append(resumed, e.ID)
	}
	m := service.New(service.Config{
		Workers: workers,
		Journal: j,
		Resume:  pending,
		Store:   st,
		Runner:  h.runner,
		Retry:   service.RetryPolicy{MaxAttempts: 4, BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond},
	})
	return m, resumed
}

// observe polls job statuses like a client would, recording the execution
// count at the moment done is first observed — re-execution after that
// point is the duplicate-result bug the journal ordering prevents.
func (h *harness) observe(m *service.Manager, dur time.Duration) {
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		h.mu.Lock()
		for id, tag := range h.idTag {
			if _, seen := h.doneExecs[tag]; seen {
				continue
			}
			if info, ok := m.Info(id); ok && info.Status == service.StatusDone {
				h.doneExecs[tag] = h.execs[tag].Load()
			}
		}
		h.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
}

// TestChaosKillRestartLosesNothing is the acceptance scenario: five
// incarnations submit jobs and die (kill -9 style) under injected store
// faults; a final clean incarnation must finish every acknowledged job,
// quarantine the panicker, report healthy, and leave an empty journal.
func TestChaosKillRestartLosesNothing(t *testing.T) {
	dir := t.TempDir()
	h := &harness{
		t:           t,
		journalPath: filepath.Join(dir, "jobs.wal"),
		storeDir:    filepath.Join(dir, "store"),
		idTag:       make(map[string]int),
		doneExecs:   make(map[int]int64),
	}

	const seed = 0xC0FFEE
	for inc := 0; inc < chaosIncarnations; inc++ {
		m, _ := h.boot(seed+uint64(inc), 200, 3)
		for i := 0; i < tagsPerIncarn; i++ {
			tag := inc*tagsPerIncarn + i
			id, err := m.Submit(tagSpec(tag))
			if err != nil {
				t.Fatalf("incarnation %d: submit tag %d: %v", inc, tag, err)
			}
			h.mu.Lock()
			h.idTag[id] = tag
			h.mu.Unlock()
		}
		// Let a varying slice of work happen, then pull the plug.
		h.observe(m, time.Duration(5+inc*7)*time.Millisecond)
		m.Kill()
	}

	// Final incarnation: healthy disk, no kill. Everything acknowledged
	// must reach a terminal state.
	m, resumed := h.boot(seed+99, 0, 3)
	waitAllTerminal := func(ids []string) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for _, id := range ids {
			for {
				info, ok := m.Info(id)
				if !ok {
					t.Fatalf("job %s vanished in final incarnation", id)
				}
				if info.Status.Terminal() {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("job %s stuck in %s", id, info.Status)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	waitAllTerminal(resumed)
	h.observe(m, 5*time.Millisecond)

	// Resumed non-poison jobs all end done; the poison job is quarantined,
	// not done, not crash-looping.
	for _, id := range resumed {
		info, _ := m.Info(id)
		h.mu.Lock()
		tag := h.idTag[id]
		h.mu.Unlock()
		switch {
		case tag == poisonTag:
			if info.Status != service.StatusQuarantined {
				t.Fatalf("poison job %s = %s, want quarantined", id, info.Status)
			}
		case info.Status != service.StatusDone:
			t.Fatalf("resumed job %s (tag %d) = %s (%q), want done", id, tag, info.Status, info.Error)
		}
	}

	// The pool survived every panic: fresh work still completes, and a
	// freshly submitted panicker is observably quarantined.
	extra, err := m.Submit(tagSpec(nTags)) // healthy tag
	if err != nil {
		t.Fatal(err)
	}
	poison2, err := m.Submit(tagSpec(nTags + 1)) // always panics
	if err != nil {
		t.Fatal(err)
	}
	waitAllTerminal([]string{extra, poison2})
	if info, _ := m.Info(extra); info.Status != service.StatusDone {
		t.Fatalf("post-chaos job = %s, want done", info.Status)
	}
	if info, _ := m.Info(poison2); info.Status != service.StatusQuarantined {
		t.Fatalf("fresh panicker = %s, want quarantined", info.Status)
	}
	found := false
	for _, q := range m.Quarantined() {
		if q.ID == poison2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("quarantine list %v does not include %s", m.Quarantined(), poison2)
	}

	// The daemon reports healthy over HTTP after all that.
	srv := httptest.NewServer(service.NewHandler(m))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d after chaos, want 200", resp.StatusCode)
	}

	m.Close()

	// Durability ledger: no acknowledged job is lost (every one reached a
	// durable terminal state — the journal is empty), and no job a client
	// observed done was ever re-executed afterwards.
	j, pending, err := service.OpenJournal(h.journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("journal still holds %d acknowledged-but-unfinished jobs: %v", len(pending), pending)
	}
	j.Close()
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.idTag) != nTags {
		t.Fatalf("harness acked %d jobs, want %d", len(h.idTag), nTags)
	}
	for tag, snap := range h.doneExecs {
		if got := h.execs[tag].Load(); got != snap {
			t.Fatalf("tag %d re-executed after a client observed done: %d executions at observation, %d now", tag, snap, got)
		}
	}
	if _, ok := h.doneExecs[poisonTag]; ok {
		t.Fatal("poison job was observed done")
	}
	if n := h.execs[poisonTag].Load(); n < 2 {
		t.Fatalf("poison job executed %d times, want >= 2 (panic retry then quarantine)", n)
	}
	for tag := 0; tag < nTags; tag++ {
		if tag == poisonTag {
			continue
		}
		if h.execs[tag].Load() == 0 {
			t.Fatalf("acknowledged tag %d never executed (lost work)", tag)
		}
	}
}

// TestChaosBreakerDegradesNotFails: with a pathologically faulty store
// disk, jobs still complete — the breaker sheds to compute-without-cache
// instead of failing work.
func TestChaosBreakerDegradesNotFails(t *testing.T) {
	dir := t.TempDir()
	h := &harness{
		t:           t,
		journalPath: filepath.Join(dir, "jobs.wal"),
		storeDir:    filepath.Join(dir, "store"),
		idTag:       make(map[string]int),
		doneExecs:   make(map[int]int64),
	}
	m, _ := h.boot(0xDEAD, 900, 2) // 90% of store I/O fails
	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		tag := i
		if tag == poisonTag {
			tag = nTags // skip the panicker; this test is about the store
		}
		id, err := m.Submit(tagSpec(tag))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		h.mu.Lock()
		h.idTag[id] = tag
		h.mu.Unlock()
	}
	deadline := time.Now().Add(60 * time.Second)
	for _, id := range ids {
		for {
			info, _ := m.Info(id)
			if info.Status == service.StatusDone {
				break
			}
			if info.Status.Terminal() {
				t.Fatalf("job %s = %s (%q) under store faults, want done", id, info.Status, info.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, info.Status)
			}
			time.Sleep(time.Millisecond)
		}
	}
	st := m.Store().Stats()
	if st.DiskErrors == 0 {
		t.Fatal("fault injection never fired; test proves nothing")
	}
	m.Close()
}
