// Package chaostest is the crash/fault harness for the websliced service:
// a seeded fault-injecting filesystem wrapped around the artifact store,
// driven by randomized kill/restart/IO-error/panic schedules in the chaos
// test. Everything is deterministic given the seed — the same schedule of
// injected faults replays on every run.
package chaostest

import (
	"fmt"
	"sync"

	"webslice/internal/store"
)

// FaultFS implements store.FS over the real filesystem, failing a seeded
// pseudo-random fraction of I/O operations with a synthetic error. The
// fault stream is splitmix64 over the seed, so a given (seed, rate) pair
// always fails the same ops in the same order.
type FaultFS struct {
	store.OSFS

	mu       sync.Mutex
	state    uint64
	permille int // probability of failing an op, in 1/1000ths

	injected int // ops failed so far
}

// NewFaultFS returns a fault-injecting FS failing roughly permille/1000 of
// read/write/rename operations.
func NewFaultFS(seed uint64, permille int) *FaultFS {
	return &FaultFS{state: seed, permille: permille}
}

var errInjected = fmt.Errorf("chaostest: injected I/O fault")

// roll advances the splitmix64 stream and decides whether this op fails.
func (f *FaultFS) roll() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.state += 0x9E3779B97F4A7C15
	z := f.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if int(z%1000) < f.permille {
		f.injected++
		return true
	}
	return false
}

// Injected reports how many operations the wrapper has failed so far.
func (f *FaultFS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if f.roll() {
		return nil, fmt.Errorf("read %s: %w", name, errInjected)
	}
	return f.OSFS.ReadFile(name)
}

func (f *FaultFS) CreateTemp(dir, pattern string) (store.File, error) {
	if f.roll() {
		return nil, fmt.Errorf("createtemp in %s: %w", dir, errInjected)
	}
	return f.OSFS.CreateTemp(dir, pattern)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if f.roll() {
		return fmt.Errorf("rename %s: %w", newpath, errInjected)
	}
	return f.OSFS.Rename(oldpath, newpath)
}
