package service

import (
	"bytes"
	"testing"

	"webslice/internal/browser"
	"webslice/internal/sites"
	"webslice/internal/store"
	"webslice/internal/trace"
)

// TestV3TraceSubmissionMatchesV2: the same trace submitted flat (v2) and
// block-compressed (v3) must produce the same content address, the same
// slice digest, and the same category breakdown — and because the keys
// agree, the v3 job is a cache hit on the artifacts the v2 job computed.
// The v3 job runs the streaming profiler: its backward pass reads blocks
// straight out of the submitted bytes.
func TestV3TraceSubmissionMatchesV2(t *testing.T) {
	b, err := sites.ByName("amazon-desktop", sites.Options{Scale: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	br := browser.New(b.Site, b.Profile)
	br.RunSession()
	if len(br.Errors) > 0 {
		t.Fatal(br.Errors[0])
	}
	var v2, v3 bytes.Buffer
	if err := br.M.Tr.Write(&v2); err != nil {
		t.Fatal(err)
	}
	if err := br.M.Tr.WriteV3Blocks(&v3, trace.DefaultBlockRecs); err != nil {
		t.Fatal(err)
	}
	if v3.Len() >= v2.Len() {
		t.Fatalf("v3 encoding (%d bytes) is not smaller than v2 (%d bytes)", v3.Len(), v2.Len())
	}

	st, _ := store.Open(t.TempDir(), 0)
	m := New(Config{Workers: 2, Store: st})
	defer m.Close()

	idV2, err := m.Submit(Spec{Trace: v2.Bytes(), Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, idV2, StatusDone)
	resV2, _ := m.Result(idV2)

	idV3, err := m.Submit(Spec{Trace: v3.Bytes(), Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, idV3, StatusDone)
	resV3, _ := m.Result(idV3)

	if resV3.TraceKey != resV2.TraceKey {
		t.Fatalf("trace keys differ across formats: %q vs %q", resV3.TraceKey, resV2.TraceKey)
	}
	if resV3.SliceDigest != resV2.SliceDigest {
		t.Fatalf("slice digests differ across formats: %q vs %q", resV3.SliceDigest, resV2.SliceDigest)
	}
	if resV3.Total != resV2.Total || resV3.SliceCount != resV2.SliceCount {
		t.Fatalf("tallies differ: %d/%d (v3) vs %d/%d (v2)",
			resV3.SliceCount, resV3.Total, resV2.SliceCount, resV2.Total)
	}
	if !resV3.CacheHit {
		t.Fatal("v3 job missed the cache entries the v2 job stored — content addresses must agree")
	}
	for cat, share := range resV2.Categories {
		if resV3.Categories[cat] != share {
			t.Fatalf("category %q differs: %v (v3) vs %v (v2)", cat, resV3.Categories[cat], share)
		}
	}

	// A corrupted v3 body passes the magic sniff but fails in the worker
	// with a decode error, like any other bad trace.
	corrupt := append([]byte(nil), v3.Bytes()...)
	corrupt[v3.Len()/2] ^= 0x01
	idBad, err := m.Submit(Spec{Trace: corrupt})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, idBad, StatusFailed)
}
