package service

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a manually advanced Clock: Sleep blocks on a waiter that
// Advance releases, so backoff schedules are asserted without real sleeps.
type fakeClock struct {
	mu      sync.Mutex
	now     time.Time
	sleeps  []time.Duration
	waiters []fakeWaiter
}

type fakeWaiter struct {
	deadline time.Time
	ch       chan struct{}
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1700000000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(d time.Duration, stop <-chan struct{}) {
	c.mu.Lock()
	c.sleeps = append(c.sleeps, d)
	if d <= 0 {
		c.mu.Unlock()
		return
	}
	w := fakeWaiter{deadline: c.now.Add(d), ch: make(chan struct{})}
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()
	select {
	case <-w.ch:
	case <-stop:
	}
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	keep := c.waiters[:0]
	for _, w := range c.waiters {
		if w.deadline.After(c.now) {
			keep = append(keep, w)
		} else {
			close(w.ch)
		}
	}
	c.waiters = keep
}

func (c *fakeClock) sleepers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

func (c *fakeClock) Sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestRetryBackoffScheduleFakeClock pins the retry schedule — capped
// exponential backoff, exact delays — without a single real sleep.
func TestRetryBackoffScheduleFakeClock(t *testing.T) {
	clk := newFakeClock()
	var attempts atomic.Int64
	m := New(Config{
		Workers: 1,
		Clock:   clk,
		Retry:   RetryPolicy{MaxAttempts: 4, BackoffBase: 100 * time.Millisecond, BackoffMax: 250 * time.Millisecond},
		Runner: func(ctx context.Context, spec Spec) (*Result, error) {
			if attempts.Add(1) < 4 {
				return nil, errors.New("transient backend wobble")
			}
			return &Result{}, nil
		},
	})
	id, err := m.Submit(Spec{Site: "maps"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		waitFor(t, "worker to enter backoff sleep", func() bool { return clk.sleepers() == 1 })
		clk.Advance(250 * time.Millisecond)
	}
	waitStatus(t, m, id, StatusDone)
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 250 * time.Millisecond}
	got := clk.Sleeps()
	if len(got) != len(want) {
		t.Fatalf("backoff sleeps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("backoff sleep %d = %v, want %v (schedule %v)", i, got[i], want[i], got)
		}
	}
	if n := m.Metrics().Counter("jobs_retried").Value(); n != 3 {
		t.Fatalf("jobs_retried = %d, want 3", n)
	}
	if info, _ := m.Info(id); info.Attempts != 4 {
		t.Fatalf("attempts = %d, want 4", info.Attempts)
	}
	m.Close()
}

// TestRetriesExhaustedFailsJob: a persistently failing job burns its
// attempts and lands on failed, not in an infinite retry loop.
func TestRetriesExhaustedFailsJob(t *testing.T) {
	clk := newFakeClock()
	var attempts atomic.Int64
	m := New(Config{
		Workers: 1,
		Clock:   clk,
		Retry:   RetryPolicy{MaxAttempts: 3, BackoffBase: time.Second, BackoffMax: time.Second},
		Runner: func(ctx context.Context, spec Spec) (*Result, error) {
			attempts.Add(1)
			return nil, errors.New("hard failure")
		},
	})
	id, err := m.Submit(Spec{Site: "maps"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		waitFor(t, "backoff sleep", func() bool { return clk.sleepers() == 1 })
		clk.Advance(time.Second)
	}
	waitFor(t, "job terminal", func() bool { info, _ := m.Info(id); return info.Status.Terminal() })
	if info, _ := m.Info(id); info.Status != StatusFailed || !strings.Contains(info.Error, "hard failure") {
		t.Fatalf("job = %s (%q), want failed", info.Status, info.Error)
	}
	if attempts.Load() != 3 {
		t.Fatalf("runner ran %d times, want 3", attempts.Load())
	}
	m.Close()
}

// TestPanicIsolationAndQuarantine: a panicking runner neither kills the
// daemon nor crash-loops — the second panic quarantines the job, and the
// pool keeps serving healthy work afterwards.
func TestPanicIsolationAndQuarantine(t *testing.T) {
	var calls atomic.Int64
	m := New(Config{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 10, BackoffBase: time.Nanosecond, BackoffMax: time.Nanosecond},
		Runner: func(ctx context.Context, spec Spec) (*Result, error) {
			calls.Add(1)
			if spec.Site == "bing" {
				panic("poisoned job")
			}
			return &Result{}, nil
		},
	})
	bad, err := m.Submit(Spec{Site: "bing"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "quarantine", func() bool { info, _ := m.Info(bad); return info.Status.Terminal() })
	info, _ := m.Info(bad)
	if info.Status != StatusQuarantined {
		t.Fatalf("panicking job = %s (%q), want quarantined", info.Status, info.Error)
	}
	if !strings.Contains(info.Error, "panicked") || !strings.Contains(info.Error, "poisoned job") {
		t.Fatalf("quarantine error %q does not name the panic", info.Error)
	}
	q := m.Quarantined()
	if len(q) != 1 || q[0].ID != bad {
		t.Fatalf("Quarantined() = %+v, want [%s]", q, bad)
	}
	if n := m.Metrics().Counter("jobs_panicked").Value(); n != 2 {
		t.Fatalf("jobs_panicked = %d, want 2 (one retry, then quarantine)", n)
	}
	if n := m.Metrics().Counter("jobs_quarantined").Value(); n != 1 {
		t.Fatalf("jobs_quarantined = %d, want 1", n)
	}
	// The worker survived both panics: a healthy job still completes.
	good, err := m.Submit(Spec{Site: "maps"})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, good, StatusDone)
	m.Close()
	if len(m.Quarantined()) != 1 {
		t.Fatal("quarantine list changed across drain")
	}
}

// TestJobTimeoutFailsWithoutRetry: the per-job deadline converts a hung
// runner into a failed job (not a retried one — rerunning a job that
// burned its whole budget would double the damage).
func TestJobTimeoutFailsWithoutRetry(t *testing.T) {
	var calls atomic.Int64
	m := New(Config{
		Workers:    1,
		JobTimeout: 20 * time.Millisecond,
		Runner: func(ctx context.Context, spec Spec) (*Result, error) {
			calls.Add(1)
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	id, err := m.Submit(Spec{Site: "maps"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "timeout", func() bool { info, _ := m.Info(id); return info.Status.Terminal() })
	info, _ := m.Info(id)
	if info.Status != StatusFailed || !strings.Contains(info.Error, "deadline") {
		t.Fatalf("timed-out job = %s (%q), want failed with deadline error", info.Status, info.Error)
	}
	if calls.Load() != 1 {
		t.Fatalf("timed-out job ran %d times, want 1 (no retry)", calls.Load())
	}
	m.Close()
}

// TestTraceAdmissionLimit: oversized traces are rejected at submission
// with the typed error, before consuming a queue slot.
func TestTraceAdmissionLimit(t *testing.T) {
	m := New(Config{
		Workers:       1,
		MaxTraceBytes: 8,
		Runner:        func(context.Context, Spec) (*Result, error) { return &Result{}, nil },
	})
	defer m.Close()
	_, err := m.Submit(Spec{Trace: []byte("WSLT plus way more bytes than eight")})
	if !errors.Is(err, ErrTraceTooLarge) {
		t.Fatalf("oversized submit = %v, want ErrTraceTooLarge", err)
	}
	if n := m.Metrics().Counter("jobs_submitted").Value(); n != 0 {
		t.Fatalf("jobs_submitted = %d after rejected submit", n)
	}
}

// TestJournalCrashRecovery is the durability contract end to end: kill -9
// (simulated) after acknowledging jobs, reopen, and every acknowledged job
// runs to completion under its original ID.
func TestJournalCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	j, pending, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh journal has %d pending", len(pending))
	}
	started := make(chan struct{}, 8)
	m := New(Config{
		Workers: 1,
		Journal: j,
		Runner: func(ctx context.Context, spec Spec) (*Result, error) {
			started <- struct{}{}
			<-ctx.Done() // hold the job until the crash
			return nil, ErrCanceled
		},
	})
	ids := make([]string, 3)
	for i := range ids {
		id, err := m.Submit(Spec{Site: "maps", Scale: 0.1 * float64(i+1)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	<-started // first job is mid-run when the "power" goes
	m.Kill()

	j2, pending2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending2) != 3 {
		t.Fatalf("replay found %d pending jobs, want 3 (acknowledged work lost)", len(pending2))
	}
	var ran atomic.Int64
	m2 := New(Config{
		Workers: 2,
		Journal: j2,
		Resume:  pending2,
		Runner: func(ctx context.Context, spec Spec) (*Result, error) {
			ran.Add(1)
			return &Result{}, nil
		},
	})
	for _, id := range ids {
		waitStatus(t, m2, id, StatusDone)
	}
	// New work after recovery must not collide with replayed IDs.
	id4, err := m2.Submit(Spec{Site: "maps"})
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range ids {
		if id4 == old {
			t.Fatalf("post-recovery submission reused replayed id %s", id4)
		}
	}
	waitStatus(t, m2, id4, StatusDone)
	m2.Close()

	j3, pending3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending3) != 0 {
		t.Fatalf("clean shutdown left %d jobs pending in the journal", len(pending3))
	}
	j3.Close()
}

// TestDrainPersistsQueuedJobs is the graceful-shutdown regression: a drain
// that times out must not abandon queued-but-unstarted jobs — they stay
// pending in the journal and the next boot finishes them.
func TestDrainPersistsQueuedJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, 1)
	m := New(Config{
		Workers: 1,
		Journal: j,
		Runner: func(ctx context.Context, spec Spec) (*Result, error) {
			started <- struct{}{}
			<-ctx.Done() // never finishes on its own
			return nil, ErrCanceled
		},
	})
	idA, err := m.Submit(Spec{Site: "maps"})
	if err != nil {
		t.Fatal(err)
	}
	<-started // A is running (and stuck)
	idB, err := m.Submit(Spec{Site: "bing"})
	if err != nil {
		t.Fatal(err)
	}
	if done := m.Drain(30 * time.Millisecond); done {
		t.Fatal("Drain reported a clean finish with a stuck job")
	}

	j2, pending, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, e := range pending {
		got[e.ID] = true
	}
	if !got[idA] || !got[idB] || len(pending) != 2 {
		t.Fatalf("journal after timed-out drain holds %v, want both %s and %s", pending, idA, idB)
	}
	m2 := New(Config{
		Workers: 1,
		Journal: j2,
		Resume:  pending,
		Runner:  func(context.Context, Spec) (*Result, error) { return &Result{}, nil },
	})
	waitStatus(t, m2, idA, StatusDone)
	waitStatus(t, m2, idB, StatusDone)
	m2.Close()
}

// TestDrainCompletesQueuedJobsInTime: when jobs can finish within the
// deadline, Drain finishes them all and reports a clean shutdown.
func TestDrainCompletesQueuedJobsInTime(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	m := New(Config{
		Workers: 2,
		Journal: j,
		Runner: func(ctx context.Context, spec Spec) (*Result, error) {
			ran.Add(1)
			return &Result{}, nil
		},
	})
	for i := 0; i < 6; i++ {
		if _, err := m.Submit(Spec{Site: "maps"}); err != nil {
			t.Fatal(err)
		}
	}
	if done := m.Drain(30 * time.Second); !done {
		t.Fatal("Drain timed out with fast jobs")
	}
	if ran.Load() != 6 {
		t.Fatalf("drain ran %d of 6 jobs", ran.Load())
	}
	j2, pending, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("clean drain left %d pending", len(pending))
	}
	j2.Close()
}
