// The write-ahead job journal: websliced's crash-durability layer. Every
// submitted job is appended to the journal and fsync'd *before* the
// submission is acknowledged, and every terminal state (done, failed,
// canceled, quarantined) is appended and fsync'd *before* it is published
// to clients. On restart the journal is replayed: jobs with a submit
// record but no terminal record — acknowledged work the previous process
// died holding — are re-enqueued, and everything else is compacted away.
// kill -9 at any instant therefore loses no acknowledged job, and a job a
// client ever observed as terminal is never re-executed.
//
// # File format (WSJL version 1)
//
//	header:  "WSJL" | version byte (1)
//	record:  uint32 payload length (LE) | payload | uint32 CRC32-IEEE of payload (LE)
//	payload: one tag byte, then JSON
//	  'S' submit   {"id": "j000001", "spec": {site/scale/criteria/verify, "trace": base64}}
//	  'T' terminal {"id": "j000001", "status": "done"}
//	  'M' meta     {"max_id": 41}   (written by compaction so job IDs stay unique)
//
// Records are framed independently so a torn tail — the bytes a crash cut
// mid-append — is detected by the length/CRC check and discarded, while
// every record before it is salvaged. Replay never trusts a frame the CRC
// does not vouch for: corruption anywhere truncates the journal at the
// last intact record instead of fabricating or garbling jobs.
package service

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

var journalMagic = [5]byte{'W', 'S', 'J', 'L', 1}

const (
	recSubmit   = 'S'
	recTerminal = 'T'
	recMeta     = 'M'

	// journalFrameOverhead is the length prefix plus the CRC suffix.
	journalFrameOverhead = 8

	// maxJournalPayload rejects absurd frame lengths during replay before
	// any allocation: no legitimate payload exceeds a trace body plus slack.
	maxJournalPayload = maxTraceBody + (1 << 20)

	// compactEvery bounds journal growth: after this many terminal records
	// the file is rewritten to hold only still-pending submissions.
	compactEvery = 1024
)

// ErrJournalCorrupt reports a journal whose header is not a WSJL file at
// all. (Mid-file corruption is not an error: replay salvages the intact
// prefix and compaction discards the rest.)
var ErrJournalCorrupt = errors.New("service: corrupt journal")

// JournalEntry is one replayed, still-pending job.
type JournalEntry struct {
	ID   string
	Spec Spec
}

// journalSpec is Spec's durable wire form; Spec.Trace is json:"-" so the
// journal carries it explicitly (encoding/json renders []byte as base64).
type journalSpec struct {
	Site     string  `json:"site,omitempty"`
	Seed     uint64  `json:"seed,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	Criteria string  `json:"criteria,omitempty"`
	Verify   bool    `json:"verify,omitempty"`
	Trace    []byte  `json:"trace,omitempty"`
	Origin   string  `json:"origin,omitempty"`
}

type submitRecord struct {
	ID   string      `json:"id"`
	Spec journalSpec `json:"spec"`
}

type terminalRecord struct {
	ID     string `json:"id"`
	Status Status `json:"status"`
}

type metaRecord struct {
	MaxID int `json:"max_id"`
}

// Journal is the append-only WAL. All methods are safe for concurrent use.
type Journal struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	disabled bool // Kill() flips this: simulated power loss, no more writes

	pending   map[string][]byte // id -> raw submit payload (for compaction)
	order     []string          // submission order of pending ids
	maxID     int               // highest numeric job id ever journaled
	terminals int               // terminal records since last compaction
	salvaged  int               // records dropped by the last replay (corrupt tail)
}

// OpenJournal replays the journal at path (creating it if absent), returns
// the still-pending jobs in submission order, compacts the file down to
// exactly those jobs, and leaves it open for appending. A file that is not
// a WSJL journal at all fails with ErrJournalCorrupt rather than being
// overwritten; a journal with a corrupt or torn tail is salvaged up to the
// last intact record.
func OpenJournal(path string) (*Journal, []JournalEntry, error) {
	j := &Journal{path: path, pending: make(map[string][]byte)}
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("service: reading journal: %w", err)
	}
	if len(data) > 0 {
		if err := j.replay(data); err != nil {
			return nil, nil, err
		}
	}
	entries := make([]JournalEntry, 0, len(j.order))
	for _, id := range j.order {
		var rec submitRecord
		if err := json.Unmarshal(j.pending[id][1:], &rec); err != nil {
			// Impossible for frames replay accepted; fail loudly if not.
			return nil, nil, fmt.Errorf("service: journal entry %s: %w", id, err)
		}
		entries = append(entries, JournalEntry{ID: id, Spec: Spec{
			Site:     rec.Spec.Site,
			Seed:     rec.Spec.Seed,
			Scale:    rec.Spec.Scale,
			Criteria: rec.Spec.Criteria,
			Verify:   rec.Spec.Verify,
			Trace:    rec.Spec.Trace,
			Origin:   rec.Spec.Origin,
		}})
	}
	// Compact on open: the rewritten file holds only the pending records
	// (plus the max-id meta record), so completed history never accumulates
	// across restarts.
	if err := j.compactLocked(); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: opening journal: %w", err)
	}
	j.f = f
	return j, entries, nil
}

// replay parses data, populating pending/order/maxID. Any framing, CRC, or
// payload violation truncates the replay at the last intact record — the
// corrupt or torn remainder is counted in salvaged and never trusted.
func (j *Journal) replay(data []byte) error {
	if len(data) < len(journalMagic) || [5]byte(data[:5]) != journalMagic {
		return fmt.Errorf("%w: bad header", ErrJournalCorrupt)
	}
	pos := len(journalMagic)
	for pos < len(data) {
		payload, next, ok := readFrame(data, pos)
		if !ok || !j.apply(payload) {
			j.salvaged = len(data) - pos
			return nil
		}
		pos = next
	}
	return nil
}

// apply replays one record payload; false means the payload is garbage
// (which, given the CRC passed, indicates corruption the frame layer
// cannot see — replay stops there).
func (j *Journal) apply(payload []byte) bool {
	if len(payload) == 0 {
		return false
	}
	switch payload[0] {
	case recSubmit:
		var rec submitRecord
		if err := json.Unmarshal(payload[1:], &rec); err != nil || rec.ID == "" {
			return false
		}
		if _, dup := j.pending[rec.ID]; !dup {
			j.pending[rec.ID] = payload
			j.order = append(j.order, rec.ID)
		}
		j.noteID(rec.ID)
	case recTerminal:
		var rec terminalRecord
		if err := json.Unmarshal(payload[1:], &rec); err != nil || rec.ID == "" {
			return false
		}
		j.dropPending(rec.ID)
	case recMeta:
		var rec metaRecord
		if err := json.Unmarshal(payload[1:], &rec); err != nil {
			return false
		}
		if rec.MaxID > j.maxID {
			j.maxID = rec.MaxID
		}
	default:
		return false
	}
	return true
}

// readFrame decodes one length/payload/CRC frame at pos. ok is false when
// the frame is truncated, oversized, or fails its checksum.
func readFrame(data []byte, pos int) (payload []byte, next int, ok bool) {
	if pos+journalFrameOverhead > len(data) {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[pos:]))
	if n < 0 || n > maxJournalPayload || pos+4+n+4 > len(data) {
		return nil, 0, false
	}
	payload = data[pos+4 : pos+4+n]
	want := binary.LittleEndian.Uint32(data[pos+4+n:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, 0, false
	}
	return payload, pos + 4 + n + 4, true
}

func frame(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+journalFrameOverhead)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
}

// noteID tracks the largest numeric job id ever seen so a restarted
// manager never reissues an id a client may still be polling.
func (j *Journal) noteID(id string) {
	var n int
	if _, err := fmt.Sscanf(id, "j%d", &n); err == nil && n > j.maxID {
		j.maxID = n
	}
}

func (j *Journal) dropPending(id string) {
	if _, ok := j.pending[id]; !ok {
		return
	}
	delete(j.pending, id)
	for i, pid := range j.order {
		if pid == id {
			j.order = append(j.order[:i], j.order[i+1:]...)
			break
		}
	}
}

// LogSubmit appends a submit record and fsyncs. It must succeed before the
// submission is acknowledged — that ordering is the durability contract.
func (j *Journal) LogSubmit(id string, spec Spec) error {
	payload, err := json.Marshal(submitRecord{ID: id, Spec: journalSpec{
		Site:     spec.Site,
		Seed:     spec.Seed,
		Scale:    spec.Scale,
		Criteria: spec.Criteria,
		Verify:   spec.Verify,
		Trace:    spec.Trace,
		Origin:   spec.Origin,
	}})
	if err != nil {
		return fmt.Errorf("service: journaling submit: %w", err)
	}
	payload = append([]byte{recSubmit}, payload...)
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendLocked(payload); err != nil {
		return err
	}
	if _, dup := j.pending[id]; !dup {
		j.pending[id] = payload
		j.order = append(j.order, id)
	}
	j.noteID(id)
	return nil
}

// LogTerminal appends a terminal record and fsyncs. The manager calls it
// *before* publishing the terminal status, so any status a client observes
// is durable: replay will not resurrect the job.
func (j *Journal) LogTerminal(id string, status Status) error {
	payload, err := json.Marshal(terminalRecord{ID: id, Status: status})
	if err != nil {
		return fmt.Errorf("service: journaling terminal: %w", err)
	}
	payload = append([]byte{recTerminal}, payload...)
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendLocked(payload); err != nil {
		return err
	}
	j.dropPending(id)
	j.terminals++
	if j.terminals >= compactEvery {
		return j.compactLocked()
	}
	return nil
}

func (j *Journal) appendLocked(payload []byte) error {
	if j.disabled || j.f == nil {
		return nil
	}
	if _, err := j.f.Write(frame(payload)); err != nil {
		return fmt.Errorf("service: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("service: journal fsync: %w", err)
	}
	return nil
}

// compactLocked rewrites the journal to the meta record plus the pending
// submits, atomically (temp file + rename + fsync).
func (j *Journal) compactLocked() error {
	tmp, err := os.CreateTemp(filepath.Dir(j.path), ".journal-*")
	if err != nil {
		return fmt.Errorf("service: journal compact: %w", err)
	}
	out := append([]byte(nil), journalMagic[:]...)
	meta, _ := json.Marshal(metaRecord{MaxID: j.maxID})
	out = append(out, frame(append([]byte{recMeta}, meta...))...)
	for _, id := range j.order {
		out = append(out, frame(j.pending[id])...)
	}
	_, werr := tmp.Write(out)
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), j.path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: journal compact: %w", werr)
	}
	j.terminals = 0
	// Re-point the append handle at the fresh file if one was open.
	if j.f != nil {
		j.f.Close()
		f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("service: reopening compacted journal: %w", err)
		}
		j.f = f
	}
	return nil
}

// Pending reports how many journaled jobs have no terminal record.
func (j *Journal) Pending() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.order)
}

// MaxID returns the highest numeric job id the journal has ever recorded.
func (j *Journal) MaxID() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.maxID
}

// Salvaged reports how many bytes the last replay discarded as a corrupt
// or torn tail (0 for a clean journal).
func (j *Journal) Salvaged() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.salvaged
}

// disable stops all further writes without flushing anything — the crash
// harness's simulated power loss. The file handle is left dangling exactly
// as a killed process would leave it.
func (j *Journal) disable() {
	j.mu.Lock()
	j.disabled = true
	j.mu.Unlock()
}

// Close compacts and closes the journal. A disabled (killed) journal is
// left untouched, like the real file of a dead process.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.disabled || j.f == nil {
		return nil
	}
	if err := j.compactLocked(); err != nil {
		j.f.Close()
		j.f = nil
		return err
	}
	err := j.f.Close()
	j.f = nil
	return err
}
