package service

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func journalPath(t testing.TB) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "jobs.wal")
}

func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, entries, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh journal has %d pending entries", len(entries))
	}
	specs := map[string]Spec{
		"j1": {Site: "maps", Scale: 0.5, Criteria: "pixels", Trace: []byte("raw-trace-bytes")},
		"j2": {Site: "news", Scale: 1.0, Criteria: "syscalls", Verify: true},
		"j3": {Site: "shop", Scale: 0.25, Criteria: "pixels"},
	}
	for _, id := range []string{"j1", "j2", "j3"} {
		if err := j.LogSubmit(id, specs[id]); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.LogTerminal("j2", StatusDone); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: j1 and j3 are pending in submission order, j2 is gone, and the
	// max id survives.
	j2, entries, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].ID != "j1" || entries[1].ID != "j3" {
		t.Fatalf("pending after reopen = %+v, want j1, j3", entries)
	}
	for _, e := range entries {
		want := specs[e.ID]
		if e.Spec.Site != want.Site || e.Spec.Scale != want.Scale ||
			e.Spec.Criteria != want.Criteria || e.Spec.Verify != want.Verify ||
			!bytes.Equal(e.Spec.Trace, want.Trace) {
			t.Fatalf("spec for %s = %+v, want %+v", e.ID, e.Spec, want)
		}
	}
	if j2.MaxID() != 3 {
		t.Fatalf("MaxID = %d, want 3", j2.MaxID())
	}
	if j2.Salvaged() != 0 {
		t.Fatalf("clean journal salvaged %d bytes", j2.Salvaged())
	}

	// Finish the rest; the next open sees an empty journal but still
	// remembers the id high-water mark via the meta record.
	for _, id := range []string{"j1", "j3"} {
		if err := j2.LogTerminal(id, StatusFailed); err != nil {
			t.Fatal(err)
		}
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, entries, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 || j3.Pending() != 0 {
		t.Fatalf("drained journal still has %d pending", len(entries))
	}
	if j3.MaxID() != 3 {
		t.Fatalf("MaxID after drain = %d, want 3 (meta record lost)", j3.MaxID())
	}
	j3.Close()
}

func TestJournalDuplicateSubmitIgnored(t *testing.T) {
	path := journalPath(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.LogSubmit("j7", Spec{Site: "maps"}); err != nil {
		t.Fatal(err)
	}
	if err := j.LogSubmit("j7", Spec{Site: "other"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, entries, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Spec.Site != "maps" {
		t.Fatalf("duplicate submit not deduplicated: %+v", entries)
	}
}

// TestJournalTornTailSalvage simulates a crash mid-append: a partial frame at
// the tail must be discarded while every record before it replays intact.
func TestJournalTornTailSalvage(t *testing.T) {
	path := journalPath(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.LogSubmit("j1", Spec{Site: "maps"})
	j.LogSubmit("j2", Spec{Site: "news"})
	j.Close()

	// Append half a frame: a length prefix promising more bytes than exist.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xF0, 0x00, 0x00, 0x00, 'S', '{', '"'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, entries, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail must salvage, got %v", err)
	}
	if len(entries) != 2 || entries[0].ID != "j1" || entries[1].ID != "j2" {
		t.Fatalf("salvaged entries = %+v, want j1, j2", entries)
	}
	if j2.Salvaged() == 0 {
		t.Fatal("Salvaged() = 0, want the torn bytes counted")
	}
	j2.Close()

	// The salvage compacted the tear away: the next open is clean.
	j3, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j3.Salvaged() != 0 {
		t.Fatalf("tear survived compaction: salvaged %d bytes", j3.Salvaged())
	}
	j3.Close()
}

func TestJournalBadHeaderRejected(t *testing.T) {
	path := journalPath(t)
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("foreign file opened as a journal (would have been overwritten)")
	}
}

// buildCorruptionSeed produces a small, fully valid journal byte string with
// known pending ids for the truncation and bit-flip sweeps below.
func buildCorruptionSeed(t testing.TB) ([]byte, map[string]bool) {
	t.Helper()
	path := journalPath(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.LogSubmit("j1", Spec{Site: "maps", Scale: 0.5, Criteria: "pixels", Trace: []byte("tr1")})
	j.LogSubmit("j2", Spec{Site: "news", Criteria: "syscalls"})
	j.LogTerminal("j1", StatusDone)
	j.LogSubmit("j3", Spec{Site: "shop", Criteria: "pixels"})
	// Close without compacting so the byte string retains the full history
	// (mixed submit + terminal records), which is the interesting shape.
	j.mu.Lock()
	j.f.Close()
	j.f = nil
	j.disabled = true
	j.mu.Unlock()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, map[string]bool{"j2": true, "j3": true}
}

// replayCorrupted opens a journal file holding data and returns the pending
// ids, tolerating (only) ErrJournalCorrupt. Panics propagate to the test.
func replayCorrupted(t *testing.T, dir string, data []byte) map[string]bool {
	t.Helper()
	path := filepath.Join(dir, "wal")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j, entries, err := OpenJournal(path)
	if err != nil {
		return nil
	}
	defer j.Close()
	got := make(map[string]bool, len(entries))
	for _, e := range entries {
		got[e.ID] = true
	}
	return got
}

// TestJournalTruncationNeverPanics replays every possible truncated prefix of
// a valid journal: none may panic, and each salvages only (a prefix-closed
// subset of) the jobs the full journal held pending.
func TestJournalTruncationNeverPanics(t *testing.T) {
	data, want := buildCorruptionSeed(t)
	dir := t.TempDir()
	for n := 0; n <= len(data); n++ {
		got := replayCorrupted(t, dir, data[:n])
		for id := range got {
			if !want[id] && id != "j1" {
				t.Fatalf("truncation at %d fabricated job %q", n, id)
			}
		}
	}
}

// TestJournalBitFlipsNeverPanic flips every bit of a valid journal one at a
// time: replay must never panic and never yield a job id the pristine
// journal did not contain.
func TestJournalBitFlipsNeverPanic(t *testing.T) {
	data, want := buildCorruptionSeed(t)
	dir := t.TempDir()
	stride := 1
	if testing.Short() {
		stride = 7
	}
	for off := 0; off < len(data); off++ {
		for bit := 0; bit < 8; bit += stride {
			mut := append([]byte(nil), data...)
			mut[off] ^= 1 << bit
			got := replayCorrupted(t, dir, mut)
			for id := range got {
				if !want[id] && id != "j1" {
					t.Fatalf("bit flip at %d.%d fabricated job %q", off, bit, id)
				}
			}
		}
	}
}

// FuzzJournalReplayNeverPanics feeds arbitrary bytes through the full
// open/replay/compact path. The only acceptable outcomes are a clean open or
// an error — never a panic, and never a fabricated giant allocation.
func FuzzJournalReplayNeverPanics(f *testing.F) {
	seed, _ := buildCorruptionSeed(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	f.Add([]byte("WSJL"))
	f.Add(append(append([]byte(nil), journalMagic[:]...), 0xFF, 0xFF, 0xFF, 0xFF))
	mut := append([]byte(nil), seed...)
	mut[len(mut)/3] ^= 0x40
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		j, _, err := OpenJournal(path)
		if err == nil {
			j.Close()
		}
	})
}
