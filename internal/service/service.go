// Package service turns the one-shot profiler into a slicing service: a
// bounded job queue feeds a pool of workers that render (or decode)
// traces, slice them through the content-addressed artifact store, and
// publish per-job status. Backpressure is explicit — a full queue rejects
// with ErrQueueFull instead of blocking the caller — and shutdown drains
// every accepted job before Close returns.
package service

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"webslice/internal/analysis"
	"webslice/internal/browser"
	"webslice/internal/core"
	"webslice/internal/metrics"
	"webslice/internal/replay"
	"webslice/internal/sites"
	"webslice/internal/slicer"
	"webslice/internal/store"
	"webslice/internal/trace"
)

// Spec describes one slicing job: either a named benchmark site to render
// or an already-encoded trace.
type Spec struct {
	// Site is a benchmark name (sites.ByName). Ignored when Trace is set.
	Site string `json:"site,omitempty"`
	// Scale is the workload scale for rendered sites; 0 means 1.0.
	Scale float64 `json:"scale,omitempty"`
	// Criteria selects the slicing criterion: "pixels" (default) or
	// "syscalls".
	Criteria string `json:"criteria,omitempty"`
	// Verify runs the structural slice oracles (replay.CheckInvariants) on
	// this job's result, failing the job on a violation. Fresh computations
	// are checked before caching; cache hits are re-checked.
	Verify bool `json:"verify,omitempty"`
	// Trace is a binary WSLT trace to slice instead of rendering a site.
	Trace []byte `json:"-"`
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// ThreadStat is the per-thread slice breakdown of a finished job.
type ThreadStat struct {
	ID     uint8  `json:"id"`
	Name   string `json:"name"`
	Total  int    `json:"total"`
	Sliced int    `json:"sliced"`
}

// Result is what a finished job reports.
type Result struct {
	TraceKey   string             `json:"trace_key,omitempty"`
	Criteria   string             `json:"criteria"`
	Total      int                `json:"total_instructions"`
	SliceCount int                `json:"slice_instructions"`
	SlicePct   float64            `json:"slice_pct"`
	CacheHit   bool               `json:"cache_hit"`
	Verified   bool               `json:"verified,omitempty"`
	Threads    []ThreadStat       `json:"threads,omitempty"`
	Categories map[string]float64 `json:"categories,omitempty"`
}

// Info is a point-in-time snapshot of a job.
type Info struct {
	ID       string  `json:"id"`
	Status   Status  `json:"status"`
	Site     string  `json:"site,omitempty"`
	Criteria string  `json:"criteria"`
	Error    string  `json:"error,omitempty"`
	CacheHit bool    `json:"cache_hit"`
	QueueMs  float64 `json:"queue_ms"`
	RunMs    float64 `json:"run_ms"`
}

// Typed submission/lifecycle errors.
var (
	// ErrQueueFull is the backpressure signal: the bounded queue is at
	// capacity and the caller should retry later (HTTP maps it to 429).
	ErrQueueFull = errors.New("service: queue full")
	// ErrClosed rejects submissions after shutdown began.
	ErrClosed = errors.New("service: shutting down")
	// ErrCanceled is the terminal error of a canceled job.
	ErrCanceled = errors.New("service: job canceled")
)

// Runner executes one job. canceled can be polled between phases to honor
// cancellation. The default runner renders/decodes and slices; tests and
// alternative backends may substitute their own.
type Runner func(spec Spec, canceled func() bool) (*Result, error)

// Config sizes the manager.
type Config struct {
	// Workers is the parallel worker count (default 4).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (default 64). A full queue rejects with ErrQueueFull.
	QueueDepth int
	// Store, when set, caches forward-pass artifacts and slice results so
	// repeat jobs over identical traces skip both passes.
	Store *store.Store
	// Verify applies Spec.Verify to every job regardless of what the
	// submission asked for (websliced -verify).
	Verify bool
	// Metrics receives the service counters; nil creates a private
	// registry (reachable via Manager.Metrics).
	Metrics *metrics.Registry
	// Runner overrides the job execution pipeline (tests, other backends).
	Runner Runner
}

type job struct {
	id   string
	spec Spec

	mu       sync.Mutex
	status   Status
	err      string
	result   *Result
	enqueued time.Time
	started  time.Time
	finished time.Time

	cancel bool
}

func (j *job) canceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancel
}

// Manager owns the queue, the worker pool, and the job table.
type Manager struct {
	cfg   Config
	reg   *metrics.Registry
	queue chan *job
	wg    sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	nextID int
	closed bool

	mSubmitted, mDone, mFailed, mRejected, mCanceled *metrics.Counter
	gRunning, gPeak, gQueueDepth                     *metrics.Gauge
	hQueueWait, hRun                                 *metrics.Histogram
}

// New starts a manager and its workers.
func New(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	m := &Manager{
		cfg:         cfg,
		reg:         reg,
		queue:       make(chan *job, cfg.QueueDepth),
		jobs:        make(map[string]*job),
		mSubmitted:  reg.Counter("jobs_submitted"),
		mDone:       reg.Counter("jobs_done"),
		mFailed:     reg.Counter("jobs_failed"),
		mRejected:   reg.Counter("jobs_rejected"),
		mCanceled:   reg.Counter("jobs_canceled"),
		gRunning:    reg.Gauge("jobs_running"),
		gPeak:       reg.Gauge("jobs_running_peak"),
		gQueueDepth: reg.Gauge("queue_depth"),
		hQueueWait:  reg.Histogram("queue_wait_ms", metrics.LatencyBuckets),
		hRun:        reg.Histogram("slice_ms", metrics.LatencyBuckets),
	}
	if cfg.Runner == nil {
		m.cfg.Runner = m.run
	}
	if cfg.Store != nil {
		reg.Func("store_hits", func() int64 { return cfg.Store.Stats().Hits })
		reg.Func("store_misses", func() int64 { return cfg.Store.Stats().Misses })
		reg.Func("store_mem_hits", func() int64 { return cfg.Store.Stats().MemHits })
		reg.Func("store_disk_hits", func() int64 { return cfg.Store.Stats().DiskHits })
		reg.Func("store_puts", func() int64 { return cfg.Store.Stats().Puts })
		reg.Func("store_evicted", func() int64 { return cfg.Store.Stats().Evicted })
		reg.Func("store_corrupt", func() int64 { return cfg.Store.Stats().Corrupt })
		reg.Func("store_mem_bytes", cfg.Store.MemBytes)
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Metrics returns the registry the manager publishes into.
func (m *Manager) Metrics() *metrics.Registry { return m.reg }

// Store returns the attached artifact store (may be nil).
func (m *Manager) Store() *store.Store { return m.cfg.Store }

// Workers returns the worker-pool size.
func (m *Manager) Workers() int { return m.cfg.Workers }

// Submit validates and enqueues a job, returning its ID. A full queue
// fails fast with ErrQueueFull; after Close it fails with ErrClosed.
func (m *Manager) Submit(spec Spec) (string, error) {
	if err := validate(&spec); err != nil {
		return "", err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return "", ErrClosed
	}
	m.nextID++
	j := &job{
		id:       fmt.Sprintf("j%06d", m.nextID),
		spec:     spec,
		status:   StatusQueued,
		enqueued: time.Now(),
	}
	select {
	case m.queue <- j:
	default:
		m.nextID-- // rejected jobs don't consume IDs
		m.mRejected.Inc()
		return "", ErrQueueFull
	}
	m.jobs[j.id] = j
	m.mSubmitted.Inc()
	m.gQueueDepth.Set(int64(len(m.queue)))
	return j.id, nil
}

func validate(spec *Spec) error {
	switch spec.Criteria {
	case "":
		spec.Criteria = "pixels"
	case "pixels", "syscalls":
	default:
		return fmt.Errorf("service: unknown criteria %q (want pixels or syscalls)", spec.Criteria)
	}
	if len(spec.Trace) > 0 {
		// Reject obvious garbage at submission time: a body that doesn't even
		// start with the trace magic would only fail later inside a worker,
		// burning a queue slot and reporting the error asynchronously.
		if !trace.HasMagic(spec.Trace) {
			return fmt.Errorf("service: submitted body is not a WSLT trace")
		}
		return nil
	}
	switch {
	case spec.Scale == 0:
		spec.Scale = 1.0
	case !(spec.Scale > 0) || math.IsInf(spec.Scale, 1):
		// Catches negatives, NaN (fails every comparison), and +Inf.
		return fmt.Errorf("service: invalid scale %v (must be a finite number > 0)", spec.Scale)
	}
	_, err := sites.ByName(spec.Site, sites.Options{})
	return err
}

// Info returns a snapshot of the job.
func (m *Manager) Info(id string) (Info, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Info{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	info := Info{
		ID:       j.id,
		Status:   j.status,
		Site:     j.spec.Site,
		Criteria: j.spec.Criteria,
		Error:    j.err,
	}
	if j.result != nil {
		info.CacheHit = j.result.CacheHit
	}
	if !j.started.IsZero() {
		info.QueueMs = float64(j.started.Sub(j.enqueued)) / float64(time.Millisecond)
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		info.RunMs = float64(end.Sub(j.started)) / float64(time.Millisecond)
	}
	return info, true
}

// Result returns a finished job's result (ok is false if the job is
// unknown or not done).
func (m *Manager) Result(id string) (*Result, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusDone {
		return nil, false
	}
	return j.result, true
}

// Cancel marks a job canceled. A queued job never runs; a running job is
// stopped at its next phase boundary. Returns false for unknown or
// already-terminal jobs.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return false
	}
	j.cancel = true
	return true
}

// Jobs lists snapshots of every known job (unspecified order).
func (m *Manager) Jobs() []Info {
	m.mu.Lock()
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	out := make([]Info, 0, len(ids))
	for _, id := range ids {
		if info, ok := m.Info(id); ok {
			out = append(out, info)
		}
	}
	return out
}

// Draining reports whether shutdown has begun: submissions are rejected but
// accepted jobs may still be running. Health endpoints use this to flip a
// load balancer away from the instance before the drain completes.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Close stops accepting jobs, drains everything already accepted (queued
// jobs run to completion), and returns once every worker has exited.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()
	m.wg.Wait()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.gQueueDepth.Set(int64(len(m.queue)))
		now := time.Now()
		j.mu.Lock()
		if j.cancel {
			j.status = StatusCanceled
			j.err = ErrCanceled.Error()
			j.finished = now
			j.mu.Unlock()
			m.mCanceled.Inc()
			continue
		}
		j.status = StatusRunning
		j.started = now
		j.mu.Unlock()
		m.hQueueWait.Observe(float64(now.Sub(j.enqueued)) / float64(time.Millisecond))
		m.gPeak.SetMax(m.gRunning.Add(1))

		res, err := m.cfg.Runner(j.spec, j.canceled)

		m.gRunning.Add(-1)
		end := time.Now()
		m.hRun.Observe(float64(end.Sub(j.started)) / float64(time.Millisecond))
		j.mu.Lock()
		j.finished = end
		switch {
		case errors.Is(err, ErrCanceled):
			j.status = StatusCanceled
			j.err = err.Error()
			m.mCanceled.Inc()
		case err != nil:
			j.status = StatusFailed
			j.err = err.Error()
			m.mFailed.Inc()
		default:
			j.status = StatusDone
			j.result = res
			m.mDone.Inc()
		}
		j.mu.Unlock()
	}
}

// run is the default pipeline: obtain the trace (decode or render), attach
// the store, slice through the cache, and package the statistics.
func (m *Manager) run(spec Spec, canceled func() bool) (*Result, error) {
	t, err := obtainTrace(spec)
	if err != nil {
		return nil, err
	}
	if canceled() {
		return nil, ErrCanceled
	}
	p := core.NewProfiler(t)
	p.Opts.ProgressPoints = 160
	p.Opts.MainThread = browser.MainThread
	key := ""
	if m.cfg.Store != nil {
		if err := p.UseStore(m.cfg.Store); err != nil {
			return nil, err
		}
		key = p.Key()
	}
	verify := spec.Verify || m.cfg.Verify
	p.VerifyInvariants = verify
	var crit slicer.Criteria = slicer.PixelCriteria{}
	if spec.Criteria == "syscalls" {
		crit = slicer.SyscallCriteria{}
	}
	res, hit, err := p.SliceCached(crit, p.Opts)
	if err != nil {
		return nil, err
	}
	if verify && hit {
		// Fresh computations were verified inside SliceCached; a cached
		// result is re-checked here (the dependence graph is itself usually a
		// cache hit, so this costs one forward walk of the trace).
		if err := p.Forward(); err != nil {
			return nil, err
		}
		if err := replay.CheckInvariants(t, p.Deps(), res); err != nil {
			return nil, fmt.Errorf("service: cached slice failed verification: %w", err)
		}
	}
	if canceled() {
		return nil, ErrCanceled
	}
	out := &Result{
		TraceKey:   key,
		Criteria:   res.Criteria,
		Total:      res.Total,
		SliceCount: res.SliceCount,
		SlicePct:   res.Percent(),
		CacheHit:   hit,
		Verified:   verify,
		Categories: make(map[string]float64, len(analysis.Categories)),
	}
	for _, th := range t.Threads {
		out.Threads = append(out.Threads, ThreadStat{
			ID:     th.ID,
			Name:   th.Name,
			Total:  res.ByThread[th.ID],
			Sliced: res.SliceByThread[th.ID],
		})
	}
	dist := analysis.Categorize(t, res)
	for _, c := range analysis.Categories {
		out.Categories[c] = dist.Share[c]
	}
	return out, nil
}

func obtainTrace(spec Spec) (*trace.Trace, error) {
	if len(spec.Trace) > 0 {
		t, err := trace.Read(bytes.NewReader(spec.Trace))
		if err != nil {
			return nil, fmt.Errorf("service: decoding submitted trace: %w", err)
		}
		return t, nil
	}
	b, err := sites.ByName(spec.Site, sites.Options{Scale: spec.Scale})
	if err != nil {
		return nil, err
	}
	br := browser.New(b.Site, b.Profile)
	if b.Faults != nil {
		br.Loader.SetFaults(b.Faults)
	}
	br.RunSession()
	if len(br.Errors) > 0 {
		return nil, fmt.Errorf("service: rendering %s: %w", b.Name, br.Errors[0])
	}
	return br.M.Tr, nil
}
