// Package service turns the one-shot profiler into a slicing service: a
// bounded job queue feeds a pool of workers that render (or decode)
// traces, slice them through the content-addressed artifact store, and
// publish per-job status. Backpressure is explicit — a full queue rejects
// with ErrQueueFull instead of blocking the caller — and shutdown drains
// every accepted job before Close returns.
//
// # Failure model
//
// With a Journal attached, every submission is made durable before it is
// acknowledged and every terminal state is made durable before a client
// can observe it, so a crash (kill -9, power loss) loses no acknowledged
// job and never re-executes a job a client saw finish. Workers isolate
// job failures: a panicking runner is converted to ErrJobPanicked instead
// of taking the process down, transient errors are retried with capped
// exponential backoff, and a job that panics twice is quarantined on a
// poisoned-job list rather than crash-looping. Per-job wall-clock
// deadlines and a trace-size admission limit bound resource use; the
// artifact store degrades to compute-without-cache behind a circuit
// breaker when its disk misbehaves (see internal/store).
package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"webslice/internal/analysis"
	"webslice/internal/browser"
	"webslice/internal/core"
	"webslice/internal/metrics"
	"webslice/internal/obs"
	"webslice/internal/sites"
	"webslice/internal/slicer"
	"webslice/internal/store"
	"webslice/internal/trace"
)

// Spec describes one slicing job: either a named benchmark site to render
// or an already-encoded trace.
type Spec struct {
	// Site is a benchmark name (sites.ByName). Ignored when Trace is set.
	Site string `json:"site,omitempty"`
	// Seed, when non-zero and Site is empty, renders the property-generated
	// mini-site sites.Random(Seed) instead of a named benchmark.
	Seed uint64 `json:"seed,omitempty"`
	// Scale is the workload scale for rendered sites; 0 means 1.0.
	Scale float64 `json:"scale,omitempty"`
	// Criteria selects the slicing criterion: "pixels" (default) or
	// "syscalls".
	Criteria string `json:"criteria,omitempty"`
	// Verify runs the structural slice oracles (replay.CheckInvariants) on
	// this job's result, failing the job on a violation. Fresh computations
	// are checked before caching; cache hits are re-checked.
	Verify bool `json:"verify,omitempty"`
	// Trace is a binary WSLT trace to slice instead of rendering a site.
	Trace []byte `json:"-"`
	// Origin is forwarded-job provenance: the advertised URL of the
	// cluster coordinator that routed this job here (empty for jobs
	// submitted directly to this node). Informational only.
	Origin string `json:"origin,omitempty"`
	// TraceCtx is the propagated parent span of a forwarded submission.
	// It is never part of the JSON wire format: HTTP handlers fill it from
	// the W3C traceparent request header, so the job's spans join the
	// coordinator's trace instead of starting a new one.
	TraceCtx obs.SpanContext `json:"-"`
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued      Status = "queued"
	StatusRunning     Status = "running"
	StatusDone        Status = "done"
	StatusFailed      Status = "failed"
	StatusCanceled    Status = "canceled"
	StatusQuarantined Status = "quarantined"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled || s == StatusQuarantined
}

// ThreadStat is the per-thread slice breakdown of a finished job.
type ThreadStat struct {
	ID     uint8  `json:"id"`
	Name   string `json:"name"`
	Total  int    `json:"total"`
	Sliced int    `json:"sliced"`
}

// Result is what a finished job reports.
type Result struct {
	TraceKey string `json:"trace_key,omitempty"`
	// SliceDigest is the hex SHA-256 of the slice's canonical store
	// encoding with progress samples stripped, so it is comparable across
	// progress-sampling configurations — and equal to the digests
	// `webslice verify -exp golden` pins in examples/golden/corpus.json.
	// The cluster harness uses it to prove single-node and multi-node runs
	// produce byte-identical slices.
	SliceDigest string             `json:"slice_digest,omitempty"`
	Criteria    string             `json:"criteria"`
	Total       int                `json:"total_instructions"`
	SliceCount  int                `json:"slice_instructions"`
	SlicePct    float64            `json:"slice_pct"`
	CacheHit    bool               `json:"cache_hit"`
	Verified    bool               `json:"verified,omitempty"`
	Threads     []ThreadStat       `json:"threads,omitempty"`
	Categories  map[string]float64 `json:"categories,omitempty"`
}

// Info is a point-in-time snapshot of a job.
type Info struct {
	ID       string `json:"id"`
	Status   Status `json:"status"`
	Site     string `json:"site,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	Criteria string `json:"criteria"`
	Error    string `json:"error,omitempty"`
	CacheHit bool   `json:"cache_hit"`
	Attempts int    `json:"attempts,omitempty"`
	// Node is the owner hint: the advertised URL of the node executing
	// (or that executed) this job. Set from Config.Node; a cluster
	// coordinator fills it in when proxying a worker that did not
	// advertise one.
	Node string `json:"node,omitempty"`
	// Origin is the coordinator that forwarded this job here, if any.
	Origin string `json:"origin,omitempty"`
	// Reroutes counts how many times a cluster coordinator moved this job
	// to a new owner after a worker death (always 0 on a single node).
	Reroutes int     `json:"reroutes,omitempty"`
	QueueMs  float64 `json:"queue_ms"`
	RunMs    float64 `json:"run_ms"`
}

// Typed submission/lifecycle errors.
var (
	// ErrQueueFull is the backpressure signal: the bounded queue is at
	// capacity and the caller should retry later (HTTP maps it to 429).
	ErrQueueFull = errors.New("service: queue full")
	// ErrClosed rejects submissions after shutdown began.
	ErrClosed = errors.New("service: shutting down")
	// ErrCanceled is the terminal error of a canceled job.
	ErrCanceled = errors.New("service: job canceled")
	// ErrJobPanicked is the terminal error of a job whose runner panicked;
	// the panic is confined to the job instead of crashing the daemon.
	ErrJobPanicked = errors.New("service: job panicked")
	// ErrJobTimeout is the terminal error of a job that exceeded the
	// per-job wall-clock deadline (Config.JobTimeout). Not retried.
	ErrJobTimeout = errors.New("service: job deadline exceeded")
	// ErrTraceTooLarge rejects a submitted trace over the admission limit
	// (Config.MaxTraceBytes) before it consumes a queue slot (HTTP 413).
	ErrTraceTooLarge = errors.New("service: trace exceeds admission limit")
)

// quarantineAfter is how many panics a single job survives before it is
// quarantined instead of retried.
const quarantineAfter = 2

// Runner executes one job. The context carries the per-job deadline and is
// canceled on job cancellation and manager shutdown; runners should poll
// ctx.Err() between phases. The default runner renders/decodes and slices;
// tests and alternative backends may substitute their own.
type Runner func(ctx context.Context, spec Spec) (*Result, error)

// RetryPolicy shapes worker-level retries of failed (non-panicking,
// non-timeout) jobs.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per job (default 3).
	// 1 disables retries.
	MaxAttempts int
	// BackoffBase is the delay before the first retry; each further retry
	// doubles it (default 100ms).
	BackoffBase time.Duration
	// BackoffMax caps the doubled delay (default 2s).
	BackoffMax time.Duration
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 3
	}
	if r.BackoffBase <= 0 {
		r.BackoffBase = 100 * time.Millisecond
	}
	if r.BackoffMax <= 0 {
		r.BackoffMax = 2 * time.Second
	}
	return r
}

// backoff returns the capped exponential delay before retry number n (1-based).
func (r RetryPolicy) backoff(n int) time.Duration {
	d := r.BackoffBase
	for i := 1; i < n; i++ {
		d *= 2
		if d >= r.BackoffMax {
			return r.BackoffMax
		}
	}
	return min(d, r.BackoffMax)
}

// Config sizes the manager.
type Config struct {
	// Workers is the parallel worker count (default 4).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (default 64). A full queue rejects with ErrQueueFull.
	QueueDepth int
	// Store, when set, caches forward-pass artifacts and slice results so
	// repeat jobs over identical traces skip both passes.
	Store *store.Store
	// Verify applies Spec.Verify to every job regardless of what the
	// submission asked for (websliced -verify).
	Verify bool
	// Metrics receives the service counters; nil creates a private
	// registry (reachable via Manager.Metrics).
	Metrics *metrics.Registry
	// Runner overrides the job execution pipeline (tests, other backends).
	Runner Runner
	// Node is this node's advertised URL in a cluster (websliced -node);
	// it is surfaced as the owner hint in every job Info. Empty for a
	// standalone daemon.
	Node string

	// SliceWorkers bounds the segmented backward pass's parallelism per
	// job (slicer.Options.Workers); <= 0 means GOMAXPROCS. Distinct from
	// Workers, which bounds how many jobs run at once.
	SliceWorkers int

	// Journal, when set, is the write-ahead log making submissions durable.
	// Pass the entries OpenJournal replayed via Resume to re-enqueue the
	// previous process's unfinished work.
	Journal *Journal
	// Resume is the journal's replayed still-pending work, re-enqueued
	// ahead of new submissions.
	Resume []JournalEntry
	// Retry shapes retries of failed jobs (see RetryPolicy defaults).
	Retry RetryPolicy
	// JobTimeout is the per-job wall-clock deadline; 0 disables it.
	JobTimeout time.Duration
	// MaxTraceBytes rejects submitted traces larger than this with
	// ErrTraceTooLarge; 0 disables the admission limit.
	MaxTraceBytes int64
	// Clock abstracts time for tests; nil uses the real clock.
	Clock Clock
	// Tracer, when set, records a hierarchical span tree per job (queue
	// wait, attempts, render, store lookups, slice phases — see
	// internal/obs). Nil disables tracing; every span call site is
	// nil-safe, so the disabled path costs one pointer test per phase.
	Tracer *obs.Tracer
	// Logger receives structured lifecycle logs (submitted, started,
	// retried, quarantined, finished) carrying job and trace IDs. Nil
	// discards them.
	Logger *slog.Logger
}

type job struct {
	id   string
	spec Spec

	mu       sync.Mutex
	status   Status
	err      string
	result   *Result
	enqueued time.Time
	started  time.Time
	finished time.Time

	cancel  bool
	stopRun context.CancelFunc // cancels the in-flight attempt's context

	// attempts is guarded by mu (Info reads it); panics is touched only by
	// the owning worker.
	attempts int
	panics   int

	// span is the job's root trace span (nil with tracing off). Written
	// once before the job escapes Submit/resume, ended in finish/drop;
	// obs.Span methods are internally synchronized and nil-safe.
	span *obs.Span
}

func (j *job) canceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancel
}

// Manager owns the queue, the worker pool, and the job table.
type Manager struct {
	cfg    Config
	reg    *metrics.Registry
	clock  Clock
	tracer *obs.Tracer
	log    *slog.Logger
	queue  chan *job
	wg     sync.WaitGroup

	// baseCtx parents every job context; baseCancel fires on Kill and on a
	// drain timeout so in-flight runners stop at their next poll.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	// killed means shutdown is abandoning work: workers drop jobs without
	// journaling terminals, so the journal keeps them pending for the next
	// boot (simulated crash, or drain deadline expiry).
	killed atomic.Bool

	mu         sync.Mutex
	jobs       map[string]*job
	nextID     int
	closed     bool
	quarantine []string // ids of quarantined jobs, oldest first

	mSubmitted, mDone, mFailed, mRejected, mCanceled *metrics.Counter
	mRetried, mPanicked, mQuarantined                *metrics.Counter
	gRunning, gPeak, gQueueDepth                     *metrics.Gauge
	hQueueWait, hRun                                 *metrics.Histogram

	// Backward-pass phase timings and segment counts of fresh (non-cached)
	// slice computations; sequential passes observe their whole walk as
	// scan with slice_segments = 1.
	hScan, hStitch, hTally *metrics.Histogram
	gSegments              *metrics.Gauge
}

// New starts a manager and its workers. Journal entries passed via
// cfg.Resume are re-enqueued (ahead of new submissions) without being
// re-journaled — they are already durable.
func New(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	cfg.Retry = cfg.Retry.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	clock := cfg.Clock
	if clock == nil {
		clock = realClock{}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:    cfg,
		reg:    reg,
		clock:  clock,
		tracer: cfg.Tracer,
		log:    logger,
		// The queue must absorb every resumed job on top of QueueDepth so
		// a journal fuller than the configured depth still replays.
		queue:        make(chan *job, cfg.QueueDepth+len(cfg.Resume)),
		baseCtx:      ctx,
		baseCancel:   cancel,
		jobs:         make(map[string]*job),
		mSubmitted:   reg.Counter("jobs_submitted"),
		mDone:        reg.Counter("jobs_done"),
		mFailed:      reg.Counter("jobs_failed"),
		mRejected:    reg.Counter("jobs_rejected"),
		mCanceled:    reg.Counter("jobs_canceled"),
		mRetried:     reg.Counter("jobs_retried"),
		mPanicked:    reg.Counter("jobs_panicked"),
		mQuarantined: reg.Counter("jobs_quarantined"),
		gRunning:     reg.Gauge("jobs_running"),
		gPeak:        reg.Gauge("jobs_running_peak"),
		gQueueDepth:  reg.Gauge("queue_depth"),
		hQueueWait:   reg.Histogram("queue_wait_ms", metrics.LatencyBuckets),
		hRun:         reg.Histogram("slice_ms", metrics.LatencyBuckets),
		hScan:        reg.Histogram("slice_scan_ms", metrics.LatencyBuckets),
		hStitch:      reg.Histogram("slice_stitch_ms", metrics.LatencyBuckets),
		hTally:       reg.Histogram("slice_tally_ms", metrics.LatencyBuckets),
		gSegments:    reg.Gauge("slice_segments"),
	}
	if cfg.Runner == nil {
		m.cfg.Runner = m.run
	}
	if cfg.Store != nil {
		reg.Func("store_hits", func() int64 { return cfg.Store.Stats().Hits })
		reg.Func("store_misses", func() int64 { return cfg.Store.Stats().Misses })
		reg.Func("store_mem_hits", func() int64 { return cfg.Store.Stats().MemHits })
		reg.Func("store_disk_hits", func() int64 { return cfg.Store.Stats().DiskHits })
		reg.Func("store_puts", func() int64 { return cfg.Store.Stats().Puts })
		reg.Func("store_evicted", func() int64 { return cfg.Store.Stats().Evicted })
		reg.Func("store_corrupt", func() int64 { return cfg.Store.Stats().Corrupt })
		reg.Func("store_mem_bytes", cfg.Store.MemBytes)
		reg.Func("store_disk_errors", func() int64 { return cfg.Store.Stats().DiskErrors })
		reg.Func("store_breaker_state", func() int64 { return cfg.Store.Stats().BreakerState })
		reg.Func("store_breaker_trips", func() int64 { return cfg.Store.Stats().BreakerTrips })
		reg.Func("store_breaker_shed", func() int64 { return cfg.Store.Stats().BreakerShed })
	}
	if mx := maxJournalID(cfg); mx > m.nextID {
		m.nextID = mx
	}
	m.resume(cfg.Resume)
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

func maxJournalID(cfg Config) int {
	if cfg.Journal == nil {
		return 0
	}
	return cfg.Journal.MaxID()
}

// resume re-enqueues replayed journal entries. Entries that no longer
// validate (a site removed, say) are journaled terminal instead of
// poisoning the queue forever.
func (m *Manager) resume(entries []JournalEntry) {
	for _, e := range entries {
		spec := e.Spec
		j := &job{id: e.ID, spec: spec, enqueued: m.clock.Now()}
		m.startJobSpan(j)
		j.span.Set("resumed", "true")
		if err := m.validate(&j.spec); err != nil {
			j.status = StatusFailed
			j.err = err.Error()
			j.finished = j.enqueued
			if m.cfg.Journal != nil {
				m.cfg.Journal.LogTerminal(j.id, StatusFailed)
			}
			j.span.Set("status", string(StatusFailed))
			j.span.EndErr(err)
			m.jobs[j.id] = j
			m.mFailed.Inc()
			m.log.Warn("resumed job invalid", "job", j.id, "trace", j.span.TraceID(), "error", err)
			continue
		}
		j.status = StatusQueued
		m.jobs[j.id] = j
		m.queue <- j
		m.log.Info("job resumed", "job", j.id, "trace", j.span.TraceID())
	}
	m.gQueueDepth.Set(int64(len(m.queue)))
}

// Metrics returns the registry the manager publishes into.
func (m *Manager) Metrics() *metrics.Registry { return m.reg }

// Store returns the attached artifact store (may be nil).
func (m *Manager) Store() *store.Store { return m.cfg.Store }

// Workers returns the worker-pool size.
func (m *Manager) Workers() int { return m.cfg.Workers }

// Submit validates, journals, and enqueues a job, returning its ID. The
// journal append (with fsync) happens before the ID is returned: an
// acknowledged submission survives any crash. A full queue fails fast
// with ErrQueueFull; after Close it fails with ErrClosed.
func (m *Manager) Submit(spec Spec) (string, error) {
	if err := m.validate(&spec); err != nil {
		return "", err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return "", ErrClosed
	}
	// Submit is the only sender once workers are running and it holds
	// m.mu, so checking capacity up front (before paying for the journal
	// fsync) is race-free and the send below can never block.
	if len(m.queue) == cap(m.queue) {
		m.mRejected.Inc()
		return "", ErrQueueFull
	}
	m.nextID++
	j := &job{
		id:       fmt.Sprintf("j%06d", m.nextID),
		spec:     spec,
		status:   StatusQueued,
		enqueued: m.clock.Now(),
	}
	m.startJobSpan(j)
	if m.cfg.Journal != nil {
		js := j.span.Child("journal.submit")
		err := m.cfg.Journal.LogSubmit(j.id, spec)
		js.EndErr(err)
		if err != nil {
			// Not acknowledged, not enqueued. The ID stays burned: a torn
			// frame may still replay, so reusing it could collide.
			j.span.EndErr(err)
			return "", err
		}
	}
	m.queue <- j
	m.jobs[j.id] = j
	m.mSubmitted.Inc()
	m.gQueueDepth.Set(int64(len(m.queue)))
	m.log.Info("job submitted", "job", j.id, "trace", j.span.TraceID(),
		"site", spec.Site, "criteria", spec.Criteria)
	return j.id, nil
}

func (m *Manager) validate(spec *Spec) error {
	if m.cfg.MaxTraceBytes > 0 && int64(len(spec.Trace)) > m.cfg.MaxTraceBytes {
		return fmt.Errorf("%w: %d bytes (limit %d)", ErrTraceTooLarge, len(spec.Trace), m.cfg.MaxTraceBytes)
	}
	switch spec.Criteria {
	case "":
		spec.Criteria = "pixels"
	case "pixels", "syscalls":
	default:
		return fmt.Errorf("service: unknown criteria %q (want pixels or syscalls)", spec.Criteria)
	}
	if len(spec.Trace) > 0 {
		// Reject obvious garbage at submission time: a body that doesn't even
		// start with the trace magic would only fail later inside a worker,
		// burning a queue slot and reporting the error asynchronously.
		if !trace.HasMagic(spec.Trace) {
			return fmt.Errorf("service: submitted body is not a WSLT trace")
		}
		return nil
	}
	if spec.Site == "" && spec.Seed != 0 {
		// Property-generated mini-site: fixed-size, so Scale is ignored.
		return nil
	}
	switch {
	case spec.Scale == 0:
		spec.Scale = 1.0
	case !(spec.Scale > 0) || math.IsInf(spec.Scale, 1):
		// Catches negatives, NaN (fails every comparison), and +Inf.
		return fmt.Errorf("service: invalid scale %v (must be a finite number > 0)", spec.Scale)
	}
	_, err := sites.ByName(spec.Site, sites.Options{})
	return err
}

// Info returns a snapshot of the job.
func (m *Manager) Info(id string) (Info, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Info{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	info := Info{
		ID:       j.id,
		Status:   j.status,
		Site:     j.spec.Site,
		Seed:     j.spec.Seed,
		Criteria: j.spec.Criteria,
		Error:    j.err,
		Attempts: j.attempts,
		Node:     m.cfg.Node,
		Origin:   j.spec.Origin,
	}
	if j.result != nil {
		info.CacheHit = j.result.CacheHit
	}
	if !j.started.IsZero() {
		info.QueueMs = float64(j.started.Sub(j.enqueued)) / float64(time.Millisecond)
		end := j.finished
		if end.IsZero() {
			end = m.clock.Now()
		}
		info.RunMs = float64(end.Sub(j.started)) / float64(time.Millisecond)
	}
	return info, true
}

// Result returns a finished job's result (ok is false if the job is
// unknown or not done).
func (m *Manager) Result(id string) (*Result, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusDone {
		return nil, false
	}
	return j.result, true
}

// Cancel marks a job canceled. A queued job never runs; a running job's
// context is canceled so it stops at its next poll. Returns false for
// unknown or already-terminal jobs.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return false
	}
	j.cancel = true
	if j.stopRun != nil {
		j.stopRun()
	}
	return true
}

// Jobs lists snapshots of every known job (unspecified order).
func (m *Manager) Jobs() []Info {
	m.mu.Lock()
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	out := make([]Info, 0, len(ids))
	for _, id := range ids {
		if info, ok := m.Info(id); ok {
			out = append(out, info)
		}
	}
	return out
}

// Quarantined lists the poisoned jobs — those that panicked
// quarantineAfter times and were pulled from rotation — oldest first.
func (m *Manager) Quarantined() []Info {
	m.mu.Lock()
	ids := append([]string(nil), m.quarantine...)
	m.mu.Unlock()
	out := make([]Info, 0, len(ids))
	for _, id := range ids {
		if info, ok := m.Info(id); ok {
			out = append(out, info)
		}
	}
	return out
}

// Draining reports whether shutdown has begun: submissions are rejected but
// accepted jobs may still be running. Health endpoints use this to flip a
// load balancer away from the instance before the drain completes.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Close stops accepting jobs, drains everything already accepted (queued
// jobs run to completion), and returns once every worker has exited. The
// journal, if any, is compacted and closed.
func (m *Manager) Close() {
	m.beginShutdown()
	m.wg.Wait()
	if m.cfg.Journal != nil {
		m.cfg.Journal.Close()
	}
}

// Drain is Close with a deadline: it stops accepting jobs and waits up to
// timeout for accepted work to finish. On expiry the remaining jobs are
// abandoned *into the journal* — workers stop without journaling
// terminals, so the unfinished jobs stay pending and the next boot
// re-runs them — and Drain returns false.
func (m *Manager) Drain(timeout time.Duration) bool {
	m.beginShutdown()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-done:
		if m.cfg.Journal != nil {
			m.cfg.Journal.Close()
		}
		return true
	case <-t.C:
		m.killed.Store(true)
		m.baseCancel()
		m.wg.Wait()
		if m.cfg.Journal != nil {
			m.cfg.Journal.Close()
		}
		return false
	}
}

// Kill is the chaos harness's simulated crash: the journal stops writing
// (as a dead process would), in-flight work is canceled, and nothing is
// drained gracefully. The manager is unusable afterward.
func (m *Manager) Kill() {
	if m.cfg.Journal != nil {
		m.cfg.Journal.disable()
	}
	m.killed.Store(true)
	m.beginShutdown()
	m.baseCancel()
	m.wg.Wait()
}

func (m *Manager) beginShutdown() {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.gQueueDepth.Set(int64(len(m.queue)))
		if m.killed.Load() {
			m.drop(j)
			continue
		}
		now := m.clock.Now()
		j.mu.Lock()
		if j.cancel {
			j.mu.Unlock()
			m.finish(j, StatusCanceled, nil, ErrCanceled)
			continue
		}
		j.status = StatusRunning
		j.started = now
		j.mu.Unlock()
		wait := float64(now.Sub(j.enqueued)) / float64(time.Millisecond)
		m.hQueueWait.ObserveExemplar(wait, j.span.TraceID())
		j.span.ChildAt("queue.wait", j.enqueued, now)
		m.log.Debug("job started", "job", j.id, "trace", j.span.TraceID(), "queue_ms", wait)
		m.gPeak.SetMax(m.gRunning.Add(1))
		m.execute(j)
		m.gRunning.Add(-1)
	}
}

// execute runs a job to a terminal state: attempts with panic isolation,
// retries with capped exponential backoff, quarantine for repeat
// panickers, and no terminal at all when shutdown abandons the job (the
// journal then re-runs it next boot).
func (m *Manager) execute(j *job) {
	for {
		j.mu.Lock()
		j.attempts++
		attempts := j.attempts
		j.mu.Unlock()
		res, err := m.attempt(j, attempts)
		switch {
		case m.killed.Load():
			m.drop(j)
			return
		case err == nil:
			m.finish(j, StatusDone, res, nil)
			return
		case j.canceled():
			m.finish(j, StatusCanceled, nil, ErrCanceled)
			return
		case errors.Is(err, ErrJobTimeout):
			m.finish(j, StatusFailed, nil, err)
			return
		case errors.Is(err, ErrJobPanicked):
			j.panics++
			if j.panics >= quarantineAfter {
				m.finish(j, StatusQuarantined, nil, err)
				return
			}
		default:
			if attempts >= m.cfg.Retry.MaxAttempts {
				m.finish(j, StatusFailed, nil, err)
				return
			}
		}
		backoff := m.cfg.Retry.backoff(attempts)
		j.span.Event("retry",
			obs.Attr{K: "attempt", V: strconv.Itoa(attempts)},
			obs.Attr{K: "backoff_ms", V: strconv.FormatInt(backoff.Milliseconds(), 10)},
			obs.Attr{K: "error", V: err.Error()})
		m.mRetried.Inc()
		m.log.Warn("job retrying", "job", j.id, "trace", j.span.TraceID(),
			"attempt", attempts, "backoff", backoff, "error", err)
		m.clock.Sleep(backoff, m.baseCtx.Done())
		if m.killed.Load() {
			m.drop(j)
			return
		}
	}
}

// attempt runs the runner once with a per-job context and converts panics
// into ErrJobPanicked so one poisoned job cannot take the daemon down. The
// attempt's span rides the context (obs.FromContext) so the runner's
// phases parent under it.
func (m *Manager) attempt(j *job, n int) (res *Result, err error) {
	ctx := m.baseCtx
	var cancel context.CancelFunc
	if m.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, m.cfg.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	j.mu.Lock()
	j.stopRun = cancel
	if j.cancel {
		cancel() // Cancel won the race with attempt setup
	}
	j.mu.Unlock()
	as := j.span.Child("attempt").Set("n", strconv.Itoa(n))
	ctx = obs.ContextWith(ctx, as)
	defer func() {
		j.mu.Lock()
		j.stopRun = nil
		j.mu.Unlock()
		if r := recover(); r != nil {
			m.mPanicked.Inc()
			res, err = nil, fmt.Errorf("%w: %v", ErrJobPanicked, r)
		}
		as.EndErr(err)
	}()
	res, err = m.cfg.Runner(ctx, j.spec)
	if err != nil && errors.Is(ctx.Err(), context.DeadlineExceeded) {
		err = fmt.Errorf("%w after %v", ErrJobTimeout, m.cfg.JobTimeout)
	}
	return res, err
}

// finish journals the terminal state, then publishes it. The ordering is
// the no-duplicates contract: a client can only observe a terminal status
// that is already durable, so replay never re-runs such a job.
func (m *Manager) finish(j *job, st Status, res *Result, err error) {
	if m.cfg.Journal != nil {
		ts := j.span.Child("journal.terminal").Set("terminal", string(st))
		m.cfg.Journal.LogTerminal(j.id, st)
		ts.End()
	}
	end := m.clock.Now()
	j.mu.Lock()
	j.finished = end
	j.status = st
	j.result = res
	if err != nil {
		j.err = err.Error()
	}
	started := j.started
	j.mu.Unlock()
	var runMs float64
	if !started.IsZero() {
		runMs = float64(end.Sub(started)) / float64(time.Millisecond)
		m.hRun.ObserveExemplar(runMs, j.span.TraceID())
	}
	if st == StatusQuarantined {
		j.span.Event("quarantine")
	}
	j.span.Set("status", string(st))
	j.span.EndErr(err)
	m.log.Info("job finished", "job", j.id, "trace", j.span.TraceID(),
		"status", string(st), "run_ms", runMs, "error", err)
	switch st {
	case StatusDone:
		m.mDone.Inc()
	case StatusFailed:
		m.mFailed.Inc()
	case StatusCanceled:
		m.mCanceled.Inc()
	case StatusQuarantined:
		m.mQuarantined.Inc()
		m.mu.Lock()
		m.quarantine = append(m.quarantine, j.id)
		m.mu.Unlock()
	}
}

// drop abandons a job during a killed shutdown: the in-memory table shows
// it canceled for any late observer, but no terminal is journaled — the
// job is still pending on disk and the next boot re-runs it.
func (m *Manager) drop(j *job) {
	j.mu.Lock()
	abandoned := !j.status.Terminal()
	if abandoned {
		j.status = StatusCanceled
		j.err = "abandoned by shutdown (still pending in journal)"
		j.finished = m.clock.Now()
	}
	j.mu.Unlock()
	if abandoned {
		j.span.Set("status", string(StatusCanceled)).Set("abandoned", "true")
		j.span.End()
	}
}

// run is the default pipeline: obtain the trace (decode or render), attach
// the store, slice through the cache, and package the statistics. The
// context's deadline/cancellation is polled at phase boundaries and,
// through slicer.Options.Canceled, inside the backward walk itself.
func (m *Manager) run(ctx context.Context, spec Spec) (*Result, error) {
	s := obs.FromContext(ctx) // the attempt's span; nil (inert) with tracing off
	obtainName := "render"
	if len(spec.Trace) > 0 {
		obtainName = "trace.open"
	}
	ts := s.Child(obtainName)
	p, err := obtainTrace(spec)
	ts.EndErr(err)
	if err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return nil, ErrCanceled
	}
	p.Obs = s // store lookups, the forward pass, and verification parent here
	t := p.T  // the shell for a streaming (v3) submission: tables only
	p.Opts.ProgressPoints = 160
	p.Opts.MainThread = browser.MainThread
	p.Opts.Canceled = func() bool { return ctx.Err() != nil }
	p.Opts.Workers = m.cfg.SliceWorkers
	var passStats slicer.PassStats
	p.Opts.Stats = &passStats
	key := ""
	if m.cfg.Store != nil {
		if err := p.UseStore(m.cfg.Store); err != nil {
			return nil, err
		}
		key = p.Key()
	}
	verify := spec.Verify || m.cfg.Verify
	p.VerifyInvariants = verify
	var crit slicer.Criteria = slicer.PixelCriteria{}
	if spec.Criteria == "syscalls" {
		crit = slicer.SyscallCriteria{}
	}
	ss := s.Child("slice").Set("criteria", spec.Criteria)
	res, hit, err := p.SliceCached(crit, p.Opts)
	ss.Set("hit", strconv.FormatBool(hit))
	if err != nil {
		ss.EndErr(err)
		if errors.Is(err, slicer.ErrCanceled) {
			return nil, ErrCanceled
		}
		return nil, err
	}
	sliceEnd := m.clock.Now()
	ss.End()
	if !hit {
		// Phase timings exist only when the backward pass actually ran;
		// cache hits would observe zeros and skew the histograms.
		m.hScan.ObserveExemplar(passStats.ScanMs, s.TraceID())
		m.hStitch.ObserveExemplar(passStats.StitchMs, s.TraceID())
		m.hTally.ObserveExemplar(passStats.TallyMs, s.TraceID())
		m.gSegments.Set(int64(passStats.Segments))
		// Synthesize the backward pass's phase spans from PassStats — the
		// hot loop carries no tracing code; the phases are reconstructed
		// back-to-front from the slice span's end.
		phaseEnd := sliceEnd
		for _, ph := range []struct {
			name string
			ms   float64
		}{
			{"slice.tally", passStats.TallyMs},
			{"slice.stitch", passStats.StitchMs},
			{"slice.scan", passStats.ScanMs},
		} {
			start := phaseEnd.Add(-time.Duration(ph.ms * float64(time.Millisecond)))
			if ph.name == "slice.scan" {
				ss.ChildAt(ph.name, start, phaseEnd,
					obs.Attr{K: "segments", V: strconv.Itoa(passStats.Segments)})
			} else {
				ss.ChildAt(ph.name, start, phaseEnd)
			}
			phaseEnd = start
		}
	}
	if verify && hit {
		// Fresh computations were verified inside SliceCached; a cached
		// result is re-checked here (the dependence graph is itself usually a
		// cache hit, so this costs one forward walk of the trace).
		if err := p.Forward(); err != nil {
			return nil, err
		}
		if err := p.VerifyResults(res); err != nil {
			return nil, fmt.Errorf("service: cached slice failed verification: %w", err)
		}
	}
	if ctx.Err() != nil {
		return nil, ErrCanceled
	}
	out := &Result{
		TraceKey:    key,
		SliceDigest: sliceDigest(res),
		Criteria:    res.Criteria,
		Total:       res.Total,
		SliceCount:  res.SliceCount,
		SlicePct:    res.Percent(),
		CacheHit:    hit,
		Verified:    verify,
		Categories:  make(map[string]float64, len(analysis.Categories)),
	}
	for _, th := range t.Threads {
		out.Threads = append(out.Threads, ThreadStat{
			ID:     th.ID,
			Name:   th.Name,
			Total:  res.ByThread[th.ID],
			Sliced: res.SliceByThread[th.ID],
		})
	}
	dist := analysis.Categorize(t, res)
	for _, c := range analysis.Categories {
		out.Categories[c] = dist.Share[c]
	}
	return out, nil
}

// sliceDigest is the canonical content digest of a slice: hex SHA-256 over
// the store's deterministic encoding with the progress-curve samples
// stripped, so the digest depends only on what is in the slice, not on the
// ProgressPoints sampling knob. It therefore matches the digests pinned by
// `webslice verify -exp golden` (which slices with sampling off).
func sliceDigest(r *slicer.Result) string {
	c := *r
	c.Progress = nil
	sum := sha256.Sum256(store.EncodeResult(&c))
	return hex.EncodeToString(sum[:])
}

func obtainTrace(spec Spec) (*core.Profiler, error) {
	if len(spec.Trace) > 0 {
		// A v3 (block-compressed) submission is profiled in place: the
		// backward pass streams blocks out of the submitted bytes and the
		// records are never materialized as one slice.
		if trace.FormatVersion(spec.Trace) == 3 {
			br, err := trace.OpenV3(spec.Trace)
			if err != nil {
				return nil, fmt.Errorf("service: decoding submitted trace: %w", err)
			}
			return core.NewProfilerStream(br), nil
		}
		t, err := trace.Read(bytes.NewReader(spec.Trace))
		if err != nil {
			return nil, fmt.Errorf("service: decoding submitted trace: %w", err)
		}
		return core.NewProfiler(t), nil
	}
	var b sites.Benchmark
	if spec.Site == "" && spec.Seed != 0 {
		b = sites.Random(spec.Seed)
	} else {
		var err error
		b, err = sites.ByName(spec.Site, sites.Options{Scale: spec.Scale})
		if err != nil {
			return nil, err
		}
	}
	br := browser.New(b.Site, b.Profile)
	if b.Faults != nil {
		br.Loader.SetFaults(b.Faults)
	}
	br.RunSession()
	if len(br.Errors) > 0 {
		return nil, fmt.Errorf("service: rendering %s: %w", b.Name, br.Errors[0])
	}
	return core.NewProfiler(br.M.Tr), nil
}
