package service

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"webslice/internal/browser"
	"webslice/internal/metrics"
	"webslice/internal/sites"
	"webslice/internal/store"
)

// waitStatus polls until the job reaches status s (or fails the test).
func waitStatus(t *testing.T, m *Manager, id string, s Status) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		info, ok := m.Info(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if info.Status == s {
			return
		}
		if info.Status.Terminal() {
			t.Fatalf("job %s is %s (err=%q), want %s", id, info.Status, info.Error, s)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for job %s to reach %s", id, s)
}

func TestQueueFullRejectsWithTypedError(t *testing.T) {
	block := make(chan struct{})
	m := New(Config{
		Workers:    1,
		QueueDepth: 1,
		Runner: func(ctx context.Context, spec Spec) (*Result, error) {
			<-block
			return &Result{}, nil
		},
	})
	idA, err := m.Submit(Spec{Site: "amazon-desktop"})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, idA, StatusRunning) // A is off the queue, held by the worker
	if _, err := m.Submit(Spec{Site: "amazon-desktop"}); err != nil {
		t.Fatalf("second submit should queue, got %v", err)
	}
	_, err = m.Submit(Spec{Site: "amazon-desktop"})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}
	if got := m.Metrics().Counter("jobs_rejected").Value(); got != 1 {
		t.Fatalf("jobs_rejected = %d, want 1", got)
	}
	close(block)
	m.Close()
	if _, err := m.Submit(Spec{Site: "amazon-desktop"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close = %v, want ErrClosed", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := New(Config{Workers: 1, Runner: func(context.Context, Spec) (*Result, error) { return &Result{}, nil }})
	defer m.Close()
	if _, err := m.Submit(Spec{Site: "no-such-site"}); err == nil {
		t.Fatal("unknown site accepted")
	}
	if _, err := m.Submit(Spec{Site: "maps", Criteria: "vibes"}); err == nil {
		t.Fatal("unknown criteria accepted")
	}
	for _, scale := range []float64{-1, -0.25, math.NaN(), math.Inf(1)} {
		_, err := m.Submit(Spec{Site: "maps", Scale: scale})
		if err == nil {
			t.Errorf("scale %v accepted", scale)
			continue
		}
		if !strings.Contains(err.Error(), "scale") {
			t.Errorf("scale %v: error %q does not name the bad field", scale, err)
		}
	}
	// Zero means "default"; small positive scales are valid.
	if id, err := m.Submit(Spec{Site: "maps", Scale: 0}); err != nil {
		t.Errorf("zero scale (default) rejected: %v", err)
	} else {
		waitStatus(t, m, id, StatusDone)
	}
	if _, err := m.Submit(Spec{Site: "maps", Scale: 0.01}); err != nil {
		t.Errorf("valid scale rejected: %v", err)
	}
}

func TestWorkerPoolRunsJobsConcurrently(t *testing.T) {
	const n = 4
	arrived := make(chan struct{}, n)
	release := make(chan struct{})
	m := New(Config{
		Workers:    n,
		QueueDepth: n,
		Runner: func(ctx context.Context, spec Spec) (*Result, error) {
			arrived <- struct{}{}
			<-release
			return &Result{}, nil
		},
	})
	ids := make([]string, n)
	for i := range ids {
		id, err := m.Submit(Spec{Site: "amazon-desktop"})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	// All n jobs must be inside the runner at the same time — the pool
	// genuinely saturates, it does not serialize.
	for i := 0; i < n; i++ {
		select {
		case <-arrived:
		case <-time.After(30 * time.Second):
			t.Fatalf("only %d of %d jobs started concurrently", i, n)
		}
	}
	if peak := m.Metrics().Gauge("jobs_running_peak").Value(); peak != n {
		t.Fatalf("jobs_running_peak = %d, want %d", peak, n)
	}
	close(release)
	m.Close()
	for _, id := range ids {
		info, _ := m.Info(id)
		if info.Status != StatusDone {
			t.Fatalf("job %s = %s, want done", id, info.Status)
		}
	}
}

func TestCloseDrainsAcceptedJobs(t *testing.T) {
	var ran atomic.Int64
	m := New(Config{
		Workers:    2,
		QueueDepth: 16,
		Runner: func(ctx context.Context, spec Spec) (*Result, error) {
			time.Sleep(5 * time.Millisecond)
			ran.Add(1)
			return &Result{}, nil
		},
	})
	const n = 8
	ids := make([]string, n)
	for i := range ids {
		id, err := m.Submit(Spec{Site: "maps"})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	m.Close() // must drain all 8, not abandon the queued ones
	if ran.Load() != n {
		t.Fatalf("Close drained %d jobs, want %d", ran.Load(), n)
	}
	for _, id := range ids {
		if info, _ := m.Info(id); info.Status != StatusDone {
			t.Fatalf("job %s = %s after drain, want done", id, info.Status)
		}
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	block := make(chan struct{})
	var ranB atomic.Bool
	m := New(Config{
		Workers:    1,
		QueueDepth: 4,
		Runner: func(ctx context.Context, spec Spec) (*Result, error) {
			if spec.Site == "bing" {
				ranB.Store(true)
			}
			<-block
			return &Result{}, nil
		},
	})
	idA, err := m.Submit(Spec{Site: "amazon-desktop"})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, idA, StatusRunning)
	idB, err := m.Submit(Spec{Site: "bing"}) // sits in the queue behind A
	if err != nil {
		t.Fatal(err)
	}
	if !m.Cancel(idB) {
		t.Fatal("Cancel of a queued job returned false")
	}
	close(block)
	m.Close()
	if info, _ := m.Info(idB); info.Status != StatusCanceled {
		t.Fatalf("canceled job = %s, want canceled", info.Status)
	}
	if ranB.Load() {
		t.Fatal("canceled job still ran")
	}
	if m.Cancel(idB) {
		t.Fatal("Cancel of a terminal job returned true")
	}
}

// TestConcurrentSiteJobsWithCache is the acceptance scenario: with 4
// workers, 4 independent real site jobs complete concurrently under -race,
// and a repeat submission of an identical trace is served from the
// artifact store with the forward pass skipped.
func TestConcurrentSiteJobsWithCache(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Workers: 4, QueueDepth: 16, Store: st})
	specs := []Spec{
		{Site: "amazon-desktop", Scale: 0.04},
		{Site: "amazon-mobile", Scale: 0.04},
		{Site: "amazon-desktop", Scale: 0.06},
		{Site: "amazon-mobile", Scale: 0.06},
	}
	ids := make([]string, len(specs))
	for i, s := range specs {
		id, err := m.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	results := make([]*Result, len(ids))
	for i, id := range ids {
		deadline := time.Now().Add(120 * time.Second)
		for {
			info, ok := m.Info(id)
			if !ok {
				t.Fatalf("job %s disappeared", id)
			}
			if info.Status == StatusDone {
				break
			}
			if info.Status.Terminal() {
				t.Fatalf("job %s: %s (%s)", id, info.Status, info.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s timed out in %s", id, info.Status)
			}
			time.Sleep(10 * time.Millisecond)
		}
		res, ok := m.Result(id)
		if !ok {
			t.Fatalf("no result for done job %s", id)
		}
		results[i] = res
	}
	if peak := m.Metrics().Gauge("jobs_running_peak").Value(); peak < 2 {
		t.Fatalf("jobs_running_peak = %d, want >= 2 (pool did not overlap)", peak)
	}
	// Fresh computes surface the backward pass's phase breakdown: every
	// non-cached job observed its scan time and the last one recorded its
	// segment count (1 on the sequential path).
	if n := m.Metrics().Histogram("slice_scan_ms", metrics.LatencyBuckets).Count(); n != int64(len(specs)) {
		t.Fatalf("slice_scan_ms observed %d passes, want %d", n, len(specs))
	}
	if segs := m.Metrics().Gauge("slice_segments").Value(); segs < 1 {
		t.Fatalf("slice_segments = %d, want >= 1", segs)
	}
	for i, res := range results {
		if res.CacheHit {
			t.Fatalf("job %d was a cache hit on first sight", i)
		}
		if res.Total == 0 || res.SliceCount == 0 || res.TraceKey == "" {
			t.Fatalf("job %d result looks empty: %+v", i, res)
		}
	}

	// Re-submit the first spec: identical render, identical trace key, the
	// slice comes out of the store with the cache-hit counter incremented.
	hitsBefore := st.Stats().Hits
	id, err := m.Submit(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, id, StatusDone)
	res, _ := m.Result(id)
	if !res.CacheHit {
		t.Fatal("repeat job of an identical trace was not a cache hit")
	}
	if res.TraceKey != results[0].TraceKey {
		t.Fatalf("repeat job key %s differs from original %s", res.TraceKey, results[0].TraceKey)
	}
	if res.Total != results[0].Total || res.SliceCount != results[0].SliceCount {
		t.Fatalf("cached result differs: %d/%d vs %d/%d",
			res.SliceCount, res.Total, results[0].SliceCount, results[0].Total)
	}
	if st.Stats().Hits <= hitsBefore {
		t.Fatal("store hit counter did not increment on the repeat job")
	}
	m.Close()
}

// TestTraceJobRoundTrip submits an encoded trace instead of a site name.
func TestTraceJobRoundTrip(t *testing.T) {
	b, err := sites.ByName("amazon-desktop", sites.Options{Scale: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	br := browser.New(b.Site, b.Profile)
	br.RunSession()
	if len(br.Errors) > 0 {
		t.Fatal(br.Errors[0])
	}
	var buf bytes.Buffer
	if err := br.M.Tr.Write(&buf); err != nil {
		t.Fatal(err)
	}

	st, _ := store.Open(t.TempDir(), 0)
	m := New(Config{Workers: 2, Store: st})
	defer m.Close()
	id, err := m.Submit(Spec{Trace: buf.Bytes(), Criteria: "syscalls"})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, id, StatusDone)
	res, _ := m.Result(id)
	if res.Criteria != "syscalls" {
		t.Fatalf("criteria = %q, want syscalls", res.Criteria)
	}
	if res.Total != len(br.M.Tr.Recs) {
		t.Fatalf("total = %d, want %d", res.Total, len(br.M.Tr.Recs))
	}
	// Garbage bytes are rejected at submission — they never reach a worker.
	if _, err := m.Submit(Spec{Trace: []byte("not a trace")}); err == nil {
		t.Fatal("submit of non-WSLT bytes accepted")
	}
	// A body with a valid magic but a corrupt payload passes the eager sniff
	// and fails asynchronously in the worker.
	corrupt := append([]byte(nil), buf.Bytes()...)
	corrupt[len(corrupt)/2] ^= 0x01
	id2, err := m.Submit(Spec{Trace: corrupt})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		info, _ := m.Info(id2)
		if info.Status.Terminal() {
			if info.Status != StatusFailed {
				t.Fatalf("corrupt trace job = %s, want failed", info.Status)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for corrupt trace job")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestVerifiedJob runs a real job with Spec.Verify set: the fresh
// computation is invariant-checked before caching, and a repeat submission
// (a cache hit) is re-checked. Both report Verified.
func TestVerifiedJob(t *testing.T) {
	st, _ := store.Open(t.TempDir(), 0)
	m := New(Config{Workers: 1, Store: st})
	defer m.Close()

	for round, wantHit := range []bool{false, true} {
		id, err := m.Submit(Spec{Site: "amazon-desktop", Scale: 0.04, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		waitStatus(t, m, id, StatusDone)
		res, ok := m.Result(id)
		if !ok {
			t.Fatalf("round %d: no result", round)
		}
		if !res.Verified {
			t.Errorf("round %d: result not marked verified", round)
		}
		if res.CacheHit != wantHit {
			t.Errorf("round %d: cache hit = %v, want %v", round, res.CacheHit, wantHit)
		}
	}
}
