package service

import (
	"testing"
	"time"

	"webslice/internal/obs"
	"webslice/internal/store"
)

// The span-overhead acceptance gate, measured end to end: the same
// render+slice job with the tracer absent (the default) and with a live
// span ring. Tracing hangs off pass boundaries, never the slicer's hot
// loop, so the pair should land within a few percent of each other:
//
//	go test -run - -bench BenchmarkJobTracing ./internal/service/
//
// Each iteration submits a fresh property-site seed so the artifact
// store never short-circuits the slice with a cache hit.
func benchmarkJob(b *testing.B, tracer *obs.Tracer) {
	st, err := store.Open("", 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	m := New(Config{Workers: 1, QueueDepth: 4, Store: st, Tracer: tracer})
	defer m.Kill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := m.Submit(Spec{Seed: uint64(i) + 1, Scale: 0.05, Criteria: "pixels"})
		if err != nil {
			b.Fatal(err)
		}
		for {
			info, ok := m.Info(id)
			if !ok {
				b.Fatalf("job %s disappeared", id)
			}
			if info.Status.Terminal() {
				if info.Status != StatusDone {
					b.Fatalf("job %s: %s (%s)", id, info.Status, info.Error)
				}
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
}

func BenchmarkJobTracingOff(b *testing.B) { benchmarkJob(b, nil) }

func BenchmarkJobTracingOn(b *testing.B) { benchmarkJob(b, obs.New(4096, nil)) }
