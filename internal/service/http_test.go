package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testServer wires a manager with a fast stub runner behind the HTTP API.
func testServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	if cfg.Runner == nil {
		cfg.Runner = func(ctx context.Context, spec Spec) (*Result, error) {
			return &Result{Criteria: spec.Criteria, Total: 100, SliceCount: 42, SlicePct: 42}, nil
		}
	}
	m := New(cfg)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() { srv.Close(); m.Close() })
	return srv, m
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPSubmitStatusResult(t *testing.T) {
	srv, _ := testServer(t, Config{Workers: 2, QueueDepth: 8})

	resp := postJSON(t, srv.URL+"/jobs", Spec{Site: "amazon-desktop", Criteria: "pixels"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	var sub struct {
		ID string `json:"id"`
	}
	readJSON(t, resp, &sub)
	if sub.ID == "" {
		t.Fatal("no job id returned")
	}

	deadline := time.Now().Add(30 * time.Second)
	var info Info
	for {
		r, err := http.Get(srv.URL + "/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		readJSON(t, r, &info)
		if info.Status.Terminal() || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if info.Status != StatusDone {
		t.Fatalf("job = %s, want done", info.Status)
	}

	r, err := http.Get(srv.URL + "/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result = %d, want 200", r.StatusCode)
	}
	var res Result
	readJSON(t, r, &res)
	if res.SliceCount != 42 {
		t.Fatalf("result = %+v, want the stub's 42", res)
	}

	// Job listing includes it.
	r, err = http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []Info
	readJSON(t, r, &list)
	if len(list) != 1 || list[0].ID != sub.ID {
		t.Fatalf("list = %+v, want the one job", list)
	}
}

func TestHTTPBackpressureAndErrors(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv, m := testServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		Runner: func(ctx context.Context, spec Spec) (*Result, error) {
			<-block
			return &Result{}, nil
		},
	})

	resp := postJSON(t, srv.URL+"/jobs", Spec{Site: "maps"})
	var sub struct {
		ID string `json:"id"`
	}
	readJSON(t, resp, &sub)
	waitStatus(t, m, sub.ID, StatusRunning)
	resp = postJSON(t, srv.URL+"/jobs", Spec{Site: "maps"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d, want 202 (queued)", resp.StatusCode)
	}

	// Queue full: 429 with Retry-After and a JSON error body.
	resp = postJSON(t, srv.URL+"/jobs", Spec{Site: "maps"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After")
	}
	var e struct {
		Error string `json:"error"`
	}
	readJSON(t, resp, &e)
	if !strings.Contains(e.Error, "queue full") {
		t.Fatalf("429 body = %q, want queue-full error", e.Error)
	}

	// Bad requests.
	resp = postJSON(t, srv.URL+"/jobs", Spec{Site: "no-such-site"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad site = %d, want 400", resp.StatusCode)
	}
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json = %d, want 400", resp.StatusCode)
	}

	// Unknown job: 404. Unfinished result: 409.
	r, _ := http.Get(srv.URL + "/jobs/j999999")
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", r.StatusCode)
	}
	r, _ = http.Get(srv.URL + "/jobs/" + sub.ID + "/result")
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("result of running job = %d, want 409", r.StatusCode)
	}
}

func TestHTTPCancel(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv, m := testServer(t, Config{
		Workers:    1,
		QueueDepth: 4,
		Runner: func(ctx context.Context, spec Spec) (*Result, error) {
			<-block
			return &Result{}, nil
		},
	})
	resp := postJSON(t, srv.URL+"/jobs", Spec{Site: "bing"})
	var a struct {
		ID string `json:"id"`
	}
	readJSON(t, resp, &a)
	waitStatus(t, m, a.ID, StatusRunning)
	resp = postJSON(t, srv.URL+"/jobs", Spec{Site: "bing"})
	var b struct {
		ID string `json:"id"`
	}
	readJSON(t, resp, &b)

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+b.ID, nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d, want 200", r.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/jobs/nope", nil)
	r, _ = http.DefaultClient.Do(req)
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("cancel unknown = %d, want 409", r.StatusCode)
	}
}

// TestHTTPRejectsBadSubmissions is the table-driven sweep over invalid
// submissions: every row must be rejected synchronously with a 4xx and a
// JSON error body — none may reach a worker.
func TestHTTPRejectsBadSubmissions(t *testing.T) {
	ran := make(chan struct{}, 16)
	srv, _ := testServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, spec Spec) (*Result, error) {
			ran <- struct{}{}
			return &Result{}, nil
		},
	})
	cases := []struct {
		name        string
		path        string
		contentType string
		body        string
		wantCode    int
		wantErr     string
	}{
		{"negative scale", "/jobs", "application/json", `{"site":"maps","scale":-1}`, 400, "invalid scale"},
		{"tiny negative scale", "/jobs", "application/json", `{"site":"maps","scale":-0.001}`, 400, "invalid scale"},
		{"unknown site", "/jobs", "application/json", `{"site":"no-such-site"}`, 400, "unknown site"},
		{"unknown criteria", "/jobs", "application/json", `{"site":"maps","criteria":"wishes"}`, 400, "unknown criteria"},
		{"malformed json", "/jobs", "application/json", `{"site":`, 400, "bad job spec"},
		{"empty trace body", "/jobs/trace", "application/octet-stream", "", 400, "empty trace body"},
		{"non-trace bytes", "/jobs/trace", "application/octet-stream", "GIF89a definitely pixels", 400, "not a WSLT trace"},
		{"truncated magic", "/jobs/trace", "application/octet-stream", "WSL", 400, "not a WSLT trace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+tc.path, tc.contentType, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.wantCode {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.wantCode)
			}
			var e struct {
				Error string `json:"error"`
			}
			readJSON(t, resp, &e)
			if !strings.Contains(e.Error, tc.wantErr) {
				t.Errorf("error body %q does not mention %q", e.Error, tc.wantErr)
			}
		})
	}
	select {
	case <-ran:
		t.Fatal("a rejected submission reached the runner")
	default:
	}
}

func TestHTTPHealthzDuringDrain(t *testing.T) {
	block := make(chan struct{})
	m := New(Config{
		Workers:    1,
		QueueDepth: 4,
		Runner: func(ctx context.Context, spec Spec) (*Result, error) {
			<-block
			return &Result{}, nil
		},
	})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	// Healthy before drain.
	r, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d before drain, want 200", r.StatusCode)
	}

	id, err := m.Submit(Spec{Site: "maps"})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, m, id, StatusRunning)
	done := make(chan struct{})
	go func() { m.Close(); close(done) }()
	waitDraining(t, m)

	// Unhealthy while draining: 503 with an explicit status, so a balancer
	// stops routing here while the in-flight job finishes.
	r, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status string `json:"status"`
	}
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz = %d during drain, want 503", r.StatusCode)
	}
	readJSON(t, r, &h)
	if h.Status != "draining" {
		t.Errorf("healthz status = %q during drain, want draining", h.Status)
	}

	// New submissions are turned away with 503 as well.
	resp := postJSON(t, srv.URL+"/jobs", Spec{Site: "maps"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit during drain = %d, want 503", resp.StatusCode)
	}

	close(block)
	<-done
}

func waitDraining(t *testing.T, m *Manager) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !m.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for drain to begin")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	srv, m := testServer(t, Config{Workers: 3})
	r, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	readJSON(t, r, &h)
	if h.Status != "ok" || h.Workers != 3 {
		t.Fatalf("healthz = %+v", h)
	}

	resp := postJSON(t, srv.URL+"/jobs", Spec{Site: "maps"})
	var sub struct {
		ID string `json:"id"`
	}
	readJSON(t, resp, &sub)
	waitStatus(t, m, sub.ID, StatusDone)

	r, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	text := string(body)
	for _, want := range []string{"jobs_submitted 1", "jobs_done 1", "queue_wait_ms_count 1",
		"# TYPE jobs_submitted counter", "# TYPE slice_ms histogram", `slice_ms_bucket{le="+Inf"} 1`,
		"# TYPE slice_scan_ms histogram", "# TYPE slice_stitch_ms histogram",
		"# TYPE slice_tally_ms histogram", "# TYPE slice_segments gauge"} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, text)
		}
	}
	if ct := r.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Fatalf("metrics content type = %q, want the Prometheus 0.0.4 exposition type", ct)
	}
}

// TestHTTPQuarantineAndAdmission covers the robustness surface: the
// poisoned-job list endpoint and the 413 trace admission limit.
func TestHTTPQuarantineAndAdmission(t *testing.T) {
	srv, m := testServer(t, Config{
		Workers:       1,
		MaxTraceBytes: 16,
		Retry:         RetryPolicy{MaxAttempts: 5, BackoffBase: time.Nanosecond, BackoffMax: time.Nanosecond},
		Runner: func(ctx context.Context, spec Spec) (*Result, error) {
			if spec.Site == "bing" {
				panic("poisoned")
			}
			return &Result{}, nil
		},
	})

	// Empty quarantine list serves as JSON, not a 404 into GET /jobs/{id}.
	r, err := http.Get(srv.URL + "/jobs/quarantined")
	if err != nil {
		t.Fatal(err)
	}
	var empty []Info
	readJSON(t, r, &empty)
	if r.StatusCode != http.StatusOK || len(empty) != 0 {
		t.Fatalf("empty quarantine = %d %v, want 200 []", r.StatusCode, empty)
	}

	resp := postJSON(t, srv.URL+"/jobs", Spec{Site: "bing"})
	var sub struct {
		ID string `json:"id"`
	}
	readJSON(t, resp, &sub)
	deadline := time.Now().Add(30 * time.Second)
	for {
		info, _ := m.Info(sub.ID)
		if info.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for quarantine")
		}
		time.Sleep(time.Millisecond)
	}
	r, err = http.Get(srv.URL + "/jobs/quarantined")
	if err != nil {
		t.Fatal(err)
	}
	var quarantined []Info
	readJSON(t, r, &quarantined)
	if len(quarantined) != 1 || quarantined[0].ID != sub.ID || quarantined[0].Status != StatusQuarantined {
		t.Fatalf("quarantine list = %+v, want the panicked job", quarantined)
	}

	// A trace over the admission limit maps to 413, not 400.
	big := append([]byte("WSLT"), bytes.Repeat([]byte{0}, 64)...)
	resp, err = http.Post(srv.URL+"/jobs/trace", "application/octet-stream", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized trace = %d, want 413", resp.StatusCode)
	}
}
