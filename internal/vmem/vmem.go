// Package vmem implements the simulated virtual address space of the traced
// machine: sparse paged byte memory with real contents, region-based bump
// allocation, and address-range arithmetic.
//
// The profiler needs exact addresses (the paper's traces contain the precise
// memory locations every instruction touched, which is what lets the slicer
// sidestep the aliasing problem), and the simulated browser engine keeps its
// real data — DOM nodes, computed styles, JavaScript bytecode, display lists,
// pixels — in this memory so the dataflow the slicer observes is honest.
package vmem

import (
	"fmt"
	"sort"
)

// Addr is a virtual address. The machine has a 32-bit address space.
type Addr uint32

// PageSize is the granularity of backing allocation.
const PageSize = 4096

// Region bases. Each class of data gets its own megabyte-aligned region so
// trace dumps and slicer diagnostics are easy to read.
const (
	CodeBase  Addr = 0x0800_0000 // reserved; code is addressed by PC, not data address
	HeapBase  Addr = 0x1000_0000 // general engine heap (DOM, CSSOM, bytecode, ...)
	TileBase  Addr = 0x4000_0000 // rasterizer tile backing stores
	FrameBase Addr = 0x5000_0000 // compositor output framebuffer
	IOBase    Addr = 0x6000_0000 // network/IPC staging buffers
	StackBase Addr = 0x7000_0000 // per-thread stacks, 16 MiB apart
	StackSpan Addr = 0x0100_0000
)

// StackFor returns the stack region base for a thread.
func StackFor(tid uint8) Addr { return StackBase + Addr(tid)*StackSpan }

// Memory is a sparse paged byte store.
type Memory struct {
	pages map[uint32]*[PageSize]byte
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[PageSize]byte)}
}

func (m *Memory) page(a Addr, create bool) (*[PageSize]byte, int) {
	idx := uint32(a) / PageSize
	p := m.pages[idx]
	if p == nil && create {
		p = new([PageSize]byte)
		m.pages[idx] = p
	}
	return p, int(uint32(a) % PageSize)
}

// WriteBytes copies b into memory at a.
func (m *Memory) WriteBytes(a Addr, b []byte) {
	for len(b) > 0 {
		p, off := m.page(a, true)
		n := copy(p[off:], b)
		b = b[n:]
		a += Addr(n)
	}
}

// ReadBytes copies n bytes at a into a fresh slice. Unmapped bytes read as 0.
func (m *Memory) ReadBytes(a Addr, n int) []byte {
	out := make([]byte, n)
	dst := out
	for len(dst) > 0 {
		p, off := m.page(a, false)
		span := PageSize - off
		if span > len(dst) {
			span = len(dst)
		}
		if p != nil {
			copy(dst[:span], p[off:off+span])
		}
		dst = dst[span:]
		a += Addr(span)
	}
	return out
}

// ReadU64 reads size (1..8) bytes little-endian at a, zero-extended.
func (m *Memory) ReadU64(a Addr, size int) uint64 {
	if size < 1 || size > 8 {
		panic(fmt.Sprintf("vmem: bad read size %d", size))
	}
	var v uint64
	for i := 0; i < size; i++ {
		p, off := m.page(a+Addr(i), false)
		if p != nil {
			v |= uint64(p[off]) << (8 * i)
		}
	}
	return v
}

// WriteU64 writes the low size (1..8) bytes of v little-endian at a.
func (m *Memory) WriteU64(a Addr, size int, v uint64) {
	if size < 1 || size > 8 {
		panic(fmt.Sprintf("vmem: bad write size %d", size))
	}
	for i := 0; i < size; i++ {
		p, off := m.page(a+Addr(i), true)
		p[off] = byte(v >> (8 * i))
	}
}

// PageCount reports how many pages have been materialized.
func (m *Memory) PageCount() int { return len(m.pages) }

// Arena is a bump allocator carving a region of the address space.
type Arena struct {
	Name  string
	base  Addr
	next  Addr
	limit Addr
}

// NewArena creates an allocator over [base, base+size).
func NewArena(name string, base Addr, size Addr) *Arena {
	return &Arena{Name: name, base: base, next: base, limit: base + size}
}

// Alloc reserves n bytes aligned to 8 and returns the base address.
func (a *Arena) Alloc(n int) Addr {
	if n < 0 {
		panic("vmem: negative alloc")
	}
	sz := Addr((n + 7) &^ 7)
	if a.next+sz > a.limit || a.next+sz < a.next {
		panic(fmt.Sprintf("vmem: arena %q exhausted (want %d bytes, %d left)", a.Name, n, a.limit-a.next))
	}
	p := a.next
	a.next += sz
	return p
}

// Used reports how many bytes have been allocated.
func (a *Arena) Used() int { return int(a.next - a.base) }

// Base returns the arena's first address.
func (a *Arena) Base() Addr { return a.base }

// Range is a half-open address interval [Addr, Addr+Size).
type Range struct {
	Addr Addr
	Size uint32
}

// End returns the first address past the range.
func (r Range) End() Addr { return r.Addr + Addr(r.Size) }

// Contains reports whether a falls inside the range.
func (r Range) Contains(a Addr) bool { return a >= r.Addr && a < r.End() }

// Overlaps reports whether two ranges share any byte.
func (r Range) Overlaps(o Range) bool {
	return r.Size > 0 && o.Size > 0 && r.Addr < o.End() && o.Addr < r.End()
}

func (r Range) String() string {
	return fmt.Sprintf("[%#x,%#x)", uint32(r.Addr), uint32(r.End()))
}

// RangeSet is a normalized (sorted, disjoint, merged) set of ranges. It is
// used for syscall effect sets and slicing-criteria descriptions; the
// slicer's high-churn live-memory set uses a bitmap instead (package slicer).
type RangeSet struct {
	rs []Range
}

// Add inserts a range, merging as needed.
func (s *RangeSet) Add(r Range) {
	if r.Size == 0 {
		return
	}
	i := sort.Search(len(s.rs), func(i int) bool { return s.rs[i].End() >= r.Addr })
	j := i
	lo, hi := r.Addr, r.End()
	for j < len(s.rs) && s.rs[j].Addr <= hi {
		if s.rs[j].Addr < lo {
			lo = s.rs[j].Addr
		}
		if s.rs[j].End() > hi {
			hi = s.rs[j].End()
		}
		j++
	}
	merged := Range{lo, uint32(hi - lo)}
	s.rs = append(s.rs[:i], append([]Range{merged}, s.rs[j:]...)...)
}

// Contains reports whether every byte of r is in the set.
func (s *RangeSet) Contains(r Range) bool {
	if r.Size == 0 {
		return true
	}
	for _, e := range s.rs {
		if e.Addr <= r.Addr && r.End() <= e.End() {
			return true
		}
	}
	return false
}

// Overlaps reports whether any byte of r is in the set.
func (s *RangeSet) Overlaps(r Range) bool {
	i := sort.Search(len(s.rs), func(i int) bool { return s.rs[i].End() > r.Addr })
	return i < len(s.rs) && s.rs[i].Overlaps(r)
}

// Ranges returns the normalized contents.
func (s *RangeSet) Ranges() []Range { return s.rs }

// Bytes returns the total byte count covered.
func (s *RangeSet) Bytes() uint64 {
	var n uint64
	for _, r := range s.rs {
		n += uint64(r.Size)
	}
	return n
}

// Len returns the number of disjoint ranges.
func (s *RangeSet) Len() int { return len(s.rs) }
