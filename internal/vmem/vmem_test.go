package vmem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory()
	data := []byte("hello, web world")
	m.WriteBytes(0x1000_0000, data)
	got := m.ReadBytes(0x1000_0000, len(data))
	if !bytes.Equal(got, data) {
		t.Errorf("round trip = %q, want %q", got, data)
	}
}

func TestMemoryCrossPageWrite(t *testing.T) {
	m := NewMemory()
	a := Addr(PageSize - 3) // straddles a page boundary
	data := []byte{1, 2, 3, 4, 5, 6}
	m.WriteBytes(a, data)
	if got := m.ReadBytes(a, 6); !bytes.Equal(got, data) {
		t.Errorf("cross-page round trip = %v, want %v", got, data)
	}
	if m.PageCount() != 2 {
		t.Errorf("PageCount = %d, want 2", m.PageCount())
	}
}

func TestMemoryUnmappedReadsZero(t *testing.T) {
	m := NewMemory()
	got := m.ReadBytes(0xDEAD_0000, 8)
	if !bytes.Equal(got, make([]byte, 8)) {
		t.Errorf("unmapped read = %v, want zeros", got)
	}
	if v := m.ReadU64(0xDEAD_0000, 8); v != 0 {
		t.Errorf("unmapped ReadU64 = %d, want 0", v)
	}
}

func TestU64RoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(a uint32, v uint64, szRaw uint8) bool {
		sz := int(szRaw%8) + 1
		addr := Addr(a)
		m.WriteU64(addr, sz, v)
		got := m.ReadU64(addr, sz)
		want := v
		if sz < 8 {
			want = v & ((1 << (8 * uint(sz))) - 1)
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestU64LittleEndian(t *testing.T) {
	m := NewMemory()
	m.WriteU64(100, 4, 0x04030201)
	if got := m.ReadBytes(100, 4); !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("bytes = %v, want little-endian 1..4", got)
	}
}

func TestBadSizesPanic(t *testing.T) {
	m := NewMemory()
	for _, f := range []func(){
		func() { m.ReadU64(0, 0) },
		func() { m.ReadU64(0, 9) },
		func() { m.WriteU64(0, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for bad size")
				}
			}()
			f()
		}()
	}
}

func TestArenaAllocation(t *testing.T) {
	a := NewArena("test", HeapBase, 1024)
	p1 := a.Alloc(10)
	p2 := a.Alloc(1)
	if p1 != HeapBase {
		t.Errorf("first alloc = %#x, want %#x", p1, HeapBase)
	}
	if p2 != HeapBase+16 {
		t.Errorf("second alloc = %#x, want 8-aligned %#x", p2, HeapBase+16)
	}
	if a.Used() != 24 {
		t.Errorf("Used = %d, want 24", a.Used())
	}
	if a.Base() != HeapBase {
		t.Errorf("Base = %#x", a.Base())
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	a := NewArena("tiny", 0x1000, 16)
	a.Alloc(16)
	defer func() {
		if recover() == nil {
			t.Error("expected exhaustion panic")
		}
	}()
	a.Alloc(1)
}

func TestStackForDistinct(t *testing.T) {
	seen := map[Addr]bool{}
	for tid := uint8(0); tid < 16; tid++ {
		b := StackFor(tid)
		if seen[b] {
			t.Errorf("duplicate stack base %#x for tid %d", b, tid)
		}
		seen[b] = true
	}
}

func TestRangeBasics(t *testing.T) {
	r := Range{100, 10}
	if r.End() != 110 {
		t.Errorf("End = %d", r.End())
	}
	if !r.Contains(100) || !r.Contains(109) || r.Contains(110) || r.Contains(99) {
		t.Error("Contains boundaries wrong")
	}
	if !r.Overlaps(Range{109, 5}) || r.Overlaps(Range{110, 5}) || r.Overlaps(Range{90, 10}) {
		t.Error("Overlaps boundaries wrong")
	}
	if r.Overlaps(Range{100, 0}) {
		t.Error("empty range should not overlap")
	}
	if r.String() == "" {
		t.Error("Range should print")
	}
}

func TestRangeSetMerging(t *testing.T) {
	var s RangeSet
	s.Add(Range{10, 5}) // [10,15)
	s.Add(Range{20, 5}) // [20,25)
	s.Add(Range{15, 5}) // joins the two: [10,25)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 merged range; got %v", s.Len(), s.Ranges())
	}
	if s.Bytes() != 15 {
		t.Errorf("Bytes = %d, want 15", s.Bytes())
	}
	if !s.Contains(Range{10, 15}) {
		t.Error("should contain the merged range")
	}
	if s.Contains(Range{10, 16}) {
		t.Error("should not contain beyond the merge")
	}
	if !s.Overlaps(Range{24, 10}) || s.Overlaps(Range{25, 10}) {
		t.Error("Overlaps boundaries wrong")
	}
}

func TestRangeSetDisjointAndEmpty(t *testing.T) {
	var s RangeSet
	s.Add(Range{100, 0}) // ignored
	if s.Len() != 0 {
		t.Error("empty range should be ignored")
	}
	s.Add(Range{50, 2})
	s.Add(Range{10, 2})
	s.Add(Range{30, 2})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	rs := s.Ranges()
	for i := 1; i < len(rs); i++ {
		if rs[i-1].End() > rs[i].Addr {
			t.Errorf("ranges not sorted/disjoint: %v", rs)
		}
	}
}

func TestRangeSetPropertyNormalized(t *testing.T) {
	// Property: after arbitrary adds, ranges are sorted, disjoint,
	// non-adjacent-mergeable, and every added byte is covered.
	f := func(raw []uint16) bool {
		var s RangeSet
		var added []Range
		for i := 0; i+1 < len(raw); i += 2 {
			r := Range{Addr(raw[i]), uint32(raw[i+1] % 64)}
			s.Add(r)
			added = append(added, r)
		}
		rs := s.Ranges()
		for i := range rs {
			if rs[i].Size == 0 {
				return false
			}
			if i > 0 && rs[i-1].End() >= rs[i].Addr {
				return false // overlapping or adjacent (should have merged)
			}
		}
		for _, r := range added {
			if r.Size > 0 && !s.Contains(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
