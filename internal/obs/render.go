package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteJSONL writes one span per line — the /debug/spans wire format.
func WriteJSONL(w io.Writer, spans []SpanData) error {
	enc := json.NewEncoder(w)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return nil
}

// node is one rendered tree position.
type node struct {
	span     *SpanData
	children []*node
}

// RenderTree draws the span tree of one or more traces as indented text
// with durations, percent-of-trace (wall-clock extent), and self-time
// percentages — the per-request "Table II": how much of the wall clock
// each phase consumed and how much of that was its own work rather than
// its children's.
// Spans whose parent is missing (evicted from the ring, or recorded on a
// node whose spans were unreachable) render as top-level, so a partial
// trace still draws.
func RenderTree(w io.Writer, spans []SpanData) {
	if len(spans) == 0 {
		fmt.Fprintln(w, "no spans recorded")
		return
	}
	byTrace := make(map[string][]SpanData)
	var order []string
	for _, s := range spans {
		if _, ok := byTrace[s.Trace]; !ok {
			order = append(order, s.Trace)
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	sort.Strings(order)
	for i, tr := range order {
		if i > 0 {
			fmt.Fprintln(w)
		}
		renderTrace(w, tr, byTrace[tr])
	}
}

func renderTrace(w io.Writer, traceID string, spans []SpanData) {
	nodes := make(map[string]*node, len(spans))
	for i := range spans {
		nodes[spans[i].ID] = &node{span: &spans[i]}
	}
	var roots []*node
	for i := range spans {
		n := nodes[spans[i].ID]
		if p, ok := nodes[spans[i].Parent]; ok && spans[i].Parent != spans[i].ID {
			p.children = append(p.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	// Percentages are of the trace's wall-clock extent, not the root span's
	// duration: in a merged cross-node trace the root (the coordinator's
	// route span) ends at the submission ack, long before the worker's job
	// span does, and percent-of-root would read as thousands.
	var minStart, maxEnd int64
	for i := range spans {
		end := spans[i].StartNs + int64(spans[i].DurMs*float64(time.Millisecond))
		if i == 0 || spans[i].StartNs < minStart {
			minStart = spans[i].StartNs
		}
		if i == 0 || end > maxEnd {
			maxEnd = end
		}
	}
	total := float64(maxEnd-minStart) / float64(time.Millisecond)
	fmt.Fprintf(w, "trace %s — %d span(s), %.1fms\n", traceID, len(spans), total)
	for i, r := range roots {
		renderNode(w, r, "", i == len(roots)-1, true, total)
	}
}

func sortNodes(ns []*node) {
	sort.Slice(ns, func(i, j int) bool { return less(ns[i].span, ns[j].span) })
	for _, n := range ns {
		sortNodes(n.children)
	}
}

// renderNode prints one span line plus its events and children. Self time
// is the span's duration minus its direct children's (clamped at zero:
// synthesized phase spans can overlap their parent's bookkeeping).
func renderNode(w io.Writer, n *node, prefix string, last, isRoot bool, rootDur float64) {
	childSum := 0.0
	for _, c := range n.children {
		childSum += c.span.DurMs
	}
	self := n.span.DurMs - childSum
	if self < 0 {
		self = 0
	}
	branch, childPrefix := "├─ ", prefix+"│  "
	if last {
		branch, childPrefix = "└─ ", prefix+"   "
	}
	head := prefix + branch
	if isRoot {
		head, childPrefix = "", ""
	}
	line := fmt.Sprintf("%s%-*s %9.1fms  %5.1f%%", head, nameWidth(head, n.span.Name), n.span.Name, n.span.DurMs, pct(n.span.DurMs, rootDur))
	if len(n.children) > 0 {
		line += fmt.Sprintf("  self %5.1f%%", pct(self, rootDur))
	}
	if a := attrLine(n.span.Attrs); a != "" {
		line += "  " + a
	}
	fmt.Fprintln(w, line)
	for _, ev := range n.span.Events {
		evLine := childPrefix + "• " + ev.Name
		if a := attrLine(ev.Attrs); a != "" {
			evLine += "  " + a
		}
		fmt.Fprintln(w, evLine)
	}
	for i, c := range n.children {
		renderNode(w, c, childPrefix, i == len(n.children)-1, false, rootDur)
	}
}

// nameWidth pads names to a common column without letting deep prefixes
// push the numbers off-screen.
func nameWidth(head, name string) int {
	w := 34 - len([]rune(head))
	if w < len(name) {
		w = len(name)
	}
	if w < 1 {
		w = 1
	}
	return w
}

func pct(part, whole float64) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * part / whole
}

func attrLine(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		v := a.V
		if strings.ContainsAny(v, " \t\"") {
			v = fmt.Sprintf("%q", v)
		}
		parts[i] = a.K + "=" + v
	}
	return strings.Join(parts, " ")
}
