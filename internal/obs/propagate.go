package obs

import (
	"context"
	"net/http"
	"strings"
)

// Header is the propagation header name, per the W3C Trace Context spec.
const Header = "traceparent"

// Traceparent renders a context as a W3C traceparent value:
// version "00", 32-hex trace ID, 16-hex span ID, flags "01" (sampled).
func Traceparent(sc SpanContext) string {
	return "00-" + sc.Trace + "-" + sc.Span + "-01"
}

// ParseTraceparent parses a traceparent value. It accepts any version
// (per spec, unknown versions are parsed as version 00 if the tail fits)
// and rejects malformed or all-zero IDs.
func ParseTraceparent(v string) (SpanContext, bool) {
	parts := strings.Split(v, "-")
	if len(parts) < 4 {
		return SpanContext{}, false
	}
	ver, tr, sp := parts[0], parts[1], parts[2]
	if len(ver) != 2 || !isHex(ver) || ver == "ff" {
		return SpanContext{}, false
	}
	if len(tr) != 32 || !isHex(tr) || tr == strings.Repeat("0", 32) {
		return SpanContext{}, false
	}
	if len(sp) != 16 || !isHex(sp) || sp == strings.Repeat("0", 16) {
		return SpanContext{}, false
	}
	return SpanContext{Trace: tr, Span: sp}, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Inject writes the span's context into an outgoing header set. Nil-safe:
// a nil span injects nothing.
func Inject(h http.Header, s *Span) {
	if s == nil {
		return
	}
	h.Set(Header, Traceparent(s.Context()))
}

// InjectContext writes an explicit SpanContext (e.g. one carried on a job
// spec) into an outgoing header set; invalid contexts inject nothing.
func InjectContext(h http.Header, sc SpanContext) {
	if !sc.Valid() {
		return
	}
	h.Set(Header, Traceparent(sc))
}

// Extract reads the propagated context from incoming headers.
func Extract(h http.Header) (SpanContext, bool) {
	v := h.Get(Header)
	if v == "" {
		return SpanContext{}, false
	}
	return ParseTraceparent(v)
}

type ctxKey struct{}

// ContextWith returns ctx carrying the span (nil span returns ctx as-is).
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
