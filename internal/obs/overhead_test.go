package obs

import (
	"testing"
	"time"
)

// The span-recording overhead gate: starting, annotating, and ending a
// span must stay within a fixed allocation ceiling, and the disabled
// (nil-tracer) path must allocate nothing at all. These are hard bounds —
// tracing rides every job the service runs, so regressions here tax every
// request.
const (
	// allocsPerSpan bounds Root+Set+End: the Span object, the two minted
	// IDs, the attrs slice, and the clock's time.Time boxing.
	allocsPerSpan = 8
	// allocsPerChild bounds Child+End (one ID, no attrs).
	allocsPerChild = 4
)

func TestSpanAllocationCeiling(t *testing.T) {
	tr := New(1024, newFakeClock(time.Microsecond))
	got := testing.AllocsPerRun(1000, func() {
		s := tr.Root("job")
		s.Set("criteria", "pixels")
		s.End()
	})
	if got > allocsPerSpan {
		t.Fatalf("Root+Set+End allocates %.1f/op, ceiling %d", got, allocsPerSpan)
	}

	parent := tr.Root("parent")
	got = testing.AllocsPerRun(1000, func() {
		c := parent.Child("phase")
		c.End()
	})
	if got > allocsPerChild {
		t.Fatalf("Child+End allocates %.1f/op, ceiling %d", got, allocsPerChild)
	}
}

func TestDisabledTracingAllocatesNothing(t *testing.T) {
	var tr *Tracer // tracing off
	got := testing.AllocsPerRun(1000, func() {
		s := tr.Root("job")
		s.Set("criteria", "pixels")
		c := s.Child("phase")
		c.Event("e")
		c.End()
		s.End()
	})
	if got != 0 {
		t.Fatalf("disabled path allocates %.1f/op, want 0", got)
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	tr := New(4096, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Root("job")
		s.End()
	}
}

func BenchmarkSpanChildWithAttrs(b *testing.B) {
	tr := New(4096, nil)
	root := tr.Root("job")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := root.Child("phase")
		c.Set("hit", "true")
		c.End()
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Root("job")
		s.Set("k", "v")
		s.End()
	}
}
