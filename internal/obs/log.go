package obs

import (
	"context"
	"log/slog"
)

// nopHandler drops every record before it is formatted. (slog gained a
// stock DiscardHandler only after the Go version this module pins, and
// a TextHandler on io.Discard still pays for rendering.)
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// NopLogger returns a logger that discards everything, so components can
// wire structured logging unconditionally and treat "no logger configured"
// as a logger that costs one Enabled check per call.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }
