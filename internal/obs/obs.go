// Package obs is the observability layer of the slicing service:
// hierarchical spans with W3C-traceparent-style context propagation, so a
// coordinator-routed job yields one causally-linked trace spanning the
// router, the owner's queue, the worker, the profiler's store lookups,
// and the backward pass's scan/stitch/tally phases — a per-request
// "Table II" for the service itself.
//
// The design goals mirror the paper's instrumentation discipline: cheap
// (a handful of allocations per span, zero when tracing is disabled),
// deterministic (span IDs come from a seedable splitmix64 sequence on an
// injectable clock, so tests replay identical traces), and bounded (spans
// land in a fixed-size lock-free ring buffer that overwrites the oldest
// entries instead of growing).
//
// A nil *Tracer and a nil *Span are both valid and inert: every method is
// nil-safe, so call sites are sprinkled unconditionally and the disabled
// path costs one pointer test.
package obs

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts time so spans are testable on a fake clock. It is
// satisfied by service.Clock (and by anything exposing Now).
type Clock interface{ Now() time.Time }

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// Attr is one key/value annotation on a span or event. Values are strings
// on purpose: spans are a wire format (JSONL, /jobs/{id}/trace) first and
// an in-memory structure second.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Event is a point-in-time annotation within a span (a retry, a
// backpressure response, a breaker trip).
type Event struct {
	Name  string `json:"name"`
	AtNs  int64  `json:"at_ns"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// SpanData is the exported form of a finished (or synthesized) span — the
// unit the ring buffer stores, the JSON endpoints serve, and the renderer
// draws. IDs are lower-hex strings: 32 chars of trace ID, 16 of span ID,
// matching the traceparent field widths.
type SpanData struct {
	Trace   string  `json:"trace"`
	ID      string  `json:"span"`
	Parent  string  `json:"parent,omitempty"` // "" for a root span
	Name    string  `json:"name"`
	StartNs int64   `json:"start_ns"`
	DurMs   float64 `json:"dur_ms"`
	Attrs   []Attr  `json:"attrs,omitempty"`
	Events  []Event `json:"events,omitempty"`
}

// SpanContext is the propagated identity of a span: enough to parent a
// child on another node. The zero value is "no context".
type SpanContext struct {
	Trace string
	Span  string
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.Trace != "" && sc.Span != "" }

// Span is one in-flight span. It is created by Tracer.Root / Tracer.Remote
// / Span.Child, annotated with Set/Event, and published into the tracer's
// ring by End. After End it is immutable; further mutation calls are
// no-ops. All methods are safe on a nil receiver.
type Span struct {
	t  *Tracer
	mu sync.Mutex
	d  SpanData
	// ended guards against mutate-after-publish: the ring hands out *d to
	// concurrent readers, so d must be frozen once published.
	ended bool
}

// Tracer issues spans and records finished ones in a bounded lock-free
// ring buffer (oldest entries are overwritten). The zero capacity rounds
// up to a small default; capacities round up to a power of two.
type Tracer struct {
	clock Clock
	// idState seeds the splitmix64 ID sequence; each ID advances it by the
	// golden-ratio increment. Seedable for deterministic tests; the default
	// is random so two nodes of one cluster never collide span IDs within a
	// shared trace.
	idState atomic.Uint64
	ring    []atomic.Pointer[SpanData]
	head    atomic.Uint64
	mask    uint64
}

// DefaultCapacity is the ring size used when New is given cap <= 0.
const DefaultCapacity = 4096

// New returns a tracer whose ring holds capacity spans (rounded up to a
// power of two). A nil clock uses the system clock.
func New(capacity int, clock Clock) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	if clock == nil {
		clock = systemClock{}
	}
	t := &Tracer{clock: clock, ring: make([]atomic.Pointer[SpanData], size), mask: uint64(size - 1)}
	t.idState.Store(rand.Uint64())
	return t
}

// Seed pins the ID sequence for deterministic tests.
func (t *Tracer) Seed(s uint64) { t.idState.Store(s) }

// nextID draws the next splitmix64 output. Lock-free: the state advances
// atomically, the mix is pure.
func (t *Tracer) nextID() uint64 {
	x := t.idState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

const hexDigits = "0123456789abcdef"

// hexID renders n 64-bit words as one lower-hex string in a single
// allocation (hot path: every span mints at least one ID).
func hexID(words ...uint64) string {
	b := make([]byte, 16*len(words))
	for w, x := range words {
		for i := 15; i >= 0; i-- {
			b[w*16+i] = hexDigits[x&0xf]
			x >>= 4
		}
	}
	return string(b)
}

// Root starts a span at the top of a brand-new trace.
func (t *Tracer) Root(name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(hexID(t.nextID(), t.nextID()), "", name)
}

// Remote starts a span whose parent lives on another node (or in another
// component), identified by a propagated SpanContext. An invalid context
// degrades to Root.
func (t *Tracer) Remote(sc SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	if !sc.Valid() {
		return t.Root(name)
	}
	return t.start(sc.Trace, sc.Span, name)
}

func (t *Tracer) start(trace, parent, name string) *Span {
	s := &Span{t: t}
	s.d = SpanData{
		Trace:   trace,
		ID:      hexID(t.nextID()),
		Parent:  parent,
		Name:    name,
		StartNs: t.clock.Now().UnixNano(),
	}
	return s
}

// publish commits a finished span to the ring, overwriting the oldest
// entry when full. Lock-free: one atomic fetch-add claims a slot, one
// atomic store fills it.
func (t *Tracer) publish(d *SpanData) {
	i := t.head.Add(1) - 1
	t.ring[i&t.mask].Store(d)
}

// Snapshot copies every span currently in the ring, oldest-first by start
// time. The copies are safe to mutate.
func (t *Tracer) Snapshot() []SpanData {
	if t == nil {
		return nil
	}
	out := make([]SpanData, 0, len(t.ring))
	for i := range t.ring {
		if d := t.ring[i].Load(); d != nil {
			out = append(out, *d)
		}
	}
	sortSpans(out)
	return out
}

// ForTrace returns the recorded spans of one trace, oldest-first. Spans
// evicted by the ring are simply absent — the ring bounds memory, not
// history.
func (t *Tracer) ForTrace(traceID string) []SpanData {
	if t == nil || traceID == "" {
		return nil
	}
	var out []SpanData
	for i := range t.ring {
		if d := t.ring[i].Load(); d != nil && d.Trace == traceID {
			out = append(out, *d)
		}
	}
	sortSpans(out)
	return out
}

// Sort orders spans oldest-first (start time, then span ID) — the order
// Snapshot and ForTrace already return; callers merging spans from
// several tracers (the coordinator joining its own spans with a worker's)
// use it to restore the invariant.
func Sort(spans []SpanData) { sortSpans(spans) }

func sortSpans(spans []SpanData) {
	// Insertion sort: snapshots are small (ring-bounded) and usually almost
	// sorted already; avoids pulling in sort's interface allocations.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && less(&spans[j], &spans[j-1]); j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}

func less(a, b *SpanData) bool {
	if a.StartNs != b.StartNs {
		return a.StartNs < b.StartNs
	}
	return a.ID < b.ID
}

// Child starts a sub-span of s in the same trace.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.start(s.d.Trace, s.d.ID, name)
}

// ChildAt records an already-elapsed sub-span with explicit bounds and
// publishes it immediately. The slicer's scan/stitch/tally phases are
// synthesized this way from PassStats after the pass finishes, so the
// hot loop itself carries no tracing code.
func (s *Span) ChildAt(name string, start, end time.Time, attrs ...Attr) {
	if s == nil {
		return
	}
	d := &SpanData{
		Trace:   s.d.Trace,
		ID:      hexID(s.t.nextID()),
		Parent:  s.d.ID,
		Name:    name,
		StartNs: start.UnixNano(),
		DurMs:   float64(end.Sub(start)) / float64(time.Millisecond),
		Attrs:   attrs,
	}
	s.t.publish(d)
}

// Set annotates the span, returning it for chaining.
func (s *Span) Set(key, val string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if !s.ended {
		s.d.Attrs = append(s.d.Attrs, Attr{K: key, V: val})
	}
	s.mu.Unlock()
	return s
}

// Event records a point-in-time annotation at the tracer's current clock.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	at := s.t.clock.Now().UnixNano()
	s.mu.Lock()
	if !s.ended {
		s.d.Events = append(s.d.Events, Event{Name: name, AtNs: at, Attrs: attrs})
	}
	s.mu.Unlock()
}

// End stamps the duration and publishes the span to the ring. Safe to call
// more than once; only the first call publishes.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.t.clock.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.d.DurMs = float64(now.UnixNano()-s.d.StartNs) / float64(time.Millisecond)
	d := &s.d
	s.mu.Unlock()
	s.t.publish(d)
}

// EndErr annotates the span with the error (when non-nil) and ends it.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.Set("error", err.Error())
	}
	s.End()
}

// Context returns the span's propagation identity (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.d.Trace, Span: s.d.ID}
}

// TraceID returns the span's trace ID ("" for nil spans).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.d.Trace
}
