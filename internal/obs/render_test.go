package obs

import (
	"strings"
	"testing"
	"time"
)

func renderString(spans []SpanData) string {
	var sb strings.Builder
	RenderTree(&sb, spans)
	return sb.String()
}

func TestRenderTreeDrawsHierarchyAndSelfTime(t *testing.T) {
	t0 := time.Unix(3000, 0)
	ms := func(d int) int64 { return t0.Add(time.Duration(d) * time.Millisecond).UnixNano() }
	spans := []SpanData{
		{Trace: "t1", ID: "aaaa", Name: "job", StartNs: ms(0), DurMs: 100,
			Attrs: []Attr{{K: "site", V: "maps"}}},
		{Trace: "t1", ID: "bbbb", Parent: "aaaa", Name: "queue.wait", StartNs: ms(0), DurMs: 10},
		{Trace: "t1", ID: "cccc", Parent: "aaaa", Name: "render", StartNs: ms(10), DurMs: 30,
			Events: []Event{{Name: "retry", AtNs: ms(12), Attrs: []Attr{{K: "attempt", V: "2"}}}}},
		{Trace: "t1", ID: "dddd", Parent: "aaaa", Name: "slice", StartNs: ms(40), DurMs: 50},
		{Trace: "t1", ID: "eeee", Parent: "dddd", Name: "slice.scan", StartNs: ms(40), DurMs: 45},
	}
	out := renderString(spans)
	for _, want := range []string{
		"trace t1 — 5 span(s), 100.0ms",
		"job", "queue.wait", "render", "slice.scan",
		"site=maps",
		"• retry  attempt=2",
		"self", // self-time column present on spans with children
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Children indent under their parent: slice.scan must appear after and
	// deeper than slice.
	si := strings.Index(out, "slice ")
	if si < 0 {
		si = strings.Index(out, "slice  ")
	}
	sc := strings.Index(out, "slice.scan")
	if sc < si {
		t.Fatalf("child rendered before parent:\n%s", out)
	}
	// Percent-of-root: the slice span is 50% of the 100ms root.
	if !strings.Contains(out, "50.0%") {
		t.Fatalf("render missing 50.0%% for slice:\n%s", out)
	}
}

func TestRenderTreeHandlesOrphansAndEmpty(t *testing.T) {
	if out := renderString(nil); !strings.Contains(out, "no spans") {
		t.Fatalf("empty render = %q", out)
	}
	// An orphan (parent evicted from the ring) renders as a top-level span
	// rather than vanishing.
	spans := []SpanData{
		{Trace: "t2", ID: "xxxx", Parent: "gone", Name: "stranded", DurMs: 5},
	}
	out := renderString(spans)
	if !strings.Contains(out, "stranded") {
		t.Fatalf("orphan missing:\n%s", out)
	}
}

func TestRenderTreeSelfParentCycleDoesNotHang(t *testing.T) {
	spans := []SpanData{
		{Trace: "t3", ID: "zzzz", Parent: "zzzz", Name: "cycle", DurMs: 1},
	}
	out := renderString(spans) // must terminate
	if !strings.Contains(out, "cycle") {
		t.Fatalf("self-parent span missing:\n%s", out)
	}
}

func TestRenderTreeGroupsMultipleTraces(t *testing.T) {
	spans := []SpanData{
		{Trace: "tb", ID: "1111", Name: "b", DurMs: 1},
		{Trace: "ta", ID: "2222", Name: "a", DurMs: 1},
	}
	out := renderString(spans)
	ia, ib := strings.Index(out, "trace ta"), strings.Index(out, "trace tb")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("traces not grouped/sorted:\n%s", out)
	}
}
