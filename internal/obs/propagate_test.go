package obs

import (
	"context"
	"net/http"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: "4bf92f3577b34da6a3ce929d0e0e4736", Span: "00f067aa0ba902b7"}
	v := Traceparent(sc)
	if v != "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01" {
		t.Fatalf("traceparent = %q", v)
	}
	got, ok := ParseTraceparent(v)
	if !ok || got != sc {
		t.Fatalf("round trip = %+v, ok=%t", got, ok)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // no flags
		"00-short-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-short-01",
		"00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01", // all-zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-" + strings.Repeat("0", 16) + "-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // non-hex version
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", // non-hex trace
		"xx yy",
	}
	for _, v := range bad {
		if sc, ok := ParseTraceparent(v); ok {
			t.Errorf("ParseTraceparent(%q) accepted: %+v", v, sc)
		}
	}
}

func TestParseTraceparentAcceptsFutureVersionsAndTails(t *testing.T) {
	// Per W3C, an unknown (non-ff) version with a longer tail still parses.
	v := "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"
	sc, ok := ParseTraceparent(v)
	if !ok || sc.Trace != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("future version rejected: %+v ok=%t", sc, ok)
	}
}

func TestInjectExtractHeaders(t *testing.T) {
	tr := New(16, nil)
	s := tr.Root("route")
	h := http.Header{}
	Inject(h, s)
	sc, ok := Extract(h)
	if !ok || sc != s.Context() {
		t.Fatalf("extract = %+v ok=%t, want %+v", sc, ok, s.Context())
	}
	if _, ok := Extract(http.Header{}); ok {
		t.Fatal("extract from empty headers succeeded")
	}
	h2 := http.Header{}
	InjectContext(h2, SpanContext{})
	if len(h2) != 0 {
		t.Fatal("invalid context injected a header")
	}
	InjectContext(h2, sc)
	if got, ok := Extract(h2); !ok || got != sc {
		t.Fatalf("InjectContext round trip = %+v ok=%t", got, ok)
	}
}

func TestContextCarriesSpan(t *testing.T) {
	tr := New(16, nil)
	s := tr.Root("job")
	ctx := ContextWith(context.Background(), s)
	if FromContext(ctx) != s {
		t.Fatal("span lost in context")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context produced a span")
	}
	if got := ContextWith(context.Background(), nil); FromContext(got) != nil {
		t.Fatal("nil span stored in context")
	}
}
