package obs

import (
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic Clock: every Now() advances by step.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0), step: step}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

func TestSpanLifecycleAndParentage(t *testing.T) {
	tr := New(64, newFakeClock(time.Millisecond))
	tr.Seed(1)

	root := tr.Root("job")
	root.Set("site", "maps")
	child := root.Child("render")
	child.Event("styled", Attr{K: "rules", V: "12"})
	child.End()
	root.End()

	spans := tr.ForTrace(root.TraceID())
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Oldest-first by start: root started before child.
	if spans[0].Name != "job" || spans[1].Name != "render" {
		t.Fatalf("order = %s, %s", spans[0].Name, spans[1].Name)
	}
	r, c := spans[0], spans[1]
	if r.Parent != "" {
		t.Fatalf("root has parent %q", r.Parent)
	}
	if c.Parent != r.ID {
		t.Fatalf("child parent %q != root id %q", c.Parent, r.ID)
	}
	if c.Trace != r.Trace || len(r.Trace) != 32 || len(r.ID) != 16 {
		t.Fatalf("id shapes wrong: trace=%q span=%q", r.Trace, r.ID)
	}
	if r.DurMs <= 0 || c.DurMs <= 0 {
		t.Fatalf("durations not stamped: root=%v child=%v", r.DurMs, c.DurMs)
	}
	if len(r.Attrs) != 1 || r.Attrs[0] != (Attr{K: "site", V: "maps"}) {
		t.Fatalf("root attrs = %v", r.Attrs)
	}
	if len(c.Events) != 1 || c.Events[0].Name != "styled" {
		t.Fatalf("child events = %v", c.Events)
	}
}

func TestSpanIDsDeterministicUnderSeed(t *testing.T) {
	mk := func() []string {
		tr := New(16, newFakeClock(time.Millisecond))
		tr.Seed(42)
		a := tr.Root("a")
		b := a.Child("b")
		b.End()
		a.End()
		return []string{a.TraceID(), a.Context().Span, b.Context().Span}
	}
	x, y := mk(), mk()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("id %d differs across identically-seeded tracers: %q vs %q", i, x[i], y[i])
		}
	}
}

func TestRingBoundedOverwritesOldest(t *testing.T) {
	tr := New(4, newFakeClock(time.Millisecond)) // power of two already
	tr.Seed(7)
	for i := 0; i < 10; i++ {
		tr.Root("s").End()
	}
	got := tr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("ring holds %d spans, want exactly 4", len(got))
	}
	// The survivors must be the newest four (starts strictly increasing on
	// the fake clock).
	for i := 1; i < len(got); i++ {
		if got[i].StartNs <= got[i-1].StartNs {
			t.Fatalf("snapshot not oldest-first: %v", got)
		}
	}
}

func TestMutationAfterEndIsDropped(t *testing.T) {
	tr := New(16, newFakeClock(time.Millisecond))
	s := tr.Root("s")
	s.End()
	s.Set("late", "1")
	s.Event("late-event")
	s.End() // double End must not re-publish
	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("double End published twice: %d spans", len(spans))
	}
	if len(spans[0].Attrs) != 0 || len(spans[0].Events) != 0 {
		t.Fatalf("post-End mutation leaked: %+v", spans[0])
	}
}

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	s := tr.Root("x")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	// All nil-span operations must be no-ops, not panics.
	s.Set("k", "v").Event("e")
	s.Child("c").End()
	s.ChildAt("p", time.Now(), time.Now())
	s.EndErr(nil)
	s.End()
	if s.TraceID() != "" || s.Context().Valid() {
		t.Fatal("nil span leaked identity")
	}
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v", got)
	}
	if got := tr.ForTrace("abc"); got != nil {
		t.Fatalf("nil tracer ForTrace = %v", got)
	}
	h := http.Header{}
	Inject(h, nil)
	if len(h) != 0 {
		t.Fatal("nil span injected a header")
	}
}

func TestChildAtSynthesizesPhaseSpans(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	tr := New(16, clk)
	tr.Seed(3)
	root := tr.Root("slice")
	t0 := time.Unix(2000, 0)
	root.ChildAt("slice.scan", t0, t0.Add(40*time.Millisecond), Attr{K: "segments", V: "4"})
	root.ChildAt("slice.stitch", t0.Add(40*time.Millisecond), t0.Add(50*time.Millisecond))
	root.End()
	spans := tr.ForTrace(root.TraceID())
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	var scan *SpanData
	for i := range spans {
		if spans[i].Name == "slice.scan" {
			scan = &spans[i]
		}
	}
	if scan == nil {
		t.Fatal("no slice.scan span")
	}
	if scan.DurMs != 40 {
		t.Fatalf("scan dur = %v, want 40", scan.DurMs)
	}
	if scan.Parent != root.Context().Span {
		t.Fatal("synthesized span not parented under root")
	}
}

func TestConcurrentSpansUnderRace(t *testing.T) {
	tr := New(128, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := tr.Root("g")
				s.Set("i", "x")
				c := s.Child("c")
				c.Event("e")
				c.End()
				s.End()
				tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Snapshot()); got != 128 {
		t.Fatalf("ring holds %d spans after saturation, want 128", got)
	}
}

func TestRemoteParentsAcrossTracers(t *testing.T) {
	// Two tracers standing in for two nodes: the worker's span must join
	// the coordinator's trace with correct parentage.
	co := New(16, newFakeClock(time.Millisecond))
	co.Seed(1)
	wk := New(16, newFakeClock(time.Millisecond))
	wk.Seed(99)

	route := co.Root("route")
	h := http.Header{}
	Inject(h, route)
	sc, ok := Extract(h)
	if !ok {
		t.Fatal("extract failed")
	}
	job := wk.Remote(sc, "job")
	job.End()
	route.End()

	if job.TraceID() != route.TraceID() {
		t.Fatalf("trace split across the hop: %q vs %q", job.TraceID(), route.TraceID())
	}
	ws := wk.ForTrace(route.TraceID())
	if len(ws) != 1 || ws[0].Parent != route.Context().Span {
		t.Fatalf("worker span not parented under route: %+v", ws)
	}
}

func TestRemoteInvalidContextDegradesToRoot(t *testing.T) {
	tr := New(16, nil)
	s := tr.Remote(SpanContext{}, "job")
	if s.Context().Trace == "" {
		t.Fatal("no trace minted")
	}
	s.End()
	if got := tr.Snapshot(); len(got) != 1 || got[0].Parent != "" {
		t.Fatalf("degraded span not a root: %+v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := New(16, newFakeClock(time.Millisecond))
	tr.Seed(5)
	s := tr.Root("job")
	s.Set("k", "v")
	s.End()
	var sb strings.Builder
	if err := WriteJSONL(&sb, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d JSONL lines, want 1", len(lines))
	}
	if !strings.Contains(lines[0], `"name":"job"`) || !strings.Contains(lines[0], `"k":"k"`) {
		t.Fatalf("line = %s", lines[0])
	}
}
