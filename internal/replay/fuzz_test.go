package replay

// FuzzReplayAgreesWithSlice is the end-to-end property under fuzzing: for an
// arbitrary seed, the property-site generator builds a mini-site through the
// real browser pipeline, the optimized slicer computes pixel/syscall/union
// slices, and every slice must replay byte-for-byte and satisfy the
// structural invariants. Seeded with the golden corpus's property seeds
// (examples/golden/corpus.json) so the committed ground truth is always in
// the fuzzer's starting population.

import (
	"testing"

	"webslice/internal/browser"
	"webslice/internal/cdg"
	"webslice/internal/cfg"
	"webslice/internal/sites"
	"webslice/internal/slicer"
)

func FuzzReplayAgreesWithSlice(f *testing.F) {
	for _, seed := range []uint64{1001, 1002, 1003, 1004, 1, 7} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		b := sites.Random(seed)
		br := browser.New(b.Site, b.Profile)
		tape := br.M.Capture()
		br.RunSession()
		br.M.SealTape()
		if len(br.Errors) > 0 {
			t.Fatalf("seed %d: browser: %v", seed, br.Errors[0])
		}
		tr := br.M.Tr
		forest, err := cfg.Build(tr)
		if err != nil {
			t.Fatalf("seed %d: forward pass: %v", seed, err)
		}
		deps := cdg.Compute(forest)
		rs, err := slicer.SliceMulti(tr, deps, []slicer.Criteria{
			slicer.PixelCriteria{},
			slicer.SyscallCriteria{},
			slicer.Union{slicer.PixelCriteria{}, slicer.SyscallCriteria{}},
		}, slicer.Options{MainThread: browser.MainThread})
		if err != nil {
			t.Fatalf("seed %d: slice: %v", seed, err)
		}
		cfgs := []Config{
			{CheckPixels: true},
			{CheckSyscalls: true},
			{CheckPixels: true, CheckSyscalls: true},
		}
		for k, res := range rs {
			if d := Replay(tr, tape, res, cfgs[k]); d != nil {
				t.Errorf("seed %d: slice %q does not replay: %v", seed, res.Criteria, d)
			}
			if err := CheckInvariants(tr, deps, res); err != nil {
				t.Errorf("seed %d: slice %q: %v", seed, res.Criteria, err)
			}
		}
		if err := CheckMonotonic(rs[2], rs[0], rs[1]); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	})
}
