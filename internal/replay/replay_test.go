package replay

import (
	"strings"
	"testing"

	"webslice/internal/cdg"
	"webslice/internal/cfg"
	"webslice/internal/isa"
	"webslice/internal/slicer"
	"webslice/internal/trace"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

func forward(t *testing.T, tr *trace.Trace) *cdg.Deps {
	t.Helper()
	f, err := cfg.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	return cdg.Compute(f)
}

// record builds a workload exercising every record kind with a tape
// attached: input syscall feeding a render loop, dead bookkeeping,
// cross-thread beacon, static data, wide copies, pixel marker, output
// syscall.
func record() (*vm.Machine, *vm.Tape) {
	m := vm.New()
	tape := m.Capture()
	m.Thread(0, "main")
	m.Thread(1, "worker")
	tile := m.Tile.Alloc(64)
	net := m.IOb.Alloc(32)
	inbuf := m.IOb.Alloc(64)
	stats := m.Heap.Alloc(16)
	font := m.Heap.Alloc(16)

	m.StaticData(font, []byte("glyph-table-data"))
	m.Syscall(isa.SysRecvfrom, isa.RegNone, isa.RegNone, nil,
		[]vmem.Range{{Addr: inbuf, Size: 8}}, []byte("RESPONSE"))

	render := m.Func("render", "gfx")
	m.Call(render, func() {
		seed := m.LoadU32(inbuf)
		m.Loop("rows", 8, func(i int) {
			v := m.AddImm(seed, uint64(i))
			m.StoreU32(tile+vmem.Addr(4*(i%16)), v)
		})
		// Wide vector copy from static data into the tile tail.
		m.Copy(tile+32, font, 16)
	})
	m.Bookkeep(stats, 12)

	m.Switch(1)
	b := m.Const(7)
	m.StoreU32(net, b)
	m.Syscall(isa.SysSendto, isa.RegNone, isa.RegNone,
		[]vmem.Range{{Addr: net, Size: 4}}, nil, nil)
	m.Switch(0)

	m.MarkPixels(vmem.Range{Addr: tile, Size: 48})
	m.Syscall(isa.SysIoctl, isa.RegNone, isa.RegNone,
		[]vmem.Range{{Addr: tile, Size: 48}}, nil, nil)
	m.SealTape()
	return m, tape
}

func sliceAll(t *testing.T, m *vm.Machine) (deps *cdg.Deps, pix, sys, uni *slicer.Result) {
	t.Helper()
	deps = forward(t, m.Tr)
	rs, err := slicer.SliceMulti(m.Tr, deps, []slicer.Criteria{
		slicer.PixelCriteria{},
		slicer.SyscallCriteria{},
		slicer.Union{slicer.PixelCriteria{}, slicer.SyscallCriteria{}},
	}, slicer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return deps, rs[0], rs[1], rs[2]
}

func TestReplayReproducesCriterionBytes(t *testing.T) {
	m, tape := record()
	_, pix, sys, uni := sliceAll(t, m)
	if d := Replay(m.Tr, tape, pix, Config{CheckPixels: true}); d != nil {
		t.Errorf("pixel slice replay diverged: %v", d)
	}
	if d := Replay(m.Tr, tape, sys, Config{CheckSyscalls: true}); d != nil {
		t.Errorf("syscall slice replay diverged: %v", d)
	}
	if d := Replay(m.Tr, tape, uni, Config{CheckPixels: true, CheckSyscalls: true}); d != nil {
		t.Errorf("union slice replay diverged: %v", d)
	}
}

func TestReplayWitnessesAMissingStore(t *testing.T) {
	m, tape := record()
	_, pix, _, _ := sliceAll(t, m)
	// Remove an in-slice store that writes the marked tile: the replayed
	// pixel bytes can no longer reproduce, and the witness must name a
	// concrete record.
	victim := -1
	for i := range m.Tr.Recs {
		r := &m.Tr.Recs[i]
		if r.Kind == isa.KindStore && pix.InSlice.Get(i) && r.Addr >= vmem.TileBase {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no in-slice tile store found")
	}
	pix.InSlice[victim>>6] &^= 1 << (uint(victim) & 63)
	d := Replay(m.Tr, tape, pix, Config{CheckPixels: true})
	if d == nil {
		t.Fatal("replay accepted a slice with a pixel-writing store removed")
	}
	if d.Index < victim {
		t.Errorf("divergence at record %d precedes the removed store %d", d.Index, victim)
	}
}

func TestReplayWitnessesAMissingBranchInput(t *testing.T) {
	m, tape := record()
	_, _, sys, _ := sliceAll(t, m)
	// Remove an in-slice branch: a replayed control decision now reads an
	// undefined condition or the structural check trips downstream.
	victim := -1
	for i := range m.Tr.Recs {
		if m.Tr.Recs[i].Kind == isa.KindConst && sys.InSlice.Get(i) {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no in-slice const found")
	}
	sys.InSlice[victim>>6] &^= 1 << (uint(victim) & 63)
	if d := Replay(m.Tr, tape, sys, Config{CheckSyscalls: true}); d == nil {
		t.Error("replay accepted a slice with a value-defining const removed")
	}
}

func TestInvariantsHoldOnRealSlices(t *testing.T) {
	m, _ := record()
	deps, pix, sys, uni := sliceAll(t, m)
	for _, res := range []*slicer.Result{pix, sys, uni} {
		if err := CheckInvariants(m.Tr, deps, res); err != nil {
			t.Errorf("%s: %v", res.Criteria, err)
		}
	}
	if err := CheckMonotonic(uni, pix, sys); err != nil {
		t.Error(err)
	}
}

func TestInvariantsCatchPerturbations(t *testing.T) {
	m, _ := record()
	deps, pix, sys, uni := sliceAll(t, m)

	// Count drift.
	pix.SliceCount++
	if err := CheckInvariants(m.Tr, deps, pix); err == nil {
		t.Error("subset check accepted a drifted SliceCount")
	}
	pix.SliceCount--

	// Dropping a controlling branch breaks closure.
	victim := -1
	for i := range m.Tr.Recs {
		if m.Tr.Recs[i].Kind == isa.KindBranch && pix.InSlice.Get(i) {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatal("no in-slice branch found")
	}
	pix.InSlice[victim>>6] &^= 1 << (uint(victim) & 63)
	pix.SliceCount--
	if err := CheckInvariants(m.Tr, deps, pix); err == nil {
		t.Error("closure check accepted a slice with a controlling branch removed")
	} else if !strings.Contains(err.Error(), "branch") {
		t.Errorf("unexpected violation: %v", err)
	}

	// Union monotonicity: remove a record from the union that a component
	// still holds.
	victim = -1
	for i := 0; i < uni.Total; i++ {
		if sys.InSlice.Get(i) && uni.InSlice.Get(i) {
			victim = i
			break
		}
	}
	uni.InSlice[victim>>6] &^= 1 << (uint(victim) & 63)
	if err := CheckMonotonic(uni, &slicer.Result{Total: uni.Total, InSlice: slicer.NewBitset(uni.Total), Criteria: "pixels"}, sys); err == nil {
		t.Error("monotonicity check accepted a union missing a component record")
	}
}
