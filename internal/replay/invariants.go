package replay

import (
	"fmt"
	"math/bits"

	"webslice/internal/cdg"
	"webslice/internal/isa"
	"webslice/internal/slicer"
	"webslice/internal/trace"
)

// This file holds the invariant oracles: structural properties every correct
// slice must satisfy regardless of criteria. They are cheaper than a full
// replay or differential run, so the profiler can afford to check them on
// every cache miss in production (core.Options.VerifyInvariants).

// CheckInvariants verifies the structural slice invariants:
//
//   - slice ⊆ trace: the bitset holds exactly SliceCount bits, none beyond
//     Total;
//   - closure under control dependences: for every in-slice record, the
//     nearest preceding branch it is control-dependent on (same frame
//     instance) is also in the slice — the pending-branch mechanism resolved;
//   - call closure: every in-slice record inside a call has its enclosing
//     Call record in the slice (interprocedural control dependence).
//
// deps may be nil only for a slice computed with NoControlDeps; the closure
// checks are skipped then.
func CheckInvariants(t *trace.Trace, deps *cdg.Deps, res *slicer.Result) error {
	if err := checkSubset(t, res); err != nil {
		return err
	}
	if deps == nil {
		return nil
	}
	return checkClosure(t, deps, res)
}

func checkSubset(t *trace.Trace, res *slicer.Result) error {
	if res.Total != len(t.Recs) {
		return fmt.Errorf("invariant: result covers %d records, trace has %d", res.Total, len(t.Recs))
	}
	n := 0
	for _, w := range res.InSlice {
		n += bits.OnesCount64(w)
	}
	if n != res.SliceCount {
		return fmt.Errorf("invariant: bitset holds %d records but SliceCount says %d", n, res.SliceCount)
	}
	// Bits beyond Total would be records outside the trace.
	for i := res.Total; i < len(res.InSlice)*64; i++ {
		if res.InSlice.Get(i) {
			return fmt.Errorf("invariant: slice bit set at record %d beyond trace end %d", i, res.Total)
		}
	}
	if res.SliceCount > res.Total {
		return fmt.Errorf("invariant: slice of %d records from a trace of %d", res.SliceCount, res.Total)
	}
	return nil
}

// frameTracker walks the trace forward, reconstructing per-thread call
// frames: which Call record opened the current frame and the latest
// occurrence of each branch PC within the frame instance. Depth can go
// negative when a trace opens mid-function, so frames are keyed by depth.
type frameTracker struct {
	depth    int
	branches map[int]map[uint32]int // depth -> branch PC -> latest record index
	callRec  map[int]int            // depth -> Call record index that opened it
}

func newFrameTracker() *frameTracker {
	return &frameTracker{
		branches: map[int]map[uint32]int{},
		callRec:  map[int]int{},
	}
}

func checkClosure(t *trace.Trace, deps *cdg.Deps, res *slicer.Result) error {
	threads := map[uint8]*frameTracker{}
	tracker := func(tid uint8) *frameTracker {
		ft := threads[tid]
		if ft == nil {
			ft = newFrameTracker()
			threads[tid] = ft
		}
		return ft
	}
	for i := range t.Recs {
		r := &t.Recs[i]
		ft := tracker(r.TID)
		in := res.InSlice.Get(i)

		// Control-dependence closure: the record's governing branches within
		// the current frame instance must be in the slice. A dependence PC
		// with no preceding occurrence in this frame is the pending residue
		// the slicer tallies in PendingLeft (truncated traces) — tolerated.
		// The Call record belongs to the caller's frame; Ret records never
		// join the slice, and markers are pseudo-instructions.
		if in && r.Kind != isa.KindRet && r.Kind != isa.KindMarker {
			for _, bpc := range deps.Of(r.PC) {
				if j, ok := ft.branches[ft.depth][bpc]; ok && !res.InSlice.Get(j) {
					return fmt.Errorf(
						"invariant: record %d (pc %#x) is in the slice but its controlling branch at record %d (pc %#x) is not",
						i, r.PC, j, bpc)
				}
			}
		}
		// Call closure: an in-slice record implies its enclosing Call is in
		// the slice (checked against the immediate parent; transitive by
		// induction). Frames opened before the trace window have no Call.
		if in && r.Kind != isa.KindMarker {
			if call, ok := ft.callRec[ft.depth]; ok && !res.InSlice.Get(call) {
				return fmt.Errorf(
					"invariant: record %d (pc %#x) is in the slice but its enclosing call at record %d is not",
					i, r.PC, call)
			}
		}

		switch r.Kind {
		case isa.KindBranch:
			set := ft.branches[ft.depth]
			if set == nil {
				set = map[uint32]int{}
				ft.branches[ft.depth] = set
			}
			set[r.PC] = i
		case isa.KindCall:
			ft.depth++
			ft.branches[ft.depth] = nil // fresh frame instance
			ft.callRec[ft.depth] = i
		case isa.KindRet:
			delete(ft.branches, ft.depth)
			delete(ft.callRec, ft.depth)
			ft.depth--
		}
	}
	return nil
}

// CheckMonotonic verifies criteria-union monotonicity: the slice for
// Union{A, B} must contain every record of slice(A) and slice(B). The
// backward pass is a monotone fixpoint in its live sets, so adding criteria
// can only grow the slice; a violation means per-criterion state leaked.
func CheckMonotonic(union, a, b *slicer.Result) error {
	if union.Total != a.Total || union.Total != b.Total {
		return fmt.Errorf("invariant: union/criterion results cover different traces (%d/%d/%d records)",
			union.Total, a.Total, b.Total)
	}
	for i := 0; i < union.Total; i++ {
		if (a.InSlice.Get(i) || b.InSlice.Get(i)) && !union.InSlice.Get(i) {
			src := a.Criteria
			if b.InSlice.Get(i) {
				src = b.Criteria
			}
			return fmt.Errorf("invariant: record %d is in slice(%s) but missing from slice(%s)", i, src, union.Criteria)
		}
	}
	return nil
}
