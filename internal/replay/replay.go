// Package replay re-executes a recorded trace with every out-of-slice
// instruction elided and asserts that the criterion values — pixel-tile
// bytes at markers, syscall read operands — reproduce byte-for-byte. It is
// the strongest oracle in the validation hierarchy (see TESTING.md): a
// successful replay proves the slice carried every dataflow and control
// decision the criteria depend on; a failed replay is a concrete
// unsoundness witness naming the first diverging record and PC.
//
// The soundness argument for eliding out-of-slice instructions, including
// input syscalls: any byte a replayed instruction reads was made live by
// the backward pass at that read, so its nearest preceding writer (store or
// syscall fill) triggered a live-kill and is in the slice; inductively the
// replay memory image agrees with the recorded run on every byte the slice
// observes. A divergence therefore means the slicer dropped a real
// dependence.
package replay

import (
	"fmt"

	"webslice/internal/isa"
	"webslice/internal/slicer"
	"webslice/internal/trace"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// Config selects which criterion ground truth the replay asserts. Check
// pixels when replaying a pixel (or union) slice, syscalls when replaying a
// syscall (or union) slice; a slice is only obliged to reproduce the values
// its own criteria made live.
type Config struct {
	CheckPixels   bool
	CheckSyscalls bool
}

// Divergence describes the first point where the replayed slice stopped
// agreeing with the recorded execution.
type Divergence struct {
	Index  int    // record index in the trace
	PC     uint32 // static program counter of the diverging record
	Reason string
}

// Error implements error.
func (d *Divergence) Error() string {
	return fmt.Sprintf("replay: divergence at record %d (pc %#x): %s", d.Index, d.PC, d.Reason)
}

// machine is the replay interpreter's state: a fresh memory image plus the
// slice-only register file. defined tracks which registers have been written
// by a replayed instruction — an in-slice use of an undefined register means
// the defining instruction was wrongly left out of the slice.
type machine struct {
	mem     *vmem.Memory
	regs    []uint64
	defined []bool
	wide    map[isa.Reg][]byte
}

// Replay re-executes the in-slice records of t against tape and returns nil
// if every asserted value reproduced, or the first divergence otherwise.
func Replay(t *trace.Trace, tape *vm.Tape, res *slicer.Result, cfg Config) *Divergence {
	if len(t.Recs) != res.Total {
		return &Divergence{Reason: fmt.Sprintf("trace has %d records but slice covers %d", len(t.Recs), res.Total)}
	}
	m := &machine{
		mem:     vmem.NewMemory(),
		regs:    make([]uint64, len(tape.Regs)),
		defined: make([]bool, len(tape.Regs)),
		wide:    make(map[isa.Reg][]byte),
	}
	si := 0 // next static write to apply
	for i := range t.Recs {
		for si < len(tape.Statics) && tape.Statics[si].Pos <= i {
			m.mem.WriteBytes(tape.Statics[si].Addr, tape.Statics[si].Data)
			si++
		}
		r := &t.Recs[i]
		// Markers are pseudo-instructions (never in the slice themselves) but
		// carry the pixel criterion's ground truth; check them regardless.
		if r.Kind == isa.KindMarker {
			if d := m.marker(i, r, t, tape, cfg); d != nil {
				return d
			}
			continue
		}
		if !res.InSlice.Get(i) {
			// The recording vm retires a wide register's contents at its
			// first store; mirror that bookkeeping even for elided stores so
			// a later in-slice store of the same register splats exactly as
			// the recorded run did.
			if r.Kind == isa.KindStore && int(r.Size) > 8 {
				if w, ok := m.wide[r.Src1]; ok && len(w) >= int(r.Size) {
					delete(m.wide, r.Src1)
				}
			}
			continue
		}
		if d := m.step(i, r, t, tape, cfg); d != nil {
			return d
		}
	}
	return nil
}

func (m *machine) step(i int, r *trace.Rec, t *trace.Trace, tape *vm.Tape, cfg Config) *Divergence {
	switch r.Kind {
	case isa.KindConst:
		// Immediates are not stored in the record; the tape's SSA register
		// file is the value log.
		m.set(r.Dst, tape.Regs[r.Dst])
	case isa.KindOp:
		a, d := m.use(i, r, r.Src1)
		if d != nil {
			return d
		}
		b, d := m.use(i, r, r.Src2)
		if d != nil {
			return d
		}
		v := isa.AluOp(r.Aux).Eval(a, b)
		if v != tape.Regs[r.Dst] {
			return &Divergence{Index: i, PC: r.PC, Reason: fmt.Sprintf(
				"op %v computed %#x from slice-only inputs, recorded run had %#x", isa.AluOp(r.Aux), v, tape.Regs[r.Dst])}
		}
		m.set(r.Dst, v)
	case isa.KindLoad:
		if d := m.checkAddr(i, r); d != nil {
			return d
		}
		size := int(r.Size)
		v := m.mem.ReadU64(r.Addr, minInt(size, 8))
		if v != tape.Regs[r.Dst] {
			return &Divergence{Index: i, PC: r.PC, Reason: fmt.Sprintf(
				"load of %d bytes at %#x read %#x in replay memory, recorded run read %#x (a writer is missing from the slice)",
				size, r.Addr, v, tape.Regs[r.Dst])}
		}
		if size > 8 {
			m.wide[r.Dst] = m.mem.ReadBytes(r.Addr, size)
		}
		m.set(r.Dst, v)
	case isa.KindStore:
		if d := m.checkAddr(i, r); d != nil {
			return d
		}
		v, d := m.use(i, r, r.Src1)
		if d != nil {
			return d
		}
		m.writeReg(r.Addr, int(r.Size), r.Src1, v)
	case isa.KindBranch:
		c, d := m.use(i, r, r.Src1)
		if d != nil {
			return d
		}
		taken := c != 0
		recorded := r.Aux&1 == 1
		if taken != recorded {
			return &Divergence{Index: i, PC: r.PC, Reason: fmt.Sprintf(
				"branch condition evaluated to taken=%v from slice-only inputs, recorded run took taken=%v", taken, recorded)}
		}
	case isa.KindCall, isa.KindRet, isa.KindNop:
		// Structural records: no data effect to replay.
	case isa.KindSyscall:
		return m.syscall(i, r, t, tape, cfg)
	}
	return nil
}

func (m *machine) syscall(i int, r *trace.Rec, t *trace.Trace, tape *vm.Tape, cfg Config) *Divergence {
	eff := t.Sys[i]
	if cfg.CheckSyscalls {
		// Under the syscall criterion the argument registers and read
		// operands are criterion values: they must be defined by the slice
		// and reproduce byte-for-byte.
		for _, arg := range []isa.Reg{r.Src1, r.Src2} {
			if _, d := m.use(i, r, arg); d != nil {
				return d
			}
		}
		if eff != nil {
			want := tape.SysReads[i]
			for k, rd := range eff.Reads {
				got := m.mem.ReadBytes(rd.Addr, int(rd.Size))
				if k >= len(want) {
					return &Divergence{Index: i, PC: r.PC, Reason: fmt.Sprintf(
						"syscall %v read range %d missing from tape", eff.Num, k)}
				}
				if off := firstDiff(got, want[k]); off >= 0 {
					return &Divergence{Index: i, PC: r.PC, Reason: fmt.Sprintf(
						"syscall %v read operand %d differs at byte %d (addr %#x): replay %#02x, recorded %#02x",
						eff.Num, k, off, rd.Addr+vmem.Addr(off), got[off], want[k][off])}
				}
			}
		}
	}
	// Re-deposit the recorded kernel input with the recorded chunking.
	var ret uint64
	if fill, ok := tape.Fills[i]; ok && eff != nil {
		rem := fill
		for _, w := range eff.Writes {
			n := minInt(len(rem), int(w.Size))
			m.mem.WriteBytes(w.Addr, rem[:n])
			rem = rem[n:]
			ret += uint64(n)
		}
	}
	if ret != tape.Regs[r.Dst] {
		return &Divergence{Index: i, PC: r.PC, Reason: fmt.Sprintf(
			"syscall return %d differs from recorded %d", ret, tape.Regs[r.Dst])}
	}
	m.set(r.Dst, ret)
	return nil
}

func (m *machine) marker(i int, r *trace.Rec, t *trace.Trace, tape *vm.Tape, cfg Config) *Divergence {
	if !cfg.CheckPixels {
		return nil
	}
	mk := t.Marks[i]
	if mk == nil || mk.Kind != isa.MarkPixels {
		return nil
	}
	want, ok := tape.MarkBytes[i]
	if !ok {
		return &Divergence{Index: i, PC: r.PC, Reason: "pixel marker has no recorded ground truth on the tape"}
	}
	got := m.mem.ReadBytes(mk.Buf.Addr, int(mk.Buf.Size))
	if off := firstDiff(got, want); off >= 0 {
		return &Divergence{Index: i, PC: r.PC, Reason: fmt.Sprintf(
			"pixel buffer differs at byte %d (addr %#x): replay %#02x, recorded %#02x",
			off, mk.Buf.Addr+vmem.Addr(off), got[off], want[off])}
	}
	return nil
}

// use reads a source register, reporting a divergence if no in-slice
// instruction defined it (the defining record was wrongly elided).
func (m *machine) use(i int, r *trace.Rec, reg isa.Reg) (uint64, *Divergence) {
	if reg == isa.RegNone {
		return 0, nil
	}
	if int(reg) >= len(m.regs) || !m.defined[reg] {
		return 0, &Divergence{Index: i, PC: r.PC, Reason: fmt.Sprintf(
			"use of register %d whose defining instruction is not in the slice", reg)}
	}
	return m.regs[reg], nil
}

// checkAddr asserts that a slice-computed effective address agrees with the
// recorded one (loads and stores that go through an address register).
func (m *machine) checkAddr(i int, r *trace.Rec) *Divergence {
	if r.Src2 == isa.RegNone {
		return nil
	}
	v, d := m.use(i, r, r.Src2)
	if d != nil {
		return d
	}
	if vmem.Addr(v) != r.Addr {
		return &Divergence{Index: i, PC: r.PC, Reason: fmt.Sprintf(
			"effective address computed as %#x from slice-only inputs, recorded run accessed %#x", vmem.Addr(v), r.Addr)}
	}
	return nil
}

func (m *machine) set(reg isa.Reg, v uint64) {
	if int(reg) < len(m.regs) {
		m.regs[reg] = v
		m.defined[reg] = true
	}
}

// writeReg mirrors the recording vm's store semantics: wide registers write
// their full contents once, scalars splat their 8-byte pattern.
func (m *machine) writeReg(a vmem.Addr, size int, reg isa.Reg, val uint64) {
	if size <= 8 {
		m.mem.WriteU64(a, size, val)
		return
	}
	if w, ok := m.wide[reg]; ok && len(w) >= size {
		m.mem.WriteBytes(a, w[:size])
		delete(m.wide, reg)
		return
	}
	var pat [8]byte
	for i := range pat {
		pat[i] = byte(val >> (8 * i))
	}
	for off := 0; off < size; off += 8 {
		n := minInt(8, size-off)
		m.mem.WriteBytes(a+vmem.Addr(off), pat[:n])
	}
}

func firstDiff(got, want []byte) int {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			return i
		}
	}
	if len(got) != len(want) {
		return n
	}
	return -1
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
