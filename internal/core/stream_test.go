package core

import (
	"bytes"
	"reflect"
	"testing"

	"webslice/internal/slicer"
	"webslice/internal/store"
	"webslice/internal/trace"
)

// streamProfiler re-encodes the machine's trace as v3 and opens a
// streaming profiler over the compressed bytes.
func streamProfiler(t *testing.T, tr *trace.Trace, blockRecs int) *Profiler {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteV3Blocks(&buf, blockRecs); err != nil {
		t.Fatal(err)
	}
	br, err := trace.OpenV3(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return NewProfilerStream(br)
}

// TestStreamingProfilerMatchesMaterialized: the whole profiler pipeline —
// forward pass, fused backward pass, invariant verification, store keys —
// must behave identically whether it reads a materialized trace or streams
// a v3 encoding of the same trace.
func TestStreamingProfilerMatchesMaterialized(t *testing.T) {
	m := demoMachine()
	want := NewProfiler(m.Tr)
	want.VerifyInvariants = true
	got := streamProfiler(t, m.Tr, 64)
	got.VerifyInvariants = true
	if got.T.Recs != nil {
		t.Fatal("streaming profiler materialized the record slice up front")
	}
	cs := []slicer.Criteria{slicer.PixelCriteria{}, slicer.SyscallCriteria{}}
	wantRes, err := want.SliceMulti(cs)
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := got.SliceMulti(cs)
	if err != nil {
		t.Fatal(err)
	}
	for k := range cs {
		if !reflect.DeepEqual(wantRes[k], gotRes[k]) {
			t.Fatalf("criterion %s: streaming result differs from materialized", cs[k].Name())
		}
	}
	// Content addresses agree across formats: the key is defined over the
	// canonical v2 bytes, which the streaming transcoder reproduces.
	st, err := store.Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := want.UseStore(st); err != nil {
		t.Fatal(err)
	}
	if err := got.UseStore(st); err != nil {
		t.Fatal(err)
	}
	if want.Key() == "" || want.Key() != got.Key() {
		t.Fatalf("trace keys differ across formats: %q vs %q", want.Key(), got.Key())
	}
	// And because the keys agree, a slice computed through one profiler is
	// a cache hit for the other.
	if _, hit, err := want.SliceCached(slicer.PixelCriteria{}, want.Opts); err != nil || hit {
		t.Fatalf("first cached slice: hit=%v err=%v", hit, err)
	}
	r, hit, err := got.SliceCached(slicer.PixelCriteria{}, got.Opts)
	if err != nil || !hit {
		t.Fatalf("cross-format cached slice: hit=%v err=%v", hit, err)
	}
	if !bytes.Equal(store.EncodeResult(r), store.EncodeResult(wantRes[0])) {
		t.Fatal("cross-format cache hit returned a different result")
	}
}
