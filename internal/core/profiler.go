// Package core is the profiler facade — the paper's primary contribution
// (Figure 3). It ties the forward pass (control-flow graph reconstruction,
// postdominators, control dependence graph) to the backward pass (liveness-
// based dynamic backward slicing) and exposes the two slicing criteria the
// paper evaluates: the pixels buffer and system calls.
//
// Typical use:
//
//	p := core.NewProfiler(tr)
//	if err := p.Forward(); err != nil { ... }
//	res, err := p.PixelSlice()
//
// The forward pass result can be saved to stable storage and re-used for
// multiple backward passes with different criteria, as the paper notes.
package core

import (
	"fmt"
	"io"
	"strconv"

	"webslice/internal/cdg"
	"webslice/internal/cfg"
	"webslice/internal/obs"
	"webslice/internal/replay"
	"webslice/internal/slicer"
	"webslice/internal/store"
	"webslice/internal/trace"
)

// Profiler couples a trace with its forward-pass products and runs slices.
type Profiler struct {
	// T is the trace being profiled. For a streaming profiler (see
	// NewProfilerStream) it is the v3 shell: symbol and side tables only,
	// Recs nil — tallies, criteria, and categorization read nothing else.
	T *trace.Trace

	// src feeds records to the backward pass: zero-copy for a materialized
	// trace, block-at-a-time for a v3 stream.
	src slicer.Source
	// br is the block reader behind a streaming profiler, nil otherwise.
	br *trace.BlockReader

	forest *cfg.Forest
	deps   *cdg.Deps

	// Opts are the default options applied to every slicing run.
	Opts slicer.Options

	// VerifyInvariants makes every freshly computed slice pass the
	// structural invariant oracles (replay.CheckInvariants) before it is
	// returned or published to the store — cached results were already
	// verified when computed, so hits pay nothing. An invariant violation is
	// an error and the result is not cached.
	VerifyInvariants bool

	// Obs, when non-nil, is the parent span the profiler records its work
	// under: the forward pass, every store lookup/publish (with hit/miss
	// and the disk breaker's state), and invariant verification each
	// become child spans. Nil disables tracing at zero cost — every
	// obs.Span method is nil-safe.
	Obs *obs.Span

	// store, when set, is consulted before computing: the forward pass
	// loads a cached control dependence graph, and SliceCached loads whole
	// slice results. key is the trace's content address in the store.
	store *store.Store
	key   string
}

// NewProfiler wraps a trace. Run Forward before slicing (Slice does it on
// demand if you forget).
func NewProfiler(t *trace.Trace) *Profiler {
	return &Profiler{
		T:    t,
		src:  slicer.TraceSource(t),
		Opts: slicer.Options{ProgressPoints: 100},
	}
}

// NewProfilerStream wraps a block-compressed (v3) trace without decoding
// it: the backward pass streams one block per walker, so peak record
// memory stays O(workers × block size) instead of the whole trace. The
// passes that genuinely need every record at once — CFG construction on a
// forward-pass cache miss, invariant replay under VerifyInvariants —
// decode the trace transiently and release it.
func NewProfilerStream(br *trace.BlockReader) *Profiler {
	return &Profiler{
		T:    br.Shell(),
		src:  slicer.StreamSource(br),
		br:   br,
		Opts: slicer.Options{ProgressPoints: 100},
	}
}

// materialize returns a fully decoded trace for the whole-trace passes.
// For a materialized profiler it is T itself; for a streaming profiler it
// decodes every block into a fresh trace the caller must not retain.
func (p *Profiler) materialize() (*trace.Trace, error) {
	if p.br == nil {
		return p.T, nil
	}
	return p.br.ReadAll()
}

// UseStore attaches a content-addressed artifact store. The trace is
// hashed once (its content address); from then on Forward and SliceCached
// consult the store before computing and publish what they compute.
func (p *Profiler) UseStore(s *store.Store) error {
	var (
		k   string
		err error
	)
	if p.br != nil {
		// Hash the canonical v2 bytes via the streaming transcoder — same
		// address as hashing the materialized trace, no materialization.
		k, err = store.TraceKeyV3(p.br)
	} else {
		k, err = store.TraceKey(p.T)
	}
	if err != nil {
		return err
	}
	p.store, p.key = s, k
	return nil
}

// Key returns the trace's content address (empty before UseStore).
func (p *Profiler) Key() string { return p.key }

// Forward runs the forward pass: per-function CFGs from the dynamic trace,
// postdominator trees, and the control dependence graph. With a store
// attached, a cached dependence graph is loaded instead (the CFG forest is
// then not materialized — Forest stays nil) and a computed one is saved.
// Opts.Canceled is honored at the pass's phase boundaries (the backward
// pass additionally polls it mid-walk; see slicer.Options.Canceled).
func (p *Profiler) Forward() error {
	if p.deps != nil {
		return nil
	}
	if p.canceled() {
		return slicer.ErrCanceled
	}
	if p.store != nil {
		// A decode/corruption error is a cache miss, not a failure.
		gs := p.storeSpan("store.get", "deps")
		d, ok, _ := p.store.GetDeps(p.key)
		gs.Set("hit", strconv.FormatBool(ok))
		gs.End()
		if ok {
			p.deps = d
			return nil
		}
	}
	fs := p.Obs.Child("forward")
	full, err := p.materialize()
	if err != nil {
		fs.EndErr(err)
		return fmt.Errorf("core: forward pass: %w", err)
	}
	f, err := cfg.Build(full)
	if err != nil {
		fs.EndErr(err)
		return fmt.Errorf("core: forward pass: %w", err)
	}
	if p.canceled() {
		fs.EndErr(slicer.ErrCanceled)
		return slicer.ErrCanceled
	}
	p.forest = f
	p.deps = cdg.Compute(f)
	fs.End()
	if p.store != nil {
		ps := p.storeSpan("store.put", "deps")
		err := p.store.PutDeps(p.key, p.deps)
		ps.EndErr(err)
		if err != nil {
			return fmt.Errorf("core: caching forward pass: %w", err)
		}
	}
	return nil
}

// storeSpan starts a child span for one artifact-store operation,
// annotated with the artifact kind and the disk breaker's current state
// (closed / half-open / open), so degraded-store jobs are visible in
// traces. Nil-safe: with tracing off it returns nil.
func (p *Profiler) storeSpan(op, kind string) *obs.Span {
	if p.Obs == nil {
		return nil
	}
	return p.Obs.Child(op).
		Set("kind", kind).
		Set("breaker", p.store.BreakerState().String())
}

// canceled polls the default options' cancellation hook.
func (p *Profiler) canceled() bool {
	return p.Opts.Canceled != nil && p.Opts.Canceled()
}

// Forest returns the CFGs built by the forward pass (nil before Forward).
func (p *Profiler) Forest() *cfg.Forest { return p.forest }

// Deps returns the control dependence graph (nil before Forward).
func (p *Profiler) Deps() *cdg.Deps { return p.deps }

// SaveForward writes the control dependence graph to stable storage so later
// sessions can slice with different criteria without re-running the forward
// pass.
func (p *Profiler) SaveForward(w io.Writer) error {
	if err := p.Forward(); err != nil {
		return err
	}
	return p.deps.Save(w)
}

// LoadForward installs a previously saved control dependence graph.
func (p *Profiler) LoadForward(r io.Reader) error {
	d, err := cdg.Load(r)
	if err != nil {
		return err
	}
	p.deps = d
	return nil
}

// Slice runs the backward pass with arbitrary criteria.
func (p *Profiler) Slice(c slicer.Criteria) (*slicer.Result, error) {
	return p.SliceOpts(c, p.Opts)
}

// SliceOpts runs the backward pass with explicit options.
func (p *Profiler) SliceOpts(c slicer.Criteria, opts slicer.Options) (*slicer.Result, error) {
	if !opts.NoControlDeps {
		if err := p.Forward(); err != nil {
			return nil, err
		}
	}
	rs, err := slicer.SliceMultiSource(p.src, p.deps, []slicer.Criteria{c}, opts)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// SliceMulti runs one fused backward pass that evaluates several criteria
// in a single reverse walk of the trace, returning one result per
// criterion in order (see slicer.SliceMulti).
func (p *Profiler) SliceMulti(cs []slicer.Criteria) ([]*slicer.Result, error) {
	return p.SliceMultiOpts(cs, p.Opts)
}

// SliceMultiOpts is SliceMulti with explicit options.
func (p *Profiler) SliceMultiOpts(cs []slicer.Criteria, opts slicer.Options) ([]*slicer.Result, error) {
	if !opts.NoControlDeps {
		if err := p.Forward(); err != nil {
			return nil, err
		}
	}
	return slicer.SliceMultiSource(p.src, p.deps, cs, opts)
}

// SliceMultiCached is SliceMulti through the artifact store: criteria whose
// results are already cached under their variant key are served from the
// store, the rest are computed in one fused backward pass and published.
// hits[k] reports whether result k came from the cache. Without a store it
// degrades to a plain SliceMultiOpts.
func (p *Profiler) SliceMultiCached(cs []slicer.Criteria, opts slicer.Options) ([]*slicer.Result, []bool, error) {
	hits := make([]bool, len(cs))
	if p.store == nil {
		rs, err := p.SliceMultiOpts(cs, opts)
		if err != nil {
			return nil, nil, err
		}
		return rs, hits, p.verify(rs)
	}
	out := make([]*slicer.Result, len(cs))
	var missing []slicer.Criteria
	var missingIdx []int
	for k, c := range cs {
		if c == nil {
			return nil, nil, fmt.Errorf("core: nil criteria")
		}
		gs := p.storeSpan("store.get", "slice").Set("criteria", c.Name())
		r, ok, _ := p.store.GetSlice(p.key, store.SliceVariant(c.Name(), opts))
		gs.Set("hit", strconv.FormatBool(ok))
		gs.End()
		if ok {
			out[k], hits[k] = r, true
			continue
		}
		missing = append(missing, c)
		missingIdx = append(missingIdx, k)
	}
	if len(missing) == 0 {
		return out, hits, nil
	}
	rs, err := p.SliceMultiOpts(missing, opts)
	if err != nil {
		return nil, nil, err
	}
	if err := p.verify(rs); err != nil {
		return nil, nil, err
	}
	for j, r := range rs {
		k := missingIdx[j]
		out[k] = r
		ps := p.storeSpan("store.put", "slice").Set("criteria", cs[k].Name())
		err := p.store.PutSlice(p.key, store.SliceVariant(cs[k].Name(), opts), r)
		ps.EndErr(err)
		if err != nil {
			return nil, nil, fmt.Errorf("core: caching slice: %w", err)
		}
	}
	return out, hits, nil
}

// verify runs the structural invariant oracles over freshly computed results
// when VerifyInvariants is set.
func (p *Profiler) verify(rs []*slicer.Result) error {
	if !p.VerifyInvariants {
		return nil
	}
	return p.VerifyResults(rs...)
}

// VerifyResults runs the structural invariant oracles over results
// unconditionally — the service uses it to re-check cached slices. On a
// streaming profiler the trace is decoded transiently for the replay.
func (p *Profiler) VerifyResults(rs ...*slicer.Result) error {
	vs := p.Obs.Child("verify").Set("slices", strconv.Itoa(len(rs)))
	full, err := p.materialize()
	if err != nil {
		vs.EndErr(err)
		return fmt.Errorf("core: verification: %w", err)
	}
	for _, r := range rs {
		if err := replay.CheckInvariants(full, p.deps, r); err != nil {
			vs.EndErr(err)
			return fmt.Errorf("core: slice %q failed verification: %w", r.Criteria, err)
		}
	}
	vs.End()
	return nil
}

// SliceCached runs the backward pass through the artifact store: if this
// trace was already sliced with the same criteria and options, the stored
// result is returned and both passes are skipped entirely. The bool
// reports whether the result came from the cache. Without a store attached
// it degrades to a plain SliceOpts.
func (p *Profiler) SliceCached(c slicer.Criteria, opts slicer.Options) (*slicer.Result, bool, error) {
	if p.store == nil {
		r, err := p.SliceOpts(c, opts)
		if err != nil {
			return nil, false, err
		}
		return r, false, p.verify([]*slicer.Result{r})
	}
	variant := store.SliceVariant(c.Name(), opts)
	if r, ok, _ := p.store.GetSlice(p.key, variant); ok {
		return r, true, nil
	}
	r, err := p.SliceOpts(c, opts)
	if err != nil {
		return nil, false, err
	}
	if err := p.verify([]*slicer.Result{r}); err != nil {
		return nil, false, err
	}
	if err := p.store.PutSlice(p.key, variant, r); err != nil {
		return nil, false, fmt.Errorf("core: caching slice: %w", err)
	}
	return r, false, nil
}

// PixelSlice runs the backward pass with the pixel-buffer criteria.
func (p *Profiler) PixelSlice() (*slicer.Result, error) {
	return p.Slice(slicer.PixelCriteria{})
}

// SyscallSlice runs the backward pass with the syscall criteria.
func (p *Profiler) SyscallSlice() (*slicer.Result, error) {
	return p.Slice(slicer.SyscallCriteria{})
}
