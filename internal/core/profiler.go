// Package core is the profiler facade — the paper's primary contribution
// (Figure 3). It ties the forward pass (control-flow graph reconstruction,
// postdominators, control dependence graph) to the backward pass (liveness-
// based dynamic backward slicing) and exposes the two slicing criteria the
// paper evaluates: the pixels buffer and system calls.
//
// Typical use:
//
//	p := core.NewProfiler(tr)
//	if err := p.Forward(); err != nil { ... }
//	res, err := p.PixelSlice()
//
// The forward pass result can be saved to stable storage and re-used for
// multiple backward passes with different criteria, as the paper notes.
package core

import (
	"fmt"
	"io"

	"webslice/internal/cdg"
	"webslice/internal/cfg"
	"webslice/internal/slicer"
	"webslice/internal/trace"
)

// Profiler couples a trace with its forward-pass products and runs slices.
type Profiler struct {
	T *trace.Trace

	forest *cfg.Forest
	deps   *cdg.Deps

	// Opts are the default options applied to every slicing run.
	Opts slicer.Options
}

// NewProfiler wraps a trace. Run Forward before slicing (Slice does it on
// demand if you forget).
func NewProfiler(t *trace.Trace) *Profiler {
	return &Profiler{T: t, Opts: slicer.Options{ProgressPoints: 100}}
}

// Forward runs the forward pass: per-function CFGs from the dynamic trace,
// postdominator trees, and the control dependence graph.
func (p *Profiler) Forward() error {
	if p.deps != nil {
		return nil
	}
	f, err := cfg.Build(p.T)
	if err != nil {
		return fmt.Errorf("core: forward pass: %w", err)
	}
	p.forest = f
	p.deps = cdg.Compute(f)
	return nil
}

// Forest returns the CFGs built by the forward pass (nil before Forward).
func (p *Profiler) Forest() *cfg.Forest { return p.forest }

// Deps returns the control dependence graph (nil before Forward).
func (p *Profiler) Deps() *cdg.Deps { return p.deps }

// SaveForward writes the control dependence graph to stable storage so later
// sessions can slice with different criteria without re-running the forward
// pass.
func (p *Profiler) SaveForward(w io.Writer) error {
	if err := p.Forward(); err != nil {
		return err
	}
	return p.deps.Save(w)
}

// LoadForward installs a previously saved control dependence graph.
func (p *Profiler) LoadForward(r io.Reader) error {
	d, err := cdg.Load(r)
	if err != nil {
		return err
	}
	p.deps = d
	return nil
}

// Slice runs the backward pass with arbitrary criteria.
func (p *Profiler) Slice(c slicer.Criteria) (*slicer.Result, error) {
	return p.SliceOpts(c, p.Opts)
}

// SliceOpts runs the backward pass with explicit options.
func (p *Profiler) SliceOpts(c slicer.Criteria, opts slicer.Options) (*slicer.Result, error) {
	if !opts.NoControlDeps {
		if err := p.Forward(); err != nil {
			return nil, err
		}
	}
	return slicer.Slice(p.T, p.deps, c, opts)
}

// PixelSlice runs the backward pass with the pixel-buffer criteria.
func (p *Profiler) PixelSlice() (*slicer.Result, error) {
	return p.Slice(slicer.PixelCriteria{})
}

// SyscallSlice runs the backward pass with the syscall criteria.
func (p *Profiler) SyscallSlice() (*slicer.Result, error) {
	return p.Slice(slicer.SyscallCriteria{})
}
