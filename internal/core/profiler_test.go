package core

import (
	"bytes"
	"testing"

	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

func demoMachine() *vm.Machine {
	m := vm.New()
	m.Thread(0, "CrRendererMain")
	tile := m.Tile.Alloc(64)
	fn := m.Func("render", "blink")
	m.Call(fn, func() {
		v := m.Const(0xFFFFFF)
		m.StoreU32(tile, v)
	})
	junk := m.Func("metrics", "base/debug")
	m.Call(junk, func() {
		m.Bookkeep(m.Heap.Alloc(8), 3)
	})
	m.MarkPixels(vmem.Range{Addr: tile, Size: 64})
	m.Syscall(isa.SysIoctl, isa.RegNone, isa.RegNone, []vmem.Range{{Addr: tile, Size: 64}}, nil, nil)
	return m
}

func TestProfilerEndToEnd(t *testing.T) {
	m := demoMachine()
	p := NewProfiler(m.Tr)
	if err := p.Forward(); err != nil {
		t.Fatal(err)
	}
	if p.Forest() == nil || p.Deps() == nil {
		t.Fatal("forward products missing")
	}
	pix, err := p.PixelSlice()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := p.SyscallSlice()
	if err != nil {
		t.Fatal(err)
	}
	if pix.SliceCount == 0 {
		t.Fatal("pixel slice empty")
	}
	if sys.SliceCount < pix.SliceCount {
		t.Errorf("syscall slice (%d) should include pixel slice (%d)", sys.SliceCount, pix.SliceCount)
	}
	if pix.Percent() >= 100 {
		t.Error("bookkeeping should be excluded from the pixel slice")
	}
	// The debug function's records must be outside the pixel slice.
	for i := range m.Tr.Recs {
		if m.Tr.Namespace(m.Tr.Recs[i].Func()) == "base/debug" && pix.InSlice.Get(i) {
			t.Errorf("debug record %d wrongly in pixel slice", i)
		}
	}
}

func TestSaveLoadForward(t *testing.T) {
	m := demoMachine()
	p := NewProfiler(m.Tr)
	var buf bytes.Buffer
	if err := p.SaveForward(&buf); err != nil {
		t.Fatal(err)
	}
	res1, err := p.PixelSlice()
	if err != nil {
		t.Fatal(err)
	}

	p2 := NewProfiler(m.Tr)
	if err := p2.LoadForward(&buf); err != nil {
		t.Fatal(err)
	}
	res2, err := p2.PixelSlice()
	if err != nil {
		t.Fatal(err)
	}
	if res1.SliceCount != res2.SliceCount {
		t.Errorf("reloaded forward pass changed the slice: %d vs %d", res1.SliceCount, res2.SliceCount)
	}
}

func TestSliceOnDemandForward(t *testing.T) {
	m := demoMachine()
	p := NewProfiler(m.Tr)
	// No explicit Forward call: Slice must run it on demand.
	if _, err := p.PixelSlice(); err != nil {
		t.Fatal(err)
	}
}
