// The parallel engine must be invisible in the artifacts: a forward pass
// fanned across workers and a fused multi-criteria backward pass have to
// produce byte-identical store content — same encoded dependences, same
// encoded results, same variant keys — as the sequential single-criterion
// path. These tests pin that down on a real rendered trace.
package core_test

import (
	"bytes"
	"testing"

	"webslice/internal/cdg"
	"webslice/internal/cfg"
	"webslice/internal/core"
	"webslice/internal/slicer"
	"webslice/internal/store"
)

func TestParallelForwardPassBytesIdentical(t *testing.T) {
	tr := renderAmazon(t)
	f, err := cfg.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	seq := store.EncodeDeps(cdg.ComputeParallel(f, 1))
	for _, workers := range []int{0, 2, 8} {
		par := store.EncodeDeps(cdg.ComputeParallel(f, workers))
		if !bytes.Equal(seq, par) {
			t.Errorf("workers=%d: encoded Deps differ from the sequential pass", workers)
		}
	}
}

func TestFusedSliceBytesIdenticalToIndependentRuns(t *testing.T) {
	tr := renderAmazon(t)
	p := core.NewProfiler(tr)
	p.Opts.ProgressPoints = 160
	cs := []slicer.Criteria{slicer.PixelCriteria{}, slicer.SyscallCriteria{}}
	fused, err := p.SliceMultiOpts(cs, p.Opts)
	if err != nil {
		t.Fatal(err)
	}
	for k, c := range cs {
		solo, err := p.SliceOpts(c, p.Opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(store.EncodeResult(solo), store.EncodeResult(fused[k])) {
			t.Errorf("criterion %s: fused result bytes differ from independent run", c.Name())
		}
	}
}

func TestSliceMultiCachedFillsPerVariantKeys(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cs := []slicer.Criteria{slicer.PixelCriteria{}, slicer.SyscallCriteria{}}

	p1 := core.NewProfiler(renderAmazon(t))
	p1.Opts.ProgressPoints = 160
	if err := p1.UseStore(st); err != nil {
		t.Fatal(err)
	}
	r1, hits, err := p1.SliceMultiCached(cs, p1.Opts)
	if err != nil {
		t.Fatal(err)
	}
	for k, hit := range hits {
		if hit {
			t.Errorf("criterion %s: cache hit on an empty store", cs[k].Name())
		}
	}

	// One fused pass must have stored each criterion under its own variant
	// key: a second profiler gets every result from the store, byte-identical.
	p2 := core.NewProfiler(renderAmazon(t))
	p2.Opts.ProgressPoints = 160
	if err := p2.UseStore(st); err != nil {
		t.Fatal(err)
	}
	r2, hits2, err := p2.SliceMultiCached(cs, p2.Opts)
	if err != nil {
		t.Fatal(err)
	}
	for k, c := range cs {
		if !hits2[k] {
			t.Errorf("criterion %s: expected a cache hit after the fused pass", c.Name())
		}
		if !bytes.Equal(store.EncodeResult(r1[k]), store.EncodeResult(r2[k])) {
			t.Errorf("criterion %s: cached bytes differ from computed bytes", c.Name())
		}
	}
	if p2.Forest() != nil {
		t.Error("all-hit fused slice should not have rebuilt the forward pass")
	}

	// A partial hit: one criterion cached solo, the other computed fused
	// alongside it — the freshly computed one must match a from-scratch run.
	p3 := core.NewProfiler(renderAmazon(t))
	p3.Opts.ProgressPoints = 160
	if err := p3.UseStore(st); err != nil {
		t.Fatal(err)
	}
	mixed := []slicer.Criteria{slicer.PixelCriteria{}, slicer.Union{slicer.PixelCriteria{}, slicer.SyscallCriteria{}}}
	r3, hits3, err := p3.SliceMultiCached(mixed, p3.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hits3[0] || hits3[1] {
		t.Errorf("mixed run: hits = %v, want [true false]", hits3)
	}
	p4 := core.NewProfiler(renderAmazon(t))
	p4.Opts.ProgressPoints = 160
	solo, err := p4.SliceOpts(mixed[1], p4.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(store.EncodeResult(r3[1]), store.EncodeResult(solo)) {
		t.Error("criterion computed in a partial-hit fused pass differs from a from-scratch run")
	}
}
