// Determinism is the invariant the artifact store depends on: rendering
// the same site twice must produce byte-identical traces (hence identical
// content addresses), and slicing must be a pure function of the trace.
// These tests pin both properties down.
package core_test

import (
	"bytes"
	"testing"

	"webslice/internal/browser"
	"webslice/internal/core"
	"webslice/internal/sites"
	"webslice/internal/slicer"
	"webslice/internal/store"
	"webslice/internal/trace"
)

// renderAmazon renders the amazon-desktop benchmark at test scale.
func renderAmazon(t *testing.T) *trace.Trace {
	t.Helper()
	b, err := sites.ByName("amazon-desktop", sites.Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	br := browser.New(b.Site, b.Profile)
	br.RunSession()
	if len(br.Errors) > 0 {
		t.Fatalf("render: %v", br.Errors[0])
	}
	return br.M.Tr
}

func pixelSlice(t *testing.T, tr *trace.Trace) *slicer.Result {
	t.Helper()
	p := core.NewProfiler(tr)
	p.Opts.ProgressPoints = 160
	res, err := p.PixelSlice()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSliceDeterminism(t *testing.T) {
	tr1 := renderAmazon(t)
	tr2 := renderAmazon(t)

	k1, err := store.TraceKey(tr1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := store.TraceKey(tr2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("two renders of the same site hash differently: %s vs %s", k1, k2)
	}

	r1 := pixelSlice(t, tr1)
	r2 := pixelSlice(t, tr2)
	if r1.SliceCount != r2.SliceCount || r1.Total != r2.Total {
		t.Fatalf("slice counts differ: %d/%d vs %d/%d", r1.SliceCount, r1.Total, r2.SliceCount, r2.Total)
	}
	if len(r1.InSlice) != len(r2.InSlice) {
		t.Fatalf("bitset lengths differ: %d vs %d", len(r1.InSlice), len(r2.InSlice))
	}
	for i := range r1.InSlice {
		if r1.InSlice[i] != r2.InSlice[i] {
			t.Fatalf("slice bitsets differ at word %d", i)
		}
	}
	// The full serialized results (bitset + every statistic) agree too.
	if !bytes.Equal(store.EncodeResult(r1), store.EncodeResult(r2)) {
		t.Fatal("encoded slice results differ")
	}
}

func TestTraceRoundTripKeepsKeyAndSlice(t *testing.T) {
	tr := renderAmazon(t)
	k1, err := store.TraceKey(tr)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	// Hashing the wire bytes directly agrees with hashing via re-encode.
	if kb := store.KeyBytes(wire); kb != k1 {
		t.Fatalf("KeyBytes(wire) = %s, TraceKey = %s", kb, k1)
	}

	decoded, err := trace.Read(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	k2, err := store.TraceKey(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("decode/re-encode changed the content address: %s vs %s", k1, k2)
	}

	r1 := pixelSlice(t, tr)
	r2 := pixelSlice(t, decoded)
	if !bytes.Equal(store.EncodeResult(r1), store.EncodeResult(r2)) {
		t.Fatal("slicing the decoded trace differs from slicing the original")
	}
}

func TestForwardPassServedFromStore(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tr1 := renderAmazon(t)
	p1 := core.NewProfiler(tr1)
	p1.Opts.ProgressPoints = 160
	if err := p1.UseStore(st); err != nil {
		t.Fatal(err)
	}
	r1, hit, err := p1.SliceCached(slicer.PixelCriteria{}, p1.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first slice reported a cache hit on an empty store")
	}
	if p1.Forest() == nil {
		t.Fatal("first profiler should have computed the forward pass")
	}

	// A second profiler over an identical trace: the whole slice comes out
	// of the store, byte-identical, with no forward pass run.
	tr2 := renderAmazon(t)
	p2 := core.NewProfiler(tr2)
	p2.Opts.ProgressPoints = 160
	if err := p2.UseStore(st); err != nil {
		t.Fatal(err)
	}
	if p1.Key() != p2.Key() {
		t.Fatalf("identical traces got different keys: %s vs %s", p1.Key(), p2.Key())
	}
	before := st.Stats().Hits
	r2, hit, err := p2.SliceCached(slicer.PixelCriteria{}, p2.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second slice of an identical trace was not a cache hit")
	}
	if st.Stats().Hits <= before {
		t.Fatal("store hit counter did not increment")
	}
	if p2.Forest() != nil || p2.Deps() != nil {
		t.Fatal("cache hit should have skipped the forward pass entirely")
	}
	if !bytes.Equal(store.EncodeResult(r1), store.EncodeResult(r2)) {
		t.Fatal("cached slice result is not byte-identical to the computed one")
	}

	// A third profiler asking for a *different* variant misses the slice
	// cache but still loads the forward pass from the store.
	p3 := core.NewProfiler(renderAmazon(t))
	p3.Opts.ProgressPoints = 160
	if err := p3.UseStore(st); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := p3.SliceCached(slicer.SyscallCriteria{}, p3.Opts); err != nil || hit {
		t.Fatalf("syscall slice: hit=%v err=%v, want fresh computation", hit, err)
	}
	if p3.Forest() != nil {
		t.Fatal("forward pass should have been loaded from the store, not rebuilt")
	}
	if p3.Deps() == nil {
		t.Fatal("forward pass missing after store load")
	}
}
