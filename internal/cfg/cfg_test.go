package cfg

import (
	"testing"

	"webslice/internal/isa"
	"webslice/internal/trace"
	"webslice/internal/vm"
)

// buildDiamond runs a traced if/else both ways inside one function and
// returns the trace: the CFG must contain a real diamond.
func buildDiamond(t *testing.T) (*trace.Trace, trace.FuncID) {
	t.Helper()
	m := vm.New()
	m.Thread(0, "main")
	fn := m.Func("diamond", "test")
	run := func(v uint64) {
		m.Call(fn, func() {
			m.At("head")
			c := m.Const(v)
			if m.Branch(c) {
				m.At("then")
				m.Const(1)
			} else {
				m.At("else")
				m.Const(2)
			}
			m.At("join")
			m.Const(3)
		})
	}
	run(1)
	run(0)
	return m.Tr, fn.ID
}

func TestBuildDiamond(t *testing.T) {
	tr, fn := buildDiamond(t)
	f, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	g := f.Graphs[fn]
	if g == nil {
		t.Fatal("no graph for diamond function")
	}
	// Find the branch node: it must have exactly two successors.
	var branches []int32
	for n := int32(0); int(n) < g.NumNodes(); n++ {
		if g.IsBranch[n] {
			branches = append(branches, n)
		}
	}
	if len(branches) != 1 {
		t.Fatalf("expected 1 branch node, got %d", len(branches))
	}
	b := branches[0]
	if len(g.Succs[b]) != 2 {
		t.Fatalf("branch has %d successors, want 2", len(g.Succs[b]))
	}
	if !g.Conditional(b) {
		t.Error("branch should be conditional")
	}
	// Both arms must reconverge: each successor's successor chains reach a
	// common node (the join const). Weak check: total node count is the
	// static site count, not doubled by the second execution.
	nodes := g.NumNodes()
	f2, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Graphs[fn].NumNodes() != nodes {
		t.Error("rebuild changed node count")
	}
}

func TestLoopBackEdge(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	fn := m.Func("loop", "test")
	m.Call(fn, func() {
		for i := 0; i < 3; i++ {
			m.At("head")
			c := m.Const(uint64(1))
			if i == 2 {
				c = m.Const(0)
			}
			// Mixing sites: keep the branch at a stable label.
			m.At("cond")
			if !m.Branch(c) {
				break
			}
			m.At("body")
			m.Const(7)
		}
		m.At("done")
	})
	f, err := Build(m.Tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	g := f.Graphs[fn.ID]
	// A back edge exists: some node has a successor with a smaller
	// discovery index that is not entry.
	hasBack := false
	for u := int32(2); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Succs[u] {
			if v > Entry+1 && v < u {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Error("expected a back edge in the loop CFG")
	}
}

func TestCallAttribution(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	outer := m.Func("outer", "test")
	inner := m.Func("inner", "test")
	m.Call(outer, func() {
		m.Const(1)
		m.Call(inner, func() { m.Const(2) })
		m.Const(3)
	})
	f, err := Build(m.Tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.Graphs[outer.ID] == nil || f.Graphs[inner.ID] == nil {
		t.Fatal("missing graphs")
	}
	// Outer's graph has the call node inline: const, call, const all in one
	// chain; inner has const + ret.
	if n := f.Graphs[inner.ID].NumNodes(); n != 4 { // entry, exit, const, ret
		t.Errorf("inner nodes = %d, want 4", n)
	}
}

func TestTruncatedTraceTolerated(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	fn := m.Func("f", "test")
	m.Call(fn, func() {
		m.Const(1)
		m.Const(2)
	})
	tr := m.Tr
	// Drop the trailing Ret to simulate truncation.
	tr.Recs = tr.Recs[:len(tr.Recs)-1]
	f, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Errorf("truncated trace should still validate: %v", err)
	}
}

func TestUnmatchedReturnTolerated(t *testing.T) {
	tr := trace.New()
	fn, _ := tr.AddFunc("mid", "")
	tr.Recs = []trace.Rec{
		{PC: trace.MakePC(fn, 1), Kind: isa.KindConst, Dst: 1, TID: 0},
		{PC: trace.MakePC(fn, 2), Kind: isa.KindRet, TID: 0},
		{PC: trace.MakePC(fn, 1), Kind: isa.KindConst, Dst: 2, TID: 0},
	}
	f, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMalformedTraceRejected(t *testing.T) {
	tr := trace.New()
	f1, _ := tr.AddFunc("a", "")
	f2, _ := tr.AddFunc("b", "")
	tr.Recs = []trace.Rec{
		{PC: trace.MakePC(f1, 1), Kind: isa.KindConst, TID: 0},
		{PC: trace.MakePC(f2, 1), Kind: isa.KindConst, TID: 0}, // no call in between
	}
	if _, err := Build(tr); err == nil {
		t.Error("expected unbalanced-call error")
	}
}

func TestPerThreadStacks(t *testing.T) {
	m := vm.New()
	m.Thread(0, "a")
	m.Thread(1, "b")
	fa := m.Func("fa", "test")
	fb := m.Func("fb", "test")
	// Interleave: start a call on thread 0, run thread 1, finish thread 0.
	m.Switch(0)
	m.Call(fa, func() {
		m.Const(1)
		m.Switch(1)
		m.Call(fb, func() { m.Const(2) })
		m.Switch(0)
		m.Const(3)
	})
	f, err := Build(m.Tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Error(err)
	}
	if f.Graphs[fa.ID] == nil || f.Graphs[fb.ID] == nil {
		t.Error("both threads' functions should have graphs")
	}
}
