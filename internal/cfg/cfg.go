// Package cfg reconstructs per-function control-flow graphs from a dynamic
// instruction trace — the first half of the profiler's forward pass.
//
// As in the paper, CFGs must be built from the dynamic trace rather than
// statically: targets of indirect branches are only known at runtime, and
// function boundaries are recovered by matching call and return instructions.
// Every function's graph carries its own virtual entry and exit nodes.
package cfg

import (
	"fmt"

	"webslice/internal/isa"
	"webslice/internal/trace"
)

// Graph is the control-flow graph of one function, over the static PCs that
// executed at least once. Node 0 is the virtual entry, node 1 the virtual
// exit; remaining nodes correspond to PCs.
type Graph struct {
	Fn    trace.FuncID
	PCs   []uint32 // node index -> PC (entries 0 and 1 are 0 for entry/exit)
	Index map[uint32]int32
	Succs [][]int32
	Preds [][]int32
	// IsBranch marks nodes observed with a conditional-branch record.
	IsBranch []bool
}

// Entry and Exit are the virtual node indices present in every Graph.
const (
	Entry = 0
	Exit  = 1
)

func newGraph(fn trace.FuncID) *Graph {
	g := &Graph{
		Fn:       fn,
		PCs:      []uint32{0, 0},
		Index:    make(map[uint32]int32),
		Succs:    make([][]int32, 2),
		Preds:    make([][]int32, 2),
		IsBranch: []bool{false, false},
	}
	return g
}

// NumNodes returns the node count including entry and exit.
func (g *Graph) NumNodes() int { return len(g.PCs) }

func (g *Graph) node(pc uint32) int32 {
	if n, ok := g.Index[pc]; ok {
		return n
	}
	n := int32(len(g.PCs))
	g.PCs = append(g.PCs, pc)
	g.Succs = append(g.Succs, nil)
	g.Preds = append(g.Preds, nil)
	g.IsBranch = append(g.IsBranch, false)
	g.Index[pc] = n
	return n
}

func (g *Graph) addEdge(from, to int32) {
	for _, s := range g.Succs[from] {
		if s == to {
			return
		}
	}
	g.Succs[from] = append(g.Succs[from], to)
	g.Preds[to] = append(g.Preds[to], from)
}

// Conditional reports whether node n has two or more successors (a decision
// point the CDG cares about).
func (g *Graph) Conditional(n int32) bool { return len(g.Succs[n]) >= 2 }

// frame tracks one open function instance during the forward scan.
type frame struct {
	g    *Graph
	last int32 // node of the most recent record in this instance
}

// Forest is the set of per-function CFGs built from a trace.
type Forest struct {
	Graphs map[trace.FuncID]*Graph
}

// Build scans the trace once and reconstructs every executed function's CFG.
// It tolerates truncated traces: instances still open at the end (or return
// records with no matching call) are connected to their function's exit so
// every executed node reaches exit, which the postdominator computation
// requires.
func Build(t *trace.Trace) (*Forest, error) {
	f := &Forest{Graphs: make(map[trace.FuncID]*Graph)}
	stacks := make(map[uint8][]*frame)

	graphFor := func(fn trace.FuncID) *Graph {
		g := f.Graphs[fn]
		if g == nil {
			g = newGraph(fn)
			f.Graphs[fn] = g
		}
		return g
	}

	for i := range t.Recs {
		r := &t.Recs[i]
		st := stacks[r.TID]
		if len(st) == 0 {
			st = append(st, &frame{g: graphFor(r.Func()), last: Entry})
		}
		top := st[len(st)-1]
		if top.g.Fn != r.Func() {
			// A record from a different function without an intervening
			// call: the trace is malformed.
			return nil, fmt.Errorf("cfg: rec %d in %s but open frame is %s (unbalanced call/return)",
				i, t.FuncName(r.Func()), t.FuncName(top.g.Fn))
		}
		n := top.g.node(r.PC)
		top.g.addEdge(top.last, n)
		top.last = n

		switch r.Kind {
		case isa.KindBranch:
			top.g.IsBranch[n] = true
		case isa.KindCall:
			callee := trace.FuncID(r.Aux)
			st = append(st, &frame{g: graphFor(callee), last: Entry})
		case isa.KindRet:
			top.g.addEdge(n, Exit)
			if len(st) > 1 {
				st = st[:len(st)-1]
			} else {
				// Return with no matching call (trace began mid-function):
				// start a fresh instance of whatever comes next.
				st = st[:0]
			}
		}
		stacks[r.TID] = st
	}
	// Close all frames still open at trace end.
	for _, st := range stacks {
		for _, fr := range st {
			if fr.last != Exit {
				fr.g.addEdge(fr.last, Exit)
			}
		}
	}
	// A function may have been registered for a call that never executed a
	// record (trace truncated right after the call): give it a trivial body.
	for _, g := range f.Graphs {
		if len(g.Succs[Entry]) == 0 {
			g.addEdge(Entry, Exit)
		}
	}
	return f, nil
}

// Validate checks structural invariants of every graph: edges are symmetric
// between Succs and Preds, every node is reachable from entry, and every
// node reaches exit. Returns the first violation.
func (f *Forest) Validate() error {
	for fn, g := range f.Graphs {
		n := g.NumNodes()
		for u := int32(0); int(u) < n; u++ {
			for _, v := range g.Succs[u] {
				if !contains(g.Preds[v], u) {
					return fmt.Errorf("cfg: fn %d edge %d->%d missing pred link", fn, u, v)
				}
			}
		}
		if err := g.checkReach(); err != nil {
			return fmt.Errorf("cfg: fn %d: %w", fn, err)
		}
	}
	return nil
}

func (g *Graph) checkReach() error {
	// Forward reachability from entry.
	seen := make([]bool, g.NumNodes())
	var stack []int32
	stack = append(stack, Entry)
	seen[Entry] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Succs[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("node %d (pc %#x) unreachable from entry", i, g.PCs[i])
		}
	}
	// Backward reachability from exit.
	seen = make([]bool, g.NumNodes())
	stack = stack[:0]
	stack = append(stack, Exit)
	seen[Exit] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Preds[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("node %d (pc %#x) cannot reach exit", i, g.PCs[i])
		}
	}
	return nil
}

func contains(s []int32, x int32) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
