package dom

import (
	"testing"
	"testing/quick"

	"webslice/internal/vm"
	"webslice/internal/vmem"
)

func newTree(t *testing.T) (*vm.Machine, *Tree) {
	t.Helper()
	m := vm.New()
	m.Thread(0, "main")
	return m, NewTree(m)
}

func TestTreeConstruction(t *testing.T) {
	m, tr := newTree(t)
	body := tr.NewElement("body", "", "page")
	tr.Append(tr.Doc, body)
	a := tr.NewElement("div", "a", "x")
	b := tr.NewElement("div", "b", "x")
	tr.Append(body, a)
	tr.Append(body, b)

	if tr.Count() != 4 {
		t.Errorf("Count = %d", tr.Count())
	}
	if tr.ByID("a") != a || tr.ByID("b") != b {
		t.Error("id index broken")
	}
	if tr.ByAddr(a.Addr) != a {
		t.Error("address index broken")
	}
	// Traced sibling/parent pointers must mirror the Go structure.
	if got := vmem.Addr(m.Mem.ReadU64(a.Addr+OffNextSib, 4)); got != b.Addr {
		t.Errorf("next-sibling pointer = %#x, want %#x", got, b.Addr)
	}
	if got := vmem.Addr(m.Mem.ReadU64(b.Addr+OffParent, 4)); got != body.Addr {
		t.Errorf("parent pointer wrong")
	}
	if got := vmem.Addr(m.Mem.ReadU64(body.Addr+OffFirstChild, 4)); got != a.Addr {
		t.Errorf("first-child pointer wrong")
	}
}

func TestTracedLookupMatchesGo(t *testing.T) {
	m, tr := newTree(t)
	for _, id := range []string{"alpha", "beta", "gamma"} {
		n := tr.NewElement("div", id, "")
		tr.Append(tr.Doc, n)
	}
	fn := m.Func("getElementById", "")
	node, reg := tr.LookupID(fn, "beta")
	if node == nil || node.ID != "beta" {
		t.Fatalf("lookup returned %+v", node)
	}
	if vmem.Addr(m.Val(reg)) != node.Addr {
		t.Errorf("traced lookup register %#x != node addr %#x", m.Val(reg), node.Addr)
	}
	miss, missReg := tr.LookupID(fn, "nope")
	if miss != nil || m.Val(missReg) != 0 {
		t.Error("missing id should return nil/0")
	}
}

func TestSetTextRaw(t *testing.T) {
	m, tr := newTree(t)
	n := tr.NewElement("span", "s", "")
	tr.Append(tr.Doc, n)
	src := m.Heap.Alloc(16)
	m.StaticData(src, []byte("updated!"))
	tr.SetTextRaw(n, src, 8, "updated!")
	addr := vmem.Addr(m.Mem.ReadU64(n.Addr+OffText, 4))
	if got := string(m.Mem.ReadBytes(addr, 8)); got != "updated!" {
		t.Errorf("text = %q", got)
	}
	if n.Text != "updated!" {
		t.Error("Go mirror not updated")
	}
}

func TestHashDeterministicAndSpread(t *testing.T) {
	if Hash("menu") == Hash("item") {
		t.Error("suspicious hash collision")
	}
	f := func(s string) bool { return Hash(s) == Hash(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTagByName(t *testing.T) {
	if TagByName("div") != TagDiv || TagByName("img") != TagImg {
		t.Error("known tags wrong")
	}
	a, b := TagByName("custom-a"), TagByName("custom-b")
	if a == b {
		t.Error("distinct unknown tags collide")
	}
	if a < 0x100 {
		t.Error("unknown tags must hash above the known range")
	}
	if TagByName("custom-a") != a {
		t.Error("unknown tag ids must be stable")
	}
}
