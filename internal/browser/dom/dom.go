// Package dom stores the Document Object Model in traced memory. Every node
// is a fixed-size record in the machine heap; tree mutations, attribute
// hashes, and text contents all move through traced instructions, so the
// provenance chain network bytes → parser → DOM → style → pixels is visible
// to the slicer. Go-side mirror structs exist purely for orchestration and
// tests — no engine value flows through them.
package dom

import (
	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// NodeSize is the byte size of a node record.
const NodeSize = 64

// Field offsets within a node record.
const (
	OffTag        = 0  // u16 tag id
	OffType       = 2  // u8 NodeType
	OffFlags      = 3  // u8 flags
	OffParent     = 4  // u32 node addr
	OffFirstChild = 8  // u32 node addr
	OffNextSib    = 12 // u32 node addr
	OffIDHash     = 16 // u32
	OffClassHash  = 20 // u32
	OffText       = 24 // u32 text addr (text nodes)
	OffTextLen    = 28 // u32
	OffStyle      = 32 // u32 computed-style addr
	OffLayout     = 36 // u32 layout-box addr
	OffHandler    = 40 // u32 click-handler function index + 1 (0 = none)
	OffLayerID    = 44 // u32 compositor layer id + 1 (0 = in parent layer)
	OffImage      = 48 // u32 decoded-image addr (img elements)
	OffImageLen   = 52 // u32
	OffImageState = 56 // u32 ImageState (img elements)
)

// ImageState values stored at OffImageState.
const (
	// ImagePending means no decode has completed (initial state).
	ImagePending = 0
	// ImageReady means a decoded buffer is installed at OffImage.
	ImageReady = 1
	// ImageBroken means the resource fetch ultimately failed; paint draws a
	// placeholder box instead of image content.
	ImageBroken = 2
)

// NodeType distinguishes element and text nodes.
type NodeType uint8

const (
	// ElementNode is a tag element.
	ElementNode NodeType = 1
	// TextNode is a run of character data.
	TextNode NodeType = 2
)

// Tag identifies an element's tag name compactly.
type Tag uint16

// Known tags (anything else hashes into the upper range).
const (
	TagHTML Tag = iota + 1
	TagHead
	TagBody
	TagDiv
	TagSpan
	TagP
	TagA
	TagImg
	TagInput
	TagButton
	TagUL
	TagLI
	TagH1
	TagH2
	TagNav
	TagSection
	TagHeader
	TagFooter
	TagScript
	TagStyle
	TagLink
	TagTitle
	TagCanvas
)

var tagNames = map[string]Tag{
	"html": TagHTML, "head": TagHead, "body": TagBody, "div": TagDiv,
	"span": TagSpan, "p": TagP, "a": TagA, "img": TagImg, "input": TagInput,
	"button": TagButton, "ul": TagUL, "li": TagLI, "h1": TagH1, "h2": TagH2,
	"nav": TagNav, "section": TagSection, "header": TagHeader,
	"footer": TagFooter, "script": TagScript, "style": TagStyle,
	"link": TagLink, "title": TagTitle, "canvas": TagCanvas,
}

// TagByName resolves a tag name; unknown names get a stable hashed id.
func TagByName(name string) Tag {
	if t, ok := tagNames[name]; ok {
		return t
	}
	return Tag(0x100 + Hash(name)%0xFE00)
}

// Hash is the FNV-1a 32-bit hash used for ids, classes and property names
// throughout the engine.
func Hash(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// Node is the Go mirror of one DOM node.
type Node struct {
	Addr     vmem.Addr
	Type     NodeType
	Tag      Tag
	TagName  string
	ID       string
	Class    string
	Text     string
	Parent   *Node
	Children []*Node
}

// Tree is the document plus its node index.
type Tree struct {
	M      *vm.Machine
	Doc    *Node
	All    []*Node // creation order
	byID   map[string]*Node
	byAddr map[vmem.Addr]*Node

	newFn, appendFn, textFn *vm.Fn
	idTable                 vmem.Addr // (hash u32, addr u32) pairs for traced lookup
	idCount                 int
	idCap                   int
}

// NewTree creates an empty document owned by the machine.
func NewTree(m *vm.Machine) *Tree {
	t := &Tree{
		M:        m,
		byID:     make(map[string]*Node),
		byAddr:   make(map[vmem.Addr]*Node),
		newFn:    m.Func("blink::Document::createElement", ""),
		appendFn: m.Func("blink::ContainerNode::appendChild", ""),
		textFn:   m.Func("blink::CharacterData::setData", ""),
		idCap:    512,
	}
	t.idTable = m.Heap.Alloc(t.idCap * 8)
	t.Doc = t.createNode(ElementNode, TagHTML, "html", "", "")
	return t
}

func (t *Tree) createNode(typ NodeType, tag Tag, tagName, id, class string) *Node {
	m := t.M
	n := &Node{Type: typ, Tag: tag, TagName: tagName, ID: id, Class: class}
	n.Addr = m.Heap.Alloc(NodeSize)
	m.Call(t.newFn, func() {
		m.Store(n.Addr+OffTag, 2, m.Imm(uint64(tag)))
		m.Store(n.Addr+OffType, 1, m.Imm(uint64(typ)))
		if id != "" {
			m.StoreU32(n.Addr+OffIDHash, m.Imm(uint64(Hash(id))))
		}
		if class != "" {
			m.StoreU32(n.Addr+OffClassHash, m.Imm(uint64(Hash(class))))
		}
	})
	t.All = append(t.All, n)
	t.byAddr[n.Addr] = n
	if id != "" {
		t.byID[id] = n
		t.registerID(Hash(id), n.Addr)
	}
	return n
}

func (t *Tree) registerID(h uint32, addr vmem.Addr) {
	m := t.M
	if t.idCount >= t.idCap {
		return // index full; lookups fall back to misses
	}
	slot := t.idTable + vmem.Addr(t.idCount*8)
	m.StoreU32(slot, m.Imm(uint64(h)))
	m.StoreU32(slot+4, m.Imm(uint64(addr)))
	t.idCount++
}

// NewElement creates an element node (traced) with optional id and class.
func (t *Tree) NewElement(tagName, id, class string) *Node {
	return t.createNode(ElementNode, TagByName(tagName), tagName, id, class)
}

// NewTextFrom creates a text node whose contents are traced-copied from the
// source buffer (so DOM text provably descends from network bytes).
func (t *Tree) NewTextFrom(src vmem.Range, text string) *Node {
	m := t.M
	n := t.createNode(TextNode, 0, "#text", "", "")
	n.Text = text
	if src.Size > 0 {
		dst := m.Heap.Alloc(int(src.Size))
		m.Call(t.textFn, func() {
			m.Copy(dst, src.Addr, int(src.Size))
			m.StoreU32(n.Addr+OffText, m.Imm(uint64(dst)))
			m.StoreU32(n.Addr+OffTextLen, m.Imm(uint64(src.Size)))
		})
	}
	return n
}

// SetTextRaw replaces a node's text with engine-generated bytes (used by the
// JS textContent binding; the bytes come from a traced string value).
func (t *Tree) SetTextRaw(n *Node, src vmem.Addr, length int, text string) {
	m := t.M
	n.Text = text
	dst := m.Heap.Alloc(length + 1)
	m.Call(t.textFn, func() {
		if length > 0 {
			m.Copy(dst, src, length)
		}
		m.StoreU32(n.Addr+OffText, m.Imm(uint64(dst)))
		m.StoreU32(n.Addr+OffTextLen, m.Imm(uint64(length)))
	})
}

// Append links child under parent (traced pointer stores).
func (t *Tree) Append(parent, child *Node) {
	m := t.M
	m.Call(t.appendFn, func() {
		m.StoreU32(child.Addr+OffParent, m.Imm(uint64(parent.Addr)))
		if len(parent.Children) == 0 {
			m.StoreU32(parent.Addr+OffFirstChild, m.Imm(uint64(child.Addr)))
		} else {
			last := parent.Children[len(parent.Children)-1]
			m.StoreU32(last.Addr+OffNextSib, m.Imm(uint64(child.Addr)))
		}
	})
	child.Parent = parent
	parent.Children = append(parent.Children, child)
}

// ByID returns the Go mirror for a DOM id (nil if absent) without tracing.
func (t *Tree) ByID(id string) *Node { return t.byID[id] }

// ByAddr returns the node whose record lives at addr (nil if none).
func (t *Tree) ByAddr(a vmem.Addr) *Node { return t.byAddr[a] }

// LookupID performs the traced getElementById: a scan of the id index
// comparing hashes, returning the node and leaving the traced compare chain
// in the trace. The returned register holds the node address.
func (t *Tree) LookupID(fn *vm.Fn, id string) (*Node, isa.Reg) {
	m := t.M
	target := t.byID[id]
	h := Hash(id)
	var out isa.Reg
	m.Call(fn, func() {
		want := m.Imm(uint64(h))
		out = m.Imm(0)
		for i := 0; i < t.idCount; i++ {
			m.At("probe")
			slot := t.idTable + vmem.Addr(i*8)
			got := m.LoadU32(slot)
			eq := m.Op(isa.OpCmpEQ, got, want)
			if m.Branch(eq) {
				m.At("hit")
				out = m.LoadU32(slot + 4)
				break
			}
		}
	})
	return target, out
}

// Elements returns all element nodes in document order.
func (t *Tree) Elements() []*Node {
	var out []*Node
	for _, n := range t.All {
		if n.Type == ElementNode {
			out = append(out, n)
		}
	}
	return out
}

// Count returns the total node count.
func (t *Tree) Count() int { return len(t.All) }
