// Package sched implements the renderer's task scheduler: per-thread event
// loops with cross-thread task posting, delayed tasks on a virtual clock,
// and the synchronization overhead (queue locks, futex wakes) that real
// Chromium threads pay. All threads execute sequentially on the traced
// machine, matching the paper's single-core trace collection.
//
// The dispatch bookkeeping is itself traced: queue-lock handshakes run under
// the base/threading namespace (the paper's Multi-threading category) and
// queue management under base/message_loop (the bulk of its Other category),
// so scheduler overhead shows up in the characterization exactly where the
// paper found it.
package sched

import (
	"container/heap"
	"fmt"

	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// CyclesPerMs converts the virtual clock (1 instruction = 1 cycle) to
// simulated wall time. The traces are scaled ~1/1000 from the paper's
// billions of instructions, so one virtual microsecond per instruction keeps
// time constants (frame intervals, network latency) meaningful.
const CyclesPerMs = 1000

// FrameIntervalCycles is the 60 Hz BeginFrame interval.
const FrameIntervalCycles = 16 * CyclesPerMs

// Task is one unit of work queued to a thread.
type Task struct {
	Thread    uint8
	Name      string
	Ready     uint64
	Run       func()
	seq       int
	cancelled bool
}

// Timer is a handle on a delayed task that may be cancelled before it fires
// (Chromium's CancelableTaskTracker). A cancelled task is skipped by the
// dispatch loop without advancing the virtual clock to its deadline.
type Timer struct {
	s *Scheduler
	t *Task
}

// Cancel marks the task cancelled and pays the traced dequeue bookkeeping
// (the queue's pending count drops without a dispatch). It reports whether
// the task was still pending; cancelling a fired or already-cancelled task
// is a no-op.
func (tm *Timer) Cancel() bool {
	if tm == nil || tm.t == nil || tm.t.cancelled || tm.t.Run == nil {
		return false
	}
	s, m := tm.s, tm.s.M
	tm.t.cancelled = true
	tm.t.Run = nil
	s.cancelled++
	s.Cancelled++
	lock, head := s.cells(tm.t.Thread)
	m.Call(s.cancelFn, func() {
		m.Call(s.lockFn, func() {
			m.At("spin")
			v := m.LoadU32(lock)
			c := m.OpImm(isa.OpCmpEQ, v, 0)
			m.Branch(c)
			m.StoreU32(lock, m.Imm(1))
		})
		m.At("drop")
		n := m.LoadU32(head)
		nz := m.OpImm(isa.OpCmpGT, n, 0)
		if m.Branch(nz) {
			m.StoreU32(head, m.OpImm(isa.OpSub, n, 1))
		}
		m.Call(s.unlockFn, func() {
			m.StoreU32(lock, m.Imm(0))
		})
	})
	return true
}

// Fired reports whether the task already ran (or was cancelled).
func (tm *Timer) Fired() bool { return tm == nil || tm.t == nil || tm.t.Run == nil }

type taskHeap []*Task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].Ready != h[j].Ready {
		return h[i].Ready < h[j].Ready
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(*Task)) }
func (h *taskHeap) Pop() any     { old := *h; n := len(old); t := old[n-1]; *h = old[:n-1]; return t }

// Scheduler owns all thread queues.
type Scheduler struct {
	M *vm.Machine

	tasks taskHeap
	seq   int

	queueLock map[uint8]vmem.Addr // one lock word per thread queue
	queueHead map[uint8]vmem.Addr // queue bookkeeping cell
	fnCache   map[string]*vm.Fn

	lockFn, unlockFn, pumpFn, timerFn, cancelFn *vm.Fn

	// cancelled counts tasks still in the heap whose Timer was cancelled.
	cancelled int

	// OnDispatch, if set, runs after each task's dequeue bookkeeping and
	// before the task body (Chromium records task-timing histograms on
	// every dispatch; the browser wires this to the debug log).
	OnDispatch func()

	// Stats
	Dispatched int
	Cancelled  int
	IdleCycles uint64
}

// New creates a scheduler over the machine. Register threads on the machine
// before posting to them.
func New(m *vm.Machine) *Scheduler {
	s := &Scheduler{
		M:         m,
		queueLock: make(map[uint8]vmem.Addr),
		queueHead: make(map[uint8]vmem.Addr),
		fnCache:   make(map[string]*vm.Fn),
		lockFn:    m.Func("base::internal::SpinLock::Acquire", "base/threading"),
		unlockFn:  m.Func("base::internal::SpinLock::Release", "base/threading"),
		pumpFn:    m.Func("base::MessagePumpDefault::Run", "base/message_loop"),
		timerFn:   m.Func("base::TimeTicks::Now", "base/message_loop"),
		cancelFn:  m.Func("base::DelayedTaskManager::Cancel", "base/message_loop"),
	}
	return s
}

func (s *Scheduler) cells(tid uint8) (lock, head vmem.Addr) {
	lock, ok := s.queueLock[tid]
	if !ok {
		lock = s.M.Heap.Alloc(8)
		head = s.M.Heap.Alloc(16)
		s.queueLock[tid] = lock
		s.queueHead[tid] = head
	}
	return s.queueLock[tid], s.queueHead[tid]
}

// taskFn returns the traced function symbol for a task name (shared across
// tasks with the same name so the symbol table stays bounded).
func (s *Scheduler) taskFn(name string) *vm.Fn {
	if fn, ok := s.fnCache[name]; ok {
		return fn
	}
	fn := s.M.Func(name, namespaceOf(name))
	s.fnCache[name] = fn
	return fn
}

// namespaceOf derives the namespace from a task name of the form
// "namespace!Rest"; tasks without one land in the message loop namespace.
func namespaceOf(name string) string {
	for i := 0; i+1 < len(name); i++ {
		if name[i] == '!' {
			return name[:i]
		}
	}
	return "base/message_loop"
}

// Post queues a task on a thread, runnable immediately. Posting across
// threads pays the traced lock handshake plus a futex wake, as in Chromium.
func (s *Scheduler) Post(tid uint8, name string, run func()) {
	s.PostDelayed(tid, name, 0, run)
}

// PostDelayed queues a task runnable after delay cycles.
func (s *Scheduler) PostDelayed(tid uint8, name string, delay uint64, run func()) {
	s.PostDelayedCancellable(tid, name, delay, run)
}

// PostDelayedCancellable queues a delayed task and returns a Timer handle
// that can cancel it before it fires (used for per-request network timeouts).
func (s *Scheduler) PostDelayedCancellable(tid uint8, name string, delay uint64, run func()) *Timer {
	m := s.M
	lock, head := s.cells(tid)
	cross := m.Cur() != nil && m.Cur().ID != tid
	// Enqueue handshake: acquire the queue lock, bump the pending count,
	// release; cross-thread posts also wake the target with a futex.
	m.Call(s.lockFn, func() {
		m.At("spin")
		v := m.LoadU32(lock)
		c := m.OpImm(isa.OpCmpEQ, v, 0)
		m.Branch(c)
		m.StoreU32(lock, m.Imm(1))
	})
	n := m.LoadU32(head)
	m.StoreU32(head, m.AddImm(n, 1))
	m.Call(s.unlockFn, func() {
		m.StoreU32(lock, m.Imm(0))
	})
	if cross {
		m.Syscall(isa.SysFutex, isa.RegNone, isa.RegNone,
			[]vmem.Range{{Addr: lock, Size: 4}}, nil, nil)
	}
	s.seq++
	t := &Task{Thread: tid, Name: name, Ready: m.Cycle() + delay, Run: run, seq: s.seq}
	heap.Push(&s.tasks, t)
	return &Timer{s: s, t: t}
}

// PostAt queues a task runnable at an absolute cycle.
func (s *Scheduler) PostAt(tid uint8, name string, at uint64, run func()) {
	now := s.M.Cycle()
	var delay uint64
	if at > now {
		delay = at - now
	}
	s.PostDelayed(tid, name, delay, run)
}

// Run drains the task queues: repeatedly dispatch the earliest-runnable
// task, idling the virtual clock when nothing is ready. Tasks may post more
// tasks. Returns when all queues are empty.
func (s *Scheduler) Run() {
	m := s.M
	for s.tasks.Len() > 0 {
		t := heap.Pop(&s.tasks).(*Task)
		if t.cancelled {
			// Cancelled timers are discarded without idling the clock to
			// their deadline — cancellation is the whole point.
			s.cancelled--
			continue
		}
		if t.Ready > m.Cycle() {
			s.IdleCycles += t.Ready - m.Cycle()
			m.Idle(t.Ready - m.Cycle())
		}
		m.Switch(t.Thread)
		lock, head := s.cells(t.Thread)
		// Dispatch bookkeeping on the dequeuing thread: timer read, lock,
		// pop, unlock.
		m.Call(s.pumpFn, func() {
			m.Call(s.timerFn, func() {
				ts := m.Heap.Alloc(16)
				m.Syscall(isa.SysClockGettime, isa.RegNone, isa.RegNone,
					nil, []vmem.Range{{Addr: ts, Size: 16}}, []byte{1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0})
			})
			m.Call(s.lockFn, func() {
				m.At("spin")
				v := m.LoadU32(lock)
				c := m.OpImm(isa.OpCmpEQ, v, 0)
				m.Branch(c)
				m.StoreU32(lock, m.Imm(1))
			})
			m.At("pop")
			n := m.LoadU32(head)
			z := m.OpImm(isa.OpCmpGT, n, 0)
			if m.Branch(z) {
				m.At("dec")
				m.StoreU32(head, m.OpImm(isa.OpSub, n, 1))
			}
			m.Call(s.unlockFn, func() {
				m.StoreU32(lock, m.Imm(0))
			})
		})
		s.Dispatched++
		if s.OnDispatch != nil {
			s.OnDispatch()
		}
		run := t.Run
		t.Run = nil // lets Timer.Fired observe completion
		m.Call(s.taskFn(t.Name), run)
	}
}

// RunUntil drains tasks whose Ready time is at most deadline, leaving later
// tasks queued (used to cut a load phase from a browse phase).
func (s *Scheduler) RunUntil(deadline uint64) {
	m := s.M
	for s.tasks.Len() > 0 && s.tasks[0].Ready <= deadline {
		t := heap.Pop(&s.tasks).(*Task)
		if t.cancelled {
			s.cancelled--
			continue
		}
		if t.Ready > m.Cycle() {
			s.IdleCycles += t.Ready - m.Cycle()
			m.Idle(t.Ready - m.Cycle())
		}
		m.Switch(t.Thread)
		s.Dispatched++
		run := t.Run
		t.Run = nil
		m.Call(s.taskFn(t.Name), run)
	}
}

// Pending reports how many live (non-cancelled) tasks are queued.
func (s *Scheduler) Pending() int { return s.tasks.Len() - s.cancelled }

// String describes the scheduler state.
func (s *Scheduler) String() string {
	return fmt.Sprintf("sched{pending=%d dispatched=%d idle=%d}", s.tasks.Len(), s.Dispatched, s.IdleCycles)
}
