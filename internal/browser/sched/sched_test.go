package sched

import (
	"testing"

	"webslice/internal/isa"
	"webslice/internal/vm"
)

func newSched(t *testing.T) (*vm.Machine, *Scheduler) {
	t.Helper()
	m := vm.New()
	m.Thread(0, "main")
	m.Thread(1, "worker")
	return m, New(m)
}

func TestFIFOWithinThread(t *testing.T) {
	m, s := newSched(t)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Post(0, "task", func() { order = append(order, i) })
	}
	s.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v", order)
		}
	}
	if s.Dispatched != 5 {
		t.Errorf("dispatched = %d", s.Dispatched)
	}
	_ = m
}

func TestDelayedOrderingAndIdle(t *testing.T) {
	m, s := newSched(t)
	var order []string
	s.PostDelayed(0, "late", 5000, func() { order = append(order, "late") })
	s.Post(0, "now", func() { order = append(order, "now") })
	start := m.Cycle()
	s.Run()
	if len(order) != 2 || order[0] != "now" || order[1] != "late" {
		t.Fatalf("order = %v", order)
	}
	if m.Cycle()-start < 5000 {
		t.Error("virtual clock did not advance past the delay")
	}
	if s.IdleCycles == 0 {
		t.Error("waiting for the delayed task should register idle time")
	}
}

func TestCrossThreadPostEmitsFutex(t *testing.T) {
	m, s := newSched(t)
	m.Switch(0)
	s.Post(1, "cross", func() {})
	futexes := 0
	for i, eff := range m.Tr.Sys {
		_ = i
		if eff.Num == isa.SysFutex {
			futexes++
		}
	}
	if futexes == 0 {
		t.Error("cross-thread post must wake the target with a futex")
	}
	s.Run()
}

func TestTasksSwitchThreads(t *testing.T) {
	m, s := newSched(t)
	var ran []uint8
	s.Post(1, "w", func() { ran = append(ran, m.Cur().ID) })
	s.Post(0, "m", func() { ran = append(ran, m.Cur().ID) })
	s.Run()
	seen := map[uint8]bool{}
	for _, tid := range ran {
		seen[tid] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("threads ran: %v", ran)
	}
}

func TestTasksCanPostTasks(t *testing.T) {
	_, s := newSched(t)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 4 {
			s.Post(0, "again", recurse)
		}
	}
	s.Post(0, "seed", recurse)
	s.Run()
	if depth != 4 {
		t.Errorf("depth = %d", depth)
	}
	if s.Pending() != 0 {
		t.Error("queue should drain")
	}
}

func TestNamespaceOfTaskNames(t *testing.T) {
	if ns := namespaceOf("cc!Draw"); ns != "cc" {
		t.Errorf("namespaceOf = %q", ns)
	}
	if ns := namespaceOf("plain"); ns != "base/message_loop" {
		t.Errorf("default namespace = %q", ns)
	}
}

func TestOnDispatchHookRuns(t *testing.T) {
	_, s := newSched(t)
	hooks := 0
	s.OnDispatch = func() { hooks++ }
	s.Post(0, "a", func() {})
	s.Post(0, "b", func() {})
	s.Run()
	if hooks != 2 {
		t.Errorf("hooks = %d", hooks)
	}
}
