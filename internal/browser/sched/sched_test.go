package sched

import (
	"testing"

	"webslice/internal/isa"
	"webslice/internal/vm"
)

func newSched(t *testing.T) (*vm.Machine, *Scheduler) {
	t.Helper()
	m := vm.New()
	m.Thread(0, "main")
	m.Thread(1, "worker")
	return m, New(m)
}

func TestFIFOWithinThread(t *testing.T) {
	m, s := newSched(t)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Post(0, "task", func() { order = append(order, i) })
	}
	s.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v", order)
		}
	}
	if s.Dispatched != 5 {
		t.Errorf("dispatched = %d", s.Dispatched)
	}
	_ = m
}

func TestDelayedOrderingAndIdle(t *testing.T) {
	m, s := newSched(t)
	var order []string
	s.PostDelayed(0, "late", 5000, func() { order = append(order, "late") })
	s.Post(0, "now", func() { order = append(order, "now") })
	start := m.Cycle()
	s.Run()
	if len(order) != 2 || order[0] != "now" || order[1] != "late" {
		t.Fatalf("order = %v", order)
	}
	if m.Cycle()-start < 5000 {
		t.Error("virtual clock did not advance past the delay")
	}
	if s.IdleCycles == 0 {
		t.Error("waiting for the delayed task should register idle time")
	}
}

func TestCrossThreadPostEmitsFutex(t *testing.T) {
	m, s := newSched(t)
	m.Switch(0)
	s.Post(1, "cross", func() {})
	futexes := 0
	for i, eff := range m.Tr.Sys {
		_ = i
		if eff.Num == isa.SysFutex {
			futexes++
		}
	}
	if futexes == 0 {
		t.Error("cross-thread post must wake the target with a futex")
	}
	s.Run()
}

func TestTasksSwitchThreads(t *testing.T) {
	m, s := newSched(t)
	var ran []uint8
	s.Post(1, "w", func() { ran = append(ran, m.Cur().ID) })
	s.Post(0, "m", func() { ran = append(ran, m.Cur().ID) })
	s.Run()
	seen := map[uint8]bool{}
	for _, tid := range ran {
		seen[tid] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("threads ran: %v", ran)
	}
}

func TestTasksCanPostTasks(t *testing.T) {
	_, s := newSched(t)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 4 {
			s.Post(0, "again", recurse)
		}
	}
	s.Post(0, "seed", recurse)
	s.Run()
	if depth != 4 {
		t.Errorf("depth = %d", depth)
	}
	if s.Pending() != 0 {
		t.Error("queue should drain")
	}
}

func TestNamespaceOfTaskNames(t *testing.T) {
	if ns := namespaceOf("cc!Draw"); ns != "cc" {
		t.Errorf("namespaceOf = %q", ns)
	}
	if ns := namespaceOf("plain"); ns != "base/message_loop" {
		t.Errorf("default namespace = %q", ns)
	}
}

func TestOnDispatchHookRuns(t *testing.T) {
	_, s := newSched(t)
	hooks := 0
	s.OnDispatch = func() { hooks++ }
	s.Post(0, "a", func() {})
	s.Post(0, "b", func() {})
	s.Run()
	if hooks != 2 {
		t.Errorf("hooks = %d", hooks)
	}
}

func TestDelayedTasksFireInDeadlineOrder(t *testing.T) {
	_, s := newSched(t)
	var order []string
	s.PostDelayed(0, "c", 9000, func() { order = append(order, "c") })
	s.PostDelayed(0, "a", 1000, func() { order = append(order, "a") })
	s.PostDelayed(0, "b", 4000, func() { order = append(order, "b") })
	s.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestDelayedTiesAtSameCycleKeepPostOrder(t *testing.T) {
	_, s := newSched(t)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		s.PostDelayed(0, "tie", 2000, func() { order = append(order, i) })
	}
	s.Run()
	if len(order) != 4 {
		t.Fatalf("ran %d of 4 tied tasks", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("tied tasks reordered: %v", order)
		}
	}
}

func TestCancelBeforeFiring(t *testing.T) {
	m, s := newSched(t)
	fired := false
	tm := s.PostDelayedCancellable(0, "doomed", 5000, func() { fired = true })
	start := m.Cycle()
	if !tm.Cancel() {
		t.Fatal("first Cancel must succeed")
	}
	if tm.Cancel() {
		t.Error("second Cancel must be a no-op")
	}
	s.Run()
	if fired {
		t.Error("cancelled timer ran anyway")
	}
	if s.Cancelled != 1 {
		t.Errorf("Cancelled = %d", s.Cancelled)
	}
	// A cancelled timer must not drag the virtual clock to its deadline.
	if m.Cycle()-start >= 5000 {
		t.Error("clock advanced to the cancelled timer's deadline")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after drain", s.Pending())
	}
}

func TestCancelAfterFiringIsNoop(t *testing.T) {
	_, s := newSched(t)
	fired := false
	tm := s.PostDelayedCancellable(0, "quick", 100, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("timer did not fire")
	}
	if !tm.Fired() {
		t.Error("Fired() should report completion")
	}
	if tm.Cancel() {
		t.Error("Cancel after firing must report false")
	}
	if s.Cancelled != 0 {
		t.Errorf("Cancelled = %d, want 0", s.Cancelled)
	}
}

func TestCancelledTimerBetweenLiveTimers(t *testing.T) {
	m, s := newSched(t)
	var order []string
	s.PostDelayed(0, "first", 1000, func() { order = append(order, "first") })
	tm := s.PostDelayedCancellable(0, "mid", 3000, func() { order = append(order, "mid") })
	s.PostDelayed(0, "last", 6000, func() { order = append(order, "last") })
	tm.Cancel()
	start := m.Cycle()
	s.Run()
	if len(order) != 2 || order[0] != "first" || order[1] != "last" {
		t.Fatalf("order = %v", order)
	}
	if m.Cycle()-start < 6000 {
		t.Error("surviving timers must still reach their deadlines")
	}
}

func TestTimerRacePattern(t *testing.T) {
	// The loader's timeout-vs-response race: whichever side settles first
	// cancels the other; exactly one wins.
	_, s := newSched(t)
	winner := ""
	settled := false
	tm := s.PostDelayedCancellable(0, "timeout", 4000, func() {
		if !settled {
			settled = true
			winner = "timeout"
		}
	})
	s.PostDelayed(0, "response", 1500, func() {
		if !settled {
			settled = true
			winner = "response"
			tm.Cancel()
		}
	})
	s.Run()
	if winner != "response" {
		t.Errorf("winner = %q", winner)
	}
	if s.Cancelled != 1 {
		t.Errorf("Cancelled = %d", s.Cancelled)
	}
}
