// Package net simulates the renderer's network stack: resource requests are
// serialized into IO buffers and sent with sendto; responses arrive after a
// modeled latency via recvfrom, which deposits the resource body into traced
// memory. Because recvfrom is a definition site for the liveness analysis,
// network input that eventually reaches the screen joins the slice, exactly
// as the paper's kernel-manual syscall modeling intended.
package net

import (
	"webslice/internal/browser/ns"
	"webslice/internal/browser/sched"
	"webslice/internal/content"
	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// HTTP-ish status codes the simulated stack reports to callers.
const (
	// StatusNetError marks a transport failure: the retry budget ran out on
	// timeouts or connection errors and no response was ever completed.
	StatusNetError = 0
	// StatusOK is a complete successful delivery.
	StatusOK = 200
	// StatusNotFound is the explicit missing-resource status (previously an
	// unknown URL was indistinguishable from an empty 200 body).
	StatusNotFound = 404
	// StatusServerError is the injected 5xx.
	StatusServerError = 503
)

// Response is the terminal outcome of a Fetch: the delivered body (zero for
// failures and empty bodies), the final status, and how many attempts the
// loader spent getting there.
type Response struct {
	Body     vmem.Range
	Status   int
	Attempts int
	// TimedOut reports whether any attempt hit the per-request timeout.
	TimedOut bool
}

// OK reports a successful delivery.
func (r Response) OK() bool { return r.Status == StatusOK }

// Loader fetches resources for one site over the simulated network. All
// socket work runs on the IO thread; completion callbacks are posted to the
// requesting thread. With a FaultPlan attached, the loader survives injected
// faults via traced retry/timeout/backoff handling under the net/error
// namespace.
type Loader struct {
	M    *vm.Machine
	S    *sched.Scheduler
	Site *content.Site
	// IOThread is the thread socket syscalls run on (Chrome_ChildIOThread).
	IOThread uint8

	sendFn, recvFn, parseFn, gunzipFn, cacheFn *vm.Fn
	// Error-path symbols, all under ns.NetError so the faults experiment can
	// slice them out of the trace.
	timeoutFn, resetFn, truncFn, http5xxFn, backoffFn, retryFn, failFn, staleFn, notFoundFn *vm.Fn

	// ChunkBytes is the socket read granularity (one recvfrom per chunk).
	ChunkBytes int
	// WastePasses scales cache-write and checksum work per response —
	// bookkeeping whose output nothing user-visible reads.
	WastePasses int

	// Faults is the injected fault plan; nil fetches fair-weather.
	Faults *FaultPlan
	// Retry is the client fault-handling policy.
	Retry RetryPolicy

	rng splitmix64
	// backoffCell is the traced cell the backoff computation writes.
	backoffCell vmem.Addr

	// Fetched maps URL -> heap address and size of the delivered body.
	Fetched map[string]vmem.Range
	// BytesFetched totals delivered body bytes.
	BytesFetched int

	// Stats of the fault-handling path.
	Attempts     int // request attempts sent
	Retries      int // attempts beyond the first
	Timeouts     int // attempts that hit the per-request timeout
	Resets       int // connection resets observed
	Truncations  int // content-length mismatches observed
	ServerErrors int // 5xx responses observed
	NotFound     int // 404s observed
	Failures     int // fetches that exhausted the retry budget
	FailedURLs   []string
}

// NewLoader wires a loader to the machine, scheduler and site.
func NewLoader(m *vm.Machine, s *sched.Scheduler, site *content.Site, ioThread uint8) *Loader {
	return &Loader{
		M:           m,
		S:           s,
		Site:        site,
		IOThread:    ioThread,
		sendFn:      m.Func("net::HttpStreamParser::SendRequest", ns.Net),
		recvFn:      m.Func("net::HttpStreamParser::ReadResponseBody", ns.Net),
		parseFn:     m.Func("net::HttpResponseHeaders::Parse", ns.Net),
		gunzipFn:    m.Func("net::GZipSourceStream::FilterData", ns.Net),
		cacheFn:     m.Func("net::disk_cache::EntryImpl::WriteData", ns.Net),
		timeoutFn:   m.Func("net::URLRequest::OnConnectionTimeout", ns.NetError),
		resetFn:     m.Func("net::HttpStreamParser::OnConnectionReset", ns.NetError),
		truncFn:     m.Func("net::HttpStreamParser::OnContentLengthMismatch", ns.NetError),
		http5xxFn:   m.Func("net::URLRequestHttpJob::OnServerError", ns.NetError),
		backoffFn:   m.Func("net::BackoffEntry::InformOfRequest", ns.NetError),
		retryFn:     m.Func("net::URLRequestHttpJob::RestartTransaction", ns.NetError),
		failFn:      m.Func("net::URLRequest::NotifyFailure", ns.NetError),
		staleFn:     m.Func("net::URLLoader::DiscardStaleResponse", ns.NetError),
		notFoundFn:  m.Func("net::URLRequestHttpJob::OnNotFound", ns.NetError),
		ChunkBytes:  16 << 10,
		WastePasses: 1,
		Retry:       DefaultRetryPolicy(),
		rng:         splitmix64{state: 1},
		backoffCell: m.Heap.Alloc(8),
		Fetched:     make(map[string]vmem.Range),
	}
}

// SetFaults attaches a fault plan and seeds the jitter generator from it.
func (l *Loader) SetFaults(p *FaultPlan) {
	l.Faults = p
	if p != nil {
		l.rng = splitmix64{state: p.Seed | 1}
	}
}

// Fetch requests a resource and invokes done on the requesting thread once
// the fetch settles: a complete body (StatusOK), an explicit StatusNotFound
// for unknown URLs, or a failure status after the retry budget is spent.
func (l *Loader) Fetch(url string, done func(Response)) {
	l.fetchRes(l.lookup(url), url, done)
}

// FetchResource requests an explicit resource (used for browse-time
// downloads that are not part of the site's load-time resource map).
func (l *Loader) FetchResource(r *content.Resource, done func(Response)) {
	l.fetchRes(r, r.URL, done)
}

func (l *Loader) lookup(url string) *content.Resource {
	if r, ok := l.Site.Get(url); ok {
		return r
	}
	return nil
}

// request tracks one Fetch across its attempts.
type request struct {
	res      *content.Resource
	url      string
	from     uint8 // requesting thread, where done runs
	done     func(Response)
	attempt  int
	timedOut bool
}

func (l *Loader) fetchRes(res *content.Resource, url string, done func(Response)) {
	from := l.M.Cur().ID
	rq := &request{res: res, url: url, from: from, done: done}
	l.S.Post(l.IOThread, ns.Net+"!URLLoader::Start", func() {
		l.attempt(rq)
	})
}

// attempt sends the request once and arms the per-attempt timeout. It runs
// on the IO thread.
func (l *Loader) attempt(rq *request) {
	m := l.M
	rq.attempt++
	l.Attempts++
	// Serialize the request line into an IO buffer and send it.
	req := m.IOb.Alloc(len(rq.url) + 16)
	m.Call(l.sendFn, func() {
		m.WriteData(req, []byte("GET "+rq.url))
		m.Syscall(isa.SysSendto, isa.RegNone, isa.RegNone,
			[]vmem.Range{{Addr: req, Size: uint32(len(rq.url) + 4)}}, nil, nil)
	})

	var fault Fault
	if f, ok := l.Faults.Get(rq.url); ok && f.active(rq.attempt) {
		fault = f
	}
	latency := 40
	if rq.res != nil && rq.res.LatencyMs > 0 {
		latency = rq.res.LatencyMs
	}
	if fault.Kind == FaultSlow {
		latency += fault.ExtraLatencyMs
	}

	// Arm the timeout on the virtual clock. If the response wins the race it
	// cancels the timer; if the timer wins, the attempt is abandoned and any
	// late response is discarded as stale.
	settled := false
	var timer *sched.Timer
	if l.Retry.TimeoutMs > 0 {
		timer = l.S.PostDelayedCancellable(l.IOThread, ns.NetError+"!URLRequest::ConnectionTimeout",
			uint64(l.Retry.TimeoutMs)*sched.CyclesPerMs, func() {
				if settled {
					return
				}
				settled = true
				rq.timedOut = true
				l.Timeouts++
				m.Call(l.timeoutFn, func() {
					// Deadline check the watchdog pays on every firing.
					m.At("deadline")
					now := m.Imm(m.Cycle() / sched.CyclesPerMs)
					lim := m.OpImm(isa.OpCmpGE, now, uint64(l.Retry.TimeoutMs))
					m.Branch(lim)
				})
				l.retryOrFail(rq, StatusNetError)
			})
	}

	if fault.Kind == FaultDrop {
		// The request vanishes: nothing to schedule. Without a timeout the
		// fetch would hang forever, so treat that configuration as an
		// immediate transport failure.
		if timer == nil {
			l.retryOrFail(rq, StatusNetError)
		}
		return
	}

	// Response arrives after the latency, still on the IO thread.
	l.S.PostDelayed(l.IOThread, ns.Net+"!URLLoader::OnResponse", uint64(latency)*sched.CyclesPerMs, func() {
		if settled {
			// The timeout already abandoned this attempt: traced stale-
			// response teardown, then drop it on the floor.
			m.Call(l.staleFn, func() {
				m.At("stale")
				g := m.Imm(uint64(rq.attempt))
				old := m.OpImm(isa.OpCmpLT, g, uint64(rq.attempt)+1)
				m.Branch(old)
			})
			return
		}
		settled = true
		if timer != nil {
			timer.Cancel()
		}
		l.onResponse(rq, fault)
	})
}

// onResponse handles an arrived response according to the attempt's fault.
func (l *Loader) onResponse(rq *request, fault Fault) {
	m := l.M
	if rq.res == nil && (fault.Kind == FaultReset || fault.Kind == FaultTruncate) {
		fault = Fault{} // no body to corrupt; fall through to the 404 path
	}
	switch fault.Kind {
	case Fault5xx:
		// Status line parses, carries a 5xx, and the job restarts.
		l.ServerErrors++
		hdr := m.IOb.Alloc(32)
		m.Call(l.parseFn, func() {
			m.WriteData(hdr, []byte("HTTP/1.1 503"))
			st := m.Load(hdr+9, 3)
			bad := m.OpImm(isa.OpCmpGE, st, 0x35) // '5' in the hundreds digit
			m.Branch(bad)
		})
		m.Call(l.http5xxFn, func() {
			m.At("servererr")
			c := m.LoadU32(l.backoffCell)
			m.StoreU32(l.backoffCell, m.AddImm(c, 1))
		})
		l.retryOrFail(rq, StatusServerError)
	case FaultReset:
		// The first half of the body streams in, then the read fails.
		l.Resets++
		body := rq.res.Body
		part := body[:len(body)/2]
		partial := l.receiveChunks(part)
		m.Call(l.resetFn, func() {
			// Teardown scans the partial buffer for the last complete
			// record — work a clean delivery never does.
			m.At("resetscan")
			sum := m.Imm(0)
			for off := 0; off < len(part); off += 256 {
				n := min(8, len(part)-off)
				v := m.Load(partial+vmem.Addr(off), n)
				sum = m.Op(isa.OpXor, sum, v)
			}
			m.StoreU64(m.IOb.Alloc(8), sum)
		})
		l.retryOrFail(rq, StatusNetError)
	case FaultTruncate:
		// A short body arrives and decodes; the content-length check
		// catches the mismatch, wasting the whole partial receive.
		l.Truncations++
		body := rq.res.Body
		part := body[:len(body)*3/4]
		rng := l.receive(part)
		m.Call(l.truncFn, func() {
			m.At("lencheck")
			got := m.Imm(uint64(rng.Size))
			short := m.OpImm(isa.OpCmpLT, got, uint64(len(body)))
			m.Branch(short)
		})
		l.retryOrFail(rq, StatusNetError)
	default: // FaultNone, FaultSlow: a normal (possibly late) response.
		if rq.res == nil {
			// Unknown URL: the server answers 404 with an empty body —
			// now an explicit status callers can distinguish from an
			// empty success.
			l.NotFound++
			hdr := m.IOb.Alloc(32)
			m.Call(l.parseFn, func() {
				m.WriteData(hdr, []byte("HTTP/1.1 404"))
				st := m.Load(hdr+9, 3)
				miss := m.OpImm(isa.OpCmpNE, st, 0)
				m.Branch(miss)
			})
			m.Call(l.notFoundFn, func() {
				m.At("notfound")
				c := m.LoadU32(l.backoffCell)
				m.Branch(m.OpImm(isa.OpCmpGE, c, 0))
			})
			l.deliver(rq, Response{Status: StatusNotFound})
			return
		}
		var rng vmem.Range
		if len(rq.res.Body) > 0 {
			rng = l.receive(rq.res.Body)
		}
		l.Fetched[rq.url] = rng
		l.BytesFetched += len(rq.res.Body)
		l.deliver(rq, Response{Body: rng, Status: StatusOK})
	}
}

// retryOrFail restarts the transaction after a traced backoff, or gives up
// once the budget is spent.
func (l *Loader) retryOrFail(rq *request, status int) {
	m := l.M
	if rq.attempt >= l.Retry.MaxAttempts {
		l.Failures++
		l.FailedURLs = append(l.FailedURLs, rq.url)
		m.Call(l.failFn, func() {
			m.At("fail")
			a := m.Imm(uint64(rq.attempt))
			spent := m.OpImm(isa.OpCmpGE, a, uint64(l.Retry.MaxAttempts))
			m.Branch(spent)
		})
		l.deliver(rq, Response{Status: status})
		return
	}
	l.Retries++
	backoff := l.Retry.BackoffMs(rq.attempt, l.rng.next())
	m.Call(l.backoffFn, func() {
		// Traced exponential-backoff computation: shift the base by the
		// attempt count, clamp, add the jitter.
		m.At("backoff")
		base := m.Imm(uint64(l.Retry.BackoffBaseMs))
		exp := m.OpImm(isa.OpShl, base, uint64(rq.attempt-1))
		capd := m.OpImm(isa.OpMin, exp, uint64(max(l.Retry.BackoffMaxMs, l.Retry.BackoffBaseMs)))
		jit := m.OpImm(isa.OpAdd, capd, uint64(backoff))
		m.StoreU64(l.backoffCell, jit)
	})
	l.S.PostDelayed(l.IOThread, ns.NetError+"!URLRequestHttpJob::RestartTransaction",
		uint64(backoff)*sched.CyclesPerMs, func() {
			m.Call(l.retryFn, func() {
				m.At("restart")
				b := m.LoadU64(l.backoffCell)
				m.Branch(m.OpImm(isa.OpCmpGT, b, 0))
			})
			l.attempt(rq)
		})
}

// deliver hands the terminal response to the requesting thread.
func (l *Loader) deliver(rq *request, resp Response) {
	resp.Attempts = rq.attempt
	resp.TimedOut = rq.timedOut
	l.S.Post(rq.from, ns.Net+"!URLLoader::DidReceiveResponse", func() {
		rq.done(resp)
	})
}

// receiveChunks pulls body bytes off the socket in ChunkBytes reads and
// returns the IO buffer they landed in (the shared front half of both the
// clean receive path and the mid-body reset path).
func (l *Loader) receiveChunks(body []byte) vmem.Addr {
	m := l.M
	compressed := m.IOb.Alloc(len(body))
	m.Call(l.recvFn, func() {
		for off := 0; off < len(body); off += l.ChunkBytes {
			m.At("chunk")
			n := min(l.ChunkBytes, len(body)-off)
			r := vmem.Range{Addr: compressed + vmem.Addr(off), Size: uint32(n)}
			ret := m.Syscall(isa.SysRecvfrom, isa.RegNone, isa.RegNone, nil,
				[]vmem.Range{r}, body[off:off+n])
			more := m.OpImm(isa.OpCmpGT, ret, 0)
			m.Branch(more)
		}
	})
	return compressed
}

// receive pulls the response off the socket in ChunkBytes reads, parses the
// headers, "decompresses" the payload into its final buffer (16-byte-chunk
// traced transform — the buffer every parser consumes, so network input has
// full provenance), and performs the disk-cache write and checksum
// bookkeeping whose results nothing ever reads.
func (l *Loader) receive(body []byte) vmem.Range {
	m := l.M
	compressed := l.receiveChunks(body)
	crng := vmem.Range{Addr: compressed, Size: uint32(len(body))}
	m.Call(l.parseFn, func() {
		n := min(len(body), 64)
		hdr := m.Load(crng.Addr, n)
		ok := m.OpImm(isa.OpCmpNE, hdr, 0)
		m.Branch(ok)
	})
	// Decompress into the final body buffer (identity transform with real
	// dataflow: every output chunk derives from the wire bytes).
	buf := m.Heap.Alloc(len(body))
	rng := vmem.Range{Addr: buf, Size: uint32(len(body))}
	m.Call(l.gunzipFn, func() {
		state := m.Imm(0x5C)
		for off := 0; off < len(body); off += 16 {
			m.At("inflate")
			n := min(16, len(body)-off)
			// Output chunk: a vector copy of the wire bytes (the identity
			// "inflate"), plus dictionary-state arithmetic modeling the
			// entropy decoder's bookkeeping.
			in := m.Load(compressed+vmem.Addr(off), n)
			m.Store(buf+vmem.Addr(off), n, in)
			state = m.Op(isa.OpXor, state, in)
			state = m.OpImm(isa.OpMul, state, 0x9E3779B1)
		}
		m.StoreU64(m.IOb.Alloc(8), state)
	})
	// Disk-cache write + integrity checksum: pure bookkeeping.
	m.Call(l.cacheFn, func() {
		for p := 0; p < l.WastePasses; p++ {
			cache := m.IOb.Alloc(len(body))
			m.At("cachewrite")
			for off := 0; off < len(body); off += 64 {
				n := min(64, len(body)-off)
				v := m.Load(buf+vmem.Addr(off), n)
				m.Store(cache+vmem.Addr(off), n, v)
			}
			m.At("crc")
			sum := m.Imm(0xFFFF)
			for off := 0; off < len(body); off += 64 {
				n := min(64, len(body)-off)
				v := m.Load(cache+vmem.Addr(off), n)
				sum = m.Op(isa.OpXor, sum, v)
			}
			m.StoreU64(m.IOb.Alloc(8), sum)
		}
	})
	return rng
}
