// Package net simulates the renderer's network stack: resource requests are
// serialized into IO buffers and sent with sendto; responses arrive after a
// modeled latency via recvfrom, which deposits the resource body into traced
// memory. Because recvfrom is a definition site for the liveness analysis,
// network input that eventually reaches the screen joins the slice, exactly
// as the paper's kernel-manual syscall modeling intended.
package net

import (
	"webslice/internal/browser/ns"
	"webslice/internal/browser/sched"
	"webslice/internal/content"
	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// Loader fetches resources for one site over the simulated network. All
// socket work runs on the IO thread; completion callbacks are posted to the
// requesting thread.
type Loader struct {
	M    *vm.Machine
	S    *sched.Scheduler
	Site *content.Site
	// IOThread is the thread socket syscalls run on (Chrome_ChildIOThread).
	IOThread uint8

	sendFn, recvFn, parseFn, gunzipFn, cacheFn *vm.Fn

	// ChunkBytes is the socket read granularity (one recvfrom per chunk).
	ChunkBytes int
	// WastePasses scales cache-write and checksum work per response —
	// bookkeeping whose output nothing user-visible reads.
	WastePasses int

	// Fetched maps URL -> heap address and size of the delivered body.
	Fetched map[string]vmem.Range
	// BytesFetched totals delivered body bytes.
	BytesFetched int
}

// NewLoader wires a loader to the machine, scheduler and site.
func NewLoader(m *vm.Machine, s *sched.Scheduler, site *content.Site, ioThread uint8) *Loader {
	return &Loader{
		M:           m,
		S:           s,
		Site:        site,
		IOThread:    ioThread,
		sendFn:      m.Func("net::HttpStreamParser::SendRequest", ns.Net),
		recvFn:      m.Func("net::HttpStreamParser::ReadResponseBody", ns.Net),
		parseFn:     m.Func("net::HttpResponseHeaders::Parse", ns.Net),
		gunzipFn:    m.Func("net::GZipSourceStream::FilterData", ns.Net),
		cacheFn:     m.Func("net::disk_cache::EntryImpl::WriteData", ns.Net),
		ChunkBytes:  16 << 10,
		WastePasses: 1,
		Fetched:     make(map[string]vmem.Range),
	}
}

// Fetch requests a resource and invokes done(bodyAddr, bodyLen) on the
// requesting thread once it has arrived. Unknown URLs invoke done with a
// zero range after the latency (a 404 with an empty body).
func (l *Loader) Fetch(url string, done func(body vmem.Range)) {
	l.fetchRes(l.lookup(url), url, done)
}

// FetchResource requests an explicit resource (used for browse-time
// downloads that are not part of the site's load-time resource map).
func (l *Loader) FetchResource(r *content.Resource, done func(body vmem.Range)) {
	l.fetchRes(r, r.URL, done)
}

func (l *Loader) lookup(url string) *content.Resource {
	if r, ok := l.Site.Get(url); ok {
		return r
	}
	return nil
}

func (l *Loader) fetchRes(res *content.Resource, url string, done func(body vmem.Range)) {
	m := l.M
	from := m.Cur().ID
	l.S.Post(l.IOThread, ns.Net+"!URLLoader::Start", func() {
		// Serialize the request line into an IO buffer and send it.
		req := m.IOb.Alloc(len(url) + 16)
		m.Call(l.sendFn, func() {
			m.WriteData(req, []byte("GET "+url))
			m.Syscall(isa.SysSendto, isa.RegNone, isa.RegNone,
				[]vmem.Range{{Addr: req, Size: uint32(len(url) + 4)}}, nil, nil)
		})
		latency := 40
		var body []byte
		if res != nil {
			body = res.Body
			if res.LatencyMs > 0 {
				latency = res.LatencyMs
			}
		}
		// Response arrives after the latency, still on the IO thread.
		l.S.PostDelayed(l.IOThread, ns.Net+"!URLLoader::OnResponse", uint64(latency)*sched.CyclesPerMs, func() {
			var rng vmem.Range
			if len(body) > 0 {
				rng = l.receive(url, body)
			}
			// Hand the body to the requesting thread.
			l.S.Post(from, ns.Net+"!URLLoader::DidReceiveResponse", func() {
				done(rng)
			})
		})
	})
}

// receive pulls the response off the socket in ChunkBytes reads, parses the
// headers, "decompresses" the payload into its final buffer (16-byte-chunk
// traced transform — the buffer every parser consumes, so network input has
// full provenance), and performs the disk-cache write and checksum
// bookkeeping whose results nothing ever reads.
func (l *Loader) receive(url string, body []byte) vmem.Range {
	m := l.M
	compressed := m.IOb.Alloc(len(body))
	crng := vmem.Range{Addr: compressed, Size: uint32(len(body))}
	m.Call(l.recvFn, func() {
		for off := 0; off < len(body); off += l.ChunkBytes {
			m.At("chunk")
			n := min(l.ChunkBytes, len(body)-off)
			r := vmem.Range{Addr: compressed + vmem.Addr(off), Size: uint32(n)}
			ret := m.Syscall(isa.SysRecvfrom, isa.RegNone, isa.RegNone, nil,
				[]vmem.Range{r}, body[off:off+n])
			more := m.OpImm(isa.OpCmpGT, ret, 0)
			m.Branch(more)
		}
	})
	m.Call(l.parseFn, func() {
		n := min(len(body), 64)
		hdr := m.Load(crng.Addr, n)
		ok := m.OpImm(isa.OpCmpNE, hdr, 0)
		m.Branch(ok)
	})
	// Decompress into the final body buffer (identity transform with real
	// dataflow: every output chunk derives from the wire bytes).
	buf := m.Heap.Alloc(len(body))
	rng := vmem.Range{Addr: buf, Size: uint32(len(body))}
	m.Call(l.gunzipFn, func() {
		state := m.Imm(0x5C)
		for off := 0; off < len(body); off += 16 {
			m.At("inflate")
			n := min(16, len(body)-off)
			// Output chunk: a vector copy of the wire bytes (the identity
			// "inflate"), plus dictionary-state arithmetic modeling the
			// entropy decoder's bookkeeping.
			in := m.Load(compressed+vmem.Addr(off), n)
			m.Store(buf+vmem.Addr(off), n, in)
			state = m.Op(isa.OpXor, state, in)
			state = m.OpImm(isa.OpMul, state, 0x9E3779B1)
		}
		m.StoreU64(m.IOb.Alloc(8), state)
	})
	// Disk-cache write + integrity checksum: pure bookkeeping.
	m.Call(l.cacheFn, func() {
		for p := 0; p < l.WastePasses; p++ {
			cache := m.IOb.Alloc(len(body))
			m.At("cachewrite")
			for off := 0; off < len(body); off += 64 {
				n := min(64, len(body)-off)
				v := m.Load(buf+vmem.Addr(off), n)
				m.Store(cache+vmem.Addr(off), n, v)
			}
			m.At("crc")
			sum := m.Imm(0xFFFF)
			for off := 0; off < len(body); off += 64 {
				n := min(64, len(body)-off)
				v := m.Load(cache+vmem.Addr(off), n)
				sum = m.Op(isa.OpXor, sum, v)
			}
			m.StoreU64(m.IOb.Alloc(8), sum)
		}
	})
	l.Fetched[url] = rng
	l.BytesFetched += len(body)
	return rng
}
