package net

import (
	"testing"

	"webslice/internal/browser/sched"
	"webslice/internal/content"
	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

func setup(t *testing.T) (*vm.Machine, *sched.Scheduler, *Loader, *content.Site) {
	t.Helper()
	m := vm.New()
	m.Thread(0, "main")
	m.Thread(2, "io")
	m.Switch(0)
	site := &content.Site{Name: "t", URL: "https://t/"}
	site.Add(&content.Resource{URL: "https://t/r.bin", Type: content.JS,
		Body:      []byte("the quick brown fox jumps over the lazy dog, repeatedly and at length"),
		LatencyMs: 25})
	s := sched.New(m)
	return m, s, NewLoader(m, s, site, 2), site
}

func TestFetchDeliversBody(t *testing.T) {
	m, s, l, site := setup(t)
	var got vmem.Range
	l.Fetch("https://t/r.bin", func(rng vmem.Range) { got = rng })
	s.Run()
	want := site.Resources["https://t/r.bin"].Body
	if int(got.Size) != len(want) {
		t.Fatalf("size = %d, want %d", got.Size, len(want))
	}
	if string(m.Mem.ReadBytes(got.Addr, len(want))) != string(want) {
		t.Error("delivered body corrupted by receive/decompress path")
	}
	if l.BytesFetched != len(want) {
		t.Errorf("BytesFetched = %d", l.BytesFetched)
	}
}

func TestFetchSyscallAnatomy(t *testing.T) {
	m, s, l, _ := setup(t)
	l.Fetch("https://t/r.bin", func(vmem.Range) {})
	s.Run()
	var sends, recvs int
	for i, eff := range m.Tr.Sys {
		switch eff.Num {
		case isa.SysSendto:
			sends++
			if len(eff.Reads) == 0 {
				t.Errorf("sendto at %d reads nothing", i)
			}
		case isa.SysRecvfrom:
			recvs++
			if len(eff.Writes) == 0 {
				t.Errorf("recvfrom at %d writes nothing", i)
			}
		}
	}
	if sends == 0 || recvs == 0 {
		t.Errorf("sends=%d recvs=%d", sends, recvs)
	}
	// IO work must be on the IO thread.
	for i := range m.Tr.Recs {
		if m.Tr.Namespace(m.Tr.Recs[i].Func()) == "net" &&
			m.Tr.FuncName(m.Tr.Recs[i].Func()) == "net::HttpStreamParser::ReadResponseBody" &&
			m.Tr.Recs[i].TID != 2 {
			t.Fatalf("socket read on thread %d", m.Tr.Recs[i].TID)
		}
	}
}

func TestFetchMissingURL(t *testing.T) {
	_, s, l, _ := setup(t)
	called := false
	l.Fetch("https://t/404", func(rng vmem.Range) {
		called = true
		if rng.Size != 0 {
			t.Error("missing resource should deliver an empty range")
		}
	})
	s.Run()
	if !called {
		t.Error("completion callback must fire even for a 404")
	}
}

func TestChunkedReceive(t *testing.T) {
	m, s, l, site := setup(t)
	l.ChunkBytes = 16
	l.Fetch("https://t/r.bin", func(vmem.Range) {})
	s.Run()
	recvs := 0
	for _, eff := range m.Tr.Sys {
		if eff.Num == isa.SysRecvfrom {
			recvs++
		}
	}
	wantChunks := (len(site.Resources["https://t/r.bin"].Body) + 15) / 16
	if recvs != wantChunks {
		t.Errorf("recvfrom count = %d, want %d 16-byte chunks", recvs, wantChunks)
	}
}
