package net

import (
	"strings"
	"testing"

	"webslice/internal/browser/ns"
	"webslice/internal/browser/sched"
	"webslice/internal/content"
	"webslice/internal/isa"
	"webslice/internal/vm"
)

func setup(t *testing.T) (*vm.Machine, *sched.Scheduler, *Loader, *content.Site) {
	t.Helper()
	m := vm.New()
	m.Thread(0, "main")
	m.Thread(2, "io")
	m.Switch(0)
	site := &content.Site{Name: "t", URL: "https://t/"}
	site.Add(&content.Resource{URL: "https://t/r.bin", Type: content.JS,
		Body:      []byte("the quick brown fox jumps over the lazy dog, repeatedly and at length"),
		LatencyMs: 25})
	s := sched.New(m)
	return m, s, NewLoader(m, s, site, 2), site
}

func TestFetchDeliversBody(t *testing.T) {
	m, s, l, site := setup(t)
	var got Response
	l.Fetch("https://t/r.bin", func(resp Response) { got = resp })
	s.Run()
	want := site.Resources["https://t/r.bin"].Body
	if !got.OK() || got.Status != StatusOK {
		t.Fatalf("status = %d, want %d", got.Status, StatusOK)
	}
	if got.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", got.Attempts)
	}
	if int(got.Body.Size) != len(want) {
		t.Fatalf("size = %d, want %d", got.Body.Size, len(want))
	}
	if string(m.Mem.ReadBytes(got.Body.Addr, len(want))) != string(want) {
		t.Error("delivered body corrupted by receive/decompress path")
	}
	if l.BytesFetched != len(want) {
		t.Errorf("BytesFetched = %d", l.BytesFetched)
	}
}

func TestFetchSyscallAnatomy(t *testing.T) {
	m, s, l, _ := setup(t)
	l.Fetch("https://t/r.bin", func(Response) {})
	s.Run()
	var sends, recvs int
	for i, eff := range m.Tr.Sys {
		switch eff.Num {
		case isa.SysSendto:
			sends++
			if len(eff.Reads) == 0 {
				t.Errorf("sendto at %d reads nothing", i)
			}
		case isa.SysRecvfrom:
			recvs++
			if len(eff.Writes) == 0 {
				t.Errorf("recvfrom at %d writes nothing", i)
			}
		}
	}
	if sends == 0 || recvs == 0 {
		t.Errorf("sends=%d recvs=%d", sends, recvs)
	}
	// IO work must be on the IO thread.
	for i := range m.Tr.Recs {
		if m.Tr.Namespace(m.Tr.Recs[i].Func()) == "net" &&
			m.Tr.FuncName(m.Tr.Recs[i].Func()) == "net::HttpStreamParser::ReadResponseBody" &&
			m.Tr.Recs[i].TID != 2 {
			t.Fatalf("socket read on thread %d", m.Tr.Recs[i].TID)
		}
	}
}

func TestFetchMissingURLIsExplicit404(t *testing.T) {
	_, s, l, _ := setup(t)
	called := false
	l.Fetch("https://t/404", func(resp Response) {
		called = true
		if resp.Status != StatusNotFound {
			t.Errorf("status = %d, want %d", resp.Status, StatusNotFound)
		}
		if resp.OK() {
			t.Error("a 404 must not look like a success")
		}
		if resp.Body.Size != 0 {
			t.Error("missing resource should deliver an empty range")
		}
	})
	s.Run()
	if !called {
		t.Error("completion callback must fire even for a 404")
	}
	if l.NotFound != 1 {
		t.Errorf("NotFound = %d", l.NotFound)
	}
	if l.Retries != 0 {
		t.Error("a 404 must not be retried")
	}
}

func TestChunkedReceive(t *testing.T) {
	m, s, l, site := setup(t)
	l.ChunkBytes = 16
	l.Fetch("https://t/r.bin", func(Response) {})
	s.Run()
	recvs := 0
	for _, eff := range m.Tr.Sys {
		if eff.Num == isa.SysRecvfrom {
			recvs++
		}
	}
	wantChunks := (len(site.Resources["https://t/r.bin"].Body) + 15) / 16
	if recvs != wantChunks {
		t.Errorf("recvfrom count = %d, want %d 16-byte chunks", recvs, wantChunks)
	}
}

// errorPathRecs counts trace records attributed to the net/error namespace.
func errorPathRecs(m *vm.Machine) int {
	n := 0
	for i := range m.Tr.Recs {
		if m.Tr.Namespace(m.Tr.Recs[i].Func()) == ns.NetError {
			n++
		}
	}
	return n
}

func TestDropRecoversViaTimeoutAndRetry(t *testing.T) {
	m, s, l, site := setup(t)
	plan := NewFaultPlan(42)
	plan.Set("https://t/r.bin", Fault{Kind: FaultDrop, Times: 1})
	l.SetFaults(plan)
	var got Response
	start := m.Cycle()
	l.Fetch("https://t/r.bin", func(resp Response) { got = resp })
	s.Run()
	if !got.OK() {
		t.Fatalf("status = %d after drop+retry, want OK", got.Status)
	}
	if got.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", got.Attempts)
	}
	if !got.TimedOut {
		t.Error("the dropped attempt should be flagged as timed out")
	}
	if l.Timeouts != 1 || l.Retries != 1 {
		t.Errorf("Timeouts=%d Retries=%d", l.Timeouts, l.Retries)
	}
	want := site.Resources["https://t/r.bin"].Body
	if int(got.Body.Size) != len(want) {
		t.Errorf("body size = %d, want %d", got.Body.Size, len(want))
	}
	// The virtual clock must have paid the timeout plus a backoff.
	elapsed := m.Cycle() - start
	min := uint64(l.Retry.TimeoutMs+l.Retry.BackoffBaseMs) * sched.CyclesPerMs
	if elapsed < min {
		t.Errorf("elapsed = %d cycles, want >= %d (timeout+backoff)", elapsed, min)
	}
	if errorPathRecs(m) == 0 {
		t.Error("timeout/retry handling must emit net/error instructions")
	}
}

func TestPermanentDropExhaustsBudget(t *testing.T) {
	_, s, l, _ := setup(t)
	plan := NewFaultPlan(7)
	plan.Set("https://t/r.bin", Fault{Kind: FaultDrop, Times: -1})
	l.SetFaults(plan)
	var got Response
	l.Fetch("https://t/r.bin", func(resp Response) { got = resp })
	s.Run()
	if got.OK() {
		t.Fatal("a permanently dropped resource must fail")
	}
	if got.Status != StatusNetError {
		t.Errorf("status = %d, want %d", got.Status, StatusNetError)
	}
	if got.Attempts != l.Retry.MaxAttempts {
		t.Errorf("attempts = %d, want the full budget %d", got.Attempts, l.Retry.MaxAttempts)
	}
	if l.Failures != 1 || len(l.FailedURLs) != 1 {
		t.Errorf("Failures=%d FailedURLs=%v", l.Failures, l.FailedURLs)
	}
	if _, ok := l.Fetched["https://t/r.bin"]; ok {
		t.Error("a failed fetch must not be recorded as fetched")
	}
}

func TestResetMidBodyRetries(t *testing.T) {
	m, s, l, _ := setup(t)
	plan := NewFaultPlan(3)
	plan.Set("https://t/r.bin", Fault{Kind: FaultReset, Times: 1})
	l.SetFaults(plan)
	var got Response
	l.Fetch("https://t/r.bin", func(resp Response) { got = resp })
	s.Run()
	if !got.OK() || got.Attempts != 2 {
		t.Fatalf("status=%d attempts=%d, want OK after one retry", got.Status, got.Attempts)
	}
	if l.Resets != 1 {
		t.Errorf("Resets = %d", l.Resets)
	}
	// The reset attempt streamed part of the body: more recvfrom bytes than
	// one clean delivery needs.
	var recvBytes uint32
	for _, eff := range m.Tr.Sys {
		if eff.Num == isa.SysRecvfrom {
			for _, w := range eff.Writes {
				recvBytes += w.Size
			}
		}
	}
	bodyLen := uint32(len("the quick brown fox jumps over the lazy dog, repeatedly and at length"))
	if recvBytes <= bodyLen {
		t.Errorf("recv bytes = %d, want > %d (partial receive wasted)", recvBytes, bodyLen)
	}
}

func TestTruncateAndServerErrorRetry(t *testing.T) {
	_, s, l, _ := setup(t)
	plan := NewFaultPlan(9)
	plan.Set("https://t/r.bin", Fault{Kind: FaultTruncate, Times: 1})
	l.SetFaults(plan)
	var got Response
	l.Fetch("https://t/r.bin", func(resp Response) { got = resp })
	s.Run()
	if !got.OK() || got.Attempts != 2 || l.Truncations != 1 {
		t.Fatalf("truncate: status=%d attempts=%d truncations=%d", got.Status, got.Attempts, l.Truncations)
	}

	_, s2, l2, _ := setup(t)
	plan2 := NewFaultPlan(9)
	plan2.Set("https://t/r.bin", Fault{Kind: Fault5xx, Times: -1})
	l2.SetFaults(plan2)
	var got2 Response
	l2.Fetch("https://t/r.bin", func(resp Response) { got2 = resp })
	s2.Run()
	if got2.OK() || got2.Status != StatusServerError {
		t.Fatalf("persistent 5xx: status = %d, want %d", got2.Status, StatusServerError)
	}
	if l2.ServerErrors != l2.Retry.MaxAttempts {
		t.Errorf("ServerErrors = %d, want %d", l2.ServerErrors, l2.Retry.MaxAttempts)
	}
}

func TestSlowSpikeBeyondTimeoutDiscardsStaleResponse(t *testing.T) {
	m, s, l, _ := setup(t)
	plan := NewFaultPlan(5)
	// Latency 25ms + 3000ms spike > 2000ms timeout: the timer wins, the
	// retry succeeds, and the stale first response is discarded.
	plan.Set("https://t/r.bin", Fault{Kind: FaultSlow, Times: 1, ExtraLatencyMs: 3000})
	l.SetFaults(plan)
	var got Response
	l.Fetch("https://t/r.bin", func(resp Response) { got = resp })
	s.Run()
	if !got.OK() || got.Attempts != 2 {
		t.Fatalf("status=%d attempts=%d, want OK on attempt 2", got.Status, got.Attempts)
	}
	if l.Timeouts != 1 {
		t.Errorf("Timeouts = %d", l.Timeouts)
	}
	found := false
	for i := range m.Tr.Recs {
		if strings.Contains(m.Tr.FuncName(m.Tr.Recs[i].Func()), "DiscardStaleResponse") {
			found = true
			break
		}
	}
	if !found {
		t.Error("the late response must run the traced stale-discard path")
	}
}

func TestFaultRunsAreDeterministic(t *testing.T) {
	run := func() (int, uint64) {
		m, s, l, _ := setup(t)
		plan := NewFaultPlan(1234)
		plan.Set("https://t/r.bin", Fault{Kind: FaultDrop, Times: 2})
		l.SetFaults(plan)
		l.Fetch("https://t/r.bin", func(Response) {})
		l.Fetch("https://t/404", func(Response) {})
		s.Run()
		return len(m.Tr.Recs), m.Cycle()
	}
	n1, c1 := run()
	n2, c2 := run()
	if n1 != n2 || c1 != c2 {
		t.Errorf("same seed must reproduce the trace exactly: (%d,%d) vs (%d,%d)", n1, c1, n2, c2)
	}
}

func TestBackoffMsGrowsAndCaps(t *testing.T) {
	p := DefaultRetryPolicy()
	p.JitterPct = 0
	if b1, b2 := p.BackoffMs(1, 0), p.BackoffMs(2, 0); b2 <= b1 {
		t.Errorf("backoff must grow: %d then %d", b1, b2)
	}
	if b := p.BackoffMs(20, 0); b > p.BackoffMaxMs {
		t.Errorf("backoff %d exceeds cap %d", b, p.BackoffMaxMs)
	}
	p.JitterPct = 25
	base := p.BackoffMs(1, 0)
	jit := p.BackoffMs(1, 24)
	if jit < base || jit > base+base*25/100 {
		t.Errorf("jittered backoff %d outside [%d, %d]", jit, base, base+base*25/100)
	}
}
