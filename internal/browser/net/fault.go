// Network fault injection: a deterministic, seeded plan of per-resource
// faults (dropped requests, connection resets mid-body, truncated bodies,
// latency spikes, 5xx responses) that the Loader consults on every attempt.
// Real browsers spend substantial work on exactly these paths — work that is
// largely invisible to the pixel slice — so the plan is the workload knob
// behind the faults experiment's error-path waste characterization.
package net

// FaultKind enumerates the injectable network faults.
type FaultKind uint8

const (
	// FaultNone delivers the response normally.
	FaultNone FaultKind = iota
	// FaultDrop swallows the request: no response ever arrives and the
	// client's per-request timeout fires.
	FaultDrop
	// FaultReset resets the connection mid-body: the first half of the
	// response streams in, then the socket read fails.
	FaultReset
	// FaultTruncate delivers a short body; the content-length check fails.
	FaultTruncate
	// FaultSlow adds ExtraLatencyMs to the response latency (a spike, not a
	// failure — unless it pushes the response past the timeout).
	FaultSlow
	// Fault5xx answers with an HTTP 503 and no body.
	Fault5xx
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultReset:
		return "reset"
	case FaultTruncate:
		return "truncate"
	case FaultSlow:
		return "slow"
	case Fault5xx:
		return "5xx"
	default:
		return "fault?"
	}
}

// Fault is one resource's injected failure mode.
type Fault struct {
	Kind FaultKind
	// Times is how many attempts the fault affects: n > 0 fails the first n
	// attempts (a transient fault that a retry survives), n < 0 fails every
	// attempt (a permanent fault the engine must degrade around).
	Times int
	// ExtraLatencyMs is the added delay for FaultSlow.
	ExtraLatencyMs int
}

// Permanent reports whether the fault affects every attempt.
func (f Fault) Permanent() bool { return f.Times < 0 }

// active reports whether the fault applies to the given 1-based attempt.
func (f Fault) active(attempt int) bool {
	if f.Kind == FaultNone {
		return false
	}
	return f.Times < 0 || attempt <= f.Times
}

// FaultPlan maps resource URLs to injected faults. The zero-value plan (or a
// nil plan on the Loader) injects nothing. Seed feeds the loader's backoff
// jitter so a whole faulty run is reproducible from one number.
type FaultPlan struct {
	Seed  uint64
	byURL map[string]Fault
}

// NewFaultPlan returns an empty plan with the given jitter seed.
func NewFaultPlan(seed uint64) *FaultPlan {
	return &FaultPlan{Seed: seed, byURL: make(map[string]Fault)}
}

// Set injects a fault for a URL (replacing any previous one).
func (p *FaultPlan) Set(url string, f Fault) {
	if p.byURL == nil {
		p.byURL = make(map[string]Fault)
	}
	p.byURL[url] = f
}

// Get returns the fault planned for a URL, if any.
func (p *FaultPlan) Get(url string) (Fault, bool) {
	if p == nil {
		return Fault{}, false
	}
	f, ok := p.byURL[url]
	return f, ok
}

// Len reports how many resources have planned faults.
func (p *FaultPlan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.byURL)
}

// RetryPolicy is the client's fault-handling configuration: bounded retries
// with exponential backoff plus deterministic jitter, and a per-attempt
// timeout on the scheduler's virtual clock.
type RetryPolicy struct {
	// MaxAttempts bounds the total attempts per resource (first try
	// included). 1 disables retries.
	MaxAttempts int
	// TimeoutMs is the per-attempt timeout; 0 disables timeouts (and with
	// them any recovery from FaultDrop).
	TimeoutMs int
	// BackoffBaseMs is the delay before the first retry; each further retry
	// doubles it, capped at BackoffMaxMs.
	BackoffBaseMs int
	BackoffMaxMs  int
	// JitterPct adds 0..JitterPct percent of the backoff, drawn from the
	// loader's seeded generator.
	JitterPct int
}

// DefaultRetryPolicy mirrors typical browser resource-fetch behavior: three
// attempts, 2 s timeout, 150 ms base backoff doubling to at most 1.2 s, 25%
// jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, TimeoutMs: 2000, BackoffBaseMs: 150, BackoffMaxMs: 1200, JitterPct: 25}
}

// BackoffMs returns the deterministic backoff before retrying after the
// given failed 1-based attempt, mixing in jitter from the rng word.
func (p RetryPolicy) BackoffMs(attempt int, rnd uint64) int {
	d := p.BackoffBaseMs
	for i := 1; i < attempt && d < p.BackoffMaxMs; i++ {
		d *= 2
	}
	if p.BackoffMaxMs > 0 && d > p.BackoffMaxMs {
		d = p.BackoffMaxMs
	}
	if p.JitterPct > 0 && d > 0 {
		d += d * int(rnd%uint64(p.JitterPct+1)) / 100
	}
	return d
}

// splitmix64 is the deterministic generator behind backoff jitter (and the
// sites' fault-profile choices): one 64-bit state word, full period.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// HashURL folds a URL into a 64-bit word (FNV-1a), used to derive
// per-resource randomness from a plan seed.
func HashURL(url string) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(url); i++ {
		h ^= uint64(url[i])
		h *= 0x100000001B3
	}
	return h
}
