// Package ipc simulates the renderer's message channel to the browser main
// process. Each Chromium tab is a separate process; it continuously reports
// state (navigation progress, favicon, history, metrics) over IPC. None of
// that traffic affects the tab's own pixels, so the paper's pixel-based
// slicing flags it as potentially unnecessary (its Figure 5 IPC category),
// while noting that the messages might matter to the *other* process — the
// same caveat applies here.
package ipc

import (
	"webslice/internal/browser/ns"
	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// Channel is the renderer side of the browser-process pipe.
type Channel struct {
	M *vm.Machine

	writeFn, serializeFn *vm.Fn
	// MessagesSent counts messages for reporting.
	MessagesSent int
}

// NewChannel wires an IPC channel to the machine.
func NewChannel(m *vm.Machine) *Channel {
	return &Channel{
		M:           m,
		writeFn:     m.Func("IPC::ChannelMojo::Write", ns.IPC),
		serializeFn: m.Func("IPC::Message::WriteData", ns.IPC),
	}
}

// Send serializes a message of the given payload size and writes it to the
// browser-process socket. The payload is synthesized from a traced counter
// so the serialization loop has real dataflow.
func (c *Channel) Send(kind string, payload int) {
	m := c.M
	if payload < 8 {
		payload = 8
	}
	buf := m.IOb.Alloc(payload + 16)
	m.Call(c.serializeFn, func() {
		// Header: route id, type hash, length.
		m.StoreU32(buf, m.Imm(uint64(len(kind))))
		h := m.Imm(hash(kind))
		m.StoreU32(buf+4, h)
		m.StoreU32(buf+8, m.Imm(uint64(payload)))
		// Body: synthesized payload words.
		v := m.Imm(0x1234)
		m.At("body")
		for off := 16; off < payload+16; off += 8 {
			v = m.OpImm(isa.OpAdd, v, 0x9E37)
			m.StoreU64(buf+vmem.Addr(off), v)
		}
	})
	m.Call(c.writeFn, func() {
		m.Syscall(isa.SysSendmsg, isa.RegNone, isa.RegNone,
			[]vmem.Range{{Addr: buf, Size: uint32(payload + 16)}}, nil, nil)
	})
	c.MessagesSent++
}

func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h & 0xFFFFFFFF
}
