// Package raster implements the rasterizer worker threads
// (CompositorTileWorker*): display items become pixels in tile backing
// stores, one byte per pixel (indexed color). Pixel addresses are computed
// with traced arithmetic from the compositor's tile metadata, so compositing
// decisions that place content participate in the slice; pixel values derive
// from display-item colors, text bytes, and decoded image data, completing
// the provenance chain from the network to the screen.
//
// Every tile playback plants the pixel-criteria marker — the analog of the
// paper's marker inside RasterBufferProvider::PlaybackToMemory plus the
// external file of buffer addresses. Waste on the raster threads comes from
// image decodes whose tiles are never rastered (beyond the prepaint region)
// and from decode bookkeeping, not from the playbacks themselves.
package raster

import (
	"webslice/internal/browser/compositor"
	"webslice/internal/browser/ns"
	"webslice/internal/browser/paint"
	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// Rasterizer rasterizes tiles on whatever thread it is invoked on.
type Rasterizer struct {
	M *vm.Machine

	playbackFn, fillFn, textFn, imageFn, decodeFn *vm.Fn

	// Decoded caches image decodes by source address.
	Decoded map[vmem.Addr]vmem.Range
	// WastePasses scales post-decode color-management passes over the
	// decoded pixels (output never consumed).
	WastePasses int
	// MarkedTiles counts pixel-criteria markers planted.
	MarkedTiles int
}

// New wires a rasterizer to the machine.
func New(m *vm.Machine) *Rasterizer {
	return &Rasterizer{
		M:          m,
		playbackFn: m.Func("cc::RasterBufferProvider::PlaybackToMemory", ns.Skia),
		fillFn:     m.Func("skia::SkCanvas::drawRect", ns.Skia),
		textFn:     m.Func("skia::SkCanvas::drawTextBlob", ns.Skia),
		imageFn:    m.Func("skia::SkCanvas::drawImageRect", ns.Skia),
		decodeFn:   m.Func("skia::SkImageDecoder::Decode", ns.Skia),
		Decoded:    make(map[vmem.Addr]vmem.Range),
	}
}

// RasterTile renders every display item of the tile's layer that intersects
// the tile, then marks the buffer as pixel criteria if the tile is visible.
func (r *Rasterizer) RasterTile(t *compositor.Tile, done func()) {
	m := r.M
	m.Call(r.playbackFn, func() {
		// Tile device origin from the compositor's metadata (traced loads:
		// the compositor's tiling math feeds every pixel address).
		ox := m.LoadU32(t.Meta)
		oy := m.LoadU32(t.Meta + 4)
		base := m.LoadU32(t.Meta + 8)
		x0, y0 := t.Layer.X+t.Col*compositor.TileDim, t.Layer.Y+t.Row*compositor.TileDim
		x1, y1 := x0+compositor.TileDim, y0+compositor.TileDim

		// Clear the tile.
		m.At("clear")
		zero := m.Imm(0)
		m.Fill(t.Buf.Addr, int(t.Buf.Size), zero)

		var items []*paint.Item
		for _, it := range t.Layer.Items {
			// Go-side prefilter; the traced check below covers accepted
			// items (real rasterizers also cull cheaply first).
			if it.X >= x1 || it.Y >= y1 || it.X+it.W <= x0 || it.Y+it.H <= y0 {
				continue
			}
			items = append(items, it)
		}
		m.Loop("items", len(items), func(idx int) {
			it := items[idx]
			m.At("clip")
			ix := m.LoadU32(it.Addr + paint.OffX)
			iy := m.LoadU32(it.Addr + paint.OffY)
			iw := m.LoadU32(it.Addr + paint.OffW)
			ih := m.LoadU32(it.Addr + paint.OffH)
			cx := m.OpImm(isa.OpCmpLT, ix, uint64(x1))
			cy := m.OpImm(isa.OpCmpLT, iy, uint64(y1))
			ex := m.OpImm(isa.OpCmpGT, m.Op(isa.OpAdd, ix, iw), uint64(x0))
			ey := m.OpImm(isa.OpCmpGT, m.Op(isa.OpAdd, iy, ih), uint64(y0))
			hit := m.Op(isa.OpAnd, m.Op(isa.OpAnd, cx, cy), m.Op(isa.OpAnd, ex, ey))
			if !m.Branch(hit) {
				return
			}
			m.At("rasteritem")
			// Intersection in tile-local coordinates: the Go mirrors drive
			// loop bounds, while the traced origin registers carry the same
			// values into every pixel address, so layout geometry provably
			// flows into the written pixels.
			lx0, ly0 := maxInt(it.X, x0)-x0, maxInt(it.Y, y0)-y0
			lx1, ly1 := minInt(it.X+it.W, x1)-x0, minInt(it.Y+it.H, y1)-y0
			dx := m.Op(isa.OpMax, m.Op(isa.OpSub, ix, ox), m.Imm(0))
			dy := m.Op(isa.OpMax, m.Op(isa.OpSub, iy, oy), m.Imm(0))
			span := m.OpImm(isa.OpMul, dy, compositor.TileDim)
			origin := m.Op(isa.OpAdd, base, m.Op(isa.OpAdd, span, dx))
			switch it.Kind {
			case paint.KindRect, paint.KindBorder:
				r.fillRect(t, origin, it, lx0, ly0, lx1, ly1)
			case paint.KindText:
				r.drawText(t, origin, it, lx0, ly0, lx1, ly1)
			case paint.KindImage:
				r.drawImage(t, origin, it, lx0, ly0, lx1, ly1)
			}
		})
		// Every playback plants the criteria marker, as the paper's
		// instrumented RasterBufferProvider::PlaybackToMemory does: the tile
		// buffer holds final pixel values. Content beyond the prepaint
		// region is never rastered at all — that is where below-fold waste
		// comes from.
		m.MarkPixels(t.Buf)
		r.MarkedTiles++
	})
	done()
}

// fillRect paints a solid color: per-row addresses derive from the traced
// item/tile geometry (origin), 64-pixel splat stores of the item color.
func (r *Rasterizer) fillRect(t *compositor.Tile, origin isa.Reg, it *paint.Item, lx0, ly0, lx1, ly1 int) {
	m := r.M
	m.Call(r.fillFn, func() {
		color := m.LoadU32(it.Addr + paint.OffColor)
		rowOff := m.Mov(origin)
		for y := ly0; y < ly1; y++ {
			m.At("row")
			addr := rowOff
			for x := lx0; x < lx1; x += 64 {
				n := minInt(64, lx1-x)
				m.StoreVia(addr, n, color)
				if x+64 < lx1 {
					addr = m.OpImm(isa.OpAdd, addr, 64)
				}
			}
			m.At("nextrow")
			rowOff = m.OpImm(isa.OpAdd, rowOff, compositor.TileDim)
		}
	})
}

// drawText renders glyph rows whose pixel values derive from the text bytes
// (traced loads from the DOM text buffer).
func (r *Rasterizer) drawText(t *compositor.Tile, origin isa.Reg, it *paint.Item, lx0, ly0, lx1, ly1 int) {
	m := r.M
	m.Call(r.textFn, func() {
		ta := m.LoadU32(it.Addr + paint.OffAux)
		tl := m.LoadU32(it.Addr + paint.OffAux2)
		textLen := int(m.Val(tl))
		if textLen == 0 {
			return
		}
		rowOff := m.Mov(origin)
		// Each 16-pixel row band renders one line's glyphs: load a chunk of
		// text, splat it across the band (glyph pattern ~ text bytes).
		toff := 0
		for y := ly0; y < ly1; y += 4 {
			m.At("glyphrow")
			src := m.OpImm(isa.OpAdd, ta, uint64(toff%maxInt(textLen, 1)))
			chunk := m.LoadVia(src, minInt(8, textLen))
			addr := rowOff
			for x := lx0; x < lx1; x += 64 {
				n := minInt(64, lx1-x)
				m.StoreVia(addr, n, chunk)
				if x+64 < lx1 {
					addr = m.OpImm(isa.OpAdd, addr, 64)
				}
			}
			rowOff = m.OpImm(isa.OpAdd, rowOff, 4*compositor.TileDim)
			toff += 8
		}
	})
	_ = t
}

// drawImage blits decoded image rows into the tile.
func (r *Rasterizer) drawImage(t *compositor.Tile, origin isa.Reg, it *paint.Item, lx0, ly0, lx1, ly1 int) {
	m := r.M
	m.Call(r.imageFn, func() {
		ia := m.LoadU32(it.Addr + paint.OffAux)
		src := vmem.Addr(m.Val(ia))
		dec, ok := r.Decoded[src]
		if !ok {
			return
		}
		rowOff := m.Mov(origin)
		srcOff := m.Mov(ia)
		for y := ly0; y < ly1; y++ {
			m.At("imgrow")
			addr := rowOff
			for x := lx0; x < lx1; x += 64 {
				n := minInt(64, lx1-x)
				px := m.LoadVia(srcOff, n)
				m.StoreVia(addr, n, px)
				if x+64 < lx1 {
					addr = m.OpImm(isa.OpAdd, addr, 64)
					srcOff = m.OpImm(isa.OpAdd, srcOff, 64)
				}
			}
			m.At("imgnextrow")
			rowOff = m.OpImm(isa.OpAdd, rowOff, compositor.TileDim)
			srcOff = m.OpImm(isa.OpMod, srcOff, uint64(dec.End()))
			srcOff = m.Op(isa.OpMax, srcOff, m.Imm(uint64(dec.Addr)))
		}
	})
	_ = t
}

// Decode decompresses an image: a traced scan of the compressed bytes whose
// rolling accumulator seeds the decoded pixels, so decoded pixels descend
// from network bytes. Returns the decoded buffer (w*h bytes).
func (r *Rasterizer) Decode(src vmem.Range, w, h int) vmem.Range {
	m := r.M
	if dec, ok := r.Decoded[src.Addr]; ok {
		return dec
	}
	out := vmem.Range{Addr: m.Heap.Alloc(w * h), Size: uint32(w * h)}
	m.Call(r.decodeFn, func() {
		m.At("entropy")
		acc := m.Imm(0x5A)
		for c := 0; c < int(src.Size); c += 32 {
			n := minInt(32, int(src.Size)-c)
			chunk := m.Load(src.Addr+vmem.Addr(c), n)
			acc = m.Op(isa.OpXor, acc, chunk)
			acc = m.OpImm(isa.OpMul, acc, 1099511628211)
		}
		m.At("emit")
		for off := 0; off < w*h; off += 64 {
			n := minInt(64, w*h-off)
			m.Store(out.Addr+vmem.Addr(off), n, acc)
		}
		// Color-management pass: transforms into a scratch buffer that is
		// never consumed (ICC conversion kept "just in case").
		for p := 0; p < r.WastePasses; p++ {
			scratch := m.Heap.Alloc(w * h)
			m.At("icc")
			for off := 0; off < w*h; off += 64 {
				n := minInt(64, w*h-off)
				px := m.Load(out.Addr+vmem.Addr(off), n)
				gam := m.OpImm(isa.OpXor, px, 0x0101010101010101)
				m.Store(scratch+vmem.Addr(off), n, gam)
			}
		}
	})
	r.Decoded[src.Addr] = out
	r.Decoded[out.Addr] = out // draw-time lookups use the decoded address
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
