package raster

import (
	"testing"

	"webslice/internal/browser/compositor"
	"webslice/internal/browser/css"
	"webslice/internal/browser/dom"
	"webslice/internal/browser/layout"
	"webslice/internal/browser/paint"
	"webslice/internal/browser/sched"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// pipeline builds a minimal styled page and pushes it through paint,
// compositing, and rasterization (synchronously via the scheduler).
func pipeline(t *testing.T, sheet string) (*vm.Machine, *compositor.Compositor, *Rasterizer, *paint.Painter) {
	t.Helper()
	m := vm.New()
	m.Thread(0, "main")
	m.Thread(1, "compositor")
	m.Thread(3, "raster1")
	m.Switch(0)
	tree := dom.NewTree(m)
	body := tree.NewElement("body", "", "page")
	tree.Append(tree.Doc, body)
	hero := tree.NewElement("div", "hero", "hero")
	tree.Append(body, hero)
	promo := tree.NewElement("div", "promo", "promo")
	tree.Append(body, promo)
	txt := tree.NewTextFrom(vmem.Range{}, "")
	txt.Text = "visible words"
	m.StoreU32(txt.Addr+dom.OffTextLen, m.Const(uint64(len(txt.Text))))
	m.StoreU32(txt.Addr+dom.OffText, m.Const(uint64(m.Heap.Alloc(32))))
	tree.Append(hero, txt)

	e := css.NewEngine(m)
	buf := m.Heap.Alloc(len(sheet) + 1)
	m.StaticData(buf, []byte(sheet))
	e.Parse(vmem.Range{Addr: buf, Size: uint32(len(sheet))}, sheet)
	r := css.NewResolver(e)
	r.Resolve(tree, tree.Elements())
	le := layout.NewEngine(m, r)
	le.Layout(tree, 512)
	p := paint.NewPainter(m, r, le)
	layers := p.Paint(tree, 512)

	s := sched.New(m)
	comp := compositor.New(m, s, 1, []uint8{3}, 512, 512)
	rz := New(m)
	comp.Raster = rz.RasterTile
	done := false
	m.Switch(1)
	comp.Commit(layers, func() { done = true })
	s.Run()
	if !done {
		t.Fatal("raster batch never completed")
	}
	return m, comp, rz, p
}

func TestPipelineProducesMarkedPixels(t *testing.T) {
	m, comp, rz, p := pipeline(t, `
.page { background: #ffffff; }
.hero { background: #336699; height: 200px; }
.promo { background: #cc0000; height: 100px; }`)
	if len(p.Layers) == 0 || comp.RasteredTiles == 0 {
		t.Fatal("nothing rastered")
	}
	if rz.MarkedTiles != comp.RasteredTiles {
		t.Errorf("every playback must plant a marker: %d vs %d", rz.MarkedTiles, comp.RasteredTiles)
	}
	// Rastered hero pixels: the hero rect starts at y=0 (first content row);
	// check a pixel inside it carries the low byte of its background.
	var heroTile *compositor.Tile
	for _, tl := range comp.Tiles {
		if tl.Layer.Node == nil && tl.Col == 0 && tl.Row == 0 {
			heroTile = tl
		}
	}
	if heroTile == nil {
		t.Fatal("root tile (0,0) missing")
	}
	px := m.Mem.ReadU64(heroTile.Buf.Addr+compositor.TileDim*50+10, 1)
	if px == 0 {
		t.Error("hero pixels not written")
	}
	if err := m.Tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLayerPromotionAndOcclusion(t *testing.T) {
	_, comp, _, p := pipeline(t, `
.page { background: #ffffff; }
.hero { position: fixed; top: 0px; left: 0px; width: 512px; height: 512px; background: #000000; z-index: 9; }
.promo { position: absolute; top: 0px; left: 0px; width: 512px; height: 256px; background: #cc0000; z-index: 1; }`)
	if len(p.Layers) < 3 {
		t.Fatalf("expected promoted layers, got %d", len(p.Layers))
	}
	// The promo layer sits entirely under the opaque fixed hero: its tiles
	// must be rastered (backing-store waste) but not visible.
	var promoVisible, promoTiles int
	for _, tl := range comp.Tiles {
		if tl.Layer.Node != nil && tl.Layer.Node.ID == "promo" {
			promoTiles++
			if tl.Visible {
				promoVisible++
			}
		}
	}
	if promoTiles == 0 {
		t.Fatal("occluded layer still needs a backing store (the paper's compositing pitfall)")
	}
	if promoVisible != 0 {
		t.Errorf("%d occluded tiles marked visible", promoVisible)
	}
}

func TestDecodeProvenance(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	rz := New(m)
	src := vmem.Range{Addr: m.IOb.Alloc(128), Size: 128}
	m.StaticData(src.Addr, make([]byte, 128))
	dec := rz.Decode(src, 32, 16)
	if dec.Size != 32*16 {
		t.Errorf("decoded size = %d", dec.Size)
	}
	if again := rz.Decode(src, 32, 16); again != dec {
		t.Error("decode cache miss on identical source")
	}
	if rz.Decoded[dec.Addr] != dec {
		t.Error("decoded buffer must be indexed by output address for draw-time lookup")
	}
}

func TestScrollExtendsTiling(t *testing.T) {
	m, comp, _, _ := pipeline(t, `
.page { background: #ffffff; }
.hero { height: 200px; background: #222222; }
.promo { height: 4000px; background: #dddddd; }`)
	before := len(comp.Tiles)
	m.Switch(1)
	comp.HandleScroll(1500, nil)
	// Drain the raster tasks the scroll scheduled.
	for comp.S.Pending() > 0 {
		comp.S.Run()
	}
	if len(comp.Tiles) <= before {
		t.Errorf("scroll should extend tilings: %d -> %d tiles", before, len(comp.Tiles))
	}
	if comp.ScrollY != 1500 {
		t.Errorf("ScrollY = %d", comp.ScrollY)
	}
}
