// Package layout computes the position and size of every rendered element —
// the layout stage of the pipeline in the paper's Figure 1. It implements a
// simplified block/inline model: blocks stack vertically and fill the
// containing width; inline text flows into lines using a fixed advance per
// glyph at the computed font size. All geometry moves through traced loads
// of computed styles and traced stores into layout boxes, so layout work
// joins the slice exactly when its boxes influence pixels.
package layout

import (
	"webslice/internal/browser/css"
	"webslice/internal/browser/dom"
	"webslice/internal/browser/ns"
	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// BoxSize is the byte size of a layout-box record.
const BoxSize = 32

// Box field offsets (all u32 px).
const (
	OffX = 0
	OffY = 4
	OffW = 8
	OffH = 12
	// OffLines is the computed text line count (text containers).
	OffLines = 16
)

// Box is the Go mirror of a layout box.
type Box struct {
	Node *dom.Node
	Addr vmem.Addr
	// X, Y, W, H mirror the traced values for orchestration and tests.
	X, Y, W, H int
}

// Engine performs layout.
type Engine struct {
	M *vm.Machine
	R *css.Resolver

	layoutFn, textFn *vm.Fn

	// Boxes maps element -> box, rebuilt per layout pass.
	Boxes map[*dom.Node]*Box
	// DocHeight is the document's total laid-out height.
	DocHeight int
}

// NewEngine wires a layout engine to the style resolver.
func NewEngine(m *vm.Machine, r *css.Resolver) *Engine {
	return &Engine{
		M:        m,
		R:        r,
		layoutFn: m.Func("blink::LayoutBlockFlow::UpdateBlockLayout", ns.Layout),
		textFn:   m.Func("blink::ShapeResult::CreateForText", ns.Layout),
		Boxes:    make(map[*dom.Node]*Box),
	}
}

// Layout lays out the whole document for the given viewport width. It walks
// the DOM in document order, skipping display:none subtrees via traced
// branches on the computed style.
func (e *Engine) Layout(t *dom.Tree, viewportW int) {
	e.Boxes = make(map[*dom.Node]*Box)
	m := e.M
	m.Call(e.layoutFn, func() {
		h := e.layoutBlock(t.Doc, 0, 0, viewportW)
		e.DocHeight = h
	})
}

// layoutBlock lays out node at (x, y) with the given available width and
// returns the node's height. Traced values flow: style loads -> arithmetic
// -> box stores.
func (e *Engine) layoutBlock(n *dom.Node, x, y, availW int) int {
	m := e.M
	style := e.R.StyleOf(n)
	if n.Type == dom.ElementNode && style != 0 {
		m.At("disp")
		disp := m.Load(style+css.OffDisplay, 1)
		visible := m.OpImm(isa.OpCmpNE, disp, css.DisplayNone)
		if !m.Branch(visible) {
			m.At("skipped")
			return 0
		}
	}

	box := &Box{Node: n, Addr: m.Heap.Alloc(BoxSize)}
	e.Boxes[n] = box

	// Width: css width if set, else fill the available width minus margins.
	m.At("geom")
	var wReg isa.Reg
	margin := 0
	padding := 0
	if style != 0 {
		mw := m.LoadU32(style + css.OffWidth)
		mg := m.Load(style+css.OffMargin, 2)
		pd := m.Load(style+css.OffPadding, 2)
		avail := m.Imm(uint64(availW))
		two := m.Imm(2)
		mg2 := m.Op(isa.OpMul, mg, two)
		fill := m.Op(isa.OpSub, avail, mg2)
		// w = width != 0 ? width : fill
		useCSS := m.OpImm(isa.OpCmpNE, mw, 0)
		if m.Branch(useCSS) {
			m.At("cssw")
			wReg = mw
		} else {
			m.At("fillw")
			wReg = fill
		}
		margin = int(m.Val(mg))
		padding = int(m.Val(pd))
	} else {
		wReg = m.Imm(uint64(availW))
	}
	w := int(m.Val(wReg))
	if w > availW {
		w = availW
	}

	x += margin
	y += margin
	box.X, box.Y, box.W = x, y, w
	xr := m.Imm(uint64(x))
	yr := m.Imm(uint64(y))
	m.StoreU32(box.Addr+OffX, xr)
	m.StoreU32(box.Addr+OffY, yr)
	m.StoreU32(box.Addr+OffW, wReg)

	// Height: css height, else content height (children + text lines).
	contentY := y + padding
	contentH := 0
	for _, c := range n.Children {
		if c.Type == dom.TextNode {
			contentH += e.layoutText(c, x+padding, contentY+contentH, w-2*padding, style)
		} else {
			ch := e.layoutBlock(c, x+padding, contentY+contentH, w-2*padding)
			contentH += ch
		}
	}
	h := contentH + 2*padding
	if n.Tag == dom.TagImg && h == 0 {
		h = 32 // intrinsic fallback before the image (or its CSS size) arrives
	}
	if style != 0 {
		m.At("height")
		hCSS := m.LoadU32(style + css.OffHeight)
		useCSS := m.OpImm(isa.OpCmpNE, hCSS, 0)
		if m.Branch(useCSS) {
			m.At("cssh")
			h = int(m.Val(hCSS))
			m.StoreU32(box.Addr+OffH, hCSS)
		} else {
			m.At("contenth")
			hr := m.Imm(uint64(h))
			m.StoreU32(box.Addr+OffH, hr)
		}
		// Positioned elements use top/left offsets (traced) and do not
		// contribute to normal flow height.
		pos := m.Load(style+css.OffPosition, 1)
		out := m.OpImm(isa.OpCmpGE, pos, 2)
		if m.Branch(out) {
			m.At("positioned")
			top := m.LoadU32(style + css.OffTop)
			left := m.LoadU32(style + css.OffLeft)
			m.StoreU32(box.Addr+OffY, top)
			m.StoreU32(box.Addr+OffX, left)
			box.X, box.Y = int(m.Val(left)), int(m.Val(top))
			box.H = h
			return 0
		}
	} else {
		m.StoreU32(box.Addr+OffH, m.Imm(uint64(h)))
	}
	box.H = h
	return h + margin*2
}

// layoutText shapes a text node: lines = ceil(len*advance / width) at the
// parent's font size; height = lines * lineHeight.
func (e *Engine) layoutText(n *dom.Node, x, y, w int, parentStyle vmem.Addr) int {
	m := e.M
	if w <= 0 {
		w = 16
	}
	var h int
	m.Call(e.textFn, func() {
		m.At("shape")
		tl := m.LoadU32(n.Addr + dom.OffTextLen)
		var fs isa.Reg
		if parentStyle != 0 {
			fs = m.Load(parentStyle+css.OffFontSize, 2)
		} else {
			fs = m.Imm(16)
		}
		// advance ~= fontSize/2 per glyph; lines = (len*advance)/w + 1
		adv := m.OpImm(isa.OpShr, fs, 1)
		total := m.Op(isa.OpMul, tl, adv)
		wr := m.Imm(uint64(w))
		lines := m.Op(isa.OpDiv, total, wr)
		lines = m.AddImm(lines, 1)
		lineH := m.Op(isa.OpAdd, fs, m.OpImm(isa.OpShr, fs, 2))
		hr := m.Op(isa.OpMul, lines, lineH)

		box := &Box{Node: n, Addr: m.Heap.Alloc(BoxSize)}
		e.Boxes[n] = box
		m.StoreU32(box.Addr+OffX, m.Imm(uint64(x)))
		m.StoreU32(box.Addr+OffY, m.Imm(uint64(y)))
		m.StoreU32(box.Addr+OffW, wr)
		m.StoreU32(box.Addr+OffH, hr)
		m.StoreU32(box.Addr+OffLines, lines)
		box.X, box.Y, box.W, box.H = x, y, w, int(m.Val(hr))
		h = box.H
	})
	return h
}

// BoxOf returns the layout box of a node (nil if not laid out).
func (e *Engine) BoxOf(n *dom.Node) *Box { return e.Boxes[n] }
