package layout

import (
	"testing"

	"webslice/internal/browser/css"
	"webslice/internal/browser/dom"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// buildPage assembles a small styled document and lays it out.
func buildPage(t *testing.T, sheet string) (*vm.Machine, *dom.Tree, *Engine) {
	t.Helper()
	m := vm.New()
	m.Thread(0, "main")
	tree := dom.NewTree(m)
	body := tree.NewElement("body", "", "page")
	tree.Append(tree.Doc, body)
	hdr := tree.NewElement("div", "hdr", "bar")
	tree.Append(body, hdr)
	card := tree.NewElement("div", "card", "card")
	tree.Append(body, card)
	txt := tree.NewTextFrom(vmem.Range{}, "")
	txt.Text = "some flowing text"
	tree.Append(card, txt)
	hidden := tree.NewElement("div", "hidden", "gone")
	tree.Append(body, hidden)

	e := css.NewEngine(m)
	buf := m.Heap.Alloc(len(sheet) + 1)
	m.StaticData(buf, []byte(sheet))
	e.Parse(vmem.Range{Addr: buf, Size: uint32(len(sheet))}, sheet)
	r := css.NewResolver(e)
	r.Resolve(tree, tree.Elements())
	le := NewEngine(m, r)
	le.Layout(tree, 800)
	return m, tree, le
}

func TestBlockStacking(t *testing.T) {
	_, tree, le := buildPage(t, `
.bar { height: 50px; }
.card { height: 100px; margin: 10px; }
.gone { display: none; }`)
	hdr := le.BoxOf(tree.ByID("hdr"))
	card := le.BoxOf(tree.ByID("card"))
	if hdr == nil || card == nil {
		t.Fatal("boxes missing")
	}
	if hdr.H != 50 {
		t.Errorf("hdr height = %d", hdr.H)
	}
	if card.Y <= hdr.Y {
		t.Errorf("card (y=%d) must stack below hdr (y=%d)", card.Y, hdr.Y)
	}
	if card.X != 10 {
		t.Errorf("card margin not applied: x=%d", card.X)
	}
	if le.DocHeight < 160 {
		t.Errorf("DocHeight = %d", le.DocHeight)
	}
}

func TestDisplayNoneSkipsSubtree(t *testing.T) {
	_, tree, le := buildPage(t, `.gone { display: none; height: 500px; }`)
	if le.BoxOf(tree.ByID("hidden")) != nil {
		t.Error("display:none element must not get a box")
	}
}

func TestCSSWidthWins(t *testing.T) {
	m, tree, le := buildPage(t, `.card { width: 300px; }`)
	card := le.BoxOf(tree.ByID("card"))
	if card.W != 300 {
		t.Errorf("width = %d, want CSS 300", card.W)
	}
	// Traced box mirrors the Go mirror.
	if got := m.Mem.ReadU64(card.Addr+OffW, 4); got != 300 {
		t.Errorf("traced width = %d", got)
	}
}

func TestTextLinesScaleWithLength(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	tree := dom.NewTree(m)
	body := tree.NewElement("body", "", "")
	tree.Append(tree.Doc, body)
	short := tree.NewTextFrom(vmem.Range{}, "")
	short.Text = "hi"
	long := tree.NewTextFrom(vmem.Range{}, "")
	long.Text = "a much longer run of text that must wrap across multiple lines at narrow widths"
	// Store traced text lengths so layout sees them.
	m.StoreU32(short.Addr+dom.OffTextLen, m.Const(uint64(len(short.Text))))
	m.StoreU32(long.Addr+dom.OffTextLen, m.Const(uint64(len(long.Text))))
	tree.Append(body, short)
	tree.Append(body, long)
	e := css.NewEngine(m)
	r := css.NewResolver(e)
	r.Resolve(tree, tree.Elements())
	le := NewEngine(m, r)
	le.Layout(tree, 200)
	hs := le.BoxOf(short).H
	hl := le.BoxOf(long).H
	if hl <= hs {
		t.Errorf("long text (h=%d) should be taller than short (h=%d)", hl, hs)
	}
}
