// Package ns centralizes the function namespaces of the simulated browser.
// The profiler's categorization of potentially unnecessary computations
// (paper Figure 5) groups non-slice instructions by these namespaces, the
// way the paper grouped Chromium symbols.
package ns

const (
	// V8 is the JavaScript engine (paper category: JavaScript).
	V8 = "v8"
	// Debug is built-in debug bookkeeping (category: Debugging).
	Debug = "base/debug"
	// IPC is communication with the browser main process (category: IPC).
	IPC = "ipc"
	// Threading is thread communication and synchronization, the PThread
	// analog (category: Multi-threading).
	Threading = "base/threading"
	// CC is the compositor (category: Compositing).
	CC = "cc"
	// Skia is painting and rasterization (category: Graphics).
	Skia = "skia"
	// CSS is style resolution (category: CSS).
	CSS = "blink/css"
	// Layout is box layout (category: CSS — the paper folds style and
	// layout calculation into its CSS category).
	Layout = "blink/layout"
	// Loop is event scheduling: the message loop and task queues (the bulk
	// of the paper's Other category).
	Loop = "base/message_loop"
	// Net is the network stack (falls into Other).
	Net = "net"
	// NetError is the network error-handling path: retries, backoff
	// computation, timeout firing, connection-reset recovery, and the
	// engine-side degradation it triggers. Kept separate from Net so the
	// fault-injection experiment can measure how much error-path work lands
	// outside the pixel slice (it categorizes as Other, like Net).
	NetError = "net/error"
	// None marks functions without a meaningful namespace — HTML parsing
	// helpers, string/hash utilities, allocators. Their instructions cannot
	// be categorized, mirroring the 26–47% the paper could not attribute.
	None = ""
)
