// Package debuglog models the debug bookkeeping built into a release build
// of Chromium: histogram samples, trace-event stubs, and counters that are
// updated on hot paths even with all debugging options compiled out. The
// paper's Figure 5 finds this "Debugging" category to be one of the three
// largest groups of potentially unnecessary instructions — nothing a user
// sees ever reads these counters.
package debuglog

import (
	"webslice/internal/browser/ns"
	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// Log is the per-process debug bookkeeping sink.
type Log struct {
	M *vm.Machine
	// Verbosity scales how much bookkeeping each event performs; it is a
	// workload-calibration knob (see internal/sites).
	Verbosity int

	histFn, traceFn *vm.Fn
	buckets         vmem.Addr
	cursorAddr      vmem.Addr
	ring            vmem.Addr
}

// New wires the debug log to the machine.
func New(m *vm.Machine, verbosity int) *Log {
	l := &Log{
		M:         m,
		Verbosity: verbosity,
		histFn:    m.Func("base::HistogramBase::Add", ns.Debug),
		traceFn:   m.Func("base::trace_event::TraceLog::AddTraceEvent", ns.Debug),
		buckets:   m.Heap.Alloc(64 * 8),
		ring:      m.Heap.Alloc(4096),
	}
	l.cursorAddr = m.Heap.Alloc(8)
	return l
}

// Histogram records a sample: bucket selection (traced compare chain) plus a
// counter bump, repeated Verbosity times.
func (l *Log) Histogram(sample uint64) {
	m := l.M
	m.Call(l.histFn, func() {
		for v := 0; v < l.Verbosity; v++ {
			m.At("sample")
			s := m.Imm(sample + uint64(v))
			// Bucket = log2-ish: shift until small, counting.
			b := m.OpImm(isa.OpShr, s, 3)
			b = m.OpImm(isa.OpAnd, b, 63)
			off := m.OpImm(isa.OpMul, b, 8)
			addr := m.OpImm(isa.OpAdd, off, uint64(l.buckets))
			c := m.LoadVia(addr, 8)
			c2 := m.AddImm(c, 1)
			m.StoreVia(addr, 8, c2)
		}
	})
}

// TraceEvent appends a trace-event record to the ring buffer (never read).
func (l *Log) TraceEvent(nameHash uint64) {
	m := l.M
	m.Call(l.traceFn, func() {
		for v := 0; v < l.Verbosity; v++ {
			m.At("event")
			cur := m.LoadU32(l.cursorAddr)
			off := m.OpImm(isa.OpAnd, cur, 4095-15)
			addr := m.OpImm(isa.OpAdd, off, uint64(l.ring))
			m.StoreVia(addr, 8, m.Imm(nameHash))
			m.StoreU32(l.cursorAddr, m.AddImm(cur, 16))
		}
	})
}
