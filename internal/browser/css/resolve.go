package css

import (
	"sort"

	"webslice/internal/browser/dom"
	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// Resolver matches rules against elements and applies the cascade. Rules are
// bucketed by their rightmost selector key (as Blink buckets by id/class/tag)
// so each element only tests plausible candidates; unused rules typically
// cost only their parse work, which is exactly the waste Table I measures.
type Resolver struct {
	M *vm.Machine
	E *Engine

	byID, byClass map[uint32][]*Rule
	byTag         map[dom.Tag][]*Rule

	// Resolved maps element -> computed style record.
	Resolved map[*dom.Node]vmem.Addr
	// MatchAttempts and RulesApplied count work for reports.
	MatchAttempts, RulesApplied int
}

// NewResolver indexes all rules parsed so far by the engine.
func NewResolver(e *Engine) *Resolver {
	r := &Resolver{
		M:        e.M,
		E:        e,
		byID:     make(map[uint32][]*Rule),
		byClass:  make(map[uint32][]*Rule),
		byTag:    make(map[dom.Tag][]*Rule),
		Resolved: make(map[*dom.Node]vmem.Addr),
	}
	for _, s := range e.Sheets {
		for _, rule := range s.Rules {
			switch {
			case rule.Sel.IDHash != 0:
				r.byID[rule.Sel.IDHash] = append(r.byID[rule.Sel.IDHash], rule)
			case rule.Sel.Class != 0:
				r.byClass[rule.Sel.Class] = append(r.byClass[rule.Sel.Class], rule)
			default:
				r.byTag[rule.Sel.Tag] = append(r.byTag[rule.Sel.Tag], rule)
			}
		}
	}
	return r
}

// Resolve computes styles for the given elements (pass tree.Elements() for a
// full recalc). Each element gets defaults, candidate matching, and cascade
// application in specificity-then-order sequence.
func (r *Resolver) Resolve(t *dom.Tree, elements []*dom.Node) {
	m := r.M
	for _, el := range elements {
		if el.Type != dom.ElementNode {
			continue
		}
		style, fresh := r.Resolved[el]
		if !fresh {
			style = m.Heap.Alloc(StyleSize)
			r.Resolved[el] = style
		}
		r.applyDefaults(el, style)
		m.Call(r.E.matchFn, func() {
			cands := r.candidates(el)
			m.Loop("cands", len(cands), func(i int) {
				rule := cands[i]
				r.MatchAttempts++
				if r.match(el, rule) {
					rule.Used = true
					r.apply(rule, style)
				}
			})
		})
		r.deriveLayerBit(style)
		// Publish the style address on the node (traced pointer store).
		m.StoreU32(el.Addr+dom.OffStyle, m.Imm(uint64(style)))
	}
}

func (r *Resolver) applyDefaults(el *dom.Node, style vmem.Addr) {
	m := r.M
	m.Call(r.E.defaultFn, func() {
		zero := m.Imm(0)
		m.Store(style, 8, zero)
		for off := 8; off < StyleSize; off += 8 {
			m.Store(style+vmem.Addr(off), 8, zero)
		}
		disp := uint64(DisplayBlock)
		switch el.Tag {
		case dom.TagSpan, dom.TagA, dom.TagImg, dom.TagButton, dom.TagInput:
			disp = DisplayInline
		case dom.TagScript, dom.TagStyle, dom.TagLink, dom.TagTitle, dom.TagHead:
			disp = DisplayNone
		}
		m.Store(style+OffDisplay, 1, m.Imm(disp))
		m.Store(style+OffFontSize, 2, m.Imm(16))
		m.Store(style+OffColor, 4, m.Imm(0xFF000000))
		m.Store(style+OffOpacity, 1, m.Imm(255))
		m.Store(style+OffZIndex, 2, m.Imm(100)) // z-index 0, offset encoding
	})
}

// candidates returns plausible rules sorted by (specificity, source order).
func (r *Resolver) candidates(el *dom.Node) []*Rule {
	var cands []*Rule
	cands = append(cands, r.byTag[el.Tag]...)
	if el.Class != "" {
		cands = append(cands, r.byClass[dom.Hash(el.Class)]...)
	}
	if el.ID != "" {
		cands = append(cands, r.byID[dom.Hash(el.ID)]...)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Spec != cands[j].Spec {
			return cands[i].Spec < cands[j].Spec
		}
		return cands[i].order < cands[j].order
	})
	return cands
}

// match performs the traced selector check: node hashes vs rule hashes, plus
// an ancestor walk for descendant selectors.
func (r *Resolver) match(el *dom.Node, rule *Rule) bool {
	m := r.M
	m.At("check")
	var cond isa.Reg
	switch {
	case rule.Sel.IDHash != 0:
		got := m.LoadU32(el.Addr + dom.OffIDHash)
		want := m.LoadU32(rule.Addr)
		cond = m.Op(isa.OpCmpEQ, got, want)
	case rule.Sel.Class != 0:
		got := m.LoadU32(el.Addr + dom.OffClassHash)
		want := m.LoadU32(rule.Addr)
		cond = m.Op(isa.OpCmpEQ, got, want)
	default:
		got := m.Load(el.Addr+dom.OffTag, 2)
		want := m.Load(rule.Addr+4, 2)
		cond = m.Op(isa.OpCmpEQ, got, want)
	}
	matched := m.Branch(cond)
	if !matched {
		m.At("reject")
		return false
	}
	if rule.Sel.Ancestor != 0 {
		m.At("ancestor")
		ok := false
		want := m.LoadU32(rule.Addr + 8)
		for p := el.Parent; p != nil; p = p.Parent {
			m.At("walkup")
			got := m.LoadU32(p.Addr + dom.OffClassHash)
			eq := m.Op(isa.OpCmpEQ, got, want)
			if m.Branch(eq) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	m.At("matched")
	return true
}

// apply writes the rule's declarations into the style record (traced loads
// of the CSSOM decl records, traced stores into the style).
func (r *Resolver) apply(rule *Rule, style vmem.Addr) {
	m := r.M
	m.Call(r.E.cascadeFn, func() {
		for _, d := range rule.Decls {
			m.At("decl")
			v := m.LoadU32(d.Addr + 4)
			off, size := propOffset(d.Prop)
			if size == 0 {
				continue
			}
			m.Store(style+off, size, v)
			r.RulesApplied++
		}
	})
}

// deriveLayerBit computes whether the element promotes to its own compositor
// layer: positioned absolute/fixed, or a non-default z-index.
func (r *Resolver) deriveLayerBit(style vmem.Addr) {
	m := r.M
	m.At("layerbit")
	pos := m.Load(style+OffPosition, 1)
	z := m.Load(style+OffZIndex, 2)
	abs := m.OpImm(isa.OpCmpGE, pos, 2)
	zn := m.OpImm(isa.OpCmpNE, z, 100)
	bit := m.Op(isa.OpOr, abs, zn)
	m.Store(style+OffHasLayer, 1, bit)
}

// StyleOf returns the computed style record for an element (0 if not yet
// resolved).
func (r *Resolver) StyleOf(el *dom.Node) vmem.Addr { return r.Resolved[el] }
