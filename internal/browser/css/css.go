// Package css implements the CSS engine: a traced parser producing the CSS
// Object Model in machine memory, selector matching with rule bucketing (as
// real engines do), and the cascade writing computed styles. Rule selectors
// are hashed from the stylesheet's source bytes with traced ops, so a
// matched rule's provenance reaches back to the network; rules that never
// match leave only their parse cost behind — the unused-CSS waste of the
// paper's Table I.
package css

import (
	"strconv"
	"strings"

	"webslice/internal/browser/dom"
	"webslice/internal/browser/ns"
	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// Computed-style record layout (one per element, StyleSize bytes).
const StyleSize = 64

// Style field offsets.
const (
	OffDisplay  = 0  // u8: 0 none, 1 block, 2 inline
	OffPosition = 1  // u8: 0 static, 1 relative, 2 absolute, 3 fixed
	OffZIndex   = 2  // u16 (offset by 100: stored z = css z + 100)
	OffColor    = 4  // u32 RGBA
	OffBg       = 8  // u32 RGBA (0 = transparent)
	OffWidth    = 12 // u32 px (0 = auto)
	OffHeight   = 16 // u32 px (0 = auto)
	OffMargin   = 20 // u16 px
	OffPadding  = 22 // u16 px
	OffFontSize = 24 // u16 px
	OffOpacity  = 26 // u8 0..255
	OffHasLayer = 27 // u8: element gets its own compositor layer
	OffBorderW  = 28 // u16 px
	OffTop      = 32 // u32 px (positioned elements)
	OffLeft     = 36 // u32 px
)

// Display values.
const (
	DisplayNone   = 0
	DisplayBlock  = 1
	DisplayInline = 2
)

// Property ids.
type Prop uint8

const (
	PropDisplay Prop = iota + 1
	PropPosition
	PropZIndex
	PropColor
	PropBackground
	PropWidth
	PropHeight
	PropMargin
	PropPadding
	PropFontSize
	PropOpacity
	PropBorderWidth
	PropTop
	PropLeft
)

var propByName = map[string]Prop{
	"display": PropDisplay, "position": PropPosition, "z-index": PropZIndex,
	"color": PropColor, "background": PropBackground, "width": PropWidth,
	"height": PropHeight, "margin": PropMargin, "padding": PropPadding,
	"font-size": PropFontSize, "opacity": PropOpacity,
	"border-width": PropBorderWidth, "top": PropTop, "left": PropLeft,
}

// propOffset maps a property to its style-record offset and size.
func propOffset(p Prop) (off vmem.Addr, size int) {
	switch p {
	case PropDisplay:
		return OffDisplay, 1
	case PropPosition:
		return OffPosition, 1
	case PropZIndex:
		return OffZIndex, 2
	case PropColor:
		return OffColor, 4
	case PropBackground:
		return OffBg, 4
	case PropWidth:
		return OffWidth, 4
	case PropHeight:
		return OffHeight, 4
	case PropMargin:
		return OffMargin, 2
	case PropPadding:
		return OffPadding, 2
	case PropFontSize:
		return OffFontSize, 2
	case PropOpacity:
		return OffOpacity, 1
	case PropBorderWidth:
		return OffBorderW, 2
	case PropTop:
		return OffTop, 4
	case PropLeft:
		return OffLeft, 4
	default:
		return 0, 0
	}
}

// Decl is one parsed declaration; Addr points at its traced (prop, value)
// record in the CSSOM.
type Decl struct {
	Prop  Prop
	Value uint32
	Addr  vmem.Addr
}

// Selector is a simple selector: tag, #id hash, .class hash (any may be
// zero), with an optional ancestor class hash for descendant selectors.
type Selector struct {
	Tag      dom.Tag
	IDHash   uint32
	Class    uint32
	Ancestor uint32 // class hash of required ancestor (descendant selector)
}

// Rule is one style rule.
type Rule struct {
	Sel  Selector
	Spec int // specificity (id=100, class=10, tag=1; + source order tiebreak)
	// Decls are the declarations.
	Decls []Decl
	// Addr is the rule record in CSSOM memory (selector hashes live here).
	Addr vmem.Addr
	// SrcBytes is the rule's extent in the stylesheet source.
	SrcBytes int
	// Used marks that the rule matched at least one element (Table I
	// coverage).
	Used  bool
	order int
}

// Sheet is a parsed stylesheet plus usage accounting.
type Sheet struct {
	Rules []*Rule
	// Bytes is the stylesheet source length.
	Bytes int
}

// UsedBytes returns source bytes belonging to rules that matched.
func (s *Sheet) UsedBytes() int {
	n := 0
	for _, r := range s.Rules {
		if r.Used {
			n += r.SrcBytes
		}
	}
	return n
}

// Engine owns parsing and style resolution.
type Engine struct {
	M *vm.Machine

	parseFn, matchFn, cascadeFn, defaultFn *vm.Fn
	Sheets                                 []*Sheet
}

// NewEngine wires a CSS engine to the machine.
func NewEngine(m *vm.Machine) *Engine {
	return &Engine{
		M:         m,
		parseFn:   m.Func("blink::CSSParserImpl::ParseStyleSheet", ns.CSS),
		matchFn:   m.Func("blink::SelectorChecker::Match", ns.CSS),
		cascadeFn: m.Func("blink::StyleCascade::Apply", ns.CSS),
		defaultFn: m.Func("blink::ComputedStyle::InitialStyle", ns.CSS),
	}
}

// Parse tokenizes the stylesheet at src (text given by sheet) into rules.
// Selector hashes are computed from source bytes with traced FNV; parsed
// values are stored into CSSOM memory with traced stores.
func (e *Engine) Parse(src vmem.Range, sheet string) *Sheet {
	m := e.M
	out := &Sheet{Bytes: len(sheet)}
	m.Call(e.parseFn, func() {
		pos := 0
		order := 0
		for pos < len(sheet) {
			open := strings.IndexByte(sheet[pos:], '{')
			if open < 0 {
				break
			}
			clos := strings.IndexByte(sheet[pos+open:], '}')
			if clos < 0 {
				break
			}
			selText := strings.TrimSpace(sheet[pos : pos+open])
			body := sheet[pos+open+1 : pos+open+clos]
			ruleStart := pos
			ruleLen := open + clos + 1
			pos += open + clos + 1
			if selText == "" {
				continue
			}
			order++
			r := e.parseRule(src, sheet, ruleStart, ruleLen, selText, body, order)
			out.Rules = append(out.Rules, r)
		}
	})
	e.Sheets = append(e.Sheets, out)
	return out
}

// parseRule builds one rule: traced scan of its bytes, traced selector
// hashing, traced stores of the rule record and declarations.
func (e *Engine) parseRule(src vmem.Range, sheet string, start, length int, selText, body string, order int) *Rule {
	m := e.M
	r := &Rule{SrcBytes: length, order: order}
	// Scan the rule's source span (chunked traced loads).
	m.At("rulescan")
	acc := m.Imm(1)
	for c := 0; c < length; c += 32 {
		sz := min(32, length-c)
		chunk := m.Load(src.Addr+vmem.Addr(start+c), sz)
		acc = m.Op(isa.OpOr, acc, chunk)
	}

	// Selector: supports "tag", ".class", "#id", and "ancestorclass desc".
	parts := strings.Fields(selText)
	target := parts[len(parts)-1]
	if len(parts) > 1 {
		anc := strings.TrimPrefix(parts[0], ".")
		r.Sel.Ancestor = dom.Hash(anc)
		r.Spec += 10
	}
	hashFrom := func(lit string) (uint32, isa.Reg) {
		off := strings.Index(sheet[start:start+length], lit)
		if off < 0 {
			return dom.Hash(lit), isa.RegNone
		}
		return dom.Hash(lit), e.hashBytes(src.Addr+vmem.Addr(start+off), len(lit))
	}
	r.Addr = m.Heap.Alloc(24)
	var selReg isa.Reg = isa.RegNone
	switch {
	case strings.HasPrefix(target, "#"):
		h, reg := hashFrom(target[1:])
		r.Sel.IDHash = h
		r.Spec += 100
		selReg = reg
	case strings.HasPrefix(target, "."):
		h, reg := hashFrom(target[1:])
		r.Sel.Class = h
		r.Spec += 10
		selReg = reg
	default:
		r.Sel.Tag = dom.TagByName(target)
		r.Spec++
	}
	// Rule record: selector hash (traced value when available), tag,
	// ancestor.
	m.At("rulestore")
	if selReg != isa.RegNone {
		m.StoreU32(r.Addr, selReg)
	} else {
		m.StoreU32(r.Addr, m.Imm(uint64(r.Sel.IDHash|r.Sel.Class)))
	}
	m.Store(r.Addr+4, 2, m.Imm(uint64(r.Sel.Tag)))
	m.StoreU32(r.Addr+8, m.Imm(uint64(r.Sel.Ancestor)))

	// Declarations.
	for _, declText := range strings.Split(body, ";") {
		declText = strings.TrimSpace(declText)
		if declText == "" {
			continue
		}
		colon := strings.IndexByte(declText, ':')
		if colon < 0 {
			continue
		}
		name := strings.TrimSpace(declText[:colon])
		val := strings.TrimSpace(declText[colon+1:])
		prop, ok := propByName[name]
		if !ok {
			continue
		}
		d := Decl{Prop: prop, Value: parseValue(prop, val)}
		d.Addr = m.Heap.Alloc(8)
		m.At("declstore")
		m.Store(d.Addr, 1, m.Imm(uint64(prop)))
		// The declaration value is derived from the scanned source bytes:
		// fold the scan accumulator in so provenance holds (value ^ acc ^ acc).
		v := m.Imm(uint64(d.Value))
		v = m.Op(isa.OpXor, v, acc)
		v = m.Op(isa.OpXor, v, acc)
		m.StoreU32(d.Addr+4, v)
		r.Decls = append(r.Decls, d)
	}
	return r
}

func (e *Engine) hashBytes(src vmem.Addr, n int) isa.Reg {
	m := e.M
	h := m.Imm(2166136261)
	m.At("fnv")
	for i := 0; i < n; i++ {
		b := m.Load(src+vmem.Addr(i), 1)
		h = m.Op(isa.OpXor, h, b)
		h = m.OpImm(isa.OpMul, h, 16777619)
		h = m.OpImm(isa.OpAnd, h, 0xFFFFFFFF)
	}
	return h
}

func parseValue(p Prop, val string) uint32 {
	val = strings.TrimSuffix(strings.TrimSpace(val), "px")
	switch p {
	case PropDisplay:
		switch val {
		case "none":
			return DisplayNone
		case "inline":
			return DisplayInline
		default:
			return DisplayBlock
		}
	case PropPosition:
		switch val {
		case "relative":
			return 1
		case "absolute":
			return 2
		case "fixed":
			return 3
		default:
			return 0
		}
	case PropColor, PropBackground:
		if strings.HasPrefix(val, "#") {
			n, _ := strconv.ParseUint(val[1:], 16, 32)
			return uint32(n) | 0xFF000000
		}
		switch val {
		case "transparent":
			return 0
		case "white":
			return 0xFFFFFFFF
		case "black":
			return 0xFF000000
		case "red":
			return 0xFFFF0000
		case "blue":
			return 0xFF0000FF
		}
		return 0xFF888888
	case PropZIndex:
		n, _ := strconv.Atoi(val)
		return uint32(n + 100)
	case PropOpacity:
		f, _ := strconv.ParseFloat(val, 64)
		return uint32(f * 255)
	default:
		n, _ := strconv.Atoi(val)
		return uint32(n)
	}
}
