package css

import (
	"testing"

	"webslice/internal/browser/dom"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

func parseSheet(t *testing.T, sheet string) (*vm.Machine, *Engine, *Sheet) {
	t.Helper()
	m := vm.New()
	m.Thread(0, "main")
	e := NewEngine(m)
	buf := m.Heap.Alloc(len(sheet) + 1)
	m.StaticData(buf, []byte(sheet))
	s := e.Parse(vmem.Range{Addr: buf, Size: uint32(len(sheet))}, sheet)
	return m, e, s
}

func TestParseRules(t *testing.T) {
	_, _, s := parseSheet(t, `
.card { background: #ff0000; width: 120px; margin: 4px; }
#hero { height: 300px; z-index: 3; }
div { color: black; }
.menu .entry { padding: 2px; }
`)
	if len(s.Rules) != 4 {
		t.Fatalf("rules = %d", len(s.Rules))
	}
	card := s.Rules[0]
	if card.Sel.Class != dom.Hash("card") || card.Spec != 10 {
		t.Errorf("card selector wrong: %+v", card.Sel)
	}
	if len(card.Decls) != 3 || card.Decls[0].Prop != PropBackground || card.Decls[0].Value != 0xFFFF0000 {
		t.Errorf("card decls wrong: %+v", card.Decls)
	}
	hero := s.Rules[1]
	if hero.Sel.IDHash != dom.Hash("hero") || hero.Spec != 100 {
		t.Errorf("hero selector: %+v, spec %d", hero.Sel, hero.Spec)
	}
	if hero.Decls[1].Prop != PropZIndex || hero.Decls[1].Value != 103 {
		t.Errorf("z-index encoding: %+v", hero.Decls[1])
	}
	tag := s.Rules[2]
	if tag.Sel.Tag != dom.TagDiv || tag.Spec != 1 {
		t.Errorf("tag selector: %+v", tag.Sel)
	}
	desc := s.Rules[3]
	if desc.Sel.Ancestor != dom.Hash("menu") || desc.Sel.Class != dom.Hash("entry") {
		t.Errorf("descendant selector: %+v", desc.Sel)
	}
}

func TestValueParsing(t *testing.T) {
	cases := []struct {
		prop Prop
		val  string
		want uint32
	}{
		{PropDisplay, "none", DisplayNone},
		{PropDisplay, "inline", DisplayInline},
		{PropDisplay, "block", DisplayBlock},
		{PropPosition, "fixed", 3},
		{PropColor, "#112233", 0xFF112233},
		{PropColor, "transparent", 0},
		{PropWidth, "250px", 250},
		{PropOpacity, "0.5", 127},
	}
	for _, c := range cases {
		if got := parseValue(c.prop, c.val); got != c.want {
			t.Errorf("parseValue(%v, %q) = %#x, want %#x", c.prop, c.val, got, c.want)
		}
	}
}

func resolveOne(t *testing.T, sheet string, el *dom.Node, tree *dom.Tree, m *vm.Machine, e *Engine) vmem.Addr {
	t.Helper()
	r := NewResolver(e)
	r.Resolve(tree, tree.Elements())
	return r.StyleOf(el)
}

func TestCascadeSpecificityAndOrder(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	tree := dom.NewTree(m)
	e := NewEngine(m)
	el := tree.NewElement("div", "target", "card")
	tree.Append(tree.Doc, el)
	sheet := `
div { width: 10px; }
.card { width: 20px; }
.card { width: 25px; }
#target { width: 30px; }
.unrelated { width: 99px; }
`
	buf := m.Heap.Alloc(len(sheet))
	m.StaticData(buf, []byte(sheet))
	s := e.Parse(vmem.Range{Addr: buf, Size: uint32(len(sheet))}, sheet)
	style := resolveOne(t, sheet, el, tree, m, e)
	if style == 0 {
		t.Fatal("no style resolved")
	}
	if w := m.Mem.ReadU64(style+OffWidth, 4); w != 30 {
		t.Errorf("width = %d, want id rule (30) to win the cascade", w)
	}
	used := 0
	for _, r := range s.Rules {
		if r.Used {
			used++
		}
	}
	if used != 4 {
		t.Errorf("used rules = %d, want 4 (all but .unrelated)", used)
	}
	if s.UsedBytes() >= s.Bytes {
		t.Error("unused rule bytes must remain")
	}
}

func TestDefaultsAndLayerBit(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	tree := dom.NewTree(m)
	e := NewEngine(m)
	span := tree.NewElement("span", "", "")
	fixed := tree.NewElement("div", "f", "")
	tree.Append(tree.Doc, span)
	tree.Append(tree.Doc, fixed)
	sheet := `#f { position: fixed; top: 0px; }`
	buf := m.Heap.Alloc(len(sheet))
	m.StaticData(buf, []byte(sheet))
	e.Parse(vmem.Range{Addr: buf, Size: uint32(len(sheet))}, sheet)
	r := NewResolver(e)
	r.Resolve(tree, tree.Elements())

	spanStyle := r.StyleOf(span)
	if d := m.Mem.ReadU64(spanStyle+OffDisplay, 1); d != DisplayInline {
		t.Errorf("span default display = %d", d)
	}
	if fs := m.Mem.ReadU64(spanStyle+OffFontSize, 2); fs != 16 {
		t.Errorf("default font size = %d", fs)
	}
	fixedStyle := r.StyleOf(fixed)
	if hl := m.Mem.ReadU64(fixedStyle+OffHasLayer, 1); hl != 1 {
		t.Error("fixed-position element must promote to its own layer")
	}
	if hl := m.Mem.ReadU64(spanStyle+OffHasLayer, 1); hl != 0 {
		t.Error("plain span must not promote")
	}
}

func TestDescendantSelectorMatching(t *testing.T) {
	m := vm.New()
	m.Thread(0, "main")
	tree := dom.NewTree(m)
	e := NewEngine(m)
	menu := tree.NewElement("div", "", "menu")
	entry := tree.NewElement("div", "", "entry")
	stray := tree.NewElement("div", "", "entry")
	tree.Append(tree.Doc, menu)
	tree.Append(menu, entry)
	tree.Append(tree.Doc, stray)
	sheet := `.menu .entry { width: 77px; }`
	buf := m.Heap.Alloc(len(sheet))
	m.StaticData(buf, []byte(sheet))
	e.Parse(vmem.Range{Addr: buf, Size: uint32(len(sheet))}, sheet)
	r := NewResolver(e)
	r.Resolve(tree, tree.Elements())
	if w := m.Mem.ReadU64(r.StyleOf(entry)+OffWidth, 4); w != 77 {
		t.Errorf("descendant match failed: width = %d", w)
	}
	if w := m.Mem.ReadU64(r.StyleOf(stray)+OffWidth, 4); w == 77 {
		t.Error("stray .entry outside .menu must not match")
	}
}
