package html

import (
	"testing"

	"webslice/internal/browser/dom"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

func parse(t *testing.T, doc string) (*dom.Tree, *Result, *vm.Machine) {
	t.Helper()
	m := vm.New()
	m.Thread(0, "main")
	tree := dom.NewTree(m)
	p := NewParser(m)
	buf := m.Heap.Alloc(len(doc) + 1)
	m.StaticData(buf, []byte(doc))
	res := p.Parse(tree, vmem.Range{Addr: buf, Size: uint32(len(doc))}, doc)
	return tree, res, m
}

func TestParseStructure(t *testing.T) {
	tree, res, m := parse(t, `<html><head><title>T</title></head>
<body class="page">
<div id="a" class="box">Hello</div>
<p>World <span>nested</span></p>
<img src="https://x/i.png">
</body></html>`)
	if res.Bytes == 0 {
		t.Error("byte count missing")
	}
	a := tree.ByID("a")
	if a == nil || a.Class != "box" || a.TagName != "div" {
		t.Fatalf("div#a wrong: %+v", a)
	}
	if len(a.Children) != 1 || a.Children[0].Text != "Hello" {
		t.Errorf("div#a children: %+v", a.Children)
	}
	if len(res.Images) != 1 || res.Images[0].URL != "https://x/i.png" {
		t.Errorf("images: %+v", res.Images)
	}
	// The traced id hash must equal the Go-side hash.
	got := m.Mem.ReadU64(a.Addr+dom.OffIDHash, 4)
	if uint32(got) != dom.Hash("a") {
		t.Errorf("traced id hash %#x != dom.Hash %#x", got, dom.Hash("a"))
	}
	got = m.Mem.ReadU64(a.Addr+dom.OffClassHash, 4)
	if uint32(got) != dom.Hash("box") {
		t.Errorf("traced class hash mismatch")
	}
	if err := m.Tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestScriptsAndStyles(t *testing.T) {
	_, res, _ := parse(t, `<html><head>
<link rel="stylesheet" href="https://x/a.css">
<style>.inline { color: red; }</style>
<script src="https://x/a.js"></script>
<script>var inline = 1;</script>
</head><body></body></html>`)
	if len(res.Styles) != 2 {
		t.Fatalf("styles: %+v", res.Styles)
	}
	if res.Styles[0].URL != "https://x/a.css" {
		t.Errorf("external style URL: %q", res.Styles[0].URL)
	}
	if res.Styles[1].Inline == "" {
		t.Error("inline style body missing")
	}
	if len(res.Scripts) != 2 {
		t.Fatalf("scripts: %+v", res.Scripts)
	}
	if res.Scripts[0].URL != "https://x/a.js" {
		t.Errorf("external script URL: %q", res.Scripts[0].URL)
	}
	if res.Scripts[1].Inline != "var inline = 1;" {
		t.Errorf("inline script body: %q", res.Scripts[1].Inline)
	}
}

func TestTextIsTracedFromSource(t *testing.T) {
	tree, _, m := parse(t, `<html><body><p>provenance</p></body></html>`)
	var text *dom.Node
	for _, n := range tree.All {
		if n.Type == dom.TextNode && n.Text == "provenance" {
			text = n
		}
	}
	if text == nil {
		t.Fatal("text node missing")
	}
	addr := vmem.Addr(m.Mem.ReadU64(text.Addr+dom.OffText, 4))
	length := int(m.Mem.ReadU64(text.Addr+dom.OffTextLen, 4))
	if got := string(m.Mem.ReadBytes(addr, length)); got != "provenance" {
		t.Errorf("traced text = %q", got)
	}
}

func TestVoidAndNesting(t *testing.T) {
	tree, _, _ := parse(t, `<html><body>
<div id="outer"><br><input><div id="inner">x</div></div>
<div id="after">y</div>
</body></html>`)
	outer, inner, after := tree.ByID("outer"), tree.ByID("inner"), tree.ByID("after")
	if outer == nil || inner == nil || after == nil {
		t.Fatal("nodes missing")
	}
	if inner.Parent != outer {
		t.Error("inner should nest under outer")
	}
	if after.Parent == outer {
		t.Error("after should not nest under outer (close tag handling)")
	}
}

func TestAttrParsing(t *testing.T) {
	attrs := parseAttrs(` id="a b" class="c" data-x=5 disabled`)
	if attrs["id"] != "a b" || attrs["class"] != "c" || attrs["data-x"] != "5" {
		t.Errorf("attrs = %v", attrs)
	}
	if _, ok := attrs["disabled"]; !ok {
		t.Errorf("bare attribute lost: %v", attrs)
	}
}
