// Package html implements the HTML tokenizer and tree builder. Tokenization
// walks the document bytes in traced loads, and every element creation is
// guarded by traced branches on those bytes, so the slicer sees the true
// chain: network bytes → tokens → DOM structure. Attribute hashes (id,
// class) are computed with traced FNV over the source bytes, which is what
// later style matching compares against.
package html

import (
	"strings"

	"webslice/internal/browser/dom"
	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// ScriptRef describes a script discovered during parsing.
type ScriptRef struct {
	URL    string     // external scripts
	Inline string     // inline source text
	Src    vmem.Range // source bytes (inline: inside the document buffer)
	Node   *dom.Node
}

// StyleRef describes a stylesheet discovered during parsing.
type StyleRef struct {
	URL    string
	Inline string
	Src    vmem.Range
}

// ImageRef describes an image resource reference.
type ImageRef struct {
	URL  string
	Node *dom.Node
}

// Result is the output of parsing one document.
type Result struct {
	Scripts []ScriptRef
	Styles  []StyleRef
	Images  []ImageRef
	// Bytes is the document length.
	Bytes int
}

// Parser builds DOM trees.
type Parser struct {
	M *vm.Machine

	tokFn, treeFn, attrFn *vm.Fn
}

// NewParser wires a parser to the machine.
func NewParser(m *vm.Machine) *Parser {
	return &Parser{
		M:      m,
		tokFn:  m.Func("blink::HTMLTokenizer::NextToken", ""),
		treeFn: m.Func("blink::HTMLTreeBuilder::ProcessToken", ""),
		attrFn: m.Func("blink::Element::ParseAttribute", ""),
	}
}

// scanSpan reads a token's bytes in chunked traced loads, folding them into
// a rolling accumulator. Token classification branches take this accumulator
// as an operand, so recognizing a token provably consumed its bytes — when a
// token's output joins the slice, the tokenizer work that delimited it does
// too, as on a real engine.
func (p *Parser) scanSpan(src vmem.Addr, off, n int) isa.Reg {
	m := p.M
	m.At("scan")
	acc := m.Imm(1)
	for c := 0; c < n; c += 32 {
		sz := n - c
		if sz > 32 {
			sz = 32
		}
		chunk := m.Load(src+vmem.Addr(off+c), sz)
		acc = m.Op(isa.OpOr, acc, chunk)
	}
	return acc
}

// hashBytes computes FNV-1a over n source bytes with traced loads/ops,
// returning the register holding the hash. Must stay consistent with
// dom.Hash.
func (p *Parser) hashBytes(src vmem.Addr, n int) isa.Reg {
	m := p.M
	h := m.Imm(2166136261)
	m.At("fnv")
	for i := 0; i < n; i++ {
		b := m.Load(src+vmem.Addr(i), 1)
		h = m.Op(isa.OpXor, h, b)
		h = m.OpImm(isa.OpMul, h, 16777619)
		h = m.OpImm(isa.OpAnd, h, 0xFFFFFFFF)
	}
	return h
}

// Parse tokenizes the document at src (whose text is doc) and builds the
// tree under t. The caller guarantees doc matches the bytes stored at src.
func (p *Parser) Parse(t *dom.Tree, src vmem.Range, doc string) *Result {
	m := p.M
	res := &Result{Bytes: len(doc)}
	var parents []*dom.Node
	parents = append(parents, t.Doc)
	cur := func() *dom.Node { return parents[len(parents)-1] }

	m.Call(p.treeFn, func() {
		i := 0
		for i < len(doc) {
			m.At("token")
			if doc[i] != '<' {
				// Text run until the next tag.
				j := strings.IndexByte(doc[i:], '<')
				if j < 0 {
					j = len(doc) - i
				}
				text := doc[i : i+j]
				// Traced classification branch: first byte is not '<',
				// and the token's bytes have been consumed by the scan.
				acc := p.scanSpan(src.Addr, i, j)
				b := m.Load(src.Addr+vmem.Addr(i), 1)
				isTag := m.OpImm(isa.OpCmpEQ, b, uint64('<'))
				nz := m.OpImm(isa.OpCmpNE, acc, 0)
				isTag = m.Op(isa.OpAnd, isTag, nz)
				if !m.Branch(isTag) {
					m.At("text")
					if tt := strings.TrimSpace(text); tt != "" {
						n := t.NewTextFrom(vmem.Range{Addr: src.Addr + vmem.Addr(i), Size: uint32(j)}, text)
						t.Append(cur(), n)
					}
				}
				i += j
				continue
			}
			// Tag.
			end := strings.IndexByte(doc[i:], '>')
			if end < 0 {
				break
			}
			tag := doc[i+1 : i+end]
			acc := p.scanSpan(src.Addr, i, end+1)
			b := m.Load(src.Addr+vmem.Addr(i), 1)
			isTag := m.OpImm(isa.OpCmpEQ, b, uint64('<'))
			nz := m.OpImm(isa.OpCmpNE, acc, 0)
			isTag = m.Op(isa.OpAnd, isTag, nz)
			if m.Branch(isTag) {
				m.At("tag")
				p.processTag(t, src, doc, i, tag, &parents, res)
			}
			i += end + 1
			// Raw-text elements: script and style swallow until the close
			// tag without tokenizing markup.
			low := strings.ToLower(tagName(tag))
			if (low == "script" || low == "style") && !strings.HasSuffix(tag, "/") && !strings.HasPrefix(tag, "/") {
				closer := "</" + low + ">"
				j := strings.Index(doc[i:], closer)
				if j < 0 {
					j = len(doc) - i
				}
				body := doc[i : i+j]
				rng := vmem.Range{Addr: src.Addr + vmem.Addr(i), Size: uint32(j)}
				if low == "script" {
					if len(res.Scripts) > 0 && res.Scripts[len(res.Scripts)-1].Inline == "\x00pending" {
						res.Scripts[len(res.Scripts)-1].Inline = body
						res.Scripts[len(res.Scripts)-1].Src = rng
					}
				} else {
					res.Styles = append(res.Styles, StyleRef{Inline: body, Src: rng})
				}
				i += j + len(closer)
				if i > len(doc) {
					i = len(doc)
				}
				// Pop the raw element if it was pushed (inline bodies only).
				if top := parents[len(parents)-1]; len(parents) > 1 && top.TagName == low {
					parents = parents[:len(parents)-1]
				}
			}
		}
	})
	return res
}

func tagName(tag string) string {
	tag = strings.TrimPrefix(tag, "/")
	if i := strings.IndexAny(tag, " \t\n/"); i >= 0 {
		return tag[:i]
	}
	return tag
}

var voidTags = map[string]bool{"img": true, "input": true, "link": true, "br": true, "meta": true}

func (p *Parser) processTag(t *dom.Tree, src vmem.Range, doc string, tagStart int, tag string, parents *[]*dom.Node, res *Result) {
	m := p.M
	if strings.HasPrefix(tag, "/") {
		if len(*parents) > 1 {
			*parents = (*parents)[:len(*parents)-1]
		}
		return
	}
	selfClose := strings.HasSuffix(tag, "/")
	tag = strings.TrimSuffix(tag, "/")
	name := tagName(tag)
	low := strings.ToLower(name)
	attrs := parseAttrs(tag[len(name):])

	// Traced attribute hashing from the source bytes.
	var idReg, classReg isa.Reg
	if v, ok := attrs["id"]; ok && v != "" {
		off := strings.Index(doc[tagStart:], v)
		m.Call(p.attrFn, func() {
			idReg = p.hashBytes(src.Addr+vmem.Addr(tagStart+off), len(v))
		})
	}
	if v, ok := attrs["class"]; ok && v != "" {
		off := strings.Index(doc[tagStart:], v)
		m.Call(p.attrFn, func() {
			classReg = p.hashBytes(src.Addr+vmem.Addr(tagStart+off), len(v))
		})
	}

	cur := (*parents)[len(*parents)-1]
	switch low {
	case "script":
		n := t.NewElement("script", attrs["id"], "")
		t.Append(cur, n)
		if u, ok := attrs["src"]; ok {
			res.Scripts = append(res.Scripts, ScriptRef{URL: u, Node: n})
		} else if !selfClose {
			res.Scripts = append(res.Scripts, ScriptRef{Inline: "\x00pending", Node: n})
			*parents = append(*parents, n)
		}
	case "style":
		n := t.NewElement("style", "", "")
		t.Append(cur, n)
		if !selfClose {
			*parents = append(*parents, n)
		}
	case "link":
		if strings.Contains(attrs["rel"], "stylesheet") {
			res.Styles = append(res.Styles, StyleRef{URL: attrs["href"]})
		}
	case "img":
		n := p.newElement(t, low, attrs, idReg, classReg)
		t.Append(cur, n)
		res.Images = append(res.Images, ImageRef{URL: attrs["src"], Node: n})
	default:
		n := p.newElement(t, low, attrs, idReg, classReg)
		t.Append(cur, n)
		if !selfClose && !voidTags[low] {
			*parents = append(*parents, n)
		}
	}
}

// newElement creates an element whose id/class hash fields are stored from
// the traced hash registers when available.
func (p *Parser) newElement(t *dom.Tree, tagName string, attrs map[string]string, idReg, classReg isa.Reg) *dom.Node {
	m := p.M
	n := t.NewElement(tagName, attrs["id"], attrs["class"])
	if idReg != isa.RegNone {
		m.StoreU32(n.Addr+dom.OffIDHash, idReg)
	}
	if classReg != isa.RegNone {
		m.StoreU32(n.Addr+dom.OffClassHash, classReg)
	}
	return n
}

func parseAttrs(s string) map[string]string {
	attrs := map[string]string{}
	for {
		s = strings.TrimLeft(s, " \t\n")
		if s == "" {
			return attrs
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			sp := strings.IndexAny(s, " \t\n")
			if sp < 0 {
				if k := strings.TrimSpace(s); k != "" {
					attrs[k] = ""
				}
				return attrs
			}
			attrs[strings.TrimSpace(s[:sp])] = ""
			s = s[sp+1:]
			continue
		}
		key := strings.TrimSpace(s[:eq])
		rest := s[eq+1:]
		if len(rest) > 0 && rest[0] == '"' {
			end := strings.IndexByte(rest[1:], '"')
			if end < 0 {
				attrs[key] = rest[1:]
				return attrs
			}
			attrs[key] = rest[1 : 1+end]
			s = rest[end+2:]
		} else {
			sp := strings.IndexAny(rest, " \t\n")
			if sp < 0 {
				attrs[key] = rest
				return attrs
			}
			attrs[key] = rest[:sp]
			s = rest[sp+1:]
		}
	}
}
