// Package browser assembles the full simulated rendering engine — network,
// HTML, CSS, JavaScript, layout, paint, compositing, raster, scheduling,
// IPC, and debug bookkeeping — and drives complete page-load and browsing
// sessions on the traced machine, producing the instruction traces the
// profiler analyzes. The pipeline follows the paper's Figure 1: DOM ←
// HTML parse, CSSOM ← CSS parse, JavaScript execution mutating both, then
// render tree → layout → paint → compositing.
package browser

import (
	"fmt"

	"webslice/internal/browser/compositor"
	"webslice/internal/browser/css"
	"webslice/internal/browser/debuglog"
	"webslice/internal/browser/dom"
	"webslice/internal/browser/html"
	"webslice/internal/browser/ipc"
	"webslice/internal/browser/js"
	"webslice/internal/browser/layout"
	"webslice/internal/browser/net"
	"webslice/internal/browser/ns"
	"webslice/internal/browser/paint"
	"webslice/internal/browser/raster"
	"webslice/internal/browser/sched"
	"webslice/internal/content"
	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// Thread IDs, matching Chromium's renderer thread roles.
const (
	MainThread       uint8 = 0
	CompositorThread uint8 = 1
	IOThread         uint8 = 2
	RasterThreadBase uint8 = 3
)

// Profile is the calibration knob set for a workload (see internal/sites).
type Profile struct {
	// RasterWorkers is how many CompositorTileWorker threads to launch
	// (the paper saw 3 for Amazon desktop, 2 elsewhere).
	RasterWorkers int
	// DebugVerbosity scales debug bookkeeping per pipeline event.
	DebugVerbosity int
	// IPCPayload is the byte size of periodic renderer→browser messages.
	IPCPayload int
	// FrameOverhead scales per-frame compositor management work.
	FrameOverhead int
	// PrepaintFactor is how many extra viewport-heights are rastered
	// speculatively.
	PrepaintFactor int
	// IdleFrames is how many 60 Hz BeginFrame ticks run after load
	// (animation/management time with no content change).
	IdleFrames int
	// PoolWorkers is how many ThreadPoolForegroundWorker threads run image
	// decodes and other background work.
	PoolWorkers int
	// NetWastePasses scales the IO thread's cache/checksum bookkeeping.
	NetWastePasses int
	// DecodeWastePasses scales post-decode color-management passes.
	DecodeWastePasses int
	// GCSweeps is how many heap-sweep passes V8's GC runs after load.
	GCSweeps int
}

// DefaultProfile returns reasonable middle-ground knobs.
func DefaultProfile() Profile {
	return Profile{
		RasterWorkers:     2,
		DebugVerbosity:    2,
		IPCPayload:        256,
		FrameOverhead:     1,
		PrepaintFactor:    2,
		IdleFrames:        30,
		PoolWorkers:       1,
		NetWastePasses:    1,
		DecodeWastePasses: 1,
		GCSweeps:          1,
	}
}

// Browser is one simulated tab process.
type Browser struct {
	M *vm.Machine
	S *sched.Scheduler

	Site    *content.Site
	Profile Profile

	Loader *net.Loader
	IPC    *ipc.Channel
	Debug  *debuglog.Log
	DOM    *dom.Tree
	Parser *html.Parser
	CSS    *css.Engine
	Styles *css.Resolver
	Layout *layout.Engine
	Paint  *paint.Painter
	Comp   *compositor.Compositor
	Raster *raster.Rasterizer
	JS     *js.Engine

	// LoadedIndex is the trace index at which the page finished loading
	// (first full frame presented) — the cut point for the paper's partial
	// Bing experiment and the load/browse boundary of Table I.
	LoadedIndex int
	// LoadedCycle is the virtual time of that moment.
	LoadedCycle uint64

	damaged    map[*dom.Node]bool
	rootDamage bool
	inline     map[*dom.Node][]inlineProp
	// inlineOrder fixes the iteration order of b.inline: re-applying the
	// overrides emits trace records, and map iteration order would make
	// otherwise-identical renders produce different traces.
	inlineOrder []*dom.Node

	htmlRes     *html.Result
	nextRaster  int
	pendingCode int
	pendingImgs int
	scriptQueue []*pendingScript
	scriptNext  int
	firstPaint  bool
	loaded      bool
	loadDone    func()
	poolThreads []uint8
	nextPool    int

	hitTestFn, dispatchFn, updateFn, gcFn, brokenImgFn *vm.Fn

	// Errors collects non-fatal pipeline errors (JS failures etc.).
	Errors []error
	// Degraded lists resources whose fetch ultimately failed and around
	// which the engine degraded gracefully (stylesheet skipped, script
	// skipped, image replaced by a placeholder box).
	Degraded []string
}

// New builds a browser for a site. The traced machine, threads, and all
// engine components are created fresh.
func New(site *content.Site, profile Profile) *Browser {
	m := vm.New()
	m.Thread(MainThread, "CrRendererMain")
	m.Thread(CompositorThread, "Compositor")
	m.Thread(IOThread, "Chrome_ChildIOThread")
	var rasterThreads []uint8
	for i := 0; i < profile.RasterWorkers; i++ {
		tid := RasterThreadBase + uint8(i)
		m.Thread(tid, fmt.Sprintf("CompositorTileWorker%d", i+1))
		rasterThreads = append(rasterThreads, tid)
	}
	var poolThreads []uint8
	for i := 0; i < profile.PoolWorkers; i++ {
		tid := RasterThreadBase + uint8(profile.RasterWorkers) + uint8(i)
		m.Thread(tid, fmt.Sprintf("ThreadPoolForegroundWorker%d", i+1))
		poolThreads = append(poolThreads, tid)
	}
	m.Switch(MainThread)

	s := sched.New(m)
	b := &Browser{
		M:           m,
		S:           s,
		Site:        site,
		Profile:     profile,
		IPC:         ipc.NewChannel(m),
		Debug:       debuglog.New(m, profile.DebugVerbosity),
		DOM:         dom.NewTree(m),
		Parser:      html.NewParser(m),
		CSS:         css.NewEngine(m),
		JS:          js.NewEngine(m),
		Raster:      raster.New(m),
		damaged:     map[*dom.Node]bool{},
		inline:      map[*dom.Node][]inlineProp{},
		hitTestFn:   m.Func("blink::EventHandler::HitTestResultAtLocation", ""),
		dispatchFn:  m.Func("blink::EventDispatcher::Dispatch", ""),
		updateFn:    m.Func("blink::LocalFrameView::UpdateLifecyclePhases", ns.Layout),
		gcFn:        m.Func("v8::internal::Heap::CollectGarbage", ns.V8),
		brokenImgFn: m.Func("blink::ImageResourceContent::NotifyDecodeError", ns.NetError),
		poolThreads: poolThreads,
	}
	b.Loader = net.NewLoader(m, s, site, IOThread)
	b.Loader.WastePasses = max(profile.NetWastePasses, 0)
	b.Comp = compositor.New(m, s, CompositorThread, rasterThreads, site.ViewportW, site.ViewportH)
	b.Comp.PrepaintFactor = profile.PrepaintFactor
	b.Comp.FrameOverhead = profile.FrameOverhead
	b.Comp.Raster = b.Raster.RasterTile
	b.Raster.WastePasses = profile.DecodeWastePasses
	s.OnDispatch = func() {
		b.Debug.Histogram(uint64(s.Dispatched))
	}
	b.registerNatives()
	return b
}

// Load navigates to the site URL and runs the scheduler until the first
// frame is presented and all load-time work has drained. onLoaded (optional)
// fires right after the first frame.
func (b *Browser) Load(onLoaded func()) {
	b.loadDone = onLoaded
	m := b.M
	m.Switch(MainThread)
	b.IPC.Send("FrameHostMsg_DidStartLoading", 64)
	b.Debug.TraceEvent(0x10AD)
	// 60 Hz BeginFrame ticks run from navigation on; most of their cost
	// materializes once the first layer tree is committed.
	b.scheduleIdleFrames()
	b.Loader.Fetch(b.Site.URL, func(resp net.Response) {
		b.onHTML(resp)
	})
	b.S.Run()
}

// onHTML parses the main document and kicks off subresource fetches.
func (b *Browser) onHTML(resp net.Response) {
	doc, _ := b.Site.Get(b.Site.URL)
	if doc == nil || !resp.OK() || resp.Body.Size == 0 {
		// The main document is the one resource the engine cannot degrade
		// around: without it there is nothing to render.
		b.Errors = append(b.Errors, fmt.Errorf("browser: no document for %s (status %d)", b.Site.URL, resp.Status))
		return
	}
	body := resp.Body
	b.Debug.Histogram(uint64(body.Size))
	b.htmlRes = b.Parser.Parse(b.DOM, body, string(doc.Body))
	b.IPC.Send("FrameHostMsg_DidFinishDocumentLoad", b.Profile.IPCPayload)

	// Inline styles parse immediately; external ones fetch.
	for _, st := range b.htmlRes.Styles {
		if st.Inline != "" {
			b.CSS.Parse(st.Src, st.Inline)
		} else if st.URL != "" {
			b.pendingCode++
			url := st.URL
			b.Loader.Fetch(url, func(resp net.Response) {
				if r, ok := b.Site.Get(url); ok && resp.OK() && resp.Body.Size > 0 {
					b.CSS.Parse(resp.Body, string(r.Body))
				} else if !resp.OK() {
					// Render without the stylesheet rather than aborting
					// the load.
					b.degrade("stylesheet", url, resp)
				}
				b.backgroundCleanup(resp.Body)
				b.codeDone()
			})
		}
	}
	// Scripts: fetch external ones concurrently but compile+run strictly in
	// document order (parser-blocking execution order). A script delayed by
	// retries must not let a later script that references its functions
	// compile first, so arrivals queue until every earlier script settled.
	for i := range b.htmlRes.Scripts {
		sc := &b.htmlRes.Scripts[i]
		if sc.Inline != "" && sc.Inline != "\x00pending" {
			b.compileAndRun("inline", sc.Src, sc.Inline)
		} else if sc.URL != "" {
			b.pendingCode++
			ps := &pendingScript{url: sc.URL}
			b.scriptQueue = append(b.scriptQueue, ps)
			url := sc.URL
			b.Loader.Fetch(url, func(resp net.Response) {
				ps.settled = true
				if r, ok := b.Site.Get(url); ok && resp.OK() && resp.Body.Size > 0 {
					ps.ok, ps.body, ps.src = true, resp.Body, string(r.Body)
				} else if !resp.OK() {
					// Skip the failed script without aborting the load.
					b.degrade("script", url, resp)
				}
				b.backgroundCleanup(resp.Body)
				b.pumpScripts()
			})
		}
	}
	// Images: fetch, then decode on a raster worker.
	for i := range b.htmlRes.Images {
		im := b.htmlRes.Images[i]
		if im.URL == "" || im.Node == nil {
			continue
		}
		res, ok := b.Site.Get(im.URL)
		if !ok {
			continue
		}
		b.pendingImgs++
		node := im.Node
		url := im.URL
		b.Loader.Fetch(url, func(resp net.Response) {
			if !resp.OK() {
				// Paint a placeholder box where the image would have been.
				b.degrade("image", url, resp)
				b.markImageBroken(node)
				b.rootDamage = true
				b.imageDone()
				return
			}
			if resp.Body.Size == 0 {
				b.imageDone()
				return
			}
			rng := resp.Body
			b.backgroundCleanup(rng)
			worker := b.rasterThread()
			b.S.Post(worker, ns.Skia+"!ImageDecodeTask", func() {
				w, h := res.W, res.H
				if w == 0 {
					w, h = 64, 64
				}
				dec := b.Raster.Decode(rng, w, h)
				m := b.M
				m.StoreU32(node.Addr+dom.OffImage, m.Imm(uint64(dec.Addr)))
				m.StoreU32(node.Addr+dom.OffImageLen, m.Imm(uint64(dec.Size)))
				m.StoreU32(node.Addr+dom.OffImageState, m.Imm(dom.ImageReady))
				b.S.Post(MainThread, ns.Net+"!ImageResourceContent::UpdateImage", func() {
					b.rootDamage = true
					b.imageDone()
				})
			})
		})
	}
	if b.pendingCode == 0 {
		b.codeDone()
	}
}

// pendingScript is one external script awaiting in-order execution.
type pendingScript struct {
	url     string
	settled bool
	ok      bool
	body    vmem.Range
	src     string
}

// pumpScripts executes every settled script at the head of the document-order
// queue. Scripts fetch concurrently, but one delayed by retries holds back
// all later scripts until it settles (succeeds or exhausts its retry budget),
// so cross-script references still resolve under network faults.
func (b *Browser) pumpScripts() {
	for b.scriptNext < len(b.scriptQueue) && b.scriptQueue[b.scriptNext].settled {
		ps := b.scriptQueue[b.scriptNext]
		b.scriptNext++
		if ps.ok {
			b.compileAndRun(ps.url, ps.body, ps.src)
		}
		b.codeDone()
	}
}

// codeDone fires when a CSS/JS resource settles; the first paint happens as
// soon as all code is in (images stream in afterwards, as real pages do).
func (b *Browser) codeDone() {
	if b.pendingCode > 0 {
		b.pendingCode--
	}
	b.Debug.Histogram(uint64(b.pendingCode))
	if b.pendingCode > 0 {
		return
	}
	if b.pendingImgs == 0 {
		b.renderPipeline(true)
	} else if !b.firstPaint {
		b.firstPaint = true
		b.renderPipeline(false)
	}
}

// imageDone fires per image; the page is "completely loaded" (the paper's
// load boundary) when the last image has been decoded and re-rastered.
func (b *Browser) imageDone() {
	b.pendingImgs--
	b.Debug.Histogram(uint64(b.pendingImgs))
	if b.pendingImgs == 0 && b.pendingCode == 0 {
		b.renderPipeline(true)
	}
}

// degrade records a resource failure the engine rendered around: the note
// lands in Degraded (not Errors — the load still completes) and is surfaced
// through the traced debug log, as Chromium logs failed fetches to the
// console.
func (b *Browser) degrade(kind, url string, resp net.Response) {
	b.Degraded = append(b.Degraded,
		fmt.Sprintf("%s %s failed (status %d after %d attempts); rendered without it", kind, url, resp.Status, resp.Attempts))
	b.Debug.TraceEvent(0xDE6D)
	b.Debug.Histogram(uint64(resp.Attempts))
}

// markImageBroken flags an img node whose fetch failed so paint draws the
// placeholder box (traced store: the placeholder's provenance includes the
// error path that caused it).
func (b *Browser) markImageBroken(n *dom.Node) {
	m := b.M
	m.Call(b.brokenImgFn, func() {
		m.At("broken")
		m.StoreU32(n.Addr+dom.OffImageState, m.Imm(dom.ImageBroken))
	})
}

// compileAndRun eagerly compiles a script (traced against its source bytes)
// and executes its top level on the main thread.
func (b *Browser) compileAndRun(name string, src vmem.Range, source string) {
	top, err := b.JS.Compile(name, src, source)
	if err != nil {
		b.Errors = append(b.Errors, err)
		return
	}
	if _, err := b.JS.CallByIndex(top, nil); err != nil {
		b.Errors = append(b.Errors, err)
	}
	b.Debug.TraceEvent(0x15C7)
}

// renderPipeline runs style → layout → paint on the main thread and commits
// to the compositor. When firstLoad is set, the presented frame marks the
// page as loaded.
func (b *Browser) renderPipeline(firstLoad bool) {
	m := b.M
	m.Call(b.updateFn, func() {
		if b.Styles == nil {
			b.Styles = css.NewResolver(b.CSS)
		}
		b.Styles.Resolve(b.DOM, b.DOM.Elements())
		b.applyInlineStyles()
		if b.Layout == nil {
			b.Layout = layout.NewEngine(m, b.Styles)
		}
		b.Layout.Layout(b.DOM, b.Site.ViewportW)
		if b.Paint == nil {
			b.Paint = paint.NewPainter(m, b.Styles, b.Layout)
		}
	})
	layers := b.Paint.Paint(b.DOM, b.Site.ViewportW)
	b.Debug.Histogram(uint64(len(layers)))
	b.IPC.Send("ViewHostMsg_UpdateState", b.Profile.IPCPayload)

	damagedSet := b.damaged
	rootDmg := b.rootDamage || firstLoad
	// A damaged node that does not own a compositor layer invalidates the
	// layer it paints into — the root, for our layer assignment.
	layerOwners := map[*dom.Node]bool{}
	for _, l := range layers {
		if l.Node != nil {
			layerOwners[l.Node] = true
		}
	}
	for n := range damagedSet {
		if !layerOwners[n] {
			rootDmg = true
		}
	}
	b.damaged = map[*dom.Node]bool{}
	b.rootDamage = false

	b.S.Post(CompositorThread, ns.CC+"!LayerTreeHost::Commit", func() {
		b.Comp.CommitDiff(layers, func(l *paint.Layer) bool {
			if l.Node == nil {
				return rootDmg
			}
			return rootDmg || damagedSet[l.Node] || l.Meta == 0
		}, func() {
			b.Comp.Draw()
			if firstLoad && !b.loaded {
				b.loaded = true
				b.LoadedIndex = len(m.Tr.Recs)
				b.LoadedCycle = m.Cycle()
				b.IPC.Send("FrameHostMsg_DidStopLoading", 64)
				b.scheduleGC()
				if b.loadDone != nil {
					b.loadDone()
				}
			}
		})
	})
}

// scheduleIdleFrames ticks the compositor at 60 Hz for the profile's idle
// window — pure management work with no content change.
func (b *Browser) scheduleIdleFrames() {
	for i := 1; i <= b.Profile.IdleFrames; i++ {
		b.S.PostDelayed(CompositorThread, ns.CC+"!Scheduler::BeginFrame",
			uint64(i)*sched.FrameIntervalCycles, func() {
				b.Comp.BeginFrame()
				b.IPC.Send("cc.mojom.DidNotProduceFrame", b.Profile.IPCPayload)
			})
	}
}

// Browse runs the site's interaction session after load.
func (b *Browser) Browse() {
	at := b.M.Cycle()
	for _, a := range b.Site.Session {
		at += uint64(a.ThinkMs) * sched.CyclesPerMs
		b.scheduleAction(a, at)
	}
	// Browse-time resource downloads (Table I notes extra bytes arrive
	// while browsing Bing and Maps).
	for _, r := range b.Site.BrowseResources {
		res := r
		b.S.PostAt(MainThread, ns.Net+"!DeferredFetch", at/2, func() {
			b.Loader.FetchResource(res, func(resp net.Response) {
				if !resp.OK() {
					b.degrade("browse resource", res.URL, resp)
					return
				}
				if resp.Body.Size == 0 {
					return
				}
				switch res.Type {
				case content.JS:
					b.compileAndRun(res.URL, resp.Body, string(res.Body))
					if b.dirty() {
						b.renderPipeline(false)
					}
				case content.CSS:
					b.CSS.Parse(resp.Body, string(res.Body))
				}
			})
		})
	}
	b.S.Run()
}

func (b *Browser) dirty() bool { return len(b.damaged) > 0 || b.rootDamage }

func (b *Browser) scheduleAction(a content.Action, at uint64) {
	switch a.Kind {
	case content.Scroll:
		dy := a.DeltaY
		b.S.PostAt(CompositorThread, ns.CC+"!InputHandler::ScrollBy", at, func() {
			b.Comp.HandleScroll(dy, nil)
			b.Debug.Histogram(uint64(abs(dy)))
		})
	case content.Click:
		id := a.TargetID
		b.S.PostAt(CompositorThread, ns.CC+"!InputHandler::MouseDown", at, func() {
			// Non-scroll input: the compositor forwards to the main thread.
			b.IPC.Send("InputHostMsg_HandleInputEvent_ACK", 32)
			b.S.Post(MainThread, "blink!Input::DispatchMouseEvent", func() {
				b.dispatchClick(id)
			})
		})
	case content.TypeText:
		text := a.Text
		for i, r := range text {
			ch := r
			b.S.PostAt(CompositorThread, ns.CC+"!InputHandler::KeyDown",
				at+uint64(i*120)*sched.CyclesPerMs, func() {
					b.S.Post(MainThread, "blink!Input::DispatchKeyEvent", func() {
						b.dispatchKey(ch)
					})
				})
		}
	case content.Wait:
		// Pure think time: nothing scheduled; the gap appears as idle.
	}
}

// dispatchClick hit-tests the click target (traced box compares), then runs
// the element's registered JS handler and re-renders any damage.
func (b *Browser) dispatchClick(id string) {
	m := b.M
	target := b.DOM.ByID(id)
	if target == nil {
		return
	}
	m.Call(b.hitTestFn, func() {
		// Traced hit test: walk boxes comparing the click point.
		box := b.Layout.BoxOf(target)
		if box == nil {
			return
		}
		checked := 0
		for _, n := range b.DOM.Elements() {
			bx := b.Layout.BoxOf(n)
			if bx == nil {
				continue
			}
			checked++
			if checked > 64 {
				break
			}
			m.At("hittest")
			x := m.LoadU32(bx.Addr + 0)
			w := m.LoadU32(bx.Addr + 8)
			hit := m.Op(isa.OpCmpLE, x, m.Imm(uint64(box.X)))
			wide := m.Op(isa.OpCmpGE, w, m.Imm(1))
			both := m.Op(isa.OpAnd, hit, wide)
			if m.Branch(both) && n == target {
				break
			}
		}
	})
	m.Call(b.dispatchFn, func() {
		h := m.LoadU32(target.Addr + dom.OffHandler)
		has := m.OpImm(isa.OpCmpGT, h, 0)
		if m.Branch(has) {
			m.At("handler")
			idx := int(m.Val(h)) - 1
			elem := m.Imm(js.MakeValue(js.TagElem, uint64(target.Addr)))
			if _, err := b.JS.CallByIndex(idx, []isa.Reg{elem}); err != nil {
				b.Errors = append(b.Errors, err)
			}
		}
	})
	b.IPC.Send("FrameHostMsg_UpdateUserGestureCarryover", 32)
	if b.dirty() {
		b.renderPipeline(false)
	}
}

// dispatchKey routes a keystroke to the focused input (the site's element
// with id "q" or "search"): appends the character to its text (traced) and
// re-renders the damaged input.
func (b *Browser) dispatchKey(ch rune) {
	m := b.M
	target := b.DOM.ByID("q")
	if target == nil {
		target = b.DOM.ByID("search")
	}
	if target == nil {
		return
	}
	// Key handler JS, if registered.
	m.Call(b.dispatchFn, func() {
		h := m.LoadU32(target.Addr + dom.OffHandler)
		has := m.OpImm(isa.OpCmpGT, h, 0)
		if m.Branch(has) {
			idx := int(m.Val(h)) - 1
			elem := m.Imm(js.MakeValue(js.TagElem, uint64(target.Addr)))
			key := m.Imm(js.MakeValue(js.TagInt, uint64(ch)))
			if _, err := b.JS.CallByIndex(idx, []isa.Reg{elem, key}); err != nil {
				b.Errors = append(b.Errors, err)
			}
		}
	})
	// Update the input's text storage (traced append).
	newText := target.Text + string(ch)
	strAddr := b.JS.InternString(newText)
	b.DOM.SetTextRaw(target, strAddr+4, len(newText), newText)
	b.damaged[target] = true
	b.renderPipeline(false)
}

// RunSession performs a full load-and-browse session and returns the trace.
func (b *Browser) RunSession() {
	b.Load(nil)
	if len(b.Site.Session) > 0 {
		b.Browse()
	}
}

// poolThread picks the next ThreadPoolForegroundWorker round-robin (falls
// back to the first raster worker when the pool is empty).
func (b *Browser) poolThread() uint8 {
	if len(b.poolThreads) == 0 {
		return RasterThreadBase
	}
	t := b.poolThreads[b.nextPool%len(b.poolThreads)]
	b.nextPool++
	return t
}

// rasterThread picks the next CompositorTileWorker round-robin; image decode
// tasks run there, as in Chromium.
func (b *Browser) rasterThread() uint8 {
	t := b.Comp.RasterThreads[b.nextRaster%len(b.Comp.RasterThreads)]
	b.nextRaster++
	return t
}

// backgroundCleanup posts ThreadPool work for a delivered resource: cache
// compaction and metadata scans whose output nothing user-visible reads.
func (b *Browser) backgroundCleanup(rng vmem.Range) {
	if rng.Size == 0 {
		return
	}
	m := b.M
	b.S.Post(b.poolThread(), "base/threading!ThreadPool::CacheCompact", func() {
		sum := m.Imm(0)
		m.At("compact")
		n := int(rng.Size)
		for off := 0; off < n; off += 64 {
			c := min(64, n-off)
			v := m.Load(rng.Addr+vmem.Addr(off), c)
			sum = m.Op(isa.OpXor, sum, v)
		}
		m.StoreU64(m.IOb.Alloc(8), sum)
		b.Debug.Histogram(uint64(rng.Size))
	})
}

// scheduleGC posts V8 garbage-collection sweeps on the main thread: traced
// scans over the allocated heap with mark-bit bookkeeping. GC work rarely
// influences pixels, contributing to the paper's JavaScript waste category.
func (b *Browser) scheduleGC() {
	m := b.M
	used := b.M.Heap.Used()
	if used == 0 || b.Profile.GCSweeps <= 0 {
		return
	}
	for g := 0; g < b.Profile.GCSweeps; g++ {
		b.S.PostDelayed(MainThread, ns.V8+"!GCTask", uint64(g+1)*120*sched.CyclesPerMs, func() {
			m.Call(b.gcFn, func() {
				markBits := m.IOb.Alloc(used/512 + 8)
				m.At("sweep")
				for off := 0; off < used; off += 512 {
					v := m.Load(vmem.HeapBase+vmem.Addr(off), 64)
					live := m.OpImm(isa.OpCmpNE, v, 0)
					m.Store(markBits+vmem.Addr(off/512), 1, live)
				}
			})
		})
	}
}

// inlineProp is one JS inline-style override: the traced cell holding the
// value plus the computed-style slot it targets.
type inlineProp struct {
	prop string
	off  vmem.Addr
	size int
	cell vmem.Addr
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
