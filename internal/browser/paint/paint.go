// Package paint generates per-layer display lists — the paint stage of the
// pipeline in the paper's Figure 1 (namespace skia, the paper's Graphics
// category). Each display item is a traced record derived from layout boxes
// and computed styles; rasterizer threads later consume these records, so
// paint work is in the slice exactly when its items reach visible pixels.
package paint

import (
	"webslice/internal/browser/css"
	"webslice/internal/browser/dom"
	"webslice/internal/browser/layout"
	"webslice/internal/browser/ns"
	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// ItemSize is the display-item record size.
const ItemSize = 32

// Item kinds.
const (
	KindRect   = 1
	KindText   = 2
	KindImage  = 3
	KindBorder = 4
)

// Item field offsets.
const (
	OffKind  = 0  // u8
	OffX     = 4  // u32
	OffY     = 8  // u32
	OffW     = 12 // u32
	OffH     = 16 // u32
	OffColor = 20 // u32
	OffAux   = 24 // u32 (text/image data addr)
	OffAux2  = 28 // u32 (data length)
)

// Item is the Go mirror of a display item.
type Item struct {
	Addr       vmem.Addr
	Kind       uint8
	X, Y, W, H int
}

// Layer is one compositing layer's display list plus geometry.
type Layer struct {
	ID     int
	Z      int
	X, Y   int
	W, H   int
	Opaque bool
	Fixed  bool // fixed-position layers do not scroll
	Items  []*Item
	// Meta is the traced layer-metadata record written by the compositor
	// (origin, transform); rasterizers read it through traced loads.
	Meta vmem.Addr
	// Node is the owning element (nil for the root document layer).
	Node *dom.Node
}

// Painter builds display lists.
type Painter struct {
	M *vm.Machine
	R *css.Resolver
	L *layout.Engine

	paintFn, recFn *vm.Fn

	// Layers is the output, in paint order (root first).
	Layers []*Layer
}

// NewPainter wires a painter to the style and layout engines.
func NewPainter(m *vm.Machine, r *css.Resolver, l *layout.Engine) *Painter {
	return &Painter{
		M:       m,
		R:       r,
		L:       l,
		paintFn: m.Func("skia::PaintController::Paint", ns.Skia),
		recFn:   m.Func("skia::PaintOpBuffer::Record", ns.Skia),
	}
}

// Paint walks the DOM and produces the layer list. Elements whose computed
// style promoted them (HasLayer) start their own layer; everything else
// paints into the nearest ancestor layer.
func (p *Painter) Paint(t *dom.Tree, viewportW int) []*Layer {
	m := p.M
	p.Layers = nil
	root := &Layer{ID: 0, Z: 0, W: viewportW, H: p.L.DocHeight, Opaque: true}
	p.Layers = append(p.Layers, root)
	m.Call(p.paintFn, func() {
		p.paintNode(t.Doc, root)
	})
	return p.Layers
}

func (p *Painter) paintNode(n *dom.Node, layer *Layer) {
	m := p.M
	style := p.R.StyleOf(n)
	box := p.L.BoxOf(n)
	if box == nil {
		return // display:none or not laid out
	}
	cur := layer
	if n.Type == dom.ElementNode && style != 0 {
		m.At("layercheck")
		hasLayer := m.Load(style+css.OffHasLayer, 1)
		promoted := m.OpImm(isa.OpCmpNE, hasLayer, 0)
		if m.Branch(promoted) {
			m.At("promote")
			z := m.Load(style+css.OffZIndex, 2)
			pos := m.Load(style+css.OffPosition, 1)
			cur = &Layer{
				ID:    len(p.Layers),
				Z:     int(m.Val(z)) - 100,
				X:     box.X,
				Y:     box.Y,
				W:     maxInt(box.W, 1),
				H:     maxInt(box.H, 1),
				Fixed: m.Val(pos) == 3,
				Node:  n,
			}
			p.Layers = append(p.Layers, cur)
		}
	}
	if n.Type == dom.ElementNode && style != 0 {
		p.paintElement(n, style, box, cur)
	}
	for _, c := range n.Children {
		p.paintNode(c, cur)
	}
}

// paintElement emits the element's own display items: background, border,
// image, and text runs for its text children.
func (p *Painter) paintElement(n *dom.Node, style vmem.Addr, box *layout.Box, layer *Layer) {
	m := p.M
	m.Call(p.recFn, func() {
		// Background rect when the background is not transparent.
		m.At("bg")
		bg := m.LoadU32(style + css.OffBg)
		hasBG := m.OpImm(isa.OpCmpNE, bg, 0)
		if m.Branch(hasBG) {
			m.At("bgrect")
			p.emitItem(layer, KindRect, box, bg, m.Imm(0), m.Imm(0))
			if box.X <= layer.X && box.Y <= layer.Y && box.W >= layer.W && box.H >= layer.H {
				alpha := m.Val(bg) >> 24
				if alpha == 0xFF {
					layer.Opaque = true
				}
			}
		}
		// Border.
		m.At("border")
		bw := m.Load(style+css.OffBorderW, 2)
		hasB := m.OpImm(isa.OpCmpGT, bw, 0)
		if m.Branch(hasB) {
			m.At("borderrect")
			col := m.LoadU32(style + css.OffColor)
			p.emitItem(layer, KindBorder, box, col, m.Imm(0), m.Imm(0))
		}
		// Image content — or a placeholder box when the fetch failed and the
		// engine degraded (broken-image rendering, like Chromium's grey box
		// with a border).
		if n.Tag == dom.TagImg {
			m.At("img")
			img := m.LoadU32(n.Addr + dom.OffImage)
			has := m.OpImm(isa.OpCmpNE, img, 0)
			if m.Branch(has) {
				m.At("imgitem")
				ln := m.LoadU32(n.Addr + dom.OffImageLen)
				p.emitItem(layer, KindImage, box, m.Imm(0xFF888888), img, ln)
			} else {
				m.At("imgstate")
				st := m.LoadU32(n.Addr + dom.OffImageState)
				broken := m.OpImm(isa.OpCmpEQ, st, dom.ImageBroken)
				if m.Branch(broken) {
					m.At("brokenbox")
					p.emitItem(layer, KindRect, box, m.Imm(0xFFEEEEEE), m.Imm(0), m.Imm(0))
					p.emitItem(layer, KindBorder, box, m.Imm(0xFF999999), m.Imm(0), m.Imm(0))
				}
			}
		}
		// Text runs of direct text children.
		for _, c := range n.Children {
			if c.Type != dom.TextNode {
				continue
			}
			tb := p.L.BoxOf(c)
			if tb == nil {
				continue
			}
			m.At("textrun")
			ta := m.LoadU32(c.Addr + dom.OffText)
			tl := m.LoadU32(c.Addr + dom.OffTextLen)
			nonEmpty := m.OpImm(isa.OpCmpGT, tl, 0)
			if m.Branch(nonEmpty) {
				m.At("textitem")
				col := m.LoadU32(style + css.OffColor)
				p.emitItem(layer, KindText, tb, col, ta, tl)
			}
		}
	})
}

// emitItem writes one display-item record with traced stores: geometry read
// from the layout box, color/aux taken as registers so CSSOM and DOM
// provenance carries into the item.
func (p *Painter) emitItem(layer *Layer, kind uint8, box *layout.Box, color, aux, auxLen isa.Reg) {
	m := p.M
	it := &Item{Addr: m.Heap.Alloc(ItemSize), Kind: kind, X: box.X, Y: box.Y, W: box.W, H: box.H}
	m.At("item")
	m.Store(it.Addr+OffKind, 1, m.Imm(uint64(kind)))
	x := m.LoadU32(box.Addr + layout.OffX)
	y := m.LoadU32(box.Addr + layout.OffY)
	w := m.LoadU32(box.Addr + layout.OffW)
	h := m.LoadU32(box.Addr + layout.OffH)
	m.StoreU32(it.Addr+OffX, x)
	m.StoreU32(it.Addr+OffY, y)
	m.StoreU32(it.Addr+OffW, w)
	m.StoreU32(it.Addr+OffH, h)
	m.StoreU32(it.Addr+OffColor, color)
	m.StoreU32(it.Addr+OffAux, aux)
	m.StoreU32(it.Addr+OffAux2, auxLen)
	layer.Items = append(layer.Items, it)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
