// Package compositor implements the compositor thread: layer tree commits,
// 256×256 tiling with per-layer backing stores, occlusion and priority
// computation, raster scheduling onto worker threads, and frame draws that
// hand visible tiles to the display. It reproduces the design pitfall the
// paper calls out: every layer gets a backing store and is rastered whether
// or not it will ever be seen, so occluded and offscreen backing stores are
// pure waste, and most per-frame compositor management never influences a
// pixel — which is why the paper measures the compositor thread at only
// ~34-35% slice across all sites.
package compositor

import (
	"webslice/internal/browser/ns"
	"webslice/internal/browser/paint"
	"webslice/internal/browser/sched"
	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// TileDim is the tile edge in pixels; a tile backing store is one byte per
// pixel (indexed color), i.e. 64 KiB.
const TileDim = 256

// TileBytes is the backing-store size of one tile.
const TileBytes = TileDim * TileDim

// LayerMetaSize is the traced layer-metadata record size.
const LayerMetaSize = 32

// Layer metadata offsets (written by the compositor, read by rasterizers).
const (
	MetaX      = 0  // u32
	MetaY      = 4  // u32
	MetaZ      = 8  // u32 (z+100)
	MetaW      = 12 // u32
	MetaH      = 16 // u32
	MetaScroll = 20 // u32 applied scroll offset
)

// Tile is one backing-store tile of a layer.
type Tile struct {
	Layer    *paint.Layer
	Col, Row int
	Buf      vmem.Range
	// Meta is a traced record holding the tile's device origin, written at
	// tiling time and read by the rasterizer when computing pixel
	// addresses.
	Meta     vmem.Addr
	Rastered bool
	Visible  bool
}

// RasterFunc rasterizes one tile on a worker thread (provided by the raster
// package; indirection avoids a package cycle).
type RasterFunc func(t *Tile, done func())

// Compositor drives the compositing stage on its own thread.
type Compositor struct {
	M *vm.Machine
	S *sched.Scheduler

	Thread        uint8
	RasterThreads []uint8
	ViewportW     int
	ViewportH     int
	// PrepaintRows is how many viewport-heights beyond the visible area get
	// rastered speculatively (Chrome's prepaint; a waste knob).
	PrepaintFactor int
	// FrameOverhead scales the per-frame property-tree/occlusion busywork
	// (calibration knob for the compositor thread's instruction share).
	FrameOverhead int

	Raster RasterFunc

	Layers []*paint.Layer
	Tiles  []*Tile

	scrollCell vmem.Addr
	ScrollY    int

	commitFn, tileFn, occlFn, propFn, drawFn, prioFn, inputFn *vm.Fn

	nextRaster int
	// tiledRows tracks, per layer identity (owning node; nil = root), the
	// exclusive last tile row already created, so scrolling can extend
	// tilings incrementally.
	tiledRows map[interface{}]int
	// prevMeta/prevXY remember each layer identity's last committed
	// metadata record and origin: commits update property trees
	// incrementally from the previous (frame-updated) values, so the
	// 60 Hz BeginFrame work between commits is consumed by the next
	// commit's tilings and rasters.
	prevMeta map[interface{}]vmem.Addr
	prevXY   map[interface{}][2]int
	// Frames counts draws; RasteredTiles / DrawnTiles count work.
	Frames, RasteredTiles, DrawnTiles int
}

// New wires a compositor running on thread tid.
func New(m *vm.Machine, s *sched.Scheduler, tid uint8, rasterThreads []uint8, vw, vh int) *Compositor {
	return &Compositor{
		M:              m,
		S:              s,
		Thread:         tid,
		RasterThreads:  rasterThreads,
		ViewportW:      vw,
		ViewportH:      vh,
		PrepaintFactor: 2,
		FrameOverhead:  1,
		scrollCell:     m.Heap.Alloc(8),
		tiledRows:      make(map[interface{}]int),
		prevMeta:       make(map[interface{}]vmem.Addr),
		prevXY:         make(map[interface{}][2]int),
		commitFn:       m.Func("cc::LayerTreeHostImpl::CommitComplete", ns.CC),
		tileFn:         m.Func("cc::PictureLayerTiling::CreateTiles", ns.CC),
		occlFn:         m.Func("cc::OcclusionTracker::ComputeVisibleRegion", ns.CC),
		propFn:         m.Func("cc::draw_property_utils::ComputeDrawProperties", ns.CC),
		drawFn:         m.Func("cc::LayerTreeHostImpl::DrawLayers", ns.CC),
		prioFn:         m.Func("cc::TilePriority::ComputePriorityRect", ns.CC),
		inputFn:        m.Func("cc::InputHandlerProxy::HandleInputEvent", ns.CC),
	}
}

// Commit receives the main thread's layer list: writes traced layer
// metadata, builds tilings, computes occlusion and priorities, and schedules
// rasterization. onAllRastered fires (on the compositor thread) when every
// scheduled tile has been rastered.
func (c *Compositor) Commit(layers []*paint.Layer, onAllRastered func()) {
	c.CommitDiff(layers, func(*paint.Layer) bool { return true }, onAllRastered)
}

// CommitDiff is Commit with damage tracking: backing-store tiles of layers
// the damage predicate rejects are carried over from the previous commit
// (retargeted to the new layer objects), so only changed content re-rasters
// — Chromium's partial invalidation.
func (c *Compositor) CommitDiff(layers []*paint.Layer, damaged func(*paint.Layer) bool, onAllRastered func()) {
	m := c.M
	// Index surviving tiles by owning DOM node (nil = root layer).
	oldTiles := make(map[interface{}][]*Tile)
	for _, t := range c.Tiles {
		var key interface{}
		if t.Layer.Node != nil {
			key = t.Layer.Node
		}
		oldTiles[key] = append(oldTiles[key], t)
	}
	c.Layers = layers
	c.Tiles = nil
	m.Call(c.commitFn, func() {
		for _, l := range layers {
			key := layerKey(l)
			l.Meta = m.Heap.Alloc(LayerMetaSize)
			m.At("layermeta")
			if prev, ok := c.prevMeta[key]; ok {
				// Incremental property-tree update: the new origin derives
				// from the previous record (which every BeginFrame since the
				// last commit rewrote) plus the layout delta.
				pxy := c.prevXY[key]
				px := m.LoadU32(prev + MetaX)
				py := m.LoadU32(prev + MetaY)
				nx := m.OpImm(isa.OpAdd, px, uint64(uint32(l.X-pxy[0])))
				ny := m.OpImm(isa.OpAdd, py, uint64(uint32(l.Y-pxy[1])))
				m.StoreU32(l.Meta+MetaX, nx)
				m.StoreU32(l.Meta+MetaY, ny)
			} else {
				m.StoreU32(l.Meta+MetaX, m.Imm(uint64(l.X)))
				m.StoreU32(l.Meta+MetaY, m.Imm(uint64(l.Y)))
			}
			c.prevMeta[key] = l.Meta
			c.prevXY[key] = [2]int{l.X, l.Y}
			m.StoreU32(l.Meta+MetaZ, m.Imm(uint64(l.Z+100)))
			m.StoreU32(l.Meta+MetaW, m.Imm(uint64(l.W)))
			m.StoreU32(l.Meta+MetaH, m.Imm(uint64(l.H)))
			scroll := m.LoadU32(c.scrollCell)
			m.StoreU32(l.Meta+MetaScroll, scroll)
		}
	})
	m.Call(c.tileFn, func() {
		for _, l := range layers {
			key := layerKey(l)
			if olds, ok := oldTiles[key]; ok && !damaged(l) {
				// Reuse the backing store: retarget tiles at the new layer.
				for _, t := range olds {
					t.Layer = l
					c.Tiles = append(c.Tiles, t)
				}
				continue
			}
			c.tiledRows[key] = 0 // damaged layers re-tile from scratch
			c.tileLayer(l)
		}
	})
	c.computeOcclusion()
	c.prioritizeAndRaster(onAllRastered)
}

func layerKey(l *paint.Layer) interface{} {
	if l.Node != nil {
		return l.Node
	}
	return nil
}

// tileLayer creates the layer's backing-store tiles within the prepaint
// region (plus everything for small layers). Rows already created for this
// layer identity are skipped, so scroll-driven extension is incremental.
func (c *Compositor) tileLayer(l *paint.Layer) {
	m := c.M
	maxY := c.ViewportH * (1 + c.PrepaintFactor)
	cols := (l.W + TileDim - 1) / TileDim
	rows := (l.H + TileDim - 1) / TileDim
	maxRow := c.tiledRows[layerKey(l)]
	for r := 0; r < rows; r++ {
		// Prepaint cull: skip tiles far below the prepaint region (traced
		// compare against the layer origin).
		if l.Y+r*TileDim > maxY+c.ScrollY {
			continue
		}
		if r < maxRow {
			continue
		}
		if r+1 > c.tiledRows[layerKey(l)] {
			c.tiledRows[layerKey(l)] = r + 1
		}
		for col := 0; col < cols; col++ {
			m.At("tile")
			t := &Tile{Layer: l, Col: col, Row: r}
			t.Buf = vmem.Range{Addr: m.Tile.Alloc(TileBytes), Size: TileBytes}
			t.Meta = m.Heap.Alloc(16)
			// Device origin = layer origin + tile offset (traced from the
			// layer metadata so compositor work feeds raster addressing).
			lx := m.LoadU32(l.Meta + MetaX)
			ly := m.LoadU32(l.Meta + MetaY)
			ox := m.OpImm(isa.OpAdd, lx, uint64(col*TileDim))
			oy := m.OpImm(isa.OpAdd, ly, uint64(r*TileDim))
			m.StoreU32(t.Meta, ox)
			m.StoreU32(t.Meta+4, oy)
			m.StoreU32(t.Meta+8, m.Imm(uint64(t.Buf.Addr)))
			c.Tiles = append(c.Tiles, t)
		}
	}
}

// computeOcclusion recomputes tile visibility: a tile is visible if it
// intersects the viewport (after scroll for non-fixed layers) and is not
// fully covered by an opaque layer with a higher z placed later.
func (c *Compositor) computeOcclusion() {
	m := c.M
	m.Call(c.occlFn, func() {
		for _, t := range c.Tiles {
			m.At("occl")
			x0, y0 := c.tileDeviceOrigin(t)
			// Traced screen-intersection test against the viewport.
			ox := m.LoadU32(t.Meta)
			oy := m.LoadU32(t.Meta + 4)
			var yScr isa.Reg
			if t.Layer.Fixed {
				yScr = oy
			} else {
				scroll := m.LoadU32(c.scrollCell)
				yScr = m.Op(isa.OpSub, oy, scroll)
			}
			inX := m.OpImm(isa.OpCmpLT, ox, uint64(c.ViewportW))
			yTop := m.OpImm(isa.OpCmpGT, yScr, uint64(1<<31)) // negative as unsigned
			yLow := m.OpImm(isa.OpCmpLT, yScr, uint64(c.ViewportH))
			partial := m.OpImm(isa.OpCmpGE, m.Op(isa.OpAdd, yScr, m.Imm(TileDim)), 1)
			inY := m.Op(isa.OpAnd, m.Op(isa.OpOr, yLow, yTop), partial)
			vis := m.Op(isa.OpAnd, inX, inY)
			visible := m.Branch(vis)

			// Go-side mirror of the same test for orchestration.
			yScreen := y0
			if !t.Layer.Fixed {
				yScreen -= c.ScrollY
			}
			onScreen := x0 < c.ViewportW && yScreen < c.ViewportH && yScreen+TileDim > 0
			t.Visible = visible && onScreen && !c.occluded(t, x0, yScreen)
		}
	})
}

func (c *Compositor) tileDeviceOrigin(t *Tile) (int, int) {
	return t.Layer.X + t.Col*TileDim, t.Layer.Y + t.Row*TileDim
}

// occluded reports whether the tile rect is fully covered by an opaque layer
// drawn above it (traced rect compares).
func (c *Compositor) occluded(t *Tile, x, y int) bool {
	m := c.M
	for _, l := range c.Layers {
		if l == t.Layer || !l.Opaque {
			continue
		}
		if l.Z < t.Layer.Z || (l.Z == t.Layer.Z && l.ID <= t.Layer.ID) {
			continue
		}
		m.At("occtest")
		lx := m.LoadU32(l.Meta + MetaX)
		ly := m.LoadU32(l.Meta + MetaY)
		lw := m.LoadU32(l.Meta + MetaW)
		lh := m.LoadU32(l.Meta + MetaH)
		x2 := m.Op(isa.OpAdd, lx, lw)
		y2 := m.Op(isa.OpAdd, ly, lh)
		c1 := m.OpImm(isa.OpCmpLE, lx, uint64(x))
		c2 := m.OpImm(isa.OpCmpLE, ly, uint64(y+c.ScrollY))
		c3 := m.OpImm(isa.OpCmpGE, x2, uint64(x+TileDim))
		c4 := m.OpImm(isa.OpCmpGE, y2, uint64(y+c.ScrollY+TileDim))
		cov := m.Op(isa.OpAnd, m.Op(isa.OpAnd, c1, c2), m.Op(isa.OpAnd, c3, c4))
		if m.Branch(cov) {
			return true
		}
	}
	return false
}

// prioritizeAndRaster orders tiles by distance to the viewport (traced
// priority arithmetic) and posts raster tasks round-robin to the worker
// threads. Occluded and offscreen-but-prepainted tiles are rastered too —
// the backing-store waste the paper highlights.
func (c *Compositor) prioritizeAndRaster(onAllRastered func()) {
	m := c.M
	var pending []*Tile
	m.Call(c.prioFn, func() {
		for _, t := range c.Tiles {
			if t.Rastered {
				continue
			}
			m.At("prio")
			oy := m.LoadU32(t.Meta + 4)
			scroll := m.LoadU32(c.scrollCell)
			d := m.Op(isa.OpSub, oy, scroll)
			d = m.Op(isa.OpMax, d, m.Imm(0))
			m.StoreU32(t.Meta+12, d)
			pending = append(pending, t)
		}
	})
	if len(pending) == 0 {
		if onAllRastered != nil {
			onAllRastered()
		}
		return
	}
	// Completion is tracked per batch: overlapping commits (a first paint
	// still rastering when images trigger the next commit) must each fire
	// their own callback.
	remaining := len(pending)
	for _, t := range pending {
		tile := t
		worker := c.RasterThreads[c.nextRaster%len(c.RasterThreads)]
		c.nextRaster++
		c.S.Post(worker, ns.Skia+"!RasterTask", func() {
			c.Raster(tile, func() {
				c.S.Post(c.Thread, ns.CC+"!DidFinishRaster", func() {
					tile.Rastered = true
					c.RasteredTiles++
					remaining--
					if remaining == 0 && onAllRastered != nil {
						onAllRastered()
					}
				})
			})
		})
	}
}

// Draw presents a frame: per-frame property-tree update (the animation/
// management busywork), then quad generation over visible tiles and a
// display handoff whose syscall reads the visible tile buffers (the GPU
// consuming the backing stores).
func (c *Compositor) Draw() {
	m := c.M
	m.Call(c.propFn, func() {
		for i := 0; i < c.FrameOverhead; i++ {
			for _, l := range c.Layers {
				m.At("prop")
				z := m.LoadU32(l.Meta + MetaZ)
				w := m.LoadU32(l.Meta + MetaW)
				h := m.LoadU32(l.Meta + MetaH)
				area := m.Op(isa.OpMul, w, h)
				key := m.Op(isa.OpAdd, area, z)
				m.StoreU32(l.Meta+24, key)
			}
		}
	})
	m.Call(c.drawFn, func() {
		// Every rastered backing store is handed to the GPU process
		// (texture upload), whether or not its quads end up on screen — so
		// the syscall-based slicing criteria subsume the pixel-based ones,
		// as the paper argues in §IV-C. Only visible tiles also get quads.
		var reads []vmem.Range
		for _, t := range c.Tiles {
			if !t.Rastered {
				continue
			}
			if t.Visible {
				m.At("quad")
				buf := m.LoadU32(t.Meta + 8)
				ox := m.LoadU32(t.Meta)
				q := m.Op(isa.OpAdd, buf, ox)
				_ = q
				c.DrawnTiles++
			}
			reads = append(reads, t.Buf)
		}
		m.At("swap")
		if len(reads) > 0 {
			m.Syscall(isa.SysIoctl, isa.RegNone, isa.RegNone, reads, nil, nil)
		}
	})
	c.Frames++
}

// HandleScroll applies a compositor-thread scroll: updates the traced scroll
// cell, recomputes visibility, rasters newly exposed tiles, and draws.
func (c *Compositor) HandleScroll(dy int, done func()) {
	m := c.M
	m.Call(c.inputFn, func() {
		m.At("scroll")
		cur := m.LoadU32(c.scrollCell)
		d := m.Imm(uint64(int64(dy)))
		nv := m.Op(isa.OpAdd, cur, d)
		nv = m.Op(isa.OpMax, nv, m.Imm(0))
		m.StoreU32(c.scrollCell, nv)
		c.ScrollY = int(int32(uint32(m.Val(nv))))
	})
	// Scrolling down extends the tilings: newly exposed prepaint rows get
	// backing stores and raster tasks (their pixel addresses consume the
	// frame-updated layer metadata, which is how per-frame compositor work
	// becomes load-bearing).
	m.Call(c.tileFn, func() {
		for _, l := range c.Layers {
			if !l.Fixed {
				c.tileLayer(l)
			}
		}
	})
	c.computeOcclusion()
	c.prioritizeAndRaster(func() {
		c.Draw()
		if done != nil {
			done()
		}
	})
}

// BeginFrame runs one animation tick's management work without content
// changes, the recurring cost real pages pay at 60 Hz. The property-tree
// update rewrites each layer's draw metadata from its previous value — the
// chain the next rasterization consumes — so per-frame compositor work up to
// the last raster is genuinely load-bearing, while ticks after the final
// raster (and all damage-tracking bookkeeping) never reach a pixel. That
// split is what yields the paper's ~34% compositor slice.
func (c *Compositor) BeginFrame() {
	m := c.M
	m.Call(c.propFn, func() {
		for i := 0; i < c.FrameOverhead; i++ {
			// Property-tree recompute: layer origins pass through the
			// transform pipeline each tick (identity transform here), and
			// per-layer tile origins are refreshed from them.
			for _, l := range c.Layers {
				m.At("tick")
				// Transform/effect/clip tree walk: the layer origin passes
				// through a chain of identity transforms (real pages have
				// deep property trees); the result is written back, so the
				// next commit or raster consumes this frame's work.
				x := m.LoadU32(l.Meta + MetaX)
				y := m.LoadU32(l.Meta + MetaY)
				scroll := m.LoadU32(c.scrollCell)
				zero := m.Op(isa.OpSub, scroll, scroll)
				for d := 0; d < 12; d++ {
					m.At("xform")
					x = m.Op(isa.OpAdd, x, zero)
					y = m.Op(isa.OpAdd, y, zero)
				}
				m.StoreU32(l.Meta+MetaX, x)
				m.StoreU32(l.Meta+MetaY, y)
			}
			// Damage/priority bookkeeping visits a quarter of the tiles per
			// tick; its output feeds nothing user-visible.
			for ti, t := range c.Tiles {
				if (ti+int(c.Frames))%4 != 0 {
					continue
				}
				m.At("damage")
				d := m.LoadU32(t.Meta + 12)
				nd := m.OpImm(isa.OpAdd, d, 0)
				m.StoreU32(t.Meta+12, nd)
			}
		}
	})
	c.Frames++
}
