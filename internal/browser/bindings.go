package browser

import (
	"fmt"

	"webslice/internal/browser/dom"
	"webslice/internal/browser/js"
	"webslice/internal/browser/ns"
	"webslice/internal/browser/sched"
	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// This file implements the JavaScript ↔ engine bindings: the DOM API surface
// the workloads use (getElementById, textContent, style mutation, event
// listeners, timers, console, beacons). Every binding performs its effect
// through traced instructions so JS-driven mutations carry provenance into
// the rendering pipeline.

// styleProps maps JS style property names to computed-style offsets.
var styleProps = map[string]struct {
	off  vmem.Addr
	size int
}{
	"color":      {4, 4},  // css.OffColor
	"background": {8, 4},  // css.OffBg
	"width":      {12, 4}, // css.OffWidth
	"height":     {16, 4}, // css.OffHeight
	"top":        {32, 4}, // css.OffTop
	"left":       {36, 4}, // css.OffLeft
	"display":    {0, 1},  // css.OffDisplay
	"zIndex":     {2, 2},  // css.OffZIndex
}

func (b *Browser) registerNatives() {
	m := b.M
	e := b.JS
	getByID := m.Func("blink::TreeScope::getElementById", "")
	consoleFn := m.Func("v8::console::Log", ns.V8)
	beaconFn := m.Func("blink::NavigatorBeacon::sendBeacon", "")

	// document.getElementById(id) -> element value via the traced id-index
	// scan.
	e.RegisterNative("m:getElementById", func(args []isa.Reg) isa.Reg {
		if len(args) < 2 {
			return isa.RegNone
		}
		idStr := b.regString(args[1])
		node, addrReg := b.DOM.LookupID(getByID, idStr)
		if node == nil {
			return m.Imm(js.MakeValue(js.TagUndef, 0))
		}
		// Tag the traced lookup result as an element value.
		return m.Op(isa.OpOr, addrReg, m.Imm(js.MakeValue(js.TagElem, 0)))
	})

	// el.addEventListener(type, fn): store the handler index on the node.
	e.RegisterNative("m:addEventListener", func(args []isa.Reg) isa.Reg {
		if len(args) < 3 {
			return isa.RegNone
		}
		node := b.regElem(args[0])
		fnVal := m.Val(args[2])
		if node == nil || js.TagOf(fnVal) != js.TagFunc {
			return isa.RegNone
		}
		// handler slot = function index + 1, derived traced from the value.
		idx := m.OpImm(isa.OpAnd, args[2], 0xFFFFFFFF)
		idx = m.OpImm(isa.OpAdd, idx, 1)
		addr := m.OpImm(isa.OpAnd, args[0], 0xFFFFFFFF)
		addr = m.OpImm(isa.OpAdd, addr, uint64(dom.OffHandler))
		m.StoreVia(addr, 4, idx)
		return isa.RegNone
	})

	// setTimeout(fn, ms): schedule a main-thread timer task.
	e.RegisterNative("setTimeout", func(args []isa.Reg) isa.Reg {
		if len(args) < 2 {
			return isa.RegNone
		}
		fnVal := m.Val(args[0])
		delay := js.PayloadOf(m.Val(args[1]))
		if js.TagOf(fnVal) != js.TagFunc {
			return isa.RegNone
		}
		idx := int(js.PayloadOf(fnVal))
		b.S.PostDelayed(MainThread, ns.V8+"!TimerFired", delay*sched.CyclesPerMs, func() {
			if _, err := b.JS.CallByIndex(idx, nil); err != nil {
				b.Errors = append(b.Errors, err)
			}
			if b.dirty() {
				b.renderPipeline(false)
			}
		})
		return isa.RegNone
	})

	// console.log(v): formats and writes to stdout (a real output syscall).
	e.RegisterNative("m:log", func(args []isa.Reg) isa.Reg {
		m.Call(consoleFn, func() {
			buf := m.IOb.Alloc(32)
			var v isa.Reg
			if len(args) > 1 {
				v = args[1]
			} else {
				v = m.Imm(0)
			}
			m.StoreU64(buf, v)
			m.Syscall(isa.SysWrite, v, isa.RegNone,
				[]vmem.Range{{Addr: buf, Size: 8}}, nil, nil)
		})
		return isa.RegNone
	})

	// navigator.sendBeacon(url, len): analytics upload through the IO
	// thread — network output with no visual effect (only the syscall-based
	// criteria capture it).
	e.RegisterNative("m:sendBeacon", func(args []isa.Reg) isa.Reg {
		size := 64
		if len(args) >= 3 {
			size = int(js.PayloadOf(m.Val(args[2])))
		}
		if size < 8 {
			size = 8
		}
		if size > 4096 {
			size = 4096
		}
		buf := m.IOb.Alloc(size)
		m.Call(beaconFn, func() {
			v := m.Imm(0xBEAC)
			m.At("fill")
			for off := 0; off < size; off += 8 {
				v = m.OpImm(isa.OpAdd, v, 0x11)
				m.StoreU64(buf+vmem.Addr(off), v)
			}
		})
		b.S.Post(IOThread, ns.Net+"!PingLoader::SendBeacon", func() {
			m.Syscall(isa.SysSendto, isa.RegNone, isa.RegNone,
				[]vmem.Range{{Addr: buf, Size: uint32(size)}}, nil, nil)
		})
		return isa.RegNone
	})

	// performance.now() via clock_gettime.
	e.RegisterNative("m:now", func(args []isa.Reg) isa.Reg {
		ts := m.IOb.Alloc(16)
		cyc := m.Cycle()
		fill := make([]byte, 16)
		for i := 0; i < 8; i++ {
			fill[i] = byte(cyc >> (8 * i))
		}
		return m.Syscall(isa.SysClockGettime, isa.RegNone, isa.RegNone,
			nil, []vmem.Range{{Addr: ts, Size: 16}}, fill)
	})

	// Math.floor / Math.min / Math.max on tagged ints.
	e.RegisterNative("m:floor", func(args []isa.Reg) isa.Reg {
		if len(args) < 2 {
			return isa.RegNone
		}
		return m.Op(isa.OpMov, args[1], args[1])
	})
	e.RegisterNative("m:min", func(args []isa.Reg) isa.Reg {
		if len(args) < 3 {
			return isa.RegNone
		}
		return m.Op(isa.OpMin, args[1], args[2])
	})
	e.RegisterNative("m:max", func(args []isa.Reg) isa.Reg {
		if len(args) < 3 {
			return isa.RegNone
		}
		return m.Op(isa.OpMax, args[1], args[2])
	})

	// Property get/set bridge (el.textContent, el.style.*, el.offsetHeight).
	e.Props = func(obj isa.Reg, prop string, val isa.Reg, isSet bool) isa.Reg {
		objVal := m.Val(obj)
		switch js.TagOf(objVal) {
		case js.TagElem:
			node := b.DOM.ByAddr(vmem.Addr(js.PayloadOf(objVal)))
			if node == nil {
				return isa.RegNone
			}
			return b.elemProp(node, obj, prop, val, isSet)
		case tagStyle:
			node := b.DOM.ByAddr(vmem.Addr(js.PayloadOf(objVal)))
			if node == nil {
				return isa.RegNone
			}
			if isSet {
				return b.styleSet(node, prop, val)
			}
			return b.styleGet(node, prop)
		default:
			return isa.RegNone
		}
	}
}

// tagStyle tags a style-reference value; the payload is the owning node's
// address (the style record itself may not exist before the first style
// resolve).
const tagStyle = 6

func (b *Browser) elemProp(node *dom.Node, obj isa.Reg, prop string, val isa.Reg, isSet bool) isa.Reg {
	m := b.M
	switch prop {
	case "style":
		if isSet {
			return isa.RegNone
		}
		// Touch the style pointer (CSSStyleDeclaration creation) and hand
		// back a style reference carrying the node identity.
		m.LoadU32(node.Addr + dom.OffStyle)
		addr := m.OpImm(isa.OpAnd, obj, 0xFFFFFFFF)
		return m.Op(isa.OpOr, addr, m.Imm(js.MakeValue(tagStyle, 0)))
	case "textContent":
		if !isSet {
			ta := m.LoadU32(node.Addr + dom.OffText)
			return m.Op(isa.OpOr, ta, m.Imm(js.MakeValue(js.TagStr, 0)))
		}
		s := b.regString(val)
		strAddr := b.JS.InternString(s)
		b.DOM.SetTextRaw(node, strAddr+4, len(s), s)
		b.damaged[node] = true
		return val
	case "offsetHeight", "offsetWidth":
		if box := b.boxAddr(node); box != 0 {
			off := vmem.Addr(12) // layout.OffH
			if prop == "offsetWidth" {
				off = 8
			}
			return m.LoadU32(box + off)
		}
		return m.Imm(js.MakeValue(js.TagInt, 0))
	default:
		return isa.RegNone
	}
}

func (b *Browser) boxAddr(node *dom.Node) vmem.Addr {
	if b.Layout == nil {
		return 0
	}
	if box := b.Layout.BoxOf(node); box != nil {
		return box.Addr
	}
	return 0
}

// styleSet records a JS inline-style mutation: the value is written to a
// traced override cell (the element's inline style declaration) that the
// next style resolve re-applies over the cascade, and — when a computed
// style record already exists — also written through immediately so later
// reads in the same script observe it.
func (b *Browser) styleSet(node *dom.Node, prop string, val isa.Reg) isa.Reg {
	m := b.M
	sp, ok := styleProps[prop]
	if !ok {
		return isa.RegNone
	}
	cell, ok2 := b.inlineCell(node, prop)
	if !ok2 {
		cell = m.Heap.Alloc(8)
		if len(b.inline[node]) == 0 {
			b.inlineOrder = append(b.inlineOrder, node)
		}
		b.inline[node] = append(b.inline[node], inlineProp{prop: prop, off: sp.off, size: sp.size, cell: cell})
	}
	m.StoreU64(cell, val)
	if b.Styles != nil {
		if style := b.Styles.StyleOf(node); style != 0 {
			m.Store(style+sp.off, sp.size, val)
		}
	}
	b.damaged[node] = true
	if prop != "color" && prop != "background" {
		b.rootDamage = true
	}
	return val
}

func (b *Browser) inlineCell(node *dom.Node, prop string) (vmem.Addr, bool) {
	for _, p := range b.inline[node] {
		if p.prop == prop {
			return p.cell, true
		}
	}
	return 0, false
}

// applyInlineStyles re-applies JS inline overrides after a cascade pass
// (inline style wins over sheet rules).
func (b *Browser) applyInlineStyles() {
	m := b.M
	for _, node := range b.inlineOrder {
		style := b.Styles.StyleOf(node)
		if style == 0 {
			continue
		}
		m.At("inline")
		for _, p := range b.inline[node] {
			v := m.LoadU64(p.cell)
			m.Store(style+p.off, p.size, v)
		}
	}
}

func (b *Browser) styleGet(node *dom.Node, prop string) isa.Reg {
	m := b.M
	sp, ok := styleProps[prop]
	if !ok {
		return isa.RegNone
	}
	if cell, ok2 := b.inlineCell(node, prop); ok2 {
		return m.LoadU64(cell)
	}
	if b.Styles != nil {
		if style := b.Styles.StyleOf(node); style != 0 {
			return m.Load(style+sp.off, sp.size)
		}
	}
	return m.Imm(js.MakeValue(js.TagInt, 0))
}

// regElem resolves an element-tagged value register to its DOM node.
func (b *Browser) regElem(r isa.Reg) *dom.Node {
	v := b.M.Val(r)
	if js.TagOf(v) != js.TagElem {
		return nil
	}
	return b.DOM.ByAddr(vmem.Addr(js.PayloadOf(v)))
}

// regString renders a JS value register to a Go string.
func (b *Browser) regString(r isa.Reg) string {
	v := b.M.Val(r)
	if js.TagOf(v) == js.TagStr {
		if s, ok := b.JS.StringAt(vmem.Addr(js.PayloadOf(v))); ok {
			return s
		}
	}
	return fmt.Sprintf("%d", js.PayloadOf(v))
}

var _ = vm.MaxAccess // doc reference
