package browser

import (
	"testing"

	"webslice/internal/content"
	"webslice/internal/core"
	"webslice/internal/isa"
)

// tinySite builds a small but complete site: HTML with styles, a used and an
// unused JS function, an image, a fixed header layer, and a click handler.
func tinySite() *content.Site {
	s := &content.Site{
		Name:      "tiny",
		URL:       "https://tiny.test/",
		ViewportW: 512,
		ViewportH: 384,
	}
	htmlBody := `<html><head>
<link rel="stylesheet" href="https://tiny.test/app.css">
<script src="https://tiny.test/app.js"></script>
</head>
<body class="page">
<div id="hdr" class="topbar">Site Header</div>
<div id="content" class="main">
<p>Hello rendered world, this is body text that flows.</p>
<img src="https://tiny.test/logo.png">
<button id="menu-btn" class="btn">Menu</button>
</div>
<div id="hidden-panel" class="panel">Invisible panel content</div>
<div id="footer" class="foot">Footer far below the fold</div>
</body></html>`
	s.Add(&content.Resource{URL: s.URL, Type: content.HTML, Body: []byte(htmlBody), LatencyMs: 40})
	appCSS := `.page { background: #ffffff; margin: 0; }
.topbar { position: fixed; top: 0; left: 0; height: 40; width: 512; background: #222222; color: white; z-index: 10; }
.main { padding: 8; background: #eeeeee; }
.btn { width: 80; height: 24; background: #4488ff; }
.panel { display: none; background: #ff0000; height: 600; }
.foot { margin: 4; height: 2000; background: #dddddd; }
.unused-a { color: red; padding: 3; }
.unused-b { border-width: 2; margin: 9; }
#no-such-id { background: black; height: 50; }`
	s.Add(&content.Resource{URL: "https://tiny.test/app.css", Type: content.CSS, Body: []byte(appCSS), LatencyMs: 30})
	appJS := `
function usedInit(doc) {
  var el = document.getElementById('content');
  var i = 0;
  var acc = 0;
  while (i < 20) { acc = acc + i * 3; i = i + 1; }
  el.style.background = 15790320;
  return acc;
}
function onMenuClick(el) {
  var panel = document.getElementById('hidden-panel');
  panel.style.display = 1;
  panel.textContent = 'now you see me';
  return 1;
}
function neverCalledHelper(x) {
  var t = 0;
  for (var j = 0; j < 100; j = j + 1) { t = t + j * j; }
  return t;
}
function anotherDeadFunction(a, b) {
  if (a > b) { return a - b; }
  return b - a;
}
var r = usedInit(0);
var btn = document.getElementById('menu-btn');
btn.addEventListener('click', onMenuClick);
`
	s.Add(&content.Resource{URL: "https://tiny.test/app.js", Type: content.JS, Body: []byte(appJS), LatencyMs: 35})
	s.Add(&content.Resource{URL: "https://tiny.test/logo.png", Type: content.Image,
		Body: make([]byte, 600), W: 64, H: 48, LatencyMs: 25})
	s.Session = []content.Action{
		{Kind: content.Scroll, DeltaY: 300, ThinkMs: 400},
		{Kind: content.Click, TargetID: "menu-btn", ThinkMs: 500},
	}
	return s
}

func loadTiny(t *testing.T, browse bool) *Browser {
	t.Helper()
	site := tinySite()
	p := DefaultProfile()
	p.IdleFrames = 5
	b := New(site, p)
	b.Load(nil)
	if browse {
		b.Browse()
	}
	for _, err := range b.Errors {
		t.Errorf("pipeline error: %v", err)
	}
	return b
}

func TestLoadProducesDOMAndPixels(t *testing.T) {
	b := loadTiny(t, false)
	if b.DOM.Count() < 10 {
		t.Errorf("DOM has only %d nodes", b.DOM.Count())
	}
	if b.DOM.ByID("menu-btn") == nil {
		t.Error("button missing from DOM")
	}
	if !b.loaded {
		t.Fatal("page never finished loading")
	}
	if b.LoadedIndex == 0 {
		t.Error("LoadedIndex not recorded")
	}
	if b.Comp.RasteredTiles == 0 {
		t.Error("nothing was rastered")
	}
	if b.Raster.MarkedTiles == 0 {
		t.Error("no pixel criteria markers planted")
	}
	if b.Comp.Frames == 0 {
		t.Error("no frames drawn")
	}
	sum := b.M.Tr.Summarize()
	if sum.Markers == 0 || sum.Syscalls == 0 {
		t.Errorf("trace missing side records: %+v", sum)
	}
	if err := b.M.Tr.Validate(); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
	// The trace must include work from every thread.
	for tid := uint8(0); tid < 3+uint8(b.Profile.RasterWorkers); tid++ {
		if sum.ByThread[tid] == 0 {
			t.Errorf("thread %d (%s) executed nothing", tid, b.M.Tr.ThreadName(tid))
		}
	}
}

func TestUnusedJSDetected(t *testing.T) {
	b := loadTiny(t, false)
	var used, unused int
	for _, f := range b.JS.Funcs {
		if !f.Compiled {
			t.Errorf("function %s was not compiled (eager codegen expected)", f.Name)
		}
		if f.Executed {
			used++
		} else {
			unused++
		}
	}
	if unused < 2 {
		t.Errorf("expected the two dead functions to be unexecuted, got %d unused", unused)
	}
	if used < 2 {
		t.Errorf("expected usedInit and toplevel to run, got %d used", used)
	}
	// The click handler only becomes used after browsing.
	b2 := loadTiny(t, true)
	h := b2.JS.FuncByName("onMenuClick")
	if h < 0 || !b2.JS.Funcs[h].Executed {
		t.Error("click handler should have executed during the browse session")
	}
}

func TestUnusedCSSDetected(t *testing.T) {
	b := loadTiny(t, false)
	var used, unused int
	for _, sh := range b.CSS.Sheets {
		for _, r := range sh.Rules {
			if r.Used {
				used++
			} else {
				unused++
			}
		}
	}
	if used < 5 {
		t.Errorf("expected most real rules to match, used=%d", used)
	}
	if unused < 3 {
		t.Errorf("expected the three unused rules to stay unused, unused=%d", unused)
	}
}

func TestPixelSliceOnTinySite(t *testing.T) {
	b := loadTiny(t, true)
	p := core.NewProfiler(b.M.Tr)
	res, err := p.PixelSlice()
	if err != nil {
		t.Fatal(err)
	}
	pct := res.Percent()
	if pct <= 5 || pct >= 95 {
		t.Fatalf("pixel slice percent = %.1f%%, expected an interior value", pct)
	}
	// Debug bookkeeping must be outside the slice.
	for i := range b.M.Tr.Recs {
		if b.M.Tr.Namespace(b.M.Tr.Recs[i].Func()) == "base/debug" && res.InSlice.Get(i) {
			t.Fatalf("debug record %d wrongly in pixel slice", i)
		}
	}
	// The page content (network input) must be in the slice: at least one
	// recvfrom joined.
	foundRecv := false
	for i, eff := range b.M.Tr.Sys {
		if eff.Num == isa.SysRecvfrom && res.InSlice.Get(i) {
			foundRecv = true
		}
	}
	if !foundRecv {
		t.Error("no network input joined the pixel slice; provenance chain broken")
	}
	t.Logf("tiny site: %d recs, pixel slice %.1f%%", res.Total, pct)
}

func TestSyscallSliceSuperset(t *testing.T) {
	b := loadTiny(t, false)
	p := core.NewProfiler(b.M.Tr)
	pix, err := p.PixelSlice()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := p.SyscallSlice()
	if err != nil {
		t.Fatal(err)
	}
	missing := 0
	for i := 0; i < pix.Total; i++ {
		if pix.InSlice.Get(i) && !sys.InSlice.Get(i) {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d pixel-slice records missing from syscall slice", missing)
	}
	if sys.SliceCount < pix.SliceCount {
		t.Errorf("syscall slice %d smaller than pixel slice %d", sys.SliceCount, pix.SliceCount)
	}
}

func TestScrollExposesNewTiles(t *testing.T) {
	site := tinySite()
	p := DefaultProfile()
	p.IdleFrames = 2
	b := New(site, p)
	b.Load(nil)
	marked := b.Raster.MarkedTiles
	b.Browse()
	if b.Raster.MarkedTiles <= marked {
		t.Logf("marked before browse %d, after %d", marked, b.Raster.MarkedTiles)
	}
	if b.Comp.ScrollY == 0 {
		t.Error("scroll was not applied")
	}
	if b.DOM.ByID("hidden-panel").Text == "Invisible panel content" {
		t.Error("click handler should have replaced the panel text")
	}
}
