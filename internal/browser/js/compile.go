package js

import (
	"fmt"

	"webslice/internal/browser/ns"
	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

// Value tagging: 64-bit values with the type tag in bits 48..51.
const (
	TagInt   = 0
	TagStr   = 1
	TagElem  = 2 // DOM element (payload = node address)
	TagFunc  = 3 // user function index
	TagBool  = 4
	TagUndef = 5
)

// MakeValue builds a tagged value.
func MakeValue(tag uint64, payload uint64) uint64 { return tag<<48 | payload&0xFFFFFFFFFFFF }

// TagOf extracts the tag.
func TagOf(v uint64) uint64 { return v >> 48 }

// PayloadOf extracts the payload.
func PayloadOf(v uint64) uint64 { return v & 0xFFFFFFFFFFFF }

// Bytecode opcodes (word = op | a<<8 | b<<16).
const (
	opPushK = iota + 1
	opLoadL
	opStoreL
	opLoadG
	opStoreG
	opAdd
	opSub
	opMul
	opDiv
	opMod
	opLt
	opLe
	opGt
	opGe
	opEq
	opNe
	opNot
	opNeg
	opJmp
	opJz
	opCall
	opNCall
	opRet
	opPop
	opGetProp
	opSetProp
)

func word(op, a, b int) uint32 { return uint32(op) | uint32(a)<<8 | uint32(b)<<16 }

// Function is one compiled JavaScript function.
type Function struct {
	Name   string
	Params []string

	Code     vmem.Addr
	Words    []uint32 // Go mirror of the bytecode
	Consts   vmem.Addr
	ConstVal []uint64 // Go mirror (tagged values)
	constStr []string // prop/string names per const slot ("" if none)

	NumLocals int
	SrcStart  int
	SrcEnd    int

	Sym *vm.Fn
	// Compiled/Executed drive the unused-bytes accounting of Table I.
	Compiled bool
	Executed bool
}

// SrcBytes is the function's source extent.
func (f *Function) SrcBytes() int { return f.SrcEnd - f.SrcStart }

// Native is a builtin function provided by the embedder (DOM bindings,
// console, timers...). It receives argument registers (arg0 is the receiver
// for method-style calls) and returns a result register (RegNone = undefined).
type Native func(args []isa.Reg) isa.Reg

// PropHandler implements obj.prop get/set for DOM element values.
type PropHandler func(obj isa.Reg, prop string, val isa.Reg, isSet bool) isa.Reg

// Engine is the JavaScript engine.
type Engine struct {
	M *vm.Machine

	Funcs      []*Function
	funcByName map[string]int

	globalsAddr vmem.Addr
	globalIdx   map[string]int

	natives      []Native
	nativeByName map[string]int
	// Props handles member get/set (installed by the browser bindings).
	Props PropHandler

	strings   map[string]vmem.Addr
	strByAddr map[vmem.Addr]string

	parseFn, codegenFn, lazyFn *vm.Fn

	// TotalSrcBytes accumulates compiled script sizes (Table I denominator
	// contribution for JS).
	TotalSrcBytes int
	// Ops counts interpreted bytecode operations.
	Ops int
}

// NewEngine wires a JS engine to the machine.
func NewEngine(m *vm.Machine) *Engine {
	e := &Engine{
		M:            m,
		funcByName:   make(map[string]int),
		globalIdx:    make(map[string]int),
		nativeByName: make(map[string]int),
		strings:      make(map[string]vmem.Addr),
		strByAddr:    make(map[vmem.Addr]string),
		parseFn:      m.Func("v8::internal::Parser::ParseProgram", ns.V8),
		codegenFn:    m.Func("v8::internal::Interpreter::CompileBytecode", ns.V8),
		lazyFn:       m.Func("v8::internal::Compiler::GetSharedFunctionInfo", ns.V8),
	}
	e.globalsAddr = m.Heap.Alloc(4096 * 8)
	return e
}

// RegisterNative installs a builtin under a name. Method-style calls
// (obj.m(...)) resolve natives named "m:<prop>".
func (e *Engine) RegisterNative(name string, fn Native) {
	e.nativeByName[name] = len(e.natives)
	e.natives = append(e.natives, fn)
}

// InternString returns the traced heap address of an interned string
// (len u32 + bytes), writing it traced on first use.
func (e *Engine) InternString(s string) vmem.Addr {
	if a, ok := e.strings[s]; ok {
		return a
	}
	m := e.M
	a := m.Heap.Alloc(4 + len(s) + 1)
	m.StoreU32(a, m.Imm(uint64(len(s))))
	if len(s) > 0 {
		m.WriteData(a+4, []byte(s))
	}
	e.strings[s] = a
	e.strByAddr[a] = s
	return a
}

// StringAt returns the Go string for an interned address.
func (e *Engine) StringAt(a vmem.Addr) (string, bool) {
	s, ok := e.strByAddr[a]
	return s, ok
}

func (e *Engine) globalSlot(name string) int {
	if i, ok := e.globalIdx[name]; ok {
		return i
	}
	i := len(e.globalIdx)
	if i >= 4096 {
		panic("js: too many globals")
	}
	e.globalIdx[name] = i
	return i
}

// FuncByName returns the function index for a name (-1 if absent).
func (e *Engine) FuncByName(name string) int {
	if i, ok := e.funcByName[name]; ok {
		return i
	}
	return -1
}

// Compile parses the script and eagerly compiles every function plus the
// top-level code, like a load-time full codegen. The compile work is traced
// against the script's bytes at src, which is exactly the computation the
// paper finds wasted for the 40-60% of library code that never runs.
// Returns the index of the top-level function.
func (e *Engine) Compile(name string, src vmem.Range, source string) (int, error) {
	m := e.M
	script, err := ParseScript(source)
	if err != nil {
		return -1, fmt.Errorf("js: compile %s: %w", name, err)
	}
	e.TotalSrcBytes += len(source)

	// Pre-register function names so calls resolve in one pass.
	base := len(e.Funcs)
	for _, fd := range script.Funcs {
		f := &Function{
			Name: fd.Name, Params: fd.Params,
			SrcStart: fd.SrcStart, SrcEnd: fd.SrcEnd,
			Sym: m.Func("v8js::"+fd.Name, ns.V8),
		}
		e.funcByName[fd.Name] = len(e.Funcs)
		e.Funcs = append(e.Funcs, f)
	}
	top := &Function{
		Name: name + "::toplevel", SrcStart: 0, SrcEnd: len(source),
		Sym: m.Func("v8js::"+name+"::toplevel", ns.V8),
	}
	topIdx := len(e.Funcs)
	e.Funcs = append(e.Funcs, top)

	// Parse pass: traced scan of the whole script (the real parser touches
	// every byte).
	var acc isa.Reg
	m.Call(e.parseFn, func() {
		m.At("scan")
		acc = m.Imm(1)
		for c := 0; c < len(source); c += 8 {
			n := min(8, len(source)-c)
			chunk := m.Load(src.Addr+vmem.Addr(c), n)
			acc = m.Op(isa.OpOr, acc, chunk)
		}
	})

	// Codegen per function.
	for i, fd := range script.Funcs {
		f := e.Funcs[base+i]
		body := fd.Body
		if err := e.codegen(f, body, src, acc); err != nil {
			return -1, err
		}
	}
	if err := e.codegen(top, script.TopLevel, src, acc); err != nil {
		return -1, err
	}
	return topIdx, nil
}

// codegen compiles one function body and writes the bytecode/constant pool
// to traced memory, folding the parse accumulator into every stored word so
// the generated code provably derives from the script bytes.
func (e *Engine) codegen(f *Function, body []Stmt, src vmem.Range, acc isa.Reg) error {
	m := e.M
	c := &compiler{e: e, f: f, locals: map[string]int{}, top: isToplevelName(f.Name)}
	for i, p := range f.Params {
		c.locals[p] = i
	}
	c.numLocals = len(f.Params)
	for _, st := range body {
		if err := c.stmt(st); err != nil {
			return fmt.Errorf("js: %s: %w", f.Name, err)
		}
	}
	c.emit(word(opRet, 0, 0))
	f.NumLocals = c.numLocals
	f.Words = c.code
	f.Code = m.Heap.Alloc(len(c.code) * 4)
	f.Consts = m.Heap.Alloc(max(len(f.ConstVal), 1) * 8)

	m.Call(e.codegenFn, func() {
		// Re-scan the function's own source extent (lazy compilers touch a
		// function's bytes again at codegen).
		m.At("fscan")
		facc := acc
		if f.SrcEnd > f.SrcStart && f.SrcEnd <= int(src.Size) {
			for off := f.SrcStart; off < f.SrcEnd; off += 16 {
				n := min(16, f.SrcEnd-off)
				chunk := m.Load(src.Addr+vmem.Addr(off), n)
				facc = m.Op(isa.OpOr, facc, chunk)
			}
		}
		m.At("emit")
		for i, w := range c.code {
			v := m.Imm(uint64(w))
			v = m.Op(isa.OpXor, v, facc)
			v = m.Op(isa.OpXor, v, facc)
			m.StoreU32(f.Code+vmem.Addr(i*4), v)
		}
		m.At("pool")
		for i, cv := range f.ConstVal {
			v := m.Imm(cv)
			v = m.Op(isa.OpXor, v, facc)
			v = m.Op(isa.OpXor, v, facc)
			m.StoreU64(f.Consts+vmem.Addr(i*8), v)
		}
	})
	f.Compiled = true
	return nil
}

type compiler struct {
	e         *Engine
	f         *Function
	code      []uint32
	locals    map[string]int
	numLocals int
	// top marks top-level code: its var declarations define globals, as
	// script-scope vars do in JavaScript.
	top bool
}

func isToplevelName(name string) bool {
	const suffix = "::toplevel"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}

func (c *compiler) emit(w uint32) int {
	c.code = append(c.code, w)
	return len(c.code) - 1
}

func (c *compiler) patch(at int, target int) {
	c.code[at] = c.code[at]&0xFFFF | uint32(target)<<16
}

func (c *compiler) constant(v uint64, s string) int {
	c.f.ConstVal = append(c.f.ConstVal, v)
	c.f.constStr = append(c.f.constStr, s)
	return len(c.f.ConstVal) - 1
}

func (c *compiler) local(name string) (int, bool) {
	i, ok := c.locals[name]
	return i, ok
}

func (c *compiler) defineLocal(name string) int {
	if i, ok := c.locals[name]; ok {
		return i
	}
	i := c.numLocals
	c.locals[name] = i
	c.numLocals++
	return i
}

func (c *compiler) stmt(s Stmt) error {
	switch st := s.(type) {
	case *VarDecl:
		if err := c.expr(st.Init); err != nil {
			return err
		}
		if c.top {
			c.emit(word(opStoreG, 0, c.e.globalSlot(st.Name)))
		} else {
			c.emit(word(opStoreL, 0, c.defineLocal(st.Name)))
		}
	case *ExprStmt:
		if err := c.expr(st.X); err != nil {
			return err
		}
		c.emit(word(opPop, 0, 0))
	case *Return:
		if st.Value != nil {
			if err := c.expr(st.Value); err != nil {
				return err
			}
		} else {
			c.emit(word(opPushK, 0, c.constant(MakeValue(TagUndef, 0), "")))
		}
		c.emit(word(opRet, 1, 0))
	case *If:
		if err := c.expr(st.Cond); err != nil {
			return err
		}
		jz := c.emit(word(opJz, 0, 0))
		for _, t := range st.Then {
			if err := c.stmt(t); err != nil {
				return err
			}
		}
		if len(st.Else) > 0 {
			jmp := c.emit(word(opJmp, 0, 0))
			c.patch(jz, len(c.code))
			for _, t := range st.Else {
				if err := c.stmt(t); err != nil {
					return err
				}
			}
			c.patch(jmp, len(c.code))
		} else {
			c.patch(jz, len(c.code))
		}
	case *While:
		top := len(c.code)
		if err := c.expr(st.Cond); err != nil {
			return err
		}
		jz := c.emit(word(opJz, 0, 0))
		for _, t := range st.Body {
			if err := c.stmt(t); err != nil {
				return err
			}
		}
		c.emit(word(opJmp, 0, top))
		c.patch(jz, len(c.code))
	case *For:
		if st.Init != nil {
			if err := c.stmt(st.Init); err != nil {
				return err
			}
		}
		top := len(c.code)
		if err := c.expr(st.Cond); err != nil {
			return err
		}
		jz := c.emit(word(opJz, 0, 0))
		for _, t := range st.Body {
			if err := c.stmt(t); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := c.stmt(st.Post); err != nil {
				return err
			}
		}
		c.emit(word(opJmp, 0, top))
		c.patch(jz, len(c.code))
	default:
		return fmt.Errorf("unsupported statement %T", s)
	}
	return nil
}

var binOps = map[string]int{
	"+": opAdd, "-": opSub, "*": opMul, "/": opDiv, "%": opMod,
	"<": opLt, "<=": opLe, ">": opGt, ">=": opGe, "==": opEq, "!=": opNe,
}

func (c *compiler) expr(x Expr) error {
	switch ex := x.(type) {
	case *NumLit:
		c.emit(word(opPushK, 0, c.constant(MakeValue(TagInt, uint64(ex.Value)), "")))
	case *StrLit:
		a := c.e.InternString(ex.Value)
		c.emit(word(opPushK, 0, c.constant(MakeValue(TagStr, uint64(a)), ex.Value)))
	case *BoolLit:
		v := uint64(0)
		if ex.Value {
			v = 1
		}
		c.emit(word(opPushK, 0, c.constant(MakeValue(TagBool, v), "")))
	case *Ident:
		if i, ok := c.local(ex.Name); ok {
			c.emit(word(opLoadL, 0, i))
		} else if fi, ok := c.e.funcByName[ex.Name]; ok {
			c.emit(word(opPushK, 0, c.constant(MakeValue(TagFunc, uint64(fi)), ex.Name)))
		} else {
			c.emit(word(opLoadG, 0, c.e.globalSlot(ex.Name)))
		}
	case *Unary:
		if err := c.expr(ex.X); err != nil {
			return err
		}
		if ex.Op == "!" {
			c.emit(word(opNot, 0, 0))
		} else {
			c.emit(word(opNeg, 0, 0))
		}
	case *Binary:
		// Short-circuit && and || via jumps; other binaries are strict.
		if ex.Op == "&&" || ex.Op == "||" {
			if err := c.expr(ex.L); err != nil {
				return err
			}
			if ex.Op == "&&" {
				jz := c.emit(word(opJz, 0, 0))
				if err := c.expr(ex.R); err != nil {
					return err
				}
				jend := c.emit(word(opJmp, 0, 0))
				c.patch(jz, len(c.code))
				c.emit(word(opPushK, 0, c.constant(MakeValue(TagBool, 0), "")))
				c.patch(jend, len(c.code))
			} else {
				c.emit(word(opNot, 0, 0))
				jz := c.emit(word(opJz, 0, 0))
				if err := c.expr(ex.R); err != nil {
					return err
				}
				jend := c.emit(word(opJmp, 0, 0))
				c.patch(jz, len(c.code))
				c.emit(word(opPushK, 0, c.constant(MakeValue(TagBool, 1), "")))
				c.patch(jend, len(c.code))
			}
			return nil
		}
		if err := c.expr(ex.L); err != nil {
			return err
		}
		if err := c.expr(ex.R); err != nil {
			return err
		}
		op, ok := binOps[ex.Op]
		if !ok {
			return fmt.Errorf("unsupported operator %q", ex.Op)
		}
		c.emit(word(op, 0, 0))
	case *Assign:
		if err := c.expr(ex.Value); err != nil {
			return err
		}
		switch t := ex.Target.(type) {
		case *Ident:
			if i, ok := c.local(t.Name); ok {
				c.emit(word(opStoreL, 0, i))
			} else {
				c.emit(word(opStoreG, 0, c.e.globalSlot(t.Name)))
			}
			// Assignment is an expression; re-push the value.
			if i, ok := c.local(t.Name); ok {
				c.emit(word(opLoadL, 0, i))
			} else {
				c.emit(word(opLoadG, 0, c.e.globalSlot(t.Name)))
			}
		case *Member:
			if err := c.expr(t.Obj); err != nil {
				return err
			}
			c.emit(word(opSetProp, 0, c.constant(MakeValue(TagStr, uint64(c.e.InternString(t.Prop))), t.Prop)))
		default:
			return fmt.Errorf("bad assignment target %T", ex.Target)
		}
	case *Member:
		if err := c.expr(ex.Obj); err != nil {
			return err
		}
		c.emit(word(opGetProp, 0, c.constant(MakeValue(TagStr, uint64(c.e.InternString(ex.Prop))), ex.Prop)))
	case *Call:
		switch callee := ex.Callee.(type) {
		case *Ident:
			if fi, ok := c.e.funcByName[callee.Name]; ok {
				for _, a := range ex.Args {
					if err := c.expr(a); err != nil {
						return err
					}
				}
				c.emit(word(opCall, len(ex.Args), fi))
				return nil
			}
			if ni, ok := c.e.nativeByName[callee.Name]; ok {
				for _, a := range ex.Args {
					if err := c.expr(a); err != nil {
						return err
					}
				}
				c.emit(word(opNCall, len(ex.Args), ni))
				return nil
			}
			return fmt.Errorf("call to unknown function %q", callee.Name)
		case *Member:
			// obj.m(args): receiver is arg0, native "m:<prop>".
			ni, ok := c.e.nativeByName["m:"+callee.Prop]
			if !ok {
				return fmt.Errorf("unknown method %q", callee.Prop)
			}
			if err := c.expr(callee.Obj); err != nil {
				return err
			}
			for _, a := range ex.Args {
				if err := c.expr(a); err != nil {
					return err
				}
			}
			c.emit(word(opNCall, len(ex.Args)+1, ni))
			return nil
		default:
			return fmt.Errorf("uncallable expression %T", ex.Callee)
		}
	default:
		return fmt.Errorf("unsupported expression %T", x)
	}
	return nil
}
