// Package js implements the JavaScript engine of the simulated browser: a
// lexer and parser, an eager bytecode compiler whose work is traced against
// the script's source bytes (so compiling never-called functions is
// measurable waste, the paper's headline finding), and a stack-machine
// interpreter that executes entirely through traced instructions.
//
// The language is a deliberately small JavaScript subset: functions,
// var/assignment, if/else, while, for, return, arithmetic/comparison/logic,
// string and number literals, calls, and member access on DOM elements via
// native bindings.
package js

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ---- AST ----

// Expr is an expression node.
type Expr interface{ expr() }

// NumLit is a numeric literal.
type NumLit struct{ Value int64 }

// StrLit is a string literal.
type StrLit struct{ Value string }

// BoolLit is true/false.
type BoolLit struct{ Value bool }

// Ident references a variable.
type Ident struct{ Name string }

// Binary is a binary operation.
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is !x or -x.
type Unary struct {
	Op string
	X  Expr
}

// Call invokes a function: Callee is an Ident (user or native function) or
// a Member (native method).
type Call struct {
	Callee Expr
	Args   []Expr
}

// Member is obj.Prop.
type Member struct {
	Obj  Expr
	Prop string
}

// Assign assigns to an Ident or Member target.
type Assign struct {
	Target Expr
	Value  Expr
}

func (*NumLit) expr()  {}
func (*StrLit) expr()  {}
func (*BoolLit) expr() {}
func (*Ident) expr()   {}
func (*Binary) expr()  {}
func (*Unary) expr()   {}
func (*Call) expr()    {}
func (*Member) expr()  {}
func (*Assign) expr()  {}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// VarDecl declares and initializes a variable.
type VarDecl struct {
	Name string
	Init Expr
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct{ X Expr }

// If is a conditional.
type If struct {
	Cond       Expr
	Then, Else []Stmt
}

// While is a loop.
type While struct {
	Cond Expr
	Body []Stmt
}

// For is a C-style loop.
type For struct {
	Init Stmt
	Cond Expr
	Post Stmt
	Body []Stmt
}

// Return exits a function.
type Return struct{ Value Expr }

func (*VarDecl) stmt()  {}
func (*ExprStmt) stmt() {}
func (*If) stmt()       {}
func (*While) stmt()    {}
func (*For) stmt()      {}
func (*Return) stmt()   {}

// FuncDecl is a top-level function declaration.
type FuncDecl struct {
	Name   string
	Params []string
	Body   []Stmt
	// SrcStart/SrcEnd delimit the declaration in the script source.
	SrcStart, SrcEnd int
}

// Script is a parsed compilation unit: declarations plus top-level code.
type Script struct {
	Funcs    []*FuncDecl
	TopLevel []Stmt
	Source   string
}

// ---- Lexer ----

type token struct {
	kind string // "num", "str", "ident", "punct", "eof"
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

var punctuations = []string{
	"===", "!==", "==", "!=", "<=", ">=", "&&", "||", "+", "-", "*", "/", "%",
	"<", ">", "=", "(", ")", "{", "}", ";", ",", ".", "!",
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("js: unterminated comment at %d", l.pos)
			}
			l.pos += end + 4
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			l.toks = append(l.toks, token{"num", l.src[start:l.pos], start})
		case c == '\'' || c == '"':
			q := c
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] != q {
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("js: unterminated string at %d", start)
			}
			l.toks = append(l.toks, token{"str", l.src[start+1 : l.pos], start})
			l.pos++
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{"ident", l.src[start:l.pos], start})
		default:
			matched := false
			for _, p := range punctuations {
				if strings.HasPrefix(l.src[l.pos:], p) {
					l.toks = append(l.toks, token{"punct", p, l.pos})
					l.pos += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("js: unexpected character %q at %d", c, l.pos)
			}
		}
	}
	l.toks = append(l.toks, token{"eof", "", len(src)})
	return l.toks, nil
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' || r == '$' }
func isIdentPart(r rune) bool  { return isIdentStart(r) || unicode.IsDigit(r) }

// ---- Parser ----

type parser struct {
	toks []token
	i    int
	src  string
}

// ParseScript parses a compilation unit.
func ParseScript(src string) (*Script, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	s := &Script{Source: src}
	for !p.at("eof", "") {
		if p.at("ident", "function") {
			fd, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			s.Funcs = append(s.Funcs, fd)
			continue
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		s.TopLevel = append(s.TopLevel, st)
	}
	return s, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(kind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) eat(kind, text string) (token, error) {
	if !p.at(kind, text) {
		return token{}, fmt.Errorf("js: at %d expected %s %q, got %s %q", p.cur().pos, kind, text, p.cur().kind, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	start := p.cur().pos
	p.next() // function
	name, err := p.eat("ident", "")
	if err != nil {
		return nil, err
	}
	if _, err := p.eat("punct", "("); err != nil {
		return nil, err
	}
	var params []string
	for !p.at("punct", ")") {
		id, err := p.eat("ident", "")
		if err != nil {
			return nil, err
		}
		params = append(params, id.text)
		if p.at("punct", ",") {
			p.next()
		}
	}
	p.next() // )
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	end := p.toks[p.i-1].pos + 1
	return &FuncDecl{Name: name.text, Params: params, Body: body, SrcStart: start, SrcEnd: end}, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.eat("punct", "{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.at("punct", "}") {
		if p.at("eof", "") {
			return nil, fmt.Errorf("js: unexpected EOF in block")
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	p.next()
	return out, nil
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.at("ident", "var") || p.at("ident", "let"):
		p.next()
		name, err := p.eat("ident", "")
		if err != nil {
			return nil, err
		}
		var init Expr = &NumLit{0}
		if p.at("punct", "=") {
			p.next()
			init, err = p.expression()
			if err != nil {
				return nil, err
			}
		}
		p.semi()
		return &VarDecl{Name: name.text, Init: init}, nil
	case p.at("ident", "if"):
		p.next()
		if _, err := p.eat("punct", "("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat("punct", ")"); err != nil {
			return nil, err
		}
		then, err := p.blockOrSingle()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.at("ident", "else") {
			p.next()
			els, err = p.blockOrSingle()
			if err != nil {
				return nil, err
			}
		}
		return &If{Cond: cond, Then: then, Else: els}, nil
	case p.at("ident", "while"):
		p.next()
		if _, err := p.eat("punct", "("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat("punct", ")"); err != nil {
			return nil, err
		}
		body, err := p.blockOrSingle()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body}, nil
	case p.at("ident", "for"):
		p.next()
		if _, err := p.eat("punct", "("); err != nil {
			return nil, err
		}
		init, err := p.statement() // consumes the first ';'
		if err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat("punct", ";"); err != nil {
			return nil, err
		}
		var post Stmt
		if !p.at("punct", ")") {
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			post = &ExprStmt{x}
		}
		if _, err := p.eat("punct", ")"); err != nil {
			return nil, err
		}
		body, err := p.blockOrSingle()
		if err != nil {
			return nil, err
		}
		return &For{Init: init, Cond: cond, Post: post, Body: body}, nil
	case p.at("ident", "return"):
		p.next()
		var v Expr
		if !p.at("punct", ";") && !p.at("punct", "}") {
			var err error
			v, err = p.expression()
			if err != nil {
				return nil, err
			}
		}
		p.semi()
		return &Return{Value: v}, nil
	default:
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		p.semi()
		return &ExprStmt{x}, nil
	}
}

func (p *parser) blockOrSingle() ([]Stmt, error) {
	if p.at("punct", "{") {
		return p.block()
	}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	return []Stmt{st}, nil
}

func (p *parser) semi() {
	if p.at("punct", ";") {
		p.next()
	}
}

// expression parses assignment (right-assoc) over the binary levels.
func (p *parser) expression() (Expr, error) {
	lhs, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	if p.at("punct", "=") {
		switch lhs.(type) {
		case *Ident, *Member:
		default:
			return nil, fmt.Errorf("js: invalid assignment target at %d", p.cur().pos)
		}
		p.next()
		rhs, err := p.expression()
		if err != nil {
			return nil, err
		}
		return &Assign{Target: lhs, Value: rhs}, nil
	}
	return lhs, nil
}

var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"==", "!=", "===", "!=="},
	{"<", "<=", ">", ">="},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.unary()
	}
	lhs, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range binLevels[level] {
			if p.at("punct", op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binary(level + 1)
		if err != nil {
			return nil, err
		}
		op := matched
		if op == "===" {
			op = "=="
		}
		if op == "!==" {
			op = "!="
		}
		lhs = &Binary{Op: op, L: lhs, R: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	if p.at("punct", "!") || p.at("punct", "-") {
		op := p.next().text
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: op, X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at("punct", "."):
			p.next()
			prop, err := p.eat("ident", "")
			if err != nil {
				return nil, err
			}
			x = &Member{Obj: x, Prop: prop.text}
		case p.at("punct", "("):
			p.next()
			var args []Expr
			for !p.at("punct", ")") {
				a, err := p.expression()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.at("punct", ",") {
					p.next()
				}
			}
			p.next()
			x = &Call{Callee: x, Args: args}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == "num":
		p.next()
		n, _ := strconv.ParseInt(t.text, 10, 64)
		return &NumLit{n}, nil
	case t.kind == "str":
		p.next()
		return &StrLit{t.text}, nil
	case t.kind == "ident" && (t.text == "true" || t.text == "false"):
		p.next()
		return &BoolLit{t.text == "true"}, nil
	case t.kind == "ident":
		p.next()
		return &Ident{t.text}, nil
	case t.kind == "punct" && t.text == "(":
		p.next()
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.eat("punct", ")"); err != nil {
			return nil, err
		}
		return x, nil
	default:
		return nil, fmt.Errorf("js: unexpected token %q at %d", t.text, t.pos)
	}
}
