package js

import (
	"strings"
	"testing"
	"testing/quick"

	"webslice/internal/isa"
	"webslice/internal/vm"
	"webslice/internal/vmem"
)

func newEngine(t *testing.T) (*vm.Machine, *Engine) {
	t.Helper()
	m := vm.New()
	m.Thread(0, "main")
	return m, NewEngine(m)
}

// compileRun compiles src and runs its top level, returning the engine and
// the machine for inspection.
func compileRun(t *testing.T, src string) (*vm.Machine, *Engine) {
	t.Helper()
	m, e := newEngine(t)
	buf := m.Heap.Alloc(len(src) + 1)
	m.StaticData(buf, []byte(src))
	top, err := e.Compile("test", vmem.Range{Addr: buf, Size: uint32(len(src))}, src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := e.CallByIndex(top, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, e
}

// globalValue reads a global variable's tagged value after execution.
func globalValue(m *vm.Machine, e *Engine, name string) (uint64, bool) {
	i, ok := e.globalIdx[name]
	if !ok {
		return 0, false
	}
	return m.Mem.ReadU64(e.globalsAddr+vmem.Addr(i*8), 8), true
}

func expectGlobal(t *testing.T, src, name string, want int64) {
	t.Helper()
	m, e := compileRun(t, src)
	v, ok := globalValue(m, e, name)
	if !ok {
		t.Fatalf("global %q not found", name)
	}
	got := int64(PayloadOf(v) << 16 >> 16)
	if got != want {
		t.Errorf("%s = %d, want %d\nsource:\n%s", name, got, want, src)
	}
}

func TestArithmetic(t *testing.T) {
	expectGlobal(t, "var r = 2 + 3 * 4 - 6 / 2;", "r", 11)
	expectGlobal(t, "var r = (2 + 3) * 4;", "r", 20)
	expectGlobal(t, "var r = 17 % 5;", "r", 2)
	expectGlobal(t, "var r = -5 + 8;", "r", 3)
}

func TestComparisonsAndLogic(t *testing.T) {
	expectGlobal(t, "var r = 3 < 4;", "r", 1)
	expectGlobal(t, "var r = 3 > 4;", "r", 0)
	expectGlobal(t, "var r = 3 == 3 && 4 != 5;", "r", 1)
	expectGlobal(t, "var r = 0 || 7;", "r", 7)
	expectGlobal(t, "var r = !0;", "r", 1)
	expectGlobal(t, "var r = 1 === 1;", "r", 1)
}

func TestControlFlow(t *testing.T) {
	expectGlobal(t, `
var r = 0;
if (3 > 2) { r = 10; } else { r = 20; }`, "r", 10)
	expectGlobal(t, `
var r = 0;
if (3 < 2) { r = 10; } else { r = 20; }`, "r", 20)
	expectGlobal(t, `
var r = 0;
var i = 0;
while (i < 5) { r = r + i; i = i + 1; }`, "r", 10)
	expectGlobal(t, `
var r = 0;
for (var i = 0; i < 4; i = i + 1) { r = r + i * i; }`, "r", 14)
}

func TestFunctionsAndCalls(t *testing.T) {
	expectGlobal(t, `
function add(a, b) { return a + b; }
function twice(x) { return add(x, x); }
var r = twice(21);`, "r", 42)
	expectGlobal(t, `
function fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
var r = fib(10);`, "r", 55)
}

func TestStringConcat(t *testing.T) {
	m, e := compileRun(t, `var s = 'hello ' + 'world';`)
	v, ok := globalValue(m, e, "s")
	if !ok || TagOf(v) != TagStr {
		t.Fatalf("s is not a string: %x", v)
	}
	got, _ := e.StringAt(vmem.Addr(PayloadOf(v)))
	if got != "hello world" {
		t.Errorf("s = %q", got)
	}
}

func TestCoverageTracking(t *testing.T) {
	_, e := compileRun(t, `
function used() { return 1; }
function dead(a) { return a * 2; }
var r = used();`)
	var usedF, deadF *Function
	for _, f := range e.Funcs {
		switch f.Name {
		case "used":
			usedF = f
		case "dead":
			deadF = f
		}
	}
	if usedF == nil || deadF == nil {
		t.Fatal("functions not registered")
	}
	if !usedF.Compiled || !deadF.Compiled {
		t.Error("eager compilation must compile everything")
	}
	if !usedF.Executed {
		t.Error("used function should be marked executed")
	}
	if deadF.Executed {
		t.Error("dead function must not be marked executed")
	}
	if deadF.SrcBytes() <= 0 {
		t.Error("dead function needs a source extent for Table I")
	}
}

func TestNativeCalls(t *testing.T) {
	m, e := newEngine(t)
	var gotArgs []uint64
	e.RegisterNative("probe", func(args []isa.Reg) isa.Reg {
		for _, a := range args {
			gotArgs = append(gotArgs, m.Val(a))
		}
		return m.Const(MakeValue(TagInt, 99))
	})
	src := `var r = probe(7, 8);`
	buf := m.Heap.Alloc(len(src))
	m.StaticData(buf, []byte(src))
	top, err := e.Compile("t", vmem.Range{Addr: buf, Size: uint32(len(src))}, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CallByIndex(top, nil); err != nil {
		t.Fatal(err)
	}
	if len(gotArgs) != 2 || PayloadOf(gotArgs[0]) != 7 || PayloadOf(gotArgs[1]) != 8 {
		t.Errorf("native args = %v", gotArgs)
	}
	v, _ := globalValue(m, e, "r")
	if PayloadOf(v) != 99 {
		t.Errorf("native return = %d", PayloadOf(v))
	}
}

func TestPropHandler(t *testing.T) {
	m, e := newEngine(t)
	var sets []string
	e.RegisterNative("obj", func(args []isa.Reg) isa.Reg {
		return m.Const(MakeValue(TagElem, 0x1234))
	})
	e.Props = func(obj isa.Reg, prop string, val isa.Reg, isSet bool) isa.Reg {
		if isSet {
			sets = append(sets, prop)
		}
		return m.Const(MakeValue(TagInt, 5))
	}
	src := `var o = obj(); var x = o.width; o.height = 7;`
	buf := m.Heap.Alloc(len(src))
	m.StaticData(buf, []byte(src))
	top, err := e.Compile("t", vmem.Range{Addr: buf, Size: uint32(len(src))}, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CallByIndex(top, nil); err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || sets[0] != "height" {
		t.Errorf("prop sets = %v", sets)
	}
	x, _ := globalValue(m, e, "x")
	if PayloadOf(x) != 5 {
		t.Errorf("prop get = %d", PayloadOf(x))
	}
}

func TestCompileErrors(t *testing.T) {
	m, e := newEngine(t)
	for _, src := range []string{
		"var x = ;",
		"function f( { }",
		"var y = unknownCall();",
		"if (1 { }",
		"var s = 'unterminated",
	} {
		buf := m.Heap.Alloc(len(src) + 1)
		m.StaticData(buf, []byte(src))
		if _, err := e.Compile("bad", vmem.Range{Addr: buf, Size: uint32(len(src))}, src); err == nil {
			t.Errorf("expected compile error for %q", src)
		}
	}
}

func TestInfiniteLoopGuard(t *testing.T) {
	m, e := newEngine(t)
	src := `while (1) { var x = 1; }`
	buf := m.Heap.Alloc(len(src))
	m.StaticData(buf, []byte(src))
	top, err := e.Compile("loop", vmem.Range{Addr: buf, Size: uint32(len(src))}, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CallByIndex(top, nil); err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Errorf("expected step-budget error, got %v", err)
	}
}

func TestValueTaggingProperty(t *testing.T) {
	f := func(tag uint8, payload uint64) bool {
		tg := uint64(tag % 8)
		p := payload & 0xFFFFFFFFFFFF
		v := MakeValue(tg, p)
		return TagOf(v) == tg && PayloadOf(v) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterpreterArithmeticProperty(t *testing.T) {
	// Property: the traced interpreter computes the same sum as Go for
	// arbitrary small loop bounds.
	f := func(nRaw uint8) bool {
		n := int64(nRaw % 50)
		src := "var r = 0; for (var i = 0; i < " + itoa(n) + "; i = i + 1) { r = r + i; }"
		m, e := compileRun(t, src)
		v, _ := globalValue(m, e, "r")
		return int64(PayloadOf(v)) == n*(n-1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestInterpreterTracesBytecode(t *testing.T) {
	m, _ := compileRun(t, `var r = 1 + 2;`)
	// The interpreter must fetch bytecode through traced loads.
	loads := 0
	for i := range m.Tr.Recs {
		if m.Tr.Recs[i].Kind == isa.KindLoad {
			loads++
		}
	}
	if loads == 0 {
		t.Error("no traced loads: interpreter is not executing through the machine")
	}
	if err := m.Tr.Validate(); err != nil {
		t.Error(err)
	}
}
