package js

import (
	"fmt"

	"webslice/internal/isa"
	"webslice/internal/vmem"
)

// frame is one interpreter activation: locals and operand stack live in the
// executing thread's stack arena, every push/pop a traced store/load.
type frame struct {
	f          *Function
	localsBase vmem.Addr
	stackBase  vmem.Addr
	sp         int // operand stack depth (Go mirror)
}

const maxStack = 64

// CallByIndex runs function idx with tagged argument registers and returns
// the result register (holding a tagged value). It is the entry point used
// by the browser for top-level scripts, event handlers, and timers.
func (e *Engine) CallByIndex(idx int, args []isa.Reg) (isa.Reg, error) {
	if idx < 0 || idx >= len(e.Funcs) {
		return isa.RegNone, fmt.Errorf("js: bad function index %d", idx)
	}
	return e.run(e.Funcs[idx], args, 0)
}

const maxDepth = 64

// run executes one function activation.
func (e *Engine) run(f *Function, args []isa.Reg, depth int) (isa.Reg, error) {
	if depth > maxDepth {
		return isa.RegNone, fmt.Errorf("js: call stack overflow in %s", f.Name)
	}
	m := e.M
	f.Executed = true
	var result isa.Reg = isa.RegNone
	var runErr error

	m.Call(f.Sym, func() {
		th := m.Cur()
		fr := &frame{
			f:          f,
			localsBase: th.Stack.Alloc(max(f.NumLocals, 1) * 8),
			stackBase:  th.Stack.Alloc(maxStack * 8),
		}
		// Bind arguments to locals (traced stores).
		m.At("bindargs")
		undef := m.Imm(MakeValue(TagUndef, 0))
		for i := 0; i < f.NumLocals; i++ {
			if i < len(args) && args[i] != isa.RegNone {
				m.StoreU64(fr.localsBase+vmem.Addr(i*8), args[i])
			} else {
				m.StoreU64(fr.localsBase+vmem.Addr(i*8), undef)
			}
		}

		codeBase := m.Imm(uint64(f.Code))
		constBase := m.Imm(uint64(f.Consts))
		pcReg := m.Imm(0)
		pc := 0

		push := func(v isa.Reg) {
			if fr.sp >= maxStack {
				runErr = fmt.Errorf("js: operand stack overflow in %s", f.Name)
				return
			}
			m.Store(fr.stackBase+vmem.Addr(fr.sp*8), 8, v)
			fr.sp++
		}
		pop := func() isa.Reg {
			if fr.sp == 0 {
				runErr = fmt.Errorf("js: operand stack underflow in %s", f.Name)
				return m.Imm(MakeValue(TagUndef, 0))
			}
			fr.sp--
			return m.Load(fr.stackBase+vmem.Addr(fr.sp*8), 8)
		}

		steps := 0
		for {
			if runErr != nil {
				return
			}
			steps++
			e.Ops++
			if steps > 1_000_000 {
				runErr = fmt.Errorf("js: %s exceeded step budget (infinite loop?)", f.Name)
				return
			}
			if pc < 0 || pc >= len(f.Words) {
				return // fell off the end: implicit return undefined
			}
			// Fetch + decode (traced): the bytecode word read through the
			// traced pc register.
			m.At("fetch")
			addr := m.Op(isa.OpAdd, codeBase, pcReg)
			w := m.LoadVia(addr, 4)
			op := m.OpImm(isa.OpAnd, w, 0xFF)
			bField := m.OpImm(isa.OpShr, w, 16)
			goW := f.Words[pc]
			goOp := int(goW & 0xFF)
			goA := int(goW >> 8 & 0xFF)
			goB := int(goW >> 16)

			// Dispatch: conditional branch on the opcode comparison; every
			// handler is control-dependent on this branch.
			m.At("dispatch")
			hit := m.OpImm(isa.OpCmpEQ, op, uint64(goOp))
			m.Branch(hit)

			advance := true
			switch goOp {
			case opPushK:
				m.At("pushk")
				off := m.OpImm(isa.OpShl, bField, 3)
				ca := m.Op(isa.OpAdd, constBase, off)
				v := m.LoadVia(ca, 8)
				push(v)
			case opLoadL:
				m.At("loadl")
				v := m.Load(fr.localsBase+vmem.Addr(goB*8), 8)
				push(v)
			case opStoreL:
				m.At("storel")
				v := pop()
				m.Store(fr.localsBase+vmem.Addr(goB*8), 8, v)
			case opLoadG:
				m.At("loadg")
				v := m.Load(e.globalsAddr+vmem.Addr(goB*8), 8)
				push(v)
			case opStoreG:
				m.At("storeg")
				v := pop()
				m.Store(e.globalsAddr+vmem.Addr(goB*8), 8, v)
			case opAdd:
				m.At("add")
				b := pop()
				a := pop()
				if TagOf(m.Val(a)) == TagStr || TagOf(m.Val(b)) == TagStr {
					push(e.concat(a, b))
				} else {
					push(m.Op(isa.OpAdd, a, b))
				}
			case opSub, opMul, opDiv, opMod, opLt, opLe, opGt, opGe, opEq, opNe:
				m.At("binop")
				b := pop()
				a := pop()
				push(m.Op(aluFor(goOp), a, b))
			case opNot:
				m.At("not")
				v := pop()
				masked := m.OpImm(isa.OpAnd, v, 0xFFFFFFFFFFFF)
				push(m.OpImm(isa.OpCmpEQ, masked, 0))
			case opNeg:
				m.At("neg")
				v := pop()
				push(m.Op(isa.OpSub, m.Imm(0), v))
			case opJmp:
				m.At("jmp")
				pcReg = m.OpImm(isa.OpShl, bField, 2)
				pc = goB
				advance = false
			case opJz:
				m.At("jz")
				v := pop()
				masked := m.OpImm(isa.OpAnd, v, 0xFFFFFFFFFFFF)
				isZero := m.OpImm(isa.OpCmpEQ, masked, 0)
				if m.Branch(isZero) {
					m.At("jztaken")
					pcReg = m.OpImm(isa.OpShl, bField, 2)
					pc = goB
					advance = false
				}
			case opCall:
				m.At("call")
				argc := goA
				callArgs := make([]isa.Reg, argc)
				for i := argc - 1; i >= 0; i-- {
					callArgs[i] = pop()
				}
				callee := goB
				if callee < 0 || callee >= len(e.Funcs) {
					runErr = fmt.Errorf("js: bad callee %d in %s", callee, f.Name)
					return
				}
				r, err := e.run(e.Funcs[callee], callArgs, depth+1)
				if err != nil {
					runErr = err
					return
				}
				if r == isa.RegNone {
					r = m.Imm(MakeValue(TagUndef, 0))
				}
				push(r)
			case opNCall:
				m.At("ncall")
				argc := goA
				callArgs := make([]isa.Reg, argc)
				for i := argc - 1; i >= 0; i-- {
					callArgs[i] = pop()
				}
				if goB < 0 || goB >= len(e.natives) {
					runErr = fmt.Errorf("js: bad native %d in %s", goB, f.Name)
					return
				}
				r := e.natives[goB](callArgs)
				if r == isa.RegNone {
					r = m.Imm(MakeValue(TagUndef, 0))
				}
				push(r)
			case opRet:
				m.At("ret")
				if goA == 1 {
					result = pop()
				}
				return
			case opPop:
				m.At("pop")
				pop()
			case opGetProp:
				m.At("getprop")
				obj := pop()
				prop := f.constStr[goB]
				var r isa.Reg = isa.RegNone
				if e.Props != nil {
					r = e.Props(obj, prop, isa.RegNone, false)
				}
				if r == isa.RegNone {
					r = m.Imm(MakeValue(TagUndef, 0))
				}
				push(r)
			case opSetProp:
				m.At("setprop")
				obj := pop()
				val := pop()
				prop := f.constStr[goB]
				if e.Props != nil {
					e.Props(obj, prop, val, true)
				}
				push(val)
			default:
				runErr = fmt.Errorf("js: bad opcode %d at %s:%d", goOp, f.Name, pc)
				return
			}
			if advance {
				m.At("advance")
				pcReg = m.OpImm(isa.OpAdd, pcReg, 4)
				pc++
			}
		}
	})
	return result, runErr
}

func aluFor(op int) isa.AluOp {
	switch op {
	case opSub:
		return isa.OpSub
	case opMul:
		return isa.OpMul
	case opDiv:
		return isa.OpDiv
	case opMod:
		return isa.OpMod
	case opLt:
		return isa.OpCmpLT
	case opLe:
		return isa.OpCmpLE
	case opGt:
		return isa.OpCmpGT
	case opGe:
		return isa.OpCmpGE
	case opEq:
		return isa.OpCmpEQ
	case opNe:
		return isa.OpCmpNE
	default:
		return isa.OpAdd
	}
}

// concat builds a new string from two values (traced copies of both bodies),
// returning a TagStr register.
func (e *Engine) concat(a, b isa.Reg) isa.Reg {
	m := e.M
	as := e.valueString(a)
	bs := e.valueString(b)
	out := as + bs
	addr := e.InternString(out)
	// Traced cost of the copy: touch both source strings.
	if sa, ok := e.strings[as]; ok && len(as) > 0 {
		m.At("concat-a")
		m.Load(sa+4, min(len(as), 8))
	}
	if sb, ok := e.strings[bs]; ok && len(bs) > 0 {
		m.At("concat-b")
		m.Load(sb+4, min(len(bs), 8))
	}
	r := m.Imm(MakeValue(TagStr, uint64(addr)))
	return r
}

// valueString renders a tagged value for string conversion.
func (e *Engine) valueString(r isa.Reg) string {
	v := e.M.Val(r)
	switch TagOf(v) {
	case TagStr:
		if s, ok := e.strByAddr[vmem.Addr(PayloadOf(v))]; ok {
			return s
		}
		return ""
	case TagInt:
		return fmt.Sprintf("%d", int64(PayloadOf(v)<<16)>>16)
	case TagBool:
		if PayloadOf(v) != 0 {
			return "true"
		}
		return "false"
	case TagUndef:
		return "undefined"
	default:
		return fmt.Sprintf("[obj %x]", PayloadOf(v))
	}
}
