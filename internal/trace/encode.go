package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"webslice/internal/isa"
	"webslice/internal/vmem"
)

// Binary trace format ("WSLT"): a magic header, the symbol/thread tables, a
// varint-delta record stream, and the side tables. The paper stored its Pin
// traces in stable storage and re-read them for each slicing run; this format
// serves the same purpose for cmd/webslice and cmd/tracedump.

var magic = [4]byte{'W', 'S', 'L', 'T'}

const formatVersion = 1

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	putUvarint(bw, formatVersion)

	// Symbol table.
	putUvarint(bw, uint64(len(t.Funcs)))
	for _, f := range t.Funcs {
		putString(bw, f.Name)
		putString(bw, f.Namespace)
	}
	// Threads.
	putUvarint(bw, uint64(len(t.Threads)))
	for _, th := range t.Threads {
		putUvarint(bw, uint64(th.ID))
		putString(bw, th.Name)
	}

	// Records: per-field varints with PC delta-encoding against the previous
	// record of the same thread (consecutive sites are usually adjacent).
	putUvarint(bw, uint64(len(t.Recs)))
	var lastPC [256]uint32
	for i := range t.Recs {
		r := &t.Recs[i]
		bw.WriteByte(byte(r.Kind))
		bw.WriteByte(r.TID)
		putVarint(bw, int64(r.PC)-int64(lastPC[r.TID]))
		lastPC[r.TID] = r.PC
		putUvarint(bw, uint64(r.Dst))
		putUvarint(bw, uint64(r.Src1))
		putUvarint(bw, uint64(r.Src2))
		putUvarint(bw, uint64(r.Addr))
		putUvarint(bw, uint64(r.Aux))
		putUvarint(bw, uint64(r.Size))
	}

	// Syscall side table.
	putUvarint(bw, uint64(len(t.Sys)))
	for _, i := range sortedKeys(t.Sys) {
		e := t.Sys[i]
		putUvarint(bw, uint64(i))
		putUvarint(bw, uint64(e.Num))
		putRanges(bw, e.Reads)
		putRanges(bw, e.Writes)
	}
	// Marker side table.
	putUvarint(bw, uint64(len(t.Marks)))
	for _, i := range sortedKeys(t.Marks) {
		m := t.Marks[i]
		putUvarint(bw, uint64(i))
		putUvarint(bw, uint64(m.ID))
		bw.WriteByte(byte(m.Kind))
		putUvarint(bw, uint64(m.Buf.Addr))
		putUvarint(bw, uint64(m.Buf.Size))
	}
	// Clock checkpoints.
	putUvarint(bw, uint64(len(t.Clock)))
	for _, cp := range t.Clock {
		putUvarint(bw, uint64(cp.Index))
		putUvarint(bw, cp.Cycle)
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("trace: bad magic (not a WSLT trace)")
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d", ver)
	}
	t := New()

	nf, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nf > MaxFuncs {
		return nil, fmt.Errorf("trace: absurd function count %d", nf)
	}
	t.Funcs = make([]FuncInfo, nf)
	for i := range t.Funcs {
		if t.Funcs[i].Name, err = getString(br); err != nil {
			return nil, err
		}
		if t.Funcs[i].Namespace, err = getString(br); err != nil {
			return nil, err
		}
	}

	nth, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nth; i++ {
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		name, err := getString(br)
		if err != nil {
			return nil, err
		}
		t.Threads = append(t.Threads, ThreadInfo{ID: uint8(id), Name: name})
	}

	nr, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nr > 0 {
		t.Recs = make([]Rec, nr)
	}
	var lastPC [256]uint32
	for i := range t.Recs {
		r := &t.Recs[i]
		kb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		r.Kind = isa.Kind(kb)
		if r.TID, err = br.ReadByte(); err != nil {
			return nil, err
		}
		d, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		r.PC = uint32(int64(lastPC[r.TID]) + d)
		lastPC[r.TID] = r.PC
		fields := []*uint32{(*uint32)(&r.Dst), (*uint32)(&r.Src1), (*uint32)(&r.Src2), (*uint32)(&r.Addr), &r.Aux}
		for _, f := range fields {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			*f = uint32(v)
		}
		sz, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		r.Size = uint16(sz)
	}

	ns, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ns; i++ {
		idx, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		num, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		e := &SysEffect{Num: isa.Sys(num)}
		if e.Reads, err = getRanges(br); err != nil {
			return nil, err
		}
		if e.Writes, err = getRanges(br); err != nil {
			return nil, err
		}
		t.Sys[int(idx)] = e
	}

	nm, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nm; i++ {
		idx, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		kb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		a, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		sz, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		t.Marks[int(idx)] = &Mark{ID: uint32(id), Kind: isa.MarkKind(kb), Buf: vmem.Range{Addr: vmem.Addr(a), Size: uint32(sz)}}
	}

	nc, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nc == 0 {
		return t, nil
	}
	t.Clock = make([]ClockPoint, nc)
	for i := range t.Clock {
		idx, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		cyc, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		t.Clock[i] = ClockPoint{Index: int(idx), Cycle: cyc}
	}
	return t, nil
}

func putUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func putVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

func putString(w *bufio.Writer, s string) {
	putUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func getString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("trace: absurd string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func putRanges(w *bufio.Writer, rs []vmem.Range) {
	putUvarint(w, uint64(len(rs)))
	for _, r := range rs {
		putUvarint(w, uint64(r.Addr))
		putUvarint(w, uint64(r.Size))
	}
}

func getRanges(r *bufio.Reader) ([]vmem.Range, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<24 {
		return nil, fmt.Errorf("trace: absurd range count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]vmem.Range, n)
	for i := range out {
		a, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		sz, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		out[i] = vmem.Range{Addr: vmem.Addr(a), Size: uint32(sz)}
	}
	return out, nil
}

func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
