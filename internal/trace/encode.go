package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"sort"

	"webslice/internal/isa"
	"webslice/internal/vmem"
)

// Binary trace format ("WSLT"): a magic header, the symbol/thread tables, a
// varint-delta record stream, and the side tables. The paper stored its Pin
// traces in stable storage and re-read them for each slicing run; this format
// serves the same purpose for cmd/webslice and cmd/tracedump.
//
// Version 2 appends an integrity trailer: the literal "WSCK" followed by the
// little-endian CRC32 (IEEE) of everything before the trailer (magic, version,
// payload). Read verifies the checksum before decoding, so a flipped bit
// anywhere in the file is reported as corruption rather than decoded into
// garbage. Version-1 files have no trailer and are still accepted.

var (
	magic        = [4]byte{'W', 'S', 'L', 'T'}
	trailerMagic = [4]byte{'W', 'S', 'C', 'K'}
)

const (
	formatVersion = 2
	trailerSize   = 8 // "WSCK" + 4-byte CRC32
)

// crcWriter forwards to w while folding every byte into the checksum.
type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc.Write(p)
	return c.w.Write(p)
}

// Write serializes the trace in the canonical version-2 format. (WriteV3
// in v3.go produces the block-compressed streaming format; both decode to
// identical traces, and v2 remains the canonical byte stream that content
// addresses are computed over.)
func (t *Trace) Write(w io.Writer) error {
	cw := &crcWriter{w: w, crc: crc32.NewIEEE()}
	bw := bufio.NewWriterSize(cw, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	putUvarint(bw, formatVersion)
	writeV2Tables(bw, t.Funcs, t.Threads)

	// Records: per-field varints with PC delta-encoding against the previous
	// record of the same thread (consecutive sites are usually adjacent).
	putUvarint(bw, uint64(len(t.Recs)))
	var lastPC [256]uint32
	for i := range t.Recs {
		writeV2Rec(bw, &t.Recs[i], &lastPC)
	}

	writeV2SideTables(bw, t.Sys, t.Marks, t.Clock)
	if err := bw.Flush(); err != nil {
		return err
	}
	// Trailer, written past the checksummed region.
	var tr [trailerSize]byte
	copy(tr[:4], trailerMagic[:])
	binary.LittleEndian.PutUint32(tr[4:], cw.crc.Sum32())
	_, err := w.Write(tr[:])
	return err
}

// writeV2Tables emits the symbol and thread tables. Shared between
// Trace.Write and the v3→v2 transcoder so both produce identical bytes.
func writeV2Tables(bw *bufio.Writer, funcs []FuncInfo, threads []ThreadInfo) {
	putUvarint(bw, uint64(len(funcs)))
	for _, f := range funcs {
		putString(bw, f.Name)
		putString(bw, f.Namespace)
	}
	putUvarint(bw, uint64(len(threads)))
	for _, th := range threads {
		putUvarint(bw, uint64(th.ID))
		putString(bw, th.Name)
	}
}

// writeV2Rec emits one record in the v2 stream encoding, updating the
// per-thread PC delta state.
func writeV2Rec(bw *bufio.Writer, r *Rec, lastPC *[256]uint32) {
	bw.WriteByte(byte(r.Kind))
	bw.WriteByte(r.TID)
	putVarint(bw, int64(r.PC)-int64(lastPC[r.TID]))
	lastPC[r.TID] = r.PC
	putUvarint(bw, uint64(r.Dst))
	putUvarint(bw, uint64(r.Src1))
	putUvarint(bw, uint64(r.Src2))
	putUvarint(bw, uint64(r.Addr))
	putUvarint(bw, uint64(r.Aux))
	putUvarint(bw, uint64(r.Size))
}

// writeV2SideTables emits the syscall, marker, and clock tables.
func writeV2SideTables(bw *bufio.Writer, sys map[int]*SysEffect, marks map[int]*Mark, clock []ClockPoint) {
	putUvarint(bw, uint64(len(sys)))
	for _, i := range sortedKeys(sys) {
		e := sys[i]
		putUvarint(bw, uint64(i))
		putUvarint(bw, uint64(e.Num))
		putRanges(bw, e.Reads)
		putRanges(bw, e.Writes)
	}
	putUvarint(bw, uint64(len(marks)))
	for _, i := range sortedKeys(marks) {
		m := marks[i]
		putUvarint(bw, uint64(i))
		putUvarint(bw, uint64(m.ID))
		bw.WriteByte(byte(m.Kind))
		putUvarint(bw, uint64(m.Buf.Addr))
		putUvarint(bw, uint64(m.Buf.Size))
	}
	putUvarint(bw, uint64(len(clock)))
	for _, cp := range clock {
		putUvarint(bw, uint64(cp.Index))
		putUvarint(bw, cp.Cycle)
	}
}

// HasMagic reports whether b begins with the WSLT trace magic and a version
// byte — a cheap sniff for callers that want to reject non-trace bytes
// before paying for a full decode (e.g. at service submission time).
func HasMagic(b []byte) bool {
	return len(b) > len(magic) && [4]byte(b[:4]) == magic
}

// DecodeError is a decode failure with the byte offset and section where the
// input stopped making sense. Tools like cmd/tracedump surface the offset so
// a corrupt file can be inspected at the exact spot (`xxd -s <offset>`).
type DecodeError struct {
	Section string // which part of the file was being decoded
	Offset  int    // byte offset into the (checksum-stripped) payload
	Msg     string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("trace: %s: %s (offset %d)", e.Section, e.Msg, e.Offset)
}

// decoder reads varint fields out of an in-memory payload with explicit
// bounds checks; every failure names the section being decoded.
type decoder struct {
	buf     []byte
	pos     int
	section string
}

func (d *decoder) errf(format string, args ...any) error {
	return &DecodeError{Section: d.section, Offset: d.pos, Msg: fmt.Sprintf(format, args...)}
}

func (d *decoder) remaining() int { return len(d.buf) - d.pos }

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, d.errf("truncated: need 1 byte, have 0")
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, d.errf("bad or truncated uvarint")
	}
	d.pos += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		return 0, d.errf("bad or truncated varint")
	}
	d.pos += n
	return v, nil
}

// count reads an element count and rejects values that cannot fit in the
// remaining bytes at minBytes per element — a corrupt count then fails here
// instead of driving an unbounded allocation.
func (d *decoder) count(minBytes int) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if minBytes > 0 && v > uint64(d.remaining()/minBytes) {
		return 0, d.errf("count %d impossible: %d bytes remain (min %d per entry)", v, d.remaining(), minBytes)
	}
	return int(v), nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(d.remaining()) {
		return "", d.errf("string length %d exceeds %d remaining bytes", n, d.remaining())
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

func (d *decoder) ranges() ([]vmem.Range, error) {
	n, err := d.count(2)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]vmem.Range, n)
	for i := range out {
		a, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		sz, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		out[i] = vmem.Range{Addr: vmem.Addr(a), Size: uint32(sz)}
	}
	return out, nil
}

// Read deserializes a trace written by Write. The whole input is consumed up
// front so the version-2 checksum can be verified before any decoding; a
// corrupt or truncated file yields a descriptive error, never a panic or an
// absurd allocation.
func Read(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: reading input: %w", err)
	}
	if len(data) < len(magic)+1 {
		return nil, errors.New("trace: input shorter than the header")
	}
	if [4]byte(data[:4]) != magic {
		return nil, errors.New("trace: bad magic (not a WSLT trace)")
	}
	d := &decoder{buf: data, pos: 4, section: "header"}
	ver, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	switch ver {
	case 1:
		// Pre-checksum format: decode the rest as-is.
	case 2:
		if len(data) < d.pos+trailerSize {
			return nil, errors.New("trace: v2 file too short for the checksum trailer")
		}
		tr := data[len(data)-trailerSize:]
		if [4]byte(tr[:4]) != trailerMagic {
			return nil, errors.New("trace: checksum trailer missing or overwritten")
		}
		want := binary.LittleEndian.Uint32(tr[4:])
		if got := crc32.ChecksumIEEE(data[:len(data)-trailerSize]); got != want {
			return nil, fmt.Errorf("trace: checksum mismatch: file says %08x, contents hash to %08x (corrupt trace)", want, got)
		}
		d.buf = data[:len(data)-trailerSize]
	case v3Version:
		br, err := OpenV3(data)
		if err != nil {
			return nil, err
		}
		return br.ReadAll()
	default:
		return nil, fmt.Errorf("trace: unsupported format version %d", ver)
	}
	t := New()

	if err := decodeTables(d, t); err != nil {
		return nil, err
	}

	d.section = "record stream"
	// Minimum 9 bytes per record: kind, tid, and seven 1-byte varints.
	nr, err := d.count(9)
	if err != nil {
		return nil, err
	}
	if nr > 0 {
		t.Recs = make([]Rec, nr)
	}
	var lastPC [256]uint32
	for i := range t.Recs {
		r := &t.Recs[i]
		kb, err := d.byte()
		if err != nil {
			return nil, err
		}
		r.Kind = isa.Kind(kb)
		if r.TID, err = d.byte(); err != nil {
			return nil, err
		}
		delta, err := d.varint()
		if err != nil {
			return nil, err
		}
		r.PC = uint32(int64(lastPC[r.TID]) + delta)
		lastPC[r.TID] = r.PC
		fields := []*uint32{(*uint32)(&r.Dst), (*uint32)(&r.Src1), (*uint32)(&r.Src2), (*uint32)(&r.Addr), &r.Aux}
		for _, f := range fields {
			v, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			*f = uint32(v)
		}
		sz, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if sz > 0xFFFF {
			return nil, d.errf("record %d access size %d overflows", i, sz)
		}
		r.Size = uint16(sz)
	}

	if err := decodeSideTables(d, t, nr); err != nil {
		return nil, err
	}
	// Everything decoded; any bytes left over are not part of the format
	// (an overwritten tail would otherwise vanish silently).
	if d.remaining() != 0 {
		d.section = "end of payload"
		return nil, d.errf("%d trailing bytes after the last section", d.remaining())
	}
	return t, nil
}

// decodeTables parses the symbol and thread tables into t. Shared between
// the v2 stream decoder and the v3 footer decoder.
func decodeTables(d *decoder, t *Trace) error {
	d.section = "symbol table"
	// Minimum 2 bytes per function: two empty strings.
	nf, err := d.count(2)
	if err != nil {
		return err
	}
	if nf > MaxFuncs {
		return d.errf("absurd function count %d", nf)
	}
	t.Funcs = make([]FuncInfo, nf)
	for i := range t.Funcs {
		if t.Funcs[i].Name, err = d.string(); err != nil {
			return err
		}
		if t.Funcs[i].Namespace, err = d.string(); err != nil {
			return err
		}
	}

	d.section = "thread table"
	nth, err := d.count(2)
	if err != nil {
		return err
	}
	if nth > 256 {
		return d.errf("thread count %d exceeds the 256 thread ids", nth)
	}
	for i := 0; i < nth; i++ {
		id, err := d.uvarint()
		if err != nil {
			return err
		}
		if id > 255 {
			return d.errf("thread id %d out of range", id)
		}
		name, err := d.string()
		if err != nil {
			return err
		}
		t.Threads = append(t.Threads, ThreadInfo{ID: uint8(id), Name: name})
	}
	return nil
}

// decodeSideTables parses the syscall, marker, and clock tables into t,
// validating every record index against the trace's nr records. Shared
// between the v2 stream decoder and the v3 footer decoder.
func decodeSideTables(d *decoder, t *Trace, nr int) error {
	d.section = "syscall table"
	nsys, err := d.count(4)
	if err != nil {
		return err
	}
	for i := 0; i < nsys; i++ {
		idx, err := d.uvarint()
		if err != nil {
			return err
		}
		if idx >= uint64(nr) {
			return d.errf("syscall effect at record %d, but only %d records", idx, nr)
		}
		num, err := d.uvarint()
		if err != nil {
			return err
		}
		e := &SysEffect{Num: isa.Sys(num)}
		if e.Reads, err = d.ranges(); err != nil {
			return err
		}
		if e.Writes, err = d.ranges(); err != nil {
			return err
		}
		t.Sys[int(idx)] = e
	}

	d.section = "marker table"
	nm, err := d.count(5)
	if err != nil {
		return err
	}
	for i := 0; i < nm; i++ {
		idx, err := d.uvarint()
		if err != nil {
			return err
		}
		if idx >= uint64(nr) {
			return d.errf("marker at record %d, but only %d records", idx, nr)
		}
		id, err := d.uvarint()
		if err != nil {
			return err
		}
		kb, err := d.byte()
		if err != nil {
			return err
		}
		a, err := d.uvarint()
		if err != nil {
			return err
		}
		sz, err := d.uvarint()
		if err != nil {
			return err
		}
		t.Marks[int(idx)] = &Mark{ID: uint32(id), Kind: isa.MarkKind(kb), Buf: vmem.Range{Addr: vmem.Addr(a), Size: uint32(sz)}}
	}

	d.section = "clock checkpoints"
	nc, err := d.count(2)
	if err != nil {
		return err
	}
	if nc > 0 {
		t.Clock = make([]ClockPoint, nc)
	}
	for i := range t.Clock {
		idx, err := d.uvarint()
		if err != nil {
			return err
		}
		if idx > uint64(nr) {
			return d.errf("checkpoint at record %d, but only %d records", idx, nr)
		}
		cyc, err := d.uvarint()
		if err != nil {
			return err
		}
		t.Clock[i] = ClockPoint{Index: int(idx), Cycle: cyc}
	}
	return nil
}

func putUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func putVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

func putString(w *bufio.Writer, s string) {
	putUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func putRanges(w *bufio.Writer, rs []vmem.Range) {
	putUvarint(w, uint64(len(rs)))
	for _, r := range rs {
		putUvarint(w, uint64(r.Addr))
		putUvarint(w, uint64(r.Size))
	}
}

func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
