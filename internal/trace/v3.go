package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"hash/crc32"
	"io"
	"sync"

	"webslice/internal/isa"
	"webslice/internal/vmem"
)

// Trace format version 3: a block-based, column-oriented encoding built for
// traces too large to hold in memory. Where v2 is one flat record stream
// (decode-all-or-nothing), v3 splits the record stream into fixed-size blocks
// that compress and decode independently, so the slicer's segmented backward
// pass can walk a trace one block at a time with bounded peak RSS.
//
// Layout:
//
//	header    "WSLT" ver=3 blockRecs crc32(header)
//	block*    tag=0x01 uvarint(len) <flate(columns)> crc32(payload)
//	footer    tag=0x02 uvarint(len) <symbol/thread/sys/mark/clock tables> crc32(payload)
//	index     uvarint(footerOff) uvarint(nBlocks) (offΔ count)* crc32(index)
//	tail      u64le(indexOff) crc32(those 8 bytes) "WS3K"
//
// Each block body holds exactly blockRecs records (the final block may hold
// fewer) transposed into columns: kinds and thread IDs run-length encoded,
// PCs and addresses as per-thread zigzag deltas (state resets at each block
// boundary so blocks stay independently decodable), registers/aux as raw
// uvarints, sizes run-length encoded. The concatenated columns are then
// DEFLATE-compressed. Every section carries its own CRC32, and the fixed
// 16-byte tail lets a reader locate the index — and from it every block —
// without scanning the file.
//
// The symbol and side tables live in the *footer* rather than the header so a
// streaming BlockWriter needs no up-front knowledge of them; they are only
// complete once the last record has been observed.
//
// v2 remains the canonical byte stream: content addresses (store.TraceKey)
// are defined over the v2 encoding, and BlockReader.WriteV2 transcodes a v3
// file back to byte-identical v2 without materializing the record slice.

const (
	v3Version = 3
	// DefaultBlockRecs is the records-per-block used by Trace.WriteV3. It is
	// a multiple of 64 so slicer segment boundaries planned on block bounds
	// keep the bitset-word disjointness the parallel scan relies on.
	DefaultBlockRecs = 4096
	// maxBlockRecs bounds attacker-controlled block sizes at open time.
	maxBlockRecs = 1 << 20

	v3TagBlock  = 0x01
	v3TagFooter = 0x02
	v3TailSize  = 16 // u64 index offset + crc32 + "WS3K"
)

var v3TailMagic = [4]byte{'W', 'S', '3', 'K'}

// FormatVersion sniffs the trace format version of an encoded buffer without
// decoding it: 0 if b is not a WSLT trace at all, otherwise the version
// claimed by the header (1, 2, or 3 for well-formed traces).
func FormatVersion(b []byte) int {
	if !HasMagic(b) {
		return 0
	}
	v, n := binary.Uvarint(b[4:])
	if n <= 0 || v > 1<<20 {
		return 0
	}
	return int(v)
}

// BlockWriter streams a trace out in format v3 one record at a time. Records
// are buffered until a block fills, then compressed and flushed; Finish
// writes the footer tables, the block index, and the tail. The writer never
// holds more than one block of records in memory.
type BlockWriter struct {
	bw        *bufio.Writer
	off       int64 // logical bytes emitted (independent of bufio buffering)
	blockRecs int
	pend      []Rec
	count     int // total records added
	index     []v3BlockIndex
	cols      []byte // scratch: raw columnar body
	comp      bytes.Buffer
	fw        *flate.Writer
	finished  bool
	err       error
}

type v3BlockIndex struct {
	off   int64
	count int
}

// NewBlockWriter starts a v3 stream on w. blockRecs ≤ 0 selects
// DefaultBlockRecs; other values are rounded up to a multiple of 64.
func NewBlockWriter(w io.Writer, blockRecs int) *BlockWriter {
	if blockRecs <= 0 {
		blockRecs = DefaultBlockRecs
	}
	blockRecs = (blockRecs + 63) &^ 63
	if blockRecs > maxBlockRecs {
		blockRecs = maxBlockRecs
	}
	fw, _ := flate.NewWriter(io.Discard, flate.DefaultCompression)
	b := &BlockWriter{
		bw:        bufio.NewWriterSize(w, 1<<20),
		blockRecs: blockRecs,
		pend:      make([]Rec, 0, blockRecs),
		fw:        fw,
	}
	hdr := append([]byte{}, magic[:]...)
	hdr = binary.AppendUvarint(hdr, v3Version)
	hdr = binary.AppendUvarint(hdr, uint64(blockRecs))
	b.writeBytes(hdr)
	b.writeU32(crc32.ChecksumIEEE(hdr))
	return b
}

func (b *BlockWriter) writeBytes(p []byte) {
	if b.err == nil {
		_, b.err = b.bw.Write(p)
	}
	b.off += int64(len(p))
}

func (b *BlockWriter) writeU32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	b.writeBytes(buf[:])
}

// Add appends one record to the stream, flushing a compressed block whenever
// blockRecs records have accumulated.
func (b *BlockWriter) Add(r Rec) {
	b.pend = append(b.pend, r)
	b.count++
	if len(b.pend) == b.blockRecs {
		b.flushBlock()
	}
}

// NumRecs returns the number of records added so far.
func (b *BlockWriter) NumRecs() int { return b.count }

func (b *BlockWriter) flushBlock() {
	if len(b.pend) == 0 {
		return
	}
	b.cols = appendColumns(b.cols[:0], b.pend)
	b.comp.Reset()
	b.fw.Reset(&b.comp)
	if _, err := b.fw.Write(b.cols); err != nil && b.err == nil {
		b.err = err
	}
	if err := b.fw.Close(); err != nil && b.err == nil {
		b.err = err
	}
	b.index = append(b.index, v3BlockIndex{off: b.off, count: len(b.pend)})
	b.writeBytes([]byte{v3TagBlock})
	var lenBuf [binary.MaxVarintLen64]byte
	b.writeBytes(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(b.comp.Len()))])
	payload := b.comp.Bytes()
	b.writeBytes(payload)
	b.writeU32(crc32.ChecksumIEEE(payload))
	b.pend = b.pend[:0]
}

// Finish flushes the final partial block and writes the footer (symbol,
// thread, syscall, marker, and clock tables), the block index, and the tail.
// The writer must not be used afterwards.
func (b *BlockWriter) Finish(funcs []FuncInfo, threads []ThreadInfo, sys map[int]*SysEffect, marks map[int]*Mark, clock []ClockPoint) error {
	if b.finished {
		return b.err
	}
	b.finished = true
	b.flushBlock()

	footOff := b.off
	foot := appendFooter(nil, funcs, threads, sys, marks, clock)
	b.writeBytes([]byte{v3TagFooter})
	var lenBuf [binary.MaxVarintLen64]byte
	b.writeBytes(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(foot)))])
	b.writeBytes(foot)
	b.writeU32(crc32.ChecksumIEEE(foot))

	indexOff := b.off
	idx := binary.AppendUvarint(nil, uint64(footOff))
	idx = binary.AppendUvarint(idx, uint64(len(b.index)))
	prev := int64(0)
	for _, e := range b.index {
		idx = binary.AppendUvarint(idx, uint64(e.off-prev))
		idx = binary.AppendUvarint(idx, uint64(e.count))
		prev = e.off
	}
	b.writeBytes(idx)
	b.writeU32(crc32.ChecksumIEEE(idx))

	var tail [v3TailSize]byte
	binary.LittleEndian.PutUint64(tail[:8], uint64(indexOff))
	binary.LittleEndian.PutUint32(tail[8:12], crc32.ChecksumIEEE(tail[:8]))
	copy(tail[12:], v3TailMagic[:])
	b.writeBytes(tail[:])

	if err := b.bw.Flush(); err != nil && b.err == nil {
		b.err = err
	}
	return b.err
}

// WriteV3 serializes the trace in block-compressed format v3 with the
// default block size.
func (t *Trace) WriteV3(w io.Writer) error { return t.WriteV3Blocks(w, DefaultBlockRecs) }

// WriteV3Blocks serializes the trace in format v3 with an explicit
// records-per-block (rounded up to a multiple of 64).
func (t *Trace) WriteV3Blocks(w io.Writer, blockRecs int) error {
	bw := NewBlockWriter(w, blockRecs)
	for i := range t.Recs {
		bw.Add(t.Recs[i])
	}
	return bw.Finish(t.Funcs, t.Threads, t.Sys, t.Marks, t.Clock)
}

// appendColumns transposes one block of records into the v3 column layout.
func appendColumns(b []byte, recs []Rec) []byte {
	n := len(recs)
	b = binary.AppendUvarint(b, uint64(n))
	// Kinds, run-length encoded: pages of same-kind records are long.
	for i := 0; i < n; {
		j := i + 1
		for j < n && recs[j].Kind == recs[i].Kind {
			j++
		}
		b = append(b, byte(recs[i].Kind))
		b = binary.AppendUvarint(b, uint64(j-i))
		i = j
	}
	// Thread IDs, run-length encoded: scheduling quanta are long.
	for i := 0; i < n; {
		j := i + 1
		for j < n && recs[j].TID == recs[i].TID {
			j++
		}
		b = append(b, recs[i].TID)
		b = binary.AppendUvarint(b, uint64(j-i))
		i = j
	}
	// PCs: per-thread deltas (consecutive sites are usually adjacent). State
	// resets every block so blocks decode independently.
	var lastPC [256]uint32
	for i := range recs {
		r := &recs[i]
		b = binary.AppendVarint(b, int64(r.PC)-int64(lastPC[r.TID]))
		lastPC[r.TID] = r.PC
	}
	for i := range recs {
		b = binary.AppendUvarint(b, uint64(recs[i].Dst))
	}
	for i := range recs {
		b = binary.AppendUvarint(b, uint64(recs[i].Src1))
	}
	for i := range recs {
		b = binary.AppendUvarint(b, uint64(recs[i].Src2))
	}
	// Addresses: per-thread deltas (sequential access patterns dominate).
	var lastAddr [256]uint32
	for i := range recs {
		r := &recs[i]
		b = binary.AppendVarint(b, int64(r.Addr)-int64(lastAddr[r.TID]))
		lastAddr[r.TID] = uint32(r.Addr)
	}
	for i := range recs {
		b = binary.AppendUvarint(b, uint64(recs[i].Aux))
	}
	// Sizes, run-length encoded: most records share a handful of sizes.
	for i := 0; i < n; {
		j := i + 1
		for j < n && recs[j].Size == recs[i].Size {
			j++
		}
		b = binary.AppendUvarint(b, uint64(recs[i].Size))
		b = binary.AppendUvarint(b, uint64(j-i))
		i = j
	}
	return b
}

// appendFooter encodes the symbol/thread/syscall/marker/clock tables with the
// same per-field encodings as v2.
func appendFooter(b []byte, funcs []FuncInfo, threads []ThreadInfo, sys map[int]*SysEffect, marks map[int]*Mark, clock []ClockPoint) []byte {
	b = binary.AppendUvarint(b, uint64(len(funcs)))
	for _, f := range funcs {
		b = appendString(b, f.Name)
		b = appendString(b, f.Namespace)
	}
	b = binary.AppendUvarint(b, uint64(len(threads)))
	for _, th := range threads {
		b = binary.AppendUvarint(b, uint64(th.ID))
		b = appendString(b, th.Name)
	}
	b = binary.AppendUvarint(b, uint64(len(sys)))
	for _, i := range sortedKeys(sys) {
		e := sys[i]
		b = binary.AppendUvarint(b, uint64(i))
		b = binary.AppendUvarint(b, uint64(e.Num))
		b = appendRanges(b, e.Reads)
		b = appendRanges(b, e.Writes)
	}
	b = binary.AppendUvarint(b, uint64(len(marks)))
	for _, i := range sortedKeys(marks) {
		m := marks[i]
		b = binary.AppendUvarint(b, uint64(i))
		b = binary.AppendUvarint(b, uint64(m.ID))
		b = append(b, byte(m.Kind))
		b = binary.AppendUvarint(b, uint64(m.Buf.Addr))
		b = binary.AppendUvarint(b, uint64(m.Buf.Size))
	}
	b = binary.AppendUvarint(b, uint64(len(clock)))
	for _, cp := range clock {
		b = binary.AppendUvarint(b, uint64(cp.Index))
		b = binary.AppendUvarint(b, cp.Cycle)
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendRanges(b []byte, rs []vmem.Range) []byte {
	b = binary.AppendUvarint(b, uint64(len(rs)))
	for _, r := range rs {
		b = binary.AppendUvarint(b, uint64(r.Addr))
		b = binary.AppendUvarint(b, uint64(r.Size))
	}
	return b
}

// BlockReader gives random and streaming access to a v3 trace without
// materializing the record slice. Open verifies the header, index, and
// footer checksums and the structural accounting of every byte in the file;
// block payload checksums are verified lazily by DecodeBlock so opening a
// multi-gigabyte trace stays O(index).
type BlockReader struct {
	blockRecs int
	n         int
	shell     *Trace // side tables populated, Recs nil
	blocks    []v3BlockMeta
}

type v3BlockMeta struct {
	body  []byte // compressed column payload
	crc   uint32
	start int
	count int
}

// OpenV3 parses a v3 trace held in memory (typically an mmap or a store
// blob) and returns a reader over its blocks.
func OpenV3(data []byte) (*BlockReader, error) {
	d := &decoder{buf: data, section: "v3 header"}
	if len(data) < len(magic)+2+4+v3TailSize {
		return nil, d.errf("input shorter than the minimal v3 frame")
	}
	if [4]byte(data[:4]) != magic {
		return nil, d.errf("bad magic (not a WSLT trace)")
	}
	d.pos = 4
	ver, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if ver != v3Version {
		return nil, d.errf("format version %d, want %d", ver, v3Version)
	}
	blockRecs64, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	hdrEnd := d.pos
	if d.remaining() < 4 {
		return nil, d.errf("truncated header checksum")
	}
	if got, want := crc32.ChecksumIEEE(data[:hdrEnd]), binary.LittleEndian.Uint32(data[hdrEnd:]); got != want {
		return nil, d.errf("header checksum mismatch: file says %08x, contents hash to %08x", want, got)
	}
	if blockRecs64 < 64 || blockRecs64 > maxBlockRecs || blockRecs64%64 != 0 {
		return nil, d.errf("bad block size %d (want a multiple of 64 in [64,%d])", blockRecs64, maxBlockRecs)
	}
	blockRecs := int(blockRecs64)
	blocksStart := hdrEnd + 4

	// Tail: fixed 16 bytes locating the index.
	d.section = "v3 tail"
	tailStart := len(data) - v3TailSize
	d.pos = tailStart
	if [4]byte(data[tailStart+12:]) != v3TailMagic {
		return nil, d.errf("tail magic missing (truncated or overwritten file)")
	}
	if got, want := crc32.ChecksumIEEE(data[tailStart:tailStart+8]), binary.LittleEndian.Uint32(data[tailStart+8:]); got != want {
		return nil, d.errf("tail checksum mismatch: file says %08x, contents hash to %08x", want, got)
	}
	indexOff64 := binary.LittleEndian.Uint64(data[tailStart:])
	if indexOff64 < uint64(blocksStart) || indexOff64 > uint64(tailStart-4) {
		return nil, d.errf("index offset %d outside the file body", indexOff64)
	}
	indexOff := int(indexOff64)

	// Index: footer offset plus per-block (offset, record count).
	d.section = "v3 index"
	d.pos = indexOff
	idxBody := data[indexOff : tailStart-4]
	if got, want := crc32.ChecksumIEEE(idxBody), binary.LittleEndian.Uint32(data[tailStart-4:]); got != want {
		return nil, d.errf("index checksum mismatch: file says %08x, contents hash to %08x", want, got)
	}
	d.buf = data[:tailStart-4]
	footOff64, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if footOff64 < uint64(blocksStart) || footOff64 > uint64(indexOff) {
		return nil, d.errf("footer offset %d outside [%d,%d]", footOff64, blocksStart, indexOff)
	}
	footOff := int(footOff64)
	nBlocks, err := d.count(2)
	if err != nil {
		return nil, err
	}
	br := &BlockReader{blockRecs: blockRecs, blocks: make([]v3BlockMeta, nBlocks)}
	prevOff := int64(0)
	for i := range br.blocks {
		delta, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		// Guard in uint64 before forming off: a hostile delta must not wrap
		// the offset past the footer (or negative).
		if delta >= uint64(int64(footOff)-prevOff) {
			return nil, d.errf("block %d offset overlaps the footer at %d", i, footOff)
		}
		off := prevOff + int64(delta)
		if i == 0 && off != int64(blocksStart) {
			return nil, d.errf("first block at offset %d, want %d", off, blocksStart)
		}
		if i > 0 && delta == 0 {
			return nil, d.errf("block %d offset does not advance", i)
		}
		cnt, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if cnt == 0 || cnt > uint64(blockRecs) {
			return nil, d.errf("block %d record count %d outside (0,%d]", i, cnt, blockRecs)
		}
		if i < nBlocks-1 && cnt != uint64(blockRecs) {
			return nil, d.errf("non-final block %d holds %d records, want %d", i, cnt, blockRecs)
		}
		br.blocks[i] = v3BlockMeta{start: br.n, count: int(cnt)}
		br.n += int(cnt)
		prevOff = off
		// Stash the offset in body temporarily; resolved below once the
		// block framing is parsed.
		br.blocks[i].body = data[off:]
	}
	if d.pos != tailStart-4 {
		return nil, d.errf("%d trailing bytes after the block index", tailStart-4-d.pos)
	}
	if nBlocks == 0 && footOff != blocksStart {
		return nil, d.errf("empty trace but footer at %d, want %d", footOff, blocksStart)
	}

	// Block framing: every byte between the header and the footer must be
	// accounted for by exactly the indexed blocks.
	d.buf = data
	d.section = "v3 block"
	next := blocksStart
	for i := range br.blocks {
		off := len(data) - len(br.blocks[i].body)
		if off != next {
			return nil, d.errf("block %d at offset %d, want %d (gap or overlap)", i, off, next)
		}
		d.pos = off
		tag, err := d.byte()
		if err != nil {
			return nil, err
		}
		if tag != v3TagBlock {
			return nil, d.errf("block %d has tag %#x, want %#x", i, tag, v3TagBlock)
		}
		bodyLen, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if bodyLen > uint64(footOff-d.pos-4) {
			return nil, d.errf("block %d payload length %d exceeds the %d bytes before the footer", i, bodyLen, footOff-d.pos-4)
		}
		body := data[d.pos : d.pos+int(bodyLen)]
		d.pos += int(bodyLen)
		crc := binary.LittleEndian.Uint32(data[d.pos:])
		d.pos += 4
		br.blocks[i].body = body
		br.blocks[i].crc = crc
		next = d.pos
	}
	if next != footOff {
		return nil, d.errf("%d unaccounted bytes between the last block and the footer", footOff-next)
	}

	// Footer: symbol and side tables.
	d.section = "v3 footer"
	d.pos = footOff
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	if tag != v3TagFooter {
		return nil, d.errf("footer tag %#x, want %#x", tag, v3TagFooter)
	}
	footLen, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if footLen > uint64(indexOff-d.pos-4) {
		return nil, d.errf("footer length %d exceeds the %d bytes before the index", footLen, indexOff-d.pos-4)
	}
	foot := data[d.pos : d.pos+int(footLen)]
	if d.pos+int(footLen)+4 != indexOff {
		return nil, d.errf("%d unaccounted bytes between the footer and the index", indexOff-(d.pos+int(footLen)+4))
	}
	if got, want := crc32.ChecksumIEEE(foot), binary.LittleEndian.Uint32(data[d.pos+int(footLen):]); got != want {
		return nil, d.errf("footer checksum mismatch: file says %08x, contents hash to %08x", want, got)
	}
	fd := &decoder{buf: foot, section: "v3 footer"}
	shell := New()
	if err := decodeTables(fd, shell); err != nil {
		return nil, err
	}
	if err := decodeSideTables(fd, shell, br.n); err != nil {
		return nil, err
	}
	if fd.remaining() != 0 {
		fd.section = "v3 footer"
		return nil, fd.errf("%d trailing bytes after the last footer table", fd.remaining())
	}
	br.shell = shell
	return br, nil
}

// NumRecs returns the total record count.
func (br *BlockReader) NumRecs() int { return br.n }

// NumBlocks returns the number of blocks.
func (br *BlockReader) NumBlocks() int { return len(br.blocks) }

// BlockRecs returns the records-per-block the file was written with.
func (br *BlockReader) BlockRecs() int { return br.blockRecs }

// BlockBounds returns the half-open record-index range [start,end) held by
// block i.
func (br *BlockReader) BlockBounds(i int) (start, end int) {
	m := &br.blocks[i]
	return m.start, m.start + m.count
}

// BlockOf returns the block holding record index i.
func (br *BlockReader) BlockOf(i int) int { return i / br.blockRecs }

// Shell returns the trace's symbol and side tables with a nil record slice.
// Criteria evaluation and categorization need only the shell. The returned
// trace is shared with the reader and must not be mutated.
func (br *BlockReader) Shell() *Trace { return br.shell }

// inflater pools a flate reader plus scratch output buffer so concurrent
// per-block decodes do not allocate a decompressor each.
type inflater struct {
	fr  io.ReadCloser
	src bytes.Reader
	buf []byte
}

var inflaterPool = sync.Pool{New: func() any {
	return &inflater{fr: flate.NewReader(bytes.NewReader(nil))}
}}

func (in *inflater) inflate(comp []byte) ([]byte, error) {
	in.src.Reset(comp)
	if err := in.fr.(flate.Resetter).Reset(&in.src, nil); err != nil {
		return nil, err
	}
	out := in.buf[:0]
	for {
		if len(out) == cap(out) {
			out = append(out, 0)[:len(out)]
		}
		n, err := in.fr.Read(out[len(out):cap(out)])
		out = out[:len(out)+n]
		if err == io.EOF {
			in.buf = out
			return out, nil
		}
		if err != nil {
			in.buf = out
			return nil, err
		}
	}
}

// DecodeBlock verifies and decompresses block i into dst, reusing dst's
// backing array when it has capacity. The returned slice holds exactly the
// block's records.
func (br *BlockReader) DecodeBlock(i int, dst []Rec) ([]Rec, error) {
	m := &br.blocks[i]
	d := &decoder{buf: m.body, section: "v3 block payload"}
	if got := crc32.ChecksumIEEE(m.body); got != m.crc {
		return nil, d.errf("block %d checksum mismatch: file says %08x, contents hash to %08x", i, m.crc, got)
	}
	in := inflaterPool.Get().(*inflater)
	raw, err := in.inflate(m.body)
	if err != nil {
		inflaterPool.Put(in)
		return nil, &DecodeError{Section: "v3 block payload", Offset: 0, Msg: "block " + itoa(i) + ": " + err.Error()}
	}
	dst, derr := decodeColumns(raw, m.count, dst)
	inflaterPool.Put(in)
	if derr != nil {
		return nil, derr
	}
	return dst, nil
}

// decodeColumns parses one block's decompressed column payload into records.
func decodeColumns(raw []byte, want int, dst []Rec) ([]Rec, error) {
	d := &decoder{buf: raw, section: "v3 block columns"}
	n64, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n64 != uint64(want) {
		return nil, d.errf("block holds %d records, index says %d", n64, want)
	}
	n := int(n64)
	if cap(dst) < n {
		dst = make([]Rec, n)
	} else {
		dst = dst[:n]
	}
	// Kinds (RLE).
	for i := 0; i < n; {
		kb, err := d.byte()
		if err != nil {
			return nil, err
		}
		run, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if run == 0 || run > uint64(n-i) {
			return nil, d.errf("kind run of %d at record %d overruns the block", run, i)
		}
		for j := 0; j < int(run); j++ {
			dst[i+j].Kind = isa.Kind(kb)
		}
		i += int(run)
	}
	// Thread IDs (RLE).
	for i := 0; i < n; {
		tid, err := d.byte()
		if err != nil {
			return nil, err
		}
		run, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if run == 0 || run > uint64(n-i) {
			return nil, d.errf("thread run of %d at record %d overruns the block", run, i)
		}
		for j := 0; j < int(run); j++ {
			dst[i+j].TID = tid
		}
		i += int(run)
	}
	// PCs (per-thread delta).
	var lastPC [256]uint32
	for i := 0; i < n; i++ {
		delta, err := d.varint()
		if err != nil {
			return nil, err
		}
		r := &dst[i]
		r.PC = uint32(int64(lastPC[r.TID]) + delta)
		lastPC[r.TID] = r.PC
	}
	// Registers and aux.
	for i := 0; i < n; i++ {
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		dst[i].Dst = isa.Reg(uint32(v))
	}
	for i := 0; i < n; i++ {
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		dst[i].Src1 = isa.Reg(uint32(v))
	}
	for i := 0; i < n; i++ {
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		dst[i].Src2 = isa.Reg(uint32(v))
	}
	// Addresses (per-thread delta).
	var lastAddr [256]uint32
	for i := 0; i < n; i++ {
		delta, err := d.varint()
		if err != nil {
			return nil, err
		}
		r := &dst[i]
		a := uint32(int64(lastAddr[r.TID]) + delta)
		r.Addr = vmem.Addr(a)
		lastAddr[r.TID] = a
	}
	for i := 0; i < n; i++ {
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		dst[i].Aux = uint32(v)
	}
	// Sizes (RLE).
	for i := 0; i < n; {
		sz, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if sz > 0xFFFF {
			return nil, d.errf("record %d access size %d overflows", i, sz)
		}
		run, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if run == 0 || run > uint64(n-i) {
			return nil, d.errf("size run of %d at record %d overruns the block", run, i)
		}
		for j := 0; j < int(run); j++ {
			dst[i+j].Size = uint16(sz)
		}
		i += int(run)
	}
	if d.remaining() != 0 {
		return nil, d.errf("%d trailing bytes after the size column", d.remaining())
	}
	return dst, nil
}

// ReadAll materializes the whole trace. The side tables are shared with the
// reader's shell.
func (br *BlockReader) ReadAll() (*Trace, error) {
	t := &Trace{
		Funcs:   br.shell.Funcs,
		Threads: br.shell.Threads,
		Sys:     br.shell.Sys,
		Marks:   br.shell.Marks,
		Clock:   br.shell.Clock,
	}
	if br.n > 0 {
		t.Recs = make([]Rec, 0, br.n)
	}
	for i := range br.blocks {
		recs, err := br.DecodeBlock(i, t.Recs[len(t.Recs):cap(t.Recs)])
		if err != nil {
			return nil, err
		}
		t.Recs = t.Recs[:len(t.Recs)+len(recs)]
	}
	return t, nil
}

// WriteV2 transcodes the v3 stream into the canonical v2 encoding, one block
// at a time, producing bytes identical to Trace.Write on the materialized
// trace. Content addresses are defined over this encoding, so a v3 trace can
// be keyed without materializing it.
func (br *BlockReader) WriteV2(w io.Writer) error {
	cw := &crcWriter{w: w, crc: crc32.NewIEEE()}
	bw := bufio.NewWriterSize(cw, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	putUvarint(bw, formatVersion)
	writeV2Tables(bw, br.shell.Funcs, br.shell.Threads)
	putUvarint(bw, uint64(br.n))
	var lastPC [256]uint32
	buf := make([]Rec, 0, br.blockRecs)
	for i := range br.blocks {
		recs, err := br.DecodeBlock(i, buf)
		if err != nil {
			return err
		}
		buf = recs
		for j := range recs {
			writeV2Rec(bw, &recs[j], &lastPC)
		}
	}
	writeV2SideTables(bw, br.shell.Sys, br.shell.Marks, br.shell.Clock)
	if err := bw.Flush(); err != nil {
		return err
	}
	var tr [trailerSize]byte
	copy(tr[:4], trailerMagic[:])
	binary.LittleEndian.PutUint32(tr[4:], cw.crc.Sum32())
	_, err := w.Write(tr[:])
	return err
}

// itoa is a minimal strconv.Itoa for non-negative ints, avoiding an import
// on the hot decode path.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
