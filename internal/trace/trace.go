// Package trace defines the dynamic instruction trace the profiler consumes:
// the analog of the files the paper's Pin tool wrote to stable storage while
// Chromium rendered a page. A trace couples a compact record stream with a
// symbol table (function names and namespaces, the basis of the paper's
// categorization in Figure 5), a syscall side table (per-call memory effect
// sets, derived the way the paper derived them from the kernel manual), and a
// marker side table (the "external file" holding pixel-buffer addresses for
// the slicing criteria).
package trace

import (
	"fmt"
	"sort"

	"webslice/internal/isa"
	"webslice/internal/vmem"
)

// FuncID identifies a traced function. PCs embed their FuncID in the high
// bits so every program counter is globally unique and trivially attributable.
type FuncID uint32

// FuncIDNone marks records not attributable to any function (should not
// occur in well-formed traces).
const FuncIDNone FuncID = 0

// PC bit layout: FuncID in the high 16 bits, instruction-site offset in the
// low 16. A function may therefore contain at most 64 Ki static sites.
const (
	pcFuncShift = 16
	pcOffMask   = 0xFFFF
	// MaxFuncs is the largest number of distinct functions a trace can name.
	MaxFuncs = 1 << 16
)

// MakePC builds a program counter from a function ID and a site offset.
func MakePC(fn FuncID, off uint16) uint32 { return uint32(fn)<<pcFuncShift | uint32(off) }

// FuncOfPC extracts the function a PC belongs to.
func FuncOfPC(pc uint32) FuncID { return FuncID(pc >> pcFuncShift) }

// OffOfPC extracts the site offset within the function.
func OffOfPC(pc uint32) uint16 { return uint16(pc & pcOffMask) }

// Rec is one dynamic instruction record. The layout mirrors what the paper's
// Pin tool captured: static opcode information plus runtime addresses and
// the executing thread.
type Rec struct {
	PC   uint32    // static program counter (function ID << 16 | site)
	Dst  isa.Reg   // destination register, RegNone if none
	Src1 isa.Reg   // first source register (branch: condition; store: value)
	Src2 isa.Reg   // second source register (load/store: address register)
	Addr vmem.Addr // memory effective address (load/store)
	Aux  uint32    // kind-specific: AluOp, callee FuncID, syscall number, marker ID, branch taken
	Size uint16    // memory access size in bytes
	Kind isa.Kind
	TID  uint8 // executing thread
}

// Func returns the function the record belongs to.
func (r *Rec) Func() FuncID { return FuncOfPC(r.PC) }

// MemRange returns the record's direct memory range (loads and stores).
func (r *Rec) MemRange() vmem.Range { return vmem.Range{Addr: r.Addr, Size: uint32(r.Size)} }

// SysEffect records the dynamic memory semantics of one executed syscall:
// the ranges the kernel read from and wrote to user memory.
type SysEffect struct {
	Num    isa.Sys
	Reads  []vmem.Range
	Writes []vmem.Range
}

// Mark is one slicing-criteria marker: at the marker's program point, the
// given buffer holds values of interest (for MarkPixels, final pixel values
// about to be displayed).
type Mark struct {
	ID   uint32
	Kind isa.MarkKind
	Buf  vmem.Range
}

// FuncInfo is a symbol-table entry.
type FuncInfo struct {
	Name string
	// Namespace is the source namespace of the function
	// (e.g. "v8", "blink/css", "base/debug", "cc", "ipc"). The empty string
	// means the function has no namespace and cannot be categorized — the
	// paper could categorize only 53–74% of instructions for the same
	// reason.
	Namespace string
}

// ThreadInfo names a thread, matching Chromium thread naming.
type ThreadInfo struct {
	ID   uint8
	Name string
}

// Trace is a complete dynamic trace plus side tables.
type Trace struct {
	Recs    []Rec
	Funcs   []FuncInfo // indexed by FuncID; entry 0 is a placeholder
	Threads []ThreadInfo
	// Sys maps record index -> syscall effect, for KindSyscall records.
	Sys map[int]*SysEffect
	// Marks maps record index -> marker, for KindMarker records.
	Marks map[int]*Mark
	// Clock, if non-nil, gives the virtual cycle at which selected records
	// executed, as (record index, cycle) checkpoints in increasing order.
	// Idle time (no instruction executing) appears as cycle gaps. Used by
	// the CPU-utilization analysis (paper Figure 2).
	Clock []ClockPoint
}

// ClockPoint anchors a record index to a virtual cycle.
type ClockPoint struct {
	Index int
	Cycle uint64
}

// New returns an empty trace with initialized side tables.
func New() *Trace {
	return &Trace{
		Funcs: []FuncInfo{{Name: "<none>"}},
		Sys:   make(map[int]*SysEffect),
		Marks: make(map[int]*Mark),
	}
}

// AddFunc registers a function symbol and returns its ID.
func (t *Trace) AddFunc(name, namespace string) (FuncID, error) {
	if len(t.Funcs) >= MaxFuncs {
		return 0, fmt.Errorf("trace: symbol table full (%d functions)", MaxFuncs)
	}
	t.Funcs = append(t.Funcs, FuncInfo{Name: name, Namespace: namespace})
	return FuncID(len(t.Funcs) - 1), nil
}

// FuncName returns the symbol name for fn, or a placeholder.
func (t *Trace) FuncName(fn FuncID) string {
	if int(fn) < len(t.Funcs) {
		return t.Funcs[fn].Name
	}
	return fmt.Sprintf("fn%d", uint32(fn))
}

// Namespace returns the namespace for fn ("" if none).
func (t *Trace) Namespace(fn FuncID) string {
	if int(fn) < len(t.Funcs) {
		return t.Funcs[fn].Namespace
	}
	return ""
}

// ThreadName returns the name registered for a thread ID.
func (t *Trace) ThreadName(tid uint8) string {
	for _, th := range t.Threads {
		if th.ID == tid {
			return th.Name
		}
	}
	return fmt.Sprintf("thread%d", tid)
}

// Len returns the number of dynamic instructions.
func (t *Trace) Len() int { return len(t.Recs) }

// CycleAt returns the virtual cycle of record index i, interpolating between
// clock checkpoints (cycle advances one per record between checkpoints).
func (t *Trace) CycleAt(i int) uint64 {
	if len(t.Clock) == 0 {
		return uint64(i)
	}
	j := sort.Search(len(t.Clock), func(j int) bool { return t.Clock[j].Index > i }) - 1
	if j < 0 {
		return uint64(i)
	}
	cp := t.Clock[j]
	return cp.Cycle + uint64(i-cp.Index)
}

// EndCycle returns the virtual cycle just past the last record.
func (t *Trace) EndCycle() uint64 {
	if t.Len() == 0 {
		return 0
	}
	return t.CycleAt(t.Len()-1) + 1
}

// Summary aggregates simple whole-trace statistics.
type Summary struct {
	Total     int
	ByKind    map[isa.Kind]int
	ByThread  map[uint8]int
	Syscalls  int
	Markers   int
	Functions int
	Threads   int
}

// Summarize scans the trace once and returns aggregate statistics.
func (t *Trace) Summarize() Summary {
	s := Summary{
		Total:     len(t.Recs),
		ByKind:    make(map[isa.Kind]int),
		ByThread:  make(map[uint8]int),
		Syscalls:  len(t.Sys),
		Markers:   len(t.Marks),
		Functions: len(t.Funcs) - 1,
		Threads:   len(t.Threads),
	}
	for i := range t.Recs {
		s.ByKind[t.Recs[i].Kind]++
		s.ByThread[t.Recs[i].TID]++
	}
	return s
}

// Validate checks structural invariants: every record's function exists,
// syscall/marker side-table indexes point at records of the right kind, and
// kinds are defined. It returns the first violation found.
func (t *Trace) Validate() error {
	for i := range t.Recs {
		r := &t.Recs[i]
		if !r.Kind.Valid() {
			return fmt.Errorf("rec %d: invalid kind %d", i, uint8(r.Kind))
		}
		if int(r.Func()) >= len(t.Funcs) {
			return fmt.Errorf("rec %d: function %d out of range", i, r.Func())
		}
	}
	for i := range t.Sys {
		if i < 0 || i >= len(t.Recs) {
			return fmt.Errorf("syscall side table: index %d out of range", i)
		}
		if t.Recs[i].Kind != isa.KindSyscall {
			return fmt.Errorf("syscall side table: rec %d is %v, not syscall", i, t.Recs[i].Kind)
		}
	}
	for i := range t.Marks {
		if i < 0 || i >= len(t.Recs) {
			return fmt.Errorf("marker side table: index %d out of range", i)
		}
		if t.Recs[i].Kind != isa.KindMarker {
			return fmt.Errorf("marker side table: rec %d is %v, not marker", i, t.Recs[i].Kind)
		}
	}
	return nil
}
