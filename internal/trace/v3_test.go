package trace

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"webslice/internal/isa"
	"webslice/internal/vmem"
)

// encodeSampleV3 returns the version-3 encoding of the shared sample trace.
func encodeSampleV3(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sampleTrace(t).WriteV3(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// multiBlockTrace builds a trace big enough to span several 64-record blocks
// (including a partial final block) with interleaved threads, so the
// per-block delta-state reset is actually exercised.
func multiBlockTrace(t *testing.T, n int) *Trace {
	t.Helper()
	tr := New()
	f1, err := tr.AddFunc("v8::Run", "v8")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := tr.AddFunc("blink::Paint", "blink/paint")
	if err != nil {
		t.Fatal(err)
	}
	tr.Threads = append(tr.Threads, ThreadInfo{0, "CrRendererMain"}, ThreadInfo{1, "Compositor"}, ThreadInfo{7, "IOThread"})
	tids := []uint8{0, 0, 1, 7}
	fns := []FuncID{f1, f2}
	for i := 0; i < n; i++ {
		tid := tids[(i/17)%len(tids)] // runs of ~17 per thread
		r := Rec{
			PC:   MakePC(fns[(i/9)%2], uint16(i%300)),
			Kind: isa.Kind(i % 10),
			TID:  tid,
			Dst:  isa.Reg(i % 31),
			Src1: isa.Reg((i * 3) % 29),
			Src2: isa.Reg((i * 7) % 5),
			Addr: vmem.Addr(0x1000 + uint32(i)*4),
			Aux:  uint32(i % 13),
			Size: uint16([]int{0, 4, 4, 4, 8}[i%5]),
		}
		tr.Recs = append(tr.Recs, r)
	}
	// Side tables at known kinds so Validate-style consumers stay happy.
	for i := 0; i < n; i++ {
		switch tr.Recs[i].Kind {
		case isa.KindSyscall:
			if len(tr.Sys) < 5 {
				tr.Sys[i] = &SysEffect{Num: isa.SysWrite, Writes: []vmem.Range{{Addr: 0x2000, Size: 8}}}
			}
		case isa.KindMarker:
			if len(tr.Marks) < 3 {
				tr.Marks[i] = &Mark{ID: uint32(len(tr.Marks) + 1), Kind: isa.MarkPixels, Buf: vmem.Range{Addr: 0x4000_0000, Size: 64}}
			}
		}
	}
	tr.Clock = []ClockPoint{{0, 0}, {n / 2, uint64(n) * 3}}
	return tr
}

func tracesEqual(t *testing.T, got, want *Trace) {
	t.Helper()
	if !reflect.DeepEqual(got.Recs, want.Recs) {
		t.Fatalf("records differ: %d vs %d recs", len(got.Recs), len(want.Recs))
	}
	if !reflect.DeepEqual(got.Funcs, want.Funcs) {
		t.Error("symbols differ")
	}
	if !reflect.DeepEqual(got.Threads, want.Threads) {
		t.Error("threads differ")
	}
	if !reflect.DeepEqual(got.Sys, want.Sys) {
		t.Error("syscall side tables differ")
	}
	if !reflect.DeepEqual(got.Marks, want.Marks) {
		t.Error("marker side tables differ")
	}
	if !reflect.DeepEqual(got.Clock, want.Clock) {
		t.Error("clock differs")
	}
}

func TestV3RoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	got, err := Read(bytes.NewReader(encodeSampleV3(t)))
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, got, tr)
}

func TestV3RoundTripMultiBlock(t *testing.T) {
	// 64-record blocks, 5 full blocks plus a 23-record final block.
	tr := multiBlockTrace(t, 64*5+23)
	var buf bytes.Buffer
	if err := tr.WriteV3Blocks(&buf, 64); err != nil {
		t.Fatal(err)
	}
	br, err := OpenV3(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if br.NumRecs() != tr.Len() {
		t.Fatalf("NumRecs = %d, want %d", br.NumRecs(), tr.Len())
	}
	if br.NumBlocks() != 6 {
		t.Fatalf("NumBlocks = %d, want 6", br.NumBlocks())
	}
	if br.BlockRecs() != 64 {
		t.Fatalf("BlockRecs = %d, want 64", br.BlockRecs())
	}
	got, err := br.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, got, tr)
}

func TestV3EmptyTrace(t *testing.T) {
	tr := New()
	var buf bytes.Buffer
	if err := tr.WriteV3(&buf); err != nil {
		t.Fatal(err)
	}
	br, err := OpenV3(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if br.NumRecs() != 0 || br.NumBlocks() != 0 {
		t.Fatalf("empty trace has %d recs in %d blocks", br.NumRecs(), br.NumBlocks())
	}
	got, err := br.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Recs) != 0 || len(got.Funcs) != 1 {
		t.Errorf("empty round trip: %d recs, %d funcs", len(got.Recs), len(got.Funcs))
	}
}

func TestV3BlockBoundsAndShell(t *testing.T) {
	tr := multiBlockTrace(t, 64*2+10)
	var buf bytes.Buffer
	if err := tr.WriteV3Blocks(&buf, 64); err != nil {
		t.Fatal(err)
	}
	br, err := OpenV3(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	wantBounds := [][2]int{{0, 64}, {64, 128}, {128, 138}}
	for i, wb := range wantBounds {
		lo, hi := br.BlockBounds(i)
		if lo != wb[0] || hi != wb[1] {
			t.Errorf("BlockBounds(%d) = [%d,%d), want [%d,%d)", i, lo, hi, wb[0], wb[1])
		}
	}
	for _, idx := range []int{0, 63, 64, 127, 137} {
		b := br.BlockOf(idx)
		lo, hi := br.BlockBounds(b)
		if idx < lo || idx >= hi {
			t.Errorf("BlockOf(%d) = %d with bounds [%d,%d)", idx, b, lo, hi)
		}
	}
	shell := br.Shell()
	if shell.Recs != nil {
		t.Error("shell must not materialize records")
	}
	if !reflect.DeepEqual(shell.Funcs, tr.Funcs) || !reflect.DeepEqual(shell.Sys, tr.Sys) || !reflect.DeepEqual(shell.Marks, tr.Marks) {
		t.Error("shell side tables differ from the source trace")
	}
}

func TestV3DecodeBlockReusesBuffer(t *testing.T) {
	tr := multiBlockTrace(t, 64*3)
	var buf bytes.Buffer
	if err := tr.WriteV3Blocks(&buf, 64); err != nil {
		t.Fatal(err)
	}
	br, err := OpenV3(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Rec, 0, 64)
	base := &dst[:1][0]
	for i := 0; i < br.NumBlocks(); i++ {
		out, err := br.DecodeBlock(i, dst)
		if err != nil {
			t.Fatal(err)
		}
		if &out[0] != base {
			t.Fatalf("block %d: DecodeBlock reallocated despite sufficient capacity", i)
		}
		lo, hi := br.BlockBounds(i)
		if !reflect.DeepEqual(out, tr.Recs[lo:hi]) {
			t.Fatalf("block %d decodes wrong records", i)
		}
		dst = out[:0]
	}
}

func TestV3TranscodeToV2ByteIdentical(t *testing.T) {
	for _, n := range []int{0, 5, 64, 64*4 + 31} {
		tr := multiBlockTrace(t, n)
		var v2 bytes.Buffer
		if err := tr.Write(&v2); err != nil {
			t.Fatal(err)
		}
		var v3 bytes.Buffer
		if err := tr.WriteV3Blocks(&v3, 64); err != nil {
			t.Fatal(err)
		}
		br, err := OpenV3(v3.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		var back bytes.Buffer
		if err := br.WriteV2(&back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back.Bytes(), v2.Bytes()) {
			t.Fatalf("n=%d: v2→v3→v2 transcode is not byte-identical (%d vs %d bytes)", n, back.Len(), v2.Len())
		}
	}
}

func TestV3ReadMatchesV2Read(t *testing.T) {
	tr := multiBlockTrace(t, 64*2+7)
	var v2, v3 bytes.Buffer
	if err := tr.Write(&v2); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteV3Blocks(&v3, 128); err != nil {
		t.Fatal(err)
	}
	fromV2, err := Read(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fromV3, err := Read(bytes.NewReader(v3.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, fromV3, fromV2)
}

func TestFormatVersionSniff(t *testing.T) {
	if v := FormatVersion(encodeSample(t)); v != 2 {
		t.Errorf("v2 sniffed as %d", v)
	}
	if v := FormatVersion(encodeSampleV3(t)); v != 3 {
		t.Errorf("v3 sniffed as %d", v)
	}
	if v := FormatVersion([]byte("not a trace")); v != 0 {
		t.Errorf("garbage sniffed as %d", v)
	}
	if v := FormatVersion(nil); v != 0 {
		t.Errorf("nil sniffed as %d", v)
	}
	if !HasMagic(encodeSampleV3(t)) {
		t.Error("v3 traces must keep the WSLT magic for service admission")
	}
}

func TestV3BlockRecsRounding(t *testing.T) {
	tr := multiBlockTrace(t, 100)
	var buf bytes.Buffer
	// 70 is not a multiple of 64: the writer must round up to 128.
	if err := tr.WriteV3Blocks(&buf, 70); err != nil {
		t.Fatal(err)
	}
	br, err := OpenV3(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if br.BlockRecs() != 128 {
		t.Errorf("BlockRecs = %d, want 128 (rounded up to a multiple of 64)", br.BlockRecs())
	}
	if br.BlockRecs()%64 != 0 {
		t.Errorf("block size %d is not 64-aligned", br.BlockRecs())
	}
}

// openV3NeverPanics opens and fully decodes data, converting a panic into a
// test failure. Corrupt input must come back as an error, not a crash.
func openV3NeverPanics(t *testing.T, data []byte, label string) error {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: v3 decode panicked: %v", label, r)
		}
	}()
	br, err := OpenV3(data)
	if err != nil {
		return err
	}
	_, err = br.ReadAll()
	return err
}

func TestV3EveryTruncatedPrefixErrors(t *testing.T) {
	enc := encodeSampleV3(t)
	for n := 0; n < len(enc); n++ {
		err := openV3NeverPanics(t, enc[:n], "prefix")
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", n, len(enc))
		}
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("truncation to %d: error is %T, want *DecodeError: %v", n, err, err)
		}
	}
}

// TestV3EveryBitFlipErrors corrupts every bit of a v3 encoding. Each section
// carries its own CRC32 and the framing is fully accounted (block offsets
// come from the checksummed index), so every single-bit flip must surface as
// a typed decode error — block headers, column payloads, footer, index, and
// tail alike.
func TestV3EveryBitFlipErrors(t *testing.T) {
	enc := encodeSampleV3(t)
	for i := range enc {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(enc)
			mut[i] ^= 1 << bit
			err := openV3NeverPanics(t, mut, "bitflip")
			if err == nil {
				t.Fatalf("flipping byte %d bit %d (of %d bytes) decoded without error", i, bit, len(enc))
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("flipping byte %d bit %d: error is %T, want *DecodeError: %v", i, bit, err, err)
			}
			if de.Section == "" {
				t.Fatalf("flipping byte %d bit %d: decode error has no section", i, bit)
			}
		}
	}
}

func TestV3EveryBitFlipErrorsMultiBlock(t *testing.T) {
	// The same sweep over a multi-block file so per-block CRCs, the block
	// index, and inter-block framing all get exercised. Multi-block files
	// are larger, so sample every 3rd byte to keep the sweep fast while
	// still covering every section (offsets 0,3,6,... hit all regions).
	tr := multiBlockTrace(t, 64*3+11)
	var buf bytes.Buffer
	if err := tr.WriteV3Blocks(&buf, 64); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for i := 0; i < len(enc); i += 3 {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(enc)
			mut[i] ^= 1 << bit
			if err := openV3NeverPanics(t, mut, "bitflip-multi"); err == nil {
				t.Fatalf("flipping byte %d bit %d (of %d bytes) decoded without error", i, bit, len(enc))
			}
		}
	}
}

func TestV3ReadViaSniffRejectsCorruption(t *testing.T) {
	// The generic Read path must reject corrupt v3 the same way.
	enc := encodeSampleV3(t)
	mut := bytes.Clone(enc)
	mut[len(mut)/2] ^= 0x10
	if err := readNeverPanics(t, mut, "sniffed-corrupt"); err == nil {
		t.Fatal("corrupt v3 decoded through trace.Read")
	}
}

func TestV3OpenRejectsV2(t *testing.T) {
	if _, err := OpenV3(encodeSample(t)); err == nil {
		t.Fatal("OpenV3 accepted a v2 file")
	}
}
